#!/usr/bin/env python3
"""Zero-cost assertion for src/common/strong_types.hh, run as a ctest
entry and in the CI lint job.

Two checks:

1. header-only: strong_types has no translation unit anywhere under
   src/ — every member must stay a constexpr inline one-liner, so
   adding a .cc (and with it the temptation of out-of-line, possibly
   stateful members) fails here.

2. codegen parity: a fixture TU with two identical loops — one
   indexing with raw std::size_t, one with a StrongIndex — is compiled
   with `$CXX -O2 -S`, and the two functions' instruction streams must
   match after label renaming. If the wrapper ever grows a runtime
   cost (a call, a range check, a missed vectorization), the streams
   diverge and this check fails with a side-by-side diff.

Stdlib only. Exit 0 on success, 1 with a diagnostic otherwise.
"""

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path

FIXTURE = r"""
#include "common/strong_types.hh"

using moelight::SeqId;

extern "C" std::size_t
raw_sum(const std::size_t *a, std::size_t n)
{
    std::size_t sum = 0;
    for (std::size_t i = 0; i < n; ++i)
        sum += a[i] * i;
    return sum;
}

extern "C" std::size_t
strong_sum(const std::size_t *a, std::size_t n)
{
    std::size_t sum = 0;
    for (SeqId i(0); i.value() < n; ++i)
        sum += a[i.value()] * i.value();
    return sum;
}
"""

LOCAL_LABEL_RE = re.compile(r"\.L\w+")


def check_header_only(repo):
    offenders = [p.relative_to(repo).as_posix()
                 for p in (repo / "src").rglob("strong_types*")
                 if p.suffix in {".cc", ".cpp", ".cxx"}]
    if offenders:
        print("strong_types must stay header-only; found translation "
              "unit(s): " + ", ".join(offenders))
        return False
    return True


def extract_function(asm, name):
    """Instructions of one function, with local labels renamed to a
    position-independent L0, L1, ... so streams compare across
    functions."""
    lines = asm.splitlines()
    body = []
    inside = False
    for line in lines:
        if re.match(rf"^{re.escape(name)}:", line):
            inside = True
            continue
        if inside:
            if re.match(r"^\s*\.(cfi_endproc|size)\b", line):
                break
            stripped = line.strip()
            # Keep instructions and local-label definitions; drop
            # directives (.cfi_*, .p2align, ...) — pure noise here.
            if not stripped or (stripped.startswith(".")
                                and not stripped.startswith(".L")):
                continue
            body.append(stripped)
    renames = {}

    def rename(m):
        return renames.setdefault(m.group(0), f".L{len(renames)}")

    return [LOCAL_LABEL_RE.sub(rename, line) for line in body]


def check_codegen_parity(repo, cxx):
    with tempfile.TemporaryDirectory() as tmp:
        src = Path(tmp) / "fixture.cc"
        src.write_text(FIXTURE)
        cmd = [cxx, "-std=c++20", "-O2", "-S", "-o", "-",
               f"-I{repo / 'src'}", str(src)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"fixture failed to compile: {' '.join(cmd)}")
        print(proc.stderr)
        return False
    raw = extract_function(proc.stdout, "raw_sum")
    strong = extract_function(proc.stdout, "strong_sum")
    if not raw or not strong:
        print("could not locate fixture functions in assembly output")
        return False
    if raw == strong:
        return True
    print("strong_sum compiled differently from raw_sum — the "
          "StrongIndex wrapper is no longer zero-cost:")
    width = max((len(l) for l in raw), default=0) + 2
    for i in range(max(len(raw), len(strong))):
        left = raw[i] if i < len(raw) else ""
        right = strong[i] if i < len(strong) else ""
        marker = " " if left == right else "!"
        print(f"  {marker} {left:<{width}} | {right}")
    return False


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="assert strong_types.hh is header-only and "
                    "zero-cost")
    parser.add_argument(
        "--repo", type=Path,
        default=Path(__file__).resolve().parent.parent)
    parser.add_argument(
        "--cxx", default="g++",
        help="C++ compiler to spot-check codegen with (default: g++)")
    args = parser.parse_args(argv)
    repo = args.repo.resolve()
    ok = check_header_only(repo)
    ok = check_codegen_parity(repo, args.cxx) and ok
    if ok:
        print("ok    strong_types.hh is header-only and zero-cost")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
