#!/usr/bin/env python3
"""Gate CI on the BENCH_*.json files the bench harnesses emit.

Each rule is RECORD.FIELD>=MIN, checked against the named record in
the BenchJson document; a missing record/field or a value below the
bound fails the run. Example:

    check_bench.py build/BENCH_fig4_attention.json \
        "quant_attn_int8.fused_speedup>=1.0" \
        "quant_attn_int4.fused_speedup>=1.0"
"""

import json
import re
import sys


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    path, rules = argv[1], argv[2:]
    # A missing or malformed BENCH json is a gate failure with a
    # diagnosis, not an uncaught traceback: the usual cause is the
    # bench binary not running (or crashing mid-write) earlier in CI.
    try:
        with open(path) as f:
            doc = json.load(f)
        records = {r["name"]: r for r in doc.get("records", [])}
    except OSError as e:
        print(f"FAIL  {path}: cannot read: {e}")
        return 1
    except (ValueError, KeyError, TypeError, AttributeError) as e:
        print(f"FAIL  {path}: malformed BENCH json: {e!r}")
        return 1

    failed = False
    for rule in rules:
        m = re.fullmatch(r"([\w-]+)\.([\w-]+)>=([-\d.eE]+)", rule)
        if not m:
            print(f"FAIL  malformed rule: {rule!r}")
            failed = True
            continue
        name, field = m.group(1), m.group(2)
        rec = records.get(name)
        if rec is None or field not in rec:
            print(f"FAIL  {name}.{field}: not found in {path}")
            failed = True
            continue
        try:
            bound = float(m.group(3))
            value = float(rec[field])
        except (ValueError, TypeError) as e:
            print(f"FAIL  {name}.{field}: non-numeric value or "
                  f"bound: {e}")
            failed = True
            continue
        status = "ok  " if value >= bound else "FAIL"
        print(f"{status}  {name}.{field} = {value:g} (>= {bound:g})")
        failed |= value < bound
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
