#!/usr/bin/env python3
"""Gate CI on the BENCH_*.json files the bench harnesses emit.

Each rule is [ISA:]RECORD.FIELD>=MIN, checked against the named record
in the BenchJson document; a missing record/field or a value below the
bound fails the run.

Rules may be keyed by the SIMD backend that produced the numbers: the
harnesses record the dispatched ISA as {"name": "simd", "isa": ...},
and a rule prefixed with `avx512:` / `avx2:` / `portable:` is enforced
only when it matches that record (and skipped with a note otherwise),
so one CI invocation carries per-ISA speedup floors instead of
assuming the dev host's instruction set. An ISA-prefixed rule against
a document with no simd record fails — the floor cannot be verified.

Example:

    check_bench.py build/BENCH_kernels.json \
        "avx512:gqa_attention.speedup>=2.0" \
        "portable:gqa_attention.speedup>=1.1"
"""

import json
import re
import sys


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    path, rules = argv[1], argv[2:]
    # A missing or malformed BENCH json is a gate failure with a
    # diagnosis, not an uncaught traceback: the usual cause is the
    # bench binary not running (or crashing mid-write) earlier in CI.
    try:
        with open(path) as f:
            doc = json.load(f)
        records = {r["name"]: r for r in doc.get("records", [])}
    except OSError as e:
        print(f"FAIL  {path}: cannot read: {e}")
        return 1
    except (ValueError, KeyError, TypeError, AttributeError) as e:
        print(f"FAIL  {path}: malformed BENCH json: {e!r}")
        return 1

    doc_isa = records.get("simd", {}).get("isa")

    failed = False
    for rule in rules:
        m = re.fullmatch(
            r"(?:([\w-]+):)?([\w-]+)\.([\w-]+)>=([-\d.eE]+)", rule)
        if not m:
            print(f"FAIL  malformed rule: {rule!r}")
            failed = True
            continue
        isa, name, field = m.group(1), m.group(2), m.group(3)
        if isa is not None:
            if doc_isa is None:
                print(f"FAIL  {rule}: ISA-keyed rule but {path} has "
                      f"no simd record (cannot verify the floor)")
                failed = True
                continue
            if isa != doc_isa:
                print(f"skip  {name}.{field}: rule keys ISA {isa}, "
                      f"document was measured on {doc_isa}")
                continue
        rec = records.get(name)
        if rec is None or field not in rec:
            print(f"FAIL  {name}.{field}: not found in {path}")
            failed = True
            continue
        try:
            bound = float(m.group(4))
            value = float(rec[field])
        except (ValueError, TypeError) as e:
            print(f"FAIL  {name}.{field}: non-numeric value or "
                  f"bound: {e}")
            failed = True
            continue
        status = "ok  " if value >= bound else "FAIL"
        isa_tag = f" [{isa}]" if isa else ""
        print(f"{status}  {name}.{field} = {value:g} "
              f"(>= {bound:g}){isa_tag}")
        failed |= value < bound
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
