#!/usr/bin/env python3
"""Repo-invariant linter: machine-checks the conventions the codebase
relies on but a compiler cannot see. Stdlib only; runs as a ctest
entry and a CI gate (and fails fast locally: scripts/lint_invariants.py).

Invariants enforced:

1. naked-sync     No `std::mutex` / `std::condition_variable` tokens in
                  src/ outside src/common/sync.hh — every lock goes
                  through the Clang-thread-safety-annotated wrappers,
                  so the locking discipline is compiler-checked.
2. simd-confined  AVX intrinsics (`immintrin.h`, `_mm256*`/`_mm512*`,
                  `__m256*`/`__m512*`) appear only in the per-ISA
                  translation units src/kernels/simd/simd_avx*.cc,
                  which carry their own -m flags. Anywhere else they
                  would silently tie the portable build to the build
                  host's ISA.
3. error-sites    Every literal EngineError site string thrown in src/
                  is documented in docs/error_model.md — the typed
                  error contract stays in sync with its registry.
                  (Pass-through sites thrown from a variable, e.g. the
                  fault injector's, are out of scope by construction.)
4. bench-keys     Every check_bench.py rule key in .github/workflows/
                  ci.yml names a record and field some bench source
                  actually emits, so a renamed bench record cannot
                  leave a CI gate silently vacuous. Record names built
                  as `prefix + tag` match when both halves appear as
                  string literals in the same bench file.
5. include-cc     No `#include` of a .cc file — a classic ODR trap.
6. raw-index-params
                  No raw-integer parameter named after an index domain
                  (`seq`, `layer`, `head`, `block`, `page`, `slot`) in
                  src/runtime/ or src/kernels/ headers — those domains
                  are strong types (common/strong_types.hh), and a raw
                  `std::size_t seq` reopens the transposed-argument
                  hole the types closed. Count/extent names (seqLen,
                  layers, pageTokens, nQ...) are distinct names and
                  pass untouched; kernels take raw extents by contract
                  but never raw *index* names.

Exit 0 when the tree is clean; 1 with one line per violation
(`invariant:file:line: message`) otherwise.
"""

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cc", ".hh", ".h", ".cpp", ".hpp"}

SYNC_ALLOWED = "src/common/sync.hh"
SYNC_TOKEN_RE = re.compile(r"std::(?:mutex|condition_variable)\b")

AVX_ALLOWED_RE = re.compile(r"src/kernels/simd/simd_avx[^/]*\.cc$")
AVX_TOKEN_RE = re.compile(
    r"immintrin\.h|\b_mm(?:256|512)_|\b__m(?:256|512)")

ENGINE_ERROR_RE = re.compile(
    r"EngineError\(\s*ErrorCode::\w+\s*,\s*\"([^\"]+)\"")

INCLUDE_CC_RE = re.compile(r"^\s*#\s*include\s*[<\"][^<\">]*\.cc[>\"]",
                           re.MULTILINE)

BENCH_RULE_RE = re.compile(
    r"\"(?:[\w-]+:)?([\w-]+)\.([\w-]+)>=[-\d.eE]+\"")

STRING_LITERAL_RE = re.compile(r"\"((?:[^\"\\]|\\.)*)\"")
FIELD_CALL_RE = re.compile(r"\.field\(\s*\"([^\"]+)\"")
RECORD_CALL_RE = re.compile(r"\.record\(")


def strip_comments(text):
    """Remove // and /* */ comments (string literals survive intact,
    which is fine: the invariants below only ever *search for* literal
    tokens, never inside them)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append(text[i:j + 1])
            i = j + 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j  # keep the newline for line counts
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            # Preserve newlines so violation line numbers stay true.
            chunk = text[i:] if j < 0 else text[i:j + 2]
            out.append("\n" * chunk.count("\n"))
            i = n if j < 0 else j + 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def cxx_files(root, subdir):
    base = root / subdir
    if not base.is_dir():
        return []
    return sorted(p for p in base.rglob("*")
                  if p.suffix in CXX_SUFFIXES and p.is_file())


def check_naked_sync(root):
    violations = []
    for path in cxx_files(root, "src"):
        rel = path.relative_to(root).as_posix()
        if rel == SYNC_ALLOWED:
            continue
        code = strip_comments(path.read_text())
        for m in SYNC_TOKEN_RE.finditer(code):
            violations.append(
                ("naked-sync", rel, line_of(code, m.start()),
                 f"{m.group(0)} outside {SYNC_ALLOWED}; use the "
                 f"annotated Mutex/CondVar wrappers"))
    return violations


def check_simd_confined(root):
    violations = []
    for path in cxx_files(root, "src"):
        rel = path.relative_to(root).as_posix()
        if AVX_ALLOWED_RE.search(rel):
            continue
        code = strip_comments(path.read_text())
        for m in AVX_TOKEN_RE.finditer(code):
            violations.append(
                ("simd-confined", rel, line_of(code, m.start()),
                 f"AVX token '{m.group(0)}' outside "
                 f"src/kernels/simd/simd_avx*.cc ties the build to "
                 f"the host ISA"))
    return violations


def check_error_sites(root):
    doc_path = root / "docs" / "error_model.md"
    doc = doc_path.read_text() if doc_path.is_file() else ""
    violations = []
    for path in cxx_files(root, "src"):
        rel = path.relative_to(root).as_posix()
        code = strip_comments(path.read_text())
        for m in ENGINE_ERROR_RE.finditer(code):
            site = m.group(1)
            if site not in doc:
                violations.append(
                    ("error-sites", rel, line_of(code, m.start()),
                     f"EngineError site \"{site}\" is not documented "
                     f"in docs/error_model.md"))
    return violations


def bench_emissions(root):
    """Per bench source: (record names constructible from its string
    literals, field names it emits). The 'simd' record comes from
    bench_util.hh's recordSimdBackend, included in the scan."""
    per_file = []
    for path in cxx_files(root, "bench"):
        text = strip_comments(path.read_text())
        if not RECORD_CALL_RE.search(text):
            continue
        literals = [m.group(1) for m in
                    STRING_LITERAL_RE.finditer(text)]
        fields = set(FIELD_CALL_RE.findall(text))
        per_file.append((set(literals), fields))
    return per_file


def record_constructible(name, literals):
    if name in literals:
        return True
    # Dynamic names are built as one literal prefix + one literal tag
    # in the same file (e.g. "quant_attn_" + "int8").
    return any(name.startswith(p) and name[len(p):] in literals
               for p in literals if p and name.startswith(p))


def check_bench_keys(root):
    ci_path = root / ".github" / "workflows" / "ci.yml"
    if not ci_path.is_file():
        return []
    ci = ci_path.read_text()
    emissions = bench_emissions(root)
    violations = []
    for m in BENCH_RULE_RE.finditer(ci):
        record, field = m.group(1), m.group(2)
        ok = any(record_constructible(record, lits) and field in fields
                 for lits, fields in emissions)
        if not ok:
            violations.append(
                ("bench-keys", ci_path.relative_to(root).as_posix(),
                 line_of(ci, m.start()),
                 f"rule key {record}.{field} matches no record/field "
                 f"emitted by any bench source"))
    return violations


RAW_INDEX_PARAM_RE = re.compile(
    r"\b(?:std::)?(?:size_t|u?int(?:8|16|32|64)_t|unsigned(?:\s+"
    r"(?:int|long(?:\s+long)?))?|(?<!unsigned )int|long(?:\s+long)?)"
    r"\s+(seq|layer|head|block|page|slot)\b")

RAW_INDEX_SCOPES = ("src/runtime", "src/kernels")


def check_raw_index_params(root):
    violations = []
    for scope in RAW_INDEX_SCOPES:
        for path in cxx_files(root, scope):
            if path.suffix not in {".hh", ".h", ".hpp"}:
                continue
            rel = path.relative_to(root).as_posix()
            code = strip_comments(path.read_text())
            for m in RAW_INDEX_PARAM_RE.finditer(code):
                name = m.group(1)
                violations.append(
                    ("raw-index-params", rel, line_of(code, m.start()),
                     f"raw integer parameter '{name}' names an index "
                     f"domain; use the strong type from "
                     f"common/strong_types.hh (SeqId, LayerIdx, ...) "
                     f"or rename if it is a count, not an index"))
    return violations


def check_include_cc(root):
    violations = []
    for subdir in ("src", "tests", "bench", "examples"):
        for path in cxx_files(root, subdir):
            rel = path.relative_to(root).as_posix()
            code = strip_comments(path.read_text())
            for m in INCLUDE_CC_RE.finditer(code):
                violations.append(
                    ("include-cc", rel, line_of(code, m.start()),
                     "#include of a .cc file (ODR trap); include the "
                     "header or add the TU to the build"))
    return violations


CHECKS = [
    check_naked_sync,
    check_simd_confined,
    check_error_sites,
    check_bench_keys,
    check_include_cc,
    check_raw_index_params,
]


def lint(root):
    violations = []
    for check in CHECKS:
        violations.extend(check(root))
    return violations


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="moelight repo-invariant linter")
    parser.add_argument(
        "--repo", type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: this script's repo)")
    args = parser.parse_args(argv)
    violations = lint(args.repo.resolve())
    for inv, rel, line, msg in violations:
        print(f"{inv}:{rel}:{line}: {msg}")
    if violations:
        print(f"FAIL  {len(violations)} invariant violation(s)")
        return 1
    print(f"ok    all {len(CHECKS)} invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
