#include <gtest/gtest.h>

#include "hrm/roofline.hh"

namespace moelight {
namespace {

TEST(Roofline, MemoryBoundRegionLinear)
{
    Roofline r{100.0 * GFLOP, 10.0 * GB};
    // Below the ridge, attainable = B * I.
    EXPECT_DOUBLE_EQ(r.attainable(1.0), 10.0 * GB);
    EXPECT_DOUBLE_EQ(r.attainable(5.0), 50.0 * GB);
}

TEST(Roofline, ComputeBoundRegionFlat)
{
    Roofline r{100.0 * GFLOP, 10.0 * GB};
    EXPECT_DOUBLE_EQ(r.attainable(100.0), 100.0 * GFLOP);
    EXPECT_DOUBLE_EQ(r.attainable(1000.0), 100.0 * GFLOP);
}

TEST(Roofline, RidgeIntensity)
{
    Roofline r{100.0 * GFLOP, 10.0 * GB};
    EXPECT_DOUBLE_EQ(r.ridgeIntensity(), 10.0);
    EXPECT_TRUE(r.memoryBound(9.9));
    EXPECT_FALSE(r.memoryBound(10.1));
    // At the ridge the two roofs meet.
    EXPECT_DOUBLE_EQ(r.attainable(r.ridgeIntensity()), r.peakFlops);
}

TEST(Roofline, AttainableIsMonotonic)
{
    Roofline r{1.0 * TFLOP, 50.0 * GB};
    double prev = 0.0;
    for (double i = 0.01; i < 1e4; i *= 2) {
        double p = r.attainable(i);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

} // namespace
} // namespace moelight
