#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hrm/hrm.hh"
#include "hrm/multi_level.hh"
#include "model/op_cost.hh"

namespace moelight {
namespace {

MultiLevelHrm
gpuCpuDisk()
{
    return withDiskTier(l4Host(), 3.0 * GB);  // NVMe-class reads
}

TEST(MultiLevelHrm, TwoLevelMatchesHrm)
{
    HardwareConfig hw = l4Host();
    Hrm two(hw);
    MultiLevelHrm multi(
        {{"gpu", hw.effPg(), hw.effBg()},
         {"cpu", hw.effPc(), hw.effBc()}},
        {hw.effBcg()});
    for (double i_gpu : {1.0, 30.0, 1000.0})
        for (double i_cpu : {0.5, 4.0, 100.0})
            EXPECT_DOUBLE_EQ(
                multi.attainable(0, 1, i_gpu, i_cpu),
                two.attainableOnGpuFromCpu(i_gpu, i_cpu));
    EXPECT_DOUBLE_EQ(multi.turningPointP1(0, 1),
                     two.turningPointP1());
    EXPECT_DOUBLE_EQ(multi.turningPointP2(0, 1, 30.0),
                     two.turningPointP2(30.0));
}

TEST(MultiLevelHrm, PathBandwidthIsMinOfLinks)
{
    MultiLevelHrm h = gpuCpuDisk();
    // GPU<-disk crosses both links; the disk link is the bottleneck.
    EXPECT_DOUBLE_EQ(h.pathBandwidth(0, 2), 3.0 * GB);
    EXPECT_DOUBLE_EQ(h.pathBandwidth(1, 2), 3.0 * GB);
    EXPECT_DOUBLE_EQ(h.pathBandwidth(0, 1), l4Host().effBcg());
    EXPECT_DOUBLE_EQ(h.pathBandwidth(0, 0), l4Host().effBg());
}

TEST(MultiLevelHrm, DiskResidentDataIsDiskBound)
{
    // Weights on disk: even a compute-heavy kernel is capped by the
    // disk link until the cross-level intensity is enormous.
    MultiLevelHrm h = gpuCpuDisk();
    double perf = h.attainable(0, 2, 1e6, 100.0);
    EXPECT_DOUBLE_EQ(perf, 3.0 * GB * 100.0);
}

TEST(MultiLevelHrm, StorageOnlyLevelAlwaysShips)
{
    MultiLevelHrm h = gpuCpuDisk();
    // P1 for disk-resident data is 0: the disk cannot compute, so
    // shipping always wins.
    EXPECT_DOUBLE_EQ(h.turningPointP1(0, 2), 0.0);
    EXPECT_DOUBLE_EQ(h.turningPointP1(1, 2), 0.0);
}

TEST(MultiLevelHrm, BestExecLevelFollowsIntensity)
{
    MultiLevelHrm h = gpuCpuDisk();
    ModelConfig m = mixtral8x7b();
    // Low-intensity attention on CPU-resident KV: stay on the CPU.
    double i_attn = attnIntensityVsKv(m);
    EXPECT_EQ(h.bestExecLevel(1, i_attn, i_attn), 1u);
    // High-intensity FFN with a big batch: ship to the GPU.
    double i_ffn = ffnIntensityVsWeights(m, 4096);
    EXPECT_EQ(h.bestExecLevel(1, 40.0, i_ffn), 0u);
}

TEST(MultiLevelHrm, DiskTierLowersAttainableVsCpuTier)
{
    MultiLevelHrm h = gpuCpuDisk();
    double from_cpu = h.attainable(0, 1, 40.0, 64.0);
    double from_disk = h.attainable(0, 2, 40.0, 64.0);
    EXPECT_GT(from_cpu, from_disk);
}

TEST(MultiLevelHrm, ValidatesOrdering)
{
    // CPU faster than GPU violates the paper's footnote-1 ordering.
    EXPECT_THROW(MultiLevelHrm({{"gpu", 1.0 * TFLOP, 100 * GB},
                                {"cpu", 2.0 * TFLOP, 50 * GB}},
                               {10 * GB}),
                 FatalError);
    // Link faster than the upper level's memory.
    EXPECT_THROW(MultiLevelHrm({{"gpu", 2.0 * TFLOP, 100 * GB},
                                {"cpu", 1.0 * TFLOP, 50 * GB}},
                               {80 * GB}),
                 FatalError);
    // Wrong link count.
    EXPECT_THROW(MultiLevelHrm({{"gpu", 2.0 * TFLOP, 100 * GB}},
                               {10 * GB}),
                 FatalError);
    // Disk faster than DRAM.
    EXPECT_THROW(withDiskTier(l4Host(), 500.0 * GB), FatalError);
}

} // namespace
} // namespace moelight
