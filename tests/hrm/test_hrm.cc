#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hrm/hrm.hh"
#include "model/op_cost.hh"

namespace moelight {
namespace {

TEST(Hrm, RoofsComeFromEffectiveRates)
{
    HardwareConfig hw = l4Host();
    Hrm hrm(hw);
    EXPECT_DOUBLE_EQ(hrm.gpu().peakFlops, hw.effPg());
    EXPECT_DOUBLE_EQ(hrm.cpu().peakBw, hw.effBc());
    EXPECT_DOUBLE_EQ(hrm.linkBw(), hw.effBcg());
}

TEST(Hrm, AttainableEq7TakesMinOfRoofs)
{
    Hrm hrm(l4Host());
    // Very low CPU-side intensity: link roof dominates.
    double low = hrm.attainableOnGpuFromCpu(1000.0, 0.01);
    EXPECT_DOUBLE_EQ(low, hrm.linkBw() * 0.01);
    // Very high intensities: GPU compute roof dominates.
    double high = hrm.attainableOnGpuFromCpu(1e9, 1e9);
    EXPECT_DOUBLE_EQ(high, hrm.gpu().peakFlops);
}

TEST(Hrm, TurningPointP1IsCpuPeakOverLink)
{
    // Because B_c >= B_cg (validated), the Eq. 9 crossing lies on the
    // CPU compute roof.
    Hrm hrm(l4Host());
    double p1 = hrm.turningPointP1();
    EXPECT_DOUBLE_EQ(p1, hrm.cpu().peakFlops / hrm.linkBw());
    // At intensities below P1, CPU execution beats shipping to GPU.
    EXPECT_TRUE(hrm.betterOnCpu(p1 * 0.5));
}

TEST(Hrm, AttentionSitsBelowP1OnL4)
{
    // Paper Fig. 4's conclusion: GQA decode attention (f16 and even
    // int4) has intensity below P1 => perform attention on CPU.
    HardwareConfig hw = l4Host();
    Hrm hrm(hw);
    ModelConfig m = mixtral8x7b();
    double i_f16 = attnIntensityVsKv(m);
    EXPECT_LT(i_f16, hrm.turningPointP1());
    m.dtKv = DataType::INT4;
    EXPECT_LT(attnIntensityVsKv(m), hrm.turningPointP1());
}

TEST(Hrm, FfnCrossesP1WithModestBatch)
{
    // Fig. 5: the MoE FFN's cross-level intensity grows with N and
    // passes P1 well below N=1024 on the L4 instance.
    HardwareConfig hw = l4Host();
    Hrm hrm(hw);
    ModelConfig m = mixtral8x7b();
    EXPECT_LT(ffnIntensityVsWeights(m, 32), hrm.turningPointP1());
    EXPECT_GT(ffnIntensityVsWeights(m, 1024), hrm.turningPointP1());
}

TEST(Hrm, TurningPointP2UsesGpuKernelAttainable)
{
    Hrm hrm(l4Host());
    ModelConfig m = mixtral8x7b();
    // GPU-side intensity of the FFN kernel at mu=128 (vs HBM bytes).
    OpCost c = postAttnDecodeCost(m, 128);
    double i_gpu = c.flops / (c.weightBytes + c.actBytes);
    double p2 = hrm.turningPointP2(i_gpu);
    EXPECT_DOUBLE_EQ(p2, hrm.attainableOnGpu(i_gpu) / hrm.linkBw());
    // P2 lies above P1 on this hardware (GPU roof above CPU roof).
    EXPECT_GT(p2, hrm.turningPointP1());
}

TEST(Hrm, BalancePointEq11)
{
    Hrm hrm(l4Host());
    double i_gpu = 30.0;
    double i_cpu = hrm.balancePointCpuIntensity(i_gpu);
    // At the balance point the GPU memory roof equals the link roof.
    EXPECT_NEAR(hrm.gpu().peakBw * i_gpu, hrm.linkBw() * i_cpu, 1.0);
}

TEST(Hrm, RoofSeriesShapes)
{
    Hrm hrm(l4Host());
    auto series = hrmRoofSeries(hrm, 0.1, 1e4, 32);
    ASSERT_EQ(series.size(), 5u);
    for (const auto &s : series) {
        EXPECT_EQ(s.intensity.size(), 32u);
        EXPECT_EQ(s.gflops.size(), 32u);
    }
    // Memory roofs are increasing; compute roofs flat.
    const auto &cpu_mem = series[0];
    EXPECT_LT(cpu_mem.gflops.front(), cpu_mem.gflops.back());
    const auto &gpu_peak = series[4];
    EXPECT_DOUBLE_EQ(gpu_peak.gflops.front(), gpu_peak.gflops.back());
    // GPU mem roof above CPU mem roof above link roof at any x.
    EXPECT_GT(series[1].gflops[10], series[0].gflops[10]);
    EXPECT_GT(series[0].gflops[10], series[2].gflops[10]);
}

TEST(Hrm, RoofSeriesRejectsBadRange)
{
    Hrm hrm(l4Host());
    EXPECT_THROW(hrmRoofSeries(hrm, 10.0, 1.0), FatalError);
    EXPECT_THROW(hrmRoofSeries(hrm, 0.0, 1.0), FatalError);
}

} // namespace
} // namespace moelight
