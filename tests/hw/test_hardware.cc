#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hw/hardware.hh"

namespace moelight {
namespace {

TEST(Hardware, L4MatchesPaperFig3)
{
    HardwareConfig h = l4Host();
    EXPECT_NEAR(h.gpuMem / GiB, 24.0, 1e-9);
    EXPECT_NEAR(h.cpuMem / GiB, 192.0, 1e-9);
    EXPECT_NEAR(h.bg / GB, 300.0, 1e-9);
    EXPECT_NEAR(h.bc / GB, 100.0, 1e-9);
    EXPECT_NEAR(h.bcg / GB, 32.0, 1e-9);
    EXPECT_NEAR(h.pg / TFLOP, 242.0, 1e-9);
    EXPECT_NEAR(h.pc / TFLOP, 1.3, 1e-9);
}

TEST(Hardware, EffectiveRatesBelowPeak)
{
    HardwareConfig h = t4Host();
    EXPECT_LT(h.effPg(), h.pg);
    EXPECT_LT(h.effBc(), h.bc);
    EXPECT_LT(h.effBcg(), h.bcg);
    EXPECT_GT(h.effPg(), 0.0);
}

TEST(Hardware, TensorParallelScalesGpuResources)
{
    HardwareConfig base = t4Host();
    HardwareConfig tp = tensorParallel(base, 4);
    EXPECT_NEAR(tp.gpuMem / base.gpuMem, 4.0, 1e-9);
    EXPECT_NEAR(tp.bg / base.bg, 4.0, 1e-9);
    EXPECT_NEAR(tp.pg / base.pg, 4.0, 1e-9);
    EXPECT_NEAR(tp.bcg / base.bcg, 4.0, 1e-9);
    // Host resources unchanged.
    EXPECT_DOUBLE_EQ(tp.cpuMem, base.cpuMem);
    EXPECT_DOUBLE_EQ(tp.bc, base.bc);
    EXPECT_EQ(tp.numGpus, 4u);
}

TEST(Hardware, SettingsPairModelsAndGpus)
{
    EXPECT_EQ(settingS1().model.name, "Mixtral-8x7B");
    EXPECT_EQ(settingS1().hw.numGpus, 1u);
    EXPECT_EQ(settingS2().hw.name, "1xL4");
    EXPECT_EQ(settingS6().model.name, "Mixtral-8x22B");
    EXPECT_EQ(settingS6().hw.numGpus, 2u);
    EXPECT_EQ(settingS7().hw.numGpus, 4u);
    EXPECT_EQ(settingS8().model.name, "DBRX");
    EXPECT_EQ(settingS9().hw.numGpus, 4u);
    EXPECT_NEAR(settingS7().hw.cpuMem / GiB, 416.0, 1e-9);
}

TEST(Hardware, ModelsDontFitTheirGpus)
{
    // The whole point of the paper: weights exceed GPU memory.
    for (const Setting &s : {settingS1(), settingS2(), settingS6(),
                             settingS7(), settingS8(), settingS9()})
        EXPECT_GT(s.model.totalWeightBytes(), s.hw.gpuMem)
            << s.name;
}

TEST(Hardware, MixtralFitsInHostMemory)
{
    // ...but they do fit in CPU DRAM (the no-disk assumption, §4).
    for (const Setting &s : {settingS1(), settingS2(), settingS6(),
                             settingS7(), settingS8(), settingS9()})
        EXPECT_LT(s.model.totalWeightBytes(), s.hw.cpuMem) << s.name;
}

TEST(Hardware, ValidateRejectsFastLink)
{
    HardwareConfig h = t4Host();
    h.bcg = h.bc * 2;
    EXPECT_THROW(h.validate(), FatalError);
}

TEST(Hardware, ValidateRejectsZeroGpus)
{
    HardwareConfig h = t4Host();
    h.numGpus = 0;
    EXPECT_THROW(h.validate(), FatalError);
    EXPECT_THROW(tensorParallel(t4Host(), 0), FatalError);
}

} // namespace
} // namespace moelight
