#include <gtest/gtest.h>

#include "common/logging.hh"
#include "perf/perf_model.hh"

namespace moelight {
namespace {

PerfModel
s1Model(double gen = 128.0, bool padded = false)
{
    return PerfModel(mixtral8x7b(), t4Host(), {77.0, 418.0, gen},
                     padded);
}

Policy
cgoPolicy(std::size_t n = 512, std::size_t mu = 32)
{
    Policy p;
    p.batchSize = n;
    p.microBatch = mu;
    p.attnOnGpu = false;
    p.ffnOnGpu = true;
    p.weightsOnGpu = 0.0;
    p.kvOnGpu = 0.0;
    return p;
}

TEST(PerfModel, LayerTimeIsMaxOfComponents)
{
    PerfModel pm = s1Model();
    LayerTime t = pm.layerDecode(cgoPolicy());
    EXPECT_DOUBLE_EQ(
        t.total, std::max({t.commHtoD, t.commDtoH, t.tCpu, t.tGpu}));
    EXPECT_GT(t.total, 0.0);
}

TEST(PerfModel, WeightStreamDominatesSmallBatchT4)
{
    // With a small batch, the per-layer weight transfer (~1.7 GB/32
    // layers over ~16 GB/s) dwarfs everything else: the system is
    // link-bound, the regime Fig. 5 labels below P1/P2.
    PerfModel pm = s1Model();
    LayerTime t = pm.layerDecode(cgoPolicy(64, 16));
    EXPECT_EQ(t.bottleneck(), "cpu-gpu-link");
}

TEST(PerfModel, LargerBatchAmortizesWeights)
{
    PerfModel pm = s1Model();
    double tput_small =
        pm.generationThroughput(cgoPolicy(128, 32),
                                SystemKind::MoeLightning);
    double tput_large =
        pm.generationThroughput(cgoPolicy(1024, 32),
                                SystemKind::MoeLightning);
    EXPECT_GT(tput_large, 2.0 * tput_small);
}

TEST(PerfModel, StaticWeightsReduceLinkTraffic)
{
    PerfModel pm = s1Model();
    Policy p = cgoPolicy();
    Seconds full = pm.weightStreamTime(p);
    p.weightsOnGpu = 0.5;
    EXPECT_NEAR(pm.weightStreamTime(p), 0.5 * full, 1e-12);
}

TEST(PerfModel, CpuAttentionBeatsKvShippingOnT4)
{
    // §3.3 / Fig. 9: CPU attention is ~bc/bcg faster than moving the
    // KV cache through the link for GPU attention.
    PerfModel pm = s1Model();
    Policy gpu_attn = cgoPolicy();
    gpu_attn.attnOnGpu = true;
    Seconds kv_ship = pm.kvLoadTime(32, gpu_attn);
    Seconds cpu_attn = pm.cpuAttnTime(32);
    EXPECT_LT(cpu_attn, kv_ship);
    double ratio = kv_ship / cpu_attn;
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 8.0);  // paper reports 3-4x
}

TEST(PerfModel, BaselineSchedulesAreNoFasterThanCgo)
{
    PerfModel pm = s1Model();
    Policy p = cgoPolicy();
    double cgo = pm.layerDecode(p, SystemKind::MoeLightning).total;
    for (SystemKind sys :
         {SystemKind::FastDecode, SystemKind::FlexGenC}) {
        EXPECT_GE(pm.layerDecode(p, sys).total, cgo)
            << systemName(sys);
    }
}

TEST(PerfModel, FlexGenCSerializationHurts)
{
    PerfModel pm = s1Model();
    Policy p = cgoPolicy();
    double s2 = pm.layerDecode(p, SystemKind::FastDecode).total;
    double s3 = pm.layerDecode(p, SystemKind::FlexGenC).total;
    EXPECT_GT(s3, s2);
}

TEST(PerfModel, PrefillScalesWithBatch)
{
    PerfModel pm = s1Model();
    Seconds t1 = pm.prefillTime(cgoPolicy(256, 32));
    Seconds t2 = pm.prefillTime(cgoPolicy(1024, 32));
    EXPECT_GT(t2, 2.0 * t1);
}

TEST(PerfModel, PaddingReducesThroughput)
{
    PerfModel plain = s1Model(128.0, false);
    PerfModel padded = s1Model(128.0, true);
    Policy p = cgoPolicy();
    EXPECT_GT(
        plain.generationThroughput(p, SystemKind::MoeLightning),
        padded.generationThroughput(p, SystemKind::MoeLightningPadded));
}

TEST(PerfModel, DecodeCtxAveragesGeneration)
{
    PerfModel pm = s1Model(128.0);
    EXPECT_NEAR(pm.decodeCtx(), 77.0 + 64.0, 1e-9);
}

TEST(PerfModel, TensorParallelRaisesThroughput)
{
    ModelConfig m = mixtral8x22b();
    WorkloadShape w{77.0, 418.0, 64.0};
    PerfModel pm2(m, multiT4Host(2), w, true);
    PerfModel pm4(m, multiT4Host(4), w, true);
    Policy p = cgoPolicy(512, 32);
    double t2 =
        pm2.generationThroughput(p, SystemKind::MoeLightningPadded);
    double t4 =
        pm4.generationThroughput(p, SystemKind::MoeLightningPadded);
    EXPECT_GT(t4, 1.8 * t2);
}

TEST(PerfModel, DeepSpeedStreamsFullLayer)
{
    PerfModel pm = s1Model();
    Policy p;
    p.batchSize = 96;
    p.microBatch = 96;
    p.attnOnGpu = true;
    p.ffnOnGpu = true;
    p.weightsOnGpu = 0.0;
    p.kvOnGpu = 1.0;
    LayerTime t = pm.layerDecode(p, SystemKind::DeepSpeed);
    Seconds stream =
        mixtral8x7b().weightBytesPerLayer() / t4Host().effBcg();
    EXPECT_GE(t.total, stream);
}

TEST(PerfModel, RejectsBadWorkload)
{
    EXPECT_THROW(
        PerfModel(mixtral8x7b(), t4Host(), {0.0, 0.0, 64.0}, false),
        FatalError);
}

} // namespace
} // namespace moelight
