#include <gtest/gtest.h>

#include "common/logging.hh"
#include "perf/mem_model.hh"

namespace moelight {
namespace {

WorkloadShape
mtShape(double gen)
{
    return {77.0, 418.0, gen};
}

Policy
basePolicy()
{
    Policy p;
    p.batchSize = 512;
    p.microBatch = 32;
    p.attnOnGpu = false;
    p.ffnOnGpu = true;
    p.weightsOnGpu = 0.0;
    p.kvOnGpu = 0.0;
    return p;
}

TEST(MemModel, KvBytesFormula)
{
    ModelConfig m = mixtral8x7b();
    double b = kvCacheBytes(m, 77, 64, 100);
    EXPECT_DOUBLE_EQ(b, 100.0 * (77 + 64) * m.kvBytesPerToken());
}

TEST(MemModel, CpuKvGrowsWithBatchAndGenLen)
{
    ModelConfig m = mixtral8x7b();
    HardwareConfig hw = t4Host();
    Policy p = basePolicy();
    auto f1 = memoryFootprint(m, hw, mtShape(32), p, false);
    p.batchSize = 1024;
    auto f2 = memoryFootprint(m, hw, mtShape(32), p, false);
    EXPECT_GT(f2.cpuKv, f1.cpuKv);
    auto f3 = memoryFootprint(m, hw, mtShape(256), p, false);
    EXPECT_GT(f3.cpuKv, f2.cpuKv);
}

TEST(MemModel, PaddingInflatesKv)
{
    ModelConfig m = mixtral8x7b();
    HardwareConfig hw = t4Host();
    Policy p = basePolicy();
    auto unpadded = memoryFootprint(m, hw, mtShape(64), p, false);
    auto padded = memoryFootprint(m, hw, mtShape(64), p, true);
    // MTBench max prompt is ~5.4x the mean: padded KV must be much
    // larger (the FlexGen handicap the paper calls out).
    EXPECT_GT(padded.cpuKv, 3.0 * unpadded.cpuKv);
}

TEST(MemModel, WeightRatioMovesBytesBetweenDevices)
{
    ModelConfig m = mixtral8x7b();
    HardwareConfig hw = t4Host();
    Policy p = basePolicy();
    auto f0 = memoryFootprint(m, hw, mtShape(64), p, false);
    p.weightsOnGpu = 0.5;
    auto f5 = memoryFootprint(m, hw, mtShape(64), p, false);
    EXPECT_NEAR(f5.gpuStaticWeights, 0.5 * m.totalWeightBytes(), 1.0);
    EXPECT_NEAR(f0.cpuWeights - f5.cpuWeights,
                0.5 * m.totalWeightBytes(), 1.0);
    // Streamed double buffer shrinks as more weights are static.
    EXPECT_LT(f5.gpuWeightBuffer, f0.gpuWeightBuffer);
}

TEST(MemModel, GpuAttentionChargesWorkingKv)
{
    ModelConfig m = mixtral8x7b();
    HardwareConfig hw = t4Host();
    Policy p = basePolicy();
    auto cpu_attn = memoryFootprint(m, hw, mtShape(64), p, false);
    p.attnOnGpu = true;
    auto gpu_attn = memoryFootprint(m, hw, mtShape(64), p, false);
    EXPECT_GT(gpu_attn.gpuActDecode, cpu_attn.gpuActDecode);
}

TEST(MemModel, PrefillPeakScalesWithPromptLength)
{
    ModelConfig m = mixtral8x7b();
    HardwareConfig hw = t4Host();
    Policy p = basePolicy();
    WorkloadShape summ{1693.0, 1984.0, 64.0};
    auto mt = memoryFootprint(m, hw, mtShape(64), p, false);
    auto sm = memoryFootprint(m, hw, summ, p, false);
    EXPECT_GT(sm.gpuActPrefill, 10.0 * mt.gpuActPrefill);
}

TEST(MemModel, MixtralOnT4NeedsSmallEnoughBatch)
{
    // Sanity: a huge batch must violate the 192 GB host (KV cache),
    // a modest one must fit — bracketing the paper's feasible region.
    ModelConfig m = mixtral8x7b();
    HardwareConfig hw = t4Host();
    Policy p = basePolicy();
    p.batchSize = 512;
    EXPECT_TRUE(fits(memoryFootprint(m, hw, mtShape(64), p, false), hw));
    p.batchSize = 64 * 4096;
    EXPECT_FALSE(
        fits(memoryFootprint(m, hw, mtShape(64), p, false), hw));
}

TEST(MemModel, KvOnGpuRequiresGpuAttention)
{
    Policy p = basePolicy();
    p.kvOnGpu = 0.5;
    EXPECT_THROW(p.validate(), FatalError);
    p.attnOnGpu = true;
    EXPECT_NO_THROW(p.validate());
}

TEST(MemModel, PolicyDivisibility)
{
    Policy p = basePolicy();
    p.batchSize = 100;
    p.microBatch = 32;
    EXPECT_THROW(p.validate(), FatalError);
}

} // namespace
} // namespace moelight
