/**
 * Property sweeps over the performance model: monotonicities that
 * must hold for the optimizer's search to be meaningful, checked
 * across models, hardware and workloads (parameterized gtest).
 */

#include <gtest/gtest.h>

#include "perf/perf_model.hh"

namespace moelight {
namespace {

struct Scenario
{
    const char *name;
    ModelConfig model;
    HardwareConfig hw;
    WorkloadShape w;
};

std::vector<Scenario>
scenarios()
{
    return {
        {"8x7b-t4-mt", mixtral8x7b(), t4Host(), {77, 418, 128}},
        {"8x7b-l4-mt", mixtral8x7b(), l4Host(), {77, 418, 64}},
        {"8x7b-l4-summ", mixtral8x7b(), l4Host(), {1693, 1984, 64}},
        {"8x22b-2t4-mt", mixtral8x22b(), multiT4Host(2),
         {77, 418, 64}},
        {"dbrx-4t4-mt", dbrx(), multiT4Host(4), {77, 418, 32}},
    };
}

class PerfProperties : public ::testing::TestWithParam<std::size_t>
{
  protected:
    Scenario sc_ = scenarios()[GetParam()];
    PerfModel pm_{sc_.model, sc_.hw, sc_.w, /*padded=*/true};

    Policy
    cgo(std::size_t n, std::size_t mu, double rw = 0.0) const
    {
        Policy p;
        p.batchSize = n;
        p.microBatch = mu;
        p.attnOnGpu = false;
        p.ffnOnGpu = true;
        p.weightsOnGpu = rw;
        return p;
    }
};

TEST_P(PerfProperties, LayerTimeIncreasesWithBatch)
{
    Seconds prev = 0.0;
    for (std::size_t n_ub : {1u, 2u, 4u, 8u, 16u}) {
        Seconds t =
            pm_.layerDecode(cgo(32 * n_ub, 32)).total;
        EXPECT_GE(t + 1e-12, prev);
        prev = t;
    }
}

TEST_P(PerfProperties, DecodeThroughputNeverWorseWithBatch)
{
    // tokens-per-second in pure decode must be non-decreasing in N
    // at fixed mu (more amortization, same per-ub costs).
    double prev = 0.0;
    for (std::size_t n_ub : {1u, 2u, 4u, 8u, 16u, 32u}) {
        Policy p = cgo(32 * n_ub, 32);
        LayerTime lt = pm_.layerDecode(p);
        double tput = static_cast<double>(p.batchSize) / lt.total;
        EXPECT_GE(tput * (1 + 1e-9), prev);
        prev = tput;
    }
}

TEST_P(PerfProperties, MoreStaticWeightsNeverSlowsDecode)
{
    for (double rw : {0.0, 0.25, 0.5, 0.75}) {
        Seconds lo = pm_.layerDecode(cgo(256, 32, rw + 0.25)).total;
        Seconds hi = pm_.layerDecode(cgo(256, 32, rw)).total;
        EXPECT_LE(lo, hi + 1e-12);
    }
}

TEST_P(PerfProperties, CpuAttentionScalesLinearly)
{
    Seconds t32 = pm_.cpuAttnTime(32);
    Seconds t128 = pm_.cpuAttnTime(128);
    EXPECT_NEAR(t128 / t32, 4.0, 0.01);
}

TEST_P(PerfProperties, NaiveCpuAttentionSlower)
{
    EXPECT_GT(pm_.cpuAttnTimeNaive(64), pm_.cpuAttnTime(64));
}

TEST_P(PerfProperties, BaselinesNeverBeatCgoClosedForm)
{
    Policy p = cgo(256, 32);
    Seconds cgo_t =
        pm_.layerDecode(p, SystemKind::MoeLightning).total;
    for (SystemKind sys :
         {SystemKind::FastDecode, SystemKind::FlexGenC})
        EXPECT_GE(pm_.layerDecode(p, sys).total + 1e-12, cgo_t)
            << sc_.name << " " << systemName(sys);
}

TEST_P(PerfProperties, FootprintMonotoneInBatch)
{
    MemoryFootprint a = pm_.footprint(cgo(128, 32));
    MemoryFootprint b = pm_.footprint(cgo(1024, 32));
    EXPECT_GT(b.cpuKv, a.cpuKv);
    EXPECT_GE(b.cpuPeak(), a.cpuPeak());
    // GPU side is batch-size independent for the KV-on-CPU policy
    // (only mu enters the working set).
    EXPECT_DOUBLE_EQ(b.gpuPeak(), a.gpuPeak());
}

TEST_P(PerfProperties, PrefillLinearishInBatch)
{
    Seconds t1 = pm_.prefillTime(cgo(256, 32));
    Seconds t2 = pm_.prefillTime(cgo(512, 32));
    EXPECT_GT(t2, t1);
    EXPECT_LE(t2, 2.2 * t1);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, PerfProperties,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

} // namespace
} // namespace moelight
