#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "tensor/tensor.hh"

namespace moelight {
namespace {

TEST(Tensor, ShapeAndZeroInit)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.rank(), 3u);
    EXPECT_EQ(t.numel(), 24u);
    EXPECT_EQ(t.dim(0), 2u);
    EXPECT_EQ(t.dim(2), 4u);
    for (float v : t.flat())
        EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, RowMajorIndexing)
{
    Tensor t({2, 3});
    t.at(1, 2) = 5.0f;
    EXPECT_EQ(t.at(1 * 3 + 2), 5.0f);
    EXPECT_EQ(t.row(1)[2], 5.0f);
}

TEST(Tensor, ThreeDimIndexing)
{
    Tensor t({2, 3, 4});
    t.at(1, 2, 3) = 9.0f;
    EXPECT_EQ(t.at((1 * 3 + 2) * 4 + 3), 9.0f);
}

TEST(Tensor, CloneIsDeep)
{
    Tensor a({4});
    a.fill(2.0f);
    Tensor b = a.clone();
    b.at(0) = 7.0f;
    EXPECT_EQ(a.at(0), 2.0f);
    EXPECT_EQ(b.at(0), 7.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 6});
    t.at(1, 1) = 3.0f;
    t.reshape({3, 4});
    EXPECT_EQ(t.dim(0), 3u);
    EXPECT_EQ(t.at(1 * 4 + 3), 3.0f);
}

TEST(Tensor, ReshapeRejectsCountChange)
{
    Tensor t({2, 6});
    EXPECT_THROW(t.reshape({5}), FatalError);
}

TEST(Tensor, RejectsZeroDim)
{
    EXPECT_THROW(Tensor({0, 3}), FatalError);
}

TEST(Tensor, RejectsRankFive)
{
    EXPECT_THROW(Tensor({1, 1, 1, 1, 1}), FatalError);
}

TEST(Tensor, MaxAbsDiff)
{
    Tensor a({3}), b({3});
    a.fill(1.0f);
    b.fill(1.0f);
    b.at(2) = -1.0f;
    EXPECT_FLOAT_EQ(a.maxAbsDiff(b), 2.0f);
}

TEST(Tensor, OutOfRangePanics)
{
    Tensor t({2, 2});
    EXPECT_THROW(t.at(4), PanicError);
    EXPECT_THROW(t.at(2, 0), PanicError);
}

TEST(Tensor, FillUniformInRange)
{
    Tensor t({64});
    Rng rng(3);
    fillUniform(t, rng, -0.5f, 0.5f);
    bool nonzero = false;
    for (float v : t.flat()) {
        EXPECT_GE(v, -0.5f);
        EXPECT_LT(v, 0.5f);
        nonzero |= v != 0.0f;
    }
    EXPECT_TRUE(nonzero);
}

} // namespace
} // namespace moelight
