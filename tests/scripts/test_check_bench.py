"""Unit tests for scripts/check_bench.py — the CI bench gate. Covers
the rule grammar, ISA-keyed rules against matching / mismatching /
absent simd records, and the malformed-input paths that must fail the
gate rather than traceback. Run via `ctest -R test_check_bench`.
"""

import contextlib
import io
import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parents[2] / "scripts"))

import check_bench  # noqa: E402


def run(path, *rules):
    """Invoke check_bench.main the way CI does; returns (code, out)."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = check_bench.main(["check_bench.py", str(path)]
                                + list(rules))
    return code, out.getvalue()


class BenchDoc:
    """Context manager writing a BENCH json document to a tempfile."""

    def __init__(self, records):
        self._records = records

    def __enter__(self):
        self._tmp = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False)
        json.dump({"records": self._records}, self._tmp)
        self._tmp.close()
        return self._tmp.name

    def __exit__(self, *exc):
        Path(self._tmp.name).unlink()


class UsageTest(unittest.TestCase):
    def test_too_few_args_returns_2(self):
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            self.assertEqual(check_bench.main(["check_bench.py"]), 2)
            self.assertEqual(
                check_bench.main(["check_bench.py", "x.json"]), 2)


class PlainRuleTest(unittest.TestCase):
    def test_value_at_or_above_bound_passes(self):
        with BenchDoc([{"name": "gqa", "speedup": 2.0}]) as p:
            code, out = run(p, "gqa.speedup>=2.0")
            self.assertEqual(code, 0)
            self.assertIn("ok", out)

    def test_value_below_bound_fails(self):
        with BenchDoc([{"name": "gqa", "speedup": 0.9}]) as p:
            code, out = run(p, "gqa.speedup>=1.0")
            self.assertEqual(code, 1)
            self.assertIn("FAIL", out)

    def test_missing_record_fails(self):
        with BenchDoc([{"name": "gqa", "speedup": 2.0}]) as p:
            code, out = run(p, "ghost.speedup>=1.0")
            self.assertEqual(code, 1)
            self.assertIn("not found", out)

    def test_missing_field_fails(self):
        with BenchDoc([{"name": "gqa", "speedup": 2.0}]) as p:
            code, out = run(p, "gqa.latency>=1.0")
            self.assertEqual(code, 1)
            self.assertIn("not found", out)

    def test_non_numeric_value_fails(self):
        with BenchDoc([{"name": "gqa", "speedup": "fast"}]) as p:
            code, out = run(p, "gqa.speedup>=1.0")
            self.assertEqual(code, 1)
            self.assertIn("non-numeric", out)

    def test_malformed_rule_fails(self):
        with BenchDoc([{"name": "gqa", "speedup": 2.0}]) as p:
            code, out = run(p, "gqa.speedup>2.0")
            self.assertEqual(code, 1)
            self.assertIn("malformed rule", out)

    def test_one_failure_fails_whole_run(self):
        with BenchDoc([{"name": "gqa", "speedup": 2.0}]) as p:
            code, _ = run(p, "gqa.speedup>=1.0", "gqa.speedup>=99.0")
            self.assertEqual(code, 1)


class IsaKeyedRuleTest(unittest.TestCase):
    RECORDS = [{"name": "simd", "isa": "avx2"},
               {"name": "gqa", "speedup": 1.5}]

    def test_matching_isa_enforced(self):
        with BenchDoc(self.RECORDS) as p:
            self.assertEqual(run(p, "avx2:gqa.speedup>=1.0")[0], 0)
            self.assertEqual(run(p, "avx2:gqa.speedup>=9.0")[0], 1)

    def test_mismatching_isa_skipped(self):
        with BenchDoc(self.RECORDS) as p:
            # A floor the document can't satisfy — but it keys a
            # different ISA than the one measured, so it's skipped.
            code, out = run(p, "avx512:gqa.speedup>=99.0")
            self.assertEqual(code, 0)
            self.assertIn("skip", out)

    def test_isa_rule_without_simd_record_fails(self):
        with BenchDoc([{"name": "gqa", "speedup": 1.5}]) as p:
            code, out = run(p, "avx2:gqa.speedup>=1.0")
            self.assertEqual(code, 1)
            self.assertIn("no simd record", out)


class MalformedInputTest(unittest.TestCase):
    def test_missing_file_fails(self):
        code, out = run("/nonexistent/BENCH.json", "a.b>=1.0")
        self.assertEqual(code, 1)
        self.assertIn("cannot read", out)

    def test_invalid_json_fails(self):
        with tempfile.NamedTemporaryFile("w", suffix=".json",
                                         delete=False) as f:
            f.write("{not json")
        try:
            code, out = run(f.name, "a.b>=1.0")
            self.assertEqual(code, 1)
            self.assertIn("malformed", out)
        finally:
            Path(f.name).unlink()

    def test_records_without_name_fails(self):
        with tempfile.NamedTemporaryFile("w", suffix=".json",
                                         delete=False) as f:
            json.dump({"records": [{"speedup": 2.0}]}, f)
        try:
            code, out = run(f.name, "a.b>=1.0")
            self.assertEqual(code, 1)
            self.assertIn("malformed", out)
        finally:
            Path(f.name).unlink()


if __name__ == "__main__":
    unittest.main()
