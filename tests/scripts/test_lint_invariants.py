"""Unit tests for scripts/lint_invariants.py: each invariant gets a
fixture tree that violates it (the linter must fail with the right
invariant tag) plus the matching allowed placement (the linter must
stay silent). Run via `ctest -R test_lint_invariants` or
`python3 -m unittest discover -s tests/scripts -p test_lint_invariants.py`.
"""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parents[2] / "scripts"))

import lint_invariants  # noqa: E402


class FixtureTree:
    """Context manager: a throwaway repo root you add files to."""

    def __enter__(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)
        return self

    def __exit__(self, *exc):
        self._tmp.cleanup()

    def write(self, rel, text):
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path


def tags(violations):
    return [v[0] for v in violations]


class NakedSyncTest(unittest.TestCase):
    def test_mutex_outside_sync_hh_flagged(self):
        with FixtureTree() as t:
            t.write("src/runtime/foo.cc",
                    "#include <mutex>\nstd::mutex mu;\n")
            v = lint_invariants.check_naked_sync(t.root)
            self.assertEqual(tags(v), ["naked-sync"])
            self.assertEqual(v[0][1], "src/runtime/foo.cc")
            self.assertEqual(v[0][2], 2)

    def test_condition_variable_flagged(self):
        with FixtureTree() as t:
            t.write("src/a.hh", "std::condition_variable cv;\n")
            self.assertEqual(
                tags(lint_invariants.check_naked_sync(t.root)),
                ["naked-sync"])

    def test_sync_hh_itself_allowed(self):
        with FixtureTree() as t:
            t.write("src/common/sync.hh",
                    "std::mutex mu_;\nstd::condition_variable cv_;\n")
            self.assertEqual(
                lint_invariants.check_naked_sync(t.root), [])

    def test_commented_out_mutex_ignored(self):
        with FixtureTree() as t:
            t.write("src/b.cc",
                    "// std::mutex old;\n/* std::mutex gone */\n")
            self.assertEqual(
                lint_invariants.check_naked_sync(t.root), [])


class SimdConfinedTest(unittest.TestCase):
    def test_intrinsic_outside_simd_tu_flagged(self):
        with FixtureTree() as t:
            t.write("src/runtime/hot.cc",
                    "#include <immintrin.h>\n"
                    "__m256 v = _mm256_setzero_ps();\n")
            v = lint_invariants.check_simd_confined(t.root)
            self.assertTrue(v)
            self.assertTrue(all(tag == "simd-confined"
                                for tag in tags(v)))

    def test_avx_tu_allowed(self):
        with FixtureTree() as t:
            t.write("src/kernels/simd/simd_avx512.cc",
                    "#include <immintrin.h>\n"
                    "__m512 v = _mm512_setzero_ps();\n")
            self.assertEqual(
                lint_invariants.check_simd_confined(t.root), [])


class ErrorSitesTest(unittest.TestCase):
    def test_undocumented_site_flagged(self):
        with FixtureTree() as t:
            t.write("src/runtime/x.cc",
                    'throw EngineError(ErrorCode::KvExhausted,'
                    ' "kv.mystery", "boom");\n')
            t.write("docs/error_model.md", "# sites\nkv.alloc\n")
            v = lint_invariants.check_error_sites(t.root)
            self.assertEqual(tags(v), ["error-sites"])
            self.assertIn("kv.mystery", v[0][3])

    def test_documented_site_clean_even_multiline(self):
        with FixtureTree() as t:
            # Real throw sites wrap after EngineError( — the regex
            # must tolerate the newline before ErrorCode.
            t.write("src/runtime/x.cc",
                    "throw EngineError(\n"
                    '    ErrorCode::KvExhausted, "kv.alloc",\n'
                    '    "out of pages");\n')
            t.write("docs/error_model.md", "`kv.alloc` — kv pool\n")
            self.assertEqual(
                lint_invariants.check_error_sites(t.root), [])

    def test_variable_site_skipped(self):
        with FixtureTree() as t:
            t.write("src/runtime/inject.cc",
                    "throw EngineError(code, site, msg);\n")
            t.write("docs/error_model.md", "")
            self.assertEqual(
                lint_invariants.check_error_sites(t.root), [])


class BenchKeysTest(unittest.TestCase):
    CI_HEADER = "jobs:\n  bench:\n    run: |\n      check_bench.py x "

    def test_unknown_record_flagged(self):
        with FixtureTree() as t:
            t.write(".github/workflows/ci.yml",
                    self.CI_HEADER + '"ghost.speedup>=1.0"\n')
            t.write("bench/fig.cc",
                    'json.record("real").field("speedup", s);\n')
            v = lint_invariants.check_bench_keys(t.root)
            self.assertEqual(tags(v), ["bench-keys"])
            self.assertIn("ghost.speedup", v[0][3])

    def test_literal_record_and_field_clean(self):
        with FixtureTree() as t:
            t.write(".github/workflows/ci.yml",
                    self.CI_HEADER + '"real.speedup>=1.0" '
                    '"avx2:real.speedup>=2.0"\n')
            t.write("bench/fig.cc",
                    'json.record("real").field("speedup", s);\n')
            self.assertEqual(
                lint_invariants.check_bench_keys(t.root), [])

    def test_concatenated_record_name_clean(self):
        with FixtureTree() as t:
            # Mirrors bench/fig4: record(std::string("quant_") + tag)
            # with tag literals elsewhere in the same file.
            t.write(".github/workflows/ci.yml",
                    self.CI_HEADER + '"quant_int8.ratio>=1.0"\n')
            t.write("bench/fig.cc",
                    'for (const char *tag : {"int8", "int4"})\n'
                    '  json.record(std::string("quant_") + tag)\n'
                    '      .field("ratio", r);\n')
            self.assertEqual(
                lint_invariants.check_bench_keys(t.root), [])

    def test_field_must_be_in_same_file_as_record(self):
        with FixtureTree() as t:
            t.write(".github/workflows/ci.yml",
                    self.CI_HEADER + '"real.latency>=1.0"\n')
            t.write("bench/a.cc",
                    'json.record("real").field("speedup", s);\n')
            t.write("bench/b.cc",
                    'json.record("other").field("latency", s);\n')
            self.assertEqual(
                tags(lint_invariants.check_bench_keys(t.root)),
                ["bench-keys"])


class IncludeCcTest(unittest.TestCase):
    def test_include_cc_flagged(self):
        with FixtureTree() as t:
            t.write("tests/test_x.cc",
                    '#include "runtime/engine.cc"\n')
            v = lint_invariants.check_include_cc(t.root)
            self.assertEqual(tags(v), ["include-cc"])

    def test_include_header_clean(self):
        with FixtureTree() as t:
            t.write("src/a.cc", '#include "runtime/engine.hh"\n')
            self.assertEqual(
                lint_invariants.check_include_cc(t.root), [])


class RawIndexParamsTest(unittest.TestCase):
    def test_raw_seq_param_in_runtime_header_flagged(self):
        with FixtureTree() as t:
            t.write("src/runtime/cache.hh",
                    "void append(std::size_t seq, float v);\n")
            v = lint_invariants.check_raw_index_params(t.root)
            self.assertEqual(tags(v), ["raw-index-params"])
            self.assertIn("'seq'", v[0][3])

    def test_all_domain_names_and_int_widths_flagged(self):
        with FixtureTree() as t:
            t.write("src/kernels/k.hh",
                    "void a(uint32_t layer);\n"
                    "void b(unsigned head);\n"
                    "void c(int block);\n"
                    "void d(std::int64_t page);\n"
                    "void e(size_t slot);\n")
            v = lint_invariants.check_raw_index_params(t.root)
            self.assertEqual(tags(v), ["raw-index-params"] * 5)

    def test_count_and_strong_type_params_clean(self):
        with FixtureTree() as t:
            # Count/extent names are not index names; strong types are
            # the fix, not a violation.
            t.write("src/runtime/cache.hh",
                    "void append(SeqId seq, LayerIdx layer);\n"
                    "void resize(std::size_t seqLen, "
                    "std::size_t pageTokens);\n"
                    "void shape(std::size_t nQ, std::size_t layers);\n")
            self.assertEqual(
                lint_invariants.check_raw_index_params(t.root), [])

    def test_scope_is_runtime_and_kernels_headers_only(self):
        with FixtureTree() as t:
            # .cc internals and src/common are out of scope: locals
            # and loop counters there may stay raw.
            t.write("src/runtime/cache.cc",
                    "static void step(std::size_t slot) {}\n")
            t.write("src/common/thread_pool.hh",
                    "void workerLoop(std::size_t slot);\n")
            self.assertEqual(
                lint_invariants.check_raw_index_params(t.root), [])

    def test_commented_out_param_ignored(self):
        with FixtureTree() as t:
            t.write("src/runtime/cache.hh",
                    "// void old(std::size_t seq);\n"
                    "void fresh(SeqId seq);\n")
            self.assertEqual(
                lint_invariants.check_raw_index_params(t.root), [])


class CliTest(unittest.TestCase):
    def test_exit_codes(self):
        with FixtureTree() as t:
            t.write("src/ok.cc", "int x = 0;\n")
            self.assertEqual(
                lint_invariants.main(["--repo", str(t.root)]), 0)
            t.write("src/bad.cc", "std::mutex mu;\n")
            self.assertEqual(
                lint_invariants.main(["--repo", str(t.root)]), 1)

    def test_real_repo_is_clean(self):
        repo = Path(__file__).resolve().parents[2]
        self.assertEqual(lint_invariants.lint(repo), [])


if __name__ == "__main__":
    unittest.main()
