// Positive-path unit tests for the strong index types: arithmetic,
// ordering, range iteration, hashing as map keys, formatting, and the
// checked narrowing helper. The negative half of the contract — what
// must NOT compile — lives in tests/compile_fail/.
#include "common/strong_types.hh"

#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/arena.hh"
#include "runtime/page_table.hh"
#include "runtime/status.hh"

namespace moelight {
namespace {

TEST(StrongIndex, ConstructionAndValue)
{
    SeqId s(42);
    EXPECT_EQ(s.value(), 42u);
    SeqId zero;
    EXPECT_EQ(zero.value(), 0u);
    // Widths cast silently at the explicit constructor.
    LayerIdx l(std::uint8_t{7});
    EXPECT_EQ(l.value(), 7u);
}

TEST(StrongIndex, SameDomainArithmetic)
{
    SeqId s(10);
    EXPECT_EQ((s + 5).value(), 15u);
    EXPECT_EQ((s - 3).value(), 7u);
    EXPECT_EQ((s + 5) - s, 5u); // index - index = raw distance

    SeqId t = s;
    EXPECT_EQ((++t).value(), 11u);
    EXPECT_EQ((t++).value(), 11u);
    EXPECT_EQ(t.value(), 12u);
    EXPECT_EQ((--t).value(), 11u);
    EXPECT_EQ((t--).value(), 11u);
    EXPECT_EQ(t.value(), 10u);

    t += 4;
    EXPECT_EQ(t.value(), 14u);
    t -= 2;
    EXPECT_EQ(t.value(), 12u);
}

TEST(StrongIndex, Ordering)
{
    SeqId a(1), b(2), c(2);
    EXPECT_LT(a, b);
    EXPECT_GT(b, a);
    EXPECT_EQ(b, c);
    EXPECT_NE(a, b);
    EXPECT_LE(b, c);
    EXPECT_GE(c, a);

    // Ordered containers work out of the box via operator<=>.
    std::map<LayerIdx, int> byLayer;
    byLayer[LayerIdx(3)] = 30;
    byLayer[LayerIdx(1)] = 10;
    byLayer[LayerIdx(2)] = 20;
    EXPECT_EQ(byLayer.begin()->first, LayerIdx(1));
    EXPECT_EQ(byLayer.rbegin()->first, LayerIdx(3));
}

TEST(StrongIndex, RangeIteration)
{
    std::vector<LayerIdx> seen;
    for (LayerIdx l : IndexRange(LayerIdx(4)))
        seen.push_back(l);
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen.front(), LayerIdx(0));
    EXPECT_EQ(seen.back(), LayerIdx(3));

    IndexRange half(SeqId(2), SeqId(5));
    EXPECT_EQ(half.size(), 3u);
    EXPECT_FALSE(half.empty());
    std::size_t sum = 0;
    for (SeqId s : half)
        sum += s.value();
    EXPECT_EQ(sum, 2u + 3u + 4u);

    IndexRange empty(SeqId(7), SeqId(7));
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.size(), 0u);
    EXPECT_EQ(empty.begin(), empty.end());
}

TEST(StrongIndex, HashingAsMapKey)
{
    std::unordered_map<SeqId, int> refs;
    refs[SeqId(0)] = 1;
    refs[SeqId(17)] = 2;
    refs[SeqId(17)] += 10;
    EXPECT_EQ(refs.size(), 2u);
    EXPECT_EQ(refs.at(SeqId(17)), 12);
    EXPECT_EQ(refs.count(SeqId(3)), 0u);

    // The hash delegates to the raw representation.
    EXPECT_EQ(std::hash<SeqId>{}(SeqId(99)),
              std::hash<std::size_t>{}(99u));
}

TEST(StrongIndex, FormatsAsBareNumber)
{
    std::ostringstream os;
    os << "seq " << SeqId(12) << " layer " << LayerIdx(3);
    EXPECT_EQ(os.str(), "seq 12 layer 3");

    // Narrow reps print numerically, not as characters.
    using TinyIdx = StrongIndex<struct TinyTag, std::int8_t>;
    std::ostringstream tiny;
    tiny << TinyIdx(65);
    EXPECT_EQ(tiny.str(), "65");
}

TEST(StrongIndex, DomainSpecificReps)
{
    // BlockId stores uint32_t, PageId int32_t with a -1 sentinel.
    static_assert(std::is_same_v<BlockId::rep_type, std::uint32_t>);
    static_assert(std::is_same_v<PageId::rep_type, std::int32_t>);
    EXPECT_EQ(kInvalidPage.value(), -1);
    EXPECT_NE(PageId(0), kInvalidPage);
}

TEST(StrongIndex, IsZeroCostLayout)
{
    static_assert(sizeof(SeqId) == sizeof(std::size_t));
    static_assert(sizeof(BlockId) == sizeof(std::uint32_t));
    static_assert(std::is_trivially_copyable_v<SeqId>);
    static_assert(std::is_trivially_destructible_v<SeqId>);
}

TEST(NarrowIndex, FittingValuesPass)
{
    EXPECT_EQ(narrowIndex<BlockId>(std::size_t{7}).value(), 7u);
    EXPECT_EQ(narrowIndex<BlockId>(
                  std::size_t{std::numeric_limits<std::uint32_t>::max()})
                  .value(),
              std::numeric_limits<std::uint32_t>::max());
    EXPECT_EQ(narrowIndex<PageId>(std::size_t{0}).value(), 0);
}

TEST(NarrowIndex, OverflowThrowsTypedError)
{
    // The static_cast these calls replaced would have wrapped to 0.
    std::size_t tooBig =
        std::size_t{std::numeric_limits<std::uint32_t>::max()} + 1;
    try {
        (void)narrowIndex<BlockId>(tooBig);
        FAIL() << "narrowIndex accepted an overflowing value";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), ErrorCode::IndexOverflow);
        EXPECT_EQ(e.site(), "index.narrow");
    }
}

TEST(NarrowIndex, NegativeIntoUnsignedThrows)
{
    EXPECT_THROW((void)narrowIndex<BlockId>(-1), EngineError);
    // ...but a negative fits PageId's signed storage.
    EXPECT_EQ(narrowIndex<PageId>(-1), kInvalidPage);
}

} // namespace
} // namespace moelight
