#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/table.hh"

namespace moelight {
namespace {

TEST(Table, BuildsAlignedText)
{
    Table t({"name", "value"});
    t.newRow().add("alpha").add(1.5, 2);
    t.newRow().add("b").add(12LL);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numCols(), 2u);
    std::string text = t.toText();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("1.50"), std::string::npos);
    EXPECT_NE(text.find("12"), std::string::npos);
}

TEST(Table, CsvRoundTripStructure)
{
    Table t({"a", "b", "c"});
    t.newRow().add(1LL).add(2LL).add(3LL);
    EXPECT_EQ(t.toCsv(), "a,b,c\n1,2,3\n");
}

TEST(Table, RejectsEmptyHeader)
{
    EXPECT_THROW(Table({}), FatalError);
}

TEST(Table, RejectsOverfullRow)
{
    Table t({"only"});
    t.newRow().add("x");
    EXPECT_THROW(t.add("y"), PanicError);
}

TEST(Table, RejectsAddBeforeRow)
{
    Table t({"only"});
    EXPECT_THROW(t.add("x"), PanicError);
}

TEST(Table, DetectsShortPreviousRow)
{
    Table t({"a", "b"});
    t.newRow().add("1");
    EXPECT_THROW(t.newRow(), PanicError);
}

} // namespace
} // namespace moelight
