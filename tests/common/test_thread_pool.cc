#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace moelight {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsNoop)
{
    ThreadPool pool(2);
    std::atomic<int> n{0};
    pool.parallelFor(0, [&](std::size_t) { ++n; });
    EXPECT_EQ(n.load(), 0);
}

TEST(ThreadPool, SingleIndexRuns)
{
    ThreadPool pool(3);
    std::atomic<int> n{0};
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++n;
    });
    EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, SequentialReuse)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(64, [&](std::size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 64u * 63u / 2u);
    }
}

TEST(ThreadPool, PropagatesException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(16,
                                  [&](std::size_t i) {
                                      if (i == 7)
                                          fatal("bad index");
                                  }),
                 FatalError);
    // Pool still usable afterwards.
    std::atomic<int> n{0};
    pool.parallelFor(8, [&](std::size_t) { ++n; });
    EXPECT_EQ(n.load(), 8);
}

TEST(ThreadPool, WorksWithSingleThread)
{
    ThreadPool pool(1);
    std::vector<int> order;
    pool.parallelFor(8, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order.size(), 8u);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency)
{
    ThreadPool pool;
    EXPECT_GE(pool.numThreads(), 1u);
}

} // namespace
} // namespace moelight
