#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace moelight {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsNoop)
{
    ThreadPool pool(2);
    std::atomic<int> n{0};
    pool.parallelFor(0, [&](std::size_t) { ++n; });
    EXPECT_EQ(n.load(), 0);
}

TEST(ThreadPool, SingleIndexRuns)
{
    ThreadPool pool(3);
    std::atomic<int> n{0};
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++n;
    });
    EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, SequentialReuse)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(64, [&](std::size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 64u * 63u / 2u);
    }
}

TEST(ThreadPool, PropagatesException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(16,
                                  [&](std::size_t i) {
                                      if (i == 7)
                                          fatal("bad index");
                                  }),
                 FatalError);
    // Pool still usable afterwards.
    std::atomic<int> n{0};
    pool.parallelFor(8, [&](std::size_t) { ++n; });
    EXPECT_EQ(n.load(), 8);
}

TEST(ThreadPool, WorksWithSingleThread)
{
    ThreadPool pool(1);
    std::vector<int> order;
    pool.parallelFor(8, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order.size(), 8u);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency)
{
    ThreadPool pool;
    EXPECT_GE(pool.numThreads(), 1u);
}

TEST(ThreadPoolChunked, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    // Uneven grains, including grain > n, grain == n, and grain 0
    // (treated as 1).
    for (std::size_t grain : {0u, 1u, 3u, 7u, 64u, 999u, 1000u, 5000u}) {
        std::vector<std::atomic<int>> hits(1000);
        pool.parallelForChunked(
            1000, grain,
            [&](std::size_t begin, std::size_t end, std::size_t) {
                for (std::size_t i = begin; i < end; ++i)
                    ++hits[i];
            });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1) << "grain " << grain;
    }
}

TEST(ThreadPoolChunked, ChunksRespectGrainAndOrderWithinChunk)
{
    ThreadPool pool(3);
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallelForChunked(
        103, 10,
        [&](std::size_t begin, std::size_t end, std::size_t) {
            std::lock_guard<std::mutex> lk(mu);
            chunks.emplace_back(begin, end);
        });
    EXPECT_EQ(chunks.size(), 11u);  // ceil(103/10)
    for (auto [b, e] : chunks) {
        EXPECT_EQ(b % 10, 0u);
        EXPECT_LE(e - b, 10u);
        EXPECT_TRUE(e - b == 10 || e == 103u);
    }
}

TEST(ThreadPoolChunked, WorkerSlotsAreStableAndInRange)
{
    ThreadPool pool(4);
    // Per-slot counters: a slot must never be used by two threads at
    // once; hammer a shared per-slot scratch and check no tearing.
    std::size_t slots = pool.maxParallelism();
    EXPECT_EQ(slots, 5u);
    std::vector<std::vector<int>> scratch(slots);
    for (auto &s : scratch)
        s.assign(64, 0);
    std::atomic<bool> bad{false};
    std::vector<std::atomic<int>> in_use(slots);
    pool.parallelForChunked(
        2000, 3,
        [&](std::size_t begin, std::size_t end, std::size_t worker) {
            if (worker >= slots) {
                bad = true;
                return;
            }
            if (in_use[worker].fetch_add(1) != 0)
                bad = true;  // two threads in the same slot
            for (std::size_t i = begin; i < end; ++i)
                scratch[worker][i % 64] += 1;
            in_use[worker].fetch_sub(1);
        });
    EXPECT_FALSE(bad.load());
    long total = 0;
    for (const auto &s : scratch)
        for (int v : s)
            total += v;
    EXPECT_EQ(total, 2000);
}

TEST(ThreadPoolChunked, PropagatesExceptionAndStaysUsable)
{
    ThreadPool pool(3);
    EXPECT_THROW(
        pool.parallelForChunked(
            100, 7,
            [&](std::size_t begin, std::size_t end, std::size_t) {
                for (std::size_t i = begin; i < end; ++i)
                    if (i == 55)
                        fatal("bad chunk");
            }),
        FatalError);
    std::atomic<int> n{0};
    pool.parallelForChunked(
        64, 5, [&](std::size_t begin, std::size_t end, std::size_t) {
            n += static_cast<int>(end - begin);
        });
    EXPECT_EQ(n.load(), 64);
}

TEST(ThreadPoolChunked, StragglerWorkersOutliveNothing)
{
    // Far more workers than chunks, many rounds back-to-back: a
    // worker that wakes late enters the batch with every chunk
    // already claimed and must still be drained before the dispatch
    // returns (the batch lives on the caller's stack). This is the
    // use-after-scope shape; under TSan/ASan it would fail loudly.
    ThreadPool pool(4);
    for (int round = 0; round < 500; ++round) {
        std::atomic<int> n{0};
        pool.parallelForChunked(
            1 + round % 2, 1,
            [&](std::size_t begin, std::size_t end, std::size_t) {
                n += static_cast<int>(end - begin);
            });
        EXPECT_EQ(n.load(), 1 + round % 2);
    }
}

TEST(ThreadPoolChunked, StressAlternatingShapes)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::size_t n = 1 + static_cast<std::size_t>(round) * 13 % 97;
        std::size_t grain = 1 + static_cast<std::size_t>(round) % 9;
        std::atomic<std::size_t> sum{0};
        pool.parallelForChunked(
            n, grain,
            [&](std::size_t begin, std::size_t end, std::size_t) {
                std::size_t local = 0;
                for (std::size_t i = begin; i < end; ++i)
                    local += i;
                sum += local;
            });
        EXPECT_EQ(sum.load(), n * (n - 1) / 2);
    }
}

} // namespace
} // namespace moelight
