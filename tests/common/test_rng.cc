#include <gtest/gtest.h>

#include "common/rng.hh"

namespace moelight {
namespace {

TEST(Rng, DeterministicBySeed)
{
    Rng a(42), b(42), c(43);
    double va = a.uniform(), vb = b.uniform(), vc = c.uniform();
    EXPECT_DOUBLE_EQ(va, vb);
    EXPECT_NE(va, vc);
}

TEST(Rng, UniformRespectsRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, LogNormalMeanApproximatesTarget)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.logNormal(100.0, 0.5);
    double mean = sum / n;
    EXPECT_NEAR(mean, 100.0, 5.0);
}

} // namespace
} // namespace moelight
