/**
 * Integration tests across the analytical model, the optimizers and
 * the event-level simulator: the end-to-end system ranking the paper
 * reports must emerge from the *simulated* schedules with each
 * system's own searched policy — the same pipeline the fig7/tab4
 * benches run, pinned here as a regression test.
 */

#include <gtest/gtest.h>

#include "policy/optimizer.hh"
#include "sched/schedules.hh"

namespace moelight {
namespace {

SearchConfig
fastGrid()
{
    SearchConfig cfg;
    cfg.microBatches = {16, 32, 64, 96};
    cfg.numUbs = {1, 2, 4, 8, 16, 32, 64};
    cfg.weightRatioSteps = 4;
    cfg.kvRatioSteps = 2;
    return cfg;
}

double
simTput(SystemKind sys, const PerfModel &pm)
{
    std::optional<PolicyChoice> pc;
    switch (sys) {
      case SystemKind::FlexGen:
        pc = flexGenPolicy(pm, false);
        break;
      case SystemKind::FlexGenC:
        pc = flexGenPolicy(pm, true);
        break;
      case SystemKind::DeepSpeed:
        pc = deepSpeedPolicy(pm);
        break;
      default:
        pc = searchPolicy(pm, sys, fastGrid());
        break;
    }
    if (!pc)
        return 0.0;
    ScheduleOptions opt;
    opt.decodeSteps = 3;
    opt.layers = 4;
    return simulateThroughput(sys, pm, pc->policy, opt).tokensPerSec;
}

class SystemOrdering : public ::testing::TestWithParam<int>
{
};

TEST_P(SystemOrdering, PaperRankingHoldsOnS1)
{
    int gen = GetParam();
    PerfModel pm(mixtral8x7b(), t4Host(),
                 {77.0, 418.0, static_cast<double>(gen)}, true);
    double ml = simTput(SystemKind::MoeLightningPadded, pm);
    double fg = simTput(SystemKind::FlexGen, pm);
    double fgc = simTput(SystemKind::FlexGenC, pm);
    double ds = simTput(SystemKind::DeepSpeed, pm);
    EXPECT_GT(ml, fg) << "gen=" << gen;
    EXPECT_GE(fg, fgc) << "gen=" << gen;
    EXPECT_GT(fg, ds) << "gen=" << gen;
}

INSTANTIATE_TEST_SUITE_P(GenLens, SystemOrdering,
                         ::testing::Values(32, 128, 256));

TEST(SystemOrdering, UnpaddedBeatsPadded)
{
    // Fig. 7's MoE-Lightning vs MoE-Lightning(p) gap: variable-length
    // batching avoids the padded KV and attention overheads.
    WorkloadShape w{77.0, 418.0, 128.0};
    PerfModel unpadded(mixtral8x7b(), t4Host(), w, false);
    PerfModel padded(mixtral8x7b(), t4Host(), w, true);
    double ml = simTput(SystemKind::MoeLightning, unpadded);
    double mlp = simTput(SystemKind::MoeLightningPadded, padded);
    EXPECT_GT(ml, mlp);
}

TEST(SystemOrdering, SuperLinearTensorParallelScaling)
{
    // S6 -> S7 (paper §5.3): doubling the GPUs more than doubles
    // MoE-Lightning's simulated throughput.
    WorkloadShape w{77.0, 418.0, 64.0};
    Setting s6 = settingS6(), s7 = settingS7();
    PerfModel pm2(s6.model, s6.hw, w, true);
    PerfModel pm4(s7.model, s7.hw, w, true);
    double a = simTput(SystemKind::MoeLightningPadded, pm2);
    double b = simTput(SystemKind::MoeLightningPadded, pm4);
    EXPECT_GT(b, 2.0 * a);
}

TEST(SystemOrdering, SimAgreesWithClosedFormRanking)
{
    // For a fixed policy, the simulator and the Eq. 12-based closed
    // forms must rank the CPU-attention schedules identically.
    PerfModel pm(mixtral8x7b(), t4Host(), {1693.0, 1984.0, 64.0},
                 true);
    Policy p;
    p.batchSize = 512;
    p.microBatch = 64;
    p.attnOnGpu = false;
    p.ffnOnGpu = true;
    ScheduleOptions opt;
    opt.decodeSteps = 3;
    opt.layers = 4;
    std::vector<SystemKind> systems{SystemKind::MoeLightning,
                                    SystemKind::FastDecode,
                                    SystemKind::FlexGenC};
    std::vector<double> sim_step, model_step;
    for (SystemKind sys : systems) {
        sim_step.push_back(
            simulateThroughput(sys, pm, p, opt).decodeStep);
        model_step.push_back(pm.layerDecode(p, sys).total);
    }
    for (std::size_t i = 0; i + 1 < systems.size(); ++i) {
        EXPECT_LE(sim_step[i], sim_step[i + 1] * 1.001);
        EXPECT_LE(model_step[i], model_step[i + 1] * 1.001);
    }
}

} // namespace
} // namespace moelight
