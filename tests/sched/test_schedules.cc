#include <gtest/gtest.h>

#include "sched/schedules.hh"

namespace moelight {
namespace {

PerfModel
s1Model()
{
    return PerfModel(mixtral8x7b(), t4Host(), {77.0, 418.0, 64.0},
                     true);
}

Policy
cgoPolicy(std::size_t n = 256, std::size_t mu = 32)
{
    Policy p;
    p.batchSize = n;
    p.microBatch = mu;
    p.attnOnGpu = false;
    p.ffnOnGpu = true;
    return p;
}

ScheduleOptions
smallOpts()
{
    ScheduleOptions o;
    o.decodeSteps = 3;
    o.layers = 4;
    return o;
}

TEST(Schedules, GraphSizeScalesWithWork)
{
    PerfModel pm = s1Model();
    TaskGraph g = buildSchedule(SystemKind::MoeLightning, pm,
                                cgoPolicy(), smallOpts());
    // 8 micro-batches x 4 layers x 3 steps x 5 tasks + weight pages.
    EXPECT_GT(g.size(), 3u * 4u * 8u * 5u);
}

TEST(Schedules, AllSystemsComplete)
{
    PerfModel pm = s1Model();
    Policy cpu_pol = cgoPolicy();
    Policy gpu_pol = cgoPolicy();
    gpu_pol.attnOnGpu = true;
    for (SystemKind sys :
         {SystemKind::MoeLightning, SystemKind::FastDecode,
          SystemKind::FlexGenC}) {
        TaskGraph g = buildSchedule(sys, pm, cpu_pol, smallOpts());
        SimResult r = simulate(g);
        EXPECT_GT(r.makespan, 0) << systemName(sys);
    }
    for (SystemKind sys :
         {SystemKind::FlexGen, SystemKind::DeepSpeed}) {
        TaskGraph g = buildSchedule(sys, pm, gpu_pol, smallOpts());
        SimResult r = simulate(g);
        EXPECT_GT(r.makespan, 0) << systemName(sys);
    }
}

TEST(Schedules, CgoPipeBeatsUnpagedPipeline)
{
    // Fig. 6: paged weights remove the HtoD head-of-line blocking, so
    // CGOPipe's steady step is never slower than S2's.
    PerfModel pm = s1Model();
    Policy p = cgoPolicy();
    auto cgo =
        simulateThroughput(SystemKind::MoeLightning, pm, p, smallOpts());
    auto s2 =
        simulateThroughput(SystemKind::FastDecode, pm, p, smallOpts());
    EXPECT_LE(cgo.decodeStep, s2.decodeStep * 1.001);
}

TEST(Schedules, UnpagedPipelineBeatsSerialCpuAttention)
{
    // The S2-vs-S3 gap (overlapped vs serialized CPU attention) shows
    // up when CPU attention is a large share of the layer time — use
    // the long-context summarization shape. In purely link-bound
    // regimes both degrade to the weight-transfer time.
    PerfModel pm(mixtral8x7b(), t4Host(), {1693.0, 1984.0, 64.0},
                 true);
    Policy p = cgoPolicy(1024, 64);
    auto s2 =
        simulateThroughput(SystemKind::FastDecode, pm, p, smallOpts());
    auto s3 =
        simulateThroughput(SystemKind::FlexGenC, pm, p, smallOpts());
    // The unpaged weight block dominates both, so the margin is
    // modest — but the ordering and the GPU utilization gap must
    // hold (S2 overlaps CPU attention with GPU compute).
    EXPECT_LT(s2.decodeStep, s3.decodeStep);
    auto gpu = [](const SimThroughput &t) {
        return t.sim.utilization[static_cast<std::size_t>(
            ResourceKind::Gpu)];
    };
    EXPECT_GE(gpu(s2), gpu(s3));
}

TEST(Schedules, CgoPipeKeepsLinkBusy)
{
    // CGOPipe's whole point: on a link-bound config the HtoD link
    // utilization should be near 1 in steady state.
    PerfModel pm = s1Model();
    auto cgo = simulateThroughput(SystemKind::MoeLightning, pm,
                                  cgoPolicy(), smallOpts());
    double htod = cgo.sim.utilization[static_cast<std::size_t>(
        ResourceKind::HtoD)];
    EXPECT_GT(htod, 0.85);
}

TEST(Schedules, SerialScheduleWastesGpu)
{
    PerfModel pm = s1Model();
    auto cgo = simulateThroughput(SystemKind::MoeLightning, pm,
                                  cgoPolicy(), smallOpts());
    auto s3 = simulateThroughput(SystemKind::FlexGenC, pm, cgoPolicy(),
                                 smallOpts());
    // Serial CPU attention leaves both GPU and link more idle.
    auto util = [](const SimThroughput &t, ResourceKind r) {
        return t.sim.utilization[static_cast<std::size_t>(r)];
    };
    EXPECT_GT(util(cgo, ResourceKind::HtoD),
              util(s3, ResourceKind::HtoD));
}

TEST(Schedules, ThroughputMatchesAnalyticalModelRoughly)
{
    // The DES and the closed-form Eq. 12 must agree within ~25% for
    // CGOPipe (same durations, near-perfect overlap).
    PerfModel pm = s1Model();
    Policy p = cgoPolicy();
    auto simulated = simulateThroughput(SystemKind::MoeLightning, pm, p,
                                        smallOpts());
    LayerTime lt = pm.layerDecode(p, SystemKind::MoeLightning);
    double analytic_step = lt.total * static_cast<double>(pm.model().l);
    EXPECT_NEAR(simulated.decodeStep, analytic_step,
                0.25 * analytic_step);
}

TEST(Schedules, DeepSpeedSingleMicroBatch)
{
    PerfModel pm = s1Model();
    Policy p;
    p.batchSize = 64;
    p.microBatch = 64;
    p.attnOnGpu = true;
    p.kvOnGpu = 1.0;
    auto ds =
        simulateThroughput(SystemKind::DeepSpeed, pm, p, smallOpts());
    EXPECT_GT(ds.tokensPerSec, 0.0);
    // Weight streaming must dominate the step time.
    Seconds stream = pm.model().weightBytesPerLayer() /
                     pm.hardware().effBcg() *
                     static_cast<double>(pm.model().l);
    EXPECT_GE(ds.decodeStep, 0.9 * stream);
}

TEST(Schedules, MoreUbsSmoothsPipeline)
{
    // With one micro-batch there is no CPU/GPU overlap; with 8 the
    // decode step must shrink substantially.
    PerfModel pm = s1Model();
    auto one = simulateThroughput(SystemKind::MoeLightning, pm,
                                  cgoPolicy(32, 32), smallOpts());
    auto eight = simulateThroughput(SystemKind::MoeLightning, pm,
                                    cgoPolicy(256, 32), smallOpts());
    // 8x the tokens in less than 8x the step time (overlap wins).
    EXPECT_LT(eight.decodeStep, 8.0 * one.decodeStep);
}

TEST(Schedules, StepsScaleLinearly)
{
    PerfModel pm = s1Model();
    ScheduleOptions o = smallOpts();
    TaskGraph g3 =
        buildSchedule(SystemKind::MoeLightning, pm, cgoPolicy(), o);
    o.decodeSteps = 6;
    TaskGraph g6 =
        buildSchedule(SystemKind::MoeLightning, pm, cgoPolicy(), o);
    SimResult r3 = simulate(g3);
    SimResult r6 = simulate(g6);
    EXPECT_NEAR(static_cast<double>(r6.makespan) /
                    static_cast<double>(r3.makespan),
                2.0, 0.35);
}

} // namespace
} // namespace moelight
