#include <gtest/gtest.h>

#include "policy/optimizer.hh"

namespace moelight {
namespace {

PerfModel
s1Model(double gen = 128.0, bool padded = true)
{
    return PerfModel(mixtral8x7b(), t4Host(), {77.0, 418.0, gen},
                     padded);
}

SearchConfig
fastGrid()
{
    SearchConfig cfg;
    cfg.microBatches = {8, 16, 32, 64};
    cfg.numUbs = {1, 2, 4, 8, 16, 32, 64};
    cfg.weightRatioSteps = 4;
    cfg.kvRatioSteps = 2;
    return cfg;
}

TEST(Optimizer, FindsFeasiblePolicy)
{
    PerfModel pm = s1Model();
    auto best = searchPolicy(pm, SystemKind::MoeLightning, fastGrid());
    ASSERT_TRUE(best.has_value());
    EXPECT_NO_THROW(best->policy.validate());
    EXPECT_TRUE(pm.feasible(best->policy));
    EXPECT_GT(best->throughput, 0.0);
}

TEST(Optimizer, ChoosesCpuAttentionOnT4)
{
    // Paper §4: "for the memory-constrained scenarios we target, CPU
    // attention is consistently better" => A_g = 0 under S1.
    PerfModel pm = s1Model();
    auto best = searchPolicy(pm, SystemKind::MoeLightning, fastGrid());
    ASSERT_TRUE(best.has_value());
    EXPECT_FALSE(best->policy.attnOnGpu);
    EXPECT_TRUE(best->policy.ffnOnGpu);
}

TEST(Optimizer, BeatsHandPickedPolicies)
{
    PerfModel pm = s1Model();
    auto best = searchPolicy(pm, SystemKind::MoeLightning, fastGrid());
    ASSERT_TRUE(best.has_value());
    for (std::size_t mu : {8u, 32u}) {
        for (std::size_t nub : {2u, 16u}) {
            Policy p;
            p.microBatch = mu;
            p.batchSize = mu * nub;
            p.attnOnGpu = false;
            p.ffnOnGpu = true;
            if (!pm.feasible(p))
                continue;
            EXPECT_GE(best->throughput * (1 + 1e-9),
                      pm.generationThroughput(
                          p, SystemKind::MoeLightning));
        }
    }
}

TEST(Optimizer, RespectsAttentionRestriction)
{
    PerfModel pm = s1Model();
    SearchConfig cfg = fastGrid();
    cfg.allowCpuAttention = false;
    auto best = searchPolicy(pm, SystemKind::MoeLightning, cfg);
    ASSERT_TRUE(best.has_value());
    EXPECT_TRUE(best->policy.attnOnGpu);
}

TEST(Optimizer, InfeasibleWhenHostTooSmall)
{
    HardwareConfig hw = t4Host();
    hw.cpuMem = 8 * GiB;  // cannot even hold the weights
    PerfModel pm(mixtral8x7b(), hw, {77.0, 418.0, 64.0}, false);
    auto best = searchPolicy(pm, SystemKind::MoeLightning, fastGrid());
    EXPECT_FALSE(best.has_value());
}

TEST(FlexGenPolicy, PrefersSmallMicroBatchBigBatch)
{
    // Tab. 5: FlexGen's own policy lands on a much smaller mu and a
    // large N relative to the CGOPipe policy.
    PerfModel pm = s1Model();
    auto fg = flexGenPolicy(pm, /*cpuAttention=*/false);
    auto ours = searchPolicy(pm, SystemKind::MoeLightning, fastGrid());
    ASSERT_TRUE(fg.has_value());
    ASSERT_TRUE(ours.has_value());
    EXPECT_LE(fg->policy.microBatch, ours->policy.microBatch);
    EXPECT_GT(fg->policy.numUbs(), ours->policy.numUbs());
}

TEST(FlexGenPolicy, CpuAttentionVariantIsSlower)
{
    // Paper: FlexGen(c) is consistently worse than FlexGen's GPU
    // attention mode under their schedule (S3 vs S4).
    PerfModel pm = s1Model();
    auto s4 = flexGenPolicy(pm, false);
    auto s3 = flexGenPolicy(pm, true);
    ASSERT_TRUE(s4.has_value());
    ASSERT_TRUE(s3.has_value());
    EXPECT_GE(s4->throughput, s3->throughput);
}

TEST(DeepSpeedPolicy, SingleMicroBatchKvOnGpu)
{
    PerfModel pm = s1Model();
    auto ds = deepSpeedPolicy(pm);
    ASSERT_TRUE(ds.has_value());
    EXPECT_EQ(ds->policy.batchSize, ds->policy.microBatch);
    EXPECT_TRUE(ds->policy.attnOnGpu);
    EXPECT_DOUBLE_EQ(ds->policy.kvOnGpu, 1.0);
    EXPECT_DOUBLE_EQ(ds->policy.weightsOnGpu, 0.0);
    // Its batch is tiny compared to offloading systems.
    auto ours = searchPolicy(pm, SystemKind::MoeLightning, fastGrid());
    ASSERT_TRUE(ours.has_value());
    EXPECT_LT(ds->policy.batchSize, ours->policy.batchSize);
}

TEST(Optimizer, SystemRanking)
{
    // End-to-end modelled ordering on S1 must match the paper:
    // MoE-Lightning(p) > FlexGen > {FlexGen(c), DeepSpeed}.
    PerfModel pm = s1Model();
    auto ours = searchPolicy(pm, SystemKind::MoeLightningPadded,
                             fastGrid());
    auto fg = flexGenPolicy(pm, false);
    auto fgc = flexGenPolicy(pm, true);
    auto ds = deepSpeedPolicy(pm);
    ASSERT_TRUE(ours && fg && fgc && ds);
    EXPECT_GT(ours->throughput, fg->throughput);
    EXPECT_GT(fg->throughput, fgc->throughput);
    EXPECT_GT(fg->throughput, ds->throughput);
}

} // namespace
} // namespace moelight
