#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/units.hh"
#include "model/model_config.hh"

namespace moelight {
namespace {

TEST(ModelConfig, MixtralParameterCountIsPlausible)
{
    ModelConfig m = mixtral8x7b();
    // Mixtral 8x7B has ~46.7B parameters.
    EXPECT_NEAR(m.totalParams() / 1e9, 46.7, 1.5);
}

TEST(ModelConfig, Mixtral22bParameterCountIsPlausible)
{
    ModelConfig m = mixtral8x22b();
    // Mixtral 8x22B has ~141B parameters.
    EXPECT_NEAR(m.totalParams() / 1e9, 141.0, 6.0);
}

TEST(ModelConfig, DbrxParameterCountIsPlausible)
{
    ModelConfig m = dbrx();
    // DBRX has 132B parameters.
    EXPECT_NEAR(m.totalParams() / 1e9, 132.0, 8.0);
}

TEST(ModelConfig, ExpertFfnDominatesMixtralWeights)
{
    // Paper §1: expert FFNs are the bulk of MoE memory (>85% for
    // Mixtral 8x22B; >256 GB of expert weights at f16).
    ModelConfig m = mixtral8x22b();
    double expert_bytes = m.ne * m.expertParams() * m.weightByte() *
                          static_cast<double>(m.l);
    EXPECT_GT(expert_bytes / m.totalWeightBytes(), 0.85);
    EXPECT_GT(expert_bytes, 256.0 * 1e9);
}

TEST(ModelConfig, WeightBytesScaleWithDataType)
{
    ModelConfig m = mixtral8x7b();
    double f16 = m.totalWeightBytes();
    m.dtWeight = DataType::INT4;
    EXPECT_NEAR(m.totalWeightBytes() / f16, 0.25, 1e-9);
}

TEST(ModelConfig, KvBytesPerToken)
{
    ModelConfig m = mixtral8x7b();
    // 2 (K and V) * nkv * headDim * 2 bytes * layers.
    double expect = 2.0 * 8 * 128 * 2.0 * 32;
    EXPECT_DOUBLE_EQ(m.kvBytesPerToken(), expect);
}

TEST(ModelConfig, ValidateRejectsBadHeads)
{
    ModelConfig m = mixtral8x7b();
    m.nq = 30;  // not a multiple of nkv=8, and nq*headDim != h1
    EXPECT_THROW(m.validate(), FatalError);
}

TEST(ModelConfig, ValidateRejectsTopKTooLarge)
{
    ModelConfig m = mixtral8x7b();
    m.k = 9;
    EXPECT_THROW(m.validate(), FatalError);
}

TEST(ModelConfig, TinyModelValid)
{
    ModelConfig m = tinyMixtral();
    EXPECT_NO_THROW(m.validate());
    EXPECT_LT(m.totalParams(), 2e6);
}

TEST(ModelConfig, DataTypeNames)
{
    EXPECT_EQ(dataTypeName(DataType::F16), "f16");
    EXPECT_EQ(dataTypeName(DataType::INT4), "int4");
    EXPECT_EQ(bytesOf(DataType::INT4), 0.5);
}

} // namespace
} // namespace moelight
