#include <gtest/gtest.h>

#include "common/logging.hh"
#include "model/op_cost.hh"

namespace moelight {
namespace {

TEST(OpCost, FlopsScaleLinearlyWithMicroBatch)
{
    ModelConfig m = mixtral8x7b();
    OpCost c1 = postAttnDecodeCost(m, 16);
    OpCost c2 = postAttnDecodeCost(m, 32);
    EXPECT_NEAR(c2.flops / c1.flops, 2.0, 1e-9);
    // Weight bytes do NOT scale with micro-batch (dense expert touch).
    EXPECT_DOUBLE_EQ(c1.weightBytes, c2.weightBytes);
}

TEST(OpCost, AttentionIntensityIndependentOfBatch)
{
    // Paper §3.3: attention operational intensity is independent of
    // batch size since flops and bytes are both proportional to it.
    ModelConfig m = mixtral8x7b();
    OpCost a = attnCoreDecodeCost(m, 8, 512);
    OpCost b = attnCoreDecodeCost(m, 64, 512);
    EXPECT_NEAR(a.flops / a.kvBytes, b.flops / b.kvBytes, 1e-9);
}

TEST(OpCost, AttentionIntensityMatchesClosedForm)
{
    // flops = 4*mu*ctx*nq*hd; kv bytes = mu*ctx*2*nkv*hd*kvB
    // => I = 2*nq / (nkv*kvB) = 2*h1/(nkv*hd*kvB).
    ModelConfig m = mixtral8x7b();
    double expect = 2.0 * static_cast<double>(m.nq) /
                    (static_cast<double>(m.nkv) * m.kvByte());
    EXPECT_NEAR(attnIntensityVsKv(m), expect, 1e-9);
    // GQA 32/8 with f16: I = 2*32/(8*2) = 4 FLOP/byte — the "quite
    // low" intensity Fig. 4 shows.
    EXPECT_NEAR(attnIntensityVsKv(m), 4.0, 1e-9);
}

TEST(OpCost, Int4KvDoublesAttentionIntensityVsF16)
{
    ModelConfig m = mixtral8x7b();
    double f16 = attnIntensityVsKv(m);
    m.dtKv = DataType::INT4;
    EXPECT_NEAR(attnIntensityVsKv(m) / f16, 4.0, 1e-9);
}

TEST(OpCost, FfnIntensityGrowsWithBatch)
{
    ModelConfig m = mixtral8x7b();
    double i32 = ffnIntensityVsWeights(m, 32);
    double i128 = ffnIntensityVsWeights(m, 128);
    EXPECT_NEAR(i128 / i32, 4.0, 1e-9);
    // Closed form: 6*n*k*h1*h2 / (ne*3*h1*h2*wb) = 2*n*k/(ne*wb).
    EXPECT_NEAR(i32, 2.0 * 32 * 2 / (8 * 2.0), 1e-9);
}

TEST(OpCost, SparseExpertTouchForTinyBatches)
{
    ModelConfig m = mixtral8x7b();
    OpCost dense = postAttnDecodeCost(m, 1, /*denseExperts=*/true);
    OpCost sparse = postAttnDecodeCost(m, 1, /*denseExperts=*/false);
    EXPECT_LT(sparse.weightBytes, dense.weightBytes);
    EXPECT_DOUBLE_EQ(sparse.flops, dense.flops);
}

TEST(OpCost, LayerDecodeIsSumOfParts)
{
    ModelConfig m = mixtral8x7b();
    OpCost total = layerDecodeCost(m, 16, 512);
    OpCost sum = preAttnDecodeCost(m, 16) +
                 attnCoreDecodeCost(m, 16, 512) +
                 postAttnDecodeCost(m, 16);
    EXPECT_DOUBLE_EQ(total.flops, sum.flops);
    EXPECT_DOUBLE_EQ(total.totalBytes(), sum.totalBytes());
}

TEST(OpCost, PrefillQuadraticInSeqLen)
{
    ModelConfig m = mixtral8x7b();
    // Same total tokens, longer sequences => more attention flops.
    OpCost short_seq = layerPrefillCost(m, 4096, 128);
    OpCost long_seq = layerPrefillCost(m, 4096, 1024);
    EXPECT_GT(long_seq.flops, short_seq.flops);
}

TEST(OpCost, RejectsNonPositiveContext)
{
    ModelConfig m = mixtral8x7b();
    EXPECT_THROW(attnCoreDecodeCost(m, 1, 0.0), FatalError);
    EXPECT_THROW(layerPrefillCost(m, 0.0, 10.0), FatalError);
}

} // namespace
} // namespace moelight
