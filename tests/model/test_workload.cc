#include <gtest/gtest.h>

#include "common/logging.hh"
#include "model/workload.hh"

namespace moelight {
namespace {

class WorkloadShapes
    : public ::testing::TestWithParam<WorkloadConfig>
{
};

TEST_P(WorkloadShapes, MeanAndMaxMatchTable)
{
    WorkloadConfig cfg = GetParam();
    auto reqs = generateRequests(cfg, 2000, 123);
    ASSERT_EQ(reqs.size(), 2000u);
    EXPECT_NEAR(meanPromptLen(reqs), cfg.avgPrompt,
                0.1 * cfg.avgPrompt);
    EXPECT_LE(maxPromptLen(reqs), cfg.maxPrompt);
    for (const auto &r : reqs) {
        EXPECT_GE(r.promptLen, 4);
        EXPECT_EQ(r.genLen, cfg.genLen);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Tab3, WorkloadShapes,
    ::testing::Values(mtbench(32), mtbench(256), syntheticReasoning(),
                      summarization()));

TEST(Workload, DeterministicBySeed)
{
    auto a = generateRequests(mtbench(64), 100, 5);
    auto b = generateRequests(mtbench(64), 100, 5);
    auto c = generateRequests(mtbench(64), 100, 6);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].promptLen, b[i].promptLen);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs |= a[i].promptLen != c[i].promptLen;
    EXPECT_TRUE(differs);
}

TEST(Workload, MtbenchHasWideSpread)
{
    auto reqs = generateRequests(mtbench(64), 2000, 1);
    int mx = maxPromptLen(reqs);
    // The MTBench mix has long-tail prompts well above the mean.
    EXPECT_GT(mx, 200);
}

TEST(Workload, SummarizationIsLongPrompt)
{
    auto reqs = generateRequests(summarization(), 500, 2);
    EXPECT_GT(meanPromptLen(reqs), 1500.0);
}

TEST(Workload, Tab3Configs)
{
    EXPECT_EQ(syntheticReasoning().maxPrompt, 256);
    EXPECT_EQ(syntheticReasoning().genLen, 50);
    EXPECT_EQ(summarization().maxPrompt, 1984);
    EXPECT_EQ(summarization().genLen, 64);
    EXPECT_EQ(mtbench(128).genLen, 128);
    EXPECT_NEAR(mtbench(128).avgPrompt, 77.0, 1e-9);
}

TEST(Workload, RejectsBadArgs)
{
    EXPECT_THROW(mtbench(0), FatalError);
    EXPECT_THROW(generateRequests(mtbench(32), 0), FatalError);
}

} // namespace
} // namespace moelight
