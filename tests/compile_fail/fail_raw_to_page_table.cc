// The retrofitted runtime API itself must reject raw integers:
// PageTable::appendToken takes (SeqId, LayerIdx), and the historical
// call shape appendToken(seq, layer) with two size_t locals — the
// exact shape that allowed transposition — must no longer compile.
#include <cstddef>

#include "common/strong_types.hh"
#include "runtime/page_table.hh"

namespace {

moelight::AppendSlot
appendOne(moelight::PageTable &table, std::size_t seq, std::size_t layer)
{
    moelight::AppendSlot ok =
        table.appendToken(moelight::SeqId(seq),
                          moelight::LayerIdx(layer)); // explicit: fine
#ifdef MOELIGHT_EXPECT_FAIL
    ok = table.appendToken(seq, layer); // raw integers must not compile
#endif
    return ok;
}

} // namespace

int
main()
{
    // Scaffolding only: never executed, the suite is -fsyntax-only.
    (void)&appendOne;
    return 0;
}
