// Assignment across domains must not compile, including between
// domains with different storage widths (uint32_t BlockId vs size_t
// TokenPos) — width compatibility is not domain compatibility.
#include "common/strong_types.hh"
#include "runtime/page_table.hh"

int
main()
{
    moelight::BlockId block(7);
    moelight::TokenPos pos(7);
    moelight::BlockId copy = block; // same domain: fine
#ifdef MOELIGHT_EXPECT_FAIL
    copy = pos; // cross-domain assignment must not compile
#endif
    (void)pos;
    return static_cast<int>(copy.value()) - 7;
}
