// `value()` is the only exit back to a raw integer; an implicit
// conversion would let a strong index silently feed any size_t
// parameter and defeat the whole scheme.
#include "common/strong_types.hh"

namespace {

std::size_t
rawSink(std::size_t n)
{
    return n;
}

} // namespace

int
main()
{
    moelight::SeqId seq(5);
    std::size_t n = rawSink(seq.value()); // explicit exit: fine
#ifdef MOELIGHT_EXPECT_FAIL
    n += rawSink(seq); // implicit conversion to raw must not compile
#endif
    return static_cast<int>(n) - 5;
}
