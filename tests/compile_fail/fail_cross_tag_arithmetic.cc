// Same-domain arithmetic is the pointer-like subset (index + raw
// offset, index - index); adding indices of two different domains has
// no meaning and must not compile.
#include "common/strong_types.hh"

int
main()
{
    moelight::SeqId seq(4);
    moelight::LayerIdx layer(2);
    moelight::SeqId next = seq + 1;     // index + raw offset: fine
    std::size_t dist = next - seq;      // same-domain distance: fine
#ifdef MOELIGHT_EXPECT_FAIL
    auto bad = seq + layer; // cross-domain addition must not compile
    (void)bad;
#endif
    (void)layer;
    return static_cast<int>(dist) - 1;
}
