// Comparing indices of different domains is meaningless and must not
// compile; same-domain comparison stays available.
#include "common/strong_types.hh"

int
main()
{
    moelight::SeqId a(1), b(2);
    moelight::LayerIdx layer(1);
    bool ok = a < b && a != b; // same domain: fine
#ifdef MOELIGHT_EXPECT_FAIL
    ok = ok && (a == layer); // cross-domain equality must not compile
#endif
    (void)layer;
    return ok ? 0 : 1;
}
