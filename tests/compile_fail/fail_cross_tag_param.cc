// A LayerIdx must not be accepted where a SeqId parameter is
// declared: this is the transposed-(seq, layer) bug the strong types
// exist to catch.
#include "common/strong_types.hh"

namespace {

std::size_t
contextLenOf(moelight::SeqId seq)
{
    return seq.value();
}

} // namespace

int
main()
{
    moelight::SeqId seq(3);
    moelight::LayerIdx layer(7);
    std::size_t n = contextLenOf(seq);
#ifdef MOELIGHT_EXPECT_FAIL
    n += contextLenOf(layer); // wrong domain: LayerIdx is not a SeqId
#endif
    (void)layer;
    return static_cast<int>(n);
}
