// IndexRange yields its own domain's index and nothing else: a
// range-for over layers cannot bind the element as a SeqId.
#include "common/strong_types.hh"

int
main()
{
    std::size_t sum = 0;
    for (moelight::LayerIdx l :
         moelight::IndexRange(moelight::LayerIdx(4)))
        sum += l.value(); // same domain: fine
#ifdef MOELIGHT_EXPECT_FAIL
    for (moelight::SeqId s :
         moelight::IndexRange(moelight::LayerIdx(4))) // wrong element
        sum += s.value();
#endif
    return static_cast<int>(sum) - 6;
}
