// Construction from a raw integer is explicit: `SeqId(3)` is the
// visible, greppable point where a value enters the domain; copy
// initialization from a bare literal must not compile.
#include "common/strong_types.hh"

int
main()
{
    moelight::SeqId ok(3); // explicit: fine
#ifdef MOELIGHT_EXPECT_FAIL
    moelight::SeqId bad = 3; // implicit construction must not compile
    (void)bad;
#endif
    return static_cast<int>(ok.value()) - 3;
}
