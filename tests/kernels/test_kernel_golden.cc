/**
 * Golden-value tests: every optimized kernel is cross-checked against
 * the retained naive implementation (moelight::naive) across odd and
 * remainder-heavy shapes — m/k/n not multiples of the tile widths,
 * context lengths not multiples of pageTokens, GQA group sizes 1, 4
 * and 8 — plus determinism guarantees the runtime relies on (the
 * pool-parallel GEMM and the batched attention must be bit-identical
 * to their serial forms).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "kernels/attention.hh"
#include "kernels/linalg.hh"
#include "kernels/naive_kernels.hh"
#include "kernels/ops.hh"
#include "kernels/paged_kv_fixture.hh"
#include "kernels/simd/simd.hh"

namespace moelight {
namespace {

std::vector<float>
randomVec(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-1, 1));
    return v;
}

struct GemmDims
{
    std::size_t m, k, n;
};

class GemmGolden : public ::testing::TestWithParam<GemmDims>
{
};

TEST_P(GemmGolden, MatmulMatchesNaive)
{
    auto [m, k, n] = GetParam();
    auto a = randomVec(m * k, m * 131 + k);
    auto b = randomVec(k * n, k * 17 + n);
    std::vector<float> c(m * n), ref(m * n);
    matmul(a.data(), b.data(), c.data(), m, k, n);
    naive::matmul(a.data(), b.data(), ref.data(), m, k, n);
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_NEAR(c[i], ref[i], 1e-3f) << "at " << i;
}

TEST_P(GemmGolden, TransposedBMatchesNaive)
{
    auto [m, k, n] = GetParam();
    auto a = randomVec(m * k, m * 7 + k * 3 + n);
    auto w = randomVec(n * k, n * 11 + k);
    std::vector<float> c(m * n), ref(m * n);
    matmulTransposedB(a.data(), w.data(), c.data(), m, k, n);
    naive::matmulTransposedB(a.data(), w.data(), ref.data(), m, k, n);
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_NEAR(c[i], ref[i], 1e-3f) << "at " << i;
}

TEST_P(GemmGolden, PooledTransposedBIsBitIdenticalToSerial)
{
    auto [m, k, n] = GetParam();
    auto a = randomVec(m * k, m + k + n);
    auto w = randomVec(n * k, m * 5 + 1);
    std::vector<float> serial(m * n), pooled(m * n);
    matmulTransposedB(a.data(), w.data(), serial.data(), m, k, n);
    ThreadPool pool(3);
    matmulTransposedB(a.data(), w.data(), pooled.data(), m, k, n,
                      &pool);
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], pooled[i]) << "at " << i;
}

// Shapes straddle the register-tile (4-wide j, 8-row blocks) and
// k-unroll (8) boundaries: exact multiples, one-off remainders, and
// degenerate single-row/col cases.
INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmGolden,
    ::testing::Values(GemmDims{1, 1, 1}, GemmDims{1, 7, 5},
                      GemmDims{3, 8, 4}, GemmDims{8, 16, 12},
                      GemmDims{9, 17, 13}, GemmDims{16, 33, 31},
                      GemmDims{17, 64, 65}, GemmDims{33, 9, 3},
                      GemmDims{2, 100, 1}));

TEST(Dot4Golden, BitIdenticalToDot)
{
    for (std::size_t n : {1u, 3u, 7u, 8u, 9u, 16u, 31u, 32u, 100u}) {
        auto x = randomVec(n, n);
        auto y = randomVec(4 * n, n + 1);
        float out[4];
        dot4(x.data(), y.data(), y.data() + n, y.data() + 2 * n,
             y.data() + 3 * n, n, out);
        for (std::size_t i = 0; i < 4; ++i)
            EXPECT_EQ(out[i], dot(x.data(), y.data() + i * n, n))
                << "n=" << n << " lane " << i;
    }
}

TEST(FastExp, TracksLibmExp)
{
    // Attention logits land in roughly [-30, 0] after max-shift.
    for (float x = -30.0f; x <= 0.0f; x += 0.013f)
        EXPECT_NEAR(fastExpf(x), std::exp(x), 1e-5f) << "x=" << x;
    for (float x = -87.0f; x <= 80.0f; x += 1.7f) {
        float r = std::exp(x);
        EXPECT_NEAR(fastExpf(x) / r, 1.0f, 1e-5f) << "x=" << x;
    }
}

TEST(FastSoftmax, MatchesExactSoftmax)
{
    for (std::size_t n : {1u, 5u, 64u, 257u}) {
        auto a = randomVec(n, n * 3);
        for (auto &v : a)
            v *= 10.0f;  // spread the logits
        auto b = a;
        softmaxInPlace(a);
        softmaxInPlaceFast(b);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(a[i], b[i], 1e-5f) << "n=" << n << " i=" << i;
    }
}

struct AttnShape
{
    std::size_t nq, nkv, hd, ctx, pageTokens;
};

class AttnGolden : public ::testing::TestWithParam<AttnShape>
{
};

TEST_P(AttnGolden, DecodeMatchesNaive)
{
    AttnShape s = GetParam();
    Rng kv_rng(s.ctx * 100 + s.nq);
    PagedKvFixture kv(s.ctx, s.nkv, s.hd, s.pageTokens, kv_rng);
    auto q = randomVec(s.nq * s.hd, s.ctx + 7);
    float scale = 1.0f / std::sqrt(static_cast<float>(s.hd));

    std::vector<float> out(s.nq * s.hd), ref(s.nq * s.hd);
    std::vector<float> scratch(
        gqaAttnScratchFloats(s.nq, s.nkv, s.ctx));
    std::vector<float> naive_scratch(s.ctx);
    gqaDecodeAttention(q.data(), s.nq, kv.view, out.data(), scale,
                       scratch);
    naive::gqaDecodeAttention(q.data(), s.nq, kv.view, ref.data(),
                              scale, naive_scratch);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out[i], ref[i], 1e-4f) << "at " << i;
}

TEST_P(AttnGolden, BatchWithPoolIsBitIdenticalToSerial)
{
    AttnShape s = GetParam();
    std::size_t batch = 5;
    // Per-token KV views of *different* context lengths to exercise
    // the max-context scratch sizing.
    std::vector<PagedKvFixture> kvs;
    std::vector<KvView> views;
    for (std::size_t t = 0; t < batch; ++t) {
        std::size_t ctx = 1 + (s.ctx * (t + 1)) / batch;
        Rng rng(t * 31 + 5);
        kvs.emplace_back(ctx, s.nkv, s.hd, s.pageTokens, rng);
        views.push_back(kvs.back().view);
    }
    auto q = randomVec(batch * s.nq * s.hd, 99);
    float scale = 0.25f;
    std::vector<float> serial(batch * s.nq * s.hd),
        pooled(batch * s.nq * s.hd);
    gqaDecodeAttentionBatch(q.data(), s.nq * s.hd, s.nq, views,
                            serial.data(), s.nq * s.hd, scale,
                            nullptr);
    ThreadPool pool(3);
    gqaDecodeAttentionBatch(q.data(), s.nq * s.hd, s.nq, views,
                            pooled.data(), s.nq * s.hd, scale, &pool);
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], pooled[i]) << "at " << i;
}

TEST_P(AttnGolden, DecodeIsBitIndependentOfPageLayout)
{
    // The same KV data must give bit-identical output whatever the
    // page geometry — in particular pageTokens not a multiple of the
    // V-accumulation block width (the pipelined engine runs paged,
    // the reference engine runs one contiguous page; greedy-token
    // equality relies on this).
    AttnShape s = GetParam();
    auto kdata = randomVec(s.ctx * s.nkv * s.hd, 71);
    auto vdata = randomVec(s.ctx * s.nkv * s.hd, 72);
    auto q = randomVec(s.nq * s.hd, 73);
    float scale = 1.0f / std::sqrt(static_cast<float>(s.hd));
    std::vector<float> ref;
    for (std::size_t page_tokens :
         {s.ctx, std::size_t{1}, std::size_t{3}, std::size_t{6},
          s.pageTokens}) {
        PagedKvFixture kv(s.ctx, s.nkv, s.hd, page_tokens,
                          kdata.data(), vdata.data());
        std::vector<float> out(s.nq * s.hd);
        gqaDecodeAttention(q.data(), s.nq, kv.view, out.data(), scale);
        if (ref.empty()) {
            ref = out;
            continue;
        }
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], ref[i])
                << "pageTokens=" << page_tokens << " at " << i;
    }
}

TEST_P(AttnGolden, PrefillMatchesNaive)
{
    AttnShape s = GetParam();
    std::size_t seq = std::min<std::size_t>(s.ctx, 24);
    auto q = randomVec(seq * s.nq * s.hd, 3);
    auto k = randomVec(seq * s.nkv * s.hd, 4);
    auto v = randomVec(seq * s.nkv * s.hd, 5);
    float scale = 1.0f / std::sqrt(static_cast<float>(s.hd));
    std::vector<float> out(seq * s.nq * s.hd),
        ref(seq * s.nq * s.hd);
    gqaPrefillAttention(q.data(), k.data(), v.data(), seq, s.nq,
                        s.nkv, s.hd, out.data(), scale);
    naive::gqaPrefillAttention(q.data(), k.data(), v.data(), seq,
                               s.nq, s.nkv, s.hd, ref.data(), scale);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out[i], ref[i], 1e-4f) << "at " << i;
}

// Group sizes 1, 4, 8; contexts straddling page boundaries (ctx not
// a multiple of pageTokens, including a single partially-filled page
// and a last page with one token) and head dims off the unroll width.
INSTANTIATE_TEST_SUITE_P(
    Shapes, AttnGolden,
    ::testing::Values(AttnShape{4, 4, 8, 5, 4},      // group 1
                      AttnShape{8, 2, 32, 33, 16},   // group 4
                      AttnShape{8, 1, 16, 17, 4},    // group 8
                      AttnShape{8, 2, 12, 3, 8},     // partial page
                      AttnShape{16, 4, 7, 49, 16},   // odd headDim
                      AttnShape{8, 2, 32, 64, 16},   // exact pages
                      AttnShape{12, 3, 8, 10, 3}));  // odd everything

// ---------------------------------------------- SIMD backend matrix
//
// The suites above run under whatever backend CPUID dispatched (and
// CI re-runs the whole binary under MOELIGHT_SIMD=avx2/portable).
// These tests force every *runnable* backend in-process via
// simd::ScopedIsa so the full within-backend contract — dot4 == 4x
// dot, pooled == serial, page-layout independence — is pinned on any
// single host, plus the cross-backend tolerance that FMA/width
// reassociation is allowed to (and does) consume.

class SimdBackendMatrix
    : public ::testing::TestWithParam<simd::Isa>
{
};

TEST_P(SimdBackendMatrix, Dot4BitIdenticalToDot)
{
    simd::ScopedIsa backend(GetParam());
    for (std::size_t n :
         {1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u, 33u, 100u}) {
        auto x = randomVec(n, n);
        auto y = randomVec(4 * n, n + 1);
        float out[4];
        dot4(x.data(), y.data(), y.data() + n, y.data() + 2 * n,
             y.data() + 3 * n, n, out);
        for (std::size_t i = 0; i < 4; ++i)
            EXPECT_EQ(out[i], dot(x.data(), y.data() + i * n, n))
                << "n=" << n << " lane " << i;
    }
}

TEST_P(SimdBackendMatrix, DotMatchesNaive)
{
    simd::ScopedIsa backend(GetParam());
    for (std::size_t n : {1u, 7u, 16u, 33u, 63u, 64u, 257u}) {
        auto x = randomVec(n, n * 5 + 1);
        auto y = randomVec(n, n * 7 + 2);
        EXPECT_NEAR(dot(x.data(), y.data(), n),
                    naive::dot(x.data(), y.data(), n),
                    1e-4f * static_cast<float>(n))
            << "n=" << n;
    }
}

TEST_P(SimdBackendMatrix, GemmMatchesNaiveAndPooledIsBitIdentical)
{
    simd::ScopedIsa backend(GetParam());
    for (GemmDims d : {GemmDims{1, 1, 1}, GemmDims{9, 17, 13},
                       GemmDims{17, 64, 65}, GemmDims{33, 9, 3}}) {
        auto a = randomVec(d.m * d.k, d.m * 3 + d.k);
        auto w = randomVec(d.n * d.k, d.n + d.k * 2);
        std::vector<float> c(d.m * d.n), ref(d.m * d.n),
            pooled(d.m * d.n);
        matmulTransposedB(a.data(), w.data(), c.data(), d.m, d.k,
                          d.n);
        naive::matmulTransposedB(a.data(), w.data(), ref.data(), d.m,
                                 d.k, d.n);
        for (std::size_t i = 0; i < c.size(); ++i)
            EXPECT_NEAR(c[i], ref[i], 1e-3f) << "at " << i;
        ThreadPool pool(3);
        matmulTransposedB(a.data(), w.data(), pooled.data(), d.m,
                          d.k, d.n, &pool);
        for (std::size_t i = 0; i < c.size(); ++i)
            EXPECT_EQ(c[i], pooled[i]) << "at " << i;
    }
}

TEST_P(SimdBackendMatrix, AttentionMatchesNaive)
{
    simd::ScopedIsa backend(GetParam());
    for (AttnShape s : {AttnShape{8, 2, 32, 33, 16},
                        AttnShape{16, 4, 7, 49, 16},
                        AttnShape{12, 3, 8, 10, 3}}) {
        Rng kv_rng(s.ctx * 100 + s.nq);
        PagedKvFixture kv(s.ctx, s.nkv, s.hd, s.pageTokens, kv_rng);
        auto q = randomVec(s.nq * s.hd, s.ctx + 7);
        float scale = 1.0f / std::sqrt(static_cast<float>(s.hd));
        std::vector<float> out(s.nq * s.hd), ref(s.nq * s.hd);
        std::vector<float> naive_scratch(s.ctx);
        gqaDecodeAttention(q.data(), s.nq, kv.view, out.data(),
                           scale);
        naive::gqaDecodeAttention(q.data(), s.nq, kv.view, ref.data(),
                                  scale, naive_scratch);
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_NEAR(out[i], ref[i], 1e-4f) << "at " << i;
    }
}

TEST_P(SimdBackendMatrix, AttentionBitIndependentOfPageLayout)
{
    simd::ScopedIsa backend(GetParam());
    AttnShape s{8, 2, 12, 10, 8};
    auto kdata = randomVec(s.ctx * s.nkv * s.hd, 71);
    auto vdata = randomVec(s.ctx * s.nkv * s.hd, 72);
    auto q = randomVec(s.nq * s.hd, 73);
    std::vector<float> ref;
    for (std::size_t page_tokens :
         {s.ctx, std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
        PagedKvFixture kv(s.ctx, s.nkv, s.hd, page_tokens,
                          kdata.data(), vdata.data());
        std::vector<float> out(s.nq * s.hd);
        gqaDecodeAttention(q.data(), s.nq, kv.view, out.data(), 0.3f);
        if (ref.empty()) {
            ref = out;
            continue;
        }
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], ref[i])
                << "pageTokens=" << page_tokens << " at " << i;
    }
}

TEST_P(SimdBackendMatrix, FastSoftmaxMatchesExactSoftmax)
{
    simd::ScopedIsa backend(GetParam());
    for (std::size_t n : {1u, 5u, 7u, 8u, 16u, 64u, 257u}) {
        auto a = randomVec(n, n * 3);
        for (auto &v : a)
            v *= 10.0f;  // spread the logits
        auto b = a;
        softmaxInPlace(a);
        softmaxInPlaceFast(b);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(a[i], b[i], 1e-5f) << "n=" << n << " i=" << i;
    }
}

TEST_P(SimdBackendMatrix, AttentionWithinToleranceOfPortable)
{
    // Cross-backend: FMA/width reassociation may move low-order
    // bits, but the result must stay numerically equivalent to the
    // portable backend (the documented tolerance gate).
    AttnShape s{8, 2, 32, 33, 16};
    Rng kv_rng(91);
    PagedKvFixture kv(s.ctx, s.nkv, s.hd, s.pageTokens, kv_rng);
    auto q = randomVec(s.nq * s.hd, 92);
    float scale = 1.0f / std::sqrt(static_cast<float>(s.hd));
    std::vector<float> portable(s.nq * s.hd), out(s.nq * s.hd);
    {
        simd::ScopedIsa base(simd::Isa::Portable);
        gqaDecodeAttention(q.data(), s.nq, kv.view, portable.data(),
                           scale);
    }
    {
        simd::ScopedIsa backend(GetParam());
        gqaDecodeAttention(q.data(), s.nq, kv.view, out.data(),
                           scale);
    }
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out[i], portable[i], 1e-4f) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    RunnableBackends, SimdBackendMatrix,
    ::testing::ValuesIn(simd::runnableIsas()),
    [](const ::testing::TestParamInfo<simd::Isa> &info) {
        return simd::isaName(info.param);
    });

} // namespace
} // namespace moelight
