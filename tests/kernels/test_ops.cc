#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "kernels/ops.hh"

namespace moelight {
namespace {

TEST(Softmax, SumsToOne)
{
    std::vector<float> x{1.0f, 2.0f, 3.0f, 4.0f};
    softmaxInPlace(x);
    float sum = 0.0f;
    for (float v : x)
        sum += v;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_GT(x[3], x[0]);
}

TEST(Softmax, NumericallyStableWithLargeValues)
{
    std::vector<float> x{10000.0f, 10001.0f};
    softmaxInPlace(x);
    EXPECT_FALSE(std::isnan(x[0]));
    EXPECT_NEAR(x[0] + x[1], 1.0f, 1e-6f);
    EXPECT_GT(x[1], x[0]);
}

TEST(Softmax, UniformInputUniformOutput)
{
    std::vector<float> x(8, 3.0f);
    softmaxInPlace(x);
    for (float v : x)
        EXPECT_NEAR(v, 1.0f / 8.0f, 1e-6f);
}

TEST(RmsNorm, UnitGainNormalizesRms)
{
    std::vector<float> x{3.0f, 4.0f}, w{1.0f, 1.0f}, out(2);
    rmsNorm(x.data(), w.data(), out.data(), 2);
    double rms = std::sqrt((out[0] * out[0] + out[1] * out[1]) / 2.0);
    EXPECT_NEAR(rms, 1.0, 1e-3);
    // Direction preserved.
    EXPECT_NEAR(out[1] / out[0], 4.0 / 3.0, 1e-5);
}

TEST(RmsNorm, AppliesGain)
{
    std::vector<float> x{1.0f, 1.0f}, w{2.0f, 0.5f}, out(2);
    rmsNorm(x.data(), w.data(), out.data(), 2);
    EXPECT_NEAR(out[0] / out[1], 4.0, 1e-5);
}

TEST(RmsNorm, AliasSafe)
{
    std::vector<float> x{3.0f, 4.0f}, w{1.0f, 1.0f};
    std::vector<float> expect(2);
    rmsNorm(x.data(), w.data(), expect.data(), 2);
    rmsNorm(x.data(), w.data(), x.data(), 2);
    EXPECT_FLOAT_EQ(x[0], expect[0]);
    EXPECT_FLOAT_EQ(x[1], expect[1]);
}

TEST(Silu, KnownValues)
{
    std::vector<float> x{0.0f, 100.0f, -100.0f};
    siluInPlace(x);
    EXPECT_FLOAT_EQ(x[0], 0.0f);
    EXPECT_NEAR(x[1], 100.0f, 1e-3f);
    EXPECT_NEAR(x[2], 0.0f, 1e-3f);
}

TEST(Swiglu, MatchesManualComputation)
{
    std::vector<float> gate{1.0f, -2.0f}, up{3.0f, 5.0f}, out(2);
    swiglu(gate.data(), up.data(), out.data(), 2);
    auto silu = [](float v) { return v / (1.0f + std::exp(-v)); };
    EXPECT_NEAR(out[0], silu(1.0f) * 3.0f, 1e-6f);
    EXPECT_NEAR(out[1], silu(-2.0f) * 5.0f, 1e-6f);
}

TEST(Argmax, FirstOfTies)
{
    std::vector<float> x{1.0f, 5.0f, 5.0f, 2.0f};
    EXPECT_EQ(argmax({x.data(), x.size()}), 1u);
}

TEST(Argmax, EmptyPanics)
{
    std::vector<float> x;
    EXPECT_THROW(argmax({x.data(), x.size()}), PanicError);
}

} // namespace
} // namespace moelight
