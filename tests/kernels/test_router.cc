#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "kernels/router.hh"

namespace moelight {
namespace {

TEST(Router, PicksTopK)
{
    std::vector<float> logits{0.1f, 2.0f, -1.0f, 1.5f};
    TokenRouting r = routeTopK({logits.data(), logits.size()}, 2);
    ASSERT_EQ(r.experts.size(), 2u);
    EXPECT_EQ(r.experts[0], 1);
    EXPECT_EQ(r.experts[1], 3);
}

TEST(Router, WeightsSumToOneAndOrdered)
{
    std::vector<float> logits{0.5f, 2.0f, -1.0f, 1.5f, 0.0f};
    TokenRouting r = routeTopK({logits.data(), logits.size()}, 3);
    float sum = 0.0f;
    for (float w : r.weights)
        sum += w;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_GE(r.weights[0], r.weights[1]);
    EXPECT_GE(r.weights[1], r.weights[2]);
}

TEST(Router, TieBreaksTowardLowerId)
{
    std::vector<float> logits{1.0f, 1.0f, 1.0f};
    TokenRouting r = routeTopK({logits.data(), logits.size()}, 2);
    EXPECT_EQ(r.experts[0], 0);
    EXPECT_EQ(r.experts[1], 1);
    EXPECT_NEAR(r.weights[0], 0.5f, 1e-6f);
}

TEST(Router, KEqualsNExpertsUsesAll)
{
    std::vector<float> logits{3.0f, 1.0f, 2.0f};
    TokenRouting r = routeTopK({logits.data(), logits.size()}, 3);
    std::vector<int> sorted = r.experts;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2}));
}

TEST(Router, RejectsBadK)
{
    std::vector<float> logits{1.0f, 2.0f};
    EXPECT_THROW(routeTopK({logits.data(), logits.size()}, 0),
                 FatalError);
    EXPECT_THROW(routeTopK({logits.data(), logits.size()}, 3),
                 FatalError);
}

TEST(Router, BatchMatchesSingle)
{
    Rng rng(5);
    const std::size_t tokens = 16, ne = 8, k = 2;
    std::vector<float> logits(tokens * ne);
    for (auto &v : logits)
        v = static_cast<float>(rng.uniform(-2, 2));
    auto batch = routeBatchTopK(logits.data(), tokens, ne, k);
    ASSERT_EQ(batch.size(), tokens);
    for (std::size_t t = 0; t < tokens; ++t) {
        TokenRouting single =
            routeTopK({logits.data() + t * ne, ne}, k);
        EXPECT_EQ(batch[t].experts, single.experts);
        for (std::size_t i = 0; i < k; ++i)
            EXPECT_FLOAT_EQ(batch[t].weights[i], single.weights[i]);
    }
}

/** Property sweep: selected experts hold the k largest logits. */
class RouterProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(RouterProperty, SelectionIsMaximal)
{
    std::size_t k = GetParam();
    Rng rng(100 + k);
    const std::size_t ne = 16;
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<float> logits(ne);
        for (auto &v : logits)
            v = static_cast<float>(rng.uniform(-3, 3));
        TokenRouting r = routeTopK({logits.data(), ne}, k);
        float min_selected = 1e9f;
        for (int e : r.experts)
            min_selected = std::min(
                min_selected, logits[static_cast<std::size_t>(e)]);
        int better = 0;
        for (std::size_t e = 0; e < ne; ++e)
            if (logits[e] > min_selected)
                ++better;
        EXPECT_LT(better, static_cast<int>(k));
    }
}

INSTANTIATE_TEST_SUITE_P(TopK, RouterProperty,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

} // namespace
} // namespace moelight
