/**
 * Unit tests for the SIMD backend dispatch (kernels/simd): the pure
 * MOELIGHT_SIMD/CPUID resolution logic, the ISA name round-trip, the
 * runnable-backend enumeration, and the ScopedIsa test hook the
 * golden backend-matrix suites rely on.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hh"
#include "kernels/simd/simd.hh"

namespace moelight {
namespace simd {
namespace {

TEST(SimdDispatch, ParseIsaRoundTrip)
{
    for (Isa isa : {Isa::Portable, Isa::Avx2, Isa::Avx512})
        EXPECT_EQ(parseIsa(isaName(isa)), isa);
    EXPECT_EQ(parseIsa("scalar"), Isa::Portable);  // alias
    EXPECT_FALSE(parseIsa("").has_value());
    EXPECT_FALSE(parseIsa("avx").has_value());
    EXPECT_FALSE(parseIsa("AVX2").has_value());  // case-sensitive
    EXPECT_FALSE(parseIsa("neon").has_value());
}

TEST(SimdDispatch, ResolveUnsetPicksBestAvailable)
{
    EXPECT_EQ(resolveIsa(nullptr, true, true), Isa::Avx512);
    EXPECT_EQ(resolveIsa(nullptr, true, false), Isa::Avx2);
    EXPECT_EQ(resolveIsa(nullptr, false, false), Isa::Portable);
    // An AVX-512-only build (hypothetical) must still pick it.
    EXPECT_EQ(resolveIsa(nullptr, false, true), Isa::Avx512);
    // Empty string behaves like unset.
    EXPECT_EQ(resolveIsa("", true, true), Isa::Avx512);
}

TEST(SimdDispatch, ResolveHonorsAvailableRequests)
{
    EXPECT_EQ(resolveIsa("portable", true, true), Isa::Portable);
    EXPECT_EQ(resolveIsa("avx2", true, true), Isa::Avx2);
    EXPECT_EQ(resolveIsa("avx512", true, true), Isa::Avx512);
}

TEST(SimdDispatch, ResolveDegradesUnavailableRequests)
{
    // Requests degrade to the best available ISA at or below the
    // request — never silently upgrade past what was asked for.
    std::string diag;
    EXPECT_EQ(resolveIsa("avx512", true, false, &diag), Isa::Avx2);
    EXPECT_FALSE(diag.empty());
    diag.clear();
    EXPECT_EQ(resolveIsa("avx512", false, false, &diag),
              Isa::Portable);
    EXPECT_FALSE(diag.empty());
    diag.clear();
    EXPECT_EQ(resolveIsa("avx2", false, true, &diag), Isa::Portable);
    EXPECT_FALSE(diag.empty());
    // An available request produces no diagnostic.
    diag.clear();
    EXPECT_EQ(resolveIsa("avx2", true, true, &diag), Isa::Avx2);
    EXPECT_TRUE(diag.empty());
}

TEST(SimdDispatch, ResolveUnrecognizedFallsBackWithDiagnostic)
{
    std::string diag;
    EXPECT_EQ(resolveIsa("sse9", true, true, &diag), Isa::Avx512);
    EXPECT_NE(diag.find("sse9"), std::string::npos);
    diag.clear();
    EXPECT_EQ(resolveIsa("sse9", false, false, &diag), Isa::Portable);
    EXPECT_FALSE(diag.empty());
}

TEST(SimdDispatch, PortableAlwaysRunnable)
{
    EXPECT_TRUE(isaCompiled(Isa::Portable));
    EXPECT_TRUE(cpuSupports(Isa::Portable));
    EXPECT_TRUE(isaRunnable(Isa::Portable));
    auto isas = runnableIsas();
    EXPECT_NE(std::find(isas.begin(), isas.end(), Isa::Portable),
              isas.end());
}

TEST(SimdDispatch, TablesSelfIdentify)
{
    for (Isa isa : runnableIsas()) {
        const VecOps &t = opsFor(isa);
        EXPECT_EQ(t.isa, isa);
        EXPECT_STREQ(t.name, isaName(isa));
        // Every entry point must be populated.
        EXPECT_NE(t.dot, nullptr);
        EXPECT_NE(t.dot4, nullptr);
        EXPECT_NE(t.axpy, nullptr);
        EXPECT_NE(t.foldV4, nullptr);
        EXPECT_NE(t.softmax, nullptr);
        EXPECT_NE(t.matmulTransposedB, nullptr);
        EXPECT_NE(t.dequantGroupI8, nullptr);
        EXPECT_NE(t.dequantGroupI4, nullptr);
    }
}

TEST(SimdDispatch, ActiveIsaIsRunnable)
{
    EXPECT_TRUE(isaRunnable(activeIsa()));
    EXPECT_STREQ(activeIsaName(), isaName(activeIsa()));
}

TEST(SimdDispatch, ScopedIsaForcesAndRestores)
{
    Isa before = activeIsa();
    for (Isa isa : runnableIsas()) {
        ScopedIsa guard(isa);
        EXPECT_EQ(activeIsa(), isa);
        EXPECT_EQ(&ops(), &opsFor(isa));
    }
    EXPECT_EQ(activeIsa(), before);
    // Nested guards restore in LIFO order.
    {
        ScopedIsa outer(Isa::Portable);
        EXPECT_EQ(activeIsa(), Isa::Portable);
        for (Isa isa : runnableIsas()) {
            ScopedIsa inner(isa);
            EXPECT_EQ(activeIsa(), isa);
        }
        EXPECT_EQ(activeIsa(), Isa::Portable);
    }
    EXPECT_EQ(activeIsa(), before);
}

} // namespace
} // namespace simd
} // namespace moelight
