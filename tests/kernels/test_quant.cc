#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "kernels/quant.hh"

namespace moelight {
namespace {

std::vector<float>
randVec(std::size_t n, std::uint64_t seed, float lo = -2.0f,
        float hi = 2.0f)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(lo, hi));
    return v;
}

class QuantRoundTrip : public ::testing::TestWithParam<QuantKind>
{
};

TEST_P(QuantRoundTrip, ErrorWithinBound)
{
    QuantKind kind = GetParam();
    auto src = randVec(256, 42);
    QuantizedBuffer q({src.data(), src.size()}, kind, 32);
    std::vector<float> back(src.size());
    q.dequantize(back);
    // Per-group bound: half a step of the group's max magnitude.
    for (std::size_t g = 0; g < src.size() / 32; ++g) {
        float mx = 0.0f;
        for (std::size_t i = 0; i < 32; ++i)
            mx = std::max(mx, std::abs(src[g * 32 + i]));
        double bound = QuantizedBuffer::errorBound(kind, mx);
        for (std::size_t i = 0; i < 32; ++i) {
            std::size_t idx = g * 32 + i;
            EXPECT_LE(std::abs(src[idx] - back[idx]), bound)
                << "kind=" << static_cast<int>(kind) << " idx=" << idx;
        }
    }
}

TEST_P(QuantRoundTrip, ExactForZeros)
{
    std::vector<float> zeros(64, 0.0f);
    QuantizedBuffer q({zeros.data(), zeros.size()}, GetParam(), 32);
    std::vector<float> back(64, 1.0f);
    q.dequantize(back);
    for (float v : back)
        EXPECT_EQ(v, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Kinds, QuantRoundTrip,
                         ::testing::Values(QuantKind::Int8,
                                           QuantKind::Int4));

TEST(Quant, Int4HalvesPayload)
{
    auto src = randVec(128, 7);
    QuantizedBuffer q8({src.data(), src.size()}, QuantKind::Int8, 32);
    QuantizedBuffer q4({src.data(), src.size()}, QuantKind::Int4, 32);
    EXPECT_EQ(quantizedBytes(QuantKind::Int8, 128), 128u);
    EXPECT_EQ(quantizedBytes(QuantKind::Int4, 128), 64u);
    EXPECT_LT(q4.storageBytes(), q8.storageBytes());
}

TEST(Quant, Int8MuchMoreAccurateThanInt4)
{
    auto src = randVec(512, 9);
    QuantizedBuffer q8({src.data(), src.size()}, QuantKind::Int8, 32);
    QuantizedBuffer q4({src.data(), src.size()}, QuantKind::Int4, 32);
    std::vector<float> b8(512), b4(512);
    q8.dequantize(b8);
    q4.dequantize(b4);
    double e8 = 0, e4 = 0;
    for (std::size_t i = 0; i < 512; ++i) {
        e8 += std::abs(src[i] - b8[i]);
        e4 += std::abs(src[i] - b4[i]);
    }
    EXPECT_LT(e8, e4 / 4.0);
}

TEST(Quant, RangeDequantGroupAligned)
{
    auto src = randVec(128, 3);
    QuantizedBuffer q({src.data(), src.size()}, QuantKind::Int8, 32);
    std::vector<float> part(32), full(128);
    q.dequantize(full);
    q.dequantizeRange(64, 32, part);
    for (std::size_t i = 0; i < 32; ++i)
        EXPECT_EQ(part[i], full[64 + i]);
    EXPECT_THROW(q.dequantizeRange(10, 32, part), PanicError);
    EXPECT_THROW(q.dequantizeRange(96, 64, part), PanicError);
}

TEST(Quant, RejectsBadGeometry)
{
    auto src = randVec(33, 1);
    EXPECT_THROW(
        QuantizedBuffer({src.data(), src.size()}, QuantKind::Int8, 32),
        FatalError);
    auto src2 = randVec(32, 1);
    EXPECT_THROW(QuantizedBuffer({src2.data(), src2.size()},
                                 QuantKind::Int4, 31),
                 FatalError);
}

TEST(Quant, NegativeValuesSurviveInt4Packing)
{
    std::vector<float> src(32);
    for (std::size_t i = 0; i < 32; ++i)
        src[i] = (i % 2 == 0) ? -1.0f : 1.0f;
    QuantizedBuffer q({src.data(), src.size()}, QuantKind::Int4, 32);
    std::vector<float> back(32);
    q.dequantize(back);
    for (std::size_t i = 0; i < 32; ++i)
        EXPECT_NEAR(back[i], src[i], 0.15f) << i;
}

TEST(QuantAttention, PartialTailPageMatchesFloat)
{
    // Regression: the materializing path used to panic on any page
    // smaller than pageTokens * nKv * headDim, which is exactly the
    // state a paged cache is in between page boundaries. A partial
    // tail page must dequantize and attend like any other.
    std::size_t nq = 8, nkv = 2, hd = 16, page_tokens = 4, ctx = 11;
    std::size_t row = nkv * hd;
    Rng rng(21);
    std::vector<float> ksrc(ctx * row), vsrc(ctx * row);
    for (auto &x : ksrc)
        x = static_cast<float>(rng.uniform(-1, 1));
    for (auto &x : vsrc)
        x = static_cast<float>(rng.uniform(-1, 1));

    std::vector<QuantizedBuffer> kq, vq;
    for (std::size_t t = 0; t < ctx;) {
        std::size_t run = std::min(page_tokens, ctx - t);  // tail: 3
        kq.emplace_back(
            std::span<const float>(ksrc.data() + t * row, run * row),
            QuantKind::Int8, hd);
        vq.emplace_back(
            std::span<const float>(vsrc.data() + t * row, run * row),
            QuantKind::Int8, hd);
        t += run;
    }
    ASSERT_LT(kq.back().size(), page_tokens * row);
    std::vector<const QuantizedBuffer *> kqp, vqp;
    for (const QuantizedBuffer &b : kq)
        kqp.push_back(&b);
    for (const QuantizedBuffer &b : vq)
        vqp.push_back(&b);

    std::vector<float> q(nq * hd);
    for (auto &x : q)
        x = static_cast<float>(rng.uniform(-1, 1));
    std::vector<float> quant_out(nq * hd), ref(nq * hd);
    gqaDecodeAttentionQuant(q.data(), nq, kqp, vqp, page_tokens, ctx,
                            nkv, hd, quant_out.data(), 0.25f);

    const float *kp = ksrc.data();
    const float *vp = vsrc.data();
    KvView view;
    view.kPages = {&kp, 1};
    view.vPages = {&vp, 1};
    view.pageTokens = ctx;
    view.contextLen = ctx;
    view.nKv = nkv;
    view.headDim = hd;
    gqaDecodeAttention(q.data(), nq, view, ref.data(), 0.25f);
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(quant_out[i], ref[i], 0.05f) << i;
}

TEST(QuantAttention, MatchesFloatWithinQuantError)
{
    std::size_t nq = 4, nkv = 2, hd = 8, page_tokens = 4, ctx = 11;
    Rng rng(5);
    std::size_t n_pages = (ctx + page_tokens - 1) / page_tokens;
    std::size_t page_floats = page_tokens * nkv * hd;

    std::vector<std::vector<float>> kp(n_pages), vp(n_pages);
    std::vector<QuantizedBuffer> kq, vq;
    std::vector<const float *> kptr, vptr;
    for (std::size_t p = 0; p < n_pages; ++p) {
        kp[p].resize(page_floats);
        vp[p].resize(page_floats);
        for (auto &x : kp[p])
            x = static_cast<float>(rng.uniform(-1, 1));
        for (auto &x : vp[p])
            x = static_cast<float>(rng.uniform(-1, 1));
        kq.emplace_back(std::span<const float>(kp[p]), QuantKind::Int8,
                        hd);
        vq.emplace_back(std::span<const float>(vp[p]), QuantKind::Int8,
                        hd);
        kptr.push_back(kp[p].data());
        vptr.push_back(vp[p].data());
    }
    std::vector<float> q(nq * hd);
    for (auto &x : q)
        x = static_cast<float>(rng.uniform(-1, 1));

    KvView view;
    view.kPages = kptr;
    view.vPages = vptr;
    view.pageTokens = page_tokens;
    view.contextLen = ctx;
    view.nKv = nkv;
    view.headDim = hd;
    std::vector<const QuantizedBuffer *> kqp, vqp;
    for (const QuantizedBuffer &b : kq)
        kqp.push_back(&b);
    for (const QuantizedBuffer &b : vq)
        vqp.push_back(&b);
    std::vector<float> ref(nq * hd), quant_out(nq * hd);
    gqaDecodeAttention(q.data(), nq, view, ref.data(), 0.35f);
    gqaDecodeAttentionQuant(q.data(), nq, kqp, vqp, page_tokens, ctx,
                            nkv, hd, quant_out.data(), 0.35f);
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(quant_out[i], ref[i], 0.05f) << i;
}

} // namespace
} // namespace moelight
