#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "kernels/linalg.hh"
#include "tensor/tensor.hh"

namespace moelight {
namespace {

/** Naive triple loop for cross-checking. */
void
naiveMatmul(const std::vector<float> &a, const std::vector<float> &b,
            std::vector<float> &c, std::size_t m, std::size_t k,
            std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (std::size_t l = 0; l < k; ++l)
                acc += a[i * k + l] * b[l * n + j];
            c[i * n + j] = acc;
        }
}

TEST(Linalg, MatmulIdentity)
{
    Tensor a({2, 2}), b({2, 2}), c({2, 2});
    a.at(0, 0) = 1.0f;
    a.at(1, 1) = 1.0f;
    b.at(0, 0) = 3.0f;
    b.at(0, 1) = 4.0f;
    b.at(1, 0) = 5.0f;
    b.at(1, 1) = 6.0f;
    matmul(a, b, c);
    EXPECT_FLOAT_EQ(c.at(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 6.0f);
}

struct MatmulDims
{
    std::size_t m, k, n;
};

class MatmulParam : public ::testing::TestWithParam<MatmulDims>
{
};

TEST_P(MatmulParam, MatchesNaive)
{
    auto [m, k, n] = GetParam();
    Rng rng(m * 1000 + k * 10 + n);
    std::vector<float> a(m * k), b(k * n), c(m * n), ref(m * n);
    for (auto &v : a)
        v = static_cast<float>(rng.uniform(-1, 1));
    for (auto &v : b)
        v = static_cast<float>(rng.uniform(-1, 1));
    matmul(a.data(), b.data(), c.data(), m, k, n);
    naiveMatmul(a, b, ref, m, k, n);
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_NEAR(c[i], ref[i], 1e-4f) << "at " << i;
}

TEST_P(MatmulParam, TransposedBMatchesNaive)
{
    auto [m, k, n] = GetParam();
    Rng rng(m * 7 + k * 3 + n);
    std::vector<float> a(m * k), w(n * k), c(m * n), bt(k * n),
        ref(m * n);
    for (auto &v : a)
        v = static_cast<float>(rng.uniform(-1, 1));
    for (auto &v : w)
        v = static_cast<float>(rng.uniform(-1, 1));
    // bt = w^T
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < k; ++j)
            bt[j * n + i] = w[i * k + j];
    matmulTransposedB(a.data(), w.data(), c.data(), m, k, n);
    naiveMatmul(a, bt, ref, m, k, n);
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_NEAR(c[i], ref[i], 1e-4f) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulParam,
    ::testing::Values(MatmulDims{1, 1, 1}, MatmulDims{1, 8, 16},
                      MatmulDims{3, 5, 7}, MatmulDims{16, 16, 16},
                      MatmulDims{65, 64, 63}, MatmulDims{2, 128, 2},
                      MatmulDims{70, 70, 70}));

TEST(Linalg, MatmulShapeChecks)
{
    Tensor a({2, 3}), b({4, 2}), c({2, 2});
    EXPECT_THROW(matmul(a, b, c), PanicError);
}

TEST(Linalg, DotAndAccumulate)
{
    std::vector<float> x{1, 2, 3}, y{4, 5, 6};
    EXPECT_FLOAT_EQ(dot(x.data(), y.data(), 3), 32.0f);
    accumulate(y.data(), x.data(), 3);
    EXPECT_FLOAT_EQ(y[0], 5.0f);
    accumulateScaled(y.data(), x.data(), 2.0f, 3);
    EXPECT_FLOAT_EQ(y[2], 15.0f);
}

} // namespace
} // namespace moelight
