#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "kernels/linalg.hh"
#include "kernels/moe_ffn.hh"
#include "kernels/ops.hh"

namespace moelight {
namespace {

/** Small dense expert bank for tests. */
struct ExpertBank
{
    std::size_t h1, h2, ne;
    std::vector<std::vector<float>> w1, w3, w2;

    ExpertBank(std::size_t h1_, std::size_t h2_, std::size_t ne_,
               std::uint64_t seed)
        : h1(h1_), h2(h2_), ne(ne_)
    {
        Rng rng(seed);
        for (std::size_t e = 0; e < ne; ++e) {
            w1.emplace_back(h2 * h1);
            w3.emplace_back(h2 * h1);
            w2.emplace_back(h1 * h2);
            for (auto &v : w1.back())
                v = static_cast<float>(rng.uniform(-0.5, 0.5));
            for (auto &v : w3.back())
                v = static_cast<float>(rng.uniform(-0.5, 0.5));
            for (auto &v : w2.back())
                v = static_cast<float>(rng.uniform(-0.5, 0.5));
        }
    }

    ExpertResolver
    resolver() const
    {
        return [this](int e) {
            ExpertWeights w;
            auto idx = static_cast<std::size_t>(e);
            w.w1 = w1[idx].data();
            w.w3 = w3[idx].data();
            w.w2 = w2[idx].data();
            return w;
        };
    }
};

/** Naive single-expert forward. */
std::vector<float>
naiveExpert(const ExpertBank &bank, std::size_t e,
            const std::vector<float> &x)
{
    std::vector<float> gate(bank.h2), up(bank.h2), out(bank.h1);
    matmulTransposedB(x.data(), bank.w1[e].data(), gate.data(), 1,
                      bank.h1, bank.h2);
    matmulTransposedB(x.data(), bank.w3[e].data(), up.data(), 1,
                      bank.h1, bank.h2);
    for (std::size_t i = 0; i < bank.h2; ++i) {
        float g = gate[i] / (1.0f + std::exp(-gate[i]));
        gate[i] = g * up[i];
    }
    matmulTransposedB(gate.data(), bank.w2[e].data(), out.data(), 1,
                      bank.h2, bank.h1);
    return out;
}

TEST(ExpertFfn, MatchesNaive)
{
    ExpertBank bank(8, 16, 2, 42);
    std::vector<float> x{1, -1, 0.5f, 2, -0.25f, 0, 3, -2};
    std::vector<float> out(8), scratch(expertFfnScratchSize(16));
    expertFfnForward(x.data(), bank.resolver()(1), 8, 16, out.data(),
                     scratch);
    std::vector<float> ref = naiveExpert(bank, 1, x);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_NEAR(out[i], ref[i], 1e-5f);
}

TEST(MoeFfn, SingleExpertWeightOneEqualsExpert)
{
    ExpertBank bank(8, 16, 4, 7);
    std::vector<float> x(8, 0.7f), out(8);
    TokenRouting r;
    r.experts = {2};
    r.weights = {1.0f};
    moeFfnForward(x.data(), {&r, 1}, bank.resolver(), 1, 8, 16,
                  out.data());
    std::vector<float> ref = naiveExpert(bank, 2, x);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_NEAR(out[i], ref[i], 1e-5f);
}

TEST(MoeFfn, MixesExpertsByWeight)
{
    ExpertBank bank(8, 16, 4, 9);
    std::vector<float> x(8);
    Rng rng(1);
    for (auto &v : x)
        v = static_cast<float>(rng.uniform(-1, 1));
    TokenRouting r;
    r.experts = {0, 3};
    r.weights = {0.25f, 0.75f};
    std::vector<float> out(8);
    moeFfnForward(x.data(), {&r, 1}, bank.resolver(), 1, 8, 16,
                  out.data());
    std::vector<float> e0 = naiveExpert(bank, 0, x);
    std::vector<float> e3 = naiveExpert(bank, 3, x);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_NEAR(out[i], 0.25f * e0[i] + 0.75f * e3[i], 1e-5f);
}

TEST(MoeFfn, BatchTokensIndependent)
{
    ExpertBank bank(4, 8, 2, 11);
    const std::size_t tokens = 3;
    std::vector<float> x(tokens * 4);
    Rng rng(2);
    for (auto &v : x)
        v = static_cast<float>(rng.uniform(-1, 1));
    std::vector<TokenRouting> rs(tokens);
    rs[0].experts = {0};
    rs[0].weights = {1.0f};
    rs[1].experts = {1};
    rs[1].weights = {1.0f};
    rs[2].experts = {0, 1};
    rs[2].weights = {0.5f, 0.5f};
    std::vector<float> out(tokens * 4);
    moeFfnForward(x.data(), rs, bank.resolver(), tokens, 4, 8,
                  out.data());
    for (std::size_t t = 0; t < tokens; ++t) {
        std::vector<float> single(4);
        moeFfnForward(x.data() + t * 4, {&rs[t], 1}, bank.resolver(), 1,
                      4, 8, single.data());
        for (std::size_t i = 0; i < 4; ++i)
            EXPECT_FLOAT_EQ(out[t * 4 + i], single[i]);
    }
}

TEST(MoeFfn, NullResolverPanics)
{
    std::vector<float> x(4), out(4);
    TokenRouting r;
    r.experts = {0};
    r.weights = {1.0f};
    auto bad = [](int) { return ExpertWeights{}; };
    EXPECT_THROW(
        moeFfnForward(x.data(), {&r, 1}, bad, 1, 4, 8, out.data()),
        PanicError);
}

TEST(MoeFfn, RoutingSizeMismatchPanics)
{
    ExpertBank bank(4, 8, 2, 1);
    std::vector<float> x(8), out(8);
    TokenRouting r;
    r.experts = {0};
    r.weights = {1.0f};
    EXPECT_THROW(moeFfnForward(x.data(), {&r, 1}, bank.resolver(), 2, 4,
                               8, out.data()),
                 PanicError);
}

} // namespace
} // namespace moelight
