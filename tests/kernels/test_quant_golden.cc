/**
 * Golden tests for the fused quantized GQA decode attention kernel
 * (mirroring test_kernel_golden.cc for the float kernels): the fused
 * path must be bit-identical to dequantize-then-float-attend — the
 * retained materializing path plays the moelight::naive role — and
 * within QuantizedBuffer::errorBound of float attention over the
 * original values, across int8/int4, GQA groups 1/4/8, partial tail
 * pages, float open pages, and page layouts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "kernels/quant.hh"
#include "kernels/simd/simd.hh"

namespace moelight {
namespace {

std::vector<float>
randomVec(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-1, 1));
    return v;
}

struct QuantAttnShape
{
    std::size_t nq, nkv, hd, pageTokens;
    /** Tokens stored quantized (full pages + possibly partial tail;
     *  when openTokens > 0 this is a multiple of pageTokens, the
     *  invariant QuantizedKvCache maintains). */
    std::size_t quantTokens;
    /** Tokens in the trailing float open page. */
    std::size_t openTokens;
};

/**
 * Builds one sequence's quantized KV state from a random float
 * source: quantized pages over the first quantTokens (group = one
 * token-head row, as the cache quantizes) plus a float open tail.
 */
struct QuantKvFixture
{
    std::vector<float> kSrc, vSrc;
    std::vector<QuantizedBuffer> kq, vq;
    std::vector<const QuantizedBuffer *> kqp, vqp;
    QuantKvView view;

    QuantKvFixture(const QuantAttnShape &s, QuantKind kind,
                   std::uint64_t seed, std::size_t pageTokens)
    {
        std::size_t total = s.quantTokens + s.openTokens;
        std::size_t row = s.nkv * s.hd;
        kSrc = randomVec(total * row, seed);
        vSrc = randomVec(total * row, seed + 1);
        for (std::size_t t = 0; t < s.quantTokens;) {
            std::size_t run = std::min(pageTokens, s.quantTokens - t);
            kq.emplace_back(
                std::span<const float>(kSrc.data() + t * row,
                                       run * row),
                kind, s.hd);
            vq.emplace_back(
                std::span<const float>(vSrc.data() + t * row,
                                       run * row),
                kind, s.hd);
            t += run;
        }
        // Pointer lists after the buffers stop growing (the view
        // references pages by pointer, as the paged cache hands them
        // out).
        for (const QuantizedBuffer &b : kq)
            kqp.push_back(&b);
        for (const QuantizedBuffer &b : vq)
            vqp.push_back(&b);
        view.kPages = kqp;
        view.vPages = vqp;
        if (s.openTokens > 0) {
            view.openK = kSrc.data() + s.quantTokens * row;
            view.openV = vSrc.data() + s.quantTokens * row;
            view.openTokens = s.openTokens;
        }
        view.pageTokens = pageTokens;
        view.contextLen = total;
        view.nKv = s.nkv;
        view.headDim = s.hd;
    }
};

/**
 * Materialize the golden float equivalent of a QuantKvView —
 * dequantized pages plus the open floats — and run the float kernel
 * over it. This is exactly what the pre-fusion runtime did per call.
 */
std::vector<float>
materializedAttention(const float *q, std::size_t nQ,
                      const QuantKvFixture &fx, float scale)
{
    const QuantKvView &v = fx.view;
    std::vector<std::vector<float>> pages;
    pages.reserve(v.kPages.size() + v.vPages.size());
    std::vector<const float *> kp, vp;
    for (std::size_t p = 0; p < v.kPages.size(); ++p) {
        auto &kbuf = pages.emplace_back(v.kPages[p]->size());
        v.kPages[p]->dequantize(kbuf);
        kp.push_back(kbuf.data());
    }
    for (std::size_t p = 0; p < v.vPages.size(); ++p) {
        auto &vbuf = pages.emplace_back(v.vPages[p]->size());
        v.vPages[p]->dequantize(vbuf);
        vp.push_back(vbuf.data());
    }
    if (v.openTokens > 0) {
        kp.push_back(v.openK);
        vp.push_back(v.openV);
    }
    KvView fv;
    fv.kPages = kp;
    fv.vPages = vp;
    fv.pageTokens = v.pageTokens;
    fv.contextLen = v.contextLen;
    fv.nKv = v.nKv;
    fv.headDim = v.headDim;
    std::vector<float> out(nQ * v.headDim);
    gqaDecodeAttention(q, nQ, fv, out.data(), scale);
    return out;
}

class QuantAttnGolden
    : public ::testing::TestWithParam<
          std::tuple<QuantKind, QuantAttnShape>>
{
};

TEST_P(QuantAttnGolden, FusedBitIdenticalToMaterialized)
{
    auto [kind, s] = GetParam();
    QuantKvFixture fx(s, kind, s.quantTokens * 37 + s.nq,
                      s.pageTokens);
    auto q = randomVec(s.nq * s.hd, s.hd + 5);
    float scale = 1.0f / std::sqrt(static_cast<float>(s.hd));

    std::vector<float> fused(s.nq * s.hd);
    gqaDecodeAttentionQuantFused(q.data(), s.nq, fx.view,
                                 fused.data(), scale);
    auto golden = materializedAttention(q.data(), s.nq, fx, scale);
    for (std::size_t i = 0; i < fused.size(); ++i)
        EXPECT_EQ(fused[i], golden[i]) << "at " << i;
}

TEST_P(QuantAttnGolden, FusedMatchesMaterializingKernel)
{
    // The retained kernel-level materializing path (which handles
    // quantized pages only) must agree bit-for-bit with the fused
    // kernel, including over a partial tail page.
    auto [kind, s] = GetParam();
    if (s.openTokens > 0)
        GTEST_SKIP() << "materializing kernel takes no open page";
    QuantKvFixture fx(s, kind, s.quantTokens * 11 + 3, s.pageTokens);
    auto q = randomVec(s.nq * s.hd, s.hd + 9);
    float scale = 0.3f;

    std::vector<float> fused(s.nq * s.hd), mat(s.nq * s.hd);
    gqaDecodeAttentionQuantFused(q.data(), s.nq, fx.view,
                                 fused.data(), scale);
    gqaDecodeAttentionQuant(q.data(), s.nq, fx.kqp, fx.vqp,
                            s.pageTokens, fx.view.contextLen, s.nkv,
                            s.hd, mat.data(), scale);
    for (std::size_t i = 0; i < fused.size(); ++i)
        EXPECT_EQ(fused[i], mat[i]) << "at " << i;
}

TEST_P(QuantAttnGolden, FusedWithinQuantErrorOfFloat)
{
    auto [kind, s] = GetParam();
    QuantKvFixture fx(s, kind, s.quantTokens * 13 + 1, s.pageTokens);
    auto q = randomVec(s.nq * s.hd, s.hd + 2);
    float scale = 1.0f / std::sqrt(static_cast<float>(s.hd));

    std::vector<float> fused(s.nq * s.hd), ref(s.nq * s.hd);
    gqaDecodeAttentionQuantFused(q.data(), s.nq, fx.view,
                                 fused.data(), scale);
    const float *kp = fx.kSrc.data();
    const float *vp = fx.vSrc.data();
    KvView fv;
    fv.kPages = {&kp, 1};
    fv.vPages = {&vp, 1};
    fv.pageTokens = fx.view.contextLen;
    fv.contextLen = fx.view.contextLen;
    fv.nKv = s.nkv;
    fv.headDim = s.hd;
    gqaDecodeAttention(q.data(), s.nq, fv, ref.data(), scale);
    // Attention output is a convex combination of V rows, so its
    // error is bounded by the per-element V quant error plus the
    // softmax's sensitivity to the K quant error; a small multiple
    // of errorBound(|x|<=1) covers both comfortably.
    float tol = 4.0f * static_cast<float>(
                           QuantizedBuffer::errorBound(kind, 1.0));
    for (std::size_t i = 0; i < fused.size(); ++i)
        EXPECT_NEAR(fused[i], ref[i], tol) << "at " << i;
}

TEST_P(QuantAttnGolden, FusedBitIndependentOfPageLayout)
{
    // Quant groups are per token-head row, so re-paging the same
    // source produces identical quantized values; the fused kernel's
    // global 4-blocked V fold must then give bit-identical output
    // for any page geometry (the property the float kernel
    // guarantees, preserved through fusion).
    auto [kind, s] = GetParam();
    if (s.openTokens > 0)
        GTEST_SKIP() << "layout sweep over fully quantized views";
    auto q = randomVec(s.nq * s.hd, 81);
    float scale = 1.0f / std::sqrt(static_cast<float>(s.hd));
    std::vector<float> ref;
    for (std::size_t page_tokens :
         {s.quantTokens, std::size_t{1}, std::size_t{3},
          std::size_t{6}, s.pageTokens}) {
        QuantKvFixture fx(s, kind, 55, page_tokens);
        std::vector<float> out(s.nq * s.hd);
        gqaDecodeAttentionQuantFused(q.data(), s.nq, fx.view,
                                     out.data(), scale);
        if (ref.empty()) {
            ref = out;
            continue;
        }
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], ref[i])
                << "pageTokens=" << page_tokens << " at " << i;
    }
}

TEST_P(QuantAttnGolden, BatchWithPoolBitIdenticalToSerial)
{
    auto [kind, s] = GetParam();
    std::size_t batch = 5;
    std::vector<QuantKvFixture> fxs;
    fxs.reserve(batch);
    std::vector<QuantKvView> views;
    for (std::size_t t = 0; t < batch; ++t) {
        QuantAttnShape st = s;
        // Vary context; keep the cache invariant (open page only
        // behind full pages).
        st.quantTokens = std::max<std::size_t>(
            1, (s.quantTokens * (t + 1)) / batch);
        if (st.openTokens > 0)
            st.quantTokens =
                (st.quantTokens / s.pageTokens) * s.pageTokens;
        if (st.quantTokens + st.openTokens == 0)
            st.openTokens = 1;
        fxs.emplace_back(st, kind, t * 19 + 2, s.pageTokens);
        views.push_back(fxs.back().view);
    }
    auto q = randomVec(batch * s.nq * s.hd, 23);
    std::vector<float> serial(batch * s.nq * s.hd),
        pooled(batch * s.nq * s.hd);
    gqaDecodeAttentionQuantBatch(q.data(), s.nq * s.hd, s.nq, views,
                                 serial.data(), s.nq * s.hd, 0.25f,
                                 nullptr);
    ThreadPool pool(3);
    gqaDecodeAttentionQuantBatch(q.data(), s.nq * s.hd, s.nq, views,
                                 pooled.data(), s.nq * s.hd, 0.25f,
                                 &pool);
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], pooled[i]) << "at " << i;
}

// Groups 1, 4, 8; partial quantized tail pages, float open pages,
// an open-page-only view, and exact page multiples. headDims are
// even so every shape also runs under int4.
INSTANTIATE_TEST_SUITE_P(
    Shapes, QuantAttnGolden,
    ::testing::Combine(
        ::testing::Values(QuantKind::Int8, QuantKind::Int4),
        ::testing::Values(
            QuantAttnShape{4, 4, 8, 4, 5, 0},    // group 1, tail
            QuantAttnShape{8, 2, 32, 16, 33, 0}, // group 4, tail
            QuantAttnShape{8, 1, 16, 4, 17, 0},  // group 8, tail
            QuantAttnShape{8, 2, 12, 8, 16, 3},  // open page
            QuantAttnShape{12, 3, 8, 3, 9, 2},   // open, odd groups
            QuantAttnShape{4, 2, 6, 4, 0, 3},    // open page only
            QuantAttnShape{8, 2, 32, 16, 64, 0})));  // exact pages

TEST(QuantAttnFused, OddHeadDimInt8)
{
    // int8 has no packing constraint, so an odd headDim (odd quant
    // group) must flow through the fused kernel end to end.
    QuantAttnShape s{4, 2, 7, 4, 8, 2};
    QuantKvFixture fx(s, QuantKind::Int8, 3, s.pageTokens);
    auto q = randomVec(s.nq * s.hd, 4);
    std::vector<float> fused(s.nq * s.hd);
    gqaDecodeAttentionQuantFused(q.data(), s.nq, fx.view,
                                 fused.data(), 0.4f);
    auto golden = materializedAttention(q.data(), s.nq, fx, 0.4f);
    for (std::size_t i = 0; i < fused.size(); ++i)
        EXPECT_EQ(fused[i], golden[i]) << "at " << i;
}

TEST(QuantAttnFused, RejectsBadViews)
{
    QuantAttnShape s{4, 2, 8, 4, 8, 0};
    QuantKvFixture fx(s, QuantKind::Int8, 9, s.pageTokens);
    auto q = randomVec(s.nq * s.hd, 10);
    std::vector<float> out(s.nq * s.hd);

    QuantKvView v = fx.view;
    v.contextLen = 9;  // pages hold 8 tokens, no open page
    EXPECT_THROW(gqaDecodeAttentionQuantFused(q.data(), s.nq, v,
                                              out.data(), 1.0f),
                 PanicError);
    v = fx.view;
    v.openTokens = 1;  // claims open tokens without an open page
    v.contextLen = 9;
    EXPECT_THROW(gqaDecodeAttentionQuantFused(q.data(), s.nq, v,
                                              out.data(), 1.0f),
                 PanicError);
}

// ------------------------------------------------------- prefill

struct QuantPrefillShape
{
    std::size_t nq, nkv, hd, pageTokens, seq;
};

/**
 * The per-token fused decode walk the prefill kernel must replay
 * bit-for-bit: position i attends over the view the cache held right
 * after appending token i (quantPrefillWalkView).
 */
std::vector<float>
perTokenDecodeWalk(const float *q, std::size_t nQ,
                   const QuantKvFixture &fx, std::size_t seq,
                   float scale)
{
    std::size_t hd = fx.view.headDim;
    std::vector<float> out(seq * nQ * hd);
    for (std::size_t i = 0; i < seq; ++i)
        gqaDecodeAttentionQuantFused(
            q + i * nQ * hd, nQ,
            quantPrefillWalkView(fx.view, fx.kSrc.data(),
                                 fx.vSrc.data(), i),
            out.data() + i * nQ * hd, scale);
    return out;
}

class QuantPrefillGolden
    : public ::testing::TestWithParam<
          std::tuple<QuantKind, QuantPrefillShape>>
{
  protected:
    /** Cache-walk fixture: seq/pageTokens closed full pages, the
     *  remaining seq%pageTokens tokens open. */
    static QuantAttnShape
    walkShape(const QuantPrefillShape &s)
    {
        return {s.nq, s.nkv, s.hd, s.pageTokens,
                (s.seq / s.pageTokens) * s.pageTokens,
                s.seq % s.pageTokens};
    }
};

TEST_P(QuantPrefillGolden, FusedBitIdenticalToPerTokenDecodeWalk)
{
    auto [kind, s] = GetParam();
    QuantKvFixture fx(walkShape(s), kind, s.seq * 41 + s.nq,
                      s.pageTokens);
    auto q = randomVec(s.seq * s.nq * s.hd, s.hd + 7);
    float scale = 1.0f / std::sqrt(static_cast<float>(s.hd));

    std::vector<float> fused(s.seq * s.nq * s.hd);
    gqaPrefillAttentionQuantFused(q.data(), fx.kSrc.data(),
                                  fx.vSrc.data(), s.seq, s.nq,
                                  fx.view, fused.data(), scale);
    auto walk = perTokenDecodeWalk(q.data(), s.nq, fx, s.seq, scale);
    for (std::size_t i = 0; i < fused.size(); ++i)
        EXPECT_EQ(fused[i], walk[i]) << "at " << i;
}

TEST_P(QuantPrefillGolden, FusedWithExplicitScratchMatches)
{
    auto [kind, s] = GetParam();
    QuantKvFixture fx(walkShape(s), kind, s.seq * 17 + 5,
                      s.pageTokens);
    auto q = randomVec(s.seq * s.nq * s.hd, s.hd + 11);
    float scale = 0.4f;

    std::vector<float> a(s.seq * s.nq * s.hd),
        b(s.seq * s.nq * s.hd);
    gqaPrefillAttentionQuantFused(q.data(), fx.kSrc.data(),
                                  fx.vSrc.data(), s.seq, s.nq,
                                  fx.view, a.data(), scale);
    std::vector<float> scratch(
        gqaQuantPrefillAttnScratchFloats(s.nq, s.nkv, s.seq, s.hd,
                                         s.pageTokens),
        -7.0f);  // poison: the kernel must overwrite what it reads
    gqaPrefillAttentionQuantFused(q.data(), fx.kSrc.data(),
                                  fx.vSrc.data(), s.seq, s.nq,
                                  fx.view, b.data(), scale, scratch);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "at " << i;
}

TEST_P(QuantPrefillGolden, FusedWithinQuantErrorOfFloatPrefill)
{
    auto [kind, s] = GetParam();
    QuantKvFixture fx(walkShape(s), kind, s.seq * 29 + 3,
                      s.pageTokens);
    auto q = randomVec(s.seq * s.nq * s.hd, s.hd + 13);
    float scale = 1.0f / std::sqrt(static_cast<float>(s.hd));

    std::vector<float> fused(s.seq * s.nq * s.hd),
        ref(s.seq * s.nq * s.hd);
    gqaPrefillAttentionQuantFused(q.data(), fx.kSrc.data(),
                                  fx.vSrc.data(), s.seq, s.nq,
                                  fx.view, fused.data(), scale);
    gqaPrefillAttention(q.data(), fx.kSrc.data(), fx.vSrc.data(),
                        s.seq, s.nq, s.nkv, s.hd, ref.data(), scale);
    float tol = 4.0f * static_cast<float>(
                           QuantizedBuffer::errorBound(kind, 1.0));
    for (std::size_t i = 0; i < fused.size(); ++i)
        EXPECT_NEAR(fused[i], ref[i], tol) << "at " << i;
}

TEST_P(QuantPrefillGolden, PooledBitIdenticalToSerial)
{
    // KV heads fan across the attention pool inside the fused
    // prefill kernel (the engine's pool idles during prefill
    // otherwise); per-head arithmetic is untouched, so the pooled
    // walk must be bit-identical to the serial one.
    auto [kind, s] = GetParam();
    QuantKvFixture fx(walkShape(s), kind, s.seq * 53 + 7,
                      s.pageTokens);
    auto q = randomVec(s.seq * s.nq * s.hd, s.hd + 17);
    float scale = 1.0f / std::sqrt(static_cast<float>(s.hd));

    std::vector<float> serial(s.seq * s.nq * s.hd),
        pooled(s.seq * s.nq * s.hd);
    gqaPrefillAttentionQuantFused(q.data(), fx.kSrc.data(),
                                  fx.vSrc.data(), s.seq, s.nq,
                                  fx.view, serial.data(), scale);
    ThreadPool pool(3);
    gqaPrefillAttentionQuantFused(q.data(), fx.kSrc.data(),
                                  fx.vSrc.data(), s.seq, s.nq,
                                  fx.view, pooled.data(), scale, {},
                                  &pool);
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], pooled[i]) << "at " << i;
}

// Prompt lengths that straddle page boundaries (one token past, one
// short of), exactly fill pages, fit inside one page, and land mid-
// page, across GQA groups 1/4/8. headDims even so int4 runs too.
INSTANTIATE_TEST_SUITE_P(
    Shapes, QuantPrefillGolden,
    ::testing::Combine(
        ::testing::Values(QuantKind::Int8, QuantKind::Int4),
        ::testing::Values(
            QuantPrefillShape{8, 2, 32, 16, 33},  // one past boundary
            QuantPrefillShape{8, 2, 32, 16, 31},  // one short
            QuantPrefillShape{8, 2, 16, 8, 32},   // exactly 4 pages
            QuantPrefillShape{4, 4, 8, 4, 4},     // exactly 1 page
            QuantPrefillShape{8, 1, 16, 8, 5},    // inside 1st page
            QuantPrefillShape{12, 3, 8, 3, 11},   // odd groups, mid
            QuantPrefillShape{4, 2, 6, 4, 1})));  // single token

TEST(QuantPrefillFused, RejectsNonWalkViews)
{
    // A partial closed tail page cannot arise from a causal append
    // walk (the remainder stays in the float open page), so the
    // prefill kernel must reject it instead of silently replaying a
    // state the cache never held.
    QuantAttnShape s{4, 2, 8, 4, 6, 0};  // tail page holds 2 of 4
    QuantKvFixture fx(s, QuantKind::Int8, 13, s.pageTokens);
    auto q = randomVec(6 * s.nq * s.hd, 14);
    std::vector<float> out(6 * s.nq * s.hd);
    EXPECT_THROW(gqaPrefillAttentionQuantFused(
                     q.data(), fx.kSrc.data(), fx.vSrc.data(), 6,
                     s.nq, fx.view, out.data(), 1.0f),
                 PanicError);

    // Sequence length must match the view's context exactly.
    QuantAttnShape s2{4, 2, 8, 4, 8, 1};
    QuantKvFixture fx2(s2, QuantKind::Int8, 15, s2.pageTokens);
    auto q2 = randomVec(8 * s2.nq * s2.hd, 16);
    std::vector<float> out2(8 * s2.nq * s2.hd);
    EXPECT_THROW(gqaPrefillAttentionQuantFused(
                     q2.data(), fx2.kSrc.data(), fx2.vSrc.data(), 8,
                     s2.nq, fx2.view, out2.data(), 1.0f),
                 PanicError);
}

// ---------------------------------------------- SIMD backend matrix
//
// The quant kernels' EXPECT_EQ guarantees are within-backend; force
// each runnable backend in-process and re-pin them, plus the one
// property that holds across ALL backends: dequantization computes
// scale * float(q) per element (one exact conversion, one multiply),
// so its output is bit-identical whatever the vector width.

class QuantSimdBackendMatrix
    : public ::testing::TestWithParam<simd::Isa>
{
};

TEST_P(QuantSimdBackendMatrix, FusedBitIdenticalToMaterialized)
{
    simd::ScopedIsa backend(GetParam());
    for (QuantKind kind : {QuantKind::Int8, QuantKind::Int4}) {
        QuantAttnShape s{8, 2, 32, 16, 33, 0};
        QuantKvFixture fx(s, kind, 111, s.pageTokens);
        auto q = randomVec(s.nq * s.hd, 112);
        std::vector<float> fused(s.nq * s.hd);
        gqaDecodeAttentionQuantFused(q.data(), s.nq, fx.view,
                                     fused.data(), 0.25f);
        auto golden = materializedAttention(q.data(), s.nq, fx, 0.25f);
        for (std::size_t i = 0; i < fused.size(); ++i)
            EXPECT_EQ(fused[i], golden[i]) << "at " << i;
    }
}

TEST_P(QuantSimdBackendMatrix, PrefillBitIdenticalToDecodeWalk)
{
    simd::ScopedIsa backend(GetParam());
    for (QuantKind kind : {QuantKind::Int8, QuantKind::Int4}) {
        std::size_t seq = 21, page_tokens = 8;
        QuantAttnShape s{8, 2, 16, page_tokens,
                         (seq / page_tokens) * page_tokens,
                         seq % page_tokens};
        QuantKvFixture fx(s, kind, 121, page_tokens);
        auto q = randomVec(seq * s.nq * s.hd, 122);
        std::vector<float> fused(seq * s.nq * s.hd);
        gqaPrefillAttentionQuantFused(q.data(), fx.kSrc.data(),
                                      fx.vSrc.data(), seq, s.nq,
                                      fx.view, fused.data(), 0.25f);
        auto walk = perTokenDecodeWalk(q.data(), s.nq, fx, seq,
                                       0.25f);
        for (std::size_t i = 0; i < fused.size(); ++i)
            EXPECT_EQ(fused[i], walk[i]) << "at " << i;
    }
}

TEST_P(QuantSimdBackendMatrix, DequantBitIdenticalAcrossBackends)
{
    // dequantizeRows / dequantizeRange under this backend vs the
    // portable baseline: EXPECT_EQ, not EXPECT_NEAR — dequant has no
    // reassociation to hide behind.
    for (QuantKind kind : {QuantKind::Int8, QuantKind::Int4}) {
        std::size_t tokens = 7, nkv = 3, hd = 16;
        std::size_t row = nkv * hd;
        auto src = randomVec(tokens * row, 131);
        QuantizedBuffer buf(src, kind, hd);
        std::vector<float> base(tokens * hd), out(tokens * hd);
        std::vector<float> base_r(2 * hd), out_r(2 * hd);
        {
            simd::ScopedIsa portable(simd::Isa::Portable);
            buf.dequantizeRows(hd, row, tokens, hd, base.data());
            buf.dequantizeRange(row, 2 * hd, base_r);
        }
        {
            simd::ScopedIsa backend(GetParam());
            buf.dequantizeRows(hd, row, tokens, hd, out.data());
            buf.dequantizeRange(row, 2 * hd, out_r);
        }
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], base[i]) << "rows at " << i;
        for (std::size_t i = 0; i < out_r.size(); ++i)
            EXPECT_EQ(out_r[i], base_r[i]) << "range at " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    RunnableBackends, QuantSimdBackendMatrix,
    ::testing::ValuesIn(simd::runnableIsas()),
    [](const ::testing::TestParamInfo<simd::Isa> &info) {
        return simd::isaName(info.param);
    });

TEST(QuantAttnMaterializing, RejectsPartialNonTailPage)
{
    // Only the last quantized page may be partial; a short page in
    // the middle means the caller's paging is broken.
    std::size_t nkv = 2, hd = 8, row = nkv * hd;
    auto src = randomVec(4 * row, 31);
    std::vector<QuantizedBuffer> pages;
    pages.emplace_back(std::span<const float>(src.data(), row),
                       QuantKind::Int8, hd);  // 1 token: partial
    pages.emplace_back(std::span<const float>(src.data(), 2 * row),
                       QuantKind::Int8, hd);  // 2 tokens: full
    std::vector<const QuantizedBuffer *> pp{&pages[0], &pages[1]};
    auto q = randomVec(4 * hd, 32);
    std::vector<float> out(4 * hd);
    EXPECT_THROW(gqaDecodeAttentionQuant(q.data(), 4, pp, pp, 2, 3,
                                         nkv, hd, out.data(), 1.0f),
                 PanicError);
}

} // namespace
} // namespace moelight
