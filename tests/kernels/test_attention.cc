#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/logging.hh"

#include "common/rng.hh"
#include "kernels/attention.hh"
#include "kernels/linalg.hh"
#include "kernels/ops.hh"

namespace moelight {
namespace {

/** Naive single-head attention over contiguous K/V for reference. */
void
naiveAttention(const float *q, const float *k, const float *v,
               std::size_t ctx, std::size_t hd, float scale, float *out)
{
    std::vector<float> scores(ctx);
    for (std::size_t t = 0; t < ctx; ++t)
        scores[t] = scale * dot(q, k + t * hd, hd);
    softmaxInPlace(scores);
    for (std::size_t d = 0; d < hd; ++d)
        out[d] = 0.0f;
    for (std::size_t t = 0; t < ctx; ++t)
        for (std::size_t d = 0; d < hd; ++d)
            out[d] += scores[t] * v[t * hd + d];
}

struct AttnShape
{
    std::size_t nq, nkv, hd, ctx, pageTokens;
};

class GqaDecode : public ::testing::TestWithParam<AttnShape>
{
};

TEST_P(GqaDecode, MatchesNaivePerHead)
{
    auto [nq, nkv, hd, ctx, page_tokens] = GetParam();
    Rng rng(nq * 100 + ctx);
    std::vector<float> q(nq * hd);
    for (auto &x : q)
        x = static_cast<float>(rng.uniform(-1, 1));

    // Build paged K/V plus contiguous per-kv-head copies.
    std::size_t n_pages = (ctx + page_tokens - 1) / page_tokens;
    std::vector<std::vector<float>> kp(n_pages), vp(n_pages);
    std::vector<const float *> kptr(n_pages), vptr(n_pages);
    for (std::size_t p = 0; p < n_pages; ++p) {
        kp[p].resize(page_tokens * nkv * hd);
        vp[p].resize(page_tokens * nkv * hd);
        for (auto &x : kp[p])
            x = static_cast<float>(rng.uniform(-1, 1));
        for (auto &x : vp[p])
            x = static_cast<float>(rng.uniform(-1, 1));
        kptr[p] = kp[p].data();
        vptr[p] = vp[p].data();
    }
    KvView view;
    view.kPages = kptr;
    view.vPages = vptr;
    view.pageTokens = page_tokens;
    view.contextLen = ctx;
    view.nKv = nkv;
    view.headDim = hd;

    float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    std::vector<float> out(nq * hd);
    gqaDecodeAttention(q.data(), nq, view, out.data(), scale);

    // Per query head, gather its KV head contiguous and compare.
    std::size_t group = nq / nkv;
    for (std::size_t h = 0; h < nq; ++h) {
        std::size_t kvh = h / group;
        std::vector<float> kc(ctx * hd), vc(ctx * hd);
        for (std::size_t t = 0; t < ctx; ++t) {
            const float *ks =
                kp[t / page_tokens].data() +
                ((t % page_tokens) * nkv + kvh) * hd;
            const float *vs =
                vp[t / page_tokens].data() +
                ((t % page_tokens) * nkv + kvh) * hd;
            std::copy(ks, ks + hd, kc.begin() + static_cast<long>(t * hd));
            std::copy(vs, vs + hd, vc.begin() + static_cast<long>(t * hd));
        }
        std::vector<float> ref(hd);
        naiveAttention(q.data() + h * hd, kc.data(), vc.data(), ctx, hd,
                       scale, ref.data());
        for (std::size_t d = 0; d < hd; ++d)
            EXPECT_NEAR(out[h * hd + d], ref[d], 1e-4f)
                << "head " << h << " dim " << d;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GqaDecode,
    ::testing::Values(AttnShape{1, 1, 8, 5, 4},
                      AttnShape{8, 2, 8, 16, 4},
                      AttnShape{8, 2, 8, 17, 4},
                      AttnShape{32, 8, 16, 33, 16},
                      AttnShape{4, 4, 4, 1, 2}));

TEST(GqaDecodeEdge, SingleTokenContextIsIdentityOverV)
{
    // With one context token, softmax weight is 1 => out == V row.
    std::size_t nq = 2, nkv = 1, hd = 4;
    std::vector<float> q{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<float> k{0.5f, 0.5f, 0.5f, 0.5f};
    std::vector<float> v{9, 8, 7, 6};
    const float *kp = k.data();
    const float *vp = v.data();
    KvView view;
    view.kPages = {&kp, 1};
    view.vPages = {&vp, 1};
    view.pageTokens = 1;
    view.contextLen = 1;
    view.nKv = nkv;
    view.headDim = hd;
    std::vector<float> out(nq * hd);
    gqaDecodeAttention(q.data(), nq, view, out.data(), 0.5f);
    for (std::size_t h = 0; h < nq; ++h)
        for (std::size_t d = 0; d < hd; ++d)
            EXPECT_FLOAT_EQ(out[h * hd + d], v[d]);
}

TEST(GqaPrefill, LastTokenMatchesDecodePath)
{
    // Causal prefill's last position must equal a decode step over
    // the full cache.
    std::size_t seq = 6, nq = 4, nkv = 2, hd = 8;
    Rng rng(9);
    std::vector<float> q(seq * nq * hd), k(seq * nkv * hd),
        v(seq * nkv * hd);
    for (auto &x : q)
        x = static_cast<float>(rng.uniform(-1, 1));
    for (auto &x : k)
        x = static_cast<float>(rng.uniform(-1, 1));
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-1, 1));
    float scale = 1.0f / std::sqrt(static_cast<float>(hd));

    std::vector<float> prefill_out(seq * nq * hd);
    gqaPrefillAttention(q.data(), k.data(), v.data(), seq, nq, nkv, hd,
                        prefill_out.data(), scale);

    const float *kp = k.data();
    const float *vp = v.data();
    KvView view;
    view.kPages = {&kp, 1};
    view.vPages = {&vp, 1};
    view.pageTokens = seq;
    view.contextLen = seq;
    view.nKv = nkv;
    view.headDim = hd;
    std::vector<float> decode_out(nq * hd);
    gqaDecodeAttention(q.data() + (seq - 1) * nq * hd, nq, view,
                       decode_out.data(), scale);
    for (std::size_t i = 0; i < nq * hd; ++i)
        EXPECT_NEAR(decode_out[i],
                    prefill_out[(seq - 1) * nq * hd + i], 1e-5f);
}

TEST(GqaPrefill, FirstTokenSeesOnlyItself)
{
    std::size_t seq = 3, nq = 2, nkv = 2, hd = 4;
    Rng rng(4);
    std::vector<float> q(seq * nq * hd), k(seq * nkv * hd),
        v(seq * nkv * hd);
    for (auto &x : q)
        x = static_cast<float>(rng.uniform(-1, 1));
    for (auto &x : k)
        x = static_cast<float>(rng.uniform(-1, 1));
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-1, 1));
    std::vector<float> out(seq * nq * hd);
    gqaPrefillAttention(q.data(), k.data(), v.data(), seq, nq, nkv, hd,
                        out.data(), 0.5f);
    // Causality: position 0 output equals V[0] for each head.
    for (std::size_t h = 0; h < nq; ++h)
        for (std::size_t d = 0; d < hd; ++d)
            EXPECT_FLOAT_EQ(out[h * hd + d], v[h * hd + d]);
}

TEST(GqaDecodeEdge, RejectsMismatchedHeads)
{
    std::vector<float> q(3 * 4);
    std::vector<float> page(8);
    const float *kp = page.data();
    KvView view;
    view.kPages = {&kp, 1};
    view.vPages = {&kp, 1};
    view.pageTokens = 1;
    view.contextLen = 1;
    view.nKv = 2;  // 3 query heads % 2 != 0
    view.headDim = 4;
    std::vector<float> out(3 * 4);
    EXPECT_THROW(gqaDecodeAttention(q.data(), 3, view, out.data(), 1.0f),
                 PanicError);
}

} // namespace
} // namespace moelight
