#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "kernels/attention.hh"
#include "kernels/linalg.hh"
#include "kernels/moe_ffn.hh"
#include "kernels/ops.hh"
#include "runtime/reference_engine.hh"
#include "runtime/tensor_parallel.hh"

namespace moelight {
namespace {

std::vector<float>
randHidden(std::size_t h1, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> x(h1);
    for (auto &v : x)
        v = static_cast<float>(rng.uniform(-1, 1));
    return x;
}

TEST(TensorParallel, ShardShapes)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 3);
    auto shards = shardModel(w, 2);
    ASSERT_EQ(shards.size(), 2u);
    for (const auto &s : shards) {
        EXPECT_EQ(s.cfg.nq, w.cfg.nq / 2);
        EXPECT_EQ(s.cfg.nkv, w.cfg.nkv / 2);
        EXPECT_EQ(s.cfg.h2, w.cfg.h2 / 2);
        EXPECT_EQ(s.layers.size(), w.cfg.l);
        const auto &lw = s.layers[0];
        EXPECT_EQ(lw.wq.dim(0), s.cfg.nq * s.cfg.headDim);
        EXPECT_EQ(lw.wo.dim(1), s.cfg.nq * s.cfg.headDim);
        EXPECT_EQ(lw.w1[0].dim(0), s.cfg.h2);
        EXPECT_EQ(lw.w2[0].dim(1), s.cfg.h2);
    }
}

TEST(TensorParallel, RejectsIndivisibleDegree)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 3);
    // tiny model: nkv = 2, so tp = 4 cannot split the KV heads.
    EXPECT_THROW(shardModel(w, 4), FatalError);
    EXPECT_THROW(shardModel(w, 0), FatalError);
}

/**
 * The §4.3 functional claim: partial shard outputs sum to the
 * unsharded computation, for both the attention block and the MoE
 * FFN, across multiple decode positions (the shard-local KV caches
 * together cover the full cache).
 */
class TpEquivalence : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(TpEquivalence, AttentionPartialsSumToFull)
{
    std::size_t tp = GetParam();
    ModelConfig cfg = tinyMixtral();
    ModelWeights w = ModelWeights::random(cfg, 17);
    auto shards = shardModel(w, tp);

    const std::size_t layer = 1;
    const LayerWeights &lw = w.layers[layer];
    std::size_t q_dim = cfg.nq * cfg.headDim;
    std::size_t kv_dim = cfg.nkv * cfg.headDim;

    // Full (unsharded) reference, token by token.
    std::vector<float> k_hist, v_hist;
    std::vector<std::vector<float>> shard_k(tp), shard_v(tp);

    for (int t = 0; t < 5; ++t) {
        std::vector<float> x =
            randHidden(cfg.h1, 100 + static_cast<std::uint64_t>(t));

        // Reference attention block output.
        std::vector<float> norm(cfg.h1), q(q_dim), k(kv_dim),
            v(kv_dim);
        rmsNorm(x.data(), lw.attnNorm.data(), norm.data(), cfg.h1);
        matmulTransposedB(norm.data(), lw.wq.data(), q.data(), 1,
                          cfg.h1, q_dim);
        matmulTransposedB(norm.data(), lw.wk.data(), k.data(), 1,
                          cfg.h1, kv_dim);
        matmulTransposedB(norm.data(), lw.wv.data(), v.data(), 1,
                          cfg.h1, kv_dim);
        k_hist.insert(k_hist.end(), k.begin(), k.end());
        v_hist.insert(v_hist.end(), v.begin(), v.end());
        std::size_t ctx = k_hist.size() / kv_dim;
        const float *kp = k_hist.data();
        const float *vp = v_hist.data();
        KvView view;
        view.kPages = {&kp, 1};
        view.vPages = {&vp, 1};
        view.pageTokens = ctx;
        view.contextLen = ctx;
        view.nKv = cfg.nkv;
        view.headDim = cfg.headDim;
        std::vector<float> attn(q_dim), full(cfg.h1);
        gqaDecodeAttention(
            q.data(), cfg.nq, view, attn.data(),
            1.0f / std::sqrt(static_cast<float>(cfg.headDim)));
        matmulTransposedB(attn.data(), lw.wo.data(), full.data(), 1,
                          q_dim, cfg.h1);

        // Sharded: sum of partials.
        std::vector<float> sum(cfg.h1, 0.0f);
        for (std::size_t r = 0; r < tp; ++r) {
            auto partial = shardAttention(shards[r], LayerIdx(layer), x,
                                          shard_k[r], shard_v[r]);
            accumulate(sum.data(), partial.data(), cfg.h1);
        }
        for (std::size_t i = 0; i < cfg.h1; ++i)
            EXPECT_NEAR(sum[i], full[i], 1e-4f)
                << "tp=" << tp << " t=" << t << " i=" << i;
    }
}

TEST_P(TpEquivalence, MoeFfnPartialsSumToFull)
{
    std::size_t tp = GetParam();
    ModelConfig cfg = tinyMixtral();
    ModelWeights w = ModelWeights::random(cfg, 23);
    auto shards = shardModel(w, tp);

    const std::size_t layer = 2;
    const LayerWeights &lw = w.layers[layer];
    for (int trial = 0; trial < 4; ++trial) {
        std::vector<float> x_norm =
            randHidden(cfg.h1, 50 + static_cast<std::uint64_t>(trial));
        std::vector<float> logits(cfg.ne);
        matmulTransposedB(x_norm.data(), lw.router.data(),
                          logits.data(), 1, cfg.h1, cfg.ne);
        TokenRouting routing =
            routeTopK({logits.data(), logits.size()}, cfg.k);

        auto resolve = [&](int e) {
            ExpertWeights ew;
            auto idx = static_cast<std::size_t>(e);
            ew.w1 = lw.w1[idx].data();
            ew.w3 = lw.w3[idx].data();
            ew.w2 = lw.w2[idx].data();
            return ew;
        };
        std::vector<float> full(cfg.h1);
        moeFfnForward(x_norm.data(), {&routing, 1}, resolve, 1, cfg.h1,
                      cfg.h2, full.data());

        std::vector<float> sum(cfg.h1, 0.0f);
        for (std::size_t r = 0; r < tp; ++r) {
            auto partial = shardMoeFfn(shards[r], LayerIdx(layer), x_norm,
                                       routing);
            accumulate(sum.data(), partial.data(), cfg.h1);
        }
        for (std::size_t i = 0; i < cfg.h1; ++i)
            EXPECT_NEAR(sum[i], full[i], 1e-4f)
                << "tp=" << tp << " i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, TpEquivalence,
                         ::testing::Values(1u, 2u));

} // namespace
} // namespace moelight
