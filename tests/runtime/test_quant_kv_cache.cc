#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "runtime/kv_cache.hh"
#include "runtime/quant_kv_cache.hh"
#include "runtime/status.hh"

namespace moelight {
namespace {

ModelConfig
cfg()
{
    return tinyMixtral();  // nkv=2, headDim=8, l=4
}

std::vector<float>
randTokenKv(Rng &rng)
{
    std::vector<float> v(16);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-1, 1));
    return v;
}

TEST(QuantKvCache, ContextAccounting)
{
    QuantizedKvCache kv(cfg(), 2, 4, QuantKind::Int8);
    Rng rng(1);
    auto k = randTokenKv(rng), v = randTokenKv(rng);
    for (int t = 0; t < 9; ++t)
        kv.append(SeqId(0), LayerIdx(1), k.data(), v.data());
    EXPECT_EQ(kv.contextLen(SeqId(0), LayerIdx(1)), 9u);
    EXPECT_EQ(kv.contextLen(SeqId(0), LayerIdx(0)), 0u);
    EXPECT_EQ(kv.contextLen(SeqId(1), LayerIdx(1)), 0u);
}

class QuantKvKind : public ::testing::TestWithParam<QuantKind>
{
};

TEST_P(QuantKvKind, AttentionCloseToFloatCache)
{
    ModelConfig c = cfg();
    QuantizedKvCache qkv(c, 1, 4, GetParam());
    KvCacheManager fkv(c, 1, 4, 256);
    Rng rng(7);

    for (int t = 0; t < 11; ++t) {  // 2 closed pages + open page
        auto k = randTokenKv(rng);
        auto v = randTokenKv(rng);
        qkv.append(SeqId(0), LayerIdx(2), k.data(), v.data());
        fkv.append(SeqId(0), LayerIdx(2), k.data(), v.data());
    }
    std::vector<float> q(c.nq * c.headDim);
    for (auto &x : q)
        x = static_cast<float>(rng.uniform(-1, 1));

    QuantKvViewStorage qs;
    KvViewStorage fs;
    qkv.makeView(SeqId(0), LayerIdx(2), qs);
    fkv.makeView(SeqId(0), LayerIdx(2), fs);
    ASSERT_EQ(qs.view.contextLen, fs.view.contextLen);

    std::vector<float> out_q(q.size()), out_f(q.size());
    float scale = 1.0f / std::sqrt(static_cast<float>(c.headDim));
    gqaDecodeAttention(q.data(), c.nq, qs.view, out_q.data(), scale);
    gqaDecodeAttention(q.data(), c.nq, fs.view, out_f.data(), scale);
    float tol = GetParam() == QuantKind::Int8 ? 0.02f : 0.2f;
    for (std::size_t i = 0; i < out_q.size(); ++i)
        EXPECT_NEAR(out_q[i], out_f[i], tol) << i;
}

INSTANTIATE_TEST_SUITE_P(Kinds, QuantKvKind,
                         ::testing::Values(QuantKind::Int8,
                                           QuantKind::Int4));

TEST(QuantKvCache, CompressionApproachesNominalRatio)
{
    ModelConfig c = cfg();
    QuantizedKvCache kv8(c, 1, 4, QuantKind::Int8);
    QuantizedKvCache kv4(c, 1, 4, QuantKind::Int4);
    Rng rng(9);
    for (int t = 0; t < 64; ++t) {  // all pages closed
        auto k = randTokenKv(rng);
        auto v = randTokenKv(rng);
        kv8.append(SeqId(0), LayerIdx(0), k.data(), v.data());
        kv4.append(SeqId(0), LayerIdx(0), k.data(), v.data());
    }
    double r8 = static_cast<double>(kv8.storedBytes()) /
                static_cast<double>(kv8.equivalentFloatBytes());
    double r4 = static_cast<double>(kv4.storedBytes()) /
                static_cast<double>(kv4.equivalentFloatBytes());
    // int8: 1 byte payload + scale overhead vs 4 bytes.
    EXPECT_LT(r8, 0.40);
    EXPECT_GT(r8, 0.24);
    // int4: half a byte + scale overhead.
    EXPECT_LT(r4, 0.30);
    EXPECT_GT(r4, 0.12);
    EXPECT_LT(r4, r8);
}

TEST(QuantKvCache, OpenPageExactUntilClosed)
{
    // Tokens still in the open (float) page must be exact.
    ModelConfig c = cfg();
    QuantizedKvCache kv(c, 1, 8, QuantKind::Int4);
    Rng rng(11);
    auto k = randTokenKv(rng);
    auto v = randTokenKv(rng);
    kv.append(SeqId(0), LayerIdx(0), k.data(), v.data());
    QuantKvViewStorage s;
    kv.makeView(SeqId(0), LayerIdx(0), s);
    for (std::size_t h = 0; h < c.nkv; ++h)
        for (std::size_t d = 0; d < c.headDim; ++d) {
            EXPECT_EQ(s.view.kAt(0, h)[d], k[h * c.headDim + d]);
            EXPECT_EQ(s.view.vAt(0, h)[d], v[h * c.headDim + d]);
        }
}

TEST(QuantKvCache, OddHeadDimInt8Constructs)
{
    // Regression: the constructor used to reject odd headDim for
    // *both* kinds; only int4's nibble packing needs it even.
    ModelConfig c = cfg();
    c.headDim = 7;
    QuantizedKvCache kv(c, 1, 4, QuantKind::Int8);
    Rng rng(13);
    std::size_t tok_floats = c.nkv * c.headDim;
    std::vector<float> k(tok_floats), v(tok_floats);
    for (int t = 0; t < 6; ++t) {  // one closed page + open tokens
        for (auto &x : k)
            x = static_cast<float>(rng.uniform(-1, 1));
        for (auto &x : v)
            x = static_cast<float>(rng.uniform(-1, 1));
        kv.append(SeqId(0), LayerIdx(0), k.data(), v.data());
    }
    EXPECT_EQ(kv.contextLen(SeqId(0), LayerIdx(0)), 6u);

    std::vector<float> q(c.nq * c.headDim);
    for (auto &x : q)
        x = static_cast<float>(rng.uniform(-1, 1));
    std::vector<float> out_fused(q.size()), out_mat(q.size());
    gqaDecodeAttentionQuantFused(q.data(), c.nq,
                                 kv.makeQuantView(SeqId(0), LayerIdx(0)),
                                 out_fused.data(), 0.35f);
    QuantKvViewStorage s;
    kv.makeView(SeqId(0), LayerIdx(0), s);
    gqaDecodeAttention(q.data(), c.nq, s.view, out_mat.data(), 0.35f);
    for (std::size_t i = 0; i < out_fused.size(); ++i)
        EXPECT_EQ(out_fused[i], out_mat[i]) << i;

    // int4 still rejects an odd headDim (two nibbles per byte).
    EXPECT_THROW(QuantizedKvCache(c, 1, 4, QuantKind::Int4),
                 FatalError);
}

TEST_P(QuantKvKind, FusedOverQuantViewMatchesMaterializedView)
{
    // The zero-copy quantized view through the fused kernel must be
    // bit-identical to the materializing makeView + float kernel —
    // the golden cross-check pairing the runtime relies on.
    ModelConfig c = cfg();
    QuantizedKvCache kv(c, 1, 4, GetParam());
    Rng rng(29);
    for (int t = 0; t < 11; ++t) {  // 2 closed pages + 3 open tokens
        auto k = randTokenKv(rng);
        auto v = randTokenKv(rng);
        kv.append(SeqId(0), LayerIdx(1), k.data(), v.data());
    }
    QuantKvView qv = kv.makeQuantView(SeqId(0), LayerIdx(1));
    EXPECT_EQ(qv.kPages.size(), 2u);
    EXPECT_EQ(qv.openTokens, 3u);
    EXPECT_EQ(qv.contextLen, 11u);

    std::vector<float> q(c.nq * c.headDim);
    for (auto &x : q)
        x = static_cast<float>(rng.uniform(-1, 1));
    std::vector<float> out_fused(q.size()), out_mat(q.size());
    float scale = 1.0f / std::sqrt(static_cast<float>(c.headDim));
    gqaDecodeAttentionQuantFused(q.data(), c.nq, qv, out_fused.data(),
                                 scale);
    QuantKvViewStorage s;
    kv.makeView(SeqId(0), LayerIdx(1), s);
    gqaDecodeAttention(q.data(), c.nq, s.view, out_mat.data(), scale);
    for (std::size_t i = 0; i < out_fused.size(); ++i)
        EXPECT_EQ(out_fused[i], out_mat[i]) << i;
}

TEST(QuantKvCache, EnforcesTokenCapacity)
{
    // The engine's kvCapacityTokens budget must keep meaning
    // something in quantized mode: exceeding it is fatal, like the
    // float pool's exhaustion, instead of growing without bound.
    QuantizedKvCache kv(cfg(), 1, 4, QuantKind::Int8, 5);
    std::vector<float> k(16, 0.5f), v(16, 0.5f);
    for (int t = 0; t < 5; ++t)
        kv.append(SeqId(0), LayerIdx(t % 2), k.data(), v.data());
    EXPECT_THROW(kv.append(SeqId(0), LayerIdx(0), k.data(), v.data()), FatalError);
}

TEST(QuantKvCache, OutOfRangePanics)
{
    QuantizedKvCache kv(cfg(), 1, 4, QuantKind::Int8);
    std::vector<float> k(16), v(16);
    EXPECT_THROW(kv.append(SeqId(1), LayerIdx(0), k.data(), v.data()), PanicError);
    EXPECT_THROW(kv.append(SeqId(0), LayerIdx(4), k.data(), v.data()), PanicError);
}

TEST(QuantKvCache, ExhaustionIsTypedAndLeavesCounterConsistent)
{
    QuantizedKvCache kv(cfg(), 1, 4, QuantKind::Int8, 5);
    std::vector<float> k(16, 0.5f), v(16, 0.5f);
    for (int t = 0; t < 5; ++t)
        kv.append(SeqId(0), LayerIdx(t % 2), k.data(), v.data());
    try {
        kv.append(SeqId(0), LayerIdx(0), k.data(), v.data());
        FAIL() << "over budget";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), ErrorCode::KvExhausted);
        EXPECT_EQ(e.site(), "kv.alloc");
    }
    // The capacity check runs before any mutation, so the rejected
    // append did not bump the token counter: freeing the sequence
    // returns the cache to exactly empty and the next append at the
    // budget boundary still succeeds.
    kv.freeSequence(SeqId(0));
    EXPECT_EQ(kv.usedTokens(), 0u);
    for (int t = 0; t < 5; ++t)
        kv.append(SeqId(0), LayerIdx(0), k.data(), v.data());
    EXPECT_EQ(kv.usedTokens(), 5u);
}

TEST(QuantKvCache, FreeSequenceErrorsAreTyped)
{
    QuantizedKvCache kv(cfg(), 2, 4, QuantKind::Int4);
    std::vector<float> k(16, 0.25f), v(16, 0.25f);
    kv.append(SeqId(0), LayerIdx(0), k.data(), v.data());

    try {
        kv.freeSequence(SeqId(9));
        FAIL() << "out-of-range seq should throw";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), ErrorCode::KvInvalidSequence);
        EXPECT_EQ(e.site(), "kv.free");
    }

    kv.freeSequence(SeqId(0));
    try {
        kv.freeSequence(SeqId(0));
        FAIL() << "second free should throw";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), ErrorCode::KvDoubleFree);
        EXPECT_EQ(e.site(), "kv.free");
    }
    EXPECT_THROW(kv.freeSequence(SeqId(1)), EngineError);
}

} // namespace
} // namespace moelight
