/**
 * Prefix-cache tests, unit and end-to-end. The unit half drives the
 * radix tree over a synthetic-hooked PageTable: lookup semantics
 * (page-granular match, the one-novel-token cap, verified tokens so
 * collisions degrade to misses), insert idempotence, and LRU eviction
 * of exactly the coldest unreferenced leaf. The end-to-end half is
 * the PR's acceptance criterion: PipelinedEngine with the prefix
 * cache ON produces greedy tokens bit-identical (EXPECT_EQ, no
 * tolerance) to a cold cache and to ReferenceEngine, across
 * float/int8/int4 KV, staggered admission, early stop-token
 * retirement, preemption of a sequence sharing cached pages, and a
 * kv.alloc fault injected mid prefix-hit prefill (contained to the
 * one slot, cache stays serviceable).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "runtime/engine.hh"
#include "runtime/fault_injection.hh"
#include "runtime/page_table.hh"
#include "runtime/prefix_cache.hh"
#include "runtime/reference_engine.hh"
#include "runtime/serving.hh"
#include "runtime/status.hh"

namespace moelight {
namespace {

// ---------------------------------------------------------------------
// Unit tests: PrefixCache over a synthetic-hooked PageTable.
// ---------------------------------------------------------------------

/** Synthetic block store (same shape as test_page_table's). */
struct FakeStore
{
    std::vector<bool> live;
    std::vector<BlockId> freeIds;
    int allocs = 0, frees = 0;

    PageTableHooks
    hooks()
    {
        return PageTableHooks{
            [this] {
                ++allocs;
                if (!freeIds.empty()) {
                    BlockId id = freeIds.back();
                    freeIds.pop_back();
                    live[id.value()] = true;
                    return id;
                }
                live.push_back(true);
                return BlockId(live.size() - 1);
            },
            [](BlockId, BlockId, std::size_t) {},
            [this](BlockId id) {
                ++frees;
                live[id.value()] = false;
                freeIds.push_back(id);
            },
        };
    }
};

std::vector<int>
iotaPrompt(int start, std::size_t len)
{
    std::vector<int> p(len);
    for (std::size_t i = 0; i < len; ++i)
        p[i] = start + static_cast<int>(i);
    return p;
}

/** Simulate a prefill: append one table token per prompt token. */
void
fakePrefill(PageTable &t, std::size_t seq, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        t.appendToken(SeqId(seq), LayerIdx(0));
}

TEST(PrefixCache, MatchIsPageGranularCappedAndVerified)
{
    FakeStore store;
    PageTable t(4, 1, 4, PageCapacityModel::Blocks, 64, store.hooks());
    PrefixCache pc(t, /*bytesPerToken=*/8);

    std::vector<int> prompt = iotaPrompt(0, 10);
    fakePrefill(t, 0, prompt.size());
    pc.insert(SeqId(0), prompt);
    EXPECT_EQ(pc.cachedNodes(), 2u) << "two closed pages of 10 tokens";

    // peekMatch: page-granular, capped one token short of the prompt,
    // and side-effect free (no stats, no LRU touch).
    EXPECT_EQ(pc.peekMatch(prompt), 8u);
    std::vector<int> six(prompt.begin(), prompt.begin() + 6);
    EXPECT_EQ(pc.peekMatch(six), 4u);
    std::vector<int> four(prompt.begin(), prompt.begin() + 4);
    EXPECT_EQ(pc.peekMatch(four), 0u)
        << "a full-page prompt must keep one novel token to prefill";
    std::vector<int> divergent = iotaPrompt(500, 10);
    EXPECT_EQ(pc.peekMatch(divergent), 0u);
    // A prompt agreeing with a cached page except one token misses
    // that page: node keys hash tokens but lookups verify them.
    std::vector<int> nearMiss = prompt;
    nearMiss[2] = 999;
    EXPECT_EQ(pc.peekMatch(nearMiss), 0u);
    EXPECT_EQ(pc.stats().lookups, 0u);

    // attach bumps refcounts layer-wide and records the hit.
    EXPECT_EQ(pc.attach(SeqId(1), prompt), 8u);
    EXPECT_EQ(t.streamLen(SeqId(1), LayerIdx(0)), 8u);
    EXPECT_EQ(pc.stats().lookups, 1u);
    EXPECT_EQ(pc.stats().hits, 1u);
    EXPECT_EQ(pc.stats().pagesReused, 2u);
    EXPECT_EQ(pc.stats().bytesPrefillSkipped, 8u * 8u);
    EXPECT_EQ(pc.attach(SeqId(2), divergent), 0u);
    EXPECT_EQ(pc.stats().lookups, 2u);
    EXPECT_EQ(pc.stats().hits, 1u);

    // Cached pages outlive the inserting sequence.
    t.freeSequence(SeqId(0));
    EXPECT_EQ(t.streamLen(SeqId(1), LayerIdx(0)), 8u);
    EXPECT_EQ(t.blockTokens(t.streamBlocks(SeqId(1), LayerIdx(0))[0]), 4u);
}

TEST(PrefixCache, InsertIsIdempotentAndKeepsIncumbentPages)
{
    FakeStore store;
    PageTable t(4, 1, 4, PageCapacityModel::Blocks, 64, store.hooks());
    PrefixCache pc(t, 8);

    std::vector<int> prompt = iotaPrompt(0, 9);
    fakePrefill(t, 0, prompt.size());
    pc.insert(SeqId(0), prompt);
    EXPECT_EQ(pc.cachedNodes(), 2u);
    EXPECT_EQ(t.pinnedTokens(), 8u);
    pc.insert(SeqId(0), prompt);
    EXPECT_EQ(pc.cachedNodes(), 2u) << "re-insert must not duplicate";
    EXPECT_EQ(t.pinnedTokens(), 8u);

    // A second sequence that prefilled the same prompt into its own
    // private blocks inserts onto the existing nodes: the incumbent
    // blocks stay cached, the newcomer's stay private and die with it.
    fakePrefill(t, 1, prompt.size());
    pc.insert(SeqId(1), prompt);
    EXPECT_EQ(pc.cachedNodes(), 2u);
    EXPECT_EQ(t.pinnedTokens(), 8u);
    t.freeSequence(SeqId(0));
    t.freeSequence(SeqId(1));
    EXPECT_EQ(t.residentBlocks(), 2u) << "only the pinned incumbents";
}

TEST(PrefixCache, LruEvictsColdestUnreferencedLeafFirst)
{
    FakeStore store;
    PageTable t(4, 1, 4, PageCapacityModel::Blocks, 64, store.hooks());
    PrefixCache pc(t, 8);

    std::vector<int> a = iotaPrompt(0, 9), b = iotaPrompt(100, 9);
    fakePrefill(t, 0, a.size());
    pc.insert(SeqId(0), a);
    fakePrefill(t, 1, b.size());
    pc.insert(SeqId(1), b);
    t.freeSequence(SeqId(0));
    t.freeSequence(SeqId(1));
    ASSERT_EQ(pc.cachedNodes(), 4u);
    ASSERT_EQ(t.residentBlocks(), 4u);

    // Touch chain A (attach is an LRU touch; peekMatch is not), so B
    // is now the coldest.
    EXPECT_EQ(pc.attach(SeqId(2), a), 8u);
    t.freeSequence(SeqId(2));
    EXPECT_EQ(pc.peekMatch(b), 8u);  // no touch

    // Eviction order: B's leaf (deepest cold), B's root, A's leaf,
    // A's root — leaves only, coldest first, physically freeing each.
    std::vector<int> bRoot(b.begin(), b.begin() + 4 + 1);
    EXPECT_TRUE(pc.evictOne());
    EXPECT_EQ(pc.peekMatch(b), 4u) << "B's leaf went first";
    EXPECT_TRUE(pc.evictOne());
    EXPECT_EQ(pc.peekMatch(bRoot), 0u) << "then B's root";
    EXPECT_EQ(pc.peekMatch(a), 8u) << "A untouched";
    EXPECT_EQ(t.residentBlocks(), 2u);
    EXPECT_EQ(pc.stats().pagesEvicted, 2u);

    // A page referenced by a live stream is not evictable: with both
    // of A's pages attached, nothing can go.
    EXPECT_EQ(pc.attach(SeqId(3), a), 8u);
    EXPECT_FALSE(pc.evictOne());
    t.freeSequence(SeqId(3));
    EXPECT_TRUE(pc.evictOne());
    EXPECT_TRUE(pc.evictOne());
    EXPECT_FALSE(pc.evictOne()) << "empty tree has nothing to evict";
    EXPECT_EQ(pc.cachedNodes(), 0u);
    EXPECT_EQ(t.residentBlocks(), 0u);
    EXPECT_EQ(t.pinnedTokens(), 0u);
}

// ---------------------------------------------------------------------
// End-to-end: hot vs cold bit-identity through PipelinedEngine.
// ---------------------------------------------------------------------

std::vector<int>
makePrompt(const ModelConfig &cfg, std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<int> p;
    for (std::size_t t = 0; t < len; ++t)
        p.push_back(static_cast<int>(rng.uniformInt(
            0, static_cast<std::int64_t>(cfg.vocab) - 1)));
    return p;
}

/** Oracle: serve one request alone through a fresh ReferenceEngine. */
std::vector<int>
referenceTokens(const ModelWeights &w, const ServeRequest &req,
                std::optional<QuantKind> kvQuant = std::nullopt,
                std::size_t kvPageTokens = 16)
{
    ReferenceEngine ref(w, kvQuant, kvPageTokens);
    ref.submit(req);
    std::vector<RequestOutput> out = ref.drain();
    EXPECT_EQ(out.size(), 1u);
    return out.empty() ? std::vector<int>{} : out[0].tokens;
}

/** Requests sharing a system prompt: sys + per-request unique tail. */
std::vector<ServeRequest>
sharedPrefixRequests(const ModelConfig &cfg,
                     const std::vector<int> &sys, int n,
                     int maxNewBase)
{
    std::vector<ServeRequest> reqs;
    for (int i = 0; i < n; ++i) {
        ServeRequest r;
        r.id = i;
        r.prompt = sys;
        std::vector<int> tail = makePrompt(
            cfg, 1 + static_cast<std::size_t>(i) % 3,
            200 + static_cast<std::uint64_t>(i));
        r.prompt.insert(r.prompt.end(), tail.begin(), tail.end());
        r.maxNewTokens = maxNewBase + i;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

TEST(PrefixServing, HotMatchesColdAndReferenceFloat)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 21);
    EngineConfig ec;
    ec.microBatch = 2;
    ec.kvPageTokens = 4;
    ec.maxConcurrency = 4;
    ec.prefixCache = true;

    std::vector<int> sys = makePrompt(w.cfg, 9, 5);
    std::vector<ServeRequest> reqs =
        sharedPrefixRequests(w.cfg, sys, 5, 3);

    // Cold engine: identical requests, prefix cache off.
    std::map<std::int64_t, std::vector<int>> cold;
    {
        EngineConfig cc = ec;
        cc.prefixCache = false;
        PipelinedEngine eng(w, cc);
        eng.submit(reqs[0]);
        for (auto &o : eng.drain())
            cold[o.id] = std::move(o.tokens);
        for (int i = 1; i < 5; ++i)
            eng.submit(reqs[static_cast<std::size_t>(i)]);
        for (auto &o : eng.drain())
            cold[o.id] = std::move(o.tokens);
    }

    PipelinedEngine eng(w, ec);
    // Warm the cache with one request, then serve the sharers.
    eng.submit(reqs[0]);
    std::vector<RequestOutput> outs = eng.drain();
    for (int i = 1; i < 5; ++i)
        eng.submit(reqs[static_cast<std::size_t>(i)]);
    for (auto &o : eng.drain())
        outs.push_back(std::move(o));

    ASSERT_EQ(outs.size(), reqs.size());
    for (const auto &o : outs) {
        const ServeRequest &r = reqs[static_cast<std::size_t>(o.id)];
        EXPECT_EQ(o.finishReason, FinishReason::Length);
        EXPECT_EQ(o.tokens, cold[o.id])
            << "request " << o.id << " hot vs cold";
        EXPECT_EQ(o.tokens, referenceTokens(w, r))
            << "request " << o.id << " hot vs reference";
    }

    // The sharers all hit the two cached sys pages; the pages stay
    // resident after every sequence drained, and usage returns to 0.
    PrefixCacheStats st = eng.prefixCacheStats();
    EXPECT_EQ(st.lookups, 5u);
    EXPECT_EQ(st.hits, 4u);
    EXPECT_EQ(st.pagesReused, 4u * 2u * w.cfg.l);
    EXPECT_GT(st.bytesPrefillSkipped, 0u);
    EXPECT_EQ(eng.kvUsedPages(), 0u)
        << "drained engine holds no per-request pages";
    EXPECT_GT(eng.kvCachedPages(), 0u)
        << "cached prefix pages survive the drain";
}

struct QuantPrefixServing
    : public ::testing::TestWithParam<QuantKind>
{
};

TEST_P(QuantPrefixServing, StaggeredHotMatchesQuantReference)
{
    QuantKind kind = GetParam();
    ModelWeights w = ModelWeights::random(tinyMixtral(), 42);
    std::size_t page_tokens = 4;
    EngineConfig ec;
    ec.microBatch = 2;
    ec.kvPageTokens = page_tokens;
    ec.kvQuant = kind;
    ec.maxConcurrency = 4;
    ec.prefixCache = true;
    PipelinedEngine eng(w, ec);

    std::vector<int> sys = makePrompt(w.cfg, 10, 9);
    std::vector<ServeRequest> reqs =
        sharedPrefixRequests(w.cfg, sys, 5, 2);

    // Warm, then staggered admission: sharers join sequences already
    // mid-decode, each attaching the cached quantized pages.
    eng.submit(reqs[0]);
    std::vector<RequestOutput> outs = eng.drain();
    auto collect = [&](std::vector<RequestOutput> v) {
        for (auto &o : v)
            outs.push_back(std::move(o));
    };
    eng.submit(reqs[1]);
    eng.submit(reqs[2]);
    collect(eng.step());
    collect(eng.step());
    eng.submit(reqs[3]);
    eng.submit(reqs[4]);
    collect(eng.drain());

    ASSERT_EQ(outs.size(), reqs.size());
    for (const auto &o : outs) {
        const ServeRequest &r = reqs[static_cast<std::size_t>(o.id)];
        EXPECT_EQ(o.tokens, referenceTokens(w, r, kind, page_tokens))
            << "request " << o.id << " (quant hot)";
    }
    EXPECT_GE(eng.prefixCacheStats().hits, 4u);
    EXPECT_EQ(eng.kvUsedPages(), 0u);
    EXPECT_GT(eng.kvCachedPages(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, QuantPrefixServing,
                         ::testing::Values(QuantKind::Int8,
                                           QuantKind::Int4));

TEST(PrefixServing, StopTokenRetiresSharerEarlyBitIdentical)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 17);
    EngineConfig ec;
    ec.microBatch = 2;
    ec.kvPageTokens = 4;
    ec.maxConcurrency = 4;
    ec.prefixCache = true;
    PipelinedEngine eng(w, ec);

    std::vector<int> sys = makePrompt(w.cfg, 9, 33);
    std::vector<ServeRequest> reqs =
        sharedPrefixRequests(w.cfg, sys, 3, 6);
    // Give request 1 a stop token it will actually sample (its second
    // greedy token), so it retires mid-flight while its prefix
    // sharers keep decoding against the same cached pages.
    std::vector<int> unstopped = referenceTokens(w, reqs[1]);
    ASSERT_GE(unstopped.size(), 2u);
    reqs[1].stopTokens = {unstopped[1]};

    eng.submit(reqs[0]);
    std::vector<RequestOutput> outs = eng.drain();
    eng.submit(reqs[1]);
    eng.submit(reqs[2]);
    for (auto &o : eng.drain())
        outs.push_back(std::move(o));

    ASSERT_EQ(outs.size(), reqs.size());
    for (const auto &o : outs) {
        const ServeRequest &r = reqs[static_cast<std::size_t>(o.id)];
        EXPECT_EQ(o.tokens, referenceTokens(w, r))
            << "request " << o.id;
        EXPECT_EQ(o.finishReason, o.id == 1 ? FinishReason::Stop
                                            : FinishReason::Length);
    }
    EXPECT_EQ(eng.kvUsedPages(), 0u);
    EXPECT_GT(eng.kvCachedPages(), 0u);
}

TEST(PrefixServing, PreemptedSharerReleasesOnlyPrivateTail)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 77);
    EngineConfig ec;
    ec.microBatch = 2;
    // Budget 32 request tokens (128 / 4 layers). The warmed cache
    // pins 8 (two sys pages, charged once globally); two sharers net
    // 12 each (4 novel prompt tokens + 8 generated, page-rounded)
    // fill the rest, so the late arrival (net 8) starves until the
    // engine preempts the youngest sharer — which must release only
    // its private tail, not the pinned prefix.
    ec.maxConcurrency = 4;
    ec.kvPageTokens = 4;
    ec.kvCapacityTokens = 128;
    ec.headAgeLimit = 2;
    ec.prefixCache = true;
    PipelinedEngine eng(w, ec);

    std::vector<int> sys = makePrompt(w.cfg, 10, 61);
    std::vector<ServeRequest> reqs;
    for (int i = 0; i < 4; ++i) {
        ServeRequest r;
        r.id = i;
        r.prompt = sys;
        if (i > 0) {
            std::vector<int> tail = makePrompt(
                w.cfg, 2, 300 + static_cast<std::uint64_t>(i));
            r.prompt.insert(r.prompt.end(), tail.begin(), tail.end());
        }
        r.maxNewTokens = i == 0 ? 2 : (i == 3 ? 4 : 8);
        reqs.push_back(std::move(r));
    }

    std::map<std::int64_t, std::vector<int>> want;
    for (const auto &r : reqs)
        want[r.id] = referenceTokens(w, r);

    // Warm with the bare sys prompt, then fill the budget with two
    // sharers and starve the late third until preemption unblocks it.
    eng.submit(reqs[0]);
    std::vector<RequestOutput> outs = eng.drain();
    eng.submit(reqs[1]);
    eng.submit(reqs[2]);
    (void)eng.step();
    eng.submit(reqs[3]);
    for (auto &o : eng.drain())
        outs.push_back(std::move(o));

    ASSERT_EQ(outs.size(), reqs.size());
    EXPECT_GE(eng.preemptions(), 1u)
        << "the aged head must trigger a preemption";
    int preempted = 0;
    for (const auto &o : outs) {
        EXPECT_EQ(o.finishReason, FinishReason::Length);
        EXPECT_EQ(o.tokens, want[o.id])
            << "request " << o.id << " (preempted " << o.preemptions
            << "x) must be bit-identical to an uncontended run";
        preempted += o.preemptions > 0 ? 1 : 0;
    }
    EXPECT_GE(preempted, 1);
    EXPECT_EQ(eng.kvUsedPages(), 0u);
    EXPECT_GT(eng.kvCachedPages(), 0u)
        << "preempting a sharer must not drop the cached prefix";
    EXPECT_GE(eng.prefixCacheStats().hits, 2u);
}

TEST(PrefixServing, AllocFaultDuringPrefixHitContainedToSlot)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 55);
    EngineConfig ec;
    ec.microBatch = 2;
    ec.kvPageTokens = 4;
    ec.maxConcurrency = 4;
    ec.prefixCache = true;
    PipelinedEngine eng(w, ec);

    std::vector<int> sys = makePrompt(w.cfg, 9, 71);
    std::vector<ServeRequest> reqs =
        sharedPrefixRequests(w.cfg, sys, 4, 3);

    eng.submit(reqs[0]);
    std::vector<RequestOutput> outs = eng.drain();
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0].finishReason, FinishReason::Length);
    outs.clear();

    // Fault the first page allocation after the warmup: it fires in
    // one sharer's novel-tail prefill, right after that slot attached
    // the cached pages.
    {
        ScopedFault fault("kv.alloc", 1);
        eng.submit(reqs[1]);
        eng.submit(reqs[2]);
        for (auto &o : eng.drain())
            outs.push_back(std::move(o));
        EXPECT_EQ(fault.hits(), 1u);
    }

    ASSERT_EQ(outs.size(), 2u);
    int errored = 0;
    for (const auto &o : outs) {
        const ServeRequest &r = reqs[static_cast<std::size_t>(o.id)];
        if (o.finishReason == FinishReason::Error) {
            ++errored;
            EXPECT_FALSE(o.errorMessage.empty());
            EXPECT_NE(o.errorMessage.find("kv.alloc"),
                      std::string::npos);
        } else {
            EXPECT_EQ(o.finishReason, FinishReason::Length);
            EXPECT_EQ(o.tokens, referenceTokens(w, r))
                << "surviving sharer " << o.id;
        }
    }
    EXPECT_EQ(errored, 1) << "exactly one slot absorbs the fault";

    // The faulted slot's attached refs were released; the cached
    // prefix and the engine both stay serviceable.
    EXPECT_EQ(eng.kvUsedPages(), 0u);
    EXPECT_GT(eng.kvCachedPages(), 0u);
    eng.submit(reqs[3]);
    outs = eng.drain();
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0].finishReason, FinishReason::Length);
    EXPECT_EQ(outs[0].tokens, referenceTokens(w, reqs[3]));
}

} // namespace
} // namespace moelight
