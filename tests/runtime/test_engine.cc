#include <gtest/gtest.h>

#include "common/rng.hh"
#include "runtime/engine.hh"
#include "runtime/reference_engine.hh"

namespace moelight {
namespace {

std::vector<std::vector<int>>
makePrompts(const ModelConfig &cfg, std::size_t n, std::size_t min_len,
            std::size_t max_len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<int>> prompts(n);
    for (auto &p : prompts) {
        std::size_t len = static_cast<std::size_t>(rng.uniformInt(
            static_cast<std::int64_t>(min_len),
            static_cast<std::int64_t>(max_len)));
        for (std::size_t t = 0; t < len; ++t)
            p.push_back(static_cast<int>(rng.uniformInt(
                0, static_cast<std::int64_t>(cfg.vocab) - 1)));
    }
    return prompts;
}

TEST(ReferenceEngine, DeterministicGeneration)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 1);
    ReferenceEngine a(w), b(w);
    auto prompts = makePrompts(w.cfg, 2, 3, 6, 2);
    auto ra = a.generate(prompts, 5);
    auto rb = b.generate(prompts, 5);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t s = 0; s < ra.size(); ++s)
        EXPECT_EQ(ra[s].tokens, rb[s].tokens);
}

TEST(ReferenceEngine, GeneratesRequestedLength)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 2);
    ReferenceEngine eng(w);
    auto prompts = makePrompts(w.cfg, 3, 2, 8, 3);
    auto out = eng.generate(prompts, 7);
    for (const auto &r : out) {
        EXPECT_EQ(r.tokens.size(), 7u);
        for (int t : r.tokens) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, static_cast<int>(w.cfg.vocab));
        }
    }
}

/**
 * The headline correctness test: the CGOPipe pipelined engine must
 * produce exactly the reference engine's greedy tokens — pipelining,
 * paging and offloading must not change results.
 */
class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(EngineEquivalence, PipelinedMatchesReference)
{
    auto [num_seqs, gen_len, micro_batch] = GetParam();
    ModelWeights w = ModelWeights::random(tinyMixtral(), 42);

    ReferenceEngine ref(w);
    auto prompts = makePrompts(w.cfg, static_cast<std::size_t>(num_seqs),
                               2, 10, 7);
    auto expect = ref.generate(prompts, gen_len);

    EngineConfig ec;
    ec.microBatch = static_cast<std::size_t>(micro_batch);
    ec.kvPageTokens = 4;
    PipelinedEngine eng(w, ec);
    auto got = eng.generate(prompts, gen_len);

    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t s = 0; s < got.size(); ++s)
        EXPECT_EQ(got[s].tokens, expect[s].tokens) << "seq " << s;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineEquivalence,
    ::testing::Values(std::make_tuple(1, 4, 1),
                      std::make_tuple(2, 6, 1),
                      std::make_tuple(4, 6, 2),
                      std::make_tuple(6, 5, 2),
                      std::make_tuple(8, 8, 2),
                      std::make_tuple(8, 4, 4),
                      std::make_tuple(5, 6, 2),   // ragged last ub
                      std::make_tuple(9, 3, 4))); // ragged last ub

TEST(PipelinedEngine, MultiThreadedCpuAttentionMatches)
{
    // The attention thread pool must not change results (per-token
    // scratch, disjoint outputs).
    ModelWeights w = ModelWeights::random(tinyMixtral(), 21);
    ReferenceEngine ref(w);
    auto prompts = makePrompts(w.cfg, 6, 3, 9, 31);
    auto expect = ref.generate(prompts, 6);
    EngineConfig ec;
    ec.microBatch = 3;
    ec.cpuAttnThreads = 3;
    PipelinedEngine eng(w, ec);
    auto got = eng.generate(prompts, 6);
    for (std::size_t s = 0; s < got.size(); ++s)
        EXPECT_EQ(got[s].tokens, expect[s].tokens) << "seq " << s;
}

TEST(PipelinedEngine, ThrottledLinkStillCorrect)
{
    // Bandwidth throttling (real sleeps on the transfer paths)
    // stresses the pipeline's event ordering without changing
    // results.
    ModelWeights w = ModelWeights::random(tinyMixtral(), 22);
    ReferenceEngine ref(w);
    auto prompts = makePrompts(w.cfg, 4, 2, 5, 33);
    auto expect = ref.generate(prompts, 4);
    EngineConfig ec;
    ec.microBatch = 2;
    ec.throttleBw = 200.0 * 1e6;  // 200 MB/s simulated link
    PipelinedEngine eng(w, ec);
    auto got = eng.generate(prompts, 4);
    for (std::size_t s = 0; s < got.size(); ++s)
        EXPECT_EQ(got[s].tokens, expect[s].tokens) << "seq " << s;
}

TEST(PipelinedEngine, SingleTokenGeneration)
{
    // genLen=1: prefill-only path.
    ModelWeights w = ModelWeights::random(tinyMixtral(), 5);
    ReferenceEngine ref(w);
    auto prompts = makePrompts(w.cfg, 3, 2, 6, 11);
    auto expect = ref.generate(prompts, 1);
    PipelinedEngine eng(w, {});
    auto got = eng.generate(prompts, 1);
    for (std::size_t s = 0; s < got.size(); ++s)
        EXPECT_EQ(got[s].tokens, expect[s].tokens);
}

TEST(PipelinedEngine, MoreMicroBatchesThanWeightPagesMatchReference)
{
    // microBatch=1 with many active sequences gives more decode
    // micro-batches than a layer has weight pages, so some chunks of
    // the interleaved weight stream are empty — the slot-retired
    // ordering must then ride on the first *non-empty* chunk, or the
    // incoming layer's pages overwrite a weight slot still being
    // read (torn weights => wrong tokens).
    ModelWeights w = ModelWeights::random(tinyMixtral(), 31);
    ReferenceEngine ref(w);
    auto prompts = makePrompts(w.cfg, 22, 2, 6, 19);
    auto expect = ref.generate(prompts, 4);
    EngineConfig ec;
    ec.microBatch = 1;
    ec.maxConcurrency = 24;
    PipelinedEngine eng(w, ec);
    auto got = eng.generate(prompts, 4);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t s = 0; s < got.size(); ++s)
        EXPECT_EQ(got[s].tokens, expect[s].tokens) << "seq " << s;
}

TEST(PipelinedEngine, AdmissionWavesMatchReference)
{
    // More prompts than sequence slots: the continuous batcher admits
    // in waves as slots retire and free up, which must not change any
    // request's tokens.
    ModelWeights w = ModelWeights::random(tinyMixtral(), 23);
    ReferenceEngine ref(w);
    auto prompts = makePrompts(w.cfg, 7, 2, 9, 17);
    auto expect = ref.generate(prompts, 5);
    EngineConfig ec;
    ec.microBatch = 2;
    ec.maxConcurrency = 3;
    PipelinedEngine eng(w, ec);
    auto got = eng.generate(prompts, 5);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t s = 0; s < got.size(); ++s)
        EXPECT_EQ(got[s].tokens, expect[s].tokens) << "seq " << s;
}

TEST(PipelinedEngine, TransfersAccountedForWeightsAndActivations)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 6);
    PipelinedEngine eng(w, {});
    auto prompts = makePrompts(w.cfg, 4, 3, 5, 13);
    eng.generate(prompts, 4);
    TransferStats s = eng.transferStats();
    // Weights staged through pinned memory: both hops equal.
    EXPECT_GT(s.hostToPinned, 0u);
    EXPECT_EQ(s.hostToPinned, s.pinnedToGpu);
    // Decode moved QKV down and hidden back up.
    EXPECT_GT(s.gpuToHost, 0u);
    EXPECT_GT(s.hostToGpu, 0u);
    // Each decode step re-streams every layer: weights dominate.
    EXPECT_GT(s.hostToPinned, s.hostToGpu);
}

TEST(PipelinedEngine, KvCacheHeldWhileActiveFreedOnRetire)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 8);
    EngineConfig ec;
    ec.kvPageTokens = 4;
    PipelinedEngine eng(w, ec);
    ServeRequest req;
    req.id = 1;
    req.prompt = {1, 2, 3, 4, 5};
    req.maxNewTokens = 4;
    eng.submit(req);
    // First step admits + prefills + decodes one token: pages held.
    auto out = eng.step();
    EXPECT_TRUE(out.empty());
    EXPECT_GT(eng.kvUsedPages(), 0u);
    // Draining retires the request and releases its pages.
    auto rest = eng.drain();
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0].tokens.size(), 4u);
    EXPECT_EQ(eng.kvUsedPages(), 0u);
    EXPECT_GT(eng.kvPeakPages(), 0u);
}

TEST(PipelinedEngine, RejectsBadConfig)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 9);
    // Every bad field fails at construction with its own message
    // (EngineConfig::validate), not deep inside the pipeline.
    EngineConfig ec;
    ec.microBatch = 0;
    EXPECT_THROW(PipelinedEngine(w, ec), FatalError);
    ec = {};
    ec.kvPageTokens = 0;
    EXPECT_THROW(PipelinedEngine(w, ec), FatalError);
    ec = {};
    ec.kvCapacityTokens = 0;
    EXPECT_THROW(PipelinedEngine(w, ec), FatalError);
    ec = {};
    ec.lookahead = 0;
    EXPECT_THROW(PipelinedEngine(w, ec), FatalError);
    ec = {};
    ec.maxConcurrency = 0;
    EXPECT_THROW(PipelinedEngine(w, ec), FatalError);
    ModelConfig odd = tinyMixtral();
    odd.l = 3;  // not a multiple of the weight slot count
    ModelWeights w3 = ModelWeights::random(odd, 9);
    EXPECT_THROW(PipelinedEngine(w3, {}), FatalError);
}

TEST(PipelinedEngine, RejectsBadPrompts)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 10);
    PipelinedEngine eng(w, {});
    EXPECT_THROW(eng.generate({}, 4), FatalError);
    EXPECT_THROW(eng.generate({{1, 2}}, 0), FatalError);
    EXPECT_THROW(eng.generate({{}}, 2), FatalError);
    EXPECT_THROW(eng.generate({{99999}}, 2), FatalError);
}

} // namespace
} // namespace moelight
