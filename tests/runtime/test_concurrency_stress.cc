/**
 * Concurrency stress suite — the workload the TSan CI leg exists for.
 *
 * The Engine front-end contract (docs/concurrency.md) says submit(),
 * cancel(), pendingRequests() and activeRequests() are callable from
 * any thread concurrently with one driver's step(). These tests
 * hammer exactly that seam on both engines: several producer threads
 * submitting, a canceller thread firing cancel() at random in-flight
 * ids, and the main thread driving step() — every submitted request
 * must retire with exactly one terminal output and the engine must
 * end empty. A KV-starved variant forces the preemption/requeue path
 * (an active request crossing back to the queue) under the same
 * cancel storm.
 *
 * The executor test stresses the alsoSignal publication path: many
 * threads submitting chains to the four shared queues, every task
 * alsoSignal-ing both its own event and one shared event (signal is
 * idempotent and must tolerate concurrent signalers). All seeds are
 * fixed — failures reproduce.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "common/rng.hh"
#include "runtime/engine.hh"
#include "runtime/reference_engine.hh"
#include "runtime/serving.hh"
#include "runtime/stream_executor.hh"

namespace moelight {
namespace {

std::vector<int>
makePrompt(const ModelConfig &cfg, std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<int> p;
    for (std::size_t t = 0; t < len; ++t)
        p.push_back(static_cast<int>(rng.uniformInt(
            0, static_cast<std::int64_t>(cfg.vocab) - 1)));
    return p;
}

/**
 * Producers submit, a canceller storms cancel(), the calling thread
 * drives step() until every id has retired. Asserts exactly one
 * terminal output per submitted request and an empty engine at the
 * end. Cancelled / completed is a race by design — both are legal
 * outcomes per id; losing an id or retiring it twice is the bug.
 */
void
hammerFrontEnd(Engine &eng, const ModelConfig &cfg, int producers,
               int perProducer)
{
    const std::int64_t total =
        static_cast<std::int64_t>(producers) * perProducer;
    std::atomic<bool> stormCancels{true};
    std::vector<std::thread> threads;

    for (int p = 0; p < producers; ++p)
        threads.emplace_back([&eng, &cfg, p, perProducer] {
            Rng rng(1000 + static_cast<std::uint64_t>(p));
            for (int i = 0; i < perProducer; ++i) {
                ServeRequest r;
                r.id = static_cast<std::int64_t>(p) * perProducer + i;
                r.prompt = makePrompt(cfg, 2 + i % 3,
                                      rng.uniformInt(1, 1 << 20));
                r.maxNewTokens = 1 + i % 3;
                eng.submit(std::move(r));
                if (i % 4 == 0)
                    std::this_thread::yield();
            }
        });

    threads.emplace_back([&eng, &stormCancels, total] {
        Rng rng(77);
        while (stormCancels.load(std::memory_order_relaxed)) {
            eng.cancel(rng.uniformInt(0, total - 1));
            std::this_thread::yield();
        }
    });

    std::map<std::int64_t, int> retired;
    std::int64_t done = 0;
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(2);
    while (done < total) {
        std::vector<RequestOutput> outs = eng.step();
        for (const RequestOutput &o : outs) {
            ++retired[o.id];
            ++done;
        }
        if (outs.empty()) {
            ASSERT_LT(std::chrono::steady_clock::now(), deadline)
                << "engine stalled with " << (total - done)
                << " of " << total << " requests unretired";
            std::this_thread::yield();
        }
    }
    stormCancels.store(false, std::memory_order_relaxed);
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(retired.size(), static_cast<std::size_t>(total));
    for (const auto &[id, count] : retired)
        EXPECT_EQ(count, 1) << "request " << id
                            << " retired more than once";
    EXPECT_EQ(eng.pendingRequests(), 0u);
    EXPECT_EQ(eng.activeRequests(), 0u);
}

TEST(ConcurrencyStress, PipelinedSubmitStepCancel)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 42);
    EngineConfig ec;
    ec.microBatch = 2;
    ec.kvPageTokens = 4;
    ec.maxConcurrency = 4;
    PipelinedEngine eng(w, ec);
    hammerFrontEnd(eng, w.cfg, /*producers=*/3, /*perProducer=*/12);
    EXPECT_EQ(eng.kvUsedPages(), 0u);
}

TEST(ConcurrencyStress, PipelinedUnderKvPressureWithPreemption)
{
    // A KV pool this small forces admission to preempt the youngest
    // active request (recompute-on-resume) while the canceller races
    // it — the active→queued hand-off must stay atomic with respect
    // to cancel()'s id probe.
    ModelWeights w = ModelWeights::random(tinyMixtral(), 43);
    EngineConfig ec;
    ec.microBatch = 2;
    ec.kvPageTokens = 4;
    ec.kvCapacityTokens = 96;
    ec.maxConcurrency = 4;
    ec.headAgeLimit = 1;
    PipelinedEngine eng(w, ec);
    hammerFrontEnd(eng, w.cfg, /*producers=*/2, /*perProducer=*/10);
    EXPECT_EQ(eng.kvUsedPages(), 0u);
}

TEST(ConcurrencyStress, ReferenceSubmitStepCancel)
{
    // The oracle engine carries the same front-end contract, so the
    // same storm must hold there (and TSan checks both lock splits).
    ModelWeights w = ModelWeights::random(tinyMixtral(), 44);
    ReferenceEngine eng(w);
    hammerFrontEnd(eng, w.cfg, /*producers=*/3, /*perProducer=*/8);
}

TEST(ConcurrencyStress, ExecutorAlsoSignalContention)
{
    constexpr int kThreads = 4;
    constexpr int kTasksPerThread = 128;
    constexpr ResourceKind kQueues[] = {
        ResourceKind::Gpu, ResourceKind::Cpu, ResourceKind::HtoD,
        ResourceKind::DtoH};

    StreamExecutor exec;
    std::atomic<int> ran{0};
    // One caller-owned event per task, published via alsoSignal, plus
    // one event every task signals — concurrent signal() calls on a
    // shared TaskEvent are the contract under test.
    std::vector<EventPtr> published;
    for (int i = 0; i < kThreads * kTasksPerThread; ++i)
        published.push_back(std::make_shared<TaskEvent>());
    EventPtr anyRan = std::make_shared<TaskEvent>();

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            Rng rng(900 + static_cast<std::uint64_t>(t));
            EventPtr prev;  // chain within the thread: always safe
            for (int i = 0; i < kTasksPerThread; ++i) {
                ResourceKind q = kQueues[rng.uniformInt(0, 3)];
                std::vector<EventPtr> deps;
                if (prev)
                    deps.push_back(prev);
                prev = exec.submit(
                    q, std::move(deps),
                    [&ran] { ran.fetch_add(1); },
                    {published[static_cast<std::size_t>(t) *
                                   kTasksPerThread +
                               i],
                     anyRan});
            }
        });
    for (std::thread &t : threads)
        t.join();

    anyRan->wait();
    for (const EventPtr &e : published)
        e->wait();
    exec.sync();
    EXPECT_EQ(ran.load(), kThreads * kTasksPerThread);
    for (const EventPtr &e : published)
        EXPECT_TRUE(e->ready());
}

} // namespace
} // namespace moelight
