#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "runtime/kv_cache.hh"
#include "runtime/status.hh"

namespace moelight {
namespace {

ModelConfig
cfg()
{
    return tinyMixtral();  // nkv=2, headDim=8, l=4
}

TEST(KvCache, AppendGrowsContext)
{
    KvCacheManager kv(cfg(), 2, 4, 256);
    std::vector<float> k(16, 1.0f), v(16, 2.0f);
    EXPECT_EQ(kv.contextLen(SeqId(0), LayerIdx(0)), 0u);
    kv.append(SeqId(0), LayerIdx(0), k.data(), v.data());
    kv.append(SeqId(0), LayerIdx(0), k.data(), v.data());
    EXPECT_EQ(kv.contextLen(SeqId(0), LayerIdx(0)), 2u);
    EXPECT_EQ(kv.contextLen(SeqId(0), LayerIdx(1)), 0u);
    EXPECT_EQ(kv.contextLen(SeqId(1), LayerIdx(0)), 0u);
}

TEST(KvCache, ViewReturnsAppendedValues)
{
    KvCacheManager kv(cfg(), 1, 2, 64);
    std::vector<float> k(16), v(16);
    Rng rng(3);
    std::vector<std::vector<float>> ks, vs;
    for (int t = 0; t < 5; ++t) {  // crosses page boundary (2/page)
        for (std::size_t i = 0; i < 16; ++i) {
            k[i] = static_cast<float>(rng.uniform(-1, 1));
            v[i] = static_cast<float>(rng.uniform(-1, 1));
        }
        ks.push_back(k);
        vs.push_back(v);
        kv.append(SeqId(0), LayerIdx(2), k.data(), v.data());
    }
    KvViewStorage storage;
    kv.makeView(SeqId(0), LayerIdx(2), storage);
    EXPECT_EQ(storage.view.contextLen, 5u);
    for (std::size_t t = 0; t < 5; ++t)
        for (std::size_t h = 0; h < 2; ++h)
            for (std::size_t d = 0; d < 8; ++d) {
                EXPECT_EQ(storage.view.kAt(t, h)[d],
                          ks[t][h * 8 + d]);
                EXPECT_EQ(storage.view.vAt(t, h)[d],
                          vs[t][h * 8 + d]);
            }
}

TEST(KvCache, PagesAllocatedLazily)
{
    KvCacheManager kv(cfg(), 4, 4, 256);
    EXPECT_EQ(kv.usedPages(), 0u);
    std::vector<float> k(16), v(16);
    kv.append(SeqId(0), LayerIdx(0), k.data(), v.data());
    EXPECT_EQ(kv.usedPages(), 2u);  // one K page + one V page
    // 3 more tokens fit the same page.
    for (int t = 0; t < 3; ++t)
        kv.append(SeqId(0), LayerIdx(0), k.data(), v.data());
    EXPECT_EQ(kv.usedPages(), 2u);
    kv.append(SeqId(0), LayerIdx(0), k.data(), v.data());
    EXPECT_EQ(kv.usedPages(), 4u);
}

TEST(KvCache, FreeSequenceReturnsPages)
{
    KvCacheManager kv(cfg(), 2, 2, 64);
    std::vector<float> k(16), v(16);
    for (std::size_t layer = 0; layer < 4; ++layer)
        for (int t = 0; t < 3; ++t)
            kv.append(SeqId(1), LayerIdx(layer), k.data(), v.data());
    EXPECT_GT(kv.usedPages(), 0u);
    kv.freeSequence(SeqId(1));
    EXPECT_EQ(kv.usedPages(), 0u);
    EXPECT_EQ(kv.contextLen(SeqId(1), LayerIdx(0)), 0u);
}

TEST(KvCache, CapacityExhaustionIsFatal)
{
    KvCacheManager kv(cfg(), 1, 2, 4);  // tiny pool
    std::vector<float> k(16), v(16);
    EXPECT_THROW(
        {
            for (int t = 0; t < 64; ++t)
                kv.append(SeqId(0), LayerIdx(0), k.data(), v.data());
        },
        FatalError);
}

TEST(KvCache, OutOfRangePanics)
{
    KvCacheManager kv(cfg(), 1, 2, 16);
    std::vector<float> k(16), v(16);
    EXPECT_THROW(kv.append(SeqId(1), LayerIdx(0), k.data(), v.data()), PanicError);
    EXPECT_THROW(kv.append(SeqId(0), LayerIdx(9), k.data(), v.data()), PanicError);
}

TEST(KvCache, ExhaustionIsTypedAndLeavesStateConsistent)
{
    KvCacheManager kv(cfg(), 1, 2, 4);  // tiny pool
    std::vector<float> k(16), v(16);
    try {
        for (int t = 0; t < 64; ++t)
            kv.append(SeqId(0), LayerIdx(0), k.data(), v.data());
        FAIL() << "pool should have run dry";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), ErrorCode::KvExhausted);
        EXPECT_EQ(e.site(), "kv.alloc");
    }
    // All-or-nothing: the failed append left no half-written token,
    // so the sequence still frees cleanly.
    std::size_t len = kv.contextLen(SeqId(0), LayerIdx(0));
    kv.freeSequence(SeqId(0));
    EXPECT_EQ(kv.usedPages(), 0u);
    EXPECT_GT(len, 0u);
}

TEST(KvCache, FreeSequenceErrorsAreTyped)
{
    KvCacheManager kv(cfg(), 2, 2, 64);
    std::vector<float> k(16), v(16);
    kv.append(SeqId(0), LayerIdx(0), k.data(), v.data());

    // Unknown sequence index.
    try {
        kv.freeSequence(SeqId(7));
        FAIL() << "out-of-range seq should throw";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), ErrorCode::KvInvalidSequence);
        EXPECT_EQ(e.site(), "kv.free");
    }

    // Double free.
    kv.freeSequence(SeqId(0));
    EXPECT_EQ(kv.usedPages(), 0u);
    try {
        kv.freeSequence(SeqId(0));
        FAIL() << "second free should throw";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), ErrorCode::KvDoubleFree);
        EXPECT_EQ(e.site(), "kv.free");
    }
    // Freeing a never-used sequence is a double free too.
    EXPECT_THROW(kv.freeSequence(SeqId(1)), EngineError);
}

} // namespace
} // namespace moelight
