/**
 * PageTable unit tests: the shared refcounted ownership layer under
 * both KV caches. Exercised with synthetic storage hooks so the
 * sharing semantics — refcount bumps on attach, copy-on-write of a
 * visible open tail, pinned pages surviving their sequences, typed
 * double-release errors, capacity pressure driving the reclaim hook
 * — are pinned down independently of any real cache storage.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "runtime/fault_injection.hh"
#include "runtime/page_table.hh"
#include "runtime/status.hh"

namespace moelight {
namespace {

/** Synthetic block store: tracks alloc/copy/free calls. */
struct FakeStore
{
    std::vector<bool> live;
    std::vector<BlockId> freeIds;
    int allocs = 0, copies = 0, frees = 0;
    BlockId lastCopyDst{0}, lastCopySrc{0};
    std::size_t lastCopyTokens = 0;

    PageTableHooks
    hooks()
    {
        return PageTableHooks{
            [this] {
                ++allocs;
                if (!freeIds.empty()) {
                    BlockId id = freeIds.back();
                    freeIds.pop_back();
                    live[id.value()] = true;
                    return id;
                }
                live.push_back(true);
                return BlockId(live.size() - 1);
            },
            [this](BlockId dst, BlockId src, std::size_t tokens) {
                ++copies;
                lastCopyDst = dst;
                lastCopySrc = src;
                lastCopyTokens = tokens;
            },
            [this](BlockId id) {
                ++frees;
                live[id.value()] = false;
                freeIds.push_back(id);
            },
        };
    }
};

TEST(PageTable, AppendOpensPagesAndTracksCounters)
{
    FakeStore store;
    PageTable t(2, 1, 4, PageCapacityModel::Blocks, 16, store.hooks());
    for (int i = 0; i < 6; ++i) {
        AppendSlot s = t.appendToken(SeqId(0), LayerIdx(0));
        EXPECT_EQ(s.fresh, i % 4 == 0) << i;
        EXPECT_EQ(s.offset, static_cast<std::size_t>(i % 4)) << i;
        EXPECT_FALSE(s.copied);
    }
    EXPECT_EQ(t.streamLen(SeqId(0), LayerIdx(0)), 6u);
    EXPECT_EQ(t.residentBlocks(), 2u);
    EXPECT_EQ(t.referencedBlocks(), 2u);
    EXPECT_EQ(t.residentTokens(), 6u);
    EXPECT_EQ(store.allocs, 2);

    t.freeSequence(SeqId(0));
    EXPECT_EQ(t.residentBlocks(), 0u);
    EXPECT_EQ(t.residentTokens(), 0u);
    EXPECT_EQ(store.frees, 2);
    EXPECT_FALSE(t.sequenceLive(SeqId(0)));
}

TEST(PageTable, AttachSharedBumpsRefcountsAndFreesOnlyOnce)
{
    FakeStore store;
    PageTable t(3, 1, 4, PageCapacityModel::Blocks, 16, store.hooks());
    for (int i = 0; i < 8; ++i)
        t.appendToken(SeqId(0), LayerIdx(0));
    std::vector<BlockId> blocks(t.streamBlocks(SeqId(0), LayerIdx(0)).begin(),
                                t.streamBlocks(SeqId(0), LayerIdx(0)).end());
    ASSERT_EQ(blocks.size(), 2u);

    t.attachShared(SeqId(1), LayerIdx(0), blocks);
    t.attachShared(SeqId(2), LayerIdx(0), blocks);
    EXPECT_EQ(t.streamLen(SeqId(1), LayerIdx(0)), 8u);
    EXPECT_EQ(t.blockStreamRefs(blocks[0]), 3u);
    // Shared blocks count once in every physical counter.
    EXPECT_EQ(t.residentBlocks(), 2u);
    EXPECT_EQ(t.residentTokens(), 8u);

    t.freeSequence(SeqId(0));
    t.freeSequence(SeqId(1));
    EXPECT_EQ(store.frees, 0) << "a still-shared block must survive";
    EXPECT_EQ(t.blockStreamRefs(blocks[0]), 1u);
    t.freeSequence(SeqId(2));
    EXPECT_EQ(store.frees, 2);
    EXPECT_EQ(t.residentBlocks(), 0u);
}

TEST(PageTable, AttachSharedRejectsPartialAndNonEmptyStreams)
{
    FakeStore store;
    PageTable t(2, 1, 4, PageCapacityModel::Blocks, 16, store.hooks());
    for (int i = 0; i < 6; ++i)  // 1 closed page + 2-token open tail
        t.appendToken(SeqId(0), LayerIdx(0));
    std::vector<BlockId> blocks(t.streamBlocks(SeqId(0), LayerIdx(0)).begin(),
                                t.streamBlocks(SeqId(0), LayerIdx(0)).end());
    // The open tail is not shareable.
    EXPECT_THROW(t.attachShared(SeqId(1), LayerIdx(0), blocks), PanicError);
    // A closed page is — but only into an empty stream.
    std::vector<BlockId> closed{blocks[0]};
    t.attachShared(SeqId(1), LayerIdx(0), closed);
    EXPECT_THROW(t.attachShared(SeqId(1), LayerIdx(0), closed), PanicError);
}

TEST(PageTable, CopyOnWriteFiresOnSharedOpenTail)
{
    FakeStore store;
    PageTable t(2, 1, 4, PageCapacityModel::Blocks, 16, store.hooks());
    // Build one closed page for seq 0, then pin its open successor
    // via a pin (the "another holder can see it" case without a
    // second stream, since streams can only share closed pages).
    for (int i = 0; i < 6; ++i)
        t.appendToken(SeqId(0), LayerIdx(0));
    BlockId open = t.streamBlocks(SeqId(0), LayerIdx(0))[1];
    t.pin(open);
    AppendSlot s = t.appendToken(SeqId(0), LayerIdx(0));
    EXPECT_TRUE(s.copied);
    EXPECT_TRUE(s.fresh);
    EXPECT_NE(s.block, open);
    EXPECT_EQ(store.lastCopySrc, open);
    EXPECT_EQ(store.lastCopyDst, s.block);
    EXPECT_EQ(store.lastCopyTokens, 2u) << "copies the open prefix";
    // The pinned original keeps its 2 tokens; the copy took them plus
    // the appended one.
    EXPECT_EQ(t.blockTokens(open), 2u);
    EXPECT_EQ(t.blockTokens(s.block), 3u);
    EXPECT_EQ(t.streamLen(SeqId(0), LayerIdx(0)), 7u);
    EXPECT_EQ(t.blockStreamRefs(open), 0u);
    EXPECT_EQ(t.blockPins(open), 1u);
}

TEST(PageTable, PinSurvivesSequenceAndUnpinIsTypedOnDoubleRelease)
{
    FakeStore store;
    PageTable t(2, 1, 4, PageCapacityModel::Blocks, 16, store.hooks());
    for (int i = 0; i < 4; ++i)
        t.appendToken(SeqId(0), LayerIdx(0));
    BlockId b = t.streamBlocks(SeqId(0), LayerIdx(0))[0];
    t.pin(b);
    EXPECT_EQ(t.pinnedTokens(), 4u);

    t.freeSequence(SeqId(0));
    EXPECT_EQ(store.frees, 0) << "pinned page outlives its sequence";
    EXPECT_EQ(t.residentBlocks(), 1u);
    EXPECT_EQ(t.referencedBlocks(), 0u)
        << "pinned-but-unreferenced is cached capacity, not usage";

    t.unpin(b);
    EXPECT_EQ(store.frees, 1);
    EXPECT_EQ(t.pinnedTokens(), 0u);
    try {
        t.unpin(b);
        FAIL() << "double unpin must throw";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), ErrorCode::KvDoubleFree);
        EXPECT_EQ(e.site(), "kv.free");
    }
}

TEST(PageTable, FreeSequenceErrorsAreTyped)
{
    FakeStore store;
    PageTable t(2, 1, 4, PageCapacityModel::Blocks, 16, store.hooks());
    try {
        t.freeSequence(SeqId(9));
        FAIL() << "out-of-range freeSequence must throw";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), ErrorCode::KvInvalidSequence);
        EXPECT_EQ(e.site(), "kv.free");
    }
    t.appendToken(SeqId(0), LayerIdx(0));
    t.freeSequence(SeqId(0));
    try {
        t.freeSequence(SeqId(0));
        FAIL() << "double freeSequence must throw";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), ErrorCode::KvDoubleFree);
        EXPECT_EQ(e.site(), "kv.free");
    }
}

TEST(PageTable, ReleaseWhileSharedKeepsOtherStreamIntact)
{
    FakeStore store;
    PageTable t(2, 1, 4, PageCapacityModel::Blocks, 16, store.hooks());
    for (int i = 0; i < 4; ++i)
        t.appendToken(SeqId(0), LayerIdx(0));
    std::vector<BlockId> blocks(t.streamBlocks(SeqId(0), LayerIdx(0)).begin(),
                                t.streamBlocks(SeqId(0), LayerIdx(0)).end());
    t.attachShared(SeqId(1), LayerIdx(0), blocks);
    t.freeSequence(SeqId(0));
    // Releasing seq 0 again is a typed double free; seq 1's view of
    // the shared block is untouched by either call.
    EXPECT_THROW(t.freeSequence(SeqId(0)), EngineError);
    EXPECT_EQ(t.streamLen(SeqId(1), LayerIdx(0)), 4u);
    EXPECT_EQ(t.blockTokens(blocks[0]), 4u);
    t.freeSequence(SeqId(1));
    EXPECT_EQ(t.residentBlocks(), 0u);
}

TEST(PageTable, CapacityPressureDrivesReclaimThenThrowsTyped)
{
    FakeStore store;
    PageTable t(2, 1, 4, PageCapacityModel::Blocks, 2, store.hooks());
    for (int i = 0; i < 8; ++i)
        t.appendToken(SeqId(0), LayerIdx(0));  // exactly the 2-block budget
    bool reclaimed = false;
    std::vector<BlockId> cached;
    t.setReclaimHook([&] {
        if (cached.empty())
            return false;
        t.unpin(cached.back());
        cached.pop_back();
        reclaimed = true;
        return true;
    });
    try {
        t.appendToken(SeqId(0), LayerIdx(0));
        FAIL() << "over-budget append must throw";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), ErrorCode::KvExhausted);
        EXPECT_EQ(e.site(), "kv.alloc");
    }
    EXPECT_EQ(t.streamLen(SeqId(0), LayerIdx(0)), 8u) << "failed append mutates nothing";

    // Park a cached (pinned, unreferenced) page the hook can evict:
    // now the same append succeeds by reclaiming it.
    BlockId b = t.streamBlocks(SeqId(0), LayerIdx(0))[0];
    t.pin(b);
    cached.push_back(b);
    t.freeSequence(SeqId(0));
    EXPECT_EQ(t.residentBlocks(), 1u);  // the cached page
    for (int i = 0; i < 8; ++i)
        t.appendToken(SeqId(1), LayerIdx(0));
    EXPECT_TRUE(reclaimed);
    EXPECT_EQ(t.streamLen(SeqId(1), LayerIdx(0)), 8u);
    EXPECT_EQ(t.residentBlocks(), 2u);
}

TEST(PageTable, TokenModelMetersExactTokens)
{
    FakeStore store;
    PageTable t(1, 1, 4, PageCapacityModel::Tokens, 5, store.hooks());
    for (int i = 0; i < 5; ++i)
        t.appendToken(SeqId(0), LayerIdx(0));
    EXPECT_THROW(t.appendToken(SeqId(0), LayerIdx(0)), EngineError);
    EXPECT_EQ(t.residentTokens(), 5u);
    t.freeSequence(SeqId(0));
    EXPECT_EQ(t.residentTokens(), 0u);
}

TEST(PageTable, AllocFaultInjectionFiresPerBlockInBlocksModel)
{
    FakeStore store;
    PageTable t(1, 1, 4, PageCapacityModel::Blocks, 8, store.hooks());
    ScopedFault fault("kv.alloc", 2);  // second check fires
    t.appendToken(SeqId(0), LayerIdx(0));  // opens page 1: check #1 passes
    t.appendToken(SeqId(0), LayerIdx(0));  // within page: no check in Blocks model
    t.appendToken(SeqId(0), LayerIdx(0));
    t.appendToken(SeqId(0), LayerIdx(0));
    try {
        t.appendToken(SeqId(0), LayerIdx(0));  // opens page 2: check #2 fires
        FAIL() << "armed kv.alloc fault must throw";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), ErrorCode::FaultInjected);
        EXPECT_EQ(e.site(), "kv.alloc");
    }
    EXPECT_EQ(fault.hits(), 1u);
    EXPECT_EQ(t.streamLen(SeqId(0), LayerIdx(0)), 4u);
    t.appendToken(SeqId(0), LayerIdx(0));  // one-shot: recovers after firing
    EXPECT_EQ(t.streamLen(SeqId(0), LayerIdx(0)), 5u);
}

} // namespace
} // namespace moelight
