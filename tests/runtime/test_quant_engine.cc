/**
 * Quantized-KV engine tests: with EngineConfig::kvQuant set, the
 * pipelined engine stores KV through QuantizedKvCache and attends via
 * the fused quant kernel. Tokens must exactly match a ReferenceEngine
 * running the same quantization with the same page geometry (the
 * quant analogue of the float EngineEquivalence suite), and the run
 * must allocate no float KV pool.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "runtime/engine.hh"
#include "runtime/reference_engine.hh"

namespace moelight {
namespace {

std::vector<std::vector<int>>
makePrompts(const ModelConfig &cfg, std::size_t n, std::size_t min_len,
            std::size_t max_len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<int>> prompts(n);
    for (auto &p : prompts) {
        std::size_t len = static_cast<std::size_t>(rng.uniformInt(
            static_cast<std::int64_t>(min_len),
            static_cast<std::int64_t>(max_len)));
        for (std::size_t t = 0; t < len; ++t)
            p.push_back(static_cast<int>(rng.uniformInt(
                0, static_cast<std::int64_t>(cfg.vocab) - 1)));
    }
    return prompts;
}

class QuantEngineEquivalence
    : public ::testing::TestWithParam<std::tuple<QuantKind, int>>
{
};

TEST_P(QuantEngineEquivalence, PipelinedMatchesQuantReference)
{
    auto [kind, attn_threads] = GetParam();
    ModelWeights w = ModelWeights::random(tinyMixtral(), 42);
    std::size_t page_tokens = 4;

    ReferenceEngine ref(w, kind, page_tokens);
    auto prompts = makePrompts(w.cfg, 4, 2, 10, 7);
    auto expect = ref.generate(prompts, 6);

    EngineConfig ec;
    ec.microBatch = 2;
    ec.kvPageTokens = page_tokens;
    ec.kvQuant = kind;
    ec.cpuAttnThreads = static_cast<std::size_t>(attn_threads);
    PipelinedEngine eng(w, ec);
    auto got = eng.generate(prompts, 6);

    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t s = 0; s < got.size(); ++s)
        EXPECT_EQ(got[s].tokens, expect[s].tokens) << "seq " << s;
    // Quantized pages were held during the run and all released when
    // the requests retired.
    EXPECT_GT(eng.kvPeakPages(), 0u);
    EXPECT_EQ(eng.kvUsedPages(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndPools, QuantEngineEquivalence,
    ::testing::Combine(::testing::Values(QuantKind::Int8,
                                         QuantKind::Int4),
                       ::testing::Values(0, 3)));

TEST(QuantEngine, QuantReferenceStaysCloseToFloatReference)
{
    // Int8 KV perturbs logits only slightly; over a short horizon the
    // greedy tokens of the quantized reference should rarely diverge
    // from the float reference. This guards against gross numeric
    // bugs without over-constraining quantization error.
    ModelWeights w = ModelWeights::random(tinyMixtral(), 9);
    ReferenceEngine fp(w);
    ReferenceEngine q8(w, QuantKind::Int8, 4);
    auto prompts = makePrompts(w.cfg, 3, 3, 8, 5);
    auto a = fp.generate(prompts, 4);
    auto b = q8.generate(prompts, 4);
    std::size_t same = 0, total = 0;
    for (std::size_t s = 0; s < a.size(); ++s)
        for (std::size_t t = 0; t < a[s].tokens.size(); ++t) {
            same += a[s].tokens[t] == b[s].tokens[t];
            ++total;
        }
    EXPECT_GE(same * 2, total)
        << "int8 KV diverged from float on most tokens";
}

} // namespace
} // namespace moelight
