#include <gtest/gtest.h>
#include "common/logging.hh"

#include <numeric>
#include <vector>

#include "runtime/transfer_engine.hh"

namespace moelight {
namespace {

TEST(TransferEngine, StagePreservesData)
{
    PageArena pinned("pinned", 8, 2);
    TransferEngine te(pinned);
    // 20 floats forces multiple pinned-page chunks (8 per hop).
    std::vector<float> src(20), dst(20, 0.0f);
    std::iota(src.begin(), src.end(), 1.0f);
    te.stageToGpu(src.data(), dst.data(), src.size());
    EXPECT_EQ(src, dst);
}

TEST(TransferEngine, StageAccountsBothHops)
{
    PageArena pinned("pinned", 8, 2);
    TransferEngine te(pinned);
    std::vector<float> src(10), dst(10);
    te.stageToGpu(src.data(), dst.data(), 10);
    TransferStats s = te.stats();
    EXPECT_EQ(s.hostToPinned, 40u);
    EXPECT_EQ(s.pinnedToGpu, 40u);
    EXPECT_EQ(s.gpuToHost, 0u);
}

TEST(TransferEngine, StageReleasesPinnedPage)
{
    PageArena pinned("pinned", 8, 1);
    TransferEngine te(pinned);
    std::vector<float> src(16), dst(16);
    te.stageToGpu(src.data(), dst.data(), 16);
    // With one pinned page, a second transfer only works if the
    // first released its staging page.
    EXPECT_NO_THROW(te.stageToGpu(src.data(), dst.data(), 16));
    EXPECT_EQ(pinned.freePages(), 1u);
}

TEST(TransferEngine, DirectCopiesAndCounters)
{
    PageArena pinned("pinned", 8, 2);
    TransferEngine te(pinned);
    std::vector<float> a{1, 2, 3}, b(3), c(3);
    te.copyToHost(a.data(), b.data(), 3);
    te.copyToGpu(b.data(), c.data(), 3);
    EXPECT_EQ(c, a);
    TransferStats s = te.stats();
    EXPECT_EQ(s.gpuToHost, 12u);
    EXPECT_EQ(s.hostToGpu, 12u);
    te.resetStats();
    s = te.stats();
    EXPECT_EQ(s.gpuToHost, 0u);
}

TEST(TransferEngine, RejectsNegativeThrottle)
{
    PageArena pinned("pinned", 8, 2);
    EXPECT_THROW(TransferEngine(pinned, -1.0), FatalError);
}

} // namespace
} // namespace moelight
