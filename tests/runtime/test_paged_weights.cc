#include <gtest/gtest.h>

#include <cstring>

#include "common/logging.hh"
#include "runtime/paged_weights.hh"

namespace moelight {
namespace {

struct Fixture
{
    ModelWeights weights = ModelWeights::random(tinyMixtral(), 77);
    PageArena pinned{"pinned", 64 * 128, 4};
    TransferEngine te{pinned};
    PagedWeightStore store{weights, pinned, 2};
};

TEST(PagedWeights, ManifestCoversAllTensors)
{
    Fixture f;
    auto manifest = f.store.layerManifest(LayerIdx(0));
    // 7 shared tensors + 3 per expert (ne=4).
    EXPECT_EQ(manifest.size(), 7u + 3u * 4u);
    EXPECT_EQ(f.store.pagesPerLayer(), manifest.size());
}

TEST(PagedWeights, LoadedTensorMatchesCpuSource)
{
    Fixture f;
    f.store.loadLayer(LayerIdx(1), f.te);
    const float *wq = f.store.tensor(LayerIdx(1), "wq");
    const Tensor &src = f.weights.layers[1].wq;
    EXPECT_EQ(std::memcmp(wq, src.data(), src.numel() * sizeof(float)),
              0);
}

TEST(PagedWeights, UseBeforeTransferPanics)
{
    Fixture f;
    EXPECT_THROW(f.store.tensor(LayerIdx(0), "wq"), PanicError);
    f.store.loadLayer(LayerIdx(0), f.te);
    EXPECT_NO_THROW(f.store.tensor(LayerIdx(0), "wq"));
    // Layer 2 shares layer 0's slot; after loading layer 2, layer 0
    // accesses must fail again (stale slot detection).
    f.store.loadLayer(LayerIdx(2), f.te);
    EXPECT_THROW(f.store.tensor(LayerIdx(0), "wq"), PanicError);
    EXPECT_NO_THROW(f.store.tensor(LayerIdx(2), "wq"));
}

TEST(PagedWeights, DoubleBufferSlotsAreIndependent)
{
    Fixture f;
    f.store.loadLayer(LayerIdx(0), f.te);
    f.store.loadLayer(LayerIdx(1), f.te);
    // Both resident at once (adjacent layers use different slots).
    EXPECT_NO_THROW(f.store.tensor(LayerIdx(0), "e0.w1"));
    EXPECT_NO_THROW(f.store.tensor(LayerIdx(1), "e0.w1"));
    EXPECT_NE(f.store.pageOf(LayerIdx(0), "e0.w1"), f.store.pageOf(LayerIdx(1), "e0.w1"));
}

TEST(PagedWeights, ExpertResolverReadsPageTable)
{
    Fixture f;
    f.store.loadLayer(LayerIdx(0), f.te);
    ExpertResolver resolve = f.store.resolver(LayerIdx(0));
    for (int e = 0; e < 4; ++e) {
        ExpertWeights w = resolve(e);
        const auto &lw = f.weights.layers[0];
        auto idx = static_cast<std::size_t>(e);
        EXPECT_EQ(std::memcmp(w.w1, lw.w1[idx].data(),
                              lw.w1[idx].numel() * sizeof(float)),
                  0);
        EXPECT_EQ(std::memcmp(w.w2, lw.w2[idx].data(),
                              lw.w2[idx].numel() * sizeof(float)),
                  0);
    }
}

TEST(PagedWeights, PartialPageLoadOnlyMarksThatPage)
{
    Fixture f;
    f.store.loadPage(LayerIdx(0), 0, f.te);  // attn_norm only
    EXPECT_NO_THROW(f.store.tensor(LayerIdx(0), "attn_norm"));
    EXPECT_THROW(f.store.tensor(LayerIdx(0), "wq"), PanicError);
}

TEST(PagedWeights, GpuArenaSizedForTwoSlots)
{
    Fixture f;
    EXPECT_EQ(f.store.gpuArena().numPages(),
              2 * f.store.pagesPerLayer());
    EXPECT_EQ(f.store.gpuArena().freePages(), 0u);
}

TEST(PagedWeights, UnknownTensorPanics)
{
    Fixture f;
    f.store.loadLayer(LayerIdx(0), f.te);
    EXPECT_THROW(f.store.tensor(LayerIdx(0), "nope"), PanicError);
}

TEST(PagedWeights, RequiresTwoSlots)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 1);
    PageArena pinned("p", 64, 2);
    EXPECT_THROW(PagedWeightStore(w, pinned, 1), FatalError);
}

} // namespace
} // namespace moelight
