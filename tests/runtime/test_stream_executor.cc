#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/logging.hh"
#include "runtime/stream_executor.hh"

namespace moelight {
namespace {

TEST(StreamExecutor, RunsSubmittedTask)
{
    StreamExecutor ex;
    std::atomic<int> counter{0};
    auto ev = ex.submit(ResourceKind::Gpu, {}, [&] { ++counter; });
    ev->wait();
    EXPECT_EQ(counter.load(), 1);
}

TEST(StreamExecutor, FifoWithinQueue)
{
    StreamExecutor ex;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        ex.submit(ResourceKind::Cpu, {}, [&order, i] {
            order.push_back(i);
        });
    ex.sync();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(StreamExecutor, CrossQueueDependency)
{
    StreamExecutor ex;
    std::atomic<int> stage{0};
    auto a = ex.submit(ResourceKind::HtoD, {}, [&] {
        int expected = 0;
        stage.compare_exchange_strong(expected, 1);
    });
    auto b = ex.submit(ResourceKind::Gpu, {a}, [&] {
        int expected = 1;
        EXPECT_TRUE(stage.compare_exchange_strong(expected, 2));
    });
    b->wait();
    EXPECT_EQ(stage.load(), 2);
}

TEST(StreamExecutor, DiamondAcrossFourQueues)
{
    StreamExecutor ex;
    std::atomic<int> sum{0};
    auto a = ex.submit(ResourceKind::Gpu, {}, [&] { sum += 1; });
    auto b = ex.submit(ResourceKind::Cpu, {a}, [&] { sum += 10; });
    auto c = ex.submit(ResourceKind::DtoH, {a}, [&] { sum += 100; });
    auto d =
        ex.submit(ResourceKind::HtoD, {b, c}, [&] { sum += 1000; });
    d->wait();
    EXPECT_EQ(sum.load(), 1111);
}

TEST(StreamExecutor, SyncRethrowsTaskError)
{
    StreamExecutor ex;
    ex.submit(ResourceKind::Gpu, {}, [] {
        fatal("boom");
    });
    EXPECT_THROW(ex.sync(), FatalError);
    // Error cleared; executor still usable.
    std::atomic<bool> ran{false};
    ex.submit(ResourceKind::Gpu, {}, [&] { ran = true; });
    EXPECT_NO_THROW(ex.sync());
    EXPECT_TRUE(ran.load());
}

TEST(StreamExecutor, FailedTaskStillSignalsDependents)
{
    StreamExecutor ex;
    auto bad = ex.submit(ResourceKind::Cpu, {}, [] { fatal("x"); });
    std::atomic<bool> ran{false};
    auto next = ex.submit(ResourceKind::Gpu, {bad}, [&] { ran = true; });
    next->wait();  // must not deadlock
    EXPECT_TRUE(ran.load());
    EXPECT_THROW(ex.sync(), FatalError);
}

TEST(StreamExecutor, EventReadyNonBlocking)
{
    StreamExecutor ex;
    auto gate = std::make_shared<TaskEvent>();
    auto ev = ex.submit(ResourceKind::Gpu, {gate}, [] {});
    EXPECT_FALSE(ev->ready());
    gate->signal();
    ev->wait();
    EXPECT_TRUE(ev->ready());
}

TEST(StreamExecutor, ManyTasksDrainOnDestruction)
{
    std::atomic<int> n{0};
    {
        StreamExecutor ex;
        for (int i = 0; i < 200; ++i)
            ex.submit(static_cast<ResourceKind>(i % 4), {},
                      [&] { ++n; });
        ex.sync();
    }
    EXPECT_EQ(n.load(), 200);
}

} // namespace
} // namespace moelight
