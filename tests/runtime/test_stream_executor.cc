#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "runtime/fault_injection.hh"
#include "runtime/status.hh"
#include "runtime/stream_executor.hh"

namespace moelight {
namespace {

TEST(StreamExecutor, RunsSubmittedTask)
{
    StreamExecutor ex;
    std::atomic<int> counter{0};
    auto ev = ex.submit(ResourceKind::Gpu, {}, [&] { ++counter; });
    ev->wait();
    EXPECT_EQ(counter.load(), 1);
}

TEST(StreamExecutor, FifoWithinQueue)
{
    StreamExecutor ex;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        ex.submit(ResourceKind::Cpu, {}, [&order, i] {
            order.push_back(i);
        });
    ex.sync();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(StreamExecutor, CrossQueueDependency)
{
    StreamExecutor ex;
    std::atomic<int> stage{0};
    auto a = ex.submit(ResourceKind::HtoD, {}, [&] {
        int expected = 0;
        stage.compare_exchange_strong(expected, 1);
    });
    auto b = ex.submit(ResourceKind::Gpu, {a}, [&] {
        int expected = 1;
        EXPECT_TRUE(stage.compare_exchange_strong(expected, 2));
    });
    b->wait();
    EXPECT_EQ(stage.load(), 2);
}

TEST(StreamExecutor, DiamondAcrossFourQueues)
{
    StreamExecutor ex;
    std::atomic<int> sum{0};
    auto a = ex.submit(ResourceKind::Gpu, {}, [&] { sum += 1; });
    auto b = ex.submit(ResourceKind::Cpu, {a}, [&] { sum += 10; });
    auto c = ex.submit(ResourceKind::DtoH, {a}, [&] { sum += 100; });
    auto d =
        ex.submit(ResourceKind::HtoD, {b, c}, [&] { sum += 1000; });
    d->wait();
    EXPECT_EQ(sum.load(), 1111);
}

TEST(StreamExecutor, SyncRethrowsTaskError)
{
    StreamExecutor ex;
    ex.submit(ResourceKind::Gpu, {}, [] {
        fatal("boom");
    });
    EXPECT_THROW(ex.sync(), FatalError);
    // Error cleared; executor still usable.
    std::atomic<bool> ran{false};
    ex.submit(ResourceKind::Gpu, {}, [&] { ran = true; });
    EXPECT_NO_THROW(ex.sync());
    EXPECT_TRUE(ran.load());
}

TEST(StreamExecutor, FailedTaskStillSignalsDependents)
{
    StreamExecutor ex;
    auto bad = ex.submit(ResourceKind::Cpu, {}, [] { fatal("x"); });
    std::atomic<bool> ran{false};
    auto next = ex.submit(ResourceKind::Gpu, {bad}, [&] { ran = true; });
    next->wait();  // must not deadlock
    EXPECT_TRUE(ran.load());
    EXPECT_THROW(ex.sync(), FatalError);
}

TEST(StreamExecutor, EventReadyNonBlocking)
{
    StreamExecutor ex;
    auto gate = std::make_shared<TaskEvent>();
    auto ev = ex.submit(ResourceKind::Gpu, {gate}, [] {});
    EXPECT_FALSE(ev->ready());
    gate->signal();
    ev->wait();
    EXPECT_TRUE(ev->ready());
}

TEST(StreamExecutor, FirstOfSeveralErrorsWins)
{
    StreamExecutor ex;
    // Same queue, so the failure order is the FIFO order: sync()
    // must report the first task's error, not the latest.
    auto first = ex.submit(ResourceKind::Cpu, {}, [] { fatal("first"); });
    ex.submit(ResourceKind::Cpu, {first}, [] { fatal("second"); });
    try {
        ex.sync();
        FAIL() << "sync should rethrow";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("first"),
                  std::string::npos);
    }
    EXPECT_NO_THROW(ex.sync());  // cleared
}

TEST(StreamExecutor, ErrorOnOneQueueSurfacesAtSharedSync)
{
    StreamExecutor ex;
    std::atomic<int> ok{0};
    ex.submit(ResourceKind::DtoH, {}, [] { fatal("dtoh died"); });
    for (int i = 0; i < 8; ++i)
        ex.submit(ResourceKind::Gpu, {}, [&] { ++ok; });
    try {
        ex.sync();
        FAIL() << "sync should rethrow the DtoH failure";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("dtoh died"),
                  std::string::npos);
    }
    // Healthy tasks on the other queues still ran to completion.
    EXPECT_EQ(ok.load(), 8);
}

TEST(StreamExecutor, InjectedTaskFaultFlowsThroughSync)
{
    StreamExecutor ex;
    std::atomic<int> ran{0};
    {
        // Third executor task dies via the exec.task site — the same
        // capture path a real task exception takes.
        ScopedFault fault("exec.task", 3);
        for (int i = 0; i < 6; ++i)
            ex.submit(ResourceKind::Gpu, {}, [&] { ++ran; });
        try {
            ex.sync();
            FAIL() << "injected fault should surface at sync";
        } catch (const EngineError &e) {
            EXPECT_EQ(e.code(), ErrorCode::FaultInjected);
            EXPECT_EQ(e.site(), "exec.task");
        }
        EXPECT_EQ(fault.hits(), 1u);
    }
    // The faulted task's body never ran; the other five did (sync's
    // own fence tasks also pass the check site, but the injector had
    // already disarmed).
    EXPECT_EQ(ran.load(), 5);
    std::atomic<bool> again{false};
    ex.submit(ResourceKind::Cpu, {}, [&] { again = true; });
    EXPECT_NO_THROW(ex.sync());
    EXPECT_TRUE(again.load());
}

TEST(StreamExecutor, AlsoSignalFiresOnSuccessAndError)
{
    // The engine shares TaskEvents between producer and consumer
    // tasks (weight readiness). Publishing them from inside the task
    // body is unsafe — a body that dies before its signal (any
    // throw, or an exec.task fault injected before the body starts)
    // would leave dependents waiting forever. The alsoSignal
    // parameter is the executor-backed alternative: signaled by the
    // worker on every path, error included, while the error itself
    // still reaches sync().
    StreamExecutor ex;
    auto okReady = std::make_shared<TaskEvent>();
    ex.submit(ResourceKind::HtoD, {}, [] {}, {okReady});
    okReady->wait();

    auto badReady = std::make_shared<TaskEvent>();
    ex.submit(ResourceKind::HtoD, {}, [] { fatal("load failed"); },
              {badReady});
    std::atomic<bool> ran{false};
    auto dep =
        ex.submit(ResourceKind::Gpu, {badReady}, [&] { ran = true; });
    dep->wait();  // must not deadlock
    EXPECT_TRUE(ran.load());
    EXPECT_THROW(ex.sync(), FatalError);
}

TEST(StreamExecutor, AlsoSignalFiresWhenTaskBodyNeverRuns)
{
    // An injected exec.task fault kills the task before its first
    // statement — the hard case that makes in-body signaling a
    // deadlock. alsoSignal must still fire.
    StreamExecutor ex;
    auto ready = std::make_shared<TaskEvent>();
    std::atomic<bool> bodyRan{false};
    {
        ScopedFault fault("exec.task", 1);
        ex.submit(ResourceKind::HtoD, {}, [&] { bodyRan = true; },
                  {ready});
        std::atomic<bool> depRan{false};
        auto dep = ex.submit(ResourceKind::Gpu, {ready},
                             [&] { depRan = true; });
        dep->wait();  // must not deadlock
        EXPECT_TRUE(depRan.load());
        EXPECT_FALSE(bodyRan.load());
        EXPECT_THROW(ex.sync(), EngineError);
        EXPECT_EQ(fault.hits(), 1u);
    }
}

TEST(StreamExecutor, ManyTasksDrainOnDestruction)
{
    std::atomic<int> n{0};
    {
        StreamExecutor ex;
        for (int i = 0; i < 200; ++i)
            ex.submit(static_cast<ResourceKind>(i % 4), {},
                      [&] { ++n; });
        ex.sync();
    }
    EXPECT_EQ(n.load(), 200);
}

} // namespace
} // namespace moelight
