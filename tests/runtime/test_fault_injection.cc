/**
 * Fault-tolerance tests: the deterministic FaultInjector itself
 * (count and seeded-rate modes), and the engines' containment
 * contract under injected faults at every instrumented site
 * (kv.alloc, weights.load, exec.task) across float / int8 / int4 KV
 * modes — the faulted request (or, for round-scope executor and
 * weight-stream faults, the faulted round's co-batch) retires with
 * FinishReason::Error and a diagnostic, every surviving request's
 * tokens stay bit-identical to an uncontended ReferenceEngine run,
 * all KV pages return to the pool, and the engine keeps serving fresh
 * requests afterwards. Also covers the request lifecycle (cancel,
 * deadline) on both engines and KV-pressure preemption with
 * bit-identical recompute.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <thread>

#include "common/rng.hh"
#include "runtime/engine.hh"
#include "runtime/fault_injection.hh"
#include "runtime/reference_engine.hh"
#include "runtime/serving.hh"
#include "runtime/status.hh"

namespace moelight {
namespace {

std::vector<int>
makePrompt(const ModelConfig &cfg, std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<int> p;
    for (std::size_t t = 0; t < len; ++t)
        p.push_back(static_cast<int>(rng.uniformInt(
            0, static_cast<std::int64_t>(cfg.vocab) - 1)));
    return p;
}

/** Oracle: serve one request alone through a fresh ReferenceEngine
 *  (the injector must be disarmed when this runs). */
std::vector<int>
referenceTokens(const ModelWeights &w, const ServeRequest &req,
                std::optional<QuantKind> kvQuant = std::nullopt,
                std::size_t kvPageTokens = 16)
{
    ReferenceEngine ref(w, kvQuant, kvPageTokens);
    ref.submit(req);
    std::vector<RequestOutput> out = ref.drain();
    EXPECT_EQ(out.size(), 1u);
    return out.empty() ? std::vector<int>{} : out[0].tokens;
}

// ---------------------------------------------------------------------
// Injector unit tests.
// ---------------------------------------------------------------------

TEST(FaultInjector, CountModeFiresOnceOnNthCheck)
{
    ScopedFault f("unit.count", 3);
    EXPECT_NO_THROW(FaultInjector::check("unit.count"));
    EXPECT_NO_THROW(FaultInjector::check("unit.count"));
    try {
        FaultInjector::check("unit.count");
        FAIL() << "third check should have thrown";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), ErrorCode::FaultInjected);
        EXPECT_EQ(e.site(), "unit.count");
        EXPECT_NE(std::string(e.what()).find("injected fault"),
                  std::string::npos);
    }
    // One-shot: the site disarmed itself after firing.
    EXPECT_NO_THROW(FaultInjector::check("unit.count"));
    EXPECT_EQ(f.hits(), 1u);
}

TEST(FaultInjector, SitesAreIndependent)
{
    ScopedFault f("unit.a", 1);
    EXPECT_NO_THROW(FaultInjector::check("unit.b"));
    EXPECT_THROW(FaultInjector::check("unit.a"), EngineError);
}

TEST(FaultInjector, RateModeIsDeterministicPerSeed)
{
    auto trips = [](std::uint64_t seed) {
        FaultInjector::instance().armRate("unit.rate", 0.3, seed);
        std::vector<int> fired;
        for (int i = 0; i < 200; ++i) {
            try {
                FaultInjector::check("unit.rate");
            } catch (const EngineError &) {
                fired.push_back(i);
            }
        }
        FaultInjector::instance().disarmAll();
        return fired;
    };
    std::vector<int> a = trips(7), b = trips(7), c = trips(8);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
    EXPECT_LT(a.size(), 200u);
    EXPECT_NE(a, c);  // different seed, different schedule
}

TEST(FaultInjector, DisarmAllMakesChecksFree)
{
    FaultInjector::instance().armCount("unit.gone", 1);
    FaultInjector::instance().disarmAll();
    EXPECT_NO_THROW(FaultInjector::check("unit.gone"));
}

TEST(FaultInjector, EngineErrorCarriesCodeAndSite)
{
    EngineError e(ErrorCode::KvExhausted, "kv.alloc", "pool dry");
    EXPECT_EQ(e.code(), ErrorCode::KvExhausted);
    EXPECT_EQ(e.site(), "kv.alloc");
    std::string msg = e.what();
    EXPECT_NE(msg.find("KvExhausted"), std::string::npos);
    EXPECT_NE(msg.find("kv.alloc"), std::string::npos);
    EXPECT_NE(msg.find("pool dry"), std::string::npos);
}

// ---------------------------------------------------------------------
// Containment matrix: every site x float/int8/int4 KV.
// ---------------------------------------------------------------------

struct FaultCase
{
    const char *site;
    std::optional<QuantKind> quant;
    std::uint64_t nth;  ///< check count that trips mid-flight
    const char *tag;
};

class FaultContainment : public ::testing::TestWithParam<FaultCase>
{
};

TEST_P(FaultContainment, FaultedRetiresErrorSurvivorsBitIdentical)
{
    const FaultCase fc = GetParam();
    ModelWeights w = ModelWeights::random(tinyMixtral(), 99);
    EngineConfig ec;
    ec.microBatch = 2;
    ec.kvPageTokens = 4;
    ec.maxConcurrency = 4;
    ec.kvQuant = fc.quant;

    std::vector<ServeRequest> wave1, wave2;
    for (int i = 0; i < 4; ++i) {
        ServeRequest r;
        r.id = 10 + i;
        r.prompt = makePrompt(w.cfg, 4 + static_cast<std::size_t>(i),
                              static_cast<std::uint64_t>(i) + 5);
        r.maxNewTokens = 5 + i;
        wave1.push_back(std::move(r));
    }
    for (int i = 0; i < 2; ++i) {
        ServeRequest r;
        r.id = 20 + i;
        r.prompt = makePrompt(w.cfg, 5, static_cast<std::uint64_t>(i) + 40);
        r.maxNewTokens = 6;
        wave2.push_back(std::move(r));
    }

    // Oracle tokens with the injector disarmed.
    std::map<std::int64_t, std::vector<int>> want;
    for (const auto &r : wave1)
        want[r.id] =
            referenceTokens(w, r, fc.quant, ec.kvPageTokens);
    for (const auto &r : wave2)
        want[r.id] =
            referenceTokens(w, r, fc.quant, ec.kvPageTokens);

    PipelinedEngine eng(w, ec);
    for (const auto &r : wave1)
        eng.submit(r);

    std::vector<RequestOutput> outs;
    {
        ScopedFault fault(fc.site, fc.nth);
        outs = eng.drain();
        // The fault must actually have fired mid-flight, or this test
        // proves nothing (tune nth if a pipeline change shifts check
        // counts).
        EXPECT_EQ(fault.hits(), 1u) << "site " << fc.site;
    }
    ASSERT_EQ(outs.size(), wave1.size());
    EXPECT_EQ(eng.kvUsedPages(), 0u)
        << "faulted requests must release their KV pages";

    std::size_t errored = 0;
    for (const auto &o : outs) {
        if (o.finishReason == FinishReason::Error) {
            ++errored;
            EXPECT_FALSE(o.errorMessage.empty());
            continue;
        }
        EXPECT_EQ(o.finishReason, FinishReason::Length);
        EXPECT_TRUE(o.errorMessage.empty());
        EXPECT_EQ(o.tokens, want[o.id])
            << "survivor " << o.id << " diverged from the oracle";
    }
    EXPECT_GE(errored, 1u);
    EXPECT_LT(errored, wave1.size() + 1);

    // The engine keeps serving: a fresh wave after the fault is
    // clean and bit-identical.
    for (const auto &r : wave2)
        eng.submit(r);
    std::vector<RequestOutput> outs2 = eng.drain();
    ASSERT_EQ(outs2.size(), wave2.size());
    for (const auto &o : outs2) {
        EXPECT_EQ(o.finishReason, FinishReason::Length);
        EXPECT_EQ(o.tokens, want[o.id]) << "post-fault request " << o.id;
    }
    EXPECT_EQ(eng.kvUsedPages(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sites, FaultContainment,
    ::testing::Values(
        // kv.alloc checks fire per page allocation (float) or per
        // token append (quant); weights.load per streamed page;
        // exec.task per executor task. nth is picked to land after
        // wave 1 is mid-flight but well before it drains.
        FaultCase{"kv.alloc", std::nullopt, 10, "kv_float"},
        FaultCase{"kv.alloc", QuantKind::Int8, 60, "kv_int8"},
        FaultCase{"kv.alloc", QuantKind::Int4, 60, "kv_int4"},
        FaultCase{"weights.load", std::nullopt, 30, "weights_float"},
        FaultCase{"weights.load", QuantKind::Int8, 30, "weights_int8"},
        FaultCase{"weights.load", QuantKind::Int4, 30, "weights_int4"},
        FaultCase{"exec.task", std::nullopt, 80, "exec_float"},
        FaultCase{"exec.task", QuantKind::Int8, 80, "exec_int8"},
        FaultCase{"exec.task", QuantKind::Int4, 80, "exec_int4"}),
    [](const ::testing::TestParamInfo<FaultCase> &info) {
        return info.param.tag;
    });

TEST(FaultContainmentRef, ReferenceEngineContainsQuantKvFault)
{
    // The oracle itself must honor the contract: a KV fault in one
    // request's decode retires it with Error while co-active
    // requests finish clean.
    ModelWeights w = ModelWeights::random(tinyMixtral(), 3);
    std::vector<ServeRequest> reqs;
    for (int i = 0; i < 3; ++i) {
        ServeRequest r;
        r.id = i;
        r.prompt = makePrompt(w.cfg, 4, static_cast<std::uint64_t>(i) + 9);
        r.maxNewTokens = 6;
        reqs.push_back(std::move(r));
    }
    std::map<std::int64_t, std::vector<int>> want;
    for (const auto &r : reqs)
        want[r.id] = referenceTokens(w, r, QuantKind::Int8, 4);

    ReferenceEngine ref(w, QuantKind::Int8, 4);
    for (const auto &r : reqs)
        ref.submit(r);
    std::vector<RequestOutput> outs;
    {
        // Mid-decode: past the 3 prefills (3 reqs x 4 tokens x 4
        // layers = 48 appends) but before the ~72 decode appends run
        // out.
        ScopedFault fault("kv.alloc", 60);
        outs = ref.drain();
        EXPECT_EQ(fault.hits(), 1u);
    }
    ASSERT_EQ(outs.size(), reqs.size());
    std::size_t errored = 0;
    for (const auto &o : outs) {
        if (o.finishReason == FinishReason::Error) {
            ++errored;
            EXPECT_FALSE(o.errorMessage.empty());
        } else {
            EXPECT_EQ(o.finishReason, FinishReason::Length);
            EXPECT_EQ(o.tokens, want[o.id]);
        }
    }
    EXPECT_EQ(errored, 1u) << "exactly the faulted request retires";
    EXPECT_TRUE(ref.idle());
}

// ---------------------------------------------------------------------
// Request lifecycle: cancel and deadline, both engines.
// ---------------------------------------------------------------------

template <typename MakeEngine>
void
runCancelLifecycle(const ModelWeights &w, MakeEngine makeEngine)
{
    auto eng = makeEngine();
    ServeRequest a, b;
    a.id = 1;
    a.prompt = makePrompt(w.cfg, 4, 11);
    a.maxNewTokens = 50;
    b.id = 2;
    b.prompt = makePrompt(w.cfg, 4, 12);
    b.maxNewTokens = 3;
    eng->submit(a);
    eng->submit(b);

    EXPECT_FALSE(eng->cancel(999)) << "unknown id";
    EXPECT_TRUE(eng->cancel(1)) << "queued request is cancellable";

    std::vector<RequestOutput> outs = eng->drain();
    ASSERT_EQ(outs.size(), 2u);
    std::map<std::int64_t, RequestOutput> byId;
    for (auto &o : outs)
        byId[o.id] = std::move(o);
    EXPECT_EQ(byId[1].finishReason, FinishReason::Cancelled);
    EXPECT_EQ(byId[2].finishReason, FinishReason::Length);
    EXPECT_EQ(byId[2].tokens, referenceTokens(w, b));
    EXPECT_FALSE(eng->cancel(1)) << "already retired";

    // Cancel mid-generation: partial tokens come back and they are a
    // prefix of the uncontended run.
    ServeRequest c;
    c.id = 3;
    c.prompt = makePrompt(w.cfg, 4, 13);
    c.maxNewTokens = 50;
    eng->submit(c);
    std::vector<RequestOutput> mid = eng->step();  // admit + 1 round
    EXPECT_TRUE(mid.empty());
    EXPECT_TRUE(eng->cancel(3));
    std::vector<RequestOutput> rest = eng->drain();
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0].finishReason, FinishReason::Cancelled);
    EXPECT_FALSE(rest[0].tokens.empty());
    std::vector<int> full = referenceTokens(w, c);
    ASSERT_LE(rest[0].tokens.size(), full.size());
    EXPECT_TRUE(std::equal(rest[0].tokens.begin(),
                           rest[0].tokens.end(), full.begin()))
        << "partial tokens must be a prefix of the full generation";
}

TEST(Lifecycle, CancelOnPipelinedEngine)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 21);
    runCancelLifecycle(w, [&] {
        EngineConfig ec;
        ec.microBatch = 2;
        ec.kvPageTokens = 4;
        auto e = std::make_unique<PipelinedEngine>(w, ec);
        return e;
    });
}

TEST(Lifecycle, CancelOnReferenceEngine)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 21);
    runCancelLifecycle(
        w, [&] { return std::make_unique<ReferenceEngine>(w); });
}

template <typename MakeEngine>
void
runDeadlineLifecycle(const ModelWeights &w, MakeEngine makeEngine)
{
    auto eng = makeEngine();
    ServeRequest slow, fast;
    slow.id = 1;
    slow.prompt = makePrompt(w.cfg, 4, 31);
    slow.maxNewTokens = 50;
    slow.deadlineMs = 0.01;  // expires essentially immediately
    fast.id = 2;
    fast.prompt = makePrompt(w.cfg, 4, 32);
    fast.maxNewTokens = 3;   // no deadline
    eng->submit(slow);
    eng->submit(fast);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

    std::vector<RequestOutput> outs = eng->drain();
    ASSERT_EQ(outs.size(), 2u);
    std::map<std::int64_t, RequestOutput> byId;
    for (auto &o : outs)
        byId[o.id] = std::move(o);
    EXPECT_EQ(byId[1].finishReason, FinishReason::TimedOut);
    EXPECT_EQ(byId[2].finishReason, FinishReason::Length);
    EXPECT_EQ(byId[2].tokens, referenceTokens(w, fast));
    EXPECT_TRUE(eng->idle());
}

TEST(Lifecycle, DeadlineOnPipelinedEngine)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 22);
    EngineConfig ec;
    ec.microBatch = 2;
    ec.kvPageTokens = 4;
    auto make = [&] { return std::make_unique<PipelinedEngine>(w, ec); };
    runDeadlineLifecycle(w, make);
    // And pages are provably back.
    PipelinedEngine probe(w, ec);
    EXPECT_EQ(probe.kvUsedPages(), 0u);
}

TEST(Lifecycle, DeadlineOnReferenceEngine)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 22);
    runDeadlineLifecycle(
        w, [&] { return std::make_unique<ReferenceEngine>(w); });
}

TEST(Lifecycle, CancelReleasesKvPagesImmediately)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 23);
    EngineConfig ec;
    ec.microBatch = 2;
    ec.kvPageTokens = 4;
    PipelinedEngine eng(w, ec);
    ServeRequest r;
    r.id = 5;
    r.prompt = makePrompt(w.cfg, 8, 41);
    r.maxNewTokens = 50;
    eng.submit(r);
    (void)eng.step();  // admit + first decode round: KV now in use
    EXPECT_GT(eng.kvUsedPages(), 0u);
    EXPECT_TRUE(eng.cancel(5));
    std::vector<RequestOutput> outs = eng.step();
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0].finishReason, FinishReason::Cancelled);
    EXPECT_EQ(eng.kvUsedPages(), 0u)
        << "cancellation must free pages in the same step";
}

// ---------------------------------------------------------------------
// KV-pressure preemption.
// ---------------------------------------------------------------------

TEST(Preemption, AgedHeadPreemptsYoungestAndRecomputesBitIdentical)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 77);
    EngineConfig ec;
    ec.microBatch = 2;
    // Slots stay available (4 > 2 actives) so the starvation below is
    // purely KV-pressure: budget of 24 request tokens
    // (kvCapacityTokens / 4 layers), and two 12-token requests pin it
    // completely, so the third starves until the engine preempts one
    // of them.
    ec.maxConcurrency = 4;
    ec.kvPageTokens = 4;
    ec.kvCapacityTokens = 96;
    ec.headAgeLimit = 2;
    PipelinedEngine eng(w, ec);

    std::vector<ServeRequest> reqs;
    for (int i = 0; i < 2; ++i) {
        ServeRequest r;
        r.id = i;
        r.prompt = makePrompt(w.cfg, 4, static_cast<std::uint64_t>(i) + 61);
        r.maxNewTokens = 8;  // demand 12 of the 24-token budget
        reqs.push_back(std::move(r));
    }
    ServeRequest late;
    late.id = 2;
    late.prompt = makePrompt(w.cfg, 4, 63);
    late.maxNewTokens = 4;  // demand 8: needs a preemption to fit
    reqs.push_back(late);

    std::map<std::int64_t, std::vector<int>> want;
    for (const auto &r : reqs)
        want[r.id] = referenceTokens(w, r);

    eng.submit(reqs[0]);
    eng.submit(reqs[1]);
    (void)eng.step();  // both admitted; budget fully reserved
    eng.submit(late);
    std::vector<RequestOutput> outs = eng.drain();

    ASSERT_EQ(outs.size(), 3u);
    EXPECT_GE(eng.preemptions(), 1u)
        << "the aged head must trigger a preemption";
    int preemptedOutputs = 0;
    for (const auto &o : outs) {
        EXPECT_EQ(o.finishReason, FinishReason::Length);
        EXPECT_EQ(o.tokens, want[o.id])
            << "request " << o.id
            << " (preempted " << o.preemptions
            << "x) must be bit-identical to an uncontended run";
        preemptedOutputs += o.preemptions > 0 ? 1 : 0;
    }
    EXPECT_GE(preemptedOutputs, 1);
    EXPECT_EQ(eng.kvUsedPages(), 0u);
}

} // namespace
} // namespace moelight
