/**
 * Request-level serving API tests: continuous batching in the
 * pipelined engine must match a per-request ReferenceEngine run for
 * mixed generation lengths and staggered admission (the reference
 * serves each request independently, so it is the oracle for any
 * admission schedule), KV pages must provably return to the pool
 * when a request retires early (float and int8/int4 quantized
 * caches), stop tokens must cut requests short, and the
 * ContinuousBatcher's Algorithm 2 admission must respect slots and
 * budget without dropping or reordering deferred work.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hh"
#include "runtime/engine.hh"
#include "runtime/reference_engine.hh"
#include "runtime/serving.hh"

namespace moelight {
namespace {

std::vector<int>
makePrompt(const ModelConfig &cfg, std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<int> p;
    for (std::size_t t = 0; t < len; ++t)
        p.push_back(static_cast<int>(rng.uniformInt(
            0, static_cast<std::int64_t>(cfg.vocab) - 1)));
    return p;
}

/** Oracle: serve one request alone through a fresh ReferenceEngine. */
std::vector<int>
referenceTokens(const ModelWeights &w, const ServeRequest &req,
                std::optional<QuantKind> kvQuant = std::nullopt,
                std::size_t kvPageTokens = 16)
{
    ReferenceEngine ref(w, kvQuant, kvPageTokens);
    ref.submit(req);
    std::vector<RequestOutput> out = ref.drain();
    EXPECT_EQ(out.size(), 1u);
    return out.empty() ? std::vector<int>{} : out[0].tokens;
}

TEST(Serving, MixedGenLenMatchesPerRequestReference)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 42);
    EngineConfig ec;
    ec.microBatch = 2;
    ec.kvPageTokens = 4;
    PipelinedEngine eng(w, ec);

    std::vector<ServeRequest> reqs;
    for (int i = 0; i < 6; ++i) {
        ServeRequest r;
        r.id = 100 + i;
        r.prompt = makePrompt(w.cfg, 3 + static_cast<std::size_t>(i),
                              static_cast<std::uint64_t>(i) + 1);
        r.maxNewTokens = 1 + 2 * i;  // 1, 3, 5, 7, 9, 11
        reqs.push_back(std::move(r));
    }
    for (const auto &r : reqs)
        eng.submit(r);
    std::vector<RequestOutput> outs = eng.drain();
    ASSERT_EQ(outs.size(), reqs.size());
    EXPECT_EQ(eng.kvUsedPages(), 0u);

    std::map<std::int64_t, std::vector<int>> got;
    for (const auto &o : outs) {
        EXPECT_EQ(o.finishReason, FinishReason::Length);
        got[o.id] = o.tokens;
    }
    for (const auto &r : reqs) {
        ASSERT_TRUE(got.count(r.id)) << "request " << r.id;
        EXPECT_EQ(got[r.id].size(),
                  static_cast<std::size_t>(r.maxNewTokens));
        EXPECT_EQ(got[r.id], referenceTokens(w, r))
            << "request " << r.id;
    }
}

TEST(Serving, StaggeredAdmissionMatchesPerRequestReference)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 7);
    EngineConfig ec;
    ec.microBatch = 2;
    ec.kvPageTokens = 4;
    ec.maxConcurrency = 4;
    PipelinedEngine eng(w, ec);

    std::vector<ServeRequest> reqs;
    for (int i = 0; i < 5; ++i) {
        ServeRequest r;
        r.id = i;
        r.prompt = makePrompt(w.cfg, 4 + static_cast<std::size_t>(i),
                              static_cast<std::uint64_t>(i) + 31);
        r.maxNewTokens = 3 + i;
        reqs.push_back(std::move(r));
    }

    // Submit two, run a couple of rounds, submit two more mid-flight,
    // run, then the last one — requests join sequences already deep
    // in their decode without disturbing them.
    std::vector<RequestOutput> outs;
    auto collect = [&](std::vector<RequestOutput> v) {
        for (auto &o : v)
            outs.push_back(std::move(o));
    };
    eng.submit(reqs[0]);
    eng.submit(reqs[1]);
    collect(eng.step());
    collect(eng.step());
    EXPECT_EQ(eng.activeRequests() + outs.size(), 2u);
    eng.submit(reqs[2]);
    eng.submit(reqs[3]);
    collect(eng.step());
    eng.submit(reqs[4]);
    collect(eng.drain());

    ASSERT_EQ(outs.size(), reqs.size());
    EXPECT_EQ(eng.kvUsedPages(), 0u);
    for (const auto &o : outs) {
        const ServeRequest &r = reqs[static_cast<std::size_t>(o.id)];
        EXPECT_EQ(o.tokens, referenceTokens(w, r))
            << "request " << o.id;
        EXPECT_GE(o.prefillSeconds, 0.0);
        EXPECT_GE(o.decodeSeconds, 0.0);
    }
}

TEST(Serving, KvPagesFreedOnEarlyFinish)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 9);
    EngineConfig ec;
    ec.microBatch = 4;
    ec.kvPageTokens = 4;
    PipelinedEngine eng(w, ec);

    // One short-budget request with a long prompt (many pages) plus
    // two long-running requests with short prompts: when the big one
    // retires, the pool must visibly shrink even though the others
    // keep appending.
    ServeRequest big;
    big.id = 1;
    big.prompt = makePrompt(w.cfg, 40, 1);
    big.maxNewTokens = 6;  // retires several rounds in, not round one
    ServeRequest small_a;
    small_a.id = 2;
    small_a.prompt = makePrompt(w.cfg, 4, 2);
    small_a.maxNewTokens = 12;
    ServeRequest small_b;
    small_b.id = 3;
    small_b.prompt = makePrompt(w.cfg, 5, 3);
    small_b.maxNewTokens = 12;
    eng.submit(big);
    eng.submit(small_a);
    eng.submit(small_b);

    std::size_t before = 0;
    bool saw_retire = false;
    while (!eng.idle()) {
        before = eng.kvUsedPages();
        std::vector<RequestOutput> done = eng.step();
        for (const auto &o : done)
            if (o.id == 1) {
                saw_retire = true;
                // The big request's pages went back mid-flight: usage
                // dropped across the round despite the survivors'
                // appends, and the survivors are still generating.
                EXPECT_LT(eng.kvUsedPages(), before);
                EXPECT_EQ(eng.activeRequests(), 2u);
            }
    }
    EXPECT_TRUE(saw_retire);
    EXPECT_EQ(eng.kvUsedPages(), 0u);
    EXPECT_GT(eng.kvPeakPages(), 0u);
}

class QuantServing : public ::testing::TestWithParam<QuantKind>
{
};

TEST_P(QuantServing, StaggeredMixedGenLenMatchesQuantReference)
{
    QuantKind kind = GetParam();
    ModelWeights w = ModelWeights::random(tinyMixtral(), 42);
    std::size_t page_tokens = 4;
    EngineConfig ec;
    ec.microBatch = 2;
    ec.kvPageTokens = page_tokens;
    ec.kvQuant = kind;
    ec.maxConcurrency = 4;
    PipelinedEngine eng(w, ec);

    std::vector<ServeRequest> reqs;
    for (int i = 0; i < 5; ++i) {
        ServeRequest r;
        r.id = i;
        // Lengths straddle page boundaries (3..11 over 4-token pages).
        r.prompt = makePrompt(w.cfg, 3 + 2 * static_cast<std::size_t>(i),
                              static_cast<std::uint64_t>(i) + 77);
        r.maxNewTokens = 2 + i;
        reqs.push_back(std::move(r));
    }

    std::vector<RequestOutput> outs;
    auto collect = [&](std::vector<RequestOutput> v) {
        for (auto &o : v)
            outs.push_back(std::move(o));
    };
    eng.submit(reqs[0]);
    eng.submit(reqs[1]);
    eng.submit(reqs[2]);
    collect(eng.step());
    collect(eng.step());
    eng.submit(reqs[3]);
    eng.submit(reqs[4]);
    collect(eng.drain());

    ASSERT_EQ(outs.size(), reqs.size());
    // Quantized pages all released on retirement too.
    EXPECT_EQ(eng.kvUsedPages(), 0u);
    EXPECT_GT(eng.kvPeakPages(), 0u);
    for (const auto &o : outs) {
        const ServeRequest &r = reqs[static_cast<std::size_t>(o.id)];
        EXPECT_EQ(o.tokens,
                  referenceTokens(w, r, kind, page_tokens))
            << "request " << o.id << " (quant)";
    }
}

TEST_P(QuantServing, QuantKvPagesShrinkOnEarlyFinish)
{
    QuantKind kind = GetParam();
    ModelWeights w = ModelWeights::random(tinyMixtral(), 5);
    EngineConfig ec;
    ec.microBatch = 4;
    ec.kvPageTokens = 4;
    ec.kvQuant = kind;
    PipelinedEngine eng(w, ec);

    ServeRequest big;
    big.id = 1;
    big.prompt = makePrompt(w.cfg, 32, 11);
    big.maxNewTokens = 5;  // retires several rounds in, not round one
    ServeRequest small;
    small.id = 2;
    small.prompt = makePrompt(w.cfg, 4, 12);
    small.maxNewTokens = 10;
    eng.submit(big);
    eng.submit(small);

    bool saw_retire = false;
    while (!eng.idle()) {
        std::size_t before = eng.kvUsedPages();
        for (const auto &o : eng.step())
            if (o.id == 1) {
                saw_retire = true;
                EXPECT_LT(eng.kvUsedPages(), before);
                EXPECT_EQ(eng.activeRequests(), 1u);
            }
    }
    EXPECT_TRUE(saw_retire);
    EXPECT_EQ(eng.kvUsedPages(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, QuantServing,
                         ::testing::Values(QuantKind::Int8,
                                           QuantKind::Int4));

TEST(Serving, StopTokensCutGenerationShort)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 13);
    ServeRequest probe;
    probe.id = 0;
    probe.prompt = makePrompt(w.cfg, 6, 21);
    probe.maxNewTokens = 8;
    std::vector<int> full = referenceTokens(w, probe);
    ASSERT_EQ(full.size(), 8u);

    // Stop on the token greedy decoding emits at position 2: the
    // request must finish with exactly 3 tokens and reason Stop —
    // identically in both engines.
    ServeRequest stopped = probe;
    stopped.stopTokens = {full[2]};
    // Guard against the stop token appearing earlier in the stream.
    ASSERT_EQ(std::find(full.begin(), full.begin() + 2, full[2]),
              full.begin() + 2);

    EngineConfig ec;
    ec.kvPageTokens = 4;
    PipelinedEngine eng(w, ec);
    eng.submit(stopped);
    std::vector<RequestOutput> out = eng.drain();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].finishReason, FinishReason::Stop);
    EXPECT_EQ(out[0].tokens,
              std::vector<int>(full.begin(), full.begin() + 3));

    ReferenceEngine ref(w);
    ref.submit(stopped);
    std::vector<RequestOutput> rout = ref.drain();
    ASSERT_EQ(rout.size(), 1u);
    EXPECT_EQ(rout[0].finishReason, FinishReason::Stop);
    EXPECT_EQ(rout[0].tokens, out[0].tokens);
}

TEST(Serving, PolymorphicUseThroughEngineInterface)
{
    // Both engines drive identically through the abstract Engine
    // interface — the point of the redesign.
    ModelWeights w = ModelWeights::random(tinyMixtral(), 3);
    PipelinedEngine pipe(w, {});
    ReferenceEngine ref(w);
    std::vector<std::vector<int>> prompts{makePrompt(w.cfg, 5, 1),
                                          makePrompt(w.cfg, 7, 2)};
    Engine &a = pipe;
    Engine &b = ref;
    auto ra = a.generate(prompts, 6);
    auto rb = b.generate(prompts, 6);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t s = 0; s < ra.size(); ++s)
        EXPECT_EQ(ra[s].tokens, rb[s].tokens);
    EXPECT_TRUE(a.idle());
    EXPECT_TRUE(b.idle());
}

TEST(Serving, RejectsBadRequests)
{
    ModelWeights w = ModelWeights::random(tinyMixtral(), 4);
    PipelinedEngine eng(w, {});
    ServeRequest r;
    r.maxNewTokens = 4;
    EXPECT_THROW(eng.submit(r), FatalError);  // empty prompt
    r.prompt = {99999};
    EXPECT_THROW(eng.submit(r), FatalError);  // out of vocab
    r.prompt = {1, 2};
    r.maxNewTokens = 0;
    EXPECT_THROW(eng.submit(r), FatalError);  // no budget
}

TEST(Serving, GenerateRequiresIdleEngine)
{
    // The batch wrapper assigns ids 0..n-1, which would collide with
    // in-flight serving requests — it must refuse instead.
    ModelWeights w = ModelWeights::random(tinyMixtral(), 4);
    PipelinedEngine eng(w, {});
    ServeRequest r;
    r.id = 0;
    r.prompt = makePrompt(w.cfg, 4, 1);
    r.maxNewTokens = 8;
    eng.submit(r);
    EXPECT_THROW(eng.generate({makePrompt(w.cfg, 3, 2)}, 2),
                 FatalError);
    eng.drain();  // the serving request is unaffected
    auto batch = eng.generate({makePrompt(w.cfg, 3, 2)}, 2);
    EXPECT_EQ(batch[0].tokens.size(), 2u);
}

TEST(ContinuousBatcher, AdmitsUpToFreeSlotsKeepsRestInOrder)
{
    ContinuousBatcher b(/*microBatch=*/2, /*kvBudgetTokens=*/0);
    for (int i = 0; i < 6; ++i) {
        ServeRequest r;
        r.id = i;
        r.prompt.assign(static_cast<std::size_t>(4 + i), 1);
        r.maxNewTokens = 4;
        b.enqueue(std::move(r));
    }
    std::vector<ServeRequest> first = b.admit(/*freeSlots=*/4, 0);
    EXPECT_EQ(first.size(), 4u);
    EXPECT_EQ(b.pending(), 2u);
    // Deferred requests keep arrival order.
    std::vector<ServeRequest> second = b.admit(4, 0);
    ASSERT_EQ(second.size(), 2u);
    std::vector<std::int64_t> ids{second[0].id, second[1].id};
    std::sort(ids.begin(), ids.end());
    // The two leftovers are the two shortest prompts (Algorithm 2
    // admits longest-first), i.e. ids 0 and 1.
    EXPECT_EQ(ids, (std::vector<std::int64_t>{0, 1}));
    EXPECT_EQ(b.pending(), 0u);
}

TEST(ContinuousBatcher, BudgetDefersWithoutDropping)
{
    // Budget 20: the 16-token request fits alone (16 + 4 gen = 20);
    // everything else defers but stays queued.
    ContinuousBatcher b(/*microBatch=*/4, /*kvBudgetTokens=*/20);
    for (int i = 0; i < 3; ++i) {
        ServeRequest r;
        r.id = i;
        r.prompt.assign(16, 1);
        r.maxNewTokens = 4;
        b.enqueue(std::move(r));
    }
    std::vector<ServeRequest> round = b.admit(/*freeSlots=*/4, 0);
    EXPECT_EQ(round.size(), 1u);
    EXPECT_EQ(b.pending(), 2u);
    // Budget still consumed by the in-flight request: nothing fits.
    EXPECT_TRUE(b.admit(4, /*kvTokensInUse=*/20).empty());
    EXPECT_EQ(b.pending(), 2u);
    // Capacity freed: the next one goes.
    EXPECT_EQ(b.admit(4, 0).size(), 1u);
    EXPECT_EQ(b.pending(), 1u);
    // admitOne is the no-starvation escape hatch.
    EXPECT_EQ(b.admitOne().id, 2);
    EXPECT_EQ(b.pending(), 0u);
}

TEST(ContinuousBatcher, PageQuantumRoundsDemandUp)
{
    // 16-token pages, budget 32 request tokens: two 1-prompt/1-gen
    // requests each pin a whole page (16), so two fit and the third
    // defers even though raw token demand (6) is tiny.
    ContinuousBatcher b(/*microBatch=*/4, /*kvBudgetTokens=*/32,
                        /*pageQuantum=*/16);
    for (int i = 0; i < 3; ++i) {
        ServeRequest r;
        r.id = i;
        r.prompt = {1};
        r.maxNewTokens = 1;
        b.enqueue(std::move(r));
    }
    EXPECT_EQ(b.admit(/*freeSlots=*/4, 0).size(), 2u);
    EXPECT_EQ(b.pending(), 1u);
}

TEST(ContinuousBatcher, AgedHeadHoldsBackYoungerArrivals)
{
    // A large-but-fitting head passed over while smaller later
    // arrivals keep being admitted must eventually block younger
    // work until capacity drains to it (no indefinite starvation).
    ContinuousBatcher b(/*microBatch=*/1, /*kvBudgetTokens=*/100);
    ServeRequest big;
    big.id = 99;
    big.prompt.assign(30, 1);
    big.maxNewTokens = 10;  // demand 40
    b.enqueue(std::move(big));
    for (std::size_t round = 0; round < ContinuousBatcher::kHeadAgeLimit;
         ++round) {
        ServeRequest small;
        small.id = static_cast<std::int64_t>(round);
        small.prompt.assign(2, 1);
        small.maxNewTokens = 4;  // demand 6
        b.enqueue(std::move(small));
        // 70 of 100 in use: the small fits the per-partition split,
        // the head does not — it gets passed over again.
        std::vector<ServeRequest> got =
            b.admit(/*freeSlots=*/2, /*kvTokensInUse=*/70);
        ASSERT_EQ(got.size(), 1u) << "round " << round;
        EXPECT_NE(got[0].id, 99);
    }
    // Age limit hit: younger requests are now held back...
    ServeRequest late;
    late.id = 500;
    late.prompt.assign(2, 1);
    late.maxNewTokens = 4;
    b.enqueue(std::move(late));
    EXPECT_TRUE(b.admit(2, 70).empty());
    // ...until capacity drains enough for the head.
    std::vector<ServeRequest> head = b.admit(2, /*kvTokensInUse=*/0);
    ASSERT_EQ(head.size(), 1u);
    EXPECT_EQ(head[0].id, 99);
    // Younger flow resumes afterwards.
    EXPECT_EQ(b.admit(2, 0).size(), 1u);
    EXPECT_EQ(b.pending(), 0u);
}

TEST(ContinuousBatcher, HeadAgeAdvancesOnlyWhenHeadWasConsidered)
{
    // The deferral count gates starvation control (held-back younger
    // arrivals, engine preemption), so it must measure rounds that
    // considered the head and admitted past it — never rounds that
    // could not admit anyone for lack of a sequence slot.
    ContinuousBatcher b(/*microBatch=*/2, /*kvBudgetTokens=*/20,
                        /*pageQuantum=*/1, /*headAgeLimit=*/2);
    ServeRequest big;
    big.id = 1;
    big.prompt.assign(20, 1);
    big.maxNewTokens = 10;  // demand 30 > 20: never admits
    b.enqueue(std::move(big));

    // Zero free slots, any number of times: the head was never in
    // play, so it earns no age.
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(b.admit(/*freeSlots=*/0, 0).empty());
    EXPECT_FALSE(b.headAged());

    // Rounds with slots that plan over the head and pass it by DO
    // age it — including zero-free-budget rounds, where that aging is
    // what eventually drives the engine to preempt for the head.
    EXPECT_TRUE(b.admit(/*freeSlots=*/2, /*kvTokensInUse=*/20).empty());
    EXPECT_FALSE(b.headAged()) << "one deferral of limit 2";
    EXPECT_TRUE(b.admit(2, 20).empty());
    EXPECT_TRUE(b.headAged());
    // More slotless rounds still age nothing further: the aged flag
    // simply holds until capacity appears.
    EXPECT_TRUE(b.admit(0, 0).empty());
    EXPECT_TRUE(b.headAged());
}

TEST(ContinuousBatcher, HeadAgeResetsOnAdmissionAndRemoval)
{
    ContinuousBatcher b(/*microBatch=*/2, /*kvBudgetTokens=*/20,
                        /*pageQuantum=*/1, /*headAgeLimit=*/2);
    ServeRequest big;
    big.id = 1;
    big.prompt.assign(20, 1);
    big.maxNewTokens = 10;  // demand 30: over budget, never admits
    b.enqueue(std::move(big));
    for (int i = 0; i < 2; ++i)
        EXPECT_TRUE(b.admit(2, 0).empty());
    EXPECT_TRUE(b.headAged());

    // Removing the starved head (cancel/timeout) hands the front to
    // a request that has earned no age of its own.
    std::vector<ServeRequest> gone = b.removeIf(
        [](const ServeRequest &r) { return r.id == 1; });
    ASSERT_EQ(gone.size(), 1u);
    EXPECT_FALSE(b.headAged());

    ServeRequest ok;
    ok.id = 2;
    ok.prompt.assign(4, 1);
    ok.maxNewTokens = 4;  // demand 8: fits
    b.enqueue(ok);
    for (int i = 0; i < 2; ++i)
        EXPECT_TRUE(b.admit(2, /*kvTokensInUse=*/20).empty());
    EXPECT_TRUE(b.headAged());
    // Admission resets the age for the next head.
    ASSERT_EQ(b.admit(2, 0).size(), 1u);
    EXPECT_FALSE(b.headAged());
}

TEST(ContinuousBatcher, DemandOracleOverridesPageRoundedDemand)
{
    // A prefix-aware oracle reports net demand (novel tail only);
    // the batcher must budget on it instead of the full prompt, or
    // prefix hits would be deferred as if they were cold.
    ContinuousBatcher b(/*microBatch=*/2, /*kvBudgetTokens=*/16,
                        /*pageQuantum=*/4);
    ServeRequest r;
    r.id = 7;
    r.prompt.assign(20, 1);
    r.maxNewTokens = 4;  // cold demand 24 > 16: deferred
    b.enqueue(r);
    EXPECT_TRUE(b.admit(2, 0).empty());
    // 16 of the prompt cached: net demand (4 + 4 -> 8) fits.
    b.setDemandOracle([](const ServeRequest &req) {
        return servingKvDemandNet(req, /*cachedTokens=*/16,
                                  /*quantum=*/4);
    });
    std::vector<ServeRequest> got = b.admit(2, 0);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].id, 7);
}

TEST(Serving, KvDemandNetRoundsNovelTailToQuantum)
{
    ServeRequest r;
    r.prompt.assign(10, 1);
    r.maxNewTokens = 4;
    EXPECT_EQ(servingKvDemandNet(r, 0, 4), 16u) << "cold = full";
    EXPECT_EQ(servingKvDemandNet(r, 0, 4), servingKvDemand(r, 4));
    EXPECT_EQ(servingKvDemandNet(r, 8, 4), 8u) << "2 novel + 4 gen";
    EXPECT_EQ(servingKvDemandNet(r, 8, 1), 6u) << "unrounded";
    // A "match" covering the whole prompt is a contract violation:
    // the cache caps matches one token short of the prompt.
    EXPECT_THROW(servingKvDemandNet(r, 10, 4), PanicError);
}

TEST(ContinuousBatcher, HeadOfLineAdmittedWhenItFitsTotalBudget)
{
    // microBatch=1 with 8 free slots splits the budget 8 ways, which
    // would defer a request needing half the total forever; the
    // head-of-line fallback admits it alone instead.
    ContinuousBatcher b(/*microBatch=*/1, /*kvBudgetTokens=*/80);
    ServeRequest big;
    big.id = 42;
    big.prompt.assign(30, 1);
    big.maxNewTokens = 10;  // demand 40 > 80/8 but <= 80
    b.enqueue(std::move(big));
    std::vector<ServeRequest> round = b.admit(/*freeSlots=*/8, 0);
    ASSERT_EQ(round.size(), 1u);
    EXPECT_EQ(round[0].id, 42);
    EXPECT_EQ(b.pending(), 0u);
}

TEST(Serving, AdmissionReservesCommittedDemandNoMidflightOverflow)
{
    // Admission must budget each active request's *committed* demand
    // (prompt + full generation budget), not its current usage:
    // tight pool (100 request tokens), two requests of demand 60
    // each. Budgeting current usage would admit B while A has only
    // ~11 tokens appended, then fatal mid-flight when their combined
    // growth overflows the pool. With reservation, B waits for A.
    ModelWeights w = ModelWeights::random(tinyMixtral(), 21);
    EngineConfig ec;
    ec.kvQuant = QuantKind::Int8;  // exact token accounting
    ec.kvCapacityTokens = 400;     // / l=4 => 100 request tokens
    ec.kvPageTokens = 4;
    PipelinedEngine eng(w, ec);

    ServeRequest a;
    a.id = 1;
    a.prompt = makePrompt(w.cfg, 10, 1);
    a.maxNewTokens = 50;
    eng.submit(a);
    auto out = eng.step();  // admit A
    EXPECT_TRUE(out.empty());
    ServeRequest b = a;
    b.id = 2;
    b.prompt = makePrompt(w.cfg, 10, 2);
    eng.submit(b);
    eng.step();
    // B deferred: A's reservation leaves only 40 of 100 free.
    EXPECT_EQ(eng.pendingRequests(), 1u);
    EXPECT_EQ(eng.activeRequests(), 1u);
    // The whole trace completes without a KV-capacity fault.
    auto outs = eng.drain();
    EXPECT_EQ(outs.size(), 2u);
    for (const auto &o : outs)
        EXPECT_EQ(o.tokens.size(), 50u);
}

TEST(Serving, OversizedRequestRejectedAtSubmit)
{
    // A request whose KV demand can never fit the engine's whole
    // budget is rejected at submit() with a diagnosis — it must not
    // queue, drain to the front, and then fault from inside a
    // pipeline worker with the slot already occupied.
    ModelConfig cfg = tinyMixtral();
    ModelWeights w = ModelWeights::random(cfg, 6);
    EngineConfig ec;
    ec.kvPageTokens = 4;
    ec.kvCapacityTokens = 64;  // tiny pool: 16 request tokens
    ec.kvQuant = QuantKind::Int8;
    PipelinedEngine eng(w, ec);
    ServeRequest r;
    r.id = 1;
    r.prompt = makePrompt(cfg, 40, 9);
    r.maxNewTokens = 4;  // demand 44 > 16
    EXPECT_THROW(eng.submit(r), FatalError);
    // The engine stays fully usable afterwards.
    ServeRequest ok;
    ok.id = 2;
    ok.prompt = makePrompt(cfg, 4, 10);
    ok.maxNewTokens = 4;  // demand 8 <= 16
    eng.submit(ok);
    std::vector<RequestOutput> out = eng.drain();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].tokens.size(), 4u);
}

} // namespace
} // namespace moelight
