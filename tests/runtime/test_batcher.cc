#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "model/workload.hh"
#include "runtime/batcher.hh"

namespace moelight {
namespace {

std::vector<Request>
makeRequests(std::initializer_list<int> lens, int gen = 16)
{
    std::vector<Request> v;
    int id = 0;
    for (int l : lens)
        v.push_back({id++, l, gen});
    return v;
}

std::size_t
totalRequests(const BatchPlan &p)
{
    std::size_t n = p.aborted.size();
    for (const auto &mb : p.microBatches)
        n += mb.size();
    return n;
}

TEST(Batcher, NoRequestLostOrDuplicated)
{
    auto reqs = makeRequests({10, 20, 30, 40, 50, 60, 70});
    std::size_t count = reqs.size();  // queue is consumed below
    BatchPlan plan = batchRequests(std::move(reqs), 2, 2, 100000);
    EXPECT_EQ(totalRequests(plan), count);
    std::vector<int> ids;
    for (const auto &mb : plan.microBatches)
        for (const auto &r : mb)
            ids.push_back(r.id);
    for (const auto &r : plan.aborted)
        ids.push_back(r.id);
    std::sort(ids.begin(), ids.end());
    std::vector<int> expect(count);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(ids, expect);
}

TEST(Batcher, RespectsMicroBatchCapacity)
{
    auto reqs = makeRequests({5, 5, 5, 5, 5, 5, 5, 5});
    BatchPlan plan = batchRequests(std::move(reqs), 4, 2, 100000);
    for (const auto &mb : plan.microBatches)
        EXPECT_LE(mb.size(), 2u);
    EXPECT_EQ(plan.microBatches.size(), 4u);
}

TEST(Batcher, BalancesTokenCounts)
{
    // Longest-first into the emptiest partition keeps sums balanced:
    // with lengths {100, 90, 10, 5} over 2 partitions of 2, pairs
    // must be (100,5) and (90,10).
    auto reqs = makeRequests({10, 100, 5, 90});
    BatchPlan plan = batchRequests(std::move(reqs), 2, 2, 100000);
    ASSERT_EQ(plan.microBatches.size(), 2u);
    std::vector<int> sums;
    for (const auto &mb : plan.microBatches) {
        int s = 0;
        for (const auto &r : mb)
            s += r.promptLen;
        sums.push_back(s);
    }
    std::sort(sums.begin(), sums.end());
    EXPECT_EQ(sums[0], 100);
    EXPECT_EQ(sums[1], 105);
}

TEST(Batcher, AbortsWhenKvBudgetExceeded)
{
    // cache_size 50: a request of 40 prompt + 16 gen = 56 > 50.
    auto reqs = makeRequests({40, 8});
    BatchPlan plan = batchRequests(std::move(reqs), 1, 4, 50);
    ASSERT_EQ(plan.aborted.size(), 1u);
    EXPECT_EQ(plan.aborted[0].promptLen, 40);
    ASSERT_EQ(plan.microBatches.size(), 1u);
    EXPECT_EQ(plan.microBatches[0][0].promptLen, 8);
}

TEST(Batcher, AbortsOverflowWhenAllPartitionsClosed)
{
    auto reqs = makeRequests({9, 8, 7, 6, 5});
    // 2 partitions x 2 slots = 4 placed; 1 aborted.
    BatchPlan plan = batchRequests(std::move(reqs), 2, 2, 100000);
    EXPECT_EQ(plan.aborted.size(), 1u);
    EXPECT_EQ(plan.aborted[0].promptLen, 5);  // shortest goes last
}

TEST(Batcher, FlushesPartialPartitions)
{
    auto reqs = makeRequests({10, 20, 30});
    BatchPlan plan = batchRequests(std::move(reqs), 2, 4, 100000);
    EXPECT_TRUE(plan.aborted.empty());
    std::size_t placed = 0;
    for (const auto &mb : plan.microBatches)
        placed += mb.size();
    EXPECT_EQ(placed, 3u);
}

TEST(Batcher, GenLenCountsInBudget)
{
    // Two requests of 10 prompt each; gen 100 tokens. Budget 130
    // allows one (10 + 100 = 110) but not two (20 + 200 = 220).
    auto reqs = makeRequests({10, 10}, 100);
    BatchPlan plan = batchRequests(std::move(reqs), 1, 4, 130);
    EXPECT_EQ(plan.aborted.size(), 1u);
}

TEST(Batcher, RealWorkloadBalancedWithinTolerance)
{
    auto reqs = generateRequests(mtbench(64), 512, 9);
    BatchPlan plan = batchRequests(std::move(reqs), 16, 32, 1u << 20);
    ASSERT_EQ(plan.microBatches.size(), 16u);
    std::vector<double> sums;
    for (const auto &mb : plan.microBatches) {
        double s = 0;
        for (const auto &r : mb)
            s += r.promptLen;
        sums.push_back(s);
    }
    double mx = *std::max_element(sums.begin(), sums.end());
    double mn = *std::min_element(sums.begin(), sums.end());
    EXPECT_LT(mx / mn, 1.2);
}

TEST(Batcher, MixedGenLenBudgetsPerRequest)
{
    // Each request budgets with its *own* genLen: a 10-prompt/100-gen
    // request (110) fits a 120 budget, but adding a 10-prompt/10-gen
    // one (total 130) does not — the small one lands in the other
    // partition even though it arrives later.
    std::vector<Request> reqs{{0, 10, 100}, {1, 10, 10}};
    BatchPlan plan = batchRequests(std::move(reqs), 1, 4, 120);
    ASSERT_EQ(plan.microBatches.size(), 1u);
    ASSERT_EQ(plan.microBatches[0].size(), 1u);
    ASSERT_EQ(plan.aborted.size(), 1u);
    EXPECT_EQ(plan.aborted[0].id, 1);
}

TEST(Batcher, ReturnsStableRequestIds)
{
    // Ids pass through placement untouched, so a caller can map the
    // plan back onto its own queue without re-sorting anything.
    std::vector<Request> reqs{{7, 30, 4}, {3, 10, 4}, {11, 20, 4}};
    BatchPlan plan = batchRequests(std::move(reqs), 2, 2, 100000);
    std::vector<int> ids;
    for (const auto &mb : plan.microBatches)
        for (const auto &r : mb)
            ids.push_back(r.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, (std::vector<int>{3, 7, 11}));
}

TEST(Batcher, RejectsBadArgs)
{
    auto reqs = makeRequests({1});
    EXPECT_THROW(batchRequests(std::move(reqs), 0, 1, 10), FatalError);
    EXPECT_THROW(batchRequests(std::move(reqs), 1, 0, 10), FatalError);
    std::vector<Request> neg{{0, 4, -1}};
    EXPECT_THROW(batchRequests(std::move(neg), 1, 1, 10), FatalError);
}

} // namespace
} // namespace moelight
