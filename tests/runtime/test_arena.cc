#include <gtest/gtest.h>

#include "common/logging.hh"
#include "runtime/arena.hh"

namespace moelight {
namespace {

TEST(PageArena, AllocateReleaseCycle)
{
    PageArena a("t", 16, 4);
    EXPECT_EQ(a.freePages(), 4u);
    PageId p = a.allocate();
    EXPECT_EQ(a.usedPages(), 1u);
    a.page(PageId(p))[0] = 42.0f;
    EXPECT_EQ(a.page(PageId(p))[0], 42.0f);
    a.release(PageId(p));
    EXPECT_EQ(a.freePages(), 4u);
}

TEST(PageArena, ExhaustionIsFatal)
{
    PageArena a("t", 8, 2);
    a.allocate();
    a.allocate();
    EXPECT_THROW(a.allocate(), FatalError);
}

TEST(PageArena, DoubleFreePanics)
{
    PageArena a("t", 8, 2);
    PageId p = a.allocate();
    a.release(PageId(p));
    EXPECT_THROW(a.release(PageId(p)), PanicError);
}

TEST(PageArena, AccessUnallocatedPanics)
{
    PageArena a("t", 8, 2);
    EXPECT_THROW(a.page(PageId(0)), PanicError);
    EXPECT_THROW(a.page(PageId(-1)), PanicError);
    EXPECT_THROW(a.page(PageId(5)), PanicError);
}

TEST(PageArena, PagesAreDistinctStorage)
{
    PageArena a("t", 4, 3);
    PageId p1 = a.allocate();
    PageId p2 = a.allocate();
    a.page(PageId(p1))[0] = 1.0f;
    a.page(PageId(p2))[0] = 2.0f;
    EXPECT_EQ(a.page(PageId(p1))[0], 1.0f);
    EXPECT_EQ(a.page(PageId(p2))[0], 2.0f);
}

TEST(PageArena, GeometryChecks)
{
    EXPECT_THROW(PageArena("t", 0, 2), FatalError);
    EXPECT_THROW(PageArena("t", 2, 0), FatalError);
    PageArena a("name", 8, 2);
    EXPECT_EQ(a.pageBytes(), 32u);
    EXPECT_EQ(a.name(), "name");
}

} // namespace
} // namespace moelight
