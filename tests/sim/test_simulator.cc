#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/simulator.hh"

namespace moelight {
namespace {

TEST(Simulator, EmptyGraph)
{
    TaskGraph g;
    SimResult r = simulate(g);
    EXPECT_EQ(r.makespan, 0);
}

TEST(Simulator, SerialChainSumsDurations)
{
    TaskGraph g;
    TaskId a = g.add(ResourceKind::Gpu, 1.0, {}, "a");
    TaskId b = g.add(ResourceKind::Cpu, 2.0, {a}, "b");
    g.add(ResourceKind::Gpu, 3.0, {b}, "c");
    SimResult r = simulate(g);
    EXPECT_EQ(r.makespan, toSimTime(6.0));
}

TEST(Simulator, IndependentTasksOnDistinctResourcesOverlap)
{
    TaskGraph g;
    g.add(ResourceKind::Gpu, 2.0, {}, "g");
    g.add(ResourceKind::Cpu, 2.0, {}, "c");
    g.add(ResourceKind::HtoD, 2.0, {}, "h");
    SimResult r = simulate(g);
    EXPECT_EQ(r.makespan, toSimTime(2.0));
    EXPECT_NEAR(r.utilization[0], 1.0, 1e-9);
    EXPECT_NEAR(r.utilization[1], 1.0, 1e-9);
}

TEST(Simulator, SameResourceSerializes)
{
    TaskGraph g;
    g.add(ResourceKind::Gpu, 1.5, {}, "a");
    g.add(ResourceKind::Gpu, 1.5, {}, "b");
    SimResult r = simulate(g);
    EXPECT_EQ(r.makespan, toSimTime(3.0));
}

TEST(Simulator, PriorityPicksLowerValueFirst)
{
    // Both ready at t=0 on the same resource; the high-priority task
    // (lower value) must run first even though it was added later.
    TaskGraph g;
    g.add(ResourceKind::HtoD, 1.0, {}, "weights", /*priority=*/1);
    g.add(ResourceKind::HtoD, 1.0, {}, "hidden", /*priority=*/0);
    SimResult r = simulate(g);
    ASSERT_EQ(r.trace.size(), 2u);
    EXPECT_EQ(r.trace[0].label, "hidden");
    EXPECT_EQ(r.trace[1].label, "weights");
}

TEST(Simulator, NonPreemptive)
{
    // A long low-priority task that is already running cannot be
    // preempted by a late-arriving high-priority task.
    TaskGraph g;
    g.add(ResourceKind::HtoD, 10.0, {}, "w", 1);
    TaskId trigger = g.add(ResourceKind::Gpu, 1.0, {}, "t");
    g.add(ResourceKind::HtoD, 1.0, {trigger}, "h", 0);
    SimResult r = simulate(g);
    EXPECT_EQ(r.makespan, toSimTime(11.0));
}

TEST(Simulator, DiamondDependency)
{
    TaskGraph g;
    TaskId a = g.add(ResourceKind::Gpu, 1.0, {}, "a");
    TaskId b = g.add(ResourceKind::Cpu, 2.0, {a}, "b");
    TaskId c = g.add(ResourceKind::HtoD, 3.0, {a}, "c");
    g.add(ResourceKind::Gpu, 1.0, {b, c}, "d");
    SimResult r = simulate(g);
    EXPECT_EQ(r.makespan, toSimTime(5.0));
}

TEST(Simulator, StepFinishTracksLastTaskOfStep)
{
    TaskGraph g;
    TaskId a = g.add(ResourceKind::Gpu, 1.0, {}, "s0", 0, 0);
    TaskId b = g.add(ResourceKind::Gpu, 1.0, {a}, "s1a", 0, 1);
    g.add(ResourceKind::Gpu, 1.0, {b}, "s1b", 0, 1);
    SimResult r = simulate(g);
    ASSERT_EQ(r.stepFinish.size(), 2u);
    EXPECT_EQ(r.stepFinish[0], toSimTime(1.0));
    EXPECT_EQ(r.stepFinish[1], toSimTime(3.0));
}

TEST(Simulator, SteadyStepTime)
{
    TaskGraph g;
    TaskId prev = -1;
    for (int s = 0; s < 4; ++s) {
        std::vector<TaskId> deps;
        if (prev >= 0)
            deps.push_back(prev);
        prev = g.add(ResourceKind::Gpu, 2.0, deps,
                     "s" + std::to_string(s), 0, s);
    }
    SimResult r = simulate(g);
    EXPECT_NEAR(r.steadyStepTime(2), 2.0, 1e-9);
}

TEST(Simulator, RejectsUnknownDependency)
{
    TaskGraph g;
    EXPECT_THROW(g.add(ResourceKind::Gpu, 1.0, {5}, "bad"),
                 PanicError);
}

TEST(Simulator, RejectsNegativeDuration)
{
    TaskGraph g;
    EXPECT_THROW(g.add(ResourceKind::Gpu, -1.0, {}, "bad"),
                 FatalError);
}

TEST(Simulator, GanttRendersAllResources)
{
    TaskGraph g;
    g.add(ResourceKind::Gpu, 1.0, {}, "A");
    g.add(ResourceKind::Cpu, 1.0, {}, "B");
    SimResult r = simulate(g);
    std::string chart = renderGantt(r, 40);
    EXPECT_NE(chart.find("GPU"), std::string::npos);
    EXPECT_NE(chart.find("DtoH"), std::string::npos);
    EXPECT_NE(chart.find('A'), std::string::npos);
}

TEST(Simulator, UtilizationBounded)
{
    TaskGraph g;
    TaskId a = g.add(ResourceKind::Gpu, 1.0, {}, "a");
    g.add(ResourceKind::Gpu, 1.0, {a}, "b");
    g.add(ResourceKind::Cpu, 1.0, {a}, "c");
    SimResult r = simulate(g);
    for (double u : r.utilization) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0 + 1e-12);
    }
}

} // namespace
} // namespace moelight
