/**
 * Property-based tests for the discrete-event simulator over random
 * DAGs: makespan lower bounds (critical path, per-resource load),
 * trace consistency (exclusivity, dependency order), determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hh"
#include "sim/simulator.hh"

namespace moelight {
namespace {

struct RandomDag
{
    TaskGraph graph;
    std::vector<Seconds> durations;
    std::vector<std::vector<TaskId>> deps;
    std::vector<ResourceKind> resources;
};

RandomDag
makeRandomDag(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    RandomDag dag;
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<TaskId> deps;
        // Up to 3 random earlier tasks as dependencies.
        std::size_t k = static_cast<std::size_t>(
            rng.uniformInt(0, std::min<std::int64_t>(3,
                static_cast<std::int64_t>(i))));
        for (std::size_t d = 0; d < k; ++d)
            deps.push_back(static_cast<TaskId>(rng.uniformInt(
                0, static_cast<std::int64_t>(i) - 1)));
        std::sort(deps.begin(), deps.end());
        deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
        auto res = static_cast<ResourceKind>(rng.uniformInt(0, 3));
        Seconds dur = rng.uniform(0.001, 0.1);
        int prio = static_cast<int>(rng.uniformInt(0, 2));
        dag.graph.add(res, dur, deps, "t" + std::to_string(i), prio);
        dag.durations.push_back(dur);
        dag.deps.push_back(deps);
        dag.resources.push_back(res);
    }
    return dag;
}

/** Longest dependency chain (ignoring resource contention). */
Seconds
criticalPath(const RandomDag &dag)
{
    std::vector<Seconds> finish(dag.durations.size(), 0.0);
    for (std::size_t i = 0; i < dag.durations.size(); ++i) {
        Seconds start = 0.0;
        for (TaskId d : dag.deps[i])
            start = std::max(start,
                             finish[static_cast<std::size_t>(d)]);
        finish[i] = start + dag.durations[i];
    }
    return *std::max_element(finish.begin(), finish.end());
}

class SimProperties : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SimProperties, MakespanAtLeastCriticalPath)
{
    RandomDag dag = makeRandomDag(GetParam(), 120);
    SimResult r = simulate(dag.graph);
    // Allow 1ns-per-task rounding slack.
    EXPECT_GE(toSeconds(r.makespan) + 1e-6,
              criticalPath(dag));
}

TEST_P(SimProperties, MakespanAtLeastPerResourceLoad)
{
    RandomDag dag = makeRandomDag(GetParam() + 1000, 120);
    SimResult r = simulate(dag.graph);
    std::array<Seconds, kNumResources> load{};
    for (std::size_t i = 0; i < dag.durations.size(); ++i)
        load[static_cast<std::size_t>(dag.resources[i])] +=
            dag.durations[i];
    for (std::size_t res = 0; res < kNumResources; ++res)
        EXPECT_GE(toSeconds(r.makespan) + 1e-6, load[res]);
}

TEST_P(SimProperties, ResourcesNeverDoubleBooked)
{
    RandomDag dag = makeRandomDag(GetParam() + 2000, 100);
    SimResult r = simulate(dag.graph);
    std::array<std::vector<std::pair<SimTime, SimTime>>,
               kNumResources>
        spans;
    for (const auto &e : r.trace)
        spans[static_cast<std::size_t>(e.resource)].push_back(
            {e.start, e.end});
    for (auto &v : spans) {
        std::sort(v.begin(), v.end());
        for (std::size_t i = 1; i < v.size(); ++i)
            EXPECT_GE(v[i].first, v[i - 1].second);
    }
}

TEST_P(SimProperties, DependenciesRespectedInTrace)
{
    RandomDag dag = makeRandomDag(GetParam() + 3000, 100);
    SimResult r = simulate(dag.graph);
    std::map<std::string, std::pair<SimTime, SimTime>> when;
    for (const auto &e : r.trace)
        when[e.label] = {e.start, e.end};
    for (std::size_t i = 0; i < dag.deps.size(); ++i) {
        auto it = when.find("t" + std::to_string(i));
        if (it == when.end())
            continue;  // zero-duration tasks are not traced
        for (TaskId d : dag.deps[i]) {
            auto jt = when.find(
                "t" + std::to_string(static_cast<std::size_t>(d)));
            if (jt == when.end())
                continue;
            EXPECT_GE(it->second.first, jt->second.second)
                << "t" << i << " started before dep t" << d;
        }
    }
}

TEST_P(SimProperties, Deterministic)
{
    RandomDag a = makeRandomDag(GetParam() + 4000, 80);
    RandomDag b = makeRandomDag(GetParam() + 4000, 80);
    SimResult ra = simulate(a.graph);
    SimResult rb = simulate(b.graph);
    EXPECT_EQ(ra.makespan, rb.makespan);
    ASSERT_EQ(ra.trace.size(), rb.trace.size());
    for (std::size_t i = 0; i < ra.trace.size(); ++i) {
        EXPECT_EQ(ra.trace[i].label, rb.trace[i].label);
        EXPECT_EQ(ra.trace[i].start, rb.trace[i].start);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimProperties,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

} // namespace
} // namespace moelight
