#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/logging.hh"
#include "sim/trace_export.hh"

namespace moelight {
namespace {

SimResult
smallTrace()
{
    TaskGraph g;
    TaskId a = g.add(ResourceKind::Gpu, 1.0, {}, "PreAttn(L0,U0)");
    TaskId b = g.add(ResourceKind::DtoH, 0.5, {a}, "QKV(L0,U0)");
    g.add(ResourceKind::Cpu, 2.0, {b}, "Attn \"quoted\\label");
    return simulate(g);
}

TEST(TraceExport, ContainsEventsAndThreadNames)
{
    std::string json = toChromeTrace(smallTrace(), "test-proc");
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("PreAttn(L0,U0)"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"GPU\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"DtoH\""), std::string::npos);
    EXPECT_NE(json.find("test-proc"), std::string::npos);
    // Three X events for three tasks.
    std::size_t count = 0, pos = 0;
    while ((pos = json.find("\"ph\":\"X\"", pos)) !=
           std::string::npos) {
        ++count;
        ++pos;
    }
    EXPECT_EQ(count, 3u);
}

TEST(TraceExport, EscapesLabels)
{
    std::string json = toChromeTrace(smallTrace());
    EXPECT_NE(json.find("\\\"quoted\\\\label"), std::string::npos);
}

TEST(TraceExport, BalancedBracesAndQuotes)
{
    std::string json = toChromeTrace(smallTrace());
    long depth = 0;
    std::size_t quotes = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        char c = json[i];
        if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
            in_string = !in_string;
            ++quotes;
        }
        if (in_string)
            continue;
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(quotes % 2, 0u);
    EXPECT_FALSE(in_string);
}

TEST(TraceExport, WritesFile)
{
    std::string path = "/tmp/moelight_trace_test.json";
    writeChromeTrace(smallTrace(), path);
    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::string content((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("traceEvents"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceExport, RejectsUnwritablePath)
{
    EXPECT_THROW(
        writeChromeTrace(smallTrace(), "/nonexistent-dir/x.json"),
        FatalError);
}

} // namespace
} // namespace moelight
