#include "runtime/transfer_engine.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.hh"

namespace moelight {

TransferEngine::TransferEngine(PageArena &pinned, Bandwidth throttleBw)
    : pinned_(pinned), throttleBw_(throttleBw)
{
    fatalIf(throttleBw < 0.0, "negative throttle bandwidth");
}

TransferStats
TransferEngine::stats() const
{
    TransferStats s;
    s.hostToPinned = hostToPinned_.load();
    s.pinnedToGpu = pinnedToGpu_.load();
    s.gpuToHost = gpuToHost_.load();
    s.hostToGpu = hostToGpu_.load();
    return s;
}

void
TransferEngine::resetStats()
{
    hostToPinned_ = 0;
    pinnedToGpu_ = 0;
    gpuToHost_ = 0;
    hostToGpu_ = 0;
}

void
TransferEngine::throttle(std::size_t bytes) const
{
    if (throttleBw_ <= 0.0)
        return;
    double secs = static_cast<double>(bytes) / throttleBw_;
    std::this_thread::sleep_for(std::chrono::duration<double>(secs));
}

void
TransferEngine::stageToGpu(const float *src, float *dst,
                           std::size_t floats)
{
    std::size_t chunk = pinned_.pageFloats();
    PageId staging = pinned_.allocate();
    float *stage = pinned_.page(staging);
    std::size_t off = 0;
    while (off < floats) {
        std::size_t n = std::min(chunk, floats - off);
        std::memcpy(stage, src + off, n * sizeof(float));
        hostToPinned_ += n * sizeof(float);
        std::memcpy(dst + off, stage, n * sizeof(float));
        pinnedToGpu_ += n * sizeof(float);
        throttle(n * sizeof(float));
        off += n;
    }
    pinned_.release(staging);
}

void
TransferEngine::copyToHost(const float *src, float *dst,
                           std::size_t floats)
{
    std::memcpy(dst, src, floats * sizeof(float));
    gpuToHost_ += floats * sizeof(float);
    throttle(floats * sizeof(float));
}

void
TransferEngine::copyToGpu(const float *src, float *dst,
                          std::size_t floats)
{
    std::memcpy(dst, src, floats * sizeof(float));
    hostToGpu_ += floats * sizeof(float);
    throttle(floats * sizeof(float));
}

} // namespace moelight
