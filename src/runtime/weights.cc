#include "runtime/weights.hh"

#include "common/rng.hh"

namespace moelight {

namespace {

Tensor
randTensor(std::vector<std::size_t> shape, Rng &rng, float scale)
{
    Tensor t(std::move(shape));
    fillUniform(t, rng, -scale, scale);
    return t;
}

} // namespace

ModelWeights
ModelWeights::random(const ModelConfig &cfg, std::uint64_t seed)
{
    cfg.validate();
    Rng rng(seed);
    // Keep activations O(1) through deep stacks: scale ~ 1/sqrt(h1).
    float s = 1.0f / std::sqrt(static_cast<float>(cfg.h1));

    ModelWeights w;
    w.cfg = cfg;
    w.layers.reserve(cfg.l);
    for (std::size_t i = 0; i < cfg.l; ++i) {
        LayerWeights lw;
        lw.attnNorm = Tensor({cfg.h1});
        lw.attnNorm.fill(1.0f);
        lw.wq = randTensor({cfg.nq * cfg.headDim, cfg.h1}, rng, s);
        lw.wk = randTensor({cfg.nkv * cfg.headDim, cfg.h1}, rng, s);
        lw.wv = randTensor({cfg.nkv * cfg.headDim, cfg.h1}, rng, s);
        lw.wo = randTensor({cfg.h1, cfg.nq * cfg.headDim}, rng, s);
        lw.ffnNorm = Tensor({cfg.h1});
        lw.ffnNorm.fill(1.0f);
        lw.router = randTensor({cfg.ne, cfg.h1}, rng, s);
        for (std::size_t e = 0; e < cfg.ne; ++e) {
            lw.w1.push_back(randTensor({cfg.h2, cfg.h1}, rng, s));
            lw.w3.push_back(randTensor({cfg.h2, cfg.h1}, rng, s));
            lw.w2.push_back(randTensor({cfg.h1, cfg.h2}, rng, s));
        }
        w.layers.push_back(std::move(lw));
    }
    w.embedding = randTensor({cfg.vocab, cfg.h1}, rng, 1.0f);
    w.finalNorm = Tensor({cfg.h1});
    w.finalNorm.fill(1.0f);
    w.lmHead = randTensor({cfg.vocab, cfg.h1}, rng, s);
    return w;
}

} // namespace moelight
