/**
 * @file
 * Request batching (paper Appendix A.2, Algorithm 2): sort requests
 * by prompt length descending and greedily place each into the
 * micro-batch partition with the fewest prompt tokens, aborting
 * requests that would blow a partition's KV budget. This keeps
 * micro-batch token counts balanced so the pipeline's kernel launches
 * stay close to the policy's mu.
 */

#ifndef MOELIGHT_RUNTIME_BATCHER_HH
#define MOELIGHT_RUNTIME_BATCHER_HH

#include <cstddef>
#include <vector>

#include "model/workload.hh"

namespace moelight {

/** Output of one batching round. */
struct BatchPlan
{
    /** Closed micro-batches, each at most ubs requests. */
    std::vector<std::vector<Request>> microBatches;
    /** Requests deferred to the next batch (queue overflow or cache
     *  budget exceeded). */
    std::vector<Request> aborted;
};

/**
 * Algorithm 2 verbatim.
 *
 * @param queue     Incoming requests (consumed by value).
 * @param nUb       Number of micro-batch partitions.
 * @param ubs       Max requests per micro-batch.
 * @param genLen    Generation length per request.
 * @param cacheSize Max KV tokens a micro-batch may consume
 *                  (prompt + generated, summed over its requests).
 */
BatchPlan batchRequests(std::vector<Request> queue, std::size_t nUb,
                        std::size_t ubs, int genLen,
                        std::size_t cacheSize);

} // namespace moelight

#endif // MOELIGHT_RUNTIME_BATCHER_HH
