/**
 * @file
 * Request batching (paper Appendix A.2, Algorithm 2): sort requests
 * by prompt length descending and greedily place each into the
 * micro-batch partition with the fewest prompt tokens, aborting
 * requests that would blow a partition's KV budget. This keeps
 * micro-batch token counts balanced so the pipeline's kernel launches
 * stay close to the policy's mu.
 */

#ifndef MOELIGHT_RUNTIME_BATCHER_HH
#define MOELIGHT_RUNTIME_BATCHER_HH

#include <cstddef>
#include <vector>

#include "model/workload.hh"

namespace moelight {

/** Output of one batching round. */
struct BatchPlan
{
    /** Closed micro-batches, each at most ubs requests. */
    std::vector<std::vector<Request>> microBatches;
    /** Requests deferred to the next batch (queue overflow or cache
     *  budget exceeded). */
    std::vector<Request> aborted;
};

/**
 * Algorithm 2. Each request carries its own generation length
 * (Request::genLen), so mixed-genLen queues budget correctly — the
 * uniform-genLen batch of the paper is the special case where every
 * request agrees.
 *
 * The queue is consumed (taken by rvalue: the continuous-batching
 * admission loop calls this between decode rounds, and copying the
 * whole backlog per round was pure waste). Request ids pass through
 * unchanged into the plan, so callers can map placements back to
 * their own bookkeeping without re-sorting or re-identifying
 * anything.
 *
 * @param queue     Incoming requests (consumed).
 * @param nUb       Number of micro-batch partitions.
 * @param ubs       Max requests per micro-batch.
 * @param cacheSize Max KV tokens a micro-batch may consume
 *                  (prompt + generated, summed over its requests).
 */
// NOLINTBEGIN(bugprone-easily-swappable-parameters): count tuple, not
// indices — (micro-batch count, micro-batch size, cache tokens) are
// all sizes by nature; test_batcher pins the argument order.
BatchPlan batchRequests(std::vector<Request> &&queue, std::size_t nUb,
                        std::size_t ubs, std::size_t cacheSize);
// NOLINTEND(bugprone-easily-swappable-parameters)

} // namespace moelight

#endif // MOELIGHT_RUNTIME_BATCHER_HH
