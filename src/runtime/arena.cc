#include "runtime/arena.hh"

#include "common/logging.hh"

namespace moelight {

namespace {

/** Bounds-checked raw offset of @p id (callers verified id is in
 *  [0, numPages), so the cast cannot lose value). */
inline std::size_t
pageIndex(PageId id)
{
    return static_cast<std::size_t>(id.value());
}

} // namespace

PageArena::PageArena(std::string name, std::size_t pageFloats,
                     std::size_t numPages)
    : name_(std::move(name)),
      pageFloats_(pageFloats),
      numPages_(numPages),
      storage_(pageFloats * numPages, 0.0f),
      inUse_(numPages, false)
{
    fatalIf(pageFloats == 0 || numPages == 0,
            "arena '", name_, "' must have non-zero geometry");
    freeList_.reserve(numPages);
    // LIFO free list, lowest ids allocated first. narrowIndex keeps
    // a pool larger than PageId's 31-bit positive range from wrapping
    // ids silently (the old static_cast would).
    for (std::size_t i = numPages; i-- > 0;)
        freeList_.push_back(narrowIndex<PageId>(i));
}

PageId
PageArena::allocate()
{
    MutexLock lk(mu_);
    fatalIf(freeList_.empty(), "arena '", name_,
            "' out of pages (capacity ", numPages_, ")");
    PageId id = freeList_.back();
    freeList_.pop_back();
    inUse_[pageIndex(id)] = true;
    return id;
}

void
PageArena::release(PageId id)
{
    panicIf(id.value() < 0 || pageIndex(id) >= numPages_,
            "arena '", name_, "': bad page id ", id);
    MutexLock lk(mu_);
    panicIf(!inUse_[pageIndex(id)], "arena '", name_,
            "': double free of page ", id);
    inUse_[pageIndex(id)] = false;
    freeList_.push_back(id);
}

float *
PageArena::page(PageId id)
{
    panicIf(id.value() < 0 || pageIndex(id) >= numPages_,
            "arena '", name_, "': bad page id ", id);
    {
        // Lock only for the liveness check; the returned storage is
        // untouched by allocate/release, and each live page has one
        // writer by construction.
        MutexLock lk(mu_);
        panicIf(!inUse_[pageIndex(id)], "arena '",
                name_, "': access to unallocated page ", id);
    }
    return storage_.data() + pageIndex(id) * pageFloats_;
}

const float *
PageArena::page(PageId id) const
{
    return const_cast<PageArena *>(this)->page(id);
}

std::size_t
PageArena::freePages() const
{
    MutexLock lk(mu_);
    return freeList_.size();
}

std::size_t
PageArena::usedPages() const
{
    MutexLock lk(mu_);
    return numPages_ - freeList_.size();
}

} // namespace moelight
