#include "runtime/batcher.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace moelight {

BatchPlan
batchRequests(std::vector<Request> &&queue, std::size_t nUb,
              std::size_t ubs, std::size_t cacheSize)
{
    fatalIf(nUb == 0, "need at least one micro-batch partition");
    fatalIf(ubs == 0, "micro-batch capacity must be positive");
    for (const Request &req : queue)
        fatalIf(req.genLen < 0, "negative generation length (request ",
                req.id, ")");

    BatchPlan plan;
    // Open partitions, their prompt-token sums, and their committed
    // generation budgets (Alg. 2 lines 1-3; the gen sums replace the
    // uniform count * genLen term so every request's own budget
    // counts).
    std::vector<std::vector<Request>> partitions(nUb);
    std::vector<std::size_t> sums(nUb, 0);
    std::vector<std::size_t> genSums(nUb, 0);

    // Line 4: longest prompts first.
    std::stable_sort(queue.begin(), queue.end(),
                     [](const Request &a, const Request &b) {
                         return a.promptLen > b.promptLen;
                     });

    for (const Request &req : queue) {
        // Line 6-7: every partition already closed.
        if (partitions.empty()) {
            plan.aborted.push_back(req);
            continue;
        }
        // Line 8: partition with the fewest prompt tokens.
        std::size_t idx = 0;
        for (std::size_t i = 1; i < partitions.size(); ++i)
            if (sums[i] < sums[idx])
                idx = i;
        // Line 9-10: KV budget check — prompt tokens plus the
        // generation budgets of every request in the partition
        // (including this one).
        std::size_t kv_demand =
            sums[idx] + static_cast<std::size_t>(req.promptLen) +
            genSums[idx] + static_cast<std::size_t>(req.genLen);
        if (kv_demand > cacheSize) {
            plan.aborted.push_back(req);
            continue;
        }
        // Lines 12-13.
        partitions[idx].push_back(req);
        sums[idx] += static_cast<std::size_t>(req.promptLen);
        genSums[idx] += static_cast<std::size_t>(req.genLen);
        // Lines 14-18: close full partitions.
        if (partitions[idx].size() == ubs) {
            plan.microBatches.push_back(std::move(partitions[idx]));
            partitions.erase(partitions.begin() +
                             static_cast<long>(idx));
            sums.erase(sums.begin() + static_cast<long>(idx));
            genSums.erase(genSums.begin() + static_cast<long>(idx));
        }
    }
    // Flush remaining non-empty partitions as (smaller) micro-batches
    // so a final partial round still runs.
    for (auto &p : partitions)
        if (!p.empty())
            plan.microBatches.push_back(std::move(p));
    return plan;
}

} // namespace moelight
