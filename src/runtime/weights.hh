/**
 * @file
 * CPU-resident model weights for the functional runtime. The tiny
 * synthetic models use random weights — throughput/pipelining claims
 * depend only on tensor shapes, and functional correctness is checked
 * against the sequential reference engine (DESIGN.md §2).
 */

#ifndef MOELIGHT_RUNTIME_WEIGHTS_HH
#define MOELIGHT_RUNTIME_WEIGHTS_HH

#include <cstdint>
#include <vector>

#include "model/model_config.hh"
#include "tensor/tensor.hh"

namespace moelight {

/** One transformer layer's parameter set (Mixtral-style). */
struct LayerWeights
{
    Tensor attnNorm;  ///< [h1] RMSNorm gain
    Tensor wq;        ///< [nq*headDim, h1]
    Tensor wk;        ///< [nkv*headDim, h1]
    Tensor wv;        ///< [nkv*headDim, h1]
    Tensor wo;        ///< [h1, nq*headDim]
    Tensor ffnNorm;   ///< [h1] RMSNorm gain
    Tensor router;    ///< [ne, h1]
    std::vector<Tensor> w1;  ///< per expert, [h2, h1]
    std::vector<Tensor> w3;  ///< per expert, [h2, h1]
    std::vector<Tensor> w2;  ///< per expert, [h1, h2]
};

/** Full model parameters. */
struct ModelWeights
{
    ModelConfig cfg;
    std::vector<LayerWeights> layers;
    Tensor embedding;  ///< [vocab, h1]
    Tensor finalNorm;  ///< [h1]
    Tensor lmHead;     ///< [vocab, h1]

    /** Deterministic random initialization (small scale for numeric
     *  stability across long contexts). */
    static ModelWeights random(const ModelConfig &cfg,
                               std::uint64_t seed = 0x10ad);
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_WEIGHTS_HH
