#include "runtime/engine.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>

#include "common/logging.hh"
#include "kernels/attention.hh"
#include "kernels/linalg.hh"
#include "kernels/quant.hh"
#include "kernels/moe_ffn.hh"
#include "kernels/ops.hh"
#include "kernels/router.hh"

namespace moelight {

namespace {

/** Pinned staging ring geometry: pages big enough for the largest
 *  weight tensor, a few of them for overlap. */
std::size_t
maxTensorFloats(const ModelConfig &cfg)
{
    std::size_t mx = cfg.h1 * cfg.h2;             // expert matrices
    mx = std::max(mx, cfg.h1 * cfg.nq * cfg.headDim);
    mx = std::max(mx, cfg.vocab * cfg.h1);        // not staged, safety
    return mx;
}

/** KV allocation granularity for admission accounting: the float
 *  pool allocates page-granular per (sequence, layer) stream; the
 *  quant cache accounts exact tokens. */
std::size_t
kvQuantumFor(const EngineConfig &cfg)
{
    return cfg.kvQuant ? 1 : cfg.kvPageTokens;
}

} // namespace

void
EngineConfig::validate() const
{
    fatalIf(microBatch == 0,
            "EngineConfig.microBatch must be positive");
    fatalIf(kvPageTokens == 0,
            "EngineConfig.kvPageTokens must be positive "
            "(tokens per KV page)");
    fatalIf(kvCapacityTokens == 0,
            "EngineConfig.kvCapacityTokens must be positive "
            "(total KV token budget)");
    fatalIf(lookahead == 0, "EngineConfig.lookahead must be >= 1");
    fatalIf(maxConcurrency == 0,
            "EngineConfig.maxConcurrency must be positive "
            "(concurrent sequence slots)");
    fatalIf(headAgeLimit == 0,
            "EngineConfig.headAgeLimit must be >= 1 (rounds the "
            "admission-queue head may be passed over before younger "
            "requests are held back / actives preempted for it)");
}

/** Per-round decode plumbing; buffers are reused across rounds. */
struct PipelinedEngine::StepState
{
    /** Active slots this round, flattened micro-batch-major; the
     *  micro-batch partition is [ubStart[j], ubStart[j+1]). */
    std::vector<SlotIdx> rowSlot;
    std::vector<std::size_t> ubStart;
    std::size_t numUbs = 0;

    // "GPU" side buffers, one per micro-batch.
    std::vector<std::vector<float>> xGpu;      ///< [ubSize * h1]
    std::vector<std::vector<float>> qkvGpu;    ///< [ubSize * qkvDim]
    std::vector<std::vector<float>> attnGpu;   ///< [ubSize * qDim]
    // Host side.
    std::vector<std::vector<float>> qkvCpu;
    std::vector<std::vector<float>> attnCpu;

    // Pipeline events (fresh every round; rounds are synced).
    std::vector<EventPtr> weightsReady;  ///< per layer
    std::vector<EventPtr> postPerUb;     ///< last Post event per ub
    std::vector<EventPtr> slotBusy;      ///< per weight slot
    std::vector<std::vector<EventPtr>> cattn;  ///< [layer][ub]

    std::size_t
    ubSize(std::size_t j) const
    {
        return ubStart[j + 1] - ubStart[j];
    }
};

PipelinedEngine::PipelinedEngine(const ModelWeights &weights,
                                 EngineConfig cfg)
    // validate() runs before any member that consumes the config, so
    // a bad config fails here with its own message instead of a
    // deep-in-pipeline assert.
    : w_((cfg.validate(), weights.cfg.validate(), weights)),
      cfg_(cfg),
      pinned_("pinned", maxTensorFloats(weights.cfg), 4),
      te_(pinned_, cfg.throttleBw),
      store_(weights, pinned_, 2),
      kvQuantum_(kvQuantumFor(cfg)),
      // Algorithm 2 budgets in request tokens (prompt + generated);
      // the engine's kvCapacityTokens counts token-layer entries, so
      // divide by the layer count. The batcher is constructed from
      // these same two members — the budget check and the engine's
      // reserved-usage report must round identically.
      kvBudgetTokens_(std::max<std::size_t>(
          1, cfg.kvCapacityTokens / weights.cfg.l)),
      batcher_(cfg.microBatch, kvBudgetTokens_, kvQuantum_,
               cfg.headAgeLimit)
{
    const ModelConfig &c = w_.cfg;
    fatalIf(c.l % store_.numSlots() != 0,
            "layer count (", c.l, ") must be a multiple of the weight "
            "slot count (", store_.numSlots(),
            ") for conflict-free double buffering");
    if (cfg_.cpuAttnThreads > 0)
        attnPool_ = std::make_unique<ThreadPool>(cfg_.cpuAttnThreads);

    h1_ = c.h1;
    qDim_ = c.nq * c.headDim;
    kvDim_ = c.nkv * c.headDim;
    qkvDim_ = qDim_ + 2 * kvDim_;
    vocab_ = c.vocab;
    scale_ = 1.0f / std::sqrt(static_cast<float>(c.headDim));

    slots_.resize(cfg_.maxConcurrency);
    slotError_.resize(cfg_.maxConcurrency);
    freeSlots_.resize(cfg_.maxConcurrency);
    for (std::size_t i = 0; i < cfg_.maxConcurrency; ++i)
        freeSlots_[i] = cfg_.maxConcurrency - 1 - i;  // back = slot 0

    if (cfg_.kvQuant)
        qkv_ = std::make_unique<QuantizedKvCache>(
            c, cfg_.maxConcurrency, cfg_.kvPageTokens, *cfg_.kvQuant,
            cfg_.kvCapacityTokens);
    else
        kv_ = std::make_unique<KvCacheManager>(
            c, cfg_.maxConcurrency, cfg_.kvPageTokens,
            cfg_.kvCapacityTokens);

    if (cfg_.prefixCache) {
        PageTable &table =
            qkv_ ? qkv_->pageTable() : kv_->pageTable();
        // Stats report float-equivalent bytes: K+V rows for one token
        // across every layer.
        prefix_ = std::make_unique<PrefixCache>(
            table, c.l * 2 * kvDim_ * sizeof(float));
        // Under pool pressure an append first evicts LRU unreferenced
        // cached pages; only when nothing is evictable does it throw
        // KvExhausted.
        table.setReclaimHook([this] { return prefix_->evictOne(); });
        // Admission budgets only the novel tail of a cached prompt
        // (the shared pages are budgeted once, globally, via
        // pinnedTokens in kvTokensInUse()).
        MutexLock lk(frontMu_);  // object not yet shared; analysis
        batcher_.setDemandOracle([this](const ServeRequest &r) {
            return servingKvDemandNet(r, prefix_->peekMatch(r.prompt),
                                      kvQuantum_);
        });
    }

    std::size_t mb = cfg_.microBatch;
    gpuNormB_.assign(mb * h1_, 0.0f);
    gpuProjB_.assign(mb * h1_, 0.0f);
    gpuRlB_.assign(mb * c.ne, 0.0f);
    gpuFfnB_.assign(mb * h1_, 0.0f);
    gpuQB_.assign(mb * qDim_, 0.0f);
    gpuKB_.assign(mb * kvDim_, 0.0f);
    gpuVB_.assign(mb * kvDim_, 0.0f);
    gpuLogitsB_.assign(mb * vocab_, 0.0f);

    st_ = std::make_unique<StepState>();
    exec_ = std::make_unique<StreamExecutor>();
}

PipelinedEngine::~PipelinedEngine() = default;

void
PipelinedEngine::submit(ServeRequest req)
{
    servingValidateRequest(req, w_.cfg.vocab);
    // A request that can never fit the whole KV budget must fail
    // here with a diagnosis, not later from inside a pipeline worker
    // once the queue drains to it — by then the slot is occupied and
    // the fault aborts the serving round. Every request accepted
    // here is eventually admittable (aged head-of-line included).
    std::size_t demand = servingKvDemand(req, kvQuantum_);
    fatalIf(demand > kvBudgetTokens_,
            "request ", req.id, " needs ", demand,
            " KV tokens (prompt ", req.prompt.size(),
            " + generation budget ", req.maxNewTokens,
            ", rounded to ", kvQuantum_, "-token pages) but the "
            "engine's KV capacity is ", kvBudgetTokens_,
            " request tokens (kvCapacityTokens / layer count)");
    servingStampSubmitted(req);
    MutexLock lk(frontMu_);
    batcher_.enqueue(std::move(req));
}

bool
PipelinedEngine::cancel(std::int64_t id)
{
    MutexLock lk(frontMu_);
    // activeIds_ mirrors the driver-owned slots_ so this probe never
    // races the pipeline. Found ids stay in flight until the next
    // step(), which retires them as Cancelled and releases their
    // pages.
    bool found = batcher_.contains(id) || activeIds_.count(id) != 0;
    if (found)
        cancelled_.insert(id);
    return found;
}

std::size_t
PipelinedEngine::pendingRequests() const
{
    MutexLock lk(frontMu_);
    return batcher_.pending();
}

std::size_t
PipelinedEngine::activeRequests() const
{
    MutexLock lk(frontMu_);
    return activeIds_.size();
}

std::size_t
PipelinedEngine::kvUsedPages() const
{
    return qkv_ ? qkv_->usedPages() : kv_->usedPages();
}

std::size_t
PipelinedEngine::kvContextLen(SlotIdx slot) const
{
    SeqId seq = seqOf(slot);
    return qkv_ ? qkv_->contextLen(seq, LayerIdx(0))
                : kv_->contextLen(seq, LayerIdx(0));
}

std::size_t
PipelinedEngine::kvTokensInUse() const
{
    // Reserved demand of every active request, in the request-token
    // units Algorithm 2 budgets with (see the batcher_ construction).
    // Budgeting *current* usage instead would over-admit — an
    // admitted sequence keeps growing toward its budget, and the
    // later appends would overflow the pool mid-flight, killing
    // every in-flight request. Early (stop-token) retirement just
    // hands reserved capacity back sooner.
    //
    // With the prefix cache on, each slot reserves only its private
    // (novel-tail) demand and the shared cached pages are charged
    // once, globally: pinnedTokens counts every prefix page exactly
    // once however many sequences attach to it. Together they bound
    // physical residency — private streams never outgrow their net
    // reservation, so sum(net) + pinned covers the pool. Counting the
    // pinned-but-unreferenced pages too is deliberately conservative:
    // admission defers instead of relying on eviction, and the
    // reclaim hook frees them if an append does hit the wall.
    std::size_t reserved = 0;
    for (const auto &s : slots_)
        if (s)
            reserved += s->reservedTokens;
    if (prefix_) {
        const PageTable &t =
            qkv_ ? qkv_->pageTable() : kv_->pageTable();
        reserved += t.pinnedTokens() / w_.cfg.l;
    }
    return reserved;
}

std::size_t
PipelinedEngine::kvCachedPages() const
{
    return qkv_ ? qkv_->cachedPages() : kv_->cachedPages();
}

void
PipelinedEngine::noteKvUsage()
{
    kvPeakPages_ = std::max(kvPeakPages_, kvUsedPages());
}

void
PipelinedEngine::freeSlotKv(SlotIdx slot)
{
    // A request that faulted before its first append holds no KV
    // state; freeing it anyway would (rightly) trip the caches'
    // double-free detection.
    SeqId seq = seqOf(slot);
    if (qkv_) {
        if (qkv_->sequenceLive(seq))
            qkv_->freeSequence(seq);
    } else {
        if (kv_->sequenceLive(seq))
            kv_->freeSequence(seq);
    }
}

void
PipelinedEngine::ensureAttnScratch(std::size_t ctx)
{
    if (ctx <= scratchCtx_)
        return;
    // Grow geometrically so steadily lengthening contexts don't
    // reallocate every decode round.
    std::size_t target = std::max(ctx, scratchCtx_ * 2);
    scratchCtx_ = target;
    const ModelConfig &c = w_.cfg;
    // Quant scratch is a superset of the float kernel's (score rows
    // plus the K/V dequant stash), so one sizing covers both modes.
    std::size_t per = gqaQuantAttnScratchFloats(
        c.nq, c.nkv, target, c.headDim, cfg_.kvPageTokens);
    cpuAttnScratch_.assign(per, 0.0f);
    std::size_t attn_slots =
        attnPool_ ? attnPool_->maxParallelism() : 1;
    cpuBatchScratch_.assign(attn_slots * per, 0.0f);
}

std::vector<RequestOutput>
PipelinedEngine::step()
{
    std::vector<RequestOutput> finished;
    // Lifecycle first: cancellations and expired deadlines retire
    // (and release pages) before admission, so freed capacity is
    // available to this very round's admission decision.
    processLifecycle(finished);
    admitPending(finished);
    decodeActive(finished);
    return finished;
}

void
PipelinedEngine::noteSlotFault(SlotIdx slot, const char *what)
{
    MutexLock lk(faultMu_);
    if (slotError_[slot.value()].empty())
        slotError_[slot.value()] = what;
}

bool
PipelinedEngine::slotFaulted(SlotIdx slot) const
{
    MutexLock lk(faultMu_);
    return !slotError_[slot.value()].empty();
}

void
PipelinedEngine::maybeRetire(SlotIdx slot,
                             std::vector<RequestOutput> &finished)
{
    ActiveSeq &a = *slots_[slot.value()];
    if (!servingReachedEnd(a.req, a.tokens))
        return;
    // The finish reason is judged against the (possibly resumed)
    // request's own budget, but the reported tokens span the whole
    // original request: pre-preemption tokens first.
    RequestOutput r = servingMakeOutput(
        a.req, std::move(a.tokens), a.prefillSeconds, a.decodeSeconds);
    if (!a.saved.empty())
        r.tokens.insert(r.tokens.begin(), a.saved.begin(),
                        a.saved.end());
    r.preemptions = a.preemptions;
    // Early retirement: the pages go back to the pool *now*, while
    // the co-batch keeps decoding, so a freed slot can take the next
    // queued request at the following round's admission.
    freeSlotKv(slot);
    {
        MutexLock lk(frontMu_);
        activeIds_.erase(a.req.id);
    }
    slots_[slot.value()].reset();
    freeSlots_.insert(
        std::lower_bound(freeSlots_.begin(), freeSlots_.end(),
                         slot.value(),
                         std::greater<std::size_t>()),
        slot.value());
    finished.push_back(std::move(r));
}

void
PipelinedEngine::retireTerminal(SlotIdx slot, FinishReason reason,
                                std::string errorMessage,
                                std::vector<RequestOutput> &finished)
{
    ActiveSeq &a = *slots_[slot.value()];
    std::vector<int> tokens = std::move(a.saved);
    tokens.insert(tokens.end(), a.tokens.begin(), a.tokens.end());
    RequestOutput r = servingMakeTerminalOutput(
        a.req, std::move(tokens), reason, std::move(errorMessage),
        a.prefillSeconds, a.decodeSeconds);
    r.preemptions = a.preemptions;
    freeSlotKv(slot);
    {
        MutexLock lk(frontMu_);
        activeIds_.erase(a.req.id);
    }
    slots_[slot.value()].reset();
    freeSlots_.insert(
        std::lower_bound(freeSlots_.begin(), freeSlots_.end(),
                         slot.value(),
                         std::greater<std::size_t>()),
        slot.value());
    {
        MutexLock lk(faultMu_);
        slotError_[slot.value()].clear();
    }
    finished.push_back(std::move(r));
}

void
PipelinedEngine::processLifecycle(std::vector<RequestOutput> &finished)
{
    // Snapshot the cancellation set: ids cancelled after this point
    // are simply handled by the next round, and operating on a local
    // copy keeps the driver lock-free below (retire sites take their
    // own brief front-end locks; holding frontMu_ across them would
    // self-deadlock).
    std::unordered_set<std::int64_t> cancelled;
    {
        MutexLock lk(frontMu_);
        cancelled.swap(cancelled_);
    }
    // Queued requests (including preempted ones awaiting
    // re-admission): cancellation and deadlines must not wait for
    // admission.
    std::vector<ServeRequest> removed;
    {
        MutexLock lk(frontMu_);
        if (batcher_.pending() > 0)
            removed = batcher_.removeIf([&](const ServeRequest &r) {
                return cancelled.count(r.id) != 0 ||
                       servingDeadlineExpired(r);
            });
    }
    for (ServeRequest &r : removed) {
        FinishReason why = cancelled.count(r.id)
                               ? FinishReason::Cancelled
                               : FinishReason::TimedOut;
        cancelled.erase(r.id);
        ResumeState rs;
        auto it = resume_.find(r.id);
        if (it != resume_.end()) {
            rs = std::move(it->second);
            resume_.erase(it);
        }
        RequestOutput out = servingMakeTerminalOutput(
            r, std::move(rs.saved), why, "", rs.prefillSeconds,
            rs.decodeSeconds);
        out.preemptions = rs.preemptions;
        finished.push_back(std::move(out));
    }
    // Active sequences: retire and release pages immediately.
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
        if (!slots_[slot])
            continue;
        const ServeRequest &req = slots_[slot]->req;
        if (cancelled.count(req.id)) {
            cancelled.erase(req.id);
            retireTerminal(SlotIdx(slot), FinishReason::Cancelled,
                           "", finished);
        } else if (servingDeadlineExpired(req)) {
            retireTerminal(SlotIdx(slot), FinishReason::TimedOut,
                           "", finished);
        }
    }
    // Anything left in the snapshot was stale by the time this round
    // ran (the request had already finished); cancel() only admits
    // known ids, so the leftovers just drop with the local set.
}

void
PipelinedEngine::preemptYoungest()
{
    // Victim: the youngest admission (highest stamp) — it has the
    // least decode progress to recompute.
    std::size_t victim = slots_.size();
    std::uint64_t best = 0;
    for (std::size_t slot = 0; slot < slots_.size(); ++slot)
        if (slots_[slot] &&
            (victim == slots_.size() ||
             slots_[slot]->admitStamp > best)) {
            victim = slot;
            best = slots_[slot]->admitStamp;
        }
    panicIf(victim == slots_.size(),
            "preemption requested with no active sequences");

    ActiveSeq &a = *slots_[victim];
    ResumeState rs;
    rs.saved = std::move(a.saved);
    rs.saved.insert(rs.saved.end(), a.tokens.begin(), a.tokens.end());
    rs.preemptions = a.preemptions + 1;
    rs.prefillSeconds = a.prefillSeconds;
    rs.decodeSeconds = a.decodeSeconds;

    // Rebuild the request for prefill-recompute: the prompt absorbs
    // every token generated so far and the budget shrinks by the same
    // count, so total KV demand (and the admission accounting) is
    // unchanged. Re-prefilling prompt+generated replays the exact
    // per-position arithmetic of the interrupted decode — the prefill
    // bootstrap then re-samples the next token from the same hidden
    // state the decode round would have used, which is what makes the
    // resumed token stream bit-identical to an uncontended run.
    ServeRequest req = std::move(a.req);
    req.prompt.insert(req.prompt.end(), a.tokens.begin(),
                      a.tokens.end());
    req.maxNewTokens -= static_cast<int>(a.tokens.size());
    panicIf(req.maxNewTokens <= 0,
            "preempting a request that should have retired");

    freeSlotKv(SlotIdx(victim));
    slots_[victim].reset();
    freeSlots_.insert(
        std::lower_bound(freeSlots_.begin(), freeSlots_.end(), victim,
                         std::greater<std::size_t>()),
        victim);
    resume_[req.id] = std::move(rs);
    ++preemptions_;
    {
        // One critical section for the active→queued hand-off, so a
        // concurrent cancel() finds the id on one side or the other.
        MutexLock lk(frontMu_);
        activeIds_.erase(req.id);
        batcher_.requeue(std::move(req));
    }
}

void
PipelinedEngine::admitPending(std::vector<RequestOutput> &finished)
{
    std::vector<ServeRequest> admitted;
    {
        MutexLock lk(frontMu_);
        if (batcher_.pending() == 0)
            return;
        admitted = batcher_.admit(freeSlots_.size(), kvTokensInUse());
    }
    if (admitted.empty()) {
        // The planner deferred everything. With sequences still
        // generating that's usually back-pressure — retry next round.
        // But once the queue head has aged past the limit, waiting on
        // natural retirement alone can starve it indefinitely behind
        // long-budget actives: preempt the youngest active sequences
        // (graceful degradation — their work is recomputed, not
        // lost) until the head fits. With the engine idle, deferral
        // would be permanent starvation (a lone request bigger than
        // the whole planner budget): force the oldest through and let
        // the KV pool itself diagnose a true overflow.
        for (;;) {
            bool headAged;
            {
                MutexLock lk(frontMu_);
                headAged = batcher_.headAged();
            }
            if (!headAged || activeRequests() == 0)
                break;
            preemptYoungest();
            MutexLock lk(frontMu_);
            admitted =
                batcher_.admit(freeSlots_.size(), kvTokensInUse());
            if (!admitted.empty())
                break;
        }
        if (admitted.empty()) {
            if (activeRequests() > 0)
                return;
            MutexLock lk(frontMu_);
            admitted.push_back(batcher_.admitOne());
        }
    }
    auto t0 = std::chrono::steady_clock::now();
    std::vector<SlotIdx> fresh;
    fresh.reserve(admitted.size());
    for (ServeRequest &req : admitted) {
        panicIf(freeSlots_.empty(),
                "admission exceeded free sequence slots");
        std::size_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        ActiveSeq a;
        a.req = std::move(req);
        a.admitStamp = ++admitCounter_;
        // A preempted request re-entering: restore what it had
        // already produced and the wall time it had accumulated.
        auto it = resume_.find(a.req.id);
        if (it != resume_.end()) {
            a.saved = std::move(it->second.saved);
            a.preemptions = it->second.preemptions;
            a.prefillSeconds = it->second.prefillSeconds;
            a.decodeSeconds = it->second.decodeSeconds;
            resume_.erase(it);
        }
        slots_[slot].emplace(std::move(a));
        ActiveSeq &as = *slots_[slot];
        // Prefix-cache hit: attach the cached pages read-only (one
        // refcount bump per page per layer) so prefill starts at the
        // matched position. The reservation freezes the private
        // (novel-tail) demand now — a preempted or retired sharer
        // later releases exactly this, never the shared pages.
        if (prefix_)
            as.prefixLen = prefix_->attach(seqOf(SlotIdx(slot)),
                                           as.req.prompt);
        as.reservedTokens =
            servingKvDemandNet(as.req, as.prefixLen, kvQuantum_);
        fresh.push_back(SlotIdx(slot));
    }
    {
        // Register before prefill so a cancel() racing the admission
        // round still finds the id (it retires next lifecycle pass).
        MutexLock lk(frontMu_);
        for (SlotIdx slot : fresh)
            activeIds_.insert(slots_[slot.value()]->req.id);
    }
    // Round-scope fault capture: weight-stream or task-body faults
    // surface at sync() via the executor's firstError_; they can only
    // have corrupted this round's prefill state, so every fresh slot
    // retires with Error while already-active sequences (untouched by
    // prefill) continue.
    std::string roundError;
    try {
        prefillSlots(fresh);
        exec_->sync();
    } catch (const std::exception &e) {
        roundError = e.what();
    }
    prefillHidden_.clear();
    double secs = servingSecondsSince(t0);
    noteKvUsage();
    for (SlotIdx slot : fresh) {
        std::string slotMsg;
        {
            MutexLock lk(faultMu_);
            slotMsg = slotError_[slot.value()];
        }
        if (!slotMsg.empty() || !roundError.empty()) {
            retireTerminal(slot, FinishReason::Error,
                           slotMsg.empty() ? roundError : slotMsg,
                           finished);
            continue;
        }
        slots_[slot.value()]->prefillSeconds += secs;
        // Cache the prompt's closed pages (pin; idempotent for pages
        // already in the tree) before maybeRetire can free the slot —
        // pinned pages survive their inserting sequence.
        if (prefix_)
            prefix_->insert(seqOf(slot),
                            slots_[slot.value()]->req.prompt);
        maybeRetire(slot, finished);
    }
}

void
PipelinedEngine::prefillSlots(const std::vector<SlotIdx> &slots)
{
    const ModelConfig &cfg = w_.cfg;
    std::size_t n = slots.size();

    // Initialize per-sequence hidden states with embeddings — only
    // the novel tail beyond any attached prefix: the cached pages
    // already hold those positions' K/V, and no later position's
    // output depends on a prefix position's hidden state except
    // through them. The tail is never empty (the prefix cache matches
    // at most prompt-1 tokens), so the bootstrap below always has the
    // last prompt position's hidden state to sample from.
    prefillHidden_.assign(n, {});
    std::size_t max_prompt = 0;
    for (std::size_t a = 0; a < n; ++a) {
        const ActiveSeq &as = *slots_[slots[a].value()];
        const std::vector<int> &prompt = as.req.prompt;
        // Scratch must still cover the full context: attention at
        // tail position p spans prefix + p + 1 positions.
        max_prompt = std::max(max_prompt, prompt.size());
        std::size_t tail = prompt.size() - as.prefixLen;
        prefillHidden_[a].resize(tail * h1_);
        for (std::size_t t = 0; t < tail; ++t)
            std::memcpy(
                prefillHidden_[a].data() + t * h1_,
                w_.embedding.row(static_cast<std::size_t>(
                    prompt[as.prefixLen + t])),
                h1_ * sizeof(float));
    }
    ensureAttnScratch(max_prompt + 1);
    if (qkv_ && max_prompt > prefillScratchLen_) {
        prefillScratchLen_ = max_prompt;
        // One slot per attention-pool worker: the fused prefill
        // kernel fans KV heads across the pool.
        std::size_t worker_slots =
            attnPool_ ? attnPool_->maxParallelism() : 1;
        cpuPrefillScratch_.assign(
            worker_slots * gqaQuantPrefillAttnScratchFloats(
                               cfg.nq, cfg.nkv, max_prompt,
                               cfg.headDim, cfg_.kvPageTokens),
            0.0f);
    }
    // Reserve the per-layer working buffers once to the longest
    // prompt: the per-seq resizes inside the zigzag tasks then never
    // reallocate, and the buffers persist across layers and rounds.
    pfNorm_.reserve(max_prompt * h1_);
    pfQ_.reserve(max_prompt * qDim_);
    pfK_.reserve(max_prompt * kvDim_);
    pfV_.reserve(max_prompt * kvDim_);
    pfAttn_.reserve(max_prompt * qDim_);
    pfProj_.reserve(max_prompt * h1_);
    pfRl_.reserve(max_prompt * cfg.ne);
    pfFfn_.reserve(max_prompt * h1_);
    pfRouting_.reserve(max_prompt);

    // Zigzag layer-by-layer prefill (§4): load layer weights, then run
    // every admitted sequence's tokens through that layer on the GPU
    // queue, appending KV as we go. Weight loads for layer i+2 wait on
    // layer i's compute (slot reuse).
    std::vector<SlotIdx> admitted(slots);  // outlives the tasks
    std::vector<EventPtr> compute_done(cfg.l);
    for (std::size_t li = 0; li < cfg.l; ++li) {
        std::vector<EventPtr> load_deps;
        if (li >= 2 && compute_done[li - 2])
            load_deps.push_back(compute_done[li - 2]);
        EventPtr loaded = exec_->submit(
            ResourceKind::HtoD, std::move(load_deps),
            [this, li] { store_.loadLayer(LayerIdx(li), te_); });

        std::vector<EventPtr> deps{loaded};
        if (li > 0)
            deps.push_back(compute_done[li - 1]);
        compute_done[li] = exec_->submit(
            ResourceKind::Gpu, std::move(deps),
            [this, li, admitted] {
                const ModelConfig &c = w_.cfg;
                // Whole-sequence batched projections instead of
                // per-token GEMV chains; only the attention/KV-append
                // walk stays per token (causal order). The attention
                // pool is idle during prefill (the CPU queue has no
                // work yet), so the batched GEMMs and the MoE FFN
                // borrow it. Per-token arithmetic is unchanged, so
                // tokens stay bit-identical to the reference engine.
                ThreadPool *pool = attnPool_.get();
                KvViewStorage view;
                // Working buffers are engine members, reserved to the
                // longest prompt in prefillSlots(); only this queue's
                // serialized tasks touch them, so the per-seq resizes
                // below never reallocate.
                std::vector<float> &norm_all = pfNorm_;
                std::vector<float> &q_all = pfQ_;
                std::vector<float> &k_all = pfK_;
                std::vector<float> &v_all = pfV_;
                std::vector<float> &attn_all = pfAttn_;
                std::vector<float> &proj_all = pfProj_;
                std::vector<float> &rl_all = pfRl_;
                std::vector<float> &ffn_all = pfFfn_;
                std::vector<TokenRouting> &routing = pfRouting_;
                auto runSeq = [&](std::size_t a, SlotIdx slot) {
                    // len counts only the novel tail; an attached
                    // prefix (prefixLen > 0) already sits in the KV
                    // cache, so this walk starts mid-context.
                    std::size_t len =
                        prefillHidden_[a].size() / h1_;
                    std::size_t prefix =
                        slots_[slot.value()]->prefixLen;
                    float *xs = prefillHidden_[a].data();
                    norm_all.resize(len * h1_);
                    q_all.resize(len * qDim_);
                    k_all.resize(len * kvDim_);
                    v_all.resize(len * kvDim_);
                    attn_all.resize(len * qDim_);
                    proj_all.resize(len * h1_);
                    rl_all.resize(len * c.ne);
                    ffn_all.resize(len * h1_);
                    for (std::size_t t = 0; t < len; ++t)
                        rmsNorm(xs + t * h1_,
                                store_.tensor(LayerIdx(li), "attn_norm"),
                                norm_all.data() + t * h1_, h1_);
                    matmulTransposedB(norm_all.data(),
                                      store_.tensor(LayerIdx(li), "wq"),
                                      q_all.data(), len, h1_,
                                      qDim_, pool);
                    matmulTransposedB(norm_all.data(),
                                      store_.tensor(LayerIdx(li), "wk"),
                                      k_all.data(), len, h1_,
                                      kvDim_, pool);
                    matmulTransposedB(norm_all.data(),
                                      store_.tensor(LayerIdx(li), "wv"),
                                      v_all.data(), len, h1_,
                                      kvDim_, pool);
                    if (qkv_ && prefix == 0) {
                        // Append the whole prompt, then run the fused
                        // causal prefill kernel once: each closed
                        // page dequantizes once per KV head instead
                        // of once per later position, and the kernel
                        // replays the per-token append walk bit-for-
                        // bit (the reference engine's per-token fused
                        // decode stays the oracle for this).
                        for (std::size_t t = 0; t < len; ++t)
                            qkv_->append(seqOf(slot), LayerIdx(li),
                                         k_all.data() + t * kvDim_,
                                         v_all.data() + t * kvDim_);
                        // KV heads fan across the attention pool —
                        // it idles during prefill otherwise (the CPU
                        // queue has no work yet) — preserving the
                        // per-position bit-exact walk.
                        gqaPrefillAttentionQuantFused(
                            q_all.data(), k_all.data(), v_all.data(),
                            len, c.nq,
                            qkv_->makeQuantView(seqOf(slot),
                                                LayerIdx(li)),
                            attn_all.data(), scale_,
                            cpuPrefillScratch_, pool);
                    } else if (qkv_) {
                        // Prefix hit: the fused prefill kernel's walk
                        // assumes it replays the cache from empty, so
                        // a mid-context prefill runs the per-token
                        // fused decode walk instead — append one
                        // position, attend over the grown view. This
                        // is the exact walk the fused kernel is
                        // bit-identical to, just starting at
                        // `prefix`, so hot tokens match cold ones.
                        for (std::size_t t = 0; t < len; ++t) {
                            qkv_->append(seqOf(slot), LayerIdx(li),
                                         k_all.data() + t * kvDim_,
                                         v_all.data() + t * kvDim_);
                            gqaDecodeAttentionQuantFused(
                                q_all.data() + t * qDim_, c.nq,
                                qkv_->makeQuantView(seqOf(slot),
                                                    LayerIdx(li)),
                                attn_all.data() + t * qDim_,
                                scale_, cpuAttnScratch_);
                        }
                    } else {
                        for (std::size_t t = 0; t < len; ++t) {
                            kv_->append(seqOf(slot), LayerIdx(li),
                                        k_all.data() + t * kvDim_,
                                        v_all.data() + t * kvDim_);
                            // The page-pointer list only changes when
                            // an append opens a new page; between
                            // boundaries just advance the context
                            // length instead of rebuilding the view.
                            // Keyed off the cache's actual length
                            // (not t) so a prefill over a non-empty
                            // cache — prefix reuse, say — stays
                            // correct; t == 0 still always builds
                            // this (slot, layer)'s first view.
                            std::size_t ctx_len = kv_->contextLen(
                                seqOf(slot), LayerIdx(li));
                            if (t == 0 ||
                                (ctx_len - 1) % cfg_.kvPageTokens == 0)
                                kv_->makeView(seqOf(slot),
                                              LayerIdx(li), view);
                            else
                                view.view.contextLen = ctx_len;
                            gqaDecodeAttention(
                                q_all.data() + t * qDim_, c.nq,
                                view.view,
                                attn_all.data() + t * qDim_,
                                scale_, cpuAttnScratch_);
                        }
                    }
                    matmulTransposedB(attn_all.data(),
                                      store_.tensor(LayerIdx(li), "wo"),
                                      proj_all.data(), len, qDim_,
                                      h1_, pool);
                    for (std::size_t t = 0; t < len; ++t) {
                        accumulate(xs + t * h1_,
                                   proj_all.data() + t * h1_, h1_);
                        rmsNorm(xs + t * h1_,
                                store_.tensor(LayerIdx(li), "ffn_norm"),
                                norm_all.data() + t * h1_, h1_);
                    }
                    matmulTransposedB(norm_all.data(),
                                      store_.tensor(LayerIdx(li), "router"),
                                      rl_all.data(), len, h1_, c.ne,
                                      pool);
                    routing.resize(len);
                    for (std::size_t t = 0; t < len; ++t)
                        routing[t] = routeTopK(
                            {rl_all.data() + t * c.ne, c.ne}, c.k);
                    moeFfnForward(norm_all.data(), routing,
                                  store_.resolver(LayerIdx(li)), len, h1_,
                                  c.h2, ffn_all.data(), pool);
                    for (std::size_t t = 0; t < len; ++t)
                        accumulate(xs + t * h1_,
                                   ffn_all.data() + t * h1_, h1_);
                };
                for (std::size_t a = 0; a < admitted.size(); ++a) {
                    SlotIdx slot = admitted[a];
                    // Request-scope fault containment: a fault in
                    // one sequence's prefill (KV append, kernel)
                    // marks only that slot; co-admitted neighbours
                    // are untouched because every per-sequence walk
                    // is independent. A slot that faulted in an
                    // earlier layer is skipped outright — its KV
                    // stream is already short, and attention over it
                    // would read garbage.
                    if (slotFaulted(slot))
                        continue;
                    try {
                        runSeq(a, slot);
                    } catch (const FatalError &e) {
                        noteSlotFault(slot, e.what());
                    }
                }
            });
    }

    // Bootstrap: sample each admitted request's first generated token
    // from its prompt's last hidden state. The normed rows pool into
    // ONE lmHead GEMM (bit-identical per row to the m=1 GEMVs this
    // replaces; the attention pool is idle between prefill layers, so
    // the vocab-wide GEMM borrows it).
    exec_->submit(
        ResourceKind::Gpu, {compute_done[cfg.l - 1]},
        [this, admitted] {
            std::size_t n = admitted.size();
            bootNorm_.resize(n * h1_);
            bootLogits_.resize(n * vocab_);
            for (std::size_t a = 0; a < n; ++a) {
                std::size_t len = prefillHidden_[a].size() / h1_;
                rmsNorm(prefillHidden_[a].data() + (len - 1) * h1_,
                        w_.finalNorm.data(),
                        bootNorm_.data() + a * h1_, h1_);
            }
            matmulTransposedB(bootNorm_.data(), w_.lmHead.data(),
                              bootLogits_.data(), n, h1_, vocab_,
                              attnPool_.get());
            for (std::size_t a = 0; a < n; ++a) {
                // A faulted sequence's hidden state is garbage (its
                // prefill was cut short); it retires with Error
                // after sync, so don't sample a token for it.
                if (slotFaulted(admitted[a]))
                    continue;
                int next = static_cast<int>(
                    argmax({bootLogits_.data() + a * vocab_,
                            vocab_}));
                ActiveSeq &as = *slots_[admitted[a].value()];
                as.tokens.push_back(next);
                as.next = next;
            }
        });
}

void
PipelinedEngine::decodeActive(std::vector<RequestOutput> &finished)
{
    StepState &st = *st_;
    st.rowSlot.clear();
    for (std::size_t slot = 0; slot < slots_.size(); ++slot)
        if (slots_[slot])
            st.rowSlot.push_back(SlotIdx(slot));
    if (st.rowSlot.empty())
        return;

    auto t0 = std::chrono::steady_clock::now();
    std::size_t n_act = st.rowSlot.size();
    st.numUbs = (n_act + cfg_.microBatch - 1) / cfg_.microBatch;
    st.ubStart.assign(st.numUbs + 1, 0);
    for (std::size_t j = 0; j <= st.numUbs; ++j)
        st.ubStart[j] = std::min(j * cfg_.microBatch, n_act);

    st.xGpu.resize(st.numUbs);
    st.qkvGpu.resize(st.numUbs);
    st.attnGpu.resize(st.numUbs);
    st.qkvCpu.resize(st.numUbs);
    st.attnCpu.resize(st.numUbs);
    for (std::size_t j = 0; j < st.numUbs; ++j) {
        std::size_t nj = st.ubSize(j);
        st.xGpu[j].resize(nj * h1_);
        st.qkvGpu[j].resize(nj * qkvDim_);
        st.attnGpu[j].resize(nj * qDim_);
        st.qkvCpu[j].resize(nj * qkvDim_);
        st.attnCpu[j].resize(nj * qDim_);
        // Each row's x is the embedding of that sequence's last
        // sampled token — the same bytes the legacy lockstep loop
        // carried forward in place.
        for (std::size_t r = 0; r < nj; ++r) {
            SlotIdx slot = st.rowSlot[st.ubStart[j] + r];
            std::memcpy(st.xGpu[j].data() + r * h1_,
                        w_.embedding.row(static_cast<std::size_t>(
                            slots_[slot.value()]->next)),
                        h1_ * sizeof(float));
        }
    }

    std::size_t max_ctx = 1;
    for (SlotIdx slot : st.rowSlot)
        max_ctx = std::max(max_ctx, kvContextLen(slot) + 1);
    ensureAttnScratch(max_ctx);

    std::size_t layers = w_.cfg.l;
    st.weightsReady.assign(layers, nullptr);
    st.postPerUb.assign(st.numUbs, nullptr);
    st.slotBusy.assign(store_.numSlots(), nullptr);
    st.cattn.assign(layers, std::vector<EventPtr>(st.numUbs));

    // Preload layers 0 and 1; the prior round (or the admission
    // prefill) synced, so the weight slots are free. Readiness is the
    // task's own completion event — the worker signals it on every
    // path, error and injected-fault included, so a failed load can
    // never leave dependents waiting (a hand-signaled event inside
    // the body would: an exec.task fault kills the body before its
    // first statement). The error itself surfaces at sync().
    for (std::size_t t = 0; t < std::min<std::size_t>(2, layers);
         ++t)
        st.weightsReady[t] = exec_->submit(
            ResourceKind::HtoD, {},
            [this, t] { store_.loadLayer(LayerIdx(t), te_); });

    // Per-slot token counts before the round: a slot retired on a
    // mid-round fault must not report the garbage token the round's
    // sampler may still have pushed for it.
    std::vector<std::size_t> tokBefore(slots_.size(), 0);
    for (SlotIdx slot : st.rowSlot)
        tokBefore[slot.value()] = slots_[slot.value()]->tokens.size();

    // Round-scope fault capture: weight-stream and task-body faults
    // reach sync() via the executor's firstError_. Such a fault
    // leaves this round's pipeline state (hidden buffers, weight
    // slots) unreliable for every participant, so the whole round
    // retires with Error; the engine itself stays serviceable (the
    // next round preloads weights afresh). Per-slot KV faults caught
    // inside the offload task stay request-scope.
    std::string roundError;
    try {
        runDecodeChains(st);
        exec_->sync();
    } catch (const std::exception &e) {
        roundError = e.what();
    }
    double secs = servingSecondsSince(t0);
    noteKvUsage();
    for (SlotIdx slot : st.rowSlot)
        slots_[slot.value()]->decodeSeconds += secs;
    for (SlotIdx slot : st.rowSlot) {
        std::string slotMsg;
        {
            MutexLock lk(faultMu_);
            slotMsg = slotError_[slot.value()];
        }
        if (!slotMsg.empty() || !roundError.empty()) {
            ActiveSeq &a = *slots_[slot.value()];
            a.tokens.resize(tokBefore[slot.value()]);
            retireTerminal(slot, FinishReason::Error,
                           slotMsg.empty() ? roundError : slotMsg,
                           finished);
            continue;
        }
        maybeRetire(slot, finished);
    }
}

void
PipelinedEngine::runDecodeChains(StepState &st)
{
    const ModelConfig &cfg = w_.cfg;
    std::size_t layers = cfg.l;
    std::size_t ubs = st.numUbs;
    std::size_t total = layers * ubs;
    std::size_t la = std::min<std::size_t>(cfg_.lookahead, ubs);

    std::size_t next_chain = 0;
    // Launch the Pre -> OffloadQKV -> CPUAttn chain for linear index
    // m (layer-major). Dependencies: this layer's weights and this
    // micro-batch's hidden state from the previous layer (layer 0's
    // x was filled synchronously before launch).
    auto launch_chain = [&](std::size_t m) {
        std::size_t i = m / ubs, j = m % ubs;
        std::vector<EventPtr> deps;
        if (st.weightsReady[i])
            deps.push_back(st.weightsReady[i]);
        if (i > 0 && st.postPerUb[j])
            deps.push_back(st.postPerUb[j]);

        EventPtr pre = exec_->submit(
            ResourceKind::Gpu, std::move(deps), [this, &st, i, j] {
                std::size_t n = st.ubSize(j);
                // Batched QKV projection across the micro-batch (one
                // GEMM per weight instead of one GEMV per sequence),
                // then interleave rows into the [q|k|v] offload
                // layout. No pool here: the GPU queue may run
                // concurrently with the CPU queue's attention, which
                // owns attnPool_.
                for (std::size_t r = 0; r < n; ++r)
                    rmsNorm(st.xGpu[j].data() + r * h1_,
                            store_.tensor(LayerIdx(i), "attn_norm"),
                            gpuNormB_.data() + r * h1_, h1_);
                matmulTransposedB(gpuNormB_.data(),
                                  store_.tensor(LayerIdx(i), "wq"),
                                  gpuQB_.data(), n, h1_, qDim_);
                matmulTransposedB(gpuNormB_.data(),
                                  store_.tensor(LayerIdx(i), "wk"),
                                  gpuKB_.data(), n, h1_, kvDim_);
                matmulTransposedB(gpuNormB_.data(),
                                  store_.tensor(LayerIdx(i), "wv"),
                                  gpuVB_.data(), n, h1_, kvDim_);
                for (std::size_t r = 0; r < n; ++r) {
                    float *qkv = st.qkvGpu[j].data() + r * qkvDim_;
                    std::memcpy(qkv, gpuQB_.data() + r * qDim_,
                                qDim_ * sizeof(float));
                    std::memcpy(qkv + qDim_,
                                gpuKB_.data() + r * kvDim_,
                                kvDim_ * sizeof(float));
                    std::memcpy(qkv + qDim_ + kvDim_,
                                gpuVB_.data() + r * kvDim_,
                                kvDim_ * sizeof(float));
                }
            });

        EventPtr off = exec_->submit(
            ResourceKind::DtoH, {pre}, [this, &st, i, j] {
                std::size_t n = st.ubSize(j);
                te_.copyToHost(st.qkvGpu[j].data(),
                               st.qkvCpu[j].data(), n * qkvDim_);
                for (std::size_t r = 0; r < n; ++r) {
                    SlotIdx slot =
                        st.rowSlot[st.ubStart[j] + r];
                    // Request-scope containment: a KV append failing
                    // (pool exhausted, injected kv.alloc fault) dooms
                    // only this sequence. Later layers skip the
                    // faulted slot — its KV stream is already
                    // inconsistent — and it retires with Error after
                    // sync. PanicError (a bug, not a fault) still
                    // escapes to the executor and aborts the round.
                    if (slotFaulted(slot))
                        continue;
                    const float *qkv =
                        st.qkvCpu[j].data() + r * qkvDim_;
                    try {
                        if (qkv_)
                            qkv_->append(seqOf(slot), LayerIdx(i),
                                         qkv + qDim_,
                                         qkv + qDim_ + kvDim_);
                        else
                            kv_->append(seqOf(slot), LayerIdx(i),
                                        qkv + qDim_,
                                        qkv + qDim_ + kvDim_);
                    } catch (const FatalError &e) {
                        noteSlotFault(slot, e.what());
                    }
                }
            });

        st.cattn[i][j] = exec_->submit(
            ResourceKind::Cpu, {off}, [this, &st, i, j] {
                const ModelConfig &c = w_.cfg;
                std::size_t n = st.ubSize(j);
                if (qkv_) {
                    // Zero-copy quantized views; the fused kernel
                    // dequantizes rows in-register, so no float KV
                    // pages are ever materialized.
                    std::vector<QuantKvView> qviews(n);
                    for (std::size_t r = 0; r < n; ++r)
                        qviews[r] = qkv_->makeQuantView(
                            seqOf(st.rowSlot[st.ubStart[j] + r]),
                            LayerIdx(i));
                    gqaDecodeAttentionQuantBatch(
                        st.qkvCpu[j].data(), qkvDim_, c.nq, qviews,
                        st.attnCpu[j].data(), qDim_, scale_,
                        attnPool_.get(), cpuBatchScratch_);
                    return;
                }
                // Materialize all views first, then fan the tokens
                // out across the attention pool (multi-core kernel).
                std::vector<KvViewStorage> views(n);
                std::vector<KvView> kvs(n);
                for (std::size_t r = 0; r < n; ++r) {
                    kv_->makeView(
                        seqOf(st.rowSlot[st.ubStart[j] + r]),
                        LayerIdx(i), views[r]);
                    kvs[r] = views[r].view;
                }
                gqaDecodeAttentionBatch(
                    st.qkvCpu[j].data(), qkvDim_, c.nq, kvs,
                    st.attnCpu[j].data(), qDim_, scale_,
                    attnPool_.get(), cpuBatchScratch_);
            });
    };
    auto pump = [&](std::size_t up_to) {
        while (next_chain < total && next_chain <= up_to)
            launch_chain(next_chain++);
    };

    // Prologue (Algorithm 1 lines 2-7): the first 'la' chains, all in
    // layer 0, plus the weight stream for the next layers (emitted in
    // the main loop below).
    pump(la - 1);

    for (std::size_t m = 0; m < total; ++m) {
        std::size_t i = m / ubs, j = m % ubs;
        pump(m);  // ensure this chain exists

        // LoadH(i, j): attention output back to the GPU.
        EventPtr loadh = exec_->submit(
            ResourceKind::HtoD, {st.cattn[i][j]}, [this, &st, j] {
                std::size_t n = st.ubSize(j);
                te_.copyToGpu(st.attnCpu[j].data(),
                              st.attnGpu[j].data(), n * qDim_);
            });

        // Interleaved weight pages for the next layer. Chunk j covers
        // an equal share of the layer's pages. Layers 0 and 1 were
        // preloaded for this round, and the round ends after the last
        // layer (admission may change the batch before the next one),
        // so the wrap-around tail is skipped.
        std::size_t target = (i + 1) % layers;
        bool preloaded = i == 0;
        bool skip_tail = i == layers - 1;
        if (!preloaded && !skip_tail) {
            std::size_t pages = store_.pagesPerLayer();
            std::size_t lo = pages * j / ubs;
            std::size_t hi = pages * (j + 1) / ubs;
            if (j == 0) {
                // Fresh readiness event for the incoming layer; it
                // must exist NOW — the pump's lookahead can launch
                // layer `target` chains (which depend on it) before
                // the last chunk task below is submitted. The slot it
                // overwrites must have retired.
                st.weightsReady[target] = std::make_shared<TaskEvent>();
            }
            std::vector<EventPtr> wdeps;
            std::size_t slot = target % store_.numSlots();
            // The slot-retired dependency belongs to the *first
            // non-empty* chunk (lo == 0 && hi > 0): with more
            // micro-batches than weight pages, chunk j == 0 is empty
            // and pinning the dependency to it would let the first
            // real load overwrite the slot while the previous
            // occupant's PostAttn tasks still read it. Later chunks
            // are ordered behind the first one by the HtoD FIFO.
            if (lo == 0 && hi > 0 && st.slotBusy[slot])
                wdeps.push_back(st.slotBusy[slot]);
            // The last chunk publishes layer readiness via the
            // executor's alsoSignal guarantee (signaled on every
            // path): the HtoD FIFO ensures the earlier chunks retired
            // first, and a failed or fault-injected load surfaces at
            // sync() instead of leaving dependents waiting forever —
            // signaling from inside the task body would deadlock
            // whenever the body dies before reaching the signal.
            bool last_chunk = j + 1 == ubs;
            std::vector<EventPtr> publish;
            if (last_chunk)
                publish.push_back(st.weightsReady[target]);
            exec_->submit(
                ResourceKind::HtoD, std::move(wdeps),
                [this, target, lo, hi] {
                    for (std::size_t p = lo; p < hi; ++p)
                        store_.loadPage(LayerIdx(target), p, te_);
                },
                std::move(publish));
        }

        // PostAttn(i, j): O projection + residual + router + MoE FFN;
        // on the last layer also sample the round's token per row.
        std::vector<EventPtr> post_deps{loadh};
        if (st.weightsReady[i])
            post_deps.push_back(st.weightsReady[i]);
        bool last_layer = i == layers - 1;
        EventPtr post = exec_->submit(
            ResourceKind::Gpu, std::move(post_deps),
            [this, &st, i, j, last_layer] {
                const ModelConfig &c = w_.cfg;
                std::size_t n = st.ubSize(j);
                // Batched O projection, router and MoE FFN across the
                // micro-batch; per-token arithmetic matches the
                // reference engine's m=1 calls bit-for-bit.
                matmulTransposedB(st.attnGpu[j].data(),
                                  store_.tensor(LayerIdx(i), "wo"),
                                  gpuProjB_.data(), n, qDim_, h1_);
                for (std::size_t r = 0; r < n; ++r) {
                    float *x = st.xGpu[j].data() + r * h1_;
                    accumulate(x, gpuProjB_.data() + r * h1_, h1_);
                    rmsNorm(x, store_.tensor(LayerIdx(i), "ffn_norm"),
                            gpuNormB_.data() + r * h1_, h1_);
                }
                matmulTransposedB(gpuNormB_.data(),
                                  store_.tensor(LayerIdx(i), "router"),
                                  gpuRlB_.data(), n, h1_, c.ne);
                std::vector<TokenRouting> routing(n);
                for (std::size_t r = 0; r < n; ++r)
                    routing[r] = routeTopK(
                        {gpuRlB_.data() + r * c.ne, c.ne}, c.k);
                moeFfnForward(gpuNormB_.data(), routing,
                              store_.resolver(LayerIdx(i)), n, h1_, c.h2,
                              gpuFfnB_.data());
                for (std::size_t r = 0; r < n; ++r)
                    accumulate(st.xGpu[j].data() + r * h1_,
                               gpuFfnB_.data() + r * h1_, h1_);
                if (last_layer) {
                    // Batched lmHead sampling: one micro-batch-wide
                    // GEMM instead of per-row m=1 GEMVs — the GEMM's
                    // per-row arithmetic is m-independent, so every
                    // row's logits (and its argmax token) are
                    // bit-identical to the per-row calls this
                    // replaces. No pool: the GPU queue may run
                    // concurrently with CPU attention, which owns
                    // attnPool_.
                    for (std::size_t r = 0; r < n; ++r)
                        rmsNorm(st.xGpu[j].data() + r * h1_,
                                w_.finalNorm.data(),
                                gpuNormB_.data() + r * h1_, h1_);
                    matmulTransposedB(gpuNormB_.data(),
                                      w_.lmHead.data(),
                                      gpuLogitsB_.data(), n, h1_,
                                      vocab_);
                    for (std::size_t r = 0; r < n; ++r) {
                        SlotIdx slot =
                            st.rowSlot[st.ubStart[j] + r];
                        int next = static_cast<int>(argmax(
                            {gpuLogitsB_.data() + r * vocab_,
                             vocab_}));
                        ActiveSeq &a = *slots_[slot.value()];
                        a.tokens.push_back(next);
                        a.next = next;
                    }
                }
            });

        st.postPerUb[j] = post;
        if (j + 1 == ubs)
            st.slotBusy[i % store_.numSlots()] = post;

        pump(m + la);
    }
}

} // namespace moelight
