#include "runtime/engine.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "kernels/attention.hh"
#include "kernels/linalg.hh"
#include "kernels/quant.hh"
#include "kernels/moe_ffn.hh"
#include "kernels/ops.hh"
#include "kernels/router.hh"

namespace moelight {

namespace {

/** Pinned staging ring geometry: pages big enough for the largest
 *  weight tensor, a few of them for overlap. */
std::size_t
maxTensorFloats(const ModelConfig &cfg)
{
    std::size_t mx = cfg.h1 * cfg.h2;             // expert matrices
    mx = std::max(mx, cfg.h1 * cfg.nq * cfg.headDim);
    mx = std::max(mx, cfg.vocab * cfg.h1);        // not staged, safety
    return mx;
}

} // namespace

/** All per-generate() mutable state. */
struct PipelinedEngine::DecodeState
{
    std::size_t numSeqs = 0;
    std::size_t numUbs = 0;
    int genLen = 0;

    std::size_t h1, qDim, kvDim, qkvDim, vocab;
    float scale = 1.0f;

    /** Sequences of micro-batch j: [ubStart[j], ubStart[j+1]). */
    std::vector<std::size_t> ubStart;

    // "GPU" side buffers, one per micro-batch.
    std::vector<std::vector<float>> xGpu;      ///< [ubSize * h1]
    std::vector<std::vector<float>> qkvGpu;    ///< [ubSize * qkvDim]
    std::vector<std::vector<float>> attnGpu;   ///< [ubSize * qDim]
    // Host side.
    std::vector<std::vector<float>> qkvCpu;
    std::vector<std::vector<float>> attnCpu;

    // Prefill hidden states: per seq, [len * h1] (freed after).
    std::vector<std::vector<float>> prefillHidden;

    // Scratch (single-threaded per queue).
    std::vector<float> gpuNorm, gpuLogits;
    // Batched per-micro-batch buffers for the decode GEMMs (sized to
    // the largest micro-batch).
    std::vector<float> gpuNormB, gpuProjB, gpuRlB, gpuFfnB;
    std::vector<float> gpuQB, gpuKB, gpuVB;
    std::vector<float> cpuAttnScratch;
    /** Persistent per-worker-slot scratch for the decode attention
     *  batch (CPU queue tasks are serialized, so one buffer). */
    std::vector<float> cpuBatchScratch;
    /** Scratch for the fused quantized prefill kernel, sized to the
     *  longest prompt (empty in float-KV mode). */
    std::vector<float> cpuPrefillScratch;
    /** Longest prompt, for sizing per-layer prefill buffers once. */
    std::size_t maxPromptLen = 0;

    // Pipeline events.
    std::vector<EventPtr> weightsReady;  ///< per layer
    std::vector<EventPtr> xReadyUb;      ///< per micro-batch
    std::vector<EventPtr> postPerUb;     ///< last Post event per ub
    std::vector<EventPtr> slotBusy;      ///< per weight slot
    std::vector<std::vector<EventPtr>> cattn;  ///< [layer][ub]

    // Output.
    std::vector<GenerationResult> out;
    std::vector<int> nextToken;

    std::size_t
    ubSize(std::size_t j) const
    {
        return ubStart[j + 1] - ubStart[j];
    }
};

PipelinedEngine::PipelinedEngine(const ModelWeights &weights,
                                 EngineConfig cfg)
    : w_(weights),
      cfg_(cfg),
      pinned_("pinned", maxTensorFloats(weights.cfg), 4),
      te_(pinned_, cfg.throttleBw),
      store_(weights, pinned_, 2)
{
    fatalIf(cfg_.microBatch == 0, "micro-batch must be positive");
    fatalIf(w_.cfg.l % store_.numSlots() != 0,
            "layer count must be a multiple of the weight slot count (",
            store_.numSlots(), ") for conflict-free double buffering");
    fatalIf(cfg_.lookahead == 0, "lookahead must be >= 1");
    if (cfg_.cpuAttnThreads > 0)
        attnPool_ = std::make_unique<ThreadPool>(cfg_.cpuAttnThreads);
}

PipelinedEngine::~PipelinedEngine() = default;

std::size_t
PipelinedEngine::kvUsedPages() const
{
    return kv_ ? kv_->usedPages() : 0;
}

std::vector<GenerationResult>
PipelinedEngine::generate(const std::vector<std::vector<int>> &prompts,
                          int genLen)
{
    fatalIf(prompts.empty(), "no prompts");
    fatalIf(genLen <= 0, "generation length must be positive");
    const ModelConfig &cfg = w_.cfg;

    state_ = std::make_unique<DecodeState>();
    DecodeState &st = *state_;
    st.numSeqs = prompts.size();
    st.genLen = genLen;
    st.h1 = cfg.h1;
    st.qDim = cfg.nq * cfg.headDim;
    st.kvDim = cfg.nkv * cfg.headDim;
    st.qkvDim = st.qDim + 2 * st.kvDim;
    st.vocab = cfg.vocab;
    st.scale = 1.0f / std::sqrt(static_cast<float>(cfg.headDim));

    // Partition sequences into micro-batches of cfg_.microBatch.
    st.numUbs = (st.numSeqs + cfg_.microBatch - 1) / cfg_.microBatch;
    st.ubStart.resize(st.numUbs + 1);
    for (std::size_t j = 0; j <= st.numUbs; ++j)
        st.ubStart[j] = std::min(j * cfg_.microBatch, st.numSeqs);

    st.xGpu.resize(st.numUbs);
    st.qkvGpu.resize(st.numUbs);
    st.attnGpu.resize(st.numUbs);
    st.qkvCpu.resize(st.numUbs);
    st.attnCpu.resize(st.numUbs);
    for (std::size_t j = 0; j < st.numUbs; ++j) {
        std::size_t n = st.ubSize(j);
        st.xGpu[j].assign(n * st.h1, 0.0f);
        st.qkvGpu[j].assign(n * st.qkvDim, 0.0f);
        st.attnGpu[j].assign(n * st.qDim, 0.0f);
        st.qkvCpu[j].assign(n * st.qkvDim, 0.0f);
        st.attnCpu[j].assign(n * st.qDim, 0.0f);
    }
    st.gpuNorm.assign(st.h1, 0.0f);
    st.gpuLogits.assign(st.vocab, 0.0f);
    std::size_t max_ub = 0;
    for (std::size_t j = 0; j < st.numUbs; ++j)
        max_ub = std::max(max_ub, st.ubSize(j));
    st.gpuNormB.assign(max_ub * st.h1, 0.0f);
    st.gpuProjB.assign(max_ub * st.h1, 0.0f);
    st.gpuRlB.assign(max_ub * cfg.ne, 0.0f);
    st.gpuFfnB.assign(max_ub * st.h1, 0.0f);
    st.gpuQB.assign(max_ub * st.qDim, 0.0f);
    st.gpuKB.assign(max_ub * st.kvDim, 0.0f);
    st.gpuVB.assign(max_ub * st.kvDim, 0.0f);

    std::size_t max_prompt = 0;
    for (const auto &p : prompts)
        max_prompt = std::max(max_prompt, p.size());
    st.maxPromptLen = max_prompt;
    std::size_t max_ctx =
        max_prompt + static_cast<std::size_t>(genLen) + 1;
    // Quant scratch is a superset of the float kernel's (score rows
    // plus the K/V dequant stash), so one sizing covers both modes.
    st.cpuAttnScratch.assign(
        gqaQuantAttnScratchFloats(cfg.nq, cfg.nkv, max_ctx,
                                  cfg.headDim, cfg_.kvPageTokens),
        0.0f);
    std::size_t attn_slots = attnPool_ ? attnPool_->maxParallelism() : 1;
    st.cpuBatchScratch.assign(
        attn_slots * gqaQuantAttnScratchFloats(cfg.nq, cfg.nkv,
                                               max_ctx, cfg.headDim,
                                               cfg_.kvPageTokens),
        0.0f);
    if (cfg_.kvQuant)
        st.cpuPrefillScratch.assign(
            gqaQuantPrefillAttnScratchFloats(cfg.nq, cfg.nkv,
                                             max_prompt, cfg.headDim,
                                             cfg_.kvPageTokens),
            0.0f);

    st.out.assign(st.numSeqs, {});
    st.nextToken.assign(st.numSeqs, 0);

    st.weightsReady.assign(cfg.l, nullptr);
    st.xReadyUb.assign(st.numUbs, nullptr);
    st.postPerUb.assign(st.numUbs, nullptr);
    st.slotBusy.assign(store_.numSlots(), nullptr);
    st.cattn.assign(cfg.l, std::vector<EventPtr>(st.numUbs));

    if (cfg_.kvQuant) {
        qkv_ = std::make_unique<QuantizedKvCache>(
            cfg, st.numSeqs, cfg_.kvPageTokens, *cfg_.kvQuant,
            cfg_.kvCapacityTokens);
        kv_.reset();
    } else {
        kv_ = std::make_unique<KvCacheManager>(cfg, st.numSeqs,
                                               cfg_.kvPageTokens,
                                               cfg_.kvCapacityTokens);
        qkv_.reset();
    }
    exec_ = std::make_unique<StreamExecutor>();
    te_.resetStats();

    prefill(prompts, st);
    exec_->sync();
    st.prefillHidden.clear();
    st.prefillHidden.shrink_to_fit();

    // Preload layers 0 and 1 for the first decode step; everything
    // before has retired (sync above), so no buffer dependency.
    if (genLen > 1) {
        for (std::size_t t = 0; t < std::min<std::size_t>(2, cfg.l);
             ++t) {
            auto ready = std::make_shared<TaskEvent>();
            exec_->submit(ResourceKind::HtoD, {}, [this, t, ready] {
                store_.loadLayer(t, te_);
                ready->signal();
            });
            st.weightsReady[t] = ready;
        }
        for (int d = 1; d < genLen; ++d)
            decodeStep(st, d, d + 1 == genLen);
        exec_->sync();
    }

    exec_.reset();  // join workers before tearing down state
    return std::move(st.out);
}

void
PipelinedEngine::prefill(const std::vector<std::vector<int>> &prompts,
                         DecodeState &st)
{
    const ModelConfig &cfg = w_.cfg;

    // Initialize per-sequence hidden states with embeddings.
    st.prefillHidden.resize(st.numSeqs);
    for (std::size_t s = 0; s < st.numSeqs; ++s) {
        fatalIf(prompts[s].empty(), "empty prompt");
        std::size_t len = prompts[s].size();
        st.prefillHidden[s].resize(len * st.h1);
        for (std::size_t t = 0; t < len; ++t) {
            int tok = prompts[s][t];
            fatalIf(tok < 0 ||
                        static_cast<std::size_t>(tok) >= cfg.vocab,
                    "prompt token out of vocabulary");
            std::memcpy(st.prefillHidden[s].data() + t * st.h1,
                        w_.embedding.row(static_cast<std::size_t>(tok)),
                        st.h1 * sizeof(float));
        }
    }

    // Zigzag layer-by-layer prefill (§4): load layer weights, then run
    // every sequence's tokens through that layer on the GPU queue,
    // appending KV as we go. Weight loads for layer i+2 wait on layer
    // i's compute (slot reuse).
    std::vector<EventPtr> compute_done(cfg.l);
    for (std::size_t li = 0; li < cfg.l; ++li) {
        std::vector<EventPtr> load_deps;
        if (li >= 2 && compute_done[li - 2])
            load_deps.push_back(compute_done[li - 2]);
        EventPtr loaded = exec_->submit(
            ResourceKind::HtoD, std::move(load_deps),
            [this, li] { store_.loadLayer(li, te_); });

        std::vector<EventPtr> deps{loaded};
        if (li > 0)
            deps.push_back(compute_done[li - 1]);
        compute_done[li] = exec_->submit(
            ResourceKind::Gpu, std::move(deps), [this, li, &st] {
                const ModelConfig &c = w_.cfg;
                // Whole-sequence batched projections instead of
                // per-token GEMV chains; only the attention/KV-append
                // walk stays per token (causal order). The attention
                // pool is idle during prefill (the CPU queue has no
                // work yet), so the batched GEMMs and the MoE FFN
                // borrow it. Per-token arithmetic is unchanged, so
                // tokens stay bit-identical to the reference engine.
                ThreadPool *pool = attnPool_.get();
                KvViewStorage view;
                std::vector<float> norm_all, q_all, k_all, v_all;
                std::vector<float> attn_all, proj_all, rl_all, ffn_all;
                std::vector<TokenRouting> routing;
                // Reserve once to the longest prompt: the per-seq
                // resizes below then never reallocate, however the
                // sequence lengths vary across the batch.
                std::size_t mx = st.maxPromptLen;
                norm_all.reserve(mx * st.h1);
                q_all.reserve(mx * st.qDim);
                k_all.reserve(mx * st.kvDim);
                v_all.reserve(mx * st.kvDim);
                attn_all.reserve(mx * st.qDim);
                proj_all.reserve(mx * st.h1);
                rl_all.reserve(mx * c.ne);
                ffn_all.reserve(mx * st.h1);
                routing.reserve(mx);
                for (std::size_t s = 0; s < st.numSeqs; ++s) {
                    std::size_t len =
                        st.prefillHidden[s].size() / st.h1;
                    float *xs = st.prefillHidden[s].data();
                    norm_all.resize(len * st.h1);
                    q_all.resize(len * st.qDim);
                    k_all.resize(len * st.kvDim);
                    v_all.resize(len * st.kvDim);
                    attn_all.resize(len * st.qDim);
                    proj_all.resize(len * st.h1);
                    rl_all.resize(len * c.ne);
                    ffn_all.resize(len * st.h1);
                    for (std::size_t t = 0; t < len; ++t)
                        rmsNorm(xs + t * st.h1,
                                store_.tensor(li, "attn_norm"),
                                norm_all.data() + t * st.h1, st.h1);
                    matmulTransposedB(norm_all.data(),
                                      store_.tensor(li, "wq"),
                                      q_all.data(), len, st.h1,
                                      st.qDim, pool);
                    matmulTransposedB(norm_all.data(),
                                      store_.tensor(li, "wk"),
                                      k_all.data(), len, st.h1,
                                      st.kvDim, pool);
                    matmulTransposedB(norm_all.data(),
                                      store_.tensor(li, "wv"),
                                      v_all.data(), len, st.h1,
                                      st.kvDim, pool);
                    if (qkv_) {
                        // Append the whole prompt, then run the fused
                        // causal prefill kernel once: each closed
                        // page dequantizes once per KV head instead
                        // of once per later position, and the kernel
                        // replays the per-token append walk bit-for-
                        // bit (the reference engine's per-token fused
                        // decode stays the oracle for this).
                        for (std::size_t t = 0; t < len; ++t)
                            qkv_->append(s, li,
                                         k_all.data() + t * st.kvDim,
                                         v_all.data() + t * st.kvDim);
                        gqaPrefillAttentionQuantFused(
                            q_all.data(), k_all.data(), v_all.data(),
                            len, c.nq, qkv_->makeQuantView(s, li),
                            attn_all.data(), st.scale,
                            st.cpuPrefillScratch);
                    } else {
                        for (std::size_t t = 0; t < len; ++t) {
                            kv_->append(s, li,
                                        k_all.data() + t * st.kvDim,
                                        v_all.data() + t * st.kvDim);
                            // The page-pointer list only changes when
                            // an append opens a new page; between
                            // boundaries just advance the context
                            // length instead of rebuilding the view.
                            // Keyed off the cache's actual length
                            // (not t) so a prefill over a non-empty
                            // cache — prefix reuse, say — stays
                            // correct; t == 0 still always builds
                            // this (seq, layer)'s first view.
                            std::size_t ctx_len =
                                kv_->contextLen(s, li);
                            if (t == 0 ||
                                (ctx_len - 1) % cfg_.kvPageTokens == 0)
                                kv_->makeView(s, li, view);
                            else
                                view.view.contextLen = ctx_len;
                            gqaDecodeAttention(
                                q_all.data() + t * st.qDim, c.nq,
                                view.view,
                                attn_all.data() + t * st.qDim,
                                st.scale, st.cpuAttnScratch);
                        }
                    }
                    matmulTransposedB(attn_all.data(),
                                      store_.tensor(li, "wo"),
                                      proj_all.data(), len, st.qDim,
                                      st.h1, pool);
                    for (std::size_t t = 0; t < len; ++t) {
                        accumulate(xs + t * st.h1,
                                   proj_all.data() + t * st.h1,
                                   st.h1);
                        rmsNorm(xs + t * st.h1,
                                store_.tensor(li, "ffn_norm"),
                                norm_all.data() + t * st.h1, st.h1);
                    }
                    matmulTransposedB(norm_all.data(),
                                      store_.tensor(li, "router"),
                                      rl_all.data(), len, st.h1, c.ne,
                                      pool);
                    routing.resize(len);
                    for (std::size_t t = 0; t < len; ++t)
                        routing[t] = routeTopK(
                            {rl_all.data() + t * c.ne, c.ne}, c.k);
                    moeFfnForward(norm_all.data(), routing,
                                  store_.resolver(li), len, st.h1,
                                  c.h2, ffn_all.data(), pool);
                    for (std::size_t t = 0; t < len; ++t)
                        accumulate(xs + t * st.h1,
                                   ffn_all.data() + t * st.h1, st.h1);
                }
            });
    }

    // Bootstrap: sample the first generated token from each prompt's
    // last hidden state and set up the decode-step inputs.
    exec_->submit(
        ResourceKind::Gpu, {compute_done[cfg.l - 1]}, [this, &st] {
            for (std::size_t j = 0; j < st.numUbs; ++j) {
                for (std::size_t s = st.ubStart[j];
                     s < st.ubStart[j + 1]; ++s) {
                    std::size_t len =
                        st.prefillHidden[s].size() / st.h1;
                    const float *hidden = st.prefillHidden[s].data() +
                                          (len - 1) * st.h1;
                    rmsNorm(hidden, w_.finalNorm.data(),
                            st.gpuNorm.data(), st.h1);
                    matmulTransposedB(st.gpuNorm.data(),
                                      w_.lmHead.data(),
                                      st.gpuLogits.data(), 1, st.h1,
                                      st.vocab);
                    int next = static_cast<int>(argmax(
                        {st.gpuLogits.data(), st.gpuLogits.size()}));
                    st.out[s].tokens.push_back(next);
                    st.nextToken[s] = next;
                    float *x = st.xGpu[j].data() +
                               (s - st.ubStart[j]) * st.h1;
                    std::memcpy(
                        x,
                        w_.embedding.row(
                            static_cast<std::size_t>(next)),
                        st.h1 * sizeof(float));
                }
            }
        });
}

void
PipelinedEngine::decodeStep(DecodeState &st, int stepIdx, bool lastStep)
{
    const ModelConfig &cfg = w_.cfg;
    std::size_t layers = cfg.l;
    std::size_t ubs = st.numUbs;
    std::size_t total = layers * ubs;
    std::size_t la = std::min<std::size_t>(cfg_.lookahead, ubs);

    std::size_t next_chain = 0;
    // Launch the Pre -> OffloadQKV -> CPUAttn chain for linear index
    // m (layer-major). Dependencies: this layer's weights and this
    // micro-batch's hidden state from the previous layer/step.
    auto launch_chain = [&](std::size_t m) {
        std::size_t i = m / ubs, j = m % ubs;
        std::vector<EventPtr> deps;
        if (st.weightsReady[i])
            deps.push_back(st.weightsReady[i]);
        EventPtr x_ready = i == 0 ? st.xReadyUb[j] : st.postPerUb[j];
        if (x_ready)
            deps.push_back(x_ready);

        EventPtr pre = exec_->submit(
            ResourceKind::Gpu, std::move(deps), [this, &st, i, j] {
                std::size_t n = st.ubSize(j);
                // Batched QKV projection across the micro-batch (one
                // GEMM per weight instead of one GEMV per sequence),
                // then interleave rows into the [q|k|v] offload
                // layout. No pool here: the GPU queue may run
                // concurrently with the CPU queue's attention, which
                // owns attnPool_.
                for (std::size_t r = 0; r < n; ++r)
                    rmsNorm(st.xGpu[j].data() + r * st.h1,
                            store_.tensor(i, "attn_norm"),
                            st.gpuNormB.data() + r * st.h1, st.h1);
                matmulTransposedB(st.gpuNormB.data(),
                                  store_.tensor(i, "wq"),
                                  st.gpuQB.data(), n, st.h1, st.qDim);
                matmulTransposedB(st.gpuNormB.data(),
                                  store_.tensor(i, "wk"),
                                  st.gpuKB.data(), n, st.h1, st.kvDim);
                matmulTransposedB(st.gpuNormB.data(),
                                  store_.tensor(i, "wv"),
                                  st.gpuVB.data(), n, st.h1, st.kvDim);
                for (std::size_t r = 0; r < n; ++r) {
                    float *qkv = st.qkvGpu[j].data() + r * st.qkvDim;
                    std::memcpy(qkv, st.gpuQB.data() + r * st.qDim,
                                st.qDim * sizeof(float));
                    std::memcpy(qkv + st.qDim,
                                st.gpuKB.data() + r * st.kvDim,
                                st.kvDim * sizeof(float));
                    std::memcpy(qkv + st.qDim + st.kvDim,
                                st.gpuVB.data() + r * st.kvDim,
                                st.kvDim * sizeof(float));
                }
            });

        EventPtr off = exec_->submit(
            ResourceKind::DtoH, {pre}, [this, &st, i, j] {
                std::size_t n = st.ubSize(j);
                te_.copyToHost(st.qkvGpu[j].data(),
                               st.qkvCpu[j].data(), n * st.qkvDim);
                for (std::size_t r = 0; r < n; ++r) {
                    std::size_t s = st.ubStart[j] + r;
                    const float *qkv =
                        st.qkvCpu[j].data() + r * st.qkvDim;
                    if (qkv_)
                        qkv_->append(s, i, qkv + st.qDim,
                                     qkv + st.qDim + st.kvDim);
                    else
                        kv_->append(s, i, qkv + st.qDim,
                                    qkv + st.qDim + st.kvDim);
                }
            });

        st.cattn[i][j] = exec_->submit(
            ResourceKind::Cpu, {off}, [this, &st, i, j] {
                const ModelConfig &c = w_.cfg;
                std::size_t n = st.ubSize(j);
                if (qkv_) {
                    // Zero-copy quantized views; the fused kernel
                    // dequantizes rows in-register, so no float KV
                    // pages are ever materialized.
                    std::vector<QuantKvView> qviews(n);
                    for (std::size_t r = 0; r < n; ++r)
                        qviews[r] =
                            qkv_->makeQuantView(st.ubStart[j] + r, i);
                    gqaDecodeAttentionQuantBatch(
                        st.qkvCpu[j].data(), st.qkvDim, c.nq, qviews,
                        st.attnCpu[j].data(), st.qDim, st.scale,
                        attnPool_.get(), st.cpuBatchScratch);
                    return;
                }
                // Materialize all views first, then fan the tokens
                // out across the attention pool (multi-core kernel).
                std::vector<KvViewStorage> views(n);
                std::vector<KvView> kvs(n);
                for (std::size_t r = 0; r < n; ++r) {
                    kv_->makeView(st.ubStart[j] + r, i, views[r]);
                    kvs[r] = views[r].view;
                }
                gqaDecodeAttentionBatch(
                    st.qkvCpu[j].data(), st.qkvDim, c.nq, kvs,
                    st.attnCpu[j].data(), st.qDim, st.scale,
                    attnPool_.get(), st.cpuBatchScratch);
            });
    };
    auto pump = [&](std::size_t up_to) {
        while (next_chain < total && next_chain <= up_to)
            launch_chain(next_chain++);
    };

    // Prologue (Algorithm 1 lines 2-7): the first 'la' chains, all in
    // layer 0, plus the weight stream for the next layers (emitted in
    // the main loop below).
    pump(la - 1);

    for (std::size_t m = 0; m < total; ++m) {
        std::size_t i = m / ubs, j = m % ubs;
        pump(m);  // ensure this chain exists

        // LoadH(i, j): attention output back to the GPU.
        EventPtr loadh = exec_->submit(
            ResourceKind::HtoD, {st.cattn[i][j]}, [this, &st, j] {
                std::size_t n = st.ubSize(j);
                te_.copyToGpu(st.attnCpu[j].data(),
                              st.attnGpu[j].data(), n * st.qDim);
            });

        // Interleaved weight pages for the next layer (wraps to layer
        // 0 of the next step). Chunk j covers an equal share of the
        // layer's pages.
        std::size_t target = (i + 1) % layers;
        bool preloaded = stepIdx == 1 && i == 0;  // layer 1 preloaded
        bool skip_tail = lastStep && i == layers - 1;
        if (!preloaded && !skip_tail) {
            std::size_t pages = store_.pagesPerLayer();
            std::size_t lo = pages * j / ubs;
            std::size_t hi = pages * (j + 1) / ubs;
            if (j == 0) {
                // Fresh readiness event for the incoming layer; the
                // slot it overwrites must have retired.
                st.weightsReady[target] = std::make_shared<TaskEvent>();
            }
            EventPtr ready = st.weightsReady[target];
            std::vector<EventPtr> wdeps;
            std::size_t slot = target % store_.numSlots();
            if (lo < hi && j == 0 && st.slotBusy[slot])
                wdeps.push_back(st.slotBusy[slot]);
            bool last_chunk = j + 1 == ubs;
            exec_->submit(
                ResourceKind::HtoD, std::move(wdeps),
                [this, target, lo, hi, last_chunk, ready] {
                    for (std::size_t p = lo; p < hi; ++p)
                        store_.loadPage(target, p, te_);
                    if (last_chunk)
                        ready->signal();
                });
        }

        // PostAttn(i, j): O projection + residual + router + MoE FFN;
        // on the last layer also sample and re-embed.
        std::vector<EventPtr> post_deps{loadh};
        if (st.weightsReady[i])
            post_deps.push_back(st.weightsReady[i]);
        bool last_layer = i == layers - 1;
        EventPtr post = exec_->submit(
            ResourceKind::Gpu, std::move(post_deps),
            [this, &st, i, j, last_layer, stepIdx] {
                const ModelConfig &c = w_.cfg;
                std::size_t n = st.ubSize(j);
                // Batched O projection, router and MoE FFN across the
                // micro-batch; per-token arithmetic matches the
                // reference engine's m=1 calls bit-for-bit.
                matmulTransposedB(st.attnGpu[j].data(),
                                  store_.tensor(i, "wo"),
                                  st.gpuProjB.data(), n, st.qDim,
                                  st.h1);
                for (std::size_t r = 0; r < n; ++r) {
                    float *x = st.xGpu[j].data() + r * st.h1;
                    accumulate(x, st.gpuProjB.data() + r * st.h1,
                               st.h1);
                    rmsNorm(x, store_.tensor(i, "ffn_norm"),
                            st.gpuNormB.data() + r * st.h1, st.h1);
                }
                matmulTransposedB(st.gpuNormB.data(),
                                  store_.tensor(i, "router"),
                                  st.gpuRlB.data(), n, st.h1, c.ne);
                std::vector<TokenRouting> routing(n);
                for (std::size_t r = 0; r < n; ++r)
                    routing[r] = routeTopK(
                        {st.gpuRlB.data() + r * c.ne, c.ne}, c.k);
                moeFfnForward(st.gpuNormB.data(), routing,
                              store_.resolver(i), n, st.h1, c.h2,
                              st.gpuFfnB.data());
                for (std::size_t r = 0; r < n; ++r) {
                    float *x = st.xGpu[j].data() + r * st.h1;
                    accumulate(x, st.gpuFfnB.data() + r * st.h1,
                               st.h1);

                    if (last_layer) {
                        std::size_t s = st.ubStart[j] + r;
                        rmsNorm(x, w_.finalNorm.data(),
                                st.gpuNorm.data(), st.h1);
                        matmulTransposedB(st.gpuNorm.data(),
                                          w_.lmHead.data(),
                                          st.gpuLogits.data(), 1,
                                          st.h1, st.vocab);
                        int next = static_cast<int>(
                            argmax({st.gpuLogits.data(),
                                    st.gpuLogits.size()}));
                        st.out[s].tokens.push_back(next);
                        st.nextToken[s] = next;
                        std::memcpy(
                            x,
                            w_.embedding.row(
                                static_cast<std::size_t>(next)),
                            st.h1 * sizeof(float));
                        (void)stepIdx;
                    }
                }
            });

        st.postPerUb[j] = post;
        if (last_layer)
            st.xReadyUb[j] = post;
        if (j + 1 == ubs)
            st.slotBusy[i % store_.numSlots()] = post;

        pump(m + la);
    }
}

} // namespace moelight
