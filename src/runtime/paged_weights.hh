/**
 * @file
 * Paged weight store (Appendix A.1 / Fig. 11): layer weights live in
 * CPU memory; a double-buffered set of GPU slots receives one layer's
 * streamed weights at a time, page by page, through the pinned
 * staging ring. Kernels resolve tensors through a page table — the
 * MoE FFN kernel looks up each expert's pages rather than assuming a
 * contiguous per-layer blob.
 *
 * Page granularity: one page per named tensor (a projection matrix,
 * an expert's w1/w3/w2, a norm gain). The *count* of transfer chunks
 * per layer in the analytical pipeline is policy-controlled
 * (sched/ScheduleOptions::pagesPerLayer); here the physical paging is
 * per-tensor so kernels see contiguous matrices.
 */

#ifndef MOELIGHT_RUNTIME_PAGED_WEIGHTS_HH
#define MOELIGHT_RUNTIME_PAGED_WEIGHTS_HH

#include <string>
#include <vector>

#include "kernels/moe_ffn.hh"
#include "runtime/arena.hh"
#include "runtime/transfer_engine.hh"
#include "runtime/weights.hh"

namespace moelight {

/** Identifies one weight tensor within a layer. */
struct WeightTensorId
{
    std::string name;      ///< e.g. "wq", "e3.w1"
    std::size_t floats;    ///< element count
    const float *cpuData;  ///< CPU source pointer
};

/**
 * Double-buffered paged GPU weight cache. Slots cycle round-robin
 * over layers: slot = layer % numSlots.
 */
class PagedWeightStore
{
  public:
    /**
     * @param weights  CPU-resident source of truth (must outlive
     *                 the store).
     * @param pinned   Pinned staging arena shared with the transfer
     *                 engine.
     * @param numSlots Number of layer slots (2 = double buffer).
     */
    PagedWeightStore(const ModelWeights &weights, PageArena &pinned,
                     std::size_t numSlots = 2);

    /** Number of pages (tensors) a layer occupies. */
    std::size_t pagesPerLayer() const { return tensorCount_; }
    std::size_t numSlots() const { return numSlots_; }

    /** The tensor manifest of layer @p layer, in transfer order. */
    std::vector<WeightTensorId> layerManifest(LayerIdx layer) const;

    /**
     * Transfer page @p pageIdx (tensor index within the manifest) of
     * @p layer into its slot via @p te. Called from the HtoD queue.
     */
    void loadPage(LayerIdx layer, std::size_t pageIdx,
                  TransferEngine &te);

    /** Convenience: transfer all pages of @p layer. */
    void loadLayer(LayerIdx layer, TransferEngine &te);

    /**
     * GPU-side pointer for tensor @p name of @p layer. The layer's
     * pages must have been loaded into its slot; a stale slot (page
     * table entry pointing at another layer) panics — catching
     * use-before-transfer bugs in the pipeline.
     */
    const float *tensor(LayerIdx layer, const std::string &name) const;

    /** Page-table lookup of expert @p e 's weights for @p layer. */
    ExpertWeights expert(LayerIdx layer, int e) const;

    /** An ExpertResolver bound to @p layer (for moeFfnForward). */
    ExpertResolver resolver(LayerIdx layer) const;

    /** Page table introspection: GPU page id holding @p name. */
    PageId pageOf(LayerIdx layer, const std::string &name) const;

    /** The GPU arena (for capacity assertions in tests). */
    const PageArena &gpuArena() const { return gpu_; }

  private:
    struct PageEntry
    {
        PageId page = kInvalidPage;  ///< physical GPU page
        int residentLayer = -1;      ///< layer currently in the page
    };

    std::size_t slotOf(LayerIdx layer) const
    {
        return layer.value() % numSlots_;
    }
    std::size_t tensorIndex(const std::string &name) const;

    const ModelWeights &weights_;
    std::size_t numSlots_;
    std::size_t tensorCount_ = 0;
    std::size_t pageFloats_ = 0;
    std::vector<std::string> tensorNames_;
    PageArena gpu_;
    /** [slot][tensorIdx] -> physical page + resident layer. */
    std::vector<std::vector<PageEntry>> table_;
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_PAGED_WEIGHTS_HH
