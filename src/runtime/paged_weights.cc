#include "runtime/paged_weights.hh"

#include <algorithm>

#include "common/logging.hh"
#include "runtime/fault_injection.hh"
#include "runtime/status.hh"

namespace moelight {

namespace {

/** Ordered tensor names for one layer of a Mixtral-style model. */
std::vector<std::string>
makeTensorNames(const ModelConfig &cfg)
{
    std::vector<std::string> names{"attn_norm", "wq", "wk", "wv",
                                   "wo",        "ffn_norm", "router"};
    for (std::size_t e = 0; e < cfg.ne; ++e) {
        std::string p = "e" + std::to_string(e) + ".";
        names.push_back(p + "w1");
        names.push_back(p + "w3");
        names.push_back(p + "w2");
    }
    return names;
}

/** CPU tensor for (layer weights, name). */
const Tensor &
cpuTensor(const LayerWeights &lw, const std::string &name)
{
    if (name == "attn_norm")
        return lw.attnNorm;
    if (name == "wq")
        return lw.wq;
    if (name == "wk")
        return lw.wk;
    if (name == "wv")
        return lw.wv;
    if (name == "wo")
        return lw.wo;
    if (name == "ffn_norm")
        return lw.ffnNorm;
    if (name == "router")
        return lw.router;
    panicIf(name.size() < 4 || name[0] != 'e',
            "unknown weight tensor '", name, "'");
    std::size_t dot = name.find('.');
    panicIf(dot == std::string::npos, "unknown weight tensor '", name,
            "'");
    std::size_t e = static_cast<std::size_t>(
        std::stoul(name.substr(1, dot - 1)));
    std::string kind = name.substr(dot + 1);
    panicIf(e >= lw.w1.size(), "expert index out of range in '", name,
            "'");
    if (kind == "w1")
        return lw.w1[e];
    if (kind == "w3")
        return lw.w3[e];
    if (kind == "w2")
        return lw.w2[e];
    panic("unknown expert tensor kind '", kind, "'");
}

} // namespace

PagedWeightStore::PagedWeightStore(const ModelWeights &weights,
                                   PageArena &pinned,
                                   std::size_t numSlots)
    : weights_(weights),
      numSlots_(numSlots),
      tensorNames_(makeTensorNames(weights.cfg)),
      gpu_("gpu-weights",
           [&] {
               std::size_t mx = 0;
               for (const auto &n : makeTensorNames(weights.cfg))
                   mx = std::max(mx,
                                 cpuTensor(weights.layers[0], n).numel());
               return mx;
           }(),
           numSlots * makeTensorNames(weights.cfg).size())
{
    fatalIf(numSlots_ < 2,
            "paged weight store needs >= 2 slots for double buffering");
    fatalIf(weights_.layers.empty(), "model has no layers");
    (void)pinned;
    tensorCount_ = tensorNames_.size();
    pageFloats_ = gpu_.pageFloats();

    table_.resize(numSlots_);
    for (auto &slot : table_) {
        slot.resize(tensorCount_);
        for (auto &entry : slot)
            entry.page = gpu_.allocate();
    }
}

std::size_t
PagedWeightStore::tensorIndex(const std::string &name) const
{
    auto it = std::find(tensorNames_.begin(), tensorNames_.end(), name);
    panicIf(it == tensorNames_.end(), "unknown weight tensor '", name,
            "'");
    return static_cast<std::size_t>(it - tensorNames_.begin());
}

std::vector<WeightTensorId>
PagedWeightStore::layerManifest(LayerIdx layer) const
{
    panicIf(layer.value() >= weights_.layers.size(),
            "layer out of range");
    std::vector<WeightTensorId> out;
    out.reserve(tensorCount_);
    for (const auto &n : tensorNames_) {
        const Tensor &t = cpuTensor(weights_.layers[layer.value()], n);
        out.push_back({n, t.numel(), t.data()});
    }
    return out;
}

void
PagedWeightStore::loadPage(LayerIdx layer, std::size_t pageIdx,
                           TransferEngine &te)
{
    panicIf(layer.value() >= weights_.layers.size(),
            "layer out of range");
    panicIf(pageIdx >= tensorCount_, "page index out of range");
    FaultInjector::check("weights.load");
    const Tensor &src =
        cpuTensor(weights_.layers[layer.value()], tensorNames_[pageIdx]);
    PageEntry &entry = table_[slotOf(layer)][pageIdx];
    try {
        te.stageToGpu(src.data(), gpu_.page(entry.page), src.numel());
    } catch (const EngineError &) {
        throw;
    } catch (const FatalError &e) {
        // Re-badge transfer failures (pinned-ring exhaustion and the
        // like) as the typed weight-stream fault the engine contains
        // at round scope, keeping the original diagnostic.
        throw EngineError(ErrorCode::WeightStreamFailed,
                          "weights.load",
                          std::string("staging layer ") +
                              std::to_string(layer.value()) + " page " +
                              std::to_string(pageIdx) + ": " +
                              e.what());
    }
    entry.residentLayer = static_cast<int>(layer.value());
}

void
PagedWeightStore::loadLayer(LayerIdx layer, TransferEngine &te)
{
    for (std::size_t p = 0; p < tensorCount_; ++p)
        loadPage(layer, p, te);
}

const float *
PagedWeightStore::tensor(LayerIdx layer, const std::string &name) const
{
    const PageEntry &entry = table_[slotOf(layer)][tensorIndex(name)];
    panicIf(entry.residentLayer != static_cast<int>(layer.value()),
            "weight page for '", name, "' of layer ", layer,
            " not resident (slot holds layer ", entry.residentLayer,
            ") — pipeline used weights before their transfer");
    return gpu_.page(entry.page);
}

ExpertWeights
PagedWeightStore::expert(LayerIdx layer, int e) const
{
    std::string p = "e" + std::to_string(e) + ".";
    ExpertWeights w;
    w.w1 = tensor(layer, p + "w1");
    w.w3 = tensor(layer, p + "w3");
    w.w2 = tensor(layer, p + "w2");
    return w;
}

ExpertResolver
PagedWeightStore::resolver(LayerIdx layer) const
{
    return [this, layer](int e) { return expert(layer, e); };
}

PageId
PagedWeightStore::pageOf(LayerIdx layer, const std::string &name) const
{
    return table_[slotOf(layer)][tensorIndex(name)].page;
}

} // namespace moelight
