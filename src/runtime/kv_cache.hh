/**
 * @file
 * CPU-resident paged KV cache manager. Sequences append one token's
 * K/V per layer per decode step; storage is page-granular (pageTokens
 * tokens per page) so memory is allocated lazily and freed per
 * sequence — the same structure vLLM-style paged attention uses, kept
 * host-side because MoE-Lightning performs attention on the CPU.
 *
 * Ownership (refcounts, sharing, capacity, typed errors) lives in the
 * shared PageTable (page_table.hh); this class is the float *storage*
 * view over it: one table block = one K arena page + one V arena
 * page, allocated and freed together.
 */

#ifndef MOELIGHT_RUNTIME_KV_CACHE_HH
#define MOELIGHT_RUNTIME_KV_CACHE_HH

#include <vector>

#include "common/sync.hh"
#include "kernels/attention.hh"
#include "model/model_config.hh"
#include "runtime/arena.hh"
#include "runtime/page_table.hh"

namespace moelight {

/** Materialized page-pointer lists backing a KvView. */
struct KvViewStorage
{
    std::vector<const float *> k;
    std::vector<const float *> v;
    KvView view;
};

/**
 * Paged KV cache for a fixed set of sequences across all layers.
 * Not thread-safe for concurrent append to the *same* (seq, layer);
 * the pipeline appends from a single DtoH queue thread.
 */
class KvCacheManager
{
  public:
    /**
     * @param cfg        Model shapes (nkv, headDim, l).
     * @param numSeqs    Sequences tracked.
     * @param pageTokens Tokens per KV page.
     * @param capacityTokens Total token capacity across sequences and
     *                   layers (pool size); exhausting it is fatal.
     */
    // NOLINTBEGIN(bugprone-easily-swappable-parameters): capacity
    // tuple, not indices; test_kv_cache pins the argument order.
    KvCacheManager(const ModelConfig &cfg, std::size_t numSeqs,
                   std::size_t pageTokens, std::size_t capacityTokens);
    // NOLINTEND(bugprone-easily-swappable-parameters)

    /** Append one token's K and V ([nkv * headDim] each) for
     *  (@p seq, @p layer). Throws EngineError(KvExhausted) when the
     *  pool cannot hold another page — the typed fault the serving
     *  engines contain at request scope. FaultInjector site:
     *  "kv.alloc". */
    void append(SeqId seq, LayerIdx layer, const float *k,
                const float *v);

    /** Current context length of (@p seq, @p layer). */
    std::size_t contextLen(SeqId seq, LayerIdx layer) const;

    /** Build an attention view over (@p seq, @p layer); @p storage
     *  owns the page-pointer arrays and must outlive the use. */
    void makeView(SeqId seq, LayerIdx layer,
                  KvViewStorage &storage) const;

    /** Release all pages of @p seq (it finished generating): a
     *  refcount drop per block, so pages shared with other sequences
     *  or pinned by the prefix cache survive — only the private tail
     *  frees physically. Throws EngineError(KvInvalidSequence) for an
     *  unknown sequence id and EngineError(KvDoubleFree) when @p seq
     *  holds no state (already freed, or never appended) — silently
     *  accepting either would let an engine bug corrupt the free list
     *  unnoticed. */
    void freeSequence(SeqId seq);

    /** True when @p seq currently holds any KV state — the guard an
     *  engine checks before freeSequence() for a request that may
     *  have faulted before its first append. */
    bool sequenceLive(SeqId seq) const;

    /** Pages referenced by live sequences (shared pages counted
     *  once): 2 arena pages (K + V) per referenced table block.
     *  Returns to 0 when every sequence frees, even while the prefix
     *  cache keeps pages pinned. */
    std::size_t usedPages() const
    {
        return 2 * table_.referencedBlocks();
    }
    std::size_t freePages() const { return pool_.freePages(); }

    /** Arena pages held by pinned-but-unreferenced prefix-cache
     *  blocks (resident beyond live-sequence usage). */
    std::size_t cachedPages() const
    {
        return 2 * (table_.residentBlocks() -
                    table_.referencedBlocks());
    }

    /** The shared ownership layer (prefix-cache attach/pin surface). */
    PageTable &pageTable() { return table_; }
    const PageTable &pageTable() const { return table_; }

  private:
    /** One table block's backing storage: the K and V arena pages. */
    struct PagePair
    {
        PageId k = kInvalidPage;
        PageId v = kInvalidPage;
    };

    ModelConfig cfg_;
    std::size_t numSeqs_;
    std::size_t pageTokens_;
    std::size_t tokenFloats_;  ///< nkv * headDim
    PageArena pool_;
    /** Guards the block→page mapping (pairs_ may REALLOCATE when a
     *  KV append on one executor worker allocates a block while the
     *  attention worker materializes views) and the freeIds_ recycle
     *  list. Page *contents* are unguarded: one writer per sequence
     *  stream, ordered before readers by the engine's chain events.
     *  Lock order: mu_ may be held while taking PageArena's internal
     *  lock (a leaf); never the reverse. */
    mutable Mutex mu_;
    std::vector<PagePair> pairs_ GUARDED_BY(mu_);  ///< by BlockId
    std::vector<BlockId> freeIds_ GUARDED_BY(mu_);  ///< recycled ids
    PageTable table_;  ///< last: its hooks capture this
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_KV_CACHE_HH
