/**
 * @file
 * Staged CPU -> pinned -> GPU transfer engine (Appendix A.1): weight
 * pages hop through a pinned staging pool so the two copy stages can
 * overlap (Fig. 11's "while transferring Weights 2 from pinned to
 * GPU, Weights 4 moves from CPU to pinned"). An optional bandwidth
 * throttle emulates a slow link for demos; tests run unthrottled.
 */

#ifndef MOELIGHT_RUNTIME_TRANSFER_ENGINE_HH
#define MOELIGHT_RUNTIME_TRANSFER_ENGINE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/units.hh"
#include "runtime/arena.hh"

namespace moelight {

/** Transfer statistics for observability / tests. */
struct TransferStats
{
    std::uint64_t hostToPinned = 0;  ///< bytes copied CPU -> pinned
    std::uint64_t pinnedToGpu = 0;   ///< bytes copied pinned -> GPU
    std::uint64_t gpuToHost = 0;     ///< bytes copied GPU -> CPU
    std::uint64_t hostToGpu = 0;     ///< direct bytes (activations)
};

/**
 * Copies float buffers between the arenas. All copies are
 * synchronous memcpys; asynchrony comes from running them on the
 * StreamExecutor's transfer queues.
 *
 * Thread-safe by construction: the only mutable state is the byte
 * counters, which are atomics — the HtoD and DtoH queue workers
 * account concurrently, and stats()/resetStats() may race them (a
 * snapshot is approximate while transfers are in flight, exact once
 * the executor has synced). No mutex, no lock ordering to respect.
 */
class TransferEngine
{
  public:
    /**
     * @param pinned     Staging arena (ring of pages).
     * @param throttleBw Simulated bandwidth in bytes/s; 0 = unthrottled.
     */
    explicit TransferEngine(PageArena &pinned, Bandwidth throttleBw = 0.0);

    /**
     * Stage @p floats floats from @p src (CPU memory) through the
     * pinned ring into @p dst (GPU arena page storage). Uses one
     * pinned page at a time; both hops are accounted.
     */
    void stageToGpu(const float *src, float *dst, std::size_t floats);

    /** Direct device-to-host copy (QKV offload path). */
    void copyToHost(const float *src, float *dst, std::size_t floats);

    /** Direct host-to-device copy (hidden-state load path). */
    void copyToGpu(const float *src, float *dst, std::size_t floats);

    /** Snapshot of the byte counters (safe to call concurrently). */
    TransferStats stats() const;
    void resetStats();

  private:
    void throttle(std::size_t bytes) const;

    PageArena &pinned_;
    Bandwidth throttleBw_;
    std::atomic<std::uint64_t> hostToPinned_{0};
    std::atomic<std::uint64_t> pinnedToGpu_{0};
    std::atomic<std::uint64_t> gpuToHost_{0};
    std::atomic<std::uint64_t> hostToGpu_{0};
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_TRANSFER_ENGINE_HH
