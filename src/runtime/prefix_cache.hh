/**
 * @file
 * Hash-keyed prefix tree over closed KV pages (SGLang radix-cache
 * style, page-granular): a submitted request whose prompt shares a
 * cached prefix attaches to those pages read-only — a PageTable
 * refcount bump per (page, layer) — and prefills only the novel
 * tail. Cached pages are pinned in the table so they survive their
 * inserting sequence's retirement; an LRU over refcount-0 pages
 * reclaims them under budget pressure (wired as the table's reclaim
 * hook, so eviction happens exactly when an append lacks budget).
 *
 * The tree is storage-agnostic: it only speaks BlockIds, so the same
 * implementation serves the float and the quantized cache.
 */

#ifndef MOELIGHT_RUNTIME_PREFIX_CACHE_HH
#define MOELIGHT_RUNTIME_PREFIX_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "runtime/page_table.hh"

namespace moelight {

/** Counters for the serving layer's cache-effectiveness report. One
 *  "page" here is one (pageTokens-token, layer) block — K and V
 *  together. */
struct PrefixCacheStats
{
    std::size_t lookups = 0;        ///< attach() calls
    std::size_t hits = 0;           ///< attaches matching >= 1 page
    std::size_t pagesReused = 0;    ///< blocks attached across layers
    std::size_t pagesEvicted = 0;   ///< blocks reclaimed by the LRU
    /** Float-equivalent K+V bytes whose prefill was skipped. */
    std::size_t bytesPrefillSkipped = 0;
};

/**
 * Page-granular prefix tree over a PageTable. Each node caches one
 * closed page of prompt tokens: the page's token ids (verified on
 * lookup, so a hash collision degrades to a miss, never a false hit)
 * plus the backing block per layer, pinned in the table.
 *
 * Single-threaded-by-contract: no internal locking. Like the
 * PageTable it sits on, it is reached from several threads taking
 * turns — attach()/insert() on the driver, evictOne() from the
 * table's reclaim hook inside appends running on queue workers — but
 * the engines' phase serialization guarantees the turns never
 * overlap, and debug builds assert that on each mutating call (see
 * docs/concurrency.md).
 */
class PrefixCache
{
  public:
    /**
     * @param table         Ownership layer of the cache being shared.
     * @param bytesPerToken Float-equivalent K+V bytes one token
     *                      occupies across all layers (for the
     *                      bytesPrefillSkipped stat).
     */
    PrefixCache(PageTable &table, std::size_t bytesPerToken);

    /** Longest cached prefix of @p prompt, in tokens (a multiple of
     *  pageTokens, capped one token short of the prompt so at least
     *  one novel token remains to prefill). No stats, no LRU touch —
     *  the admission planner's demand oracle. */
    std::size_t peekMatch(std::span<const int> prompt) const;

    /**
     * Attach sequence @p seq to the longest cached prefix of
     * @p prompt: every matched page's block refcount bumps on every
     * layer and the sequence's streams start at the matched length.
     * The sequence's streams must be empty. Returns the matched
     * token count (0 = cold, full prefill).
     */
    std::size_t attach(SeqId seq, std::span<const int> prompt);

    /**
     * Cache the closed pages of @p prompt from sequence @p seq's
     * streams (called after a successful prefill, when the streams
     * hold at least the prompt). Existing nodes are LRU-touched; new
     * nodes pin their blocks. Idempotent for an already-cached
     * prompt.
     */
    void insert(SeqId seq, std::span<const int> prompt);

    /** Evict the least-recently-used leaf page no live sequence
     *  references: unpin its blocks on every layer (physically
     *  freeing them) and drop the node. Returns false when nothing is
     *  evictable — the table's append then throws KvExhausted. */
    bool evictOne();

    /** Cached pages currently held (tree nodes). */
    std::size_t cachedNodes() const { return nodeCount_; }

    const PrefixCacheStats &stats() const { return stats_; }

  private:
    struct Node
    {
        Node *parent = nullptr;
        std::uint64_t key = 0;           ///< hash of tokens
        std::vector<int> tokens;         ///< one page of prompt ids
        std::vector<BlockId> blocks;     ///< one block per layer
        std::uint64_t lastUse = 0;
        std::map<std::uint64_t, std::unique_ptr<Node>> children;
    };

    static std::uint64_t hashPage(std::span<const int> page);
    /** Longest matching node chain for @p prompt (root excluded). */
    std::vector<Node *> matchChain(std::span<const int> prompt) const;
    /** True when no stream references any of @p n's blocks. */
    bool unreferenced(const Node &n) const;

    PageTable &table_;
    std::size_t bytesPerToken_;
    Node root_;
    std::size_t nodeCount_ = 0;
    std::uint64_t tick_ = 0;
    PrefixCacheStats stats_;
    mutable DebugSerialGate gate_;  ///< caller-serialization check
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_PREFIX_CACHE_HH
