#include "runtime/prefix_cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace moelight {

PrefixCache::PrefixCache(PageTable &table, std::size_t bytesPerToken)
    : table_(table), bytesPerToken_(bytesPerToken)
{
    fatalIf(bytesPerToken == 0,
            "prefix cache needs a per-token byte size");
}

std::uint64_t
PrefixCache::hashPage(std::span<const int> page)
{
    // FNV-1a over the token ids; collisions are verified against the
    // stored ids, so a collision is a miss, never a wrong prefix.
    std::uint64_t h = 14695981039346656037ull;
    for (int t : page) {
        h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(t));
        h *= 1099511628211ull;
    }
    return h;
}

std::vector<PrefixCache::Node *>
PrefixCache::matchChain(std::span<const int> prompt) const
{
    std::vector<Node *> chain;
    if (prompt.size() < 2)
        return chain;  // a 1-token prompt has no cacheable prefix
    std::size_t pt = table_.pageTokens();
    // Cap one token short of the prompt: the engine always prefills
    // at least one novel token (it needs that position's logits to
    // bootstrap decode).
    std::size_t max_pages = (prompt.size() - 1) / pt;
    const Node *cur = &root_;
    for (std::size_t p = 0; p < max_pages; ++p) {
        std::span<const int> page = prompt.subspan(p * pt, pt);
        auto it = cur->children.find(hashPage(page));
        if (it == cur->children.end() ||
            !std::equal(page.begin(), page.end(),
                        it->second->tokens.begin(),
                        it->second->tokens.end()))
            break;
        chain.push_back(it->second.get());
        cur = it->second.get();
    }
    return chain;
}

std::size_t
PrefixCache::peekMatch(std::span<const int> prompt) const
{
    return matchChain(prompt).size() * table_.pageTokens();
}

std::size_t
PrefixCache::attach(SeqId seq, std::span<const int> prompt)
{
    MOELIGHT_ASSERT_SERIAL(gate_);
    ++stats_.lookups;
    std::vector<Node *> chain = matchChain(prompt);
    if (chain.empty())
        return 0;
    ++tick_;
    for (Node *n : chain)
        n->lastUse = tick_;
    std::size_t layers = table_.layers();
    std::vector<BlockId> blocks(chain.size());
    for (LayerIdx l : IndexRange(LayerIdx(layers))) {
        for (std::size_t p = 0; p < chain.size(); ++p)
            blocks[p] = chain[p]->blocks[l.value()];
        table_.attachShared(seq, l, blocks);
    }
    std::size_t matched = chain.size() * table_.pageTokens();
    ++stats_.hits;
    stats_.pagesReused += chain.size() * layers;
    stats_.bytesPrefillSkipped += matched * bytesPerToken_;
    return matched;
}

void
PrefixCache::insert(SeqId seq, std::span<const int> prompt)
{
    MOELIGHT_ASSERT_SERIAL(gate_);
    std::size_t pt = table_.pageTokens();
    std::size_t pages = prompt.size() / pt;
    if (pages == 0)
        return;
    panicIf(table_.streamLen(seq, LayerIdx(0)) < pages * pt,
            "prefix insert before the sequence prefilled its prompt");
    std::size_t layers = table_.layers();
    ++tick_;
    Node *cur = &root_;
    for (std::size_t p = 0; p < pages; ++p) {
        std::span<const int> page = prompt.subspan(p * pt, pt);
        std::uint64_t key = hashPage(page);
        auto it = cur->children.find(key);
        if (it != cur->children.end()) {
            if (!std::equal(page.begin(), page.end(),
                            it->second->tokens.begin(),
                            it->second->tokens.end()))
                return;  // hash collision: leave the incumbent alone
            it->second->lastUse = tick_;
            cur = it->second.get();
            continue;
        }
        auto node = std::make_unique<Node>();
        node->parent = cur;
        node->key = key;
        node->tokens.assign(page.begin(), page.end());
        node->blocks.resize(layers);
        node->lastUse = tick_;
        for (LayerIdx l : IndexRange(LayerIdx(layers))) {
            BlockId b = table_.streamBlocks(seq, l)[p];
            panicIf(table_.blockTokens(b) != pt,
                    "prefix insert over a partial page");
            node->blocks[l.value()] = b;
            table_.pin(b);
        }
        Node *raw = node.get();
        cur->children.emplace(key, std::move(node));
        ++nodeCount_;
        cur = raw;
    }
}

bool
PrefixCache::unreferenced(const Node &n) const
{
    for (BlockId b : n.blocks)
        if (table_.blockStreamRefs(b) != 0)
            return false;
    return true;
}

bool
PrefixCache::evictOne()
{
    MOELIGHT_ASSERT_SERIAL(gate_);
    // LRU over evictable leaves: childless nodes (interior pages must
    // outlive their extensions) whose blocks no live sequence
    // references. The tree is small (distinct cached pages), so a
    // full scan per eviction is fine.
    Node *victim = nullptr;
    std::vector<Node *> stack;
    for (auto &kv : root_.children)
        stack.push_back(kv.second.get());
    while (!stack.empty()) {
        Node *n = stack.back();
        stack.pop_back();
        for (auto &kv : n->children)
            stack.push_back(kv.second.get());
        if (!n->children.empty() || !unreferenced(*n))
            continue;
        if (victim == nullptr || n->lastUse < victim->lastUse)
            victim = n;
    }
    if (victim == nullptr)
        return false;
    for (BlockId b : victim->blocks)
        table_.unpin(b);  // refs are 0, so this frees physically
    stats_.pagesEvicted += victim->blocks.size();
    Node *parent = victim->parent;
    parent->children.erase(victim->key);
    --nodeCount_;
    return true;
}

} // namespace moelight
