/**
 * @file
 * Asynchronous stream executor: four FIFO queues (GPU compute, CPU
 * compute, HtoD, DtoH) each drained by a worker thread — the host
 * analogue of CUDA streams plus the CPU worker pool. Tasks carry
 * dependency events; a queue blocks at its head until the head task's
 * dependencies are signalled, exactly like cudaStreamWaitEvent. The
 * CGOPipe launcher (Algorithm 1) enqueues tasks in pipeline order and
 * lets events enforce correctness.
 */

#ifndef MOELIGHT_RUNTIME_STREAM_EXECUTOR_HH
#define MOELIGHT_RUNTIME_STREAM_EXECUTOR_HH

#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.hh"
#include "sim/task_graph.hh"  // ResourceKind

namespace moelight {

/** Completion event, shareable across queues and threads: signal()
 *  and wait() synchronize through the event's own mutex, so a task's
 *  writes happen-before every dependent that waited on its event. */
class TaskEvent
{
  public:
    /** Block until the producing task finished. */
    void wait();
    /** True once signalled (non-blocking). */
    bool ready() const;
    /** Mark complete and wake waiters (called by the executor). */
    void signal();

  private:
    mutable Mutex mu_;
    CondVar cv_;
    bool done_ GUARDED_BY(mu_) = false;
};

using EventPtr = std::shared_ptr<TaskEvent>;

/**
 * Four-queue executor. Destruction drains all queues and joins the
 * workers. The first exception thrown by any task is captured and
 * rethrown from sync() / the destructor's drain (via std::terminate
 * avoidance: destructor swallows after draining; call sync() to
 * observe errors).
 */
class StreamExecutor
{
  public:
    StreamExecutor();
    ~StreamExecutor();

    StreamExecutor(const StreamExecutor &) = delete;
    StreamExecutor &operator=(const StreamExecutor &) = delete;

    /**
     * Enqueue @p fn on queue @p q after @p deps. Returns the task's
     * completion event.
     *
     * @p alsoSignal: extra caller-owned events the worker signals
     * right after the task's own completion event, on EVERY path —
     * success, thrown exception, injected fault. This is the only
     * safe way to publish a shared readiness event from a task:
     * signaling from inside @p fn deadlocks dependents whenever the
     * body dies before reaching the signal (task faults are injected
     * before the body even starts). The failure itself still
     * surfaces at sync().
     */
    EventPtr submit(ResourceKind q, std::vector<EventPtr> deps,
                    std::function<void()> fn,
                    std::vector<EventPtr> alsoSignal = {});

    /** Wait until every queue is empty and idle; rethrows the first
     *  task exception, if any. */
    void sync();

  private:
    struct QueueTask
    {
        std::vector<EventPtr> deps;
        std::function<void()> fn;
        EventPtr done;
        std::vector<EventPtr> alsoSignal;
    };

    struct Queue
    {
        Mutex mu;
        CondVar cv;
        std::deque<QueueTask> tasks GUARDED_BY(mu);
        bool stopping GUARDED_BY(mu) = false;
        bool idle GUARDED_BY(mu) = true;
        std::thread worker;  ///< set once at construction
    };

    void workerLoop(Queue &q);

    std::vector<std::unique_ptr<Queue>> queues_;  ///< fixed after ctor
    /** Lock-ordering leaf: errMu_ is taken with no other lock held. */
    Mutex errMu_;
    std::exception_ptr firstError_ GUARDED_BY(errMu_);
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_STREAM_EXECUTOR_HH
