#include "runtime/reference_engine.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.hh"
#include "kernels/attention.hh"
#include "kernels/linalg.hh"
#include "kernels/moe_ffn.hh"
#include "kernels/ops.hh"
#include "kernels/router.hh"

namespace moelight {

ReferenceEngine::ReferenceEngine(const ModelWeights &weights,
                                 std::optional<QuantKind> kvQuant,
                                 std::size_t kvPageTokens)
    : w_(weights), kvQuant_(kvQuant), kvPageTokens_(kvPageTokens)
{
    w_.cfg.validate();
    fatalIf(kvQuant_ && kvPageTokens_ == 0,
            "KV page must hold at least one token");
}

void
ReferenceEngine::reset()
{
    {
        MutexLock lk(frontMu_);
        fatalIf(!pending_.empty() || !active_.empty(),
                "reset() with requests in flight");
    }
    seqs_.clear();
    freeSeqs_.clear();
}

ReferenceEngine::SeqCache &
ReferenceEngine::cacheFor(SeqId seq)
{
    while (seqs_.size() <= seq.value()) {
        SeqCache c;
        c.k.resize(w_.cfg.l);
        c.v.resize(w_.cfg.l);
        seqs_.push_back(std::move(c));
    }
    return seqs_[seq.value()];
}

SeqId
ReferenceEngine::allocSeq()
{
    if (!freeSeqs_.empty()) {
        SeqId seq = freeSeqs_.back();
        freeSeqs_.pop_back();
        return seq;
    }
    SeqId seq(seqs_.size());
    cacheFor(seq);
    return seq;
}

void
ReferenceEngine::freeSeq(SeqId seq)
{
    SeqCache fresh;
    fresh.k.resize(w_.cfg.l);
    fresh.v.resize(w_.cfg.l);
    seqs_[seq.value()] = std::move(fresh);
    freeSeqs_.push_back(seq);
}

void
ReferenceEngine::submit(ServeRequest req)
{
    servingValidateRequest(req, w_.cfg.vocab);
    servingStampSubmitted(req);
    MutexLock lk(frontMu_);
    pending_.push_back(std::move(req));
}

bool
ReferenceEngine::cancel(std::int64_t id)
{
    MutexLock lk(frontMu_);
    bool found = activeIds_.count(id) != 0;
    for (const ServeRequest &r : pending_)
        found = found || r.id == id;
    if (found)
        cancelled_.insert(id);
    return found;
}

std::size_t
ReferenceEngine::pendingRequests() const
{
    MutexLock lk(frontMu_);
    return pending_.size();
}

std::size_t
ReferenceEngine::activeRequests() const
{
    MutexLock lk(frontMu_);
    return activeIds_.size();
}

bool
ReferenceEngine::reachedEnd(const ActiveRequest &a) const
{
    return servingReachedEnd(a.req, a.tokens);
}

void
ReferenceEngine::retireFinished(std::vector<RequestOutput> &out)
{
    std::vector<ActiveRequest> still;
    still.reserve(active_.size());
    for (ActiveRequest &a : active_) {
        if (!reachedEnd(a)) {
            still.push_back(std::move(a));
            continue;
        }
        RequestOutput r =
            servingMakeOutput(a.req, std::move(a.tokens),
                              a.prefillSeconds, a.decodeSeconds);
        freeSeq(a.seq);
        {
            MutexLock lk(frontMu_);
            activeIds_.erase(a.req.id);
        }
        out.push_back(std::move(r));
    }
    active_ = std::move(still);
}

void
ReferenceEngine::processLifecycle(std::vector<RequestOutput> &out)
{
    // Snapshot the cancellation set (ids cancelled from here on are
    // handled next round) so the driver works on a local copy — the
    // same discipline as PipelinedEngine::processLifecycle.
    std::unordered_set<std::int64_t> cancelled;
    {
        MutexLock lk(frontMu_);
        cancelled.swap(cancelled_);
    }

    // Queued requests: cancelled or expired ones retire without ever
    // running (no tokens, no KV).
    {
        MutexLock lk(frontMu_);
        std::deque<ServeRequest> keptPending;
        for (ServeRequest &r : pending_) {
            if (cancelled.count(r.id)) {
                out.push_back(servingMakeTerminalOutput(
                    r, {}, FinishReason::Cancelled, {}, 0.0, 0.0));
            } else if (servingDeadlineExpired(r)) {
                out.push_back(servingMakeTerminalOutput(
                    r, {}, FinishReason::TimedOut, {}, 0.0, 0.0));
            } else {
                keptPending.push_back(std::move(r));
            }
        }
        pending_ = std::move(keptPending);
    }

    // Active requests: retire with their partial tokens and release
    // KV immediately.
    std::vector<ActiveRequest> keptActive;
    keptActive.reserve(active_.size());
    for (ActiveRequest &a : active_) {
        FinishReason reason = FinishReason::Length;
        if (cancelled.count(a.req.id))
            reason = FinishReason::Cancelled;
        else if (servingDeadlineExpired(a.req))
            reason = FinishReason::TimedOut;
        else {
            keptActive.push_back(std::move(a));
            continue;
        }
        {
            MutexLock lk(frontMu_);
            activeIds_.erase(a.req.id);
        }
        out.push_back(servingMakeTerminalOutput(
            a.req, std::move(a.tokens), reason, {},
            a.prefillSeconds, a.decodeSeconds));
        freeSeq(a.seq);
    }
    active_ = std::move(keptActive);
    // Stale cancelled ids (request already finished) drop with the
    // local snapshot.
}

std::vector<RequestOutput>
ReferenceEngine::step()
{
    std::vector<RequestOutput> finished;
    processLifecycle(finished);

    // Admission: the oracle has no pipeline width or KV pool to
    // respect — every pending request is admitted and prefilled
    // immediately, which is exactly what makes it the per-request
    // oracle for any admission schedule the pipelined engine picks.
    // A prefill fault (e.g. injected KV-allocation failure in quant
    // mode) retires only that request with FinishReason::Error; the
    // rest of the queue still admits.
    std::deque<ServeRequest> admitted;
    {
        // One critical section for the queued→active hand-off: the
        // ids register as active in the same swap that empties the
        // queue, so a concurrent cancel() always finds them.
        MutexLock lk(frontMu_);
        admitted.swap(pending_);
        for (const ServeRequest &r : admitted)
            activeIds_.insert(r.id);
    }
    while (!admitted.empty()) {
        ActiveRequest a;
        a.req = std::move(admitted.front());
        admitted.pop_front();
        a.seq = allocSeq();
        auto t0 = std::chrono::steady_clock::now();
        try {
            for (int tok : a.req.prompt)
                a.hidden = forwardToken(a.seq, tok);
            std::vector<float> logits = logitsOf(a.hidden);
            a.tokens.push_back(static_cast<int>(
                argmax({logits.data(), logits.size()})));
        } catch (const FatalError &e) {
            freeSeq(a.seq);
            {
                MutexLock lk(frontMu_);
                activeIds_.erase(a.req.id);
            }
            finished.push_back(servingMakeTerminalOutput(
                a.req, {}, FinishReason::Error, e.what(),
                servingSecondsSince(t0), 0.0));
            continue;
        }
        a.prefillSeconds = servingSecondsSince(t0);
        active_.push_back(std::move(a));
    }
    retireFinished(finished);
    if (active_.empty())
        return finished;

    // One decode round: each active request advances by one token.
    // The last sampled token is fed back through the stack, then the
    // next one is sampled — the same order generate() always used, so
    // a request's KV stream never includes its final token. A decode
    // fault retires only the faulted request (its KV freed on the
    // spot); co-active requests keep generating unaffected.
    auto t0 = std::chrono::steady_clock::now();
    std::vector<ActiveRequest> still;
    still.reserve(active_.size());
    for (ActiveRequest &a : active_) {
        try {
            a.hidden = forwardToken(a.seq, a.tokens.back());
            std::vector<float> logits = logitsOf(a.hidden);
            a.tokens.push_back(static_cast<int>(
                argmax({logits.data(), logits.size()})));
        } catch (const FatalError &e) {
            freeSeq(a.seq);
            {
                MutexLock lk(frontMu_);
                activeIds_.erase(a.req.id);
            }
            finished.push_back(servingMakeTerminalOutput(
                a.req, std::move(a.tokens), FinishReason::Error,
                e.what(), a.prefillSeconds, a.decodeSeconds));
            continue;
        }
        still.push_back(std::move(a));
    }
    active_ = std::move(still);
    double secs = servingSecondsSince(t0);
    for (ActiveRequest &a : active_)
        a.decodeSeconds += secs;
    retireFinished(finished);
    return finished;
}

std::vector<float>
ReferenceEngine::forwardToken(SeqId seq, int token)
{
    const ModelConfig &cfg = w_.cfg;
    fatalIf(token < 0 || static_cast<std::size_t>(token) >= cfg.vocab,
            "token id out of vocabulary");
    SeqCache &cache = cacheFor(seq);

    std::size_t h1 = cfg.h1;
    std::size_t kvDim = cfg.nkv * cfg.headDim;
    std::size_t qDim = cfg.nq * cfg.headDim;
    float scale = 1.0f / std::sqrt(static_cast<float>(cfg.headDim));

    std::vector<float> x(w_.embedding.row(static_cast<std::size_t>(token)),
                         w_.embedding.row(static_cast<std::size_t>(token)) +
                             h1);
    std::vector<float> norm(h1), q(qDim), k(kvDim), v(kvDim);
    std::vector<float> attn_out(qDim), proj(h1);
    std::vector<float> router_logits(cfg.ne), ffn_out(h1);

    for (std::size_t li = 0; li < cfg.l; ++li) {
        const LayerWeights &lw = w_.layers[li];
        rmsNorm(x.data(), lw.attnNorm.data(), norm.data(), h1);
        matmulTransposedB(norm.data(), lw.wq.data(), q.data(), 1, h1,
                          qDim);
        matmulTransposedB(norm.data(), lw.wk.data(), k.data(), 1, h1,
                          kvDim);
        matmulTransposedB(norm.data(), lw.wv.data(), v.data(), 1, h1,
                          kvDim);
        if (kvQuant_) {
            if (!cache.quant)
                cache.quant = std::make_unique<QuantizedKvCache>(
                    cfg, 1, kvPageTokens_, *kvQuant_);
            cache.quant->append(SeqId(0), LayerIdx(li), k.data(),
                                v.data());
            // Deliberately the per-token fused decode walk, prompt
            // tokens included: this is the oracle semantics the
            // pipelined engine's batched prefill kernel
            // (gqaPrefillAttentionQuantFused) must replay
            // bit-for-bit.
            gqaDecodeAttentionQuantFused(
                q.data(), cfg.nq,
                cache.quant->makeQuantView(SeqId(0), LayerIdx(li)),
                attn_out.data(), scale);
        } else {
            auto &ck = cache.k[li];
            auto &cv = cache.v[li];
            ck.insert(ck.end(), k.begin(), k.end());
            cv.insert(cv.end(), v.begin(), v.end());

            std::size_t ctx = ck.size() / kvDim;
            const float *kp = ck.data();
            const float *vp = cv.data();
            KvView view;
            view.kPages = {&kp, 1};
            view.vPages = {&vp, 1};
            view.pageTokens = ctx;
            view.contextLen = ctx;
            view.nKv = cfg.nkv;
            view.headDim = cfg.headDim;
            gqaDecodeAttention(q.data(), cfg.nq, view,
                               attn_out.data(), scale);
        }

        matmulTransposedB(attn_out.data(), lw.wo.data(), proj.data(), 1,
                          qDim, h1);
        accumulate(x.data(), proj.data(), h1);

        rmsNorm(x.data(), lw.ffnNorm.data(), norm.data(), h1);
        matmulTransposedB(norm.data(), lw.router.data(),
                          router_logits.data(), 1, h1, cfg.ne);
        TokenRouting routing = routeTopK(router_logits, cfg.k);
        auto resolve = [&](int e) {
            ExpertWeights ew;
            ew.w1 = lw.w1[static_cast<std::size_t>(e)].data();
            ew.w3 = lw.w3[static_cast<std::size_t>(e)].data();
            ew.w2 = lw.w2[static_cast<std::size_t>(e)].data();
            return ew;
        };
        moeFfnForward(norm.data(), {&routing, 1}, resolve, 1, h1, cfg.h2,
                      ffn_out.data());
        accumulate(x.data(), ffn_out.data(), h1);
    }
    cache.len += 1;
    return x;
}

std::vector<float>
ReferenceEngine::logitsOf(const std::vector<float> &hidden) const
{
    const ModelConfig &cfg = w_.cfg;
    panicIf(hidden.size() != cfg.h1, "bad hidden size");
    std::vector<float> norm(cfg.h1), logits(cfg.vocab);
    rmsNorm(hidden.data(), w_.finalNorm.data(), norm.data(), cfg.h1);
    matmulTransposedB(norm.data(), w_.lmHead.data(), logits.data(), 1,
                      cfg.h1, cfg.vocab);
    return logits;
}

} // namespace moelight
