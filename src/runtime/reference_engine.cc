#include "runtime/reference_engine.hh"

#include <cmath>

#include "common/logging.hh"
#include "kernels/attention.hh"
#include "kernels/linalg.hh"
#include "kernels/moe_ffn.hh"
#include "kernels/ops.hh"
#include "kernels/router.hh"

namespace moelight {

ReferenceEngine::ReferenceEngine(const ModelWeights &weights,
                                 std::optional<QuantKind> kvQuant,
                                 std::size_t kvPageTokens)
    : w_(weights), kvQuant_(kvQuant), kvPageTokens_(kvPageTokens)
{
    w_.cfg.validate();
    fatalIf(kvQuant_ && kvPageTokens_ == 0,
            "KV page must hold at least one token");
}

void
ReferenceEngine::reset()
{
    seqs_.clear();
}

ReferenceEngine::SeqCache &
ReferenceEngine::cacheFor(std::size_t seq)
{
    while (seqs_.size() <= seq) {
        SeqCache c;
        c.k.resize(w_.cfg.l);
        c.v.resize(w_.cfg.l);
        seqs_.push_back(std::move(c));
    }
    return seqs_[seq];
}

std::vector<float>
ReferenceEngine::forwardToken(std::size_t seq, int token)
{
    const ModelConfig &cfg = w_.cfg;
    fatalIf(token < 0 || static_cast<std::size_t>(token) >= cfg.vocab,
            "token id out of vocabulary");
    SeqCache &cache = cacheFor(seq);

    std::size_t h1 = cfg.h1;
    std::size_t kvDim = cfg.nkv * cfg.headDim;
    std::size_t qDim = cfg.nq * cfg.headDim;
    float scale = 1.0f / std::sqrt(static_cast<float>(cfg.headDim));

    std::vector<float> x(w_.embedding.row(static_cast<std::size_t>(token)),
                         w_.embedding.row(static_cast<std::size_t>(token)) +
                             h1);
    std::vector<float> norm(h1), q(qDim), k(kvDim), v(kvDim);
    std::vector<float> attn_out(qDim), proj(h1);
    std::vector<float> router_logits(cfg.ne), ffn_out(h1);

    for (std::size_t li = 0; li < cfg.l; ++li) {
        const LayerWeights &lw = w_.layers[li];
        rmsNorm(x.data(), lw.attnNorm.data(), norm.data(), h1);
        matmulTransposedB(norm.data(), lw.wq.data(), q.data(), 1, h1,
                          qDim);
        matmulTransposedB(norm.data(), lw.wk.data(), k.data(), 1, h1,
                          kvDim);
        matmulTransposedB(norm.data(), lw.wv.data(), v.data(), 1, h1,
                          kvDim);
        if (kvQuant_) {
            if (!cache.quant)
                cache.quant = std::make_unique<QuantizedKvCache>(
                    cfg, 1, kvPageTokens_, *kvQuant_);
            cache.quant->append(0, li, k.data(), v.data());
            // Deliberately the per-token fused decode walk, prompt
            // tokens included: this is the oracle semantics the
            // pipelined engine's batched prefill kernel
            // (gqaPrefillAttentionQuantFused) must replay
            // bit-for-bit.
            gqaDecodeAttentionQuantFused(
                q.data(), cfg.nq, cache.quant->makeQuantView(0, li),
                attn_out.data(), scale);
        } else {
            auto &ck = cache.k[li];
            auto &cv = cache.v[li];
            ck.insert(ck.end(), k.begin(), k.end());
            cv.insert(cv.end(), v.begin(), v.end());

            std::size_t ctx = ck.size() / kvDim;
            const float *kp = ck.data();
            const float *vp = cv.data();
            KvView view;
            view.kPages = {&kp, 1};
            view.vPages = {&vp, 1};
            view.pageTokens = ctx;
            view.contextLen = ctx;
            view.nKv = cfg.nkv;
            view.headDim = cfg.headDim;
            gqaDecodeAttention(q.data(), cfg.nq, view,
                               attn_out.data(), scale);
        }

        matmulTransposedB(attn_out.data(), lw.wo.data(), proj.data(), 1,
                          qDim, h1);
        accumulate(x.data(), proj.data(), h1);

        rmsNorm(x.data(), lw.ffnNorm.data(), norm.data(), h1);
        matmulTransposedB(norm.data(), lw.router.data(),
                          router_logits.data(), 1, h1, cfg.ne);
        TokenRouting routing = routeTopK(router_logits, cfg.k);
        auto resolve = [&](int e) {
            ExpertWeights ew;
            ew.w1 = lw.w1[static_cast<std::size_t>(e)].data();
            ew.w3 = lw.w3[static_cast<std::size_t>(e)].data();
            ew.w2 = lw.w2[static_cast<std::size_t>(e)].data();
            return ew;
        };
        moeFfnForward(norm.data(), {&routing, 1}, resolve, 1, h1, cfg.h2,
                      ffn_out.data());
        accumulate(x.data(), ffn_out.data(), h1);
    }
    cache.len += 1;
    return x;
}

std::vector<float>
ReferenceEngine::logitsOf(const std::vector<float> &hidden) const
{
    const ModelConfig &cfg = w_.cfg;
    panicIf(hidden.size() != cfg.h1, "bad hidden size");
    std::vector<float> norm(cfg.h1), logits(cfg.vocab);
    rmsNorm(hidden.data(), w_.finalNorm.data(), norm.data(), cfg.h1);
    matmulTransposedB(norm.data(), w_.lmHead.data(), logits.data(), 1,
                      cfg.h1, cfg.vocab);
    return logits;
}

std::vector<GenerationResult>
ReferenceEngine::generate(const std::vector<std::vector<int>> &prompts,
                          int genLen)
{
    fatalIf(genLen <= 0, "generation length must be positive");
    reset();
    std::vector<GenerationResult> out(prompts.size());
    for (std::size_t s = 0; s < prompts.size(); ++s) {
        fatalIf(prompts[s].empty(), "empty prompt");
        std::vector<float> hidden;
        for (int tok : prompts[s])
            hidden = forwardToken(s, tok);
        for (int g = 0; g < genLen; ++g) {
            std::vector<float> logits = logitsOf(hidden);
            int next = static_cast<int>(
                argmax({logits.data(), logits.size()}));
            out[s].tokens.push_back(next);
            if (g + 1 < genLen)
                hidden = forwardToken(s, next);
        }
    }
    return out;
}

} // namespace moelight
