/**
 * @file
 * Deterministic fault injection for the serving runtime. Hot paths
 * that can fail in production — KV page allocation, weight-page
 * streaming, executor task bodies — call FaultInjector::check(site)
 * with a stable site name; a disarmed injector costs one relaxed
 * atomic load. Tests (and the fig7 fault-storm bench) arm sites
 * either count-addressed ("throw on the Nth check of kv.alloc" —
 * fully deterministic, the workhorse for test_fault_injection.cc) or
 * seeded-rate ("throw with probability p per check, from seed s" —
 * deterministic per seed, for storm workloads). A tripped site throws
 * EngineError(FaultInjected), which the engines contain at request or
 * round scope like any real fault.
 *
 * Site names (see docs/error_model.md):
 *   kv.alloc     — KvCacheManager::append / QuantizedKvCache::append
 *   weights.load — PagedWeightStore::loadPage
 *   exec.task    — StreamExecutor::workerLoop, before each task body
 *
 * The environment variable MOELIGHT_FAULT arms sites at process
 * startup without code changes, e.g.
 *   MOELIGHT_FAULT="kv.alloc:40"            # one-shot on 40th check
 *   MOELIGHT_FAULT="exec.task:p0.001:s7"    # rate 1e-3, seed 7
 *   MOELIGHT_FAULT="kv.alloc:40;exec.task:p0.01"
 */

#ifndef MOELIGHT_RUNTIME_FAULT_INJECTION_HH
#define MOELIGHT_RUNTIME_FAULT_INJECTION_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/sync.hh"

namespace moelight {

/** Process-wide injector; thread-safe (checks run on queue workers). */
class FaultInjector
{
  public:
    /** The singleton; parses MOELIGHT_FAULT once on first use. */
    static FaultInjector &instance();

    /** Hook for instrumented sites. No-op (one relaxed load) unless
     *  some site is armed; throws EngineError(FaultInjected) when
     *  @p site trips. */
    static void
    check(const char *site)
    {
        FaultInjector &fi = instance();
        if (fi.enabled_.load(std::memory_order_relaxed))
            fi.checkSlow(site);
    }

    /** Arm @p site to throw on its @p nth check from now (1-based).
     *  One-shot: the site disarms after firing, so a test gets
     *  exactly one mid-flight fault. */
    void armCount(const std::string &site, std::uint64_t nth);

    /** Arm @p site to throw with probability @p rate per check,
     *  driven by a deterministic generator seeded with @p seed. */
    void armRate(const std::string &site, double rate,
                 std::uint64_t seed);

    void disarm(const std::string &site);
    void disarmAll();

    /** Times @p site has thrown since armed (for test assertions). */
    std::uint64_t hits(const std::string &site) const;

  private:
    FaultInjector() = default;

    void checkSlow(const char *site);
    void loadEnv();
    void recomputeEnabled() REQUIRES(mu_);

    struct Site
    {
        std::uint64_t calls = 0;
        std::uint64_t hitCount = 0;
        // Count mode: fire when calls reaches nth (0 = off).
        std::uint64_t nth = 0;
        // Rate mode: fire when the next draw < rate.
        bool rateArmed = false;
        double rate = 0.0;
        std::uint64_t rngState = 0;
    };

    mutable Mutex mu_;
    std::map<std::string, Site> sites_ GUARDED_BY(mu_);
    /** Fast-path flag mirroring "any site armed"; written under mu_,
     *  read lock-free in check(). A stale read only costs one extra
     *  checkSlow() round-trip or skips a check that raced disarm. */
    std::atomic<bool> enabled_{false};
};

/** RAII helper for tests: arms one site in its scope, disarms (and
 *  clears every site) on exit so injector state cannot leak across
 *  test cases. */
class ScopedFault
{
  public:
    ScopedFault(const std::string &site, std::uint64_t nth)
        : site_(site)
    {
        FaultInjector::instance().armCount(site, nth);
    }
    ~ScopedFault() { FaultInjector::instance().disarmAll(); }

    ScopedFault(const ScopedFault &) = delete;
    ScopedFault &operator=(const ScopedFault &) = delete;

    std::uint64_t
    hits() const
    {
        return FaultInjector::instance().hits(site_);
    }

  private:
    std::string site_;
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_FAULT_INJECTION_HH
