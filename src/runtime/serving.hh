/**
 * @file
 * Request-level serving API. The paper's pipeline (§4.1, Appendix
 * A.2) exists to serve many concurrent requests, so the public
 * surface is request-centric: callers submit() individual
 * ServeRequests (each with its own generation budget and stop
 * tokens), drive the engine with step() — one decode round per call,
 * with admission of queued requests and retirement of finished ones
 * happening between rounds — and receive RequestOutputs as sequences
 * finish, Orca/vLLM-style continuous batching rather than a single
 * blocking batch call. The legacy batch generate() survives as a
 * thin convenience wrapper over submit()/drain().
 *
 * Implemented by both ReferenceEngine (the single-threaded oracle)
 * and PipelinedEngine (the CGOPipe pipeline); for identical weights
 * and KV geometry the two emit identical greedy tokens per request
 * regardless of how admissions interleave, because every sequence's
 * KV stream and per-row arithmetic are independent of its co-batch.
 */

#ifndef MOELIGHT_RUNTIME_SERVING_HH
#define MOELIGHT_RUNTIME_SERVING_HH

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/sync.hh"

namespace moelight {

/** One generation request, submitted to an Engine. */
struct ServeRequest
{
    /** Caller-chosen id, echoed in the RequestOutput. Outputs are
     *  keyed by it, so ids of in-flight requests should be unique. */
    std::int64_t id = 0;
    /** Prompt token ids; must be non-empty and < vocab. */
    std::vector<int> prompt;
    /** Generation budget for *this* request (>= 1). */
    int maxNewTokens = 0;
    /** Optional: finish early (FinishReason::Stop) when any of these
     *  tokens is sampled. The stop token is included in the output. */
    std::vector<int> stopTokens;
    /** Optional wall-clock deadline in milliseconds, measured from
     *  submit(); 0 = none. An expired request — queued or mid-
     *  generation — retires with FinishReason::TimedOut at the next
     *  step(), its pages released immediately. */
    double deadlineMs = 0.0;
    /** Stamped by Engine::submit(); the deadline epoch. Callers may
     *  pre-stamp it (e.g. when requeueing a preempted request) —
     *  submit() only stamps when unset. */
    std::chrono::steady_clock::time_point submittedAt{};
};

/** Why a request finished. */
enum class FinishReason
{
    Length,     ///< generated maxNewTokens tokens
    Stop,       ///< sampled one of the request's stop tokens
    Cancelled,  ///< Engine::cancel(id) before completion
    TimedOut,   ///< deadlineMs expired before completion
    Error,      ///< a runtime fault retired this request (see
                ///< RequestOutput::errorMessage)
};

/** Stable display name for a finish reason. */
inline const char *
finishReasonName(FinishReason r)
{
    switch (r) {
      case FinishReason::Length:    return "length";
      case FinishReason::Stop:      return "stop";
      case FinishReason::Cancelled: return "cancelled";
      case FinishReason::TimedOut:  return "timed_out";
      case FinishReason::Error:     return "error";
    }
    return "unknown";
}

/** Completed request, returned by Engine::step() / drain(). */
struct RequestOutput
{
    std::int64_t id = 0;
    std::vector<int> tokens;  ///< generated token ids (greedy);
                              ///< partial for non-Length/Stop reasons
    FinishReason finishReason = FinishReason::Length;
    /** Diagnostic for FinishReason::Error (empty otherwise). */
    std::string errorMessage;
    /** Times this request was preempted under KV pressure and
     *  recomputed; its tokens are unaffected (bit-identical to an
     *  uncontended run). */
    int preemptions = 0;
    /** Wall seconds of the prefill round that admitted this request
     *  (shared by every request admitted in the same round). */
    double prefillSeconds = 0.0;
    /** Wall seconds summed over the decode rounds this request was
     *  active in (shared by the round's co-batch). */
    double decodeSeconds = 0.0;
};

/** Generation output of the batch-convenience API (one request). */
struct GenerationResult
{
    std::vector<int> tokens;  ///< generated token ids (greedy)
};

/** True when the last generated token is one of @p req's stop
 *  tokens. Shared by both engines so finish semantics cannot
 *  drift. */
inline bool
servingStopHit(const ServeRequest &req, const std::vector<int> &tokens)
{
    return !tokens.empty() &&
           std::find(req.stopTokens.begin(), req.stopTokens.end(),
                     tokens.back()) != req.stopTokens.end();
}

/** True when @p req is finished given @p tokens generated so far. */
inline bool
servingReachedEnd(const ServeRequest &req,
                  const std::vector<int> &tokens)
{
    return tokens.size() >=
               static_cast<std::size_t>(req.maxNewTokens) ||
           servingStopHit(req, tokens);
}

/** Finish reason for a request that servingReachedEnd(). A stop
 *  token landing exactly on the budget counts as Stop — it would
 *  have ended the request regardless. */
inline FinishReason
servingFinishReason(const ServeRequest &req,
                    const std::vector<int> &tokens)
{
    return servingStopHit(req, tokens) ? FinishReason::Stop
                                       : FinishReason::Length;
}

/** Submit-time request validation, shared by every Engine
 *  implementation so the oracle and the pipeline accept exactly the
 *  same request set. */
inline void
servingValidateRequest(const ServeRequest &req, std::size_t vocab)
{
    fatalIf(req.prompt.empty(), "empty prompt");
    for (int tok : req.prompt)
        fatalIf(tok < 0 || static_cast<std::size_t>(tok) >= vocab,
                "prompt token out of vocabulary");
    fatalIf(req.maxNewTokens <= 0,
            "generation length must be positive");
}

/** Wall seconds since @p t0 — the timing unit of RequestOutput. */
inline double
servingSecondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Stamp submittedAt if the caller didn't (the deadline epoch). */
inline void
servingStampSubmitted(ServeRequest &req)
{
    if (req.submittedAt == std::chrono::steady_clock::time_point{})
        req.submittedAt = std::chrono::steady_clock::now();
}

/** True when @p req carries a deadline and it has passed. */
inline bool
servingDeadlineExpired(const ServeRequest &req)
{
    return req.deadlineMs > 0.0 &&
           servingSecondsSince(req.submittedAt) * 1000.0 >
               req.deadlineMs;
}

/** Build the RequestOutput for a finished request — one place for
 *  both engines, so a new output field cannot be wired into one
 *  retirement path and forgotten in the other. */
// NOLINTBEGIN(bugprone-easily-swappable-parameters): the two
// durations are phase timings in a fixed (prefill, decode) order that
// mirrors the RequestOutput fields they fill one line later.
inline RequestOutput
servingMakeOutput(const ServeRequest &req, std::vector<int> &&tokens,
                  double prefillSeconds, double decodeSeconds)
// NOLINTEND(bugprone-easily-swappable-parameters)
{
    RequestOutput r;
    r.id = req.id;
    r.finishReason = servingFinishReason(req, tokens);
    r.tokens = std::move(tokens);
    r.prefillSeconds = prefillSeconds;
    r.decodeSeconds = decodeSeconds;
    return r;
}

/** Build the RequestOutput for a request retired on a terminal
 *  lifecycle event (Cancelled / TimedOut / Error) with whatever
 *  tokens it had generated so far — the single construction point
 *  for both engines, like servingMakeOutput for natural finishes. */
// NOLINTBEGIN(bugprone-easily-swappable-parameters): same (prefill,
// decode) timing pair as servingMakeOutput above.
inline RequestOutput
servingMakeTerminalOutput(const ServeRequest &req,
                          std::vector<int> &&tokens,
                          FinishReason reason, std::string errorMessage,
                          double prefillSeconds, double decodeSeconds)
// NOLINTEND(bugprone-easily-swappable-parameters)
{
    RequestOutput r;
    r.id = req.id;
    r.finishReason = reason;
    r.tokens = std::move(tokens);
    r.errorMessage = std::move(errorMessage);
    r.prefillSeconds = prefillSeconds;
    r.decodeSeconds = decodeSeconds;
    return r;
}

/**
 * A request's KV reservation in request tokens: prompt + full
 * generation budget, rounded up to the pool's allocation @p quantum
 * (page size for a page-granular pool, 1 for exact accounting). The
 * single source of truth for both halves of admission control — the
 * batcher's budget check and the engine's reserved-usage report must
 * round identically or admission over-commits the pool.
 */
inline std::size_t
servingKvDemand(const ServeRequest &req, std::size_t quantum)
{
    std::size_t tokens =
        req.prompt.size() + static_cast<std::size_t>(req.maxNewTokens);
    return (tokens + quantum - 1) / quantum * quantum;
}

/**
 * A request's KV reservation *net of a shared prefix*: only the novel
 * prompt tail plus the generation budget is private demand — the
 * @p cachedTokens the prefix cache will attach read-only are already
 * resident and budgeted once, globally (PageTable::pinnedTokens).
 * With cachedTokens == 0 this is exactly servingKvDemand(). Both
 * halves of admission control (the batcher's oracle and the engine's
 * reserved-usage report) must use the same matched length or
 * admission over-commits the pool.
 */
// NOLINTBEGIN(bugprone-easily-swappable-parameters): (tokens already
// cached, rounding quantum) are both counts; transposing them fails
// the admission tests immediately.
inline std::size_t
servingKvDemandNet(const ServeRequest &req, std::size_t cachedTokens,
                   std::size_t quantum)
// NOLINTEND(bugprone-easily-swappable-parameters)
{
    panicIf(cachedTokens >= req.prompt.size() && !req.prompt.empty(),
            "prefix match must leave at least one novel prompt token");
    std::size_t tokens = req.prompt.size() - cachedTokens +
                         static_cast<std::size_t>(req.maxNewTokens);
    return (tokens + quantum - 1) / quantum * quantum;
}

/**
 * Abstract serving engine: the request-level interface both the
 * reference and the pipelined engine implement.
 *
 * Contract: submit() validates and enqueues; step() performs one
 * serving round — admit pending requests (capacity permitting), run
 * one decode iteration for every active sequence, retire finished
 * ones (releasing their KV immediately) — and returns the requests
 * that finished in that round.
 *
 * Threading: submit(), cancel(), pendingRequests(), activeRequests()
 * and idle() may be called from any thread, concurrently with a
 * step() in flight. step() / drain() / generate() belong to exactly
 * one driver thread at a time — two concurrent step() calls are a
 * contract violation (detected in debug builds). See
 * docs/concurrency.md for the locking model behind this split.
 */
class Engine
{
  public:
    virtual ~Engine() = default;

    /** Enqueue @p req. Fatal on empty prompt, out-of-vocab token, or
     *  non-positive maxNewTokens. */
    virtual void submit(ServeRequest req) = 0;

    /** One serving round; returns requests that finished in it. */
    virtual std::vector<RequestOutput> step() = 0;

    /**
     * Request cancellation of the in-flight request @p id (queued or
     * generating). Returns true when the id was found; its
     * RequestOutput (FinishReason::Cancelled, partial tokens) is
     * returned by the next step(), which also releases its KV pages.
     * False when the id is unknown or already finished. Callable from
     * any thread, including concurrently with step().
     */
    virtual bool cancel(std::int64_t id) = 0;

    /** Requests submitted but not yet admitted. */
    virtual std::size_t pendingRequests() const = 0;
    /** Requests admitted and still generating. */
    virtual std::size_t activeRequests() const = 0;

    /** No queued and no in-flight work. */
    bool
    idle() const
    {
        return pendingRequests() == 0 && activeRequests() == 0;
    }

    /** step() until idle; returns all outputs in finish order. */
    std::vector<RequestOutput> drain();

    /**
     * Legacy batch convenience: submit one request per prompt (ids
     * 0..n-1, uniform @p genLen), drain, and return the results in
     * prompt order — a thin wrapper over the request API. Greedy
     * tokens are identical to the request path because co-batching
     * never changes per-sequence arithmetic. Fatal unless the engine
     * is idle() (ids would collide with in-flight requests).
     */
    std::vector<GenerationResult>
    generate(const std::vector<std::vector<int>> &prompts, int genLen);

  protected:
    /** Hook for generate(): reset per-batch engine counters. */
    virtual void resetBatchStats() {}
};

/**
 * Continuous-batching admission control: a FIFO of submitted requests
 * plus the Algorithm 2 (Appendix A.2) planner deciding, between
 * decode rounds, which of them fit the currently free micro-batch
 * slots and KV budget. Balanced placement and budget-driven deferral
 * come from batchRequests(); deferred requests keep their arrival
 * order and are retried every round, so nothing is dropped.
 *
 * Single-threaded-by-contract: the batcher has no internal locking.
 * It IS touched from several threads — the engine's front-end calls
 * enqueue() from submitters while the driver admits — but every
 * access is serialized externally (PipelinedEngine::frontMu_).
 * Debug builds assert the serialization on every mutating call.
 */
class ContinuousBatcher
{
  public:
    /**
     * @param microBatch     Sequences per micro-batch partition.
     * @param kvBudgetTokens Total KV token budget (prompt + generated
     *                       per request summed); 0 = unlimited.
     * @param pageQuantum    KV allocation granularity in tokens: each
     *                       request's budget demand rounds up to a
     *                       multiple of it, matching a page-granular
     *                       pool where a 1-token sequence still pins
     *                       whole pages. 1 = exact token accounting.
     * @param headAgeLimit   Rounds the queue head may be passed over
     *                       before younger requests are held back on
     *                       its behalf (and the engine may preempt
     *                       active sequences for it); must be >= 1.
     */
    // NOLINTBEGIN(bugprone-easily-swappable-parameters): budget tuple
    // (batch size, token budget, quantum, age limit) — all counts;
    // test_serving pins the argument order.
    ContinuousBatcher(std::size_t microBatch,
                      std::size_t kvBudgetTokens,
                      std::size_t pageQuantum = 1,
                      std::size_t headAgeLimit = kHeadAgeLimit);
    // NOLINTEND(bugprone-easily-swappable-parameters)

    /** Enqueue in arrival order. */
    void enqueue(ServeRequest req);

    /**
     * Plan one admission round: up to @p freeSlots requests whose
     * prompt + generation budget fits the remaining KV budget
     * (@p kvTokensInUse already spoken for), placed by Algorithm 2
     * and returned in its balanced partition order. Admitted requests
     * leave the queue; deferred ones stay, in arrival order.
     *
     * Starvation control for the head of the line: if the planner
     * defers everything but the oldest request alone fits the whole
     * remaining budget, it is admitted by itself; and once the
     * oldest request has been passed over kHeadAgeLimit rounds,
     * younger requests stop being admitted until capacity has
     * drained enough for it (or, if it exceeds the engine's whole
     * budget, until the engine idles and force-admits it via
     * admitOne()).
     */
    // NOLINTBEGIN(bugprone-easily-swappable-parameters): (slots free,
    // KV tokens in use) are counts in different units; the admission
    // tests fail on any transposition.
    std::vector<ServeRequest> admit(std::size_t freeSlots,
                                    std::size_t kvTokensInUse);
    // NOLINTEND(bugprone-easily-swappable-parameters)

    /** Force-admit the oldest request (caller checked pending() > 0):
     *  the escape hatch when the planner defers everything while the
     *  engine is idle, so an oversized request faults in the KV pool
     *  with a real diagnostic instead of starving forever. */
    ServeRequest admitOne();

    std::size_t
    pending() const
    {
        return queue_.size();
    }

    /** True when the queue head has been passed over headAgeLimit
     *  rounds — the engine's trigger for KV-pressure preemption:
     *  waiting for natural retirement alone would starve the head
     *  behind long-running active sequences. */
    bool
    headAged() const
    {
        return !queue_.empty() && headDeferrals_ >= headAgeLimit_;
    }

    /** Requeue a preempted request just behind the current head (at
     *  the front when the queue is empty). It keeps priority over
     *  later arrivals — it already earned admission once — but does
     *  not displace the aged head whose starvation triggered the
     *  preemption, which would livelock the two. */
    void requeue(ServeRequest req);

    /** Remove every queued request matching @p pred (in order) and
     *  return them — the cancellation/deadline hook. Resets the
     *  head's age when the head itself is removed. */
    std::vector<ServeRequest>
    removeIf(const std::function<bool(const ServeRequest &)> &pred);

    /** True when a queued request has id @p id. */
    bool contains(std::int64_t id) const;

    /**
     * Install a per-request demand oracle consulted instead of the
     * default prompt+budget rounding — the engine's hook for prefix-
     * aware admission, where a request whose prompt prefix is cached
     * only demands its novel tail (servingKvDemandNet against the
     * current cache contents). Pass an empty function to restore the
     * default.
     */
    void setDemandOracle(
        std::function<std::size_t(const ServeRequest &)> oracle)
    {
        MOELIGHT_ASSERT_SERIAL(gate_);
        demandOracle_ = std::move(oracle);
    }

    /** Default for headAgeLimit (EngineConfig::headAgeLimit). */
    static constexpr std::size_t kHeadAgeLimit = 8;

  private:
    std::size_t kvDemand(const ServeRequest &req) const;

    std::size_t microBatch_;
    std::size_t kvBudgetTokens_;
    std::size_t pageQuantum_;
    std::size_t headAgeLimit_;
    std::size_t headDeferrals_ = 0;
    std::function<std::size_t(const ServeRequest &)> demandOracle_;
    std::deque<ServeRequest> queue_;
    mutable DebugSerialGate gate_;  ///< caller-serialization check
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_SERVING_HH
