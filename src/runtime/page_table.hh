/**
 * @file
 * Shared refcounted page/block table — the single ownership layer
 * under both KV caches. A *block* is one page-worth of K plus V for
 * one (sequence, layer) stream position range; the table tracks which
 * blocks each stream references, how many streams reference each
 * block, and how many external pins (the prefix cache) hold it
 * resident. Storage itself stays in the cache (float arena pages or
 * quantized buffers) behind three hooks, so the refcount, capacity,
 * copy-on-write and typed-error logic exists exactly once instead of
 * per-cache (the duplication PRs 2-6 patched in stereo).
 *
 * Sharing model (vLLM/SGLang radix-cache style):
 *  - A stream owns its open (partial) tail block exclusively; closed
 *    (full) blocks may be shared read-only by any number of streams
 *    via attachShared() — a refcount bump, no copy.
 *  - Appending into a block another holder can see (stream refs > 1
 *    or pinned) copy-on-writes it: a fresh block takes the copied
 *    prefix, the shared original is released by this stream only.
 *  - A block is freed physically when its last stream reference AND
 *    last pin drop; pinned-but-unreferenced blocks stay resident
 *    (cached prefixes) but do not count as "used" by live sequences.
 *
 * Capacity is enforced here, before any storage hook runs: block-
 * granular (the float arena) or token-granular (the quant budget).
 * On pressure the reclaim hook (the prefix cache's LRU eviction) is
 * invoked until space frees or it gives up, then the append throws
 * the typed EngineError(KvExhausted) the engines contain at request
 * scope.
 *
 * Single-threaded-by-contract: no internal locking. The table IS
 * reached from several threads — decode appends run on the DtoH
 * queue worker, prefill appends on the Gpu queue worker, admission /
 * retirement / prefix attach on the driver thread — but the engines'
 * phase structure (task events within a round, exec_->sync() between
 * phases) serializes every access. Debug builds assert that
 * serialization on each mutating call (see DebugSerialGate in
 * common/sync.hh and docs/concurrency.md).
 */

#ifndef MOELIGHT_RUNTIME_PAGE_TABLE_HH
#define MOELIGHT_RUNTIME_PAGE_TABLE_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/strong_types.hh"
#include "common/sync.hh"

namespace moelight {

/** Identifies one block; doubles as the owning cache's storage index
 *  (the hooks translate it to arena pages / quantized buffers).
 *  A strong index domain: not interchangeable with PageId, SeqId or
 *  any other index space (see docs/index_domains.md). */
using BlockId = StrongIndex<struct BlockIdTag, std::uint32_t>;

/** Storage callbacks a cache provides to the table. */
struct PageTableHooks
{
    /** Allocate backing storage for a new (empty) block. */
    std::function<BlockId()> allocBlock;
    /** Copy the first @p tokens tokens of @p src into @p dst (the
     *  copy-on-write path; only ever called on open blocks). */
    std::function<void(BlockId dst, BlockId src, std::size_t tokens)>
        copyBlock;
    /** Release backing storage of @p block (refs and pins are 0). */
    std::function<void(BlockId)> freeBlock;
};

/** How the table meters capacity. */
enum class PageCapacityModel
{
    Blocks,  ///< resident blocks vs a block budget (float arena)
    Tokens,  ///< resident tokens vs a token budget (quant cache)
};

/** Where appendToken() placed one token. */
struct AppendSlot
{
    BlockId block{};
    /** Token offset within the block. */
    std::size_t offset = 0;
    /** The block's storage was freshly allocated this call (offset is
     *  0, or the copy-on-write prefix was copied in). */
    bool fresh = false;
    /** Copy-on-write fired: [0, offset) of @p block was copied from
     *  the previously shared block. */
    bool copied = false;
};

/**
 * Refcounted block table for numSeqs x layers streams. All typed KV
 * ownership errors (KvExhausted @ kv.alloc, KvInvalidSequence /
 * KvDoubleFree @ kv.free) originate here — one contract for both
 * caches.
 */
class PageTable
{
  public:
    /**
     * @param numSeqs    Sequence slots tracked.
     * @param layers     Layers per sequence (streams = numSeqs*layers).
     * @param pageTokens Tokens per (full) block.
     * @param model      Capacity metering (blocks or tokens).
     * @param capacity   Budget in the model's unit; 0 = unlimited
     *                   (Tokens model only).
     * @param hooks      Storage callbacks; all three must be set.
     */
    // NOLINTBEGIN(bugprone-easily-swappable-parameters): capacity
    // tuple, not indices; test_page_table pins the argument order.
    PageTable(std::size_t numSeqs, std::size_t layers,
              std::size_t pageTokens, PageCapacityModel model,
              std::size_t capacity, PageTableHooks hooks);
    // NOLINTEND(bugprone-easily-swappable-parameters)

    /**
     * Reserve space for one token on (@p seq, @p layer): opens a
     * fresh block at page boundaries, copy-on-writes a shared open
     * tail, and enforces the capacity budget (driving the reclaim
     * hook first). Throws EngineError(KvExhausted, "kv.alloc") when
     * space cannot be made. FaultInjector site "kv.alloc" — checked
     * per block in the Blocks model (allocation granularity) and per
     * token in the Tokens model, preserving each cache's legacy
     * injection cadence. The caller writes the token's payload into
     * the returned slot via its own storage.
     */
    AppendSlot appendToken(SeqId seq, LayerIdx layer);

    /**
     * Attach (@p seq, @p layer) read-only to @p blocks — the prefix
     * cache hit path. The stream must be empty; every block must be
     * resident and full (only closed pages are shareable). Each
     * block's stream refcount bumps; the stream's length becomes
     * blocks.size() * pageTokens.
     */
    void attachShared(SeqId seq, LayerIdx layer,
                      std::span<const BlockId> blocks);

    /** Keep @p block resident independent of stream references (the
     *  prefix cache holding a cached page). */
    void pin(BlockId block);

    /** Drop one pin; frees the block physically when no stream
     *  references remain either. Throws EngineError(KvDoubleFree,
     *  "kv.free") on a block with no pins — the refcounted analogue
     *  of a double freeSequence(). */
    void unpin(BlockId block);

    /** Release all blocks of @p seq across every layer (decref; a
     *  block shared with other streams or pinned by the prefix cache
     *  survives — only the private tail frees physically). Throws
     *  EngineError(KvInvalidSequence, "kv.free") for an out-of-range
     *  id and EngineError(KvDoubleFree, "kv.free") when @p seq holds
     *  no state. */
    void freeSequence(SeqId seq);

    /** True when @p seq references any block on any layer. */
    bool sequenceLive(SeqId seq) const;

    /** Tokens stored in (@p seq, @p layer)'s stream. */
    std::size_t streamLen(SeqId seq, LayerIdx layer) const;

    /** Blocks of (@p seq, @p layer), in position order. */
    std::span<const BlockId> streamBlocks(SeqId seq,
                                          LayerIdx layer) const;

    /** Tokens stored in @p block (== pageTokens once closed). */
    std::size_t blockTokens(BlockId block) const;
    /** Streams currently referencing @p block. */
    std::size_t blockStreamRefs(BlockId block) const;
    /** External pins on @p block. */
    std::size_t blockPins(BlockId block) const;

    /** Physically allocated blocks (what capacity meters in the
     *  Blocks model) — includes pinned-but-unreferenced cache
     *  blocks. */
    std::size_t residentBlocks() const { return residentBlocks_; }
    /** Distinct blocks referenced by at least one stream (counted
     *  once however many streams share them) — live-sequence usage,
     *  0 once every sequence freed, even with cached pages pinned. */
    std::size_t referencedBlocks() const { return referencedBlocks_; }
    /** Physically stored tokens (what capacity meters in the Tokens
     *  model; shared blocks count once). */
    std::size_t residentTokens() const { return residentTokens_; }
    /** Tokens resident in pinned blocks (the prefix cache's working
     *  set), counted once however many pins or streams hold them —
     *  what admission must budget on top of per-request private
     *  demand. Token-layer units, like residentTokens(). */
    std::size_t pinnedTokens() const { return pinnedTokens_; }

    std::size_t pageTokens() const { return pageTokens_; }
    std::size_t numSeqs() const { return numSeqs_; }
    std::size_t layers() const { return layers_; }

    /** Install the under-pressure reclaimer (the prefix cache's LRU
     *  eviction): called repeatedly while an appendToken() lacks
     *  budget; return true after freeing something, false to give up
     *  (the append then throws KvExhausted). */
    void setReclaimHook(std::function<bool()> hook)
    {
        reclaim_ = std::move(hook);
    }

  private:
    struct BlockMeta
    {
        std::uint32_t streamRefs = 0;
        std::uint32_t pins = 0;
        std::size_t tokens = 0;
        bool resident = false;
    };

    struct Stream
    {
        std::vector<BlockId> blocks;
        std::size_t len = 0;
    };

    Stream &at(SeqId seq, LayerIdx layer);
    const Stream &at(SeqId seq, LayerIdx layer) const;
    BlockMeta &meta(BlockId b);
    const BlockMeta &meta(BlockId b) const;

    /** Make room for one more block (Blocks model) or @p needTokens
     *  tokens (Tokens model), driving the reclaim hook; throws
     *  KvExhausted when it cannot. */
    // NOLINTBEGIN(bugprone-easily-swappable-parameters): the two raw
    // sizes are (current length, tokens wanted) — lengths, not
    // indices; the seq/layer pair is already strongly typed.
    void ensureCapacity(SeqId seq, LayerIdx layer,
                        std::size_t len, std::size_t needTokens);
    // NOLINTEND(bugprone-easily-swappable-parameters)
    BlockId allocFresh();
    void ref(BlockId b);
    void deref(BlockId b);
    void releasePhysical(BlockId b);

    std::size_t numSeqs_;
    std::size_t layers_;
    std::size_t pageTokens_;
    PageCapacityModel model_;
    std::size_t capacity_;
    PageTableHooks hooks_;
    std::function<bool()> reclaim_;

    std::vector<Stream> streams_;    ///< [seq * layers + layer]
    std::vector<BlockMeta> meta_;    ///< indexed by BlockId
    std::size_t residentBlocks_ = 0;
    std::size_t referencedBlocks_ = 0;
    std::size_t residentTokens_ = 0;
    std::size_t pinnedTokens_ = 0;
    mutable DebugSerialGate gate_;  ///< caller-serialization check
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_PAGE_TABLE_HH
