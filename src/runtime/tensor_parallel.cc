#include "runtime/tensor_parallel.hh"

#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "kernels/attention.hh"
#include "kernels/linalg.hh"
#include "kernels/moe_ffn.hh"
#include "kernels/ops.hh"

namespace moelight {

namespace {

/** Copy rows [lo, hi) of a [rows, cols] tensor. */
Tensor
sliceRows(const Tensor &src, std::size_t lo, std::size_t hi)
{
    std::size_t cols = src.dim(1);
    Tensor out({hi - lo, cols});
    std::memcpy(out.data(), src.data() + lo * cols,
                (hi - lo) * cols * sizeof(float));
    return out;
}

/** Copy columns [lo, hi) of a [rows, cols] tensor. */
Tensor
sliceCols(const Tensor &src, std::size_t lo, std::size_t hi)
{
    std::size_t rows = src.dim(0), cols = src.dim(1);
    Tensor out({rows, hi - lo});
    for (std::size_t r = 0; r < rows; ++r)
        std::memcpy(out.data() + r * (hi - lo),
                    src.data() + r * cols + lo,
                    (hi - lo) * sizeof(float));
    return out;
}

} // namespace

std::vector<TpShard>
shardModel(const ModelWeights &full, std::size_t tp)
{
    const ModelConfig &cfg = full.cfg;
    fatalIf(tp == 0, "tensor parallel degree must be positive");
    fatalIf(cfg.nq % tp != 0 || cfg.nkv % tp != 0 || cfg.h2 % tp != 0,
            "nq, nkv and h2 must be divisible by the TP degree");

    std::size_t nq_s = cfg.nq / tp;
    std::size_t nkv_s = cfg.nkv / tp;
    std::size_t h2_s = cfg.h2 / tp;
    std::size_t hd = cfg.headDim;

    std::vector<TpShard> shards(tp);
    for (std::size_t r = 0; r < tp; ++r) {
        TpShard &s = shards[r];
        s.rank = r;
        s.tp = tp;
        s.cfg = cfg;
        s.cfg.nq = nq_s;
        s.cfg.nkv = nkv_s;
        s.cfg.h2 = h2_s;
        s.layers.reserve(cfg.l);
        for (std::size_t li = 0; li < cfg.l; ++li) {
            const LayerWeights &lw = full.layers[li];
            LayerWeights out;
            out.attnNorm = lw.attnNorm.clone();
            out.ffnNorm = lw.ffnNorm.clone();
            out.router = lw.router.clone();
            // Column-parallel QKV: this shard's query / KV heads.
            out.wq = sliceRows(lw.wq, r * nq_s * hd,
                               (r + 1) * nq_s * hd);
            out.wk = sliceRows(lw.wk, r * nkv_s * hd,
                               (r + 1) * nkv_s * hd);
            out.wv = sliceRows(lw.wv, r * nkv_s * hd,
                               (r + 1) * nkv_s * hd);
            // Row-parallel O: the input columns matching our heads.
            out.wo = sliceCols(lw.wo, r * nq_s * hd,
                               (r + 1) * nq_s * hd);
            for (std::size_t e = 0; e < cfg.ne; ++e) {
                out.w1.push_back(
                    sliceRows(lw.w1[e], r * h2_s, (r + 1) * h2_s));
                out.w3.push_back(
                    sliceRows(lw.w3[e], r * h2_s, (r + 1) * h2_s));
                out.w2.push_back(
                    sliceCols(lw.w2[e], r * h2_s, (r + 1) * h2_s));
            }
            s.layers.push_back(std::move(out));
        }
    }
    return shards;
}

std::vector<float>
shardAttention(const TpShard &shard, LayerIdx layer,
               const std::vector<float> &x, std::vector<float> &kHist,
               std::vector<float> &vHist)
{
    const ModelConfig &c = shard.cfg;
    panicIf(layer.value() >= shard.layers.size(),
            "layer out of range");
    panicIf(x.size() != c.h1, "bad hidden size");
    const LayerWeights &lw = shard.layers[layer.value()];

    std::size_t q_dim = c.nq * c.headDim;
    std::size_t kv_dim = c.nkv * c.headDim;
    std::vector<float> norm(c.h1), q(q_dim), k(kv_dim), v(kv_dim);
    rmsNorm(x.data(), lw.attnNorm.data(), norm.data(), c.h1);
    matmulTransposedB(norm.data(), lw.wq.data(), q.data(), 1, c.h1,
                      q_dim);
    matmulTransposedB(norm.data(), lw.wk.data(), k.data(), 1, c.h1,
                      kv_dim);
    matmulTransposedB(norm.data(), lw.wv.data(), v.data(), 1, c.h1,
                      kv_dim);
    kHist.insert(kHist.end(), k.begin(), k.end());
    vHist.insert(vHist.end(), v.begin(), v.end());

    std::size_t ctx = kHist.size() / kv_dim;
    const float *kp = kHist.data();
    const float *vp = vHist.data();
    KvView view;
    view.kPages = {&kp, 1};
    view.vPages = {&vp, 1};
    view.pageTokens = ctx;
    view.contextLen = ctx;
    view.nKv = c.nkv;
    view.headDim = c.headDim;
    std::vector<float> attn(q_dim);
    gqaDecodeAttention(q.data(), c.nq, view, attn.data(),
                       1.0f / std::sqrt(static_cast<float>(c.headDim)));

    std::vector<float> partial(c.h1);
    matmulTransposedB(attn.data(), lw.wo.data(), partial.data(), 1,
                      q_dim, c.h1);
    return partial;
}

std::vector<float>
shardMoeFfn(const TpShard &shard, LayerIdx layer,
            const std::vector<float> &xNorm, const TokenRouting &routing)
{
    const ModelConfig &c = shard.cfg;
    panicIf(layer.value() >= shard.layers.size(),
            "layer out of range");
    panicIf(xNorm.size() != c.h1, "bad hidden size");
    const LayerWeights &lw = shard.layers[layer.value()];

    auto resolve = [&](int e) {
        ExpertWeights w;
        auto idx = static_cast<std::size_t>(e);
        w.w1 = lw.w1[idx].data();
        w.w3 = lw.w3[idx].data();
        w.w2 = lw.w2[idx].data();
        return w;
    };
    std::vector<float> out(c.h1);
    moeFfnForward(xNorm.data(), {&routing, 1}, resolve, 1, c.h1, c.h2,
                  out.data());
    return out;
}

} // namespace moelight
