/**
 * @file
 * Typed runtime error contract for the serving stack. Faults that a
 * serving engine can attribute to one request (or one serving round)
 * and survive — KV pool exhaustion mid-append, a weight-page transfer
 * failing, an executor task body throwing, an injected fault — are
 * raised as EngineError, which carries a machine-readable ErrorCode
 * and the fault site name (the FaultInjector's addressing scheme, see
 * docs/error_model.md). EngineError derives from FatalError so legacy
 * call sites that treat these as unrecoverable configuration faults
 * keep working; the engines catch EngineError/FatalError at request
 * scope and retire only the affected request(s) with
 * FinishReason::Error. PanicError (internal invariant violations)
 * deliberately stays outside this hierarchy: a bug should crash the
 * test, not be laundered into a request error.
 */

#ifndef MOELIGHT_RUNTIME_STATUS_HH
#define MOELIGHT_RUNTIME_STATUS_HH

#include <string>
#include <utility>

#include "common/logging.hh"

namespace moelight {

/** Machine-readable classification of a recoverable runtime fault. */
enum class ErrorCode
{
    KvExhausted,         ///< KV pool/budget ran out mid-append
    KvInvalidSequence,   ///< freeSequence() of an unknown sequence id
    KvDoubleFree,        ///< freeSequence() of an already-freed sequence
    WeightStreamFailed,  ///< weight-page staging/transfer failed
    ExecutorTaskFailed,  ///< a stream-executor task body failed
    FaultInjected,       ///< deterministic FaultInjector trip
    IndexOverflow,       ///< checked index narrowing overflowed
};

/** Stable name for logs and error messages. */
inline const char *
errorCodeName(ErrorCode c)
{
    switch (c) {
      case ErrorCode::KvExhausted:        return "KvExhausted";
      case ErrorCode::KvInvalidSequence:  return "KvInvalidSequence";
      case ErrorCode::KvDoubleFree:       return "KvDoubleFree";
      case ErrorCode::WeightStreamFailed: return "WeightStreamFailed";
      case ErrorCode::ExecutorTaskFailed: return "ExecutorTaskFailed";
      case ErrorCode::FaultInjected:      return "FaultInjected";
      case ErrorCode::IndexOverflow:      return "IndexOverflow";
    }
    return "UnknownError";
}

/**
 * A recoverable, attributable runtime fault. @p site uses the
 * FaultInjector naming scheme ("kv.alloc", "weights.load",
 * "exec.task") so an error message always says *where* in the
 * pipeline the fault originated, whether it was injected or real.
 */
class EngineError : public FatalError
{
  public:
    EngineError(ErrorCode code, std::string site,
                const std::string &msg)
        : FatalError("[" + std::string(errorCodeName(code)) + " @ " +
                     site + "] " + msg),
          code_(code),
          site_(std::move(site))
    {
    }

    ErrorCode code() const { return code_; }
    const std::string &site() const { return site_; }

  private:
    ErrorCode code_;
    std::string site_;
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_STATUS_HH
