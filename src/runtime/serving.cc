#include "runtime/serving.hh"

#include <algorithm>

#include "common/logging.hh"
#include "runtime/batcher.hh"

namespace moelight {

std::vector<RequestOutput>
Engine::drain()
{
    std::vector<RequestOutput> out;
    while (!idle()) {
        std::vector<RequestOutput> round = step();
        out.insert(out.end(),
                   std::make_move_iterator(round.begin()),
                   std::make_move_iterator(round.end()));
    }
    return out;
}

std::vector<GenerationResult>
Engine::generate(const std::vector<std::vector<int>> &prompts,
                 int genLen)
{
    fatalIf(prompts.empty(), "no prompts");
    fatalIf(genLen <= 0, "generation length must be positive");
    fatalIf(!idle(),
            "generate() requires an idle engine (its request ids "
            "would collide with in-flight serving requests)");
    resetBatchStats();
    for (std::size_t s = 0; s < prompts.size(); ++s) {
        ServeRequest req;
        req.id = static_cast<std::int64_t>(s);
        req.prompt = prompts[s];
        req.maxNewTokens = genLen;
        submit(std::move(req));
    }
    std::vector<GenerationResult> out(prompts.size());
    for (RequestOutput &r : drain()) {
        panicIf(r.id < 0 ||
                    static_cast<std::size_t>(r.id) >= out.size(),
                "generate(): engine returned unknown request id ",
                r.id);
        out[static_cast<std::size_t>(r.id)].tokens =
            std::move(r.tokens);
    }
    return out;
}

ContinuousBatcher::ContinuousBatcher(std::size_t microBatch,
                                     std::size_t kvBudgetTokens,
                                     std::size_t pageQuantum,
                                     std::size_t headAgeLimit)
    : microBatch_(microBatch),
      kvBudgetTokens_(kvBudgetTokens),
      pageQuantum_(pageQuantum),
      headAgeLimit_(headAgeLimit)
{
    fatalIf(microBatch_ == 0, "micro-batch must be positive");
    fatalIf(pageQuantum_ == 0, "page quantum must be positive");
    fatalIf(headAgeLimit_ == 0,
            "head age limit must be >= 1 (rounds the queue head may "
            "be passed over)");
}

std::size_t
ContinuousBatcher::kvDemand(const ServeRequest &req) const
{
    return demandOracle_ ? demandOracle_(req)
                         : servingKvDemand(req, pageQuantum_);
}

void
ContinuousBatcher::enqueue(ServeRequest req)
{
    MOELIGHT_ASSERT_SERIAL(gate_);
    queue_.push_back(std::move(req));
}

std::vector<ServeRequest>
ContinuousBatcher::admit(std::size_t freeSlots,
                         std::size_t kvTokensInUse)
{
    MOELIGHT_ASSERT_SERIAL(gate_);
    // Rounds that never consider the head — nothing queued, or no
    // free sequence slot for anyone — must not advance its age: the
    // deferral count measures rounds that looked at the head and
    // admitted past (or instead of) it, because it gates starvation
    // control (held-back younger arrivals, engine preemption). Aging
    // it on no-capacity rounds would trigger preemption storms while
    // the engine is merely full of slots, not starving the head.
    if (queue_.empty() || freeSlots == 0)
        return {};

    // Free micro-batch partitions Algorithm 2 may fill this round.
    // Capacity nUb * ubs never exceeds freeSlots; a remainder smaller
    // than a partition simply waits for the next round.
    std::size_t n_ub = std::max<std::size_t>(1, freeSlots / microBatch_);
    std::size_t ubs = std::min(microBatch_, freeSlots);

    // Remaining KV budget, split evenly across the free partitions
    // (Algorithm 2's cacheSize is per partition). 0 = unlimited.
    constexpr std::size_t kUnlimited = std::size_t(-1) / 4;
    std::size_t free_budget =
        kvBudgetTokens_ == 0
            ? kUnlimited
            : (kvBudgetTokens_ > kvTokensInUse
                   ? kvBudgetTokens_ - kvTokensInUse
                   : 0);
    std::size_t per_partition = free_budget / n_ub;

    // Aged head of line: after headAgeLimit passed-over rounds,
    // stop admitting younger requests and wait for capacity to drain
    // to the oldest one. Active sequences only retire from here on,
    // so free_budget grows monotonically until the head fits — or
    // the engine idles and force-admits it via admitOne().
    if (headDeferrals_ >= headAgeLimit_) {
        std::vector<ServeRequest> only;
        if (kvDemand(queue_.front()) <= free_budget) {
            headDeferrals_ = 0;
            only.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        return only;
    }

    // Describe the front window of the queue for the planner; ids are
    // dense queue indices and come back unchanged, so placements map
    // straight onto queue_ without re-sorting. The genLen field
    // carries the page-rounding slack on top of the real budget so
    // Algorithm 2's promptLen + genLen budget term equals the pool's
    // true demand. Bounding the window keeps planning O(window log
    // window) per round instead of re-sorting a deep backlog to admit
    // at most freeSlots requests; a few times the admittable count
    // still gives Algorithm 2 slack to balance and to skip over-
    // budget requests.
    std::size_t window = std::min(
        queue_.size(),
        std::max<std::size_t>(4 * freeSlots, 4 * microBatch_));
    std::vector<Request> descr;
    descr.reserve(window);
    for (std::size_t i = 0; i < window; ++i) {
        // With a prefix-aware oracle the demand can be smaller than
        // the full prompt (the cached prefix is not private demand);
        // clamp the prompt term so promptLen + genLen always equals
        // the true demand without underflowing the slack.
        std::size_t demand = kvDemand(queue_[i]);
        std::size_t pl = std::min(queue_[i].prompt.size(), demand);
        descr.push_back({static_cast<int>(i), static_cast<int>(pl),
                         static_cast<int>(demand - pl)});
    }
    BatchPlan plan =
        batchRequests(std::move(descr), n_ub, ubs, per_partition);

    std::vector<bool> taken(window, false);
    std::vector<ServeRequest> admitted;
    for (const auto &mb : plan.microBatches)
        for (const Request &r : mb) {
            std::size_t qi = static_cast<std::size_t>(r.id);
            taken[qi] = true;
            admitted.push_back(std::move(queue_[qi]));
        }
    bool headAdmitted = !admitted.empty() && taken[0];
    if (admitted.empty()) {
        // The per-partition split deferred everything. If the oldest
        // request alone fits the *whole* remaining budget, send it
        // through by itself: otherwise a large-but-fitting request
        // could wait forever behind the split while smaller later
        // arrivals keep the engine busy.
        if (kvDemand(queue_.front()) <= free_budget) {
            headAdmitted = true;
            admitted.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
    } else {
        // Deferred requests keep their arrival order; the tail beyond
        // the planning window was never touched.
        std::deque<ServeRequest> rest;
        for (std::size_t i = 0; i < window; ++i)
            if (!taken[i])
                rest.push_back(std::move(queue_[i]));
        for (std::size_t i = window; i < queue_.size(); ++i)
            rest.push_back(std::move(queue_[i]));
        queue_ = std::move(rest);
    }
    // The single aging site: every path through here planned over a
    // window containing the head, so by now it was either admitted
    // (age resets for the next head) or considered and passed over
    // (age advances). The early returns above — empty queue, no free
    // slots, the aged-head hold — deliberately bypass this.
    headDeferrals_ = headAdmitted ? 0 : headDeferrals_ + 1;
    return admitted;
}

void
ContinuousBatcher::requeue(ServeRequest req)
{
    MOELIGHT_ASSERT_SERIAL(gate_);
    if (queue_.empty())
        queue_.push_front(std::move(req));
    else
        queue_.insert(queue_.begin() + 1, std::move(req));
}

std::vector<ServeRequest>
ContinuousBatcher::removeIf(
    const std::function<bool(const ServeRequest &)> &pred)
{
    MOELIGHT_ASSERT_SERIAL(gate_);
    std::vector<ServeRequest> removed;
    std::deque<ServeRequest> kept;
    bool headRemoved = !queue_.empty() && pred(queue_.front());
    for (ServeRequest &r : queue_) {
        if (pred(r))
            removed.push_back(std::move(r));
        else
            kept.push_back(std::move(r));
    }
    queue_ = std::move(kept);
    // The head's accumulated age belonged to the removed request; the
    // new head starts earning its own.
    if (headRemoved)
        headDeferrals_ = 0;
    return removed;
}

bool
ContinuousBatcher::contains(std::int64_t id) const
{
    for (const ServeRequest &r : queue_)
        if (r.id == id)
            return true;
    return false;
}

ServeRequest
ContinuousBatcher::admitOne()
{
    MOELIGHT_ASSERT_SERIAL(gate_);
    panicIf(queue_.empty(), "admitOne() on an empty queue");
    headDeferrals_ = 0;
    ServeRequest req = std::move(queue_.front());
    queue_.pop_front();
    return req;
}

} // namespace moelight
