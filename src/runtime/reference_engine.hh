/**
 * @file
 * Sequential reference engine: the straightforward single-threaded
 * MoE transformer forward pass, token by token, with plain contiguous
 * KV tensors. It is the correctness oracle for the pipelined CGOPipe
 * engine — both must emit identical tokens per request for identical
 * weights, whether driven through the batch generate() convenience or
 * the request-level submit()/step() serving API (the reference
 * admits every pending request unconditionally, advances each active
 * request one token per step, and frees a request's KV the moment it
 * finishes, so it is also the oracle for staggered admission and
 * mixed generation lengths).
 */

#ifndef MOELIGHT_RUNTIME_REFERENCE_ENGINE_HH
#define MOELIGHT_RUNTIME_REFERENCE_ENGINE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/strong_types.hh"
#include "common/sync.hh"
#include "runtime/quant_kv_cache.hh"
#include "runtime/serving.hh"
#include "runtime/weights.hh"

namespace moelight {

/**
 * Single-threaded oracle. Not performance-oriented: prefill is
 * processed token by token through all layers. The compute itself is
 * sequential, but the Engine front-end contract still holds: submit /
 * cancel / pendingRequests / activeRequests are callable from any
 * thread concurrently with one driver's step() (same locking split
 * as PipelinedEngine, so front-end tests exercise both engines).
 */
class ReferenceEngine : public Engine
{
  public:
    /**
     * @p weights must outlive the engine. When @p kvQuant is set, KV
     * is stored in a QuantizedKvCache with @p kvPageTokens tokens per
     * page and attention runs through the fused quant kernel — the
     * single-threaded oracle for the pipelined engine's quantized
     * mode (page geometry must match for token-exact comparison).
     */
    explicit ReferenceEngine(
        const ModelWeights &weights,
        std::optional<QuantKind> kvQuant = std::nullopt,
        std::size_t kvPageTokens = 16);

    // Request-level serving API (Engine).
    void submit(ServeRequest req) override;
    std::vector<RequestOutput> step() override;
    bool cancel(std::int64_t id) override;
    std::size_t pendingRequests() const override;
    std::size_t activeRequests() const override;

    /**
     * Forward one token of one sequence through the full stack and
     * return the output hidden state (pre-norm). Exposed for
     * fine-grained testing. @p seq indexes the internal KV caches,
     * which are created on first use; avoid mixing manual
     * forwardToken() streams with in-flight serving requests, which
     * allocate the same indices.
     */
    std::vector<float> forwardToken(SeqId seq, int token);

    /** Logits from a hidden state (final norm + LM head). */
    std::vector<float> logitsOf(const std::vector<float> &hidden) const;

    /** Drop all KV state; only valid when no requests are in flight. */
    void reset();

  private:
    struct SeqCache
    {
        /** Per layer: [len, nkv*headDim] grow-able K and V. */
        std::vector<std::vector<float>> k;
        std::vector<std::vector<float>> v;
        /** Quantized mode: one single-sequence cache per sequence
         *  (lazily created; k/v above stay empty). */
        std::unique_ptr<QuantizedKvCache> quant;
        std::size_t len = 0;
    };

    /** One admitted, still-generating request. */
    struct ActiveRequest
    {
        ServeRequest req;
        SeqId seq{0};               ///< index into seqs_
        std::vector<int> tokens;    ///< generated so far
        std::vector<float> hidden;  ///< last pre-norm hidden state
        double prefillSeconds = 0.0;
        double decodeSeconds = 0.0;
    };

    SeqCache &cacheFor(SeqId seq);
    SeqId allocSeq();
    void freeSeq(SeqId seq);
    bool reachedEnd(const ActiveRequest &a) const;
    void retireFinished(std::vector<RequestOutput> &out);
    /** Retire cancelled and deadline-expired requests — queued or
     *  active — with terminal outputs, before any compute runs. */
    void processLifecycle(std::vector<RequestOutput> &out);

    const ModelWeights &w_;
    std::optional<QuantKind> kvQuant_;
    std::size_t kvPageTokens_;
    std::vector<SeqCache> seqs_;
    std::vector<SeqId> freeSeqs_;
    std::vector<ActiveRequest> active_;  ///< driver-owned
    /** Front-end lock (same split as PipelinedEngine::frontMu_):
     *  guards the submission queue, the cancellation set and the id
     *  mirror of active_. Lock-ordering leaf. */
    mutable Mutex frontMu_;
    std::deque<ServeRequest> pending_ GUARDED_BY(frontMu_);
    std::unordered_set<std::int64_t> cancelled_
        GUARDED_BY(frontMu_);  ///< ids to cancel at the next step()
    /** Ids of requests in active_, so cancel() needn't touch the
     *  driver-owned vector. */
    std::unordered_set<std::int64_t> activeIds_ GUARDED_BY(frontMu_);
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_REFERENCE_ENGINE_HH
