/**
 * @file
 * Sequential reference engine: the straightforward single-threaded
 * MoE transformer forward pass, token by token, with plain contiguous
 * KV tensors. It is the correctness oracle for the pipelined CGOPipe
 * engine — both must emit identical tokens for identical weights.
 */

#ifndef MOELIGHT_RUNTIME_REFERENCE_ENGINE_HH
#define MOELIGHT_RUNTIME_REFERENCE_ENGINE_HH

#include <memory>
#include <optional>
#include <vector>

#include "runtime/quant_kv_cache.hh"
#include "runtime/weights.hh"

namespace moelight {

/** Generation output for one request. */
struct GenerationResult
{
    std::vector<int> tokens;  ///< generated token ids (greedy)
};

/**
 * Single-threaded oracle. Not performance-oriented: prefill is
 * processed token by token through all layers.
 */
class ReferenceEngine
{
  public:
    /**
     * @p weights must outlive the engine. When @p kvQuant is set, KV
     * is stored in a QuantizedKvCache with @p kvPageTokens tokens per
     * page and attention runs through the fused quant kernel — the
     * single-threaded oracle for the pipelined engine's quantized
     * mode (page geometry must match for token-exact comparison).
     */
    explicit ReferenceEngine(
        const ModelWeights &weights,
        std::optional<QuantKind> kvQuant = std::nullopt,
        std::size_t kvPageTokens = 16);

    /**
     * Greedily generate @p genLen tokens for each prompt. Prompts
     * must be non-empty; token ids must be < vocab.
     */
    std::vector<GenerationResult>
    generate(const std::vector<std::vector<int>> &prompts, int genLen);

    /**
     * Forward one token of one sequence through the full stack and
     * return the output hidden state (pre-norm). Exposed for
     * fine-grained testing. @p seq indexes the internal KV caches,
     * which are created on first use.
     */
    std::vector<float> forwardToken(std::size_t seq, int token);

    /** Logits from a hidden state (final norm + LM head). */
    std::vector<float> logitsOf(const std::vector<float> &hidden) const;

    /** Drop all KV state (start a fresh batch). */
    void reset();

  private:
    struct SeqCache
    {
        /** Per layer: [len, nkv*headDim] grow-able K and V. */
        std::vector<std::vector<float>> k;
        std::vector<std::vector<float>> v;
        /** Quantized mode: one single-sequence cache per sequence
         *  (lazily created; k/v above stay empty). */
        std::unique_ptr<QuantizedKvCache> quant;
        std::size_t len = 0;
    };

    SeqCache &cacheFor(std::size_t seq);

    const ModelWeights &w_;
    std::optional<QuantKind> kvQuant_;
    std::size_t kvPageTokens_;
    std::vector<SeqCache> seqs_;
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_REFERENCE_ENGINE_HH
