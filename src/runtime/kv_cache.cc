#include "runtime/kv_cache.hh"

#include <cstring>

#include "common/logging.hh"

namespace moelight {

KvCacheManager::KvCacheManager(const ModelConfig &cfg,
                               std::size_t numSeqs,
                               std::size_t pageTokens,
                               std::size_t capacityTokens)
    : cfg_(cfg),
      numSeqs_(numSeqs),
      pageTokens_(pageTokens),
      tokenFloats_(cfg.nkv * cfg.headDim),
      pool_("kv-cache", pageTokens * cfg.nkv * cfg.headDim,
            // K and V pools share one arena: 2 pages per page-worth
            // of tokens, rounded up, per (seq, layer) lazily.
            2 * ((capacityTokens + pageTokens - 1) / pageTokens) + 2),
      table_(numSeqs, cfg.l, pageTokens, PageCapacityModel::Blocks,
             // One block = one K + one V page, so the block budget is
             // half the arena — the same boundary the legacy
             // freePages() < 2 pre-check enforced.
             pool_.numPages() / 2,
             PageTableHooks{
                 [this] {
                     // Append-side workers allocate while the
                     // attention worker views other sequences; mu_
                     // covers the (reallocating!) pairs_ vector. It
                     // is held across the arena calls — arena's lock
                     // is a leaf, so the order mu_ → pool_.mu_ is
                     // safe and fixed.
                     MutexLock lk(mu_);
                     BlockId id;
                     if (!freeIds_.empty()) {
                         id = freeIds_.back();
                         freeIds_.pop_back();
                     } else {
                         id = narrowIndex<BlockId>(pairs_.size());
                         pairs_.emplace_back();
                     }
                     // Allocate K and V together so a block is
                     // all-or-nothing (the table checked capacity, so
                     // the arena cannot be exhausted here).
                     pairs_[id.value()].k = pool_.allocate();
                     pairs_[id.value()].v = pool_.allocate();
                     return id;
                 },
                 [this](BlockId dst, BlockId src,
                        std::size_t tokens) {
                     PagePair d, s;
                     {
                         MutexLock lk(mu_);
                         d = pairs_[dst.value()];
                         s = pairs_[src.value()];
                     }
                     // Copy outside mu_: the pages themselves belong
                     // to the two streams involved in the CoW.
                     std::memcpy(pool_.page(d.k), pool_.page(s.k),
                                 tokens * tokenFloats_ *
                                     sizeof(float));
                     std::memcpy(pool_.page(d.v), pool_.page(s.v),
                                 tokens * tokenFloats_ *
                                     sizeof(float));
                 },
                 [this](BlockId id) {
                     MutexLock lk(mu_);
                     pool_.release(pairs_[id.value()].k);
                     pool_.release(pairs_[id.value()].v);
                     pairs_[id.value()] = PagePair{};
                     freeIds_.push_back(id);
                 },
             })
{
    fatalIf(numSeqs == 0, "KV cache for zero sequences");
    fatalIf(pageTokens == 0, "KV page must hold at least one token");
}

void
KvCacheManager::append(SeqId seq, LayerIdx layer,
                       const float *k, const float *v)
{
    AppendSlot slot = table_.appendToken(seq, layer);
    PagePair pair;
    {
        MutexLock lk(mu_);
        pair = pairs_[slot.block.value()];
    }
    float *kp = pool_.page(pair.k) + slot.offset * tokenFloats_;
    float *vp = pool_.page(pair.v) + slot.offset * tokenFloats_;
    std::memcpy(kp, k, tokenFloats_ * sizeof(float));
    std::memcpy(vp, v, tokenFloats_ * sizeof(float));
}

std::size_t
KvCacheManager::contextLen(SeqId seq, LayerIdx layer) const
{
    return table_.streamLen(seq, layer);
}

void
KvCacheManager::makeView(SeqId seq, LayerIdx layer,
                         KvViewStorage &storage) const
{
    storage.k.clear();
    storage.v.clear();
    for (BlockId b : table_.streamBlocks(seq, layer)) {
        PagePair pair;
        {
            MutexLock lk(mu_);
            pair = pairs_[b.value()];
        }
        storage.k.push_back(pool_.page(pair.k));
        storage.v.push_back(pool_.page(pair.v));
    }
    storage.view.kPages = storage.k;
    storage.view.vPages = storage.v;
    storage.view.pageTokens = pageTokens_;
    storage.view.contextLen = table_.streamLen(seq, layer);
    storage.view.nKv = cfg_.nkv;
    storage.view.headDim = cfg_.headDim;
}

bool
KvCacheManager::sequenceLive(SeqId seq) const
{
    return table_.sequenceLive(seq);
}

void
KvCacheManager::freeSequence(SeqId seq)
{
    table_.freeSequence(seq);
}

} // namespace moelight
