#include "runtime/kv_cache.hh"

#include <cstring>

#include "common/logging.hh"
#include "runtime/fault_injection.hh"
#include "runtime/status.hh"

namespace moelight {

KvCacheManager::KvCacheManager(const ModelConfig &cfg,
                               std::size_t numSeqs,
                               std::size_t pageTokens,
                               std::size_t capacityTokens)
    : cfg_(cfg),
      numSeqs_(numSeqs),
      pageTokens_(pageTokens),
      tokenFloats_(cfg.nkv * cfg.headDim),
      pool_("kv-cache", pageTokens * cfg.nkv * cfg.headDim,
            // K and V pools share one arena: 2 pages per page-worth
            // of tokens, rounded up, per (seq, layer) lazily.
            2 * ((capacityTokens + pageTokens - 1) / pageTokens) + 2),
      slots_(numSeqs * cfg.l)
{
    fatalIf(numSeqs == 0, "KV cache for zero sequences");
    fatalIf(pageTokens == 0, "KV page must hold at least one token");
}

KvCacheManager::SeqLayer &
KvCacheManager::at(std::size_t seq, std::size_t layer)
{
    panicIf(seq >= numSeqs_ || layer >= cfg_.l,
            "KV slot (", seq, ",", layer, ") out of range");
    return slots_[seq * cfg_.l + layer];
}

const KvCacheManager::SeqLayer &
KvCacheManager::at(std::size_t seq, std::size_t layer) const
{
    return const_cast<KvCacheManager *>(this)->at(seq, layer);
}

void
KvCacheManager::append(std::size_t seq, std::size_t layer,
                       const float *k, const float *v)
{
    SeqLayer &sl = at(seq, layer);
    std::size_t off = sl.len % pageTokens_;
    if (off == 0) {
        FaultInjector::check("kv.alloc");
        // Both the K and the V page must fit: checking up front keeps
        // the failure all-or-nothing (no K page allocated that the
        // matching V allocation then strands).
        if (pool_.freePages() < 2)
            throw EngineError(
                ErrorCode::KvExhausted, "kv.alloc",
                "KV pool out of pages appending token " +
                    std::to_string(sl.len) + " of (seq " +
                    std::to_string(seq) + ", layer " +
                    std::to_string(layer) + ")");
        sl.kPages.push_back(pool_.allocate());
        sl.vPages.push_back(pool_.allocate());
    }
    float *kp = pool_.page(sl.kPages.back()) + off * tokenFloats_;
    float *vp = pool_.page(sl.vPages.back()) + off * tokenFloats_;
    std::memcpy(kp, k, tokenFloats_ * sizeof(float));
    std::memcpy(vp, v, tokenFloats_ * sizeof(float));
    ++sl.len;
}

std::size_t
KvCacheManager::contextLen(std::size_t seq, std::size_t layer) const
{
    return at(seq, layer).len;
}

void
KvCacheManager::makeView(std::size_t seq, std::size_t layer,
                         KvViewStorage &storage) const
{
    const SeqLayer &sl = at(seq, layer);
    storage.k.clear();
    storage.v.clear();
    for (PageId p : sl.kPages)
        storage.k.push_back(pool_.page(p));
    for (PageId p : sl.vPages)
        storage.v.push_back(pool_.page(p));
    storage.view.kPages = storage.k;
    storage.view.vPages = storage.v;
    storage.view.pageTokens = pageTokens_;
    storage.view.contextLen = sl.len;
    storage.view.nKv = cfg_.nkv;
    storage.view.headDim = cfg_.headDim;
}

bool
KvCacheManager::sequenceLive(std::size_t seq) const
{
    if (seq >= numSeqs_)
        return false;
    for (std::size_t layer = 0; layer < cfg_.l; ++layer)
        if (at(seq, layer).len != 0 ||
            !at(seq, layer).kPages.empty())
            return true;
    return false;
}

void
KvCacheManager::freeSequence(std::size_t seq)
{
    if (seq >= numSeqs_)
        throw EngineError(ErrorCode::KvInvalidSequence, "kv.free",
                          "freeSequence(" + std::to_string(seq) +
                              ") with only " +
                              std::to_string(numSeqs_) +
                              " sequences");
    if (!sequenceLive(seq))
        throw EngineError(ErrorCode::KvDoubleFree, "kv.free",
                          "freeSequence(" + std::to_string(seq) +
                              ") holds no pages — double free or "
                              "never-appended sequence");
    for (std::size_t layer = 0; layer < cfg_.l; ++layer) {
        SeqLayer &sl = at(seq, layer);
        for (PageId p : sl.kPages)
            pool_.release(p);
        for (PageId p : sl.vPages)
            pool_.release(p);
        sl.kPages.clear();
        sl.vPages.clear();
        sl.len = 0;
    }
}

} // namespace moelight
