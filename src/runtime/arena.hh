/**
 * @file
 * Fixed-capacity page arena used for the runtime's three memory
 * spaces (CPU, pinned staging, "GPU" device memory — all host RAM in
 * this reproduction, but kept in distinct pools with explicit
 * capacity accounting so the memory-management code paths of
 * Appendix A.1 are exercised for real).
 */

#ifndef MOELIGHT_RUNTIME_ARENA_HH
#define MOELIGHT_RUNTIME_ARENA_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/strong_types.hh"
#include "common/sync.hh"

namespace moelight {

/** Index of a page inside a PageArena. A strong index domain: not
 *  interchangeable with BlockId or any other index space (see
 *  docs/index_domains.md). Negative values are invalid; -1 is the
 *  not-a-page sentinel. */
using PageId = StrongIndex<struct PageIdTag, std::int32_t>;
inline constexpr PageId kInvalidPage{-1};

/**
 * A pool of equal-sized float pages with a free list. Allocation
 * fails loudly (FatalError) when the pool is exhausted — mirroring a
 * real device OOM rather than silently growing.
 *
 * Thread-safe bookkeeping: allocate/release/page may be called from
 * different executor workers concurrently (KV appends on the DtoH/Gpu
 * queues allocate while the Cpu attention worker materializes views),
 * so the free list and in-use bitmap are guarded by an internal
 * mutex. Page *contents* are not: each page has exactly one writer by
 * construction (pages belong to one sequence), so data access stays
 * lock-free.
 */
class PageArena
{
  public:
    /**
     * @param name       Diagnostic name ("gpu", "pinned", ...).
     * @param pageFloats Floats per page.
     * @param numPages   Pool capacity in pages.
     */
    // NOLINTBEGIN(bugprone-easily-swappable-parameters): size tuple
    // (floats per page, pool pages), not indices; test_arena pins the
    // argument order.
    PageArena(std::string name, std::size_t pageFloats,
              std::size_t numPages);
    // NOLINTEND(bugprone-easily-swappable-parameters)

    /** Allocate one page; throws FatalError when exhausted. */
    PageId allocate();
    /** Return @p id to the free list. */
    void release(PageId id);

    /** Mutable / const access to a page's storage. */
    float *page(PageId id);
    const float *page(PageId id) const;

    std::size_t pageFloats() const { return pageFloats_; }
    std::size_t pageBytes() const { return pageFloats_ * sizeof(float); }
    std::size_t numPages() const { return numPages_; }
    std::size_t freePages() const;
    std::size_t usedPages() const;
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::size_t pageFloats_;
    std::size_t numPages_;
    std::vector<float> storage_;
    /** Guards the allocation bookkeeping only (see class doc).
     *  Lock-ordering leaf: no callee takes another lock. */
    mutable Mutex mu_;
    std::vector<PageId> freeList_ GUARDED_BY(mu_);
    std::vector<bool> inUse_ GUARDED_BY(mu_);
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_ARENA_HH
