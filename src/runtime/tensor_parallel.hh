/**
 * @file
 * Tensor-parallel weight sharding (paper §4.3). Megatron-style split
 * of a Mixtral layer across tp devices:
 *
 *  - attention: query/key/value heads are partitioned across shards
 *    (column parallel); the O projection is row parallel, so each
 *    shard produces a partial [h1] output and the results are summed
 *    (the all-reduce).
 *  - expert FFN: w1/w3 rows (the h2 dimension) are partitioned
 *    (column parallel); w2 columns are partitioned (row parallel);
 *    shard outputs sum to the full expert output.
 *  - norms / router / embeddings are replicated.
 *
 * The functional guarantee — shard outputs combine to the unsharded
 * layer's output — is what makes the perf model's "tp x GPU memory,
 * tp x bandwidth" aggregation valid, and is tested in
 * tests/runtime/test_tensor_parallel.cc.
 */

#ifndef MOELIGHT_RUNTIME_TENSOR_PARALLEL_HH
#define MOELIGHT_RUNTIME_TENSOR_PARALLEL_HH

#include <cstddef>
#include <vector>

#include "common/strong_types.hh"
#include "kernels/router.hh"
#include "runtime/weights.hh"

namespace moelight {

/** One device's shard of a model. */
struct TpShard
{
    std::size_t rank = 0;       ///< shard index in [0, tp)
    std::size_t tp = 1;         ///< total shards
    ModelConfig cfg;            ///< per-shard shapes (nq/nkv/h2 cut)
    std::vector<LayerWeights> layers;
};

/**
 * Split @p full into @p tp shards. Requires nq, nkv and h2 to be
 * divisible by tp (true for all the paper's models at tp in
 * {2, 4, 8}).
 */
std::vector<TpShard> shardModel(const ModelWeights &full,
                                std::size_t tp);

/**
 * Run one shard's attention block for a single token:
 * @p x is the [h1] input hidden state (replicated), @p kHist/@p vHist
 * are this shard's KV history ([ctx, nkvShard*headDim], appended to
 * by this call), and the return value is the shard's *partial* O
 * projection output ([h1]) — summing across shards yields the full
 * attention block output (pre-residual).
 */
std::vector<float> shardAttention(const TpShard &shard,
                                  LayerIdx layer,
                                  const std::vector<float> &x,
                                  std::vector<float> &kHist,
                                  std::vector<float> &vHist);

/**
 * Run one shard's MoE FFN for a single token on the *normalized*
 * input @p xNorm with full-model routing decisions @p routing; the
 * return value is the shard's partial output ([h1]); summing across
 * shards yields the full MoE FFN output.
 */
std::vector<float> shardMoeFfn(const TpShard &shard, LayerIdx layer,
                               const std::vector<float> &xNorm,
                               const TokenRouting &routing);

} // namespace moelight

#endif // MOELIGHT_RUNTIME_TENSOR_PARALLEL_HH
