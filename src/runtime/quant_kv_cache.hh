/**
 * @file
 * Quantized paged KV cache: the storage-side realization of the
 * paper's Fig. 4 analysis (int4/int8 KV raises attention's
 * operational intensity and cuts host memory). Tokens append in
 * float; each page is quantized when it fills, so steady-state
 * storage is (pages-1) quantized + 1 open float page per
 * (sequence, layer) stream.
 *
 * Ownership (refcounts, sharing, capacity, typed errors) lives in the
 * shared PageTable (page_table.hh); this class is the quantized
 * *storage* view over it: one table block = one K + one V page, float
 * while open, quantized in place when the block fills.
 */

#ifndef MOELIGHT_RUNTIME_QUANT_KV_CACHE_HH
#define MOELIGHT_RUNTIME_QUANT_KV_CACHE_HH

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/sync.hh"
#include "kernels/attention.hh"
#include "kernels/quant.hh"
#include "model/model_config.hh"
#include "runtime/page_table.hh"

namespace moelight {

/** Dequantized-page storage backing a KvView over quantized KV. */
struct QuantKvViewStorage
{
    std::vector<std::vector<float>> kPages;
    std::vector<std::vector<float>> vPages;
    std::vector<const float *> k;
    std::vector<const float *> v;
    KvView view;
};

/**
 * Per-(sequence, layer) quantized KV streams. Unlike KvCacheManager
 * there is no fixed page pool: quantized pages are tiny, and the
 * interesting accounting is the compression ratio, exposed below. A
 * token budget can still be enforced so a configured KV memory limit
 * keeps meaning something in quantized mode.
 */
class QuantizedKvCache
{
  public:
    /** @p capacityTokens Total token capacity across sequences and
     *  layers (the same budget semantics as KvCacheManager);
     *  exceeding it is fatal. 0 = unlimited. */
    // NOLINTBEGIN(bugprone-easily-swappable-parameters): capacity
    // tuple, not indices; test_quant_kv_cache pins the argument order.
    QuantizedKvCache(const ModelConfig &cfg, std::size_t numSeqs,
                     std::size_t pageTokens, QuantKind kind,
                     std::size_t capacityTokens = 0);
    // NOLINTEND(bugprone-easily-swappable-parameters)

    /** Append one token's K and V ([nkv*headDim] floats each).
     *  Throws EngineError(KvExhausted) — before any mutation, so a
     *  rejected append leaves the accounting consistent — when the
     *  token budget is exceeded. FaultInjector site: "kv.alloc". */
    void append(SeqId seq, LayerIdx layer, const float *k,
                const float *v);

    std::size_t contextLen(SeqId seq, LayerIdx layer) const;

    /**
     * Zero-copy quantized view over (@p seq, @p layer) for the fused
     * attention kernel (gqaDecodeAttentionQuantFused): references the
     * closed QuantizedBuffers and the open float page in place — no
     * dequantization, no float copying. The view is invalidated by
     * the next append() to the same (seq, layer).
     */
    QuantKvView makeQuantView(SeqId seq, LayerIdx layer) const;

    /**
     * Materialize a float view (dequantizing every closed page) for
     * the *float* attention kernel. This moves the quantized plus the
     * float footprint per call; it is retained as the golden
     * cross-check for the fused path, not a production path.
     * @p storage owns the dequantized floats and must outlive the
     * view's use.
     */
    void makeView(SeqId seq, LayerIdx layer,
                  QuantKvViewStorage &storage) const;

    /** Release every stream of @p seq (it finished generating): a
     *  refcount drop per block, so pages shared with other sequences
     *  or pinned by the prefix cache survive — only the private tail
     *  frees physically and refunds the budget. Throws
     *  EngineError(KvInvalidSequence) for an unknown id and
     *  EngineError(KvDoubleFree) when @p seq holds no tokens. */
    void freeSequence(SeqId seq);

    /** True when @p seq currently holds any tokens (see
     *  KvCacheManager::sequenceLive). */
    bool sequenceLive(SeqId seq) const;

    /** Pages referenced by live sequences, shared pages counted once
     *  (closed quantized K+V pages plus open float partials) — the
     *  quant analogue of KvCacheManager::usedPages() so serving tests
     *  can assert pages are returned when a sequence retires early.
     *  Returns to 0 when every sequence frees, even while the prefix
     *  cache keeps pages pinned. */
    std::size_t usedPages() const
    {
        return 2 * table_.referencedBlocks();
    }

    /** K+V pages held by pinned-but-unreferenced prefix-cache blocks
     *  (resident beyond live-sequence usage). */
    std::size_t cachedPages() const
    {
        return 2 * (table_.residentBlocks() -
                    table_.referencedBlocks());
    }

    /** Token-layer entries physically stored (append granularity;
     *  shared blocks count once — what the capacity budget meters). */
    std::size_t usedTokens() const { return table_.residentTokens(); }

    /** Configured token-layer capacity; 0 = unlimited. */
    std::size_t capacityTokens() const { return capacityTokens_; }

    /** Bytes currently stored (quantized payload + scales + open
     *  float pages; shared blocks count once). */
    std::size_t storedBytes() const;
    /** Bytes an all-float cache of the same *logical* contents would
     *  use (shared prefixes counted per referencing stream). */
    std::size_t equivalentFloatBytes() const;

    /** The shared ownership layer (prefix-cache attach/pin surface). */
    PageTable &pageTable() { return table_; }
    const PageTable &pageTable() const { return table_; }

  private:
    /** One table block's backing storage: float while open, one
     *  quantized K + V buffer once closed. */
    struct QBlock
    {
        std::optional<QuantizedBuffer> qk;
        std::optional<QuantizedBuffer> qv;
        std::vector<float> fk;  ///< open floats (empty once closed)
        std::vector<float> fv;
    };

    const QBlock &blockAt(BlockId b) const;

    ModelConfig cfg_;
    std::size_t numSeqs_;
    std::size_t pageTokens_;
    std::size_t tokenFloats_;
    QuantKind kind_;
    std::size_t capacityTokens_;
    /** Guards the CONTAINER structure of blocks_ (deque growth /
     *  indexing) and the freeIds_ recycle list: block allocation runs
     *  on whichever executor worker appends KV while the attention
     *  worker materializes views of other sequences' blocks. Block
     *  *contents* are not guarded — each block belongs to exactly one
     *  sequence stream (one writer), and the engine's chain events
     *  order append-before-view within a micro-batch. Lock-ordering
     *  leaf. */
    mutable Mutex mu_;
    /** deque: stable addresses — zero-copy views hold pointers into
     *  blocks while new blocks are allocated (and references stay
     *  valid after mu_ is dropped). */
    std::deque<QBlock> blocks_ GUARDED_BY(mu_);  ///< indexed by BlockId
    std::vector<BlockId> freeIds_ GUARDED_BY(mu_);  ///< recycled ids
    /** Per-stream page-pointer lists backing makeQuantView()'s spans,
     *  rebuilt per call (the view is documented as invalidated by the
     *  next append to the same stream). */
    mutable std::vector<std::vector<const QuantizedBuffer *>> viewK_;
    mutable std::vector<std::vector<const QuantizedBuffer *>> viewV_;
    PageTable table_;  ///< last: its hooks capture this
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_QUANT_KV_CACHE_HH
