/**
 * @file
 * The CGOPipe pipelined inference engine (paper §4.1 + Appendix A):
 * decode-stage work is decomposed into PreAttn (GPU), QKV offload
 * (DtoH), CPU attention, hidden-state load (HtoD) and PostAttn (GPU),
 * launched in Algorithm 1's order onto the four stream-executor
 * queues with weight pages interleaved into the HtoD stream. All
 * data movement goes through the paged weight store, the pinned
 * staging ring and the paged CPU KV cache — the real memory-
 * management code paths of the paper, executed with real kernels on
 * a synthetic model.
 *
 * Functional contract: identical greedy tokens to ReferenceEngine
 * for identical weights (tested in tests/runtime).
 */

#ifndef MOELIGHT_RUNTIME_ENGINE_HH
#define MOELIGHT_RUNTIME_ENGINE_HH

#include <memory>
#include <optional>
#include <vector>

#include "common/thread_pool.hh"
#include "common/units.hh"
#include "runtime/kv_cache.hh"
#include "runtime/paged_weights.hh"
#include "runtime/quant_kv_cache.hh"
#include "runtime/reference_engine.hh"  // GenerationResult
#include "runtime/stream_executor.hh"
#include "runtime/transfer_engine.hh"
#include "runtime/weights.hh"

namespace moelight {

/** Runtime knobs for the pipelined engine. */
struct EngineConfig
{
    std::size_t microBatch = 4;       ///< sequences per micro-batch
    std::size_t kvPageTokens = 16;    ///< tokens per KV page
    std::size_t kvCapacityTokens = 1u << 16;  ///< KV pool (tokens)
    std::size_t lookahead = 2;        ///< Algorithm 1's CPU-attn lead
    Bandwidth throttleBw = 0.0;       ///< simulated link bw; 0 = off
    /** Worker threads for the CPU attention kernel (the paper's
     *  24-core MKL kernel); 0 = run attention on the CPU queue
     *  thread alone. */
    std::size_t cpuAttnThreads = 0;
    /** Quantize KV pages as they close (int8/int4) and run decode
     *  attention through the fused quant kernel — the Fig. 4 lever
     *  that raises attention's operational intensity. nullopt (the
     *  default) keeps float KV, bit-identical to ReferenceEngine;
     *  with quantization enabled tokens instead match a
     *  ReferenceEngine constructed with the same kvQuant and
     *  kvPageTokens. */
    std::optional<QuantKind> kvQuant{};
};

/**
 * CGOPipe engine. The model's layer count must be a multiple of the
 * weight-slot count (2) so the double-buffer rotation is conflict-
 * free.
 */
class PipelinedEngine
{
  public:
    /** @p weights must outlive the engine. */
    PipelinedEngine(const ModelWeights &weights, EngineConfig cfg);
    ~PipelinedEngine();

    /** Greedy generation; same semantics as ReferenceEngine. */
    std::vector<GenerationResult>
    generate(const std::vector<std::vector<int>> &prompts, int genLen);

    /** Transfer byte counters from the last generate() call. */
    TransferStats transferStats() const { return te_.stats(); }

    /** KV pool usage after the last generate() (pages). */
    std::size_t kvUsedPages() const;

  private:
    struct DecodeState;

    void prefill(const std::vector<std::vector<int>> &prompts,
                 DecodeState &st);
    void decodeStep(DecodeState &st, int stepIdx, bool lastStep);

    const ModelWeights &w_;
    EngineConfig cfg_;
    PageArena pinned_;
    TransferEngine te_;
    PagedWeightStore store_;
    std::unique_ptr<ThreadPool> attnPool_;
    std::unique_ptr<KvCacheManager> kv_;
    std::unique_ptr<QuantizedKvCache> qkv_;  ///< when cfg_.kvQuant
    std::unique_ptr<StreamExecutor> exec_;
    std::unique_ptr<DecodeState> state_;
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_ENGINE_HH
