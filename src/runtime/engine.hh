/**
 * @file
 * The CGOPipe pipelined inference engine (paper §4.1 + Appendix A):
 * decode-stage work is decomposed into PreAttn (GPU), QKV offload
 * (DtoH), CPU attention, hidden-state load (HtoD) and PostAttn (GPU),
 * launched in Algorithm 1's order onto the four stream-executor
 * queues with weight pages interleaved into the HtoD stream. All
 * data movement goes through the paged weight store, the pinned
 * staging ring and the paged CPU KV cache — the real memory-
 * management code paths of the paper, executed with real kernels on
 * a synthetic model.
 *
 * The public surface is the request-level serving API (serving.hh):
 * the engine holds a fixed pool of sequence slots, and every step()
 * is one continuous-batching round — Algorithm 2 admits queued
 * requests into free micro-batch slots, the admitted prompts prefill,
 * every active sequence decodes one token through the Algorithm 1
 * pipeline, and finished sequences retire immediately, releasing
 * their KV pages (float or quantized) back to the pool mid-flight
 * while the rest keep generating.
 *
 * Functional contract: identical greedy tokens to ReferenceEngine
 * per request for identical weights and KV geometry, regardless of
 * admission schedule or co-batching (tested in tests/runtime).
 */

#ifndef MOELIGHT_RUNTIME_ENGINE_HH
#define MOELIGHT_RUNTIME_ENGINE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/strong_types.hh"
#include "common/sync.hh"
#include "common/thread_pool.hh"
#include "common/units.hh"
#include "kernels/router.hh"  // TokenRouting (prefill scratch)
#include "runtime/kv_cache.hh"
#include "runtime/paged_weights.hh"
#include "runtime/prefix_cache.hh"
#include "runtime/quant_kv_cache.hh"
#include "runtime/serving.hh"
#include "runtime/stream_executor.hh"
#include "runtime/transfer_engine.hh"
#include "runtime/weights.hh"

namespace moelight {

/** Runtime knobs for the pipelined engine. */
struct EngineConfig
{
    std::size_t microBatch = 4;       ///< sequences per micro-batch
    std::size_t kvPageTokens = 16;    ///< tokens per KV page
    std::size_t kvCapacityTokens = 1u << 16;  ///< KV pool (tokens)
    std::size_t lookahead = 2;        ///< Algorithm 1's CPU-attn lead
    Bandwidth throttleBw = 0.0;       ///< simulated link bw; 0 = off
    /** Sequence slots: the maximum number of requests generating
     *  concurrently. Submissions beyond it queue in the continuous
     *  batcher and are admitted as slots free up. */
    std::size_t maxConcurrency = 16;
    /** Worker threads for the CPU attention kernel (the paper's
     *  24-core MKL kernel); 0 = run attention on the CPU queue
     *  thread alone. */
    std::size_t cpuAttnThreads = 0;
    /** Rounds the admission queue's head may be passed over before
     *  younger requests are held back for it — and, with active
     *  sequences pinning the KV pool, before the engine preempts the
     *  youngest of them (recompute-on-resume) to unblock the head.
     *  Lower = stronger FIFO fairness, more preemption recompute;
     *  higher = more throughput-friendly reordering. Must be >= 1. */
    std::size_t headAgeLimit = ContinuousBatcher::kHeadAgeLimit;
    /** Quantize KV pages as they close (int8/int4) and run decode
     *  attention through the fused quant kernel — the Fig. 4 lever
     *  that raises attention's operational intensity. nullopt (the
     *  default) keeps float KV, bit-identical to ReferenceEngine;
     *  with quantization enabled tokens instead match a
     *  ReferenceEngine constructed with the same kvQuant and
     *  kvPageTokens. */
    std::optional<QuantKind> kvQuant{};
    /** Share closed KV pages across requests with a common prompt
     *  prefix (radix-tree prefix cache over the page table): a hit
     *  attaches the cached pages read-only and prefills only the
     *  novel tail, admission budgets only that tail, and refcount-0
     *  cached pages are LRU-evicted under pool pressure. Greedy
     *  tokens stay bit-identical to a cold cache (and to
     *  ReferenceEngine) — the cached pages hold exactly the floats
     *  (or deterministically quantized pages) a cold prefill would
     *  recompute. */
    bool prefixCache = false;

    /** Fatal with a field-by-field diagnosis on an unusable config
     *  (zero micro-batch, zero-token KV pages, ...); called by the
     *  engine constructor so bad configs fail at build time with a
     *  clear message, not deep inside the pipeline. */
    void validate() const;
};

/**
 * CGOPipe engine. The model's layer count must be a multiple of the
 * weight-slot count (2) so the double-buffer rotation is conflict-
 * free.
 */
class PipelinedEngine : public Engine
{
  public:
    /** @p weights must outlive the engine. */
    PipelinedEngine(const ModelWeights &weights, EngineConfig cfg);
    ~PipelinedEngine() override;

    // Request-level serving API (Engine).
    void submit(ServeRequest req) override;
    std::vector<RequestOutput> step() override;
    bool cancel(std::int64_t id) override;
    std::size_t pendingRequests() const override;
    std::size_t activeRequests() const override;

    /** Times the engine preempted an active sequence under KV
     *  pressure (freed its pages and requeued it for prefill
     *  recompute) over the engine's life. */
    std::size_t preemptions() const { return preemptions_; }

    /** Transfer byte counters since construction or the last
     *  generate() call (generate resets them). */
    TransferStats transferStats() const { return te_.stats(); }

    /** Current KV pool usage in pages (float pool pages, or closed +
     *  open quantized pages with kvQuant). Shrinks mid-flight as
     *  requests retire; 0 once the engine drains. */
    std::size_t kvUsedPages() const;

    /** High-water mark of kvUsedPages() over the engine's life. */
    std::size_t kvPeakPages() const { return kvPeakPages_; }

    /** Resident pages held only by the prefix cache (pinned, no live
     *  sequence): reusable capacity, evicted under pressure. 0 with
     *  the prefix cache off. */
    std::size_t kvCachedPages() const;

    /** Prefix-cache effectiveness counters over the engine's life
     *  (all zero when cfg.prefixCache is off). */
    PrefixCacheStats prefixCacheStats() const
    {
        return prefix_ ? prefix_->stats() : PrefixCacheStats{};
    }

  protected:
    void resetBatchStats() override { te_.resetStats(); }

  private:
    /** One admitted, still-generating request in a sequence slot. */
    struct ActiveSeq
    {
        ServeRequest req;
        std::vector<int> tokens;  ///< generated since (re)admission
        /** Tokens generated before a preemption: the resumed req's
         *  prompt carries them for KV recompute, but the output must
         *  report them as generated (saved + tokens). */
        std::vector<int> saved;
        int next = 0;             ///< token to embed next round
        int preemptions = 0;      ///< times this request was preempted
        /** Monotonic admission stamp; the preemption victim is the
         *  slot with the highest one (youngest loses least work). */
        std::uint64_t admitStamp = 0;
        double prefillSeconds = 0.0;
        double decodeSeconds = 0.0;
        /** Prompt tokens attached from the prefix cache at admission
         *  (0 = cold): prefill starts at this position. */
        std::size_t prefixLen = 0;
        /** This request's private KV reservation (net of the shared
         *  prefix) — what kvTokensInUse() reports per slot, frozen at
         *  admission so later cache eviction can't skew the
         *  accounting. */
        std::size_t reservedTokens = 0;
    };

    /** Carried-over state of a preempted request while it waits in
     *  the batcher queue for re-admission, keyed by request id. */
    struct ResumeState
    {
        std::vector<int> saved;
        int preemptions = 0;
        double prefillSeconds = 0.0;
        double decodeSeconds = 0.0;
    };

    /** Per-round decode plumbing (buffers reused across rounds). */
    struct StepState;

    void admitPending(std::vector<RequestOutput> &finished);
    void prefillSlots(const std::vector<SlotIdx> &slots);
    void decodeActive(std::vector<RequestOutput> &finished);
    void runDecodeChains(StepState &st);
    void maybeRetire(SlotIdx slot,
                     std::vector<RequestOutput> &finished);
    void processLifecycle(std::vector<RequestOutput> &finished);
    void retireTerminal(SlotIdx slot, FinishReason reason,
                        std::string errorMessage,
                        std::vector<RequestOutput> &finished);
    void preemptYoungest();
    /** The slot->sequence identity map: slot i owns KV sequence i in
     *  whichever cache is active. The ONLY place a SlotIdx becomes a
     *  SeqId (see docs/index_domains.md). */
    static SeqId seqOf(SlotIdx slot) { return SeqId(slot.value()); }
    /** Record a request-scope fault for @p slot (from any queue
     *  thread); first message wins. */
    void noteSlotFault(SlotIdx slot, const char *what);
    bool slotFaulted(SlotIdx slot) const;
    void freeSlotKv(SlotIdx slot);
    std::size_t kvContextLen(SlotIdx slot) const;
    std::size_t kvTokensInUse() const;
    void ensureAttnScratch(std::size_t ctx);
    void noteKvUsage();

    const ModelWeights &w_;
    EngineConfig cfg_;
    PageArena pinned_;
    TransferEngine te_;
    PagedWeightStore store_;
    std::unique_ptr<ThreadPool> attnPool_;
    std::unique_ptr<KvCacheManager> kv_;
    std::unique_ptr<QuantizedKvCache> qkv_;  ///< when cfg_.kvQuant
    /** Prefix tree over the active cache's page table (when
     *  cfg_.prefixCache); declared after the caches it borrows. */
    std::unique_ptr<PrefixCache> prefix_;
    /** KV allocation granularity for admission accounting (page size
     *  in float mode, 1 in quant mode). Declared before batcher_ so
     *  the batcher is constructed from the same value. */
    std::size_t kvQuantum_ = 1;
    /** Total admission budget in request tokens (kvCapacityTokens /
     *  layers); submit() rejects requests that can never fit it.
     *  Declared before batcher_ for the same reason. */
    std::size_t kvBudgetTokens_ = 0;
    /** Front-end lock: submit(), cancel(), pendingRequests() and
     *  activeRequests() are callable from any thread while one driver
     *  thread runs step() (see the Engine contract in serving.hh).
     *  Guards the admission queue, the cancellation set and the id
     *  index of occupied slots; every other member is driver-owned.
     *  Lock-ordering leaf: never held while taking another lock. */
    mutable Mutex frontMu_;
    ContinuousBatcher batcher_ GUARDED_BY(frontMu_);

    // Model shapes hoisted from cfg (set once in the constructor).
    std::size_t h1_, qDim_, kvDim_, qkvDim_, vocab_;
    float scale_ = 1.0f;

    // Sequence slots.
    std::vector<std::optional<ActiveSeq>> slots_;
    std::vector<std::size_t> freeSlots_;  ///< descending; back = min
    std::size_t kvPeakPages_ = 0;

    // Request lifecycle / fault containment.
    std::unordered_set<std::int64_t> cancelled_
        GUARDED_BY(frontMu_);  ///< ids to cancel at the next step()
    /** Ids currently occupying slots_, maintained at admission and
     *  retirement so cancel() can probe active requests without
     *  touching the driver-owned slots_. */
    std::unordered_set<std::int64_t> activeIds_ GUARDED_BY(frontMu_);
    std::unordered_map<std::int64_t, ResumeState> resume_;
    std::uint64_t admitCounter_ = 0;
    std::size_t preemptions_ = 0;
    /** Per-slot fault messages recorded by pipeline tasks mid-round
     *  (empty = healthy); guarded because the DtoH and Gpu queue
     *  threads record concurrently. Lock-ordering leaf. */
    mutable Mutex faultMu_;
    std::vector<std::string> slotError_ GUARDED_BY(faultMu_);

    // Persistent scratch (grow-only; see ensureAttnScratch).
    std::vector<float> gpuNormB_, gpuProjB_, gpuRlB_, gpuFfnB_;
    std::vector<float> gpuQB_, gpuKB_, gpuVB_;
    /** Micro-batch lmHead logits: the last layer samples every row
     *  of the micro-batch from ONE pooled GEMM instead of per-row
     *  m=1 GEMVs (bit-identical per row — see linalg.hh). */
    std::vector<float> gpuLogitsB_;
    /** Prefill-bootstrap pooled lmHead buffers (admitted-batch-
     *  sized, which may exceed microBatch). */
    std::vector<float> bootNorm_, bootLogits_;
    std::vector<float> cpuAttnScratch_, cpuBatchScratch_;
    std::vector<float> cpuPrefillScratch_;
    std::size_t scratchCtx_ = 0;
    std::size_t prefillScratchLen_ = 0;
    std::vector<std::vector<float>> prefillHidden_;
    // Prefill per-layer working buffers (reserved once per admission
    // round to the longest prompt; only the zigzag's serialized GPU
    // tasks touch them).
    std::vector<float> pfNorm_, pfQ_, pfK_, pfV_;
    std::vector<float> pfAttn_, pfProj_, pfRl_, pfFfn_;
    std::vector<TokenRouting> pfRouting_;

    std::unique_ptr<StepState> st_;
    std::unique_ptr<StreamExecutor> exec_;  ///< last: destroyed first
};

} // namespace moelight

#endif // MOELIGHT_RUNTIME_ENGINE_HH
