#include "runtime/stream_executor.hh"

#include "common/logging.hh"
#include "runtime/fault_injection.hh"

namespace moelight {

void
TaskEvent::wait()
{
    MutexLock lk(mu_);
    while (!done_)
        cv_.wait(lk);
}

bool
TaskEvent::ready() const
{
    MutexLock lk(mu_);
    return done_;
}

void
TaskEvent::signal()
{
    {
        MutexLock lk(mu_);
        done_ = true;
    }
    cv_.notifyAll();
}

StreamExecutor::StreamExecutor()
{
    for (std::size_t i = 0; i < kNumResources; ++i) {
        queues_.push_back(std::make_unique<Queue>());
        Queue &q = *queues_.back();
        q.worker = std::thread([this, &q] { workerLoop(q); });
    }
}

StreamExecutor::~StreamExecutor()
{
    for (auto &qp : queues_) {
        {
            MutexLock lk(qp->mu);
            qp->stopping = true;
        }
        qp->cv.notifyAll();
    }
    for (auto &qp : queues_)
        if (qp->worker.joinable())
            qp->worker.join();
}

EventPtr
StreamExecutor::submit(ResourceKind kind, std::vector<EventPtr> deps,
                       std::function<void()> fn,
                       std::vector<EventPtr> alsoSignal)
{
    Queue &q = *queues_[static_cast<std::size_t>(kind)];
    auto done = std::make_shared<TaskEvent>();
    {
        MutexLock lk(q.mu);
        fatalIf(q.stopping, "submit to a stopping executor");
        q.tasks.push_back({std::move(deps), std::move(fn), done,
                           std::move(alsoSignal)});
    }
    q.cv.notifyAll();
    return done;
}

void
StreamExecutor::workerLoop(Queue &q)
{
    for (;;) {
        QueueTask task;
        {
            MutexLock lk(q.mu);
            while (!q.stopping && q.tasks.empty())
                q.cv.wait(lk);
            if (q.tasks.empty())
                return;  // stopping and drained
            task = std::move(q.tasks.front());
            q.tasks.pop_front();
            q.idle = false;
        }
        // FIFO semantics: the queue head blocks on its dependencies,
        // like cudaStreamWaitEvent.
        for (auto &d : task.deps)
            d->wait();
        try {
            // Injection site "exec.task": models a task body dying
            // for any reason (OOM, kernel fault). Inside the try so
            // the trip flows through the same firstError_ capture a
            // real task exception takes.
            FaultInjector::check("exec.task");
            task.fn();
        } catch (...) {
            MutexLock lk(errMu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        // Signal even on error so dependents don't deadlock; the
        // error surfaces at sync(). Caller-owned readiness events
        // ride the same guarantee.
        task.done->signal();
        for (auto &ev : task.alsoSignal)
            ev->signal();
        {
            MutexLock lk(q.mu);
            q.idle = q.tasks.empty();
        }
        q.cv.notifyAll();
    }
}

void
StreamExecutor::sync()
{
    // Submit a fence to each queue and wait on all of them; FIFO
    // order guarantees everything ahead has retired.
    std::vector<EventPtr> fences;
    for (std::size_t i = 0; i < kNumResources; ++i)
        fences.push_back(
            submit(static_cast<ResourceKind>(i), {}, [] {}));
    for (auto &f : fences)
        f->wait();
    MutexLock lk(errMu_);
    if (firstError_) {
        auto err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

} // namespace moelight
