#include "runtime/quant_kv_cache.hh"

#include "common/logging.hh"
#include "runtime/fault_injection.hh"
#include "runtime/status.hh"

namespace moelight {

QuantizedKvCache::QuantizedKvCache(const ModelConfig &cfg,
                                   std::size_t numSeqs,
                                   std::size_t pageTokens,
                                   QuantKind kind,
                                   std::size_t capacityTokens)
    : cfg_(cfg),
      numSeqs_(numSeqs),
      pageTokens_(pageTokens),
      tokenFloats_(cfg.nkv * cfg.headDim),
      kind_(kind),
      capacityTokens_(capacityTokens),
      streams_(numSeqs * cfg.l)
{
    fatalIf(numSeqs == 0, "quantized KV cache for zero sequences");
    fatalIf(pageTokens == 0, "KV page must hold at least one token");
    // Quantization groups are one token-head vector each (group ==
    // headDim), so only int4's two-nibbles-per-byte packing needs an
    // even headDim; int8 stores one byte per element and works for
    // any headDim.
    fatalIf(kind == QuantKind::Int4 && cfg.headDim % 2 != 0,
            "headDim must be even for int4 packing");
}

QuantizedKvCache::Stream &
QuantizedKvCache::at(std::size_t seq, std::size_t layer)
{
    panicIf(seq >= numSeqs_ || layer >= cfg_.l,
            "quantized KV slot out of range");
    return streams_[seq * cfg_.l + layer];
}

const QuantizedKvCache::Stream &
QuantizedKvCache::at(std::size_t seq, std::size_t layer) const
{
    return const_cast<QuantizedKvCache *>(this)->at(seq, layer);
}

void
QuantizedKvCache::append(std::size_t seq, std::size_t layer,
                         const float *k, const float *v)
{
    Stream &s = at(seq, layer);
    FaultInjector::check("kv.alloc");
    // Capacity is checked BEFORE any mutation so a rejected append
    // leaves the counters consistent — the previous
    // increment-then-check order left totalTokens_ one high after the
    // throw, corrupting every later admission decision.
    if (capacityTokens_ != 0 && totalTokens_ + 1 > capacityTokens_)
        throw EngineError(ErrorCode::KvExhausted, "kv.alloc",
                          "quantized KV cache out of capacity (" +
                              std::to_string(capacityTokens_) +
                              " tokens) appending to (seq " +
                              std::to_string(seq) + ", layer " +
                              std::to_string(layer) + ")");
    ++totalTokens_;
    s.openK.insert(s.openK.end(), k, k + tokenFloats_);
    s.openV.insert(s.openV.end(), v, v + tokenFloats_);
    ++s.len;
    if (s.openK.size() == pageTokens_ * tokenFloats_) {
        // Page full: quantize (group = one head vector) and reset.
        s.closedK.emplace_back(
            std::span<const float>(s.openK), kind_, cfg_.headDim);
        s.closedV.emplace_back(
            std::span<const float>(s.openV), kind_, cfg_.headDim);
        s.openK.clear();
        s.openV.clear();
    }
}

std::size_t
QuantizedKvCache::contextLen(std::size_t seq, std::size_t layer) const
{
    return at(seq, layer).len;
}

QuantKvView
QuantizedKvCache::makeQuantView(std::size_t seq, std::size_t layer) const
{
    const Stream &s = at(seq, layer);
    QuantKvView v;
    v.kPages = s.closedK;
    v.vPages = s.closedV;
    if (!s.openK.empty()) {
        v.openK = s.openK.data();
        v.openV = s.openV.data();
        v.openTokens = s.openK.size() / tokenFloats_;
    }
    v.pageTokens = pageTokens_;
    v.contextLen = s.len;
    v.nKv = cfg_.nkv;
    v.headDim = cfg_.headDim;
    return v;
}

void
QuantizedKvCache::makeView(std::size_t seq, std::size_t layer,
                           QuantKvViewStorage &storage) const
{
    const Stream &s = at(seq, layer);
    std::size_t page_floats = pageTokens_ * tokenFloats_;
    std::size_t n_pages =
        s.closedK.size() + (s.openK.empty() ? 0 : 1);

    storage.kPages.assign(n_pages, {});
    storage.vPages.assign(n_pages, {});
    storage.k.clear();
    storage.v.clear();
    for (std::size_t p = 0; p < s.closedK.size(); ++p) {
        storage.kPages[p].resize(page_floats);
        storage.vPages[p].resize(page_floats);
        s.closedK[p].dequantize(storage.kPages[p]);
        s.closedV[p].dequantize(storage.vPages[p]);
    }
    if (!s.openK.empty()) {
        // Open page: copy floats, pad to page size (unread tail).
        auto &kp = storage.kPages[n_pages - 1];
        auto &vp = storage.vPages[n_pages - 1];
        kp.assign(page_floats, 0.0f);
        vp.assign(page_floats, 0.0f);
        std::copy(s.openK.begin(), s.openK.end(), kp.begin());
        std::copy(s.openV.begin(), s.openV.end(), vp.begin());
    }
    for (std::size_t p = 0; p < n_pages; ++p) {
        storage.k.push_back(storage.kPages[p].data());
        storage.v.push_back(storage.vPages[p].data());
    }
    storage.view.kPages = storage.k;
    storage.view.vPages = storage.v;
    storage.view.pageTokens = pageTokens_;
    storage.view.contextLen = s.len;
    storage.view.nKv = cfg_.nkv;
    storage.view.headDim = cfg_.headDim;
}

bool
QuantizedKvCache::sequenceLive(std::size_t seq) const
{
    if (seq >= numSeqs_)
        return false;
    for (std::size_t layer = 0; layer < cfg_.l; ++layer)
        if (at(seq, layer).len != 0)
            return true;
    return false;
}

void
QuantizedKvCache::freeSequence(std::size_t seq)
{
    if (seq >= numSeqs_)
        throw EngineError(ErrorCode::KvInvalidSequence, "kv.free",
                          "freeSequence(" + std::to_string(seq) +
                              ") with only " +
                              std::to_string(numSeqs_) +
                              " sequences");
    if (!sequenceLive(seq))
        throw EngineError(ErrorCode::KvDoubleFree, "kv.free",
                          "freeSequence(" + std::to_string(seq) +
                              ") holds no tokens — double free or "
                              "never-appended sequence");
    for (std::size_t layer = 0; layer < cfg_.l; ++layer) {
        Stream &s = at(seq, layer);
        panicIf(totalTokens_ < s.len,
                "quantized KV token accounting underflow");
        totalTokens_ -= s.len;
        s.closedK.clear();
        s.closedV.clear();
        s.openK.clear();
        s.openK.shrink_to_fit();
        s.openV.clear();
        s.openV.shrink_to_fit();
        s.len = 0;
    }
}

std::size_t
QuantizedKvCache::usedPages() const
{
    std::size_t pages = 0;
    for (const auto &s : streams_) {
        pages += s.closedK.size() + s.closedV.size();
        pages += (s.openK.empty() ? 0 : 1) + (s.openV.empty() ? 0 : 1);
    }
    return pages;
}

std::size_t
QuantizedKvCache::storedBytes() const
{
    std::size_t bytes = 0;
    for (const auto &s : streams_) {
        for (const auto &q : s.closedK)
            bytes += q.storageBytes();
        for (const auto &q : s.closedV)
            bytes += q.storageBytes();
        bytes += (s.openK.size() + s.openV.size()) * sizeof(float);
    }
    return bytes;
}

std::size_t
QuantizedKvCache::equivalentFloatBytes() const
{
    std::size_t tokens = 0;
    for (const auto &s : streams_)
        tokens += s.len;
    return tokens * 2 * tokenFloats_ * sizeof(float);
}

} // namespace moelight
