#include "runtime/quant_kv_cache.hh"

#include "common/logging.hh"

namespace moelight {

QuantizedKvCache::QuantizedKvCache(const ModelConfig &cfg,
                                   std::size_t numSeqs,
                                   std::size_t pageTokens,
                                   QuantKind kind,
                                   std::size_t capacityTokens)
    : cfg_(cfg),
      numSeqs_(numSeqs),
      pageTokens_(pageTokens),
      tokenFloats_(cfg.nkv * cfg.headDim),
      kind_(kind),
      capacityTokens_(capacityTokens),
      viewK_(numSeqs * cfg.l),
      viewV_(numSeqs * cfg.l),
      table_(numSeqs, cfg.l, pageTokens, PageCapacityModel::Tokens,
             capacityTokens,
             PageTableHooks{
                 [this] {
                     // Runs on whichever executor worker appends KV,
                     // concurrently with view materialization — the
                     // container lock covers deque growth.
                     MutexLock lk(mu_);
                     BlockId id;
                     if (!freeIds_.empty()) {
                         id = freeIds_.back();
                         freeIds_.pop_back();
                     } else {
                         id = narrowIndex<BlockId>(blocks_.size());
                         blocks_.emplace_back();
                     }
                     return id;
                 },
                 [this](BlockId dst, BlockId src,
                        std::size_t tokens) {
                     // Copy-on-write fires only on open (partial)
                     // blocks, whose tokens still sit in float.
                     MutexLock lk(mu_);
                     const QBlock &s = blocks_[src.value()];
                     QBlock &d = blocks_[dst.value()];
                     panicIf(s.qk.has_value(),
                             "copy-on-write of a closed quant block");
                     std::size_t n = tokens * tokenFloats_;
                     d.fk.assign(s.fk.begin(), s.fk.begin() + n);
                     d.fv.assign(s.fv.begin(), s.fv.begin() + n);
                 },
                 [this](BlockId id) {
                     MutexLock lk(mu_);
                     QBlock &b = blocks_[id.value()];
                     b.qk.reset();
                     b.qv.reset();
                     b.fk.clear();
                     b.fk.shrink_to_fit();
                     b.fv.clear();
                     b.fv.shrink_to_fit();
                     freeIds_.push_back(id);
                 },
             })
{
    fatalIf(numSeqs == 0, "quantized KV cache for zero sequences");
    fatalIf(pageTokens == 0, "KV page must hold at least one token");
    // Quantization groups are one token-head vector each (group ==
    // headDim), so only int4's two-nibbles-per-byte packing needs an
    // even headDim; int8 stores one byte per element and works for
    // any headDim.
    fatalIf(kind == QuantKind::Int4 && cfg.headDim % 2 != 0,
            "headDim must be even for int4 packing");
}

const QuantizedKvCache::QBlock &
QuantizedKvCache::blockAt(BlockId b) const
{
    // Index under the container lock; the returned reference stays
    // valid after it (deque, stable addresses) and the block's
    // contents have one writer — the owning sequence's stream.
    MutexLock lk(mu_);
    panicIf(static_cast<std::size_t>(b.value()) >= blocks_.size(),
            "unknown quantized KV block ", b);
    return blocks_[b.value()];
}

void
QuantizedKvCache::append(SeqId seq, LayerIdx layer,
                         const float *k, const float *v)
{
    // The table throws typed KvExhausted before any mutation, so a
    // rejected append leaves the accounting consistent.
    AppendSlot slot = table_.appendToken(seq, layer);
    QBlock *bp;
    {
        MutexLock lk(mu_);
        bp = &blocks_[slot.block.value()];
    }
    QBlock &b = *bp;  // contents are this stream's alone
    b.fk.insert(b.fk.end(), k, k + tokenFloats_);
    b.fv.insert(b.fv.end(), v, v + tokenFloats_);
    if (b.fk.size() == pageTokens_ * tokenFloats_) {
        // Page full: quantize (group = one head vector) and drop the
        // floats. The block is closed — and from here on shareable.
        b.qk.emplace(std::span<const float>(b.fk), kind_,
                     cfg_.headDim);
        b.qv.emplace(std::span<const float>(b.fv), kind_,
                     cfg_.headDim);
        b.fk.clear();
        b.fk.shrink_to_fit();
        b.fv.clear();
        b.fv.shrink_to_fit();
    }
}

std::size_t
QuantizedKvCache::contextLen(SeqId seq, LayerIdx layer) const
{
    return table_.streamLen(seq, layer);
}

QuantKvView
QuantizedKvCache::makeQuantView(SeqId seq,
                                LayerIdx layer) const
{
    std::span<const BlockId> blocks = table_.streamBlocks(seq, layer);
    auto &kp = viewK_[seq.value() * cfg_.l + layer.value()];
    auto &vp = viewV_[seq.value() * cfg_.l + layer.value()];
    kp.clear();
    vp.clear();
    QuantKvView v;
    for (BlockId id : blocks) {
        const QBlock &b = blockAt(id);
        if (b.qk.has_value()) {
            kp.push_back(&*b.qk);
            vp.push_back(&*b.qv);
        } else {
            // Only the tail block may be open (float).
            v.openK = b.fk.data();
            v.openV = b.fv.data();
            v.openTokens = b.fk.size() / tokenFloats_;
        }
    }
    v.kPages = kp;
    v.vPages = vp;
    v.pageTokens = pageTokens_;
    v.contextLen = table_.streamLen(seq, layer);
    v.nKv = cfg_.nkv;
    v.headDim = cfg_.headDim;
    return v;
}

void
QuantizedKvCache::makeView(SeqId seq, LayerIdx layer,
                           QuantKvViewStorage &storage) const
{
    std::span<const BlockId> blocks = table_.streamBlocks(seq, layer);
    std::size_t page_floats = pageTokens_ * tokenFloats_;
    std::size_t n_pages = blocks.size();

    storage.kPages.assign(n_pages, {});
    storage.vPages.assign(n_pages, {});
    storage.k.clear();
    storage.v.clear();
    for (std::size_t p = 0; p < n_pages; ++p) {
        const QBlock &b = blockAt(blocks[p]);
        if (b.qk.has_value()) {
            storage.kPages[p].resize(page_floats);
            storage.vPages[p].resize(page_floats);
            b.qk->dequantize(storage.kPages[p]);
            b.qv->dequantize(storage.vPages[p]);
        } else {
            // Open page: copy floats, pad to page size (unread tail).
            storage.kPages[p].assign(page_floats, 0.0f);
            storage.vPages[p].assign(page_floats, 0.0f);
            std::copy(b.fk.begin(), b.fk.end(),
                      storage.kPages[p].begin());
            std::copy(b.fv.begin(), b.fv.end(),
                      storage.vPages[p].begin());
        }
    }
    for (std::size_t p = 0; p < n_pages; ++p) {
        storage.k.push_back(storage.kPages[p].data());
        storage.v.push_back(storage.vPages[p].data());
    }
    storage.view.kPages = storage.k;
    storage.view.vPages = storage.v;
    storage.view.pageTokens = pageTokens_;
    storage.view.contextLen = table_.streamLen(seq, layer);
    storage.view.nKv = cfg_.nkv;
    storage.view.headDim = cfg_.headDim;
}

bool
QuantizedKvCache::sequenceLive(SeqId seq) const
{
    return table_.sequenceLive(seq);
}

void
QuantizedKvCache::freeSequence(SeqId seq)
{
    table_.freeSequence(seq);
}

std::size_t
QuantizedKvCache::storedBytes() const
{
    // Freed blocks hold no buffers, so summing the whole store counts
    // exactly the resident blocks, shared ones once.
    MutexLock lk(mu_);
    std::size_t bytes = 0;
    for (const QBlock &b : blocks_) {
        if (b.qk.has_value())
            bytes += b.qk->storageBytes() + b.qv->storageBytes();
        bytes += (b.fk.size() + b.fv.size()) * sizeof(float);
    }
    return bytes;
}

std::size_t
QuantizedKvCache::equivalentFloatBytes() const
{
    std::size_t tokens = 0;
    for (SeqId s : IndexRange(SeqId(numSeqs_)))
        for (LayerIdx l : IndexRange(LayerIdx(cfg_.l)))
            tokens += table_.streamLen(s, l);
    return tokens * 2 * tokenFloats_ * sizeof(float);
}

} // namespace moelight
