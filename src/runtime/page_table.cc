#include "runtime/page_table.hh"

#include <string>

#include "common/logging.hh"
#include "runtime/fault_injection.hh"
#include "runtime/status.hh"

namespace moelight {

PageTable::PageTable(std::size_t numSeqs, std::size_t layers,
                     std::size_t pageTokens, PageCapacityModel model,
                     std::size_t capacity, PageTableHooks hooks)
    : numSeqs_(numSeqs),
      layers_(layers),
      pageTokens_(pageTokens),
      model_(model),
      capacity_(capacity),
      hooks_(std::move(hooks)),
      streams_(numSeqs * layers)
{
    fatalIf(numSeqs == 0, "page table for zero sequences");
    fatalIf(layers == 0, "page table for zero layers");
    fatalIf(pageTokens == 0, "KV page must hold at least one token");
    fatalIf(model == PageCapacityModel::Blocks && capacity == 0,
            "block-metered page table needs a block budget");
    fatalIf(!hooks_.allocBlock || !hooks_.copyBlock ||
                !hooks_.freeBlock,
            "page table needs all three storage hooks");
}

PageTable::Stream &
PageTable::at(SeqId seq, LayerIdx layer)
{
    panicIf(seq.value() >= numSeqs_ || layer.value() >= layers_,
            "KV slot (", seq, ",", layer, ") out of range");
    return streams_[seq.value() * layers_ + layer.value()];
}

const PageTable::Stream &
PageTable::at(SeqId seq, LayerIdx layer) const
{
    return const_cast<PageTable *>(this)->at(seq, layer);
}

PageTable::BlockMeta &
PageTable::meta(BlockId b)
{
    if (static_cast<std::size_t>(b.value()) >= meta_.size())
        meta_.resize(static_cast<std::size_t>(b.value()) + 1);
    return meta_[b.value()];
}

const PageTable::BlockMeta &
PageTable::meta(BlockId b) const
{
    panicIf(static_cast<std::size_t>(b.value()) >= meta_.size(),
            "unknown KV block ", b);
    return meta_[b.value()];
}

void
PageTable::ensureCapacity(SeqId seq, LayerIdx layer,
                          std::size_t len, std::size_t needTokens)
{
    auto fits = [&] {
        if (model_ == PageCapacityModel::Blocks)
            return residentBlocks_ < capacity_;
        return capacity_ == 0 ||
               residentTokens_ + needTokens <= capacity_;
    };
    while (!fits())
        if (!reclaim_ || !reclaim_())
            throw EngineError(
                ErrorCode::KvExhausted, "kv.alloc",
                std::string(model_ == PageCapacityModel::Blocks
                                ? "KV pool out of pages"
                                : "KV cache out of token capacity") +
                    " appending token " + std::to_string(len) +
                    " of (seq " + std::to_string(seq.value()) +
                    ", layer " + std::to_string(layer.value()) + ")");
}

BlockId
PageTable::allocFresh()
{
    BlockId b = hooks_.allocBlock();
    BlockMeta &m = meta(b);
    panicIf(m.resident, "allocBlock returned a resident block ", b);
    m = BlockMeta{};
    m.resident = true;
    ++residentBlocks_;
    return b;
}

void
PageTable::ref(BlockId b)
{
    BlockMeta &m = meta(b);
    if (m.streamRefs++ == 0)
        ++referencedBlocks_;
}

void
PageTable::releasePhysical(BlockId b)
{
    BlockMeta &m = meta(b);
    panicIf(!m.resident, "releasing non-resident KV block ", b);
    panicIf(residentTokens_ < m.tokens,
            "KV token accounting underflow");
    residentTokens_ -= m.tokens;
    --residentBlocks_;
    m.resident = false;
    m.tokens = 0;
    hooks_.freeBlock(b);
}

void
PageTable::deref(BlockId b)
{
    BlockMeta &m = meta(b);
    panicIf(m.streamRefs == 0, "deref of unreferenced KV block ", b);
    if (--m.streamRefs == 0) {
        --referencedBlocks_;
        if (m.pins == 0)
            releasePhysical(b);
    }
}

AppendSlot
PageTable::appendToken(SeqId seq, LayerIdx layer)
{
    MOELIGHT_ASSERT_SERIAL(gate_);
    Stream &st = at(seq, layer);
    std::size_t off = st.len % pageTokens_;
    // Injection cadence matches what each cache historically did:
    // the page-granular float pool checked once per allocation, the
    // token-granular quant budget once per append.
    if (model_ == PageCapacityModel::Tokens || off == 0)
        FaultInjector::check("kv.alloc");

    AppendSlot slot;
    if (off == 0) {
        ensureCapacity(seq, layer, st.len, 1);
        BlockId b = allocFresh();
        ref(b);
        st.blocks.push_back(b);
        slot.fresh = true;
    } else {
        BlockId last = st.blocks.back();
        BlockMeta &m = meta(last);
        if (m.streamRefs > 1 || m.pins > 0) {
            // Copy-on-write: another holder can see this open tail,
            // so appending in place would corrupt it. Take a private
            // copy of the prefix and release the shared original.
            // (The engines never hit this — shared prefix blocks are
            // always full — but the invariant is enforced here, not
            // by caller discipline.)
            ensureCapacity(seq, layer, st.len, off + 1);
            BlockId fresh = allocFresh();
            hooks_.copyBlock(fresh, last, off);
            meta(fresh).tokens = off;
            residentTokens_ += off;
            ref(fresh);
            deref(last);
            st.blocks.back() = fresh;
            slot.fresh = true;
            slot.copied = true;
        }
        if (model_ == PageCapacityModel::Tokens)
            ensureCapacity(seq, layer, st.len, 1);
    }
    BlockId b = st.blocks.back();
    meta(b).tokens += 1;
    residentTokens_ += 1;
    st.len += 1;
    slot.block = b;
    slot.offset = off;
    return slot;
}

void
PageTable::attachShared(SeqId seq, LayerIdx layer,
                        std::span<const BlockId> blocks)
{
    MOELIGHT_ASSERT_SERIAL(gate_);
    Stream &st = at(seq, layer);
    panicIf(!st.blocks.empty() || st.len != 0,
            "attachShared to a non-empty stream (seq ", seq,
            ", layer ", layer, ")");
    for (BlockId b : blocks) {
        const BlockMeta &m = meta(b);
        panicIf(!m.resident, "attachShared to freed block ", b);
        panicIf(m.tokens != pageTokens_,
                "attachShared to a partial block ", b,
                " (only closed pages are shareable)");
    }
    st.blocks.assign(blocks.begin(), blocks.end());
    for (BlockId b : st.blocks)
        ref(b);
    st.len = st.blocks.size() * pageTokens_;
}

void
PageTable::pin(BlockId block)
{
    MOELIGHT_ASSERT_SERIAL(gate_);
    BlockMeta &m = meta(block);
    panicIf(!m.resident, "pin of non-resident KV block ", block);
    // A pinned block's token count cannot change (appends into it
    // copy-on-write), so the pinned-token counter only moves on the
    // 0<->1 pin transitions.
    if (m.pins++ == 0)
        pinnedTokens_ += m.tokens;
}

void
PageTable::unpin(BlockId block)
{
    MOELIGHT_ASSERT_SERIAL(gate_);
    BlockMeta &m = meta(block);
    if (!m.resident || m.pins == 0)
        throw EngineError(ErrorCode::KvDoubleFree, "kv.free",
                          "unpin of block " +
                              std::to_string(block.value()) +
                              " that holds no pin — double release");
    if (--m.pins == 0) {
        panicIf(pinnedTokens_ < m.tokens,
                "pinned KV token accounting underflow");
        pinnedTokens_ -= m.tokens;
        if (m.streamRefs == 0)
            releasePhysical(block);
    }
}

bool
PageTable::sequenceLive(SeqId seq) const
{
    if (seq.value() >= numSeqs_)
        return false;
    for (LayerIdx layer : IndexRange(LayerIdx(layers_))) {
        const Stream &st = at(seq, layer);
        if (st.len != 0 || !st.blocks.empty())
            return true;
    }
    return false;
}

void
PageTable::freeSequence(SeqId seq)
{
    MOELIGHT_ASSERT_SERIAL(gate_);
    if (seq.value() >= numSeqs_)
        throw EngineError(ErrorCode::KvInvalidSequence, "kv.free",
                          "freeSequence(" +
                              std::to_string(seq.value()) +
                              ") with only " +
                              std::to_string(numSeqs_) +
                              " sequences");
    if (!sequenceLive(seq))
        throw EngineError(ErrorCode::KvDoubleFree, "kv.free",
                          "freeSequence(" +
                              std::to_string(seq.value()) +
                              ") holds no KV state — double free or "
                              "never-appended sequence");
    for (LayerIdx layer : IndexRange(LayerIdx(layers_))) {
        Stream &st = at(seq, layer);
        for (BlockId b : st.blocks)
            deref(b);
        st.blocks.clear();
        st.len = 0;
    }
}

std::size_t
PageTable::streamLen(SeqId seq, LayerIdx layer) const
{
    return at(seq, layer).len;
}

std::span<const BlockId>
PageTable::streamBlocks(SeqId seq, LayerIdx layer) const
{
    return at(seq, layer).blocks;
}

std::size_t
PageTable::blockTokens(BlockId block) const
{
    return meta(block).tokens;
}

std::size_t
PageTable::blockStreamRefs(BlockId block) const
{
    return meta(block).streamRefs;
}

std::size_t
PageTable::blockPins(BlockId block) const
{
    return meta(block).pins;
}

} // namespace moelight
