#include "runtime/fault_injection.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "runtime/status.hh"

namespace moelight {

namespace {

/** splitmix64: tiny, seedable, and good enough for fault draws. */
std::uint64_t
nextRand(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
unitUniform(std::uint64_t &state)
{
    return static_cast<double>(nextRand(state) >> 11) *
           (1.0 / 9007199254740992.0);  // 53-bit mantissa
}

} // namespace

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector fi;
    static std::once_flag env_once;
    std::call_once(env_once, [] { fi.loadEnv(); });
    return fi;
}

void
FaultInjector::loadEnv()
{
    const char *env = std::getenv("MOELIGHT_FAULT");
    if (!env || !*env)
        return;
    // Entries separated by ';' or ','; each is site:spec[:s<seed>]
    // where spec is a 1-based count, or p<rate> for rate mode.
    std::string s(env);
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t end = s.find_first_of(";,", pos);
        if (end == std::string::npos)
            end = s.size();
        std::string entry = s.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;
        std::size_t colon = entry.find(':');
        fatalIf(colon == std::string::npos || colon == 0,
                "MOELIGHT_FAULT entry '", entry,
                "' is not site:count or site:p<rate>[:s<seed>]");
        std::string site = entry.substr(0, colon);
        std::string spec = entry.substr(colon + 1);
        std::uint64_t seed = 1;
        std::size_t seedSep = spec.find(':');
        if (seedSep != std::string::npos) {
            std::string st = spec.substr(seedSep + 1);
            fatalIf(st.size() < 2 || st[0] != 's',
                    "MOELIGHT_FAULT seed suffix '", st,
                    "' must look like s<seed>");
            seed = std::strtoull(st.c_str() + 1, nullptr, 10);
            spec = spec.substr(0, seedSep);
        }
        fatalIf(spec.empty(), "MOELIGHT_FAULT entry '", entry,
                "' has an empty spec");
        if (spec[0] == 'p') {
            double rate = std::strtod(spec.c_str() + 1, nullptr);
            fatalIf(rate < 0.0 || rate > 1.0,
                    "MOELIGHT_FAULT rate '", spec,
                    "' out of [0, 1]");
            armRate(site, rate, seed);
        } else {
            std::uint64_t nth =
                std::strtoull(spec.c_str(), nullptr, 10);
            fatalIf(nth == 0, "MOELIGHT_FAULT count '", spec,
                    "' must be a positive integer");
            armCount(site, nth);
        }
    }
}

void
FaultInjector::armCount(const std::string &site, std::uint64_t nth)
{
    fatalIf(nth == 0, "fault count is 1-based; 0 never fires");
    MutexLock lk(mu_);
    Site &st = sites_[site];
    st.calls = 0;
    st.nth = nth;
    st.rateArmed = false;
    recomputeEnabled();
}

void
FaultInjector::armRate(const std::string &site, double rate,
                       std::uint64_t seed)
{
    fatalIf(rate < 0.0 || rate > 1.0, "fault rate out of [0, 1]");
    MutexLock lk(mu_);
    Site &st = sites_[site];
    st.calls = 0;
    st.nth = 0;
    st.rateArmed = true;
    st.rate = rate;
    st.rngState = seed;
    recomputeEnabled();
}

void
FaultInjector::disarm(const std::string &site)
{
    MutexLock lk(mu_);
    auto it = sites_.find(site);
    if (it != sites_.end()) {
        it->second.nth = 0;
        it->second.rateArmed = false;
    }
    recomputeEnabled();
}

void
FaultInjector::disarmAll()
{
    MutexLock lk(mu_);
    sites_.clear();
    enabled_.store(false, std::memory_order_relaxed);
}

std::uint64_t
FaultInjector::hits(const std::string &site) const
{
    MutexLock lk(mu_);
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.hitCount;
}

void
FaultInjector::recomputeEnabled()
{
    bool any = false;
    for (const auto &kv : sites_)
        any = any || kv.second.nth != 0 || kv.second.rateArmed;
    enabled_.store(any, std::memory_order_relaxed);
}

void
FaultInjector::checkSlow(const char *site)
{
    std::uint64_t call = 0;
    {
        MutexLock lk(mu_);
        auto it = sites_.find(site);
        if (it == sites_.end())
            return;
        Site &st = it->second;
        if (st.nth == 0 && !st.rateArmed)
            return;
        call = ++st.calls;
        bool fire = false;
        if (st.nth != 0 && call == st.nth) {
            fire = true;
            st.nth = 0;  // one-shot
            recomputeEnabled();
        } else if (st.rateArmed && st.rate > 0.0 &&
                   unitUniform(st.rngState) < st.rate) {
            fire = true;
        }
        if (!fire)
            return;
        ++st.hitCount;
    }
    throw EngineError(ErrorCode::FaultInjected, site,
                      "injected fault (check #" +
                          std::to_string(call) + ")");
}

} // namespace moelight
