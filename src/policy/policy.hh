/**
 * @file
 * The inference policy 6-tuple of paper §4.2: (N, mu, A_g, F_g, r_w,
 * r_c). Header-only so the perf model can consume it without a link
 * dependency on the optimizer library.
 */

#ifndef MOELIGHT_POLICY_POLICY_HH
#define MOELIGHT_POLICY_POLICY_HH

#include <cstddef>
#include <string>

#include "common/logging.hh"

namespace moelight {

/**
 * A complete scheduling policy. N must be a multiple of mu; the
 * number of micro-batches in flight is numUbs().
 */
struct Policy
{
    std::size_t batchSize = 0;   ///< N: tokens per full model pass
    std::size_t microBatch = 0;  ///< mu: tokens per kernel launch
    bool attnOnGpu = false;      ///< A_g: attention device indicator
    bool ffnOnGpu = true;        ///< F_g: MoE FFN device indicator
    double weightsOnGpu = 0.0;   ///< r_w: fraction of weights resident
    double kvOnGpu = 0.0;        ///< r_c: fraction of KV resident

    /** Number of micro-batches N / mu. */
    std::size_t
    numUbs() const
    {
        panicIf(microBatch == 0, "policy with zero micro-batch");
        return batchSize / microBatch;
    }

    /** Structural sanity (divisibility, ranges). */
    void
    validate() const
    {
        fatalIf(batchSize == 0 || microBatch == 0,
                "policy sizes must be positive");
        fatalIf(batchSize % microBatch != 0,
                "batch size must be a multiple of micro-batch size");
        fatalIf(weightsOnGpu < 0.0 || weightsOnGpu > 1.0,
                "r_w out of [0,1]");
        fatalIf(kvOnGpu < 0.0 || kvOnGpu > 1.0, "r_c out of [0,1]");
        fatalIf(!attnOnGpu && kvOnGpu > 0.0,
                "KV on GPU requires GPU attention (A_g=1)");
    }

    /** Compact human-readable rendering. */
    std::string
    str() const
    {
        return "{N=" + std::to_string(batchSize) +
               ", mu=" + std::to_string(microBatch) +
               ", Ag=" + std::to_string(attnOnGpu) +
               ", Fg=" + std::to_string(ffnOnGpu) +
               ", rw=" + std::to_string(weightsOnGpu) +
               ", rc=" + std::to_string(kvOnGpu) + "}";
    }
};

/** The offloading system families modelled in this repo. */
enum class SystemKind
{
    MoeLightning,        ///< CGOPipe + paged weights (this paper)
    MoeLightningPadded,  ///< same, requests padded to max prompt
    FlexGen,             ///< S4: GPU attention, KV prefetch, unpaged
    FlexGenC,            ///< S3: CPU attention, no overlap, unpaged
    FastDecode,          ///< S2: CPU attention overlapped, unpaged
    DeepSpeed,           ///< ZeRO-Inference style layer streaming
};

/** Display name for a system kind. */
inline std::string
systemName(SystemKind k)
{
    switch (k) {
      case SystemKind::MoeLightning:
        return "MoE-Lightning";
      case SystemKind::MoeLightningPadded:
        return "MoE-Lightning(p)";
      case SystemKind::FlexGen:
        return "FlexGen";
      case SystemKind::FlexGenC:
        return "FlexGen(c)";
      case SystemKind::FastDecode:
        return "FastDecode*";
      case SystemKind::DeepSpeed:
        return "DeepSpeed-Zero";
    }
    return "?";
}

} // namespace moelight

#endif // MOELIGHT_POLICY_POLICY_HH
