#include "policy/optimizer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace moelight {

namespace {

/** Score @p pol, updating @p best when it is feasible and faster. */
void
consider(const PerfModel &pm, SystemKind sys, const Policy &pol,
         std::optional<PolicyChoice> &best)
{
    if (!pm.feasible(pol))
        return;
    double tput = pm.generationThroughput(pol, sys);
    if (!best || tput > best->throughput) {
        PolicyChoice c;
        c.policy = pol;
        c.throughput = tput;
        c.layerTime = pm.layerDecode(pol, sys);
        best = c;
    }
}

/**
 * Largest r_w on the grid that keeps the policy GPU-feasible; the
 * footprint is monotonic in r_w on the GPU side, so scan down.
 */
double
maxFeasibleWeightRatio(const PerfModel &pm, Policy pol, int steps)
{
    for (int i = steps; i >= 0; --i) {
        double rw = static_cast<double>(i) / steps;
        pol.weightsOnGpu = rw;
        if (pm.footprint(pol).gpuPeak() <= pm.hardware().gpuMem)
            return rw;
    }
    return 0.0;
}

} // namespace

std::optional<PolicyChoice>
searchPolicy(const PerfModel &pm, SystemKind sys, const SearchConfig &cfg)
{
    fatalIf(cfg.microBatches.empty() || cfg.numUbs.empty(),
            "empty optimizer grid");
    std::optional<PolicyChoice> best;

    std::vector<bool> attn_options;
    if (cfg.allowCpuAttention)
        attn_options.push_back(false);
    if (cfg.allowGpuAttention)
        attn_options.push_back(true);
    fatalIf(attn_options.empty(), "no attention placement allowed");

    for (bool ag : attn_options) {
        for (std::size_t mu : cfg.microBatches) {
            for (std::size_t n_ub : cfg.numUbs) {
                // CGOPipe needs >= 3 micro-batches in flight to hide
                // CPU attention (Algorithm 1's two-ahead lookahead);
                // smaller counts are still legal policies.
                Policy pol;
                pol.microBatch = mu;
                pol.batchSize = mu * n_ub;
                pol.attnOnGpu = ag;
                pol.ffnOnGpu = true;

                double rw_max = maxFeasibleWeightRatio(
                    pm, pol, cfg.weightRatioSteps);
                // Scan a few r_w values below the cap: more static
                // weights always cuts link traffic but steals memory
                // from activations (already accounted in footprint).
                for (int i = 0; i <= cfg.weightRatioSteps; ++i) {
                    double rw = rw_max * i / cfg.weightRatioSteps;
                    pol.weightsOnGpu = rw;
                    if (!ag) {
                        pol.kvOnGpu = 0.0;
                        consider(pm, sys, pol, best);
                    } else {
                        for (int r = 0; r <= cfg.kvRatioSteps; ++r) {
                            pol.kvOnGpu = static_cast<double>(r) /
                                          cfg.kvRatioSteps;
                            consider(pm, sys, pol, best);
                        }
                    }
                }
            }
        }
    }
    return best;
}

std::optional<PolicyChoice>
flexGenPolicy(const PerfModel &pm, bool cpuAttention)
{
    std::optional<PolicyChoice> best;

    // FlexGen's conservative activation accounting: it reserves ~4x
    // the activation working set our footprint model charges, which
    // caps the micro-batch well below what the GPU could hold. We
    // emulate that by inflating the activation term.
    auto gpu_fits_conservative = [&](const Policy &pol) {
        MemoryFootprint f = pm.footprint(pol);
        double inflated = f.gpuPeak() +
                          3.0 * (f.gpuActDecode + f.gpuActPrefill);
        return inflated <= pm.hardware().gpuMem;
    };

    std::vector<std::size_t> mus{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64};
    for (std::size_t mu : mus) {
        Policy pol;
        pol.microBatch = mu;
        pol.batchSize = mu;
        pol.attnOnGpu = true;  // searched with the S4 cost model
        pol.ffnOnGpu = true;
        pol.weightsOnGpu = 0.0;
        pol.kvOnGpu = 0.0;
        if (!gpu_fits_conservative(pol))
            continue;
        // Push N as far as CPU memory allows (amortize weight I/O).
        std::size_t lo = 1, hi = 4096;
        std::size_t best_ub = 0;
        while (lo <= hi) {
            std::size_t mid = (lo + hi) / 2;
            pol.batchSize = mu * mid;
            if (pm.feasible(pol) && gpu_fits_conservative(pol)) {
                best_ub = mid;
                lo = mid + 1;
            } else {
                hi = mid - 1;
            }
        }
        if (best_ub == 0)
            continue;
        pol.batchSize = mu * best_ub;
        // FlexGen picks its policy with its GPU-attention cost model;
        // FlexGen(c) then runs the *same* (mu, N) with CPU attention
        // (the paper's Tab. 4 reports identical policies for both).
        double tput = pm.generationThroughput(pol, SystemKind::FlexGen);
        if (!best || tput > best->throughput) {
            PolicyChoice c;
            c.policy = pol;
            c.throughput = tput;
            c.layerTime = pm.layerDecode(pol, SystemKind::FlexGen);
            best = c;
        }
    }
    if (best && cpuAttention) {
        best->policy.attnOnGpu = false;
        best->policy.kvOnGpu = 0.0;
        best->throughput = pm.generationThroughput(
            best->policy, SystemKind::FlexGenC);
        best->layerTime =
            pm.layerDecode(best->policy, SystemKind::FlexGenC);
    }
    return best;
}

std::optional<PolicyChoice>
deepSpeedPolicy(const PerfModel &pm)
{
    std::optional<PolicyChoice> best;
    // DeepSpeed's memory manager is conservative: it reserves several
    // times the activation working set and generous KV headroom, so
    // its usable batch is well below the theoretical GPU capacity
    // (the paper reports batch 32 on S6/S7 and ~100-160 on S1/S2).
    auto ds_feasible = [&](const Policy &pol) {
        if (!pm.feasible(pol))
            return false;
        MemoryFootprint f = pm.footprint(pol);
        double inflated = f.gpuPeak() + f.gpuKv +
                          3.0 * (f.gpuActDecode + f.gpuActPrefill);
        return inflated <= pm.hardware().gpuMem;
    };
    // Single micro-batch, KV on GPU, weights streamed layer by layer.
    for (std::size_t n = 1; n <= 4096; ++n) {
        Policy pol;
        pol.microBatch = n;
        pol.batchSize = n;
        pol.attnOnGpu = true;
        pol.ffnOnGpu = true;
        pol.weightsOnGpu = 0.0;
        pol.kvOnGpu = 1.0;
        if (!ds_feasible(pol)) {
            if (best)
                break;  // monotonic in n; past the knee
            continue;
        }
        double tput =
            pm.generationThroughput(pol, SystemKind::DeepSpeed);
        if (!best || tput > best->throughput) {
            PolicyChoice c;
            c.policy = pol;
            c.throughput = tput;
            c.layerTime = pm.layerDecode(pol, SystemKind::DeepSpeed);
            best = c;
        }
    }
    return best;
}

} // namespace moelight
