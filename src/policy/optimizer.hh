/**
 * @file
 * Policy search (paper §4.2). The paper solves a small MILP; the
 * search space is tiny, so this implementation enumerates a pruned
 * grid over (N, mu, A_g, F_g, r_w, r_c) and scores candidates with
 * the PerfModel — deterministic and sub-second, with identical
 * optima (documented substitution, DESIGN.md §2).
 */

#ifndef MOELIGHT_POLICY_OPTIMIZER_HH
#define MOELIGHT_POLICY_OPTIMIZER_HH

#include <optional>
#include <vector>

#include "perf/perf_model.hh"
#include "policy/policy.hh"

namespace moelight {

/** A scored policy candidate. */
struct PolicyChoice
{
    Policy policy;
    double throughput = 0.0;  ///< modelled generation tokens/s
    LayerTime layerTime;      ///< modelled decode layer breakdown
};

/** Knobs bounding the optimizer's grid. */
struct SearchConfig
{
    std::vector<std::size_t> microBatches{4,  8,  12, 16,  24,  32,
                                          48, 64, 96, 128, 192, 256};
    std::vector<std::size_t> numUbs{1,  2,  3,  4,  6,  8,   12,  16,
                                    24, 32, 48, 64, 96, 128, 192, 256};
    int weightRatioSteps = 20;  ///< r_w grid resolution
    int kvRatioSteps = 4;       ///< r_c grid resolution
    bool allowGpuAttention = true;
    bool allowCpuAttention = true;
};

/**
 * MoE-Lightning's optimizer: find the feasible policy maximizing the
 * modelled generation throughput under @p sys 's schedule quality.
 * Returns nullopt when no candidate fits memory.
 */
std::optional<PolicyChoice> searchPolicy(
    const PerfModel &pm, SystemKind sys = SystemKind::MoeLightning,
    const SearchConfig &cfg = SearchConfig());

/**
 * FlexGen-style policy: reproduces the baseline's documented
 * behaviour (paper §6.1): conservative GPU-memory accounting caps the
 * micro-batch low, then the batch size N is pushed as high as CPU
 * memory allows to amortize weight transfers. @p cpuAttention selects
 * FlexGen(c) (S3) vs plain FlexGen (S4).
 */
std::optional<PolicyChoice> flexGenPolicy(const PerfModel &pm,
                                          bool cpuAttention);

/**
 * DeepSpeed ZeRO-Inference policy: weights pinned on CPU and streamed
 * every layer (r_w=0), KV resident on GPU, single micro-batch
 * (mu == N) sized to GPU memory.
 */
std::optional<PolicyChoice> deepSpeedPolicy(const PerfModel &pm);

} // namespace moelight

#endif // MOELIGHT_POLICY_OPTIMIZER_HH
