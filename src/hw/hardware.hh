/**
 * @file
 * Hardware configurations H from the paper's notation table: GPU/CPU
 * memory capacities, the three memory bandwidths (GPU HBM, CPU DRAM,
 * CPU<->GPU link), and peak FLOP rates. Presets cover the T4/L4/A100
 * GPUs and Xeon hosts of Tab. 2, plus the S1..S9 model+hardware
 * pairings used throughout the evaluation.
 */

#ifndef MOELIGHT_HW_HARDWARE_HH
#define MOELIGHT_HW_HARDWARE_HH

#include <cstddef>
#include <string>

#include "common/units.hh"
#include "model/model_config.hh"

namespace moelight {

/**
 * A single-node heterogeneous machine. Multi-GPU (tensor-parallel)
 * variants are derived with tensorParallel(); fields then hold the
 * *aggregate* GPU resources and numGpus records the group size.
 */
struct HardwareConfig
{
    std::string name;
    double gpuMem = 0.0;   ///< aggregate GPU memory, bytes (m_g)
    double cpuMem = 0.0;   ///< CPU DRAM, bytes (m_c)
    Bandwidth bg = 0.0;    ///< aggregate GPU HBM bandwidth (b_g)
    Bandwidth bc = 0.0;    ///< CPU DRAM bandwidth (b_c)
    Bandwidth bcg = 0.0;   ///< aggregate CPU<->GPU link bandwidth (b_cg)
    Flops pg = 0.0;        ///< aggregate GPU peak FLOP/s (p_g)
    Flops pc = 0.0;        ///< CPU peak FLOP/s (p_c)
    std::size_t numGpus = 1;

    /**
     * Kernel efficiency factors: achievable fraction of the peak for
     * real kernels ("profiled peak performance", §4.2). Compute
     * efficiencies apply to pg/pc; linkEff to bcg.
     */
    double gpuComputeEff = 0.75;
    double cpuComputeEff = 0.60;
    double gpuMemEff = 0.85;
    double cpuMemEff = 0.70;
    double linkEff = 0.85;

    /** Effective (efficiency-scaled) rates. */
    Flops effPg() const { return pg * gpuComputeEff; }
    Flops effPc() const { return pc * cpuComputeEff; }
    Bandwidth effBg() const { return bg * gpuMemEff; }
    Bandwidth effBc() const { return bc * cpuMemEff; }
    Bandwidth effBcg() const { return bcg * linkEff; }

    /** Sanity-check; throws FatalError when malformed. */
    void validate() const;
};

/** NVIDIA T4 (16 GB, ~300 GB/s, 65 TFLOP/s fp16) + 24-core Xeon host. */
HardwareConfig t4Host();
/** NVIDIA L4 (24 GB, 300 GB/s, 242 TFLOP/s) + 24-core Xeon host
 *  (paper Fig. 3). */
HardwareConfig l4Host();
/** 32-core Xeon host with n T4s (Tab. 2 S6-S9 host, 416 GB DRAM). */
HardwareConfig multiT4Host(std::size_t n);
/** 2xA100-80G host used by the §6.3 case study. */
HardwareConfig a100x2Host();

/**
 * Derive a tensor-parallel aggregate from a single-GPU config:
 * tp x GPU memory, HBM bandwidth, compute, and link bandwidth (each
 * GPU owns its PCIe link and transfers only its weight shard; §4.3).
 * Host-side resources are unchanged.
 */
HardwareConfig tensorParallel(const HardwareConfig &base, std::size_t tp);

/** A model+hardware pairing from Tab. 2. */
struct Setting
{
    std::string name;
    ModelConfig model;
    HardwareConfig hw;
};

Setting settingS1();  ///< Mixtral 8x7B on 1xT4, 192 GB host
Setting settingS2();  ///< Mixtral 8x7B on 1xL4, 192 GB host
Setting settingS6();  ///< Mixtral 8x22B on 2xT4, 416 GB host
Setting settingS7();  ///< Mixtral 8x22B on 4xT4, 416 GB host
Setting settingS8();  ///< DBRX on 2xT4, 416 GB host
Setting settingS9();  ///< DBRX on 4xT4, 416 GB host

} // namespace moelight

#endif // MOELIGHT_HW_HARDWARE_HH
