#include "hw/hardware.hh"

#include "common/logging.hh"

namespace moelight {

void
HardwareConfig::validate() const
{
    fatalIf(gpuMem <= 0 || cpuMem <= 0, "hardware '", name,
            "': memory sizes must be positive");
    fatalIf(bg <= 0 || bc <= 0 || bcg <= 0, "hardware '", name,
            "': bandwidths must be positive");
    fatalIf(pg <= 0 || pc <= 0, "hardware '", name,
            "': FLOP rates must be positive");
    fatalIf(numGpus == 0, "hardware '", name, "': numGpus == 0");
    fatalIf(bcg > bc, "hardware '", name,
            "': CPU-GPU link faster than CPU DRAM violates the HRM "
            "level ordering assumption");
}

namespace {

HardwareConfig
xeonHost24()
{
    HardwareConfig h;
    h.cpuMem = 192 * GiB;
    h.bc = 100 * GB;
    h.pc = 1.3 * TFLOP;
    return h;
}

HardwareConfig
xeonHost32()
{
    HardwareConfig h;
    h.cpuMem = 416 * GiB;
    h.bc = 120 * GB;
    h.pc = 1.7 * TFLOP;
    return h;
}

} // namespace

HardwareConfig
t4Host()
{
    HardwareConfig h = xeonHost24();
    h.name = "1xT4";
    h.gpuMem = 16 * GiB;
    h.bg = 300 * GB;
    h.bcg = 16 * GB;  // PCIe gen3 x16
    h.pg = 65 * TFLOP;
    h.validate();
    return h;
}

HardwareConfig
l4Host()
{
    HardwareConfig h = xeonHost24();
    h.name = "1xL4";
    h.gpuMem = 24 * GiB;
    h.bg = 300 * GB;
    h.bcg = 32 * GB;  // PCIe gen4 x16 (paper Fig. 3)
    h.pg = 242 * TFLOP;
    h.validate();
    return h;
}

HardwareConfig
multiT4Host(std::size_t n)
{
    fatalIf(n == 0, "multiT4Host needs at least one GPU");
    HardwareConfig one = t4Host();
    HardwareConfig h = xeonHost32();
    h.name = std::to_string(n) + "xT4";
    h.gpuMem = one.gpuMem * static_cast<double>(n);
    h.bg = one.bg * static_cast<double>(n);
    h.bcg = one.bcg * static_cast<double>(n);
    h.pg = one.pg * static_cast<double>(n);
    h.numGpus = n;
    h.validate();
    return h;
}

HardwareConfig
a100x2Host()
{
    HardwareConfig h;
    h.name = "2xA100-80G";
    h.gpuMem = 160 * GiB;
    h.cpuMem = 1024 * GiB;
    h.bg = 2 * 2039 * GB;
    h.bc = 200 * GB;
    h.bcg = 2 * 64 * GB;  // PCIe gen4 x16 per GPU
    h.pg = 2 * 312 * TFLOP;
    h.pc = 1.6 * TFLOP;
    h.numGpus = 2;
    h.validate();
    return h;
}

HardwareConfig
tensorParallel(const HardwareConfig &base, std::size_t tp)
{
    fatalIf(tp == 0, "tensor parallel degree must be positive");
    HardwareConfig h = base;
    double f = static_cast<double>(tp);
    h.name = base.name + "-tp" + std::to_string(tp);
    h.gpuMem *= f;
    h.bg *= f;
    h.bcg *= f;
    h.pg *= f;
    h.numGpus = base.numGpus * tp;
    h.validate();
    return h;
}

Setting
settingS1()
{
    return {"S1", mixtral8x7b(), t4Host()};
}

Setting
settingS2()
{
    return {"S2", mixtral8x7b(), l4Host()};
}

Setting
settingS6()
{
    return {"S6", mixtral8x22b(), multiT4Host(2)};
}

Setting
settingS7()
{
    return {"S7", mixtral8x22b(), multiT4Host(4)};
}

Setting
settingS8()
{
    return {"S8", dbrx(), multiT4Host(2)};
}

Setting
settingS9()
{
    return {"S9", dbrx(), multiT4Host(4)};
}

} // namespace moelight
