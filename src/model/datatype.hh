/**
 * @file
 * Data type descriptors for the analytical cost model. The functional
 * runtime computes in float32; the cost model reasons about the byte
 * footprint of f16 weights, int4 KV cache, etc., exactly like the
 * paper's HRM case study (Fig. 4 compares f16 vs int4 KV).
 */

#ifndef MOELIGHT_MODEL_DATATYPE_HH
#define MOELIGHT_MODEL_DATATYPE_HH

#include <string>

namespace moelight {

/** Storage data types considered by the cost model. */
enum class DataType
{
    F32,
    F16,
    BF16,
    INT8,
    INT4,
};

/** Bytes per element (INT4 is 0.5). */
constexpr double
bytesOf(DataType dt)
{
    switch (dt) {
      case DataType::F32:
        return 4.0;
      case DataType::F16:
      case DataType::BF16:
        return 2.0;
      case DataType::INT8:
        return 1.0;
      case DataType::INT4:
        return 0.5;
    }
    return 4.0;
}

/** Human-readable name. */
std::string dataTypeName(DataType dt);

} // namespace moelight

#endif // MOELIGHT_MODEL_DATATYPE_HH
