#include "model/op_cost.hh"

#include <algorithm>

#include "common/logging.hh"

namespace moelight {

double
OpCost::intensity() const
{
    double b = totalBytes();
    return b > 0.0 ? flops / b : 0.0;
}

OpCost &
OpCost::operator+=(const OpCost &o)
{
    flops += o.flops;
    weightBytes += o.weightBytes;
    actBytes += o.actBytes;
    kvBytes += o.kvBytes;
    return *this;
}

OpCost
operator+(OpCost a, const OpCost &b)
{
    a += b;
    return a;
}

double
hiddenBytesPerToken(const ModelConfig &m)
{
    return static_cast<double>(m.h1) * m.weightByte();
}

double
qkvBytesPerToken(const ModelConfig &m)
{
    double elems = static_cast<double>(m.nq + 2 * m.nkv) * m.headDim;
    return elems * m.weightByte();
}

OpCost
preAttnDecodeCost(const ModelConfig &m, std::size_t mu)
{
    OpCost c;
    double tokens = static_cast<double>(mu);
    double qkv_out = static_cast<double>(m.nq + 2 * m.nkv) * m.headDim;
    c.flops = 2.0 * tokens * m.h1 * qkv_out  // QKV projection
              + 4.0 * tokens * m.h1;         // RMSNorm (approx)
    c.weightBytes = static_cast<double>(m.h1) * qkv_out * m.weightByte();
    c.actBytes = tokens * (hiddenBytesPerToken(m) + qkvBytesPerToken(m));
    return c;
}

OpCost
attnCoreDecodeCost(const ModelConfig &m, std::size_t mu, double ctx)
{
    fatalIf(ctx <= 0.0, "attention context must be positive");
    OpCost c;
    double tokens = static_cast<double>(mu);
    // Per query head: 2*ctx*headDim (QK^T) + 2*ctx*headDim (AV).
    c.flops = 4.0 * tokens * ctx * m.nq * m.headDim;
    // KV bytes read: ctx tokens of K and V across nkv heads.
    c.kvBytes = tokens * ctx * 2.0 * m.nkv * m.headDim * m.kvByte();
    c.actBytes = tokens * (qkvBytesPerToken(m) + hiddenBytesPerToken(m));
    return c;
}

OpCost
postAttnDecodeCost(const ModelConfig &m, std::size_t mu, bool denseExperts)
{
    OpCost c;
    double tokens = static_cast<double>(mu);
    double o_in = static_cast<double>(m.nq) * m.headDim;
    // O projection + router + k expert FFNs per token.
    c.flops = 2.0 * tokens * o_in * m.h1                     // O proj
              + 2.0 * tokens * m.h1 * m.ne                   // router
              + 6.0 * tokens * m.k * m.h1 * m.h2;            // expert FFN
    double experts_touched = denseExperts
        ? static_cast<double>(m.ne)
        : std::min<double>(static_cast<double>(m.ne),
                           tokens * static_cast<double>(m.k));
    c.weightBytes = (o_in * m.h1 + m.h1 * m.ne) * m.weightByte() +
                    experts_touched * m.expertParams() * m.weightByte();
    c.actBytes = 2.0 * tokens * hiddenBytesPerToken(m);
    return c;
}

OpCost
layerDecodeCost(const ModelConfig &m, std::size_t mu, double ctx)
{
    return preAttnDecodeCost(m, mu) + attnCoreDecodeCost(m, mu, ctx) +
           postAttnDecodeCost(m, mu);
}

OpCost
layerPrefillCost(const ModelConfig &m, double tokens, double avgSeq)
{
    fatalIf(tokens <= 0.0 || avgSeq <= 0.0,
            "prefill tokens and sequence length must be positive");
    OpCost c;
    double qkv_out = static_cast<double>(m.nq + 2 * m.nkv) * m.headDim;
    double o_in = static_cast<double>(m.nq) * m.headDim;
    // Projections and FFN are linear in total tokens.
    c.flops = 2.0 * tokens * m.h1 * qkv_out        // QKV
              + 2.0 * tokens * o_in * m.h1         // O
              + 2.0 * tokens * m.h1 * m.ne         // router
              + 6.0 * tokens * m.k * m.h1 * m.h2;  // experts
    // Causal attention: sum_{i=1..s} 4*i*nq*hd ~= 2*s^2*nq*hd per seq;
    // tokens/avgSeq sequences.
    double seqs = tokens / avgSeq;
    c.flops += seqs * 2.0 * avgSeq * avgSeq * m.nq * m.headDim;
    c.weightBytes = m.weightBytesPerLayer();
    c.kvBytes = tokens * m.kvBytesPerTokenPerLayer();  // KV written
    c.actBytes = 2.0 * tokens * hiddenBytesPerToken(m);
    return c;
}

double
attnIntensityVsKv(const ModelConfig &m)
{
    OpCost c = attnCoreDecodeCost(m, 1, 512.0);
    return c.flops / c.kvBytes;
}

double
ffnIntensityVsWeights(const ModelConfig &m, double n)
{
    double flops = 6.0 * n * m.k * m.h1 * m.h2;
    double bytes = static_cast<double>(m.ne) * m.expertParams() *
                   m.weightByte();
    return flops / bytes;
}

} // namespace moelight
