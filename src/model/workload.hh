/**
 * @file
 * Workload generators mirroring the paper's Tab. 3: MTBench-like
 * multi-turn questions (short prompts), HELM synthetic reasoning
 * (medium prompts, tight max), and HELM summarization (long prompts).
 * Prompt lengths are drawn from a clipped log-normal whose mean and
 * max match the table; generation is deterministic given the seed.
 */

#ifndef MOELIGHT_MODEL_WORKLOAD_HH
#define MOELIGHT_MODEL_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace moelight {

/** One inference request: a prompt and a target generation length. */
struct Request
{
    int id = 0;
    int promptLen = 0;
    int genLen = 0;
};

/** Statistical description of a workload (paper Tab. 3). */
struct WorkloadConfig
{
    std::string name;
    double avgPrompt = 0.0;  ///< s_avg
    int maxPrompt = 0;       ///< s_max
    int genLen = 0;          ///< l (output tokens per request)
};

/** MTBench: s_avg=77, s_max=418; genLen in {32,64,128,256}. */
WorkloadConfig mtbench(int genLen);
/** HELM synthetic reasoning: s_avg=242, s_max=256, genLen=50. */
WorkloadConfig syntheticReasoning();
/** HELM summarization: s_avg=1693, s_max=1984, genLen=64. */
WorkloadConfig summarization();

/**
 * Draw @p count requests from @p cfg with deterministic seeding.
 * Prompt lengths are log-normal with the configured mean, clipped to
 * [4, maxPrompt]; the empirical mean is re-centered to within a few
 * percent of avgPrompt.
 */
std::vector<Request> generateRequests(const WorkloadConfig &cfg,
                                      std::size_t count,
                                      std::uint64_t seed = 0x5eed);

/** Mean prompt length of @p reqs. */
double meanPromptLen(const std::vector<Request> &reqs);
/** Max prompt length of @p reqs. */
int maxPromptLen(const std::vector<Request> &reqs);

} // namespace moelight

#endif // MOELIGHT_MODEL_WORKLOAD_HH
