/**
 * @file
 * Analytical per-operator FLOP and byte counts for MoE transformer
 * inference, computed "theoretically from M" exactly as §4.2 of the
 * paper prescribes. These numbers feed the HRM plots (Figs. 4-5), the
 * performance model (Eqs. 12-14) and the simulator task durations.
 *
 * Decode-stage operator split follows CGOPipe's task decomposition:
 *   PreAttn  = RMSNorm + QKV projection            (GPU)
 *   AttnCore = softmax(QK^T)V over the KV cache    (CPU or GPU)
 *   PostAttn = O projection + router + MoE FFN     (GPU)
 */

#ifndef MOELIGHT_MODEL_OP_COST_HH
#define MOELIGHT_MODEL_OP_COST_HH

#include <cstddef>

#include "model/model_config.hh"

namespace moelight {

/**
 * Cost of one operator instance: FLOPs plus the bytes it touches,
 * broken down by what the bytes are (weights, activations, KV) so the
 * perf model can route them over the right link / memory.
 */
struct OpCost
{
    double flops = 0.0;        ///< floating point operations
    double weightBytes = 0.0;  ///< weight bytes read
    double actBytes = 0.0;     ///< activation bytes read+written
    double kvBytes = 0.0;      ///< KV cache bytes read (+written)

    /** Total bytes across categories. */
    double totalBytes() const { return weightBytes + actBytes + kvBytes; }
    /** Operational intensity w.r.t. all touched bytes. */
    double intensity() const;

    OpCost &operator+=(const OpCost &o);
};

OpCost operator+(OpCost a, const OpCost &b);

/** Bytes of one token's hidden state (h1 elements at dtWeight width). */
double hiddenBytesPerToken(const ModelConfig &m);

/** Bytes of one token's QKV projection output (q + k + v heads). */
double qkvBytesPerToken(const ModelConfig &m);

/**
 * Decode PreAttn for @p mu tokens: RMSNorm + QKV projection.
 */
OpCost preAttnDecodeCost(const ModelConfig &m, std::size_t mu);

/**
 * Decode attention core (softmax part only, QKVO projections excluded
 * as in the paper's Fig. 4 footnote) for @p mu tokens at average
 * context length @p ctx.
 */
OpCost attnCoreDecodeCost(const ModelConfig &m, std::size_t mu,
                          double ctx);

/**
 * Decode PostAttn for @p mu tokens: O projection + router + top-k
 * expert FFNs. @p denseExperts controls the weight bytes: when true
 * (the usual large-batch decode case, mu*k >= ne) all ne experts'
 * weights are touched; when false only k experts are.
 */
OpCost postAttnDecodeCost(const ModelConfig &m, std::size_t mu,
                          bool denseExperts = true);

/** Sum of the three decode operators above for one layer. */
OpCost layerDecodeCost(const ModelConfig &m, std::size_t mu, double ctx);

/**
 * Prefill cost for one layer over @p tokens total prompt tokens with
 * average sequence length @p avgSeq (attention is quadratic in the
 * per-sequence length; tokens/avgSeq sequences are assumed).
 */
OpCost layerPrefillCost(const ModelConfig &m, double tokens,
                        double avgSeq);

/**
 * Operational intensity of decode attention w.r.t. KV-cache bytes;
 * independent of batch size (paper §3.3): 2*h1 / (nkv*headDim*kvByte)
 * per unit GQA group.
 */
double attnIntensityVsKv(const ModelConfig &m);

/**
 * Operational intensity of the MoE FFN w.r.t. the weight bytes that
 * must be fetched per layer, for a *batch* of @p n tokens (larger n =>
 * more reuse of each fetched weight => higher intensity).
 */
double ffnIntensityVsWeights(const ModelConfig &m, double n);

} // namespace moelight

#endif // MOELIGHT_MODEL_OP_COST_HH
