#include "model/workload.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace moelight {

WorkloadConfig
mtbench(int genLen)
{
    fatalIf(genLen <= 0, "generation length must be positive");
    return {"MTBench", 77.0, 418, genLen};
}

WorkloadConfig
syntheticReasoning()
{
    return {"SyntheticReasoning", 242.0, 256, 50};
}

WorkloadConfig
summarization()
{
    return {"Summarization", 1693.0, 1984, 64};
}

std::vector<Request>
generateRequests(const WorkloadConfig &cfg, std::size_t count,
                 std::uint64_t seed)
{
    fatalIf(count == 0, "request count must be positive");
    fatalIf(cfg.avgPrompt <= 0.0 || cfg.maxPrompt <= 0,
            "workload '", cfg.name, "' has non-positive lengths");

    Rng rng(seed);
    // Sigma chosen so the clipped distribution looks like the real
    // dataset: wide for MTBench-style mixes, narrow when the max is
    // close to the mean (HELM tasks truncate prompts at a budget).
    double ratio = static_cast<double>(cfg.maxPrompt) / cfg.avgPrompt;
    double sigma = ratio > 3.0 ? 0.8 : 0.15;

    std::vector<Request> reqs(count);
    double sum = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        double draw = rng.logNormal(cfg.avgPrompt, sigma);
        int len = static_cast<int>(std::lround(draw));
        len = std::clamp(len, 4, cfg.maxPrompt);
        reqs[i] = {static_cast<int>(i), len, cfg.genLen};
        sum += len;
    }
    // Re-center the empirical mean toward avgPrompt by nudging samples
    // (keeps determinism and the clip bounds).
    double mean = sum / static_cast<double>(count);
    double scale = cfg.avgPrompt / mean;
    for (auto &r : reqs) {
        int len = static_cast<int>(std::lround(r.promptLen * scale));
        r.promptLen = std::clamp(len, 4, cfg.maxPrompt);
    }
    return reqs;
}

double
meanPromptLen(const std::vector<Request> &reqs)
{
    panicIf(reqs.empty(), "meanPromptLen over empty workload");
    double s = 0.0;
    for (const auto &r : reqs)
        s += r.promptLen;
    return s / static_cast<double>(reqs.size());
}

int
maxPromptLen(const std::vector<Request> &reqs)
{
    panicIf(reqs.empty(), "maxPromptLen over empty workload");
    int m = 0;
    for (const auto &r : reqs)
        m = std::max(m, r.promptLen);
    return m;
}

} // namespace moelight
