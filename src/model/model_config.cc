#include "model/model_config.hh"

#include "common/logging.hh"

namespace moelight {

std::string
dataTypeName(DataType dt)
{
    switch (dt) {
      case DataType::F32:
        return "f32";
      case DataType::F16:
        return "f16";
      case DataType::BF16:
        return "bf16";
      case DataType::INT8:
        return "int8";
      case DataType::INT4:
        return "int4";
    }
    return "?";
}

double
ModelConfig::attnParamsPerLayer() const
{
    double q = static_cast<double>(h1) * nq * headDim;
    double kv = 2.0 * static_cast<double>(h1) * nkv * headDim;
    double o = static_cast<double>(nq) * headDim * h1;
    return q + kv + o;
}

double
ModelConfig::expertParams() const
{
    return 3.0 * static_cast<double>(h1) * h2;
}

double
ModelConfig::routerParamsPerLayer() const
{
    return static_cast<double>(h1) * ne;
}

double
ModelConfig::ffnParamsPerLayer() const
{
    return static_cast<double>(ne) * expertParams() +
           routerParamsPerLayer();
}

double
ModelConfig::paramsPerLayer() const
{
    return attnParamsPerLayer() + ffnParamsPerLayer();
}

double
ModelConfig::totalParams() const
{
    // Token embedding + tied-ish LM head (counted separately).
    double emb = 2.0 * static_cast<double>(vocab) * h1;
    return static_cast<double>(l) * paramsPerLayer() + emb;
}

double
ModelConfig::weightBytesPerLayer() const
{
    return paramsPerLayer() * weightByte();
}

double
ModelConfig::totalWeightBytes() const
{
    return totalParams() * weightByte();
}

double
ModelConfig::ffnWeightBytesPerLayer() const
{
    return ffnParamsPerLayer() * weightByte();
}

double
ModelConfig::attnWeightBytesPerLayer() const
{
    return attnParamsPerLayer() * weightByte();
}

double
ModelConfig::kvBytesPerTokenPerLayer() const
{
    return 2.0 * static_cast<double>(nkv) * headDim * kvByte();
}

double
ModelConfig::kvBytesPerToken() const
{
    return kvBytesPerTokenPerLayer() * static_cast<double>(l);
}

void
ModelConfig::validate() const
{
    fatalIf(l == 0 || h1 == 0 || h2 == 0 || nq == 0 || nkv == 0 ||
                headDim == 0 || ne == 0 || k == 0 || vocab == 0,
            "model config '", name, "' has a zero field");
    fatalIf(nq % nkv != 0, "model config '", name,
            "': nq must be a multiple of nkv");
    fatalIf(k > ne, "model config '", name, "': k > ne");
    fatalIf(nq * headDim != h1, "model config '", name,
            "': nq*headDim must equal h1 (simplifying assumption)");
}

ModelConfig
mixtral8x7b()
{
    ModelConfig m;
    m.name = "Mixtral-8x7B";
    m.l = 32;
    m.h1 = 4096;
    m.h2 = 14336;
    m.nq = 32;
    m.nkv = 8;
    m.headDim = 128;
    m.ne = 8;
    m.k = 2;
    m.vocab = 32000;
    m.dtWeight = DataType::F16;
    m.dtKv = DataType::F16;
    m.validate();
    return m;
}

ModelConfig
mixtral8x22b()
{
    ModelConfig m;
    m.name = "Mixtral-8x22B";
    m.l = 56;
    m.h1 = 6144;
    m.h2 = 16384;
    m.nq = 48;
    m.nkv = 8;
    m.headDim = 128;
    m.ne = 8;
    m.k = 2;
    m.vocab = 32768;
    m.dtWeight = DataType::F16;
    m.dtKv = DataType::F16;
    m.validate();
    return m;
}

ModelConfig
dbrx()
{
    ModelConfig m;
    m.name = "DBRX";
    m.l = 40;
    m.h1 = 6144;
    m.h2 = 10752;
    m.nq = 48;
    m.nkv = 8;
    m.headDim = 128;
    m.ne = 16;
    m.k = 4;
    m.vocab = 100352;
    m.dtWeight = DataType::F16;
    m.dtKv = DataType::F16;
    m.validate();
    return m;
}

ModelConfig
tinyMixtral()
{
    ModelConfig m;
    m.name = "tiny-mixtral";
    m.l = 4;
    m.h1 = 64;
    m.h2 = 128;
    m.nq = 8;
    m.nkv = 2;
    m.headDim = 8;
    m.ne = 4;
    m.k = 2;
    m.vocab = 256;
    m.dtWeight = DataType::F32;
    m.dtKv = DataType::F32;
    m.validate();
    return m;
}

} // namespace moelight
