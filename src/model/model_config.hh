/**
 * @file
 * MoE transformer model configurations (Tab. 1, "Model Configurations
 * M") with derived byte/parameter accounting. Presets cover the three
 * models the paper evaluates (Mixtral 8x7B, Mixtral 8x22B, DBRX) plus
 * a tiny synthetic model for the functional runtime.
 */

#ifndef MOELIGHT_MODEL_MODEL_CONFIG_HH
#define MOELIGHT_MODEL_MODEL_CONFIG_HH

#include <cstddef>
#include <string>

#include "model/datatype.hh"

namespace moelight {

/**
 * Shape and data-type description of an MoE transformer. Field names
 * follow the paper's notation table: l layers, h1 model hidden dim,
 * h2 expert intermediate dim, nq/nkv attention heads, ne experts,
 * k top-k routing.
 */
struct ModelConfig
{
    std::string name;
    std::size_t l = 0;        ///< number of transformer layers
    std::size_t h1 = 0;       ///< model hidden dimension
    std::size_t h2 = 0;       ///< expert intermediate dimension
    std::size_t nq = 0;       ///< query heads
    std::size_t nkv = 0;      ///< key/value heads
    std::size_t headDim = 0;  ///< per-head dimension
    std::size_t ne = 0;       ///< number of experts per layer
    std::size_t k = 0;        ///< top-k experts routed per token
    std::size_t vocab = 0;    ///< vocabulary size
    DataType dtWeight = DataType::F16;  ///< weight storage type
    DataType dtKv = DataType::F16;      ///< KV cache storage type

    /** Bytes of one element of weight / KV storage. */
    double weightByte() const { return bytesOf(dtWeight); }
    double kvByte() const { return bytesOf(dtKv); }

    /** Parameters in the attention block (QKVO projections) per layer. */
    double attnParamsPerLayer() const;
    /** Parameters of one expert FFN (w1 + w2 + w3). */
    double expertParams() const;
    /** Parameters of the router gate per layer. */
    double routerParamsPerLayer() const;
    /** All-experts FFN + router parameters per layer. */
    double ffnParamsPerLayer() const;
    /** Total per-layer parameters. */
    double paramsPerLayer() const;
    /** Total model parameters (incl. embeddings & lm head). */
    double totalParams() const;

    /** Bytes of weights per layer / for the whole model. */
    double weightBytesPerLayer() const;
    double totalWeightBytes() const;
    /** Bytes of weights for the FFN (experts + router) per layer. */
    double ffnWeightBytesPerLayer() const;
    /** Bytes of weights for attention per layer. */
    double attnWeightBytesPerLayer() const;

    /** KV cache bytes for one token, one layer (both K and V). */
    double kvBytesPerTokenPerLayer() const;
    /** KV cache bytes for one token across all layers. */
    double kvBytesPerToken() const;

    /** Sanity-check invariants; throws FatalError when malformed. */
    void validate() const;
};

/** Mixtral 8x7B (32 layers, 8 experts, top-2, GQA 32/8). */
ModelConfig mixtral8x7b();
/** Mixtral 8x22B (56 layers, 8 experts, top-2, GQA 48/8). */
ModelConfig mixtral8x22b();
/** DBRX 132B (40 layers, 16 experts, top-4, GQA 48/8). */
ModelConfig dbrx();
/** Tiny synthetic Mixtral-style model for the functional runtime. */
ModelConfig tinyMixtral();

} // namespace moelight

#endif // MOELIGHT_MODEL_MODEL_CONFIG_HH
