/**
 * @file
 * Discrete-event simulator over a TaskGraph: four exclusive resources,
 * non-preemptive, priority-then-FIFO dispatch per resource. Produces
 * the makespan, per-resource utilization, per-step completion times
 * (for steady-state decode throughput) and a Gantt trace (Fig. 6).
 */

#ifndef MOELIGHT_SIM_SIMULATOR_HH
#define MOELIGHT_SIM_SIMULATOR_HH

#include <array>
#include <string>
#include <vector>

#include "sim/task_graph.hh"

namespace moelight {

/** One executed interval on a resource. */
struct TraceEntry
{
    ResourceKind resource;
    SimTime start = 0;
    SimTime end = 0;
    std::string label;
};

/** Simulation outputs. */
struct SimResult
{
    SimTime makespan = 0;
    /** Busy nanoseconds per resource. */
    std::array<SimTime, kNumResources> busy{};
    /** Utilization = busy / makespan, per resource. */
    std::array<double, kNumResources> utilization{};
    /** Completion time of the last task of each decode step. */
    std::vector<SimTime> stepFinish;
    /** Full execution trace, ordered by start time. */
    std::vector<TraceEntry> trace;

    /**
     * Steady-state time per decode step: the average gap between the
     * last @p tail step completions (skips pipeline warm-up).
     */
    Seconds steadyStepTime(std::size_t tail = 2) const;
};

/**
 * Run the DAG to completion. Throws PanicError when the graph
 * deadlocks (cyclic dependencies) or references unknown tasks.
 */
SimResult simulate(const TaskGraph &graph);

/**
 * Render an ASCII Gantt chart of @p trace (one row per resource),
 * @p cols characters wide. Labels are compressed to fit.
 */
std::string renderGantt(const SimResult &result, int cols = 100);

} // namespace moelight

#endif // MOELIGHT_SIM_SIMULATOR_HH
