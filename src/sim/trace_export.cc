#include "sim/trace_export.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace moelight {

namespace {

/** Escape the few JSON-hostile characters a task label could hold. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
    return out;
}

} // namespace

std::string
toChromeTrace(const SimResult &result, const std::string &processName)
{
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    // Thread name metadata per resource.
    for (std::size_t r = 0; r < kNumResources; ++r) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           << "\"tid\":" << r << ",\"args\":{\"name\":\""
           << resourceName(static_cast<ResourceKind>(r)) << "\"}}";
    }
    for (const auto &e : result.trace) {
        os << ",{\"name\":\"" << jsonEscape(e.label)
           << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
           << static_cast<int>(e.resource)
           // Chrome trace timestamps are microseconds.
           << ",\"ts\":" << static_cast<double>(e.start) / 1e3
           << ",\"dur\":"
           << static_cast<double>(e.end - e.start) / 1e3 << "}";
    }
    os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
       << "\"process\":\"" << jsonEscape(processName) << "\"}}";
    return os.str();
}

void
writeChromeTrace(const SimResult &result, const std::string &path,
                 const std::string &processName)
{
    std::ofstream f(path);
    fatalIf(!f, "cannot open trace file '", path, "'");
    f << toChromeTrace(result, processName);
    fatalIf(!f.good(), "failed writing trace file '", path, "'");
}

} // namespace moelight
