/**
 * @file
 * Task graph consumed by the discrete-event simulator: each task runs
 * on one of the four pipeline resources of Fig. 6 (GPU compute, CPU
 * compute, HtoD link, DtoH link), has a fixed duration from the perf
 * model, explicit dependencies, and a priority that resolves resource
 * contention (e.g. hidden-state loads preempt queued weight pages —
 * the paging trick of §4.1).
 */

#ifndef MOELIGHT_SIM_TASK_GRAPH_HH
#define MOELIGHT_SIM_TASK_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace moelight {

/** The four contended resources of the decode pipeline. */
enum class ResourceKind : std::uint8_t
{
    Gpu = 0,
    Cpu = 1,
    HtoD = 2,
    DtoH = 3,
};

constexpr std::size_t kNumResources = 4;

/** Display name of a resource. */
std::string resourceName(ResourceKind r);

using TaskId = std::int32_t;

/** One node of the pipeline task DAG. */
struct SimTask
{
    ResourceKind resource = ResourceKind::Gpu;
    SimTime duration = 0;       ///< ns of exclusive resource use
    std::vector<TaskId> deps;   ///< must complete before this starts
    int priority = 0;           ///< lower value = scheduled first
    std::string label;          ///< e.g. "PostAttn(L3,U1)"
    int step = -1;              ///< decode step (for steady-state calc)
};

/** A whole DAG plus bookkeeping to build it incrementally. */
class TaskGraph
{
  public:
    /** Append a task; returns its id. Dependencies must already
     *  exist. */
    TaskId add(ResourceKind r, Seconds duration,
               std::vector<TaskId> deps, std::string label,
               int priority = 0, int step = -1);

    /** Add a zero-duration synchronization point. */
    TaskId barrier(std::vector<TaskId> deps, std::string label,
                   int step = -1);

    const std::vector<SimTask> &tasks() const { return tasks_; }
    std::size_t size() const { return tasks_.size(); }

  private:
    std::vector<SimTask> tasks_;
};

} // namespace moelight

#endif // MOELIGHT_SIM_TASK_GRAPH_HH
