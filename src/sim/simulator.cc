#include "sim/simulator.hh"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/logging.hh"

namespace moelight {

Seconds
SimResult::steadyStepTime(std::size_t tail) const
{
    panicIf(stepFinish.size() < tail + 1,
            "need at least ", tail + 1, " steps for steady state");
    std::size_t last = stepFinish.size() - 1;
    SimTime span = stepFinish[last] - stepFinish[last - tail];
    return toSeconds(span) / static_cast<double>(tail);
}

namespace {

/** Ready-queue ordering: lower priority value first, then FIFO. */
struct ReadyOrder
{
    bool
    operator()(const std::pair<int, TaskId> &a,
               const std::pair<int, TaskId> &b) const
    {
        if (a.first != b.first)
            return a.first > b.first;  // min-heap on priority
        return a.second > b.second;    // then FIFO by id
    }
};

} // namespace

SimResult
simulate(const TaskGraph &graph)
{
    const auto &tasks = graph.tasks();
    std::size_t n = tasks.size();
    SimResult res;
    if (n == 0)
        return res;

    std::vector<int> indeg(n, 0);
    std::vector<std::vector<TaskId>> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        indeg[i] = static_cast<int>(tasks[i].deps.size());
        for (TaskId d : tasks[i].deps)
            out[static_cast<std::size_t>(d)].push_back(
                static_cast<TaskId>(i));
    }

    using Ready = std::priority_queue<std::pair<int, TaskId>,
                                      std::vector<std::pair<int, TaskId>>,
                                      ReadyOrder>;
    std::array<Ready, kNumResources> ready;
    auto push_ready = [&](TaskId id) {
        const SimTask &t = tasks[static_cast<std::size_t>(id)];
        ready[static_cast<std::size_t>(t.resource)].push(
            {t.priority, id});
    };
    for (std::size_t i = 0; i < n; ++i)
        if (indeg[i] == 0)
            push_ready(static_cast<TaskId>(i));

    // (completion time, task id) min-heap of running tasks.
    using Running = std::pair<SimTime, TaskId>;
    std::priority_queue<Running, std::vector<Running>, std::greater<>>
        running;
    std::array<bool, kNumResources> busyNow{};
    SimTime now = 0;
    std::size_t done = 0;
    int max_step = -1;
    for (const auto &t : tasks)
        max_step = std::max(max_step, t.step);
    res.stepFinish.assign(static_cast<std::size_t>(max_step + 1), 0);

    auto dispatch = [&]() {
        for (std::size_t r = 0; r < kNumResources; ++r) {
            if (busyNow[r] || ready[r].empty())
                continue;
            TaskId id = ready[r].top().second;
            ready[r].pop();
            const SimTask &t = tasks[static_cast<std::size_t>(id)];
            SimTime end = now + t.duration;
            running.push({end, id});
            busyNow[r] = true;
            res.busy[r] += t.duration;
            if (t.duration > 0)
                res.trace.push_back({t.resource, now, end, t.label});
        }
    };

    dispatch();
    while (done < n) {
        panicIf(running.empty(),
                "simulator deadlock: dependency cycle or orphaned task");
        now = running.top().first;
        // Retire everything finishing at 'now'.
        while (!running.empty() && running.top().first == now) {
            TaskId id = running.top().second;
            running.pop();
            const SimTask &t = tasks[static_cast<std::size_t>(id)];
            busyNow[static_cast<std::size_t>(t.resource)] = false;
            ++done;
            if (t.step >= 0)
                res.stepFinish[static_cast<std::size_t>(t.step)] =
                    std::max(res.stepFinish[static_cast<std::size_t>(
                                 t.step)],
                             now);
            for (TaskId succ : out[static_cast<std::size_t>(id)])
                if (--indeg[static_cast<std::size_t>(succ)] == 0)
                    push_ready(succ);
        }
        dispatch();
    }

    res.makespan = now;
    for (std::size_t r = 0; r < kNumResources; ++r)
        res.utilization[r] =
            res.makespan > 0
                ? static_cast<double>(res.busy[r]) /
                      static_cast<double>(res.makespan)
                : 0.0;
    std::sort(res.trace.begin(), res.trace.end(),
              [](const TraceEntry &a, const TraceEntry &b) {
                  return a.start < b.start;
              });
    return res;
}

std::string
renderGantt(const SimResult &result, int cols)
{
    fatalIf(cols < 20, "gantt needs at least 20 columns");
    if (result.makespan == 0)
        return "(empty trace)\n";
    double scale = static_cast<double>(cols) /
                   static_cast<double>(result.makespan);

    std::array<std::string, kNumResources> rows;
    for (auto &row : rows)
        row.assign(static_cast<std::size_t>(cols), '.');

    for (const auto &e : result.trace) {
        int a = static_cast<int>(static_cast<double>(e.start) * scale);
        int b = static_cast<int>(static_cast<double>(e.end) * scale);
        a = std::clamp(a, 0, cols - 1);
        b = std::clamp(b, a + 1, cols);
        std::string &row = rows[static_cast<std::size_t>(e.resource)];
        char fill = e.label.empty() ? '#' : e.label[0];
        for (int x = a; x < b; ++x)
            row[static_cast<std::size_t>(x)] = fill;
    }

    std::ostringstream os;
    const char *names[kNumResources] = {"GPU ", "CPU ", "HtoD", "DtoH"};
    for (std::size_t r = 0; r < kNumResources; ++r)
        os << names[r] << " |" << rows[r] << "|\n";
    return os.str();
}

} // namespace moelight
