/**
 * @file
 * Export a simulation trace to the Chrome tracing JSON format
 * (chrome://tracing, Perfetto). Each resource becomes a "thread";
 * each executed interval a complete ('X') event — giving the real
 * Fig. 6 visualization instead of the ASCII approximation.
 */

#ifndef MOELIGHT_SIM_TRACE_EXPORT_HH
#define MOELIGHT_SIM_TRACE_EXPORT_HH

#include <string>

#include "sim/simulator.hh"

namespace moelight {

/** Render @p result as a Chrome-trace JSON string. */
std::string toChromeTrace(const SimResult &result,
                          const std::string &processName = "moe-lightning");

/** Write the Chrome trace to @p path (throws FatalError on I/O
 *  failure). */
void writeChromeTrace(const SimResult &result, const std::string &path,
                      const std::string &processName = "moe-lightning");

} // namespace moelight

#endif // MOELIGHT_SIM_TRACE_EXPORT_HH
