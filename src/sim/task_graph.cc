#include "sim/task_graph.hh"

#include "common/logging.hh"

namespace moelight {

std::string
resourceName(ResourceKind r)
{
    switch (r) {
      case ResourceKind::Gpu:
        return "GPU";
      case ResourceKind::Cpu:
        return "CPU";
      case ResourceKind::HtoD:
        return "HtoD";
      case ResourceKind::DtoH:
        return "DtoH";
    }
    return "?";
}

TaskId
TaskGraph::add(ResourceKind r, Seconds duration, std::vector<TaskId> deps,
               std::string label, int priority, int step)
{
    fatalIf(duration < 0.0, "task '", label, "' has negative duration");
    TaskId id = static_cast<TaskId>(tasks_.size());
    for (TaskId d : deps)
        panicIf(d < 0 || d >= id, "task '", label,
                "' depends on unknown task ", d);
    SimTask t;
    t.resource = r;
    t.duration = toSimTime(duration);
    t.deps = std::move(deps);
    t.priority = priority;
    t.label = std::move(label);
    t.step = step;
    tasks_.push_back(std::move(t));
    return id;
}

TaskId
TaskGraph::barrier(std::vector<TaskId> deps, std::string label, int step)
{
    return add(ResourceKind::Cpu, 0.0, std::move(deps), std::move(label),
               /*priority=*/-100, step);
}

} // namespace moelight
