/**
 * @file
 * Dense row-major float tensor used by the functional runtime and the
 * CPU kernels. Compute is float32; narrower data types (f16 / int4)
 * exist only in the analytical cost model (see model/datatype.hh).
 */

#ifndef MOELIGHT_TENSOR_TENSOR_HH
#define MOELIGHT_TENSOR_TENSOR_HH

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/logging.hh"

namespace moelight {

/**
 * A row-major dense float tensor owning its storage. Supports up to
 * 4 dimensions which is all the runtime needs (e.g. [batch, heads,
 * seq, head_dim]). Cheap to move, deliberately not copyable implicitly
 * (use clone()) so accidental large copies are compile errors.
 */
class Tensor
{
  public:
    /** An empty (rank-0, zero-element) tensor. */
    Tensor() = default;

    /** Allocate a zero-initialized tensor with the given shape. */
    explicit Tensor(std::vector<std::size_t> shape);

    Tensor(Tensor &&) noexcept = default;
    Tensor &operator=(Tensor &&) noexcept = default;
    Tensor(const Tensor &) = delete;
    Tensor &operator=(const Tensor &) = delete;

    /** Deep copy. */
    Tensor clone() const;

    /** Total number of elements. */
    std::size_t numel() const { return data_.size(); }
    /** Number of dimensions. */
    std::size_t rank() const { return shape_.size(); }
    /** Size of dimension @p d. */
    std::size_t dim(std::size_t d) const;
    /** Full shape vector. */
    const std::vector<std::size_t> &shape() const { return shape_; }

    /** Raw storage access. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }
    std::span<float> flat() { return {data_.data(), data_.size()}; }
    std::span<const float>
    flat() const
    {
        return {data_.data(), data_.size()};
    }

    /** 1-D element access. */
    float &at(std::size_t i);
    float at(std::size_t i) const;
    /** 2-D element access (rank must be 2). */
    float &at(std::size_t i, std::size_t j);
    float at(std::size_t i, std::size_t j) const;
    /** 3-D element access (rank must be 3). */
    float &at(std::size_t i, std::size_t j, std::size_t k);
    float at(std::size_t i, std::size_t j, std::size_t k) const;

    /** Pointer to row @p i of a rank-2 tensor. */
    float *row(std::size_t i);
    const float *row(std::size_t i) const;

    /** Set every element to @p v. */
    void fill(float v);

    /** Reshape in place; the element count must be preserved. */
    void reshape(std::vector<std::size_t> shape);

    /**
     * Max absolute elementwise difference against @p other; shapes must
     * match. Used heavily by correctness tests.
     */
    float maxAbsDiff(const Tensor &other) const;

  private:
    std::vector<std::size_t> shape_;
    std::vector<float> data_;
};

/** Fill @p t with uniform values in [lo, hi) from @p rng. */
class Rng;
void fillUniform(Tensor &t, Rng &rng, float lo = -1.0f, float hi = 1.0f);

} // namespace moelight

#endif // MOELIGHT_TENSOR_TENSOR_HH
