#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>

#include "common/rng.hh"

namespace moelight {

namespace {

std::size_t
shapeNumel(const std::vector<std::size_t> &shape)
{
    std::size_t n = 1;
    for (auto d : shape)
        n *= d;
    return shape.empty() ? 0 : n;
}

} // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shapeNumel(shape_), 0.0f)
{
    fatalIf(shape_.empty(), "tensor shape must have at least one dim");
    fatalIf(shape_.size() > 4, "tensors support at most 4 dims");
    for (auto d : shape_)
        fatalIf(d == 0, "tensor dims must be non-zero");
}

Tensor
Tensor::clone() const
{
    Tensor t;
    t.shape_ = shape_;
    t.data_ = data_;
    return t;
}

std::size_t
Tensor::dim(std::size_t d) const
{
    panicIf(d >= shape_.size(), "dim index ", d, " out of rank ",
            shape_.size());
    return shape_[d];
}

float &
Tensor::at(std::size_t i)
{
    panicIf(i >= data_.size(), "flat index out of range");
    return data_[i];
}

float
Tensor::at(std::size_t i) const
{
    panicIf(i >= data_.size(), "flat index out of range");
    return data_[i];
}

float &
Tensor::at(std::size_t i, std::size_t j)
{
    panicIf(rank() != 2, "2-D access on rank-", rank(), " tensor");
    panicIf(i >= shape_[0] || j >= shape_[1], "2-D index out of range");
    return data_[i * shape_[1] + j];
}

float
Tensor::at(std::size_t i, std::size_t j) const
{
    return const_cast<Tensor *>(this)->at(i, j);
}

float &
Tensor::at(std::size_t i, std::size_t j, std::size_t k)
{
    panicIf(rank() != 3, "3-D access on rank-", rank(), " tensor");
    panicIf(i >= shape_[0] || j >= shape_[1] || k >= shape_[2],
            "3-D index out of range");
    return data_[(i * shape_[1] + j) * shape_[2] + k];
}

float
Tensor::at(std::size_t i, std::size_t j, std::size_t k) const
{
    return const_cast<Tensor *>(this)->at(i, j, k);
}

float *
Tensor::row(std::size_t i)
{
    panicIf(rank() != 2, "row() on rank-", rank(), " tensor");
    panicIf(i >= shape_[0], "row index out of range");
    return data_.data() + i * shape_[1];
}

const float *
Tensor::row(std::size_t i) const
{
    return const_cast<Tensor *>(this)->row(i);
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
Tensor::reshape(std::vector<std::size_t> shape)
{
    fatalIf(shapeNumel(shape) != data_.size(),
            "reshape must preserve element count");
    shape_ = std::move(shape);
}

float
Tensor::maxAbsDiff(const Tensor &other) const
{
    panicIf(shape_ != other.shape_, "maxAbsDiff shape mismatch");
    float m = 0.0f;
    for (std::size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::abs(data_[i] - other.data_[i]));
    return m;
}

void
fillUniform(Tensor &t, Rng &rng, float lo, float hi)
{
    for (auto &v : t.flat())
        v = static_cast<float>(rng.uniform(lo, hi));
}

} // namespace moelight
