/**
 * @file
 * Generalized N-level Hierarchical Roofline Model. The two-level Hrm
 * (hrm/hrm.hh) covers the paper's main setting; this extension
 * implements §3.2's general formulation for an arbitrary chain of
 * (processor, memory) levels connected by cross-level links — e.g.
 * GPU / CPU / Disk, the disk tier the paper defers to future work
 * ("Disk and other hardware support", Appendix C).
 *
 * Level 0 is the fastest (GPU); higher indices are farther from the
 * compute (CPU DRAM, disk, ...). The paper's ordering assumption
 * (footnote 1) is enforced: peak compute and bandwidth are
 * non-increasing in the level index, and each cross link is no
 * faster than the slower endpoint's memory.
 */

#ifndef MOELIGHT_HRM_MULTI_LEVEL_HH
#define MOELIGHT_HRM_MULTI_LEVEL_HH

#include <string>
#include <vector>

#include "hrm/roofline.hh"

namespace moelight {

/** One (processor, memory) level of the hierarchy. */
struct HrmLevel
{
    std::string name;
    Flops peakFlops = 0.0;   ///< P^i_peak (0 = storage-only level)
    Bandwidth peakBw = 0.0;  ///< B^i_peak
};

/**
 * An N-level hierarchy with links between *adjacent* levels
 * (link[i] connects level i+1 -> level i). Data travelling multiple
 * levels is bottlenecked by the slowest link it crosses.
 */
class MultiLevelHrm
{
  public:
    /**
     * @param levels Fastest first; at least one.
     * @param links  links[i] = bandwidth from level i+1 to level i;
     *               size must be levels.size() - 1.
     */
    MultiLevelHrm(std::vector<HrmLevel> levels,
                  std::vector<Bandwidth> links);

    std::size_t numLevels() const { return levels_.size(); }
    const HrmLevel &level(std::size_t i) const;

    /** Effective bandwidth of the path from level @p j down to level
     *  @p i (min over the traversed links); j must be >= i.
     *  pathBandwidth(i, i) is level i's own memory bandwidth. */
    Bandwidth pathBandwidth(std::size_t i, std::size_t j) const;

    /**
     * Eq. 7 generalized: attainable performance of a computation
     * executed on level @p exec whose data resides on level @p data,
     * with operational intensities @p iExec (vs the exec level's
     * memory) and @p iData (vs the data actually moved).
     */
    Flops attainable(std::size_t exec, std::size_t data, double iExec,
                     double iData) const;

    /**
     * Eq. 9 generalized: the cross-level intensity below which
     * computing at the data's own level @p data beats shipping the
     * data to @p exec. Returns +inf when the data level cannot
     * compute at all (pure storage, peakFlops == 0).
     */
    double turningPointP1(std::size_t exec, std::size_t data) const;

    /** Eq. 10 generalized: cross-level intensity where the transfer
     *  roof meets the exec level's kernel roof at @p iExec. */
    double turningPointP2(std::size_t exec, std::size_t data,
                          double iExec) const;

    /**
     * Best placement: among levels [0, data] that can compute,
     * return the one with the highest attainable performance for a
     * kernel with per-level intensity @p iExec and cross-level
     * intensity @p iData. Ties go to the level closest to the data.
     */
    std::size_t bestExecLevel(std::size_t data, double iExec,
                              double iData) const;

  private:
    std::vector<HrmLevel> levels_;
    std::vector<Bandwidth> links_;
};

/** GPU / CPU / NVMe-disk hierarchy built from a HardwareConfig plus
 *  a disk tier (paper Appendix C). */
struct HardwareConfig;
MultiLevelHrm withDiskTier(const HardwareConfig &hw,
                           Bandwidth diskReadBw);

} // namespace moelight

#endif // MOELIGHT_HRM_MULTI_LEVEL_HH
