/**
 * @file
 * Classic Roofline Model (Williams et al., CACM'09) primitives: a
 * (peak compute, peak bandwidth) pair, the attainable-performance
 * function P = min(Ppeak, Bpeak * I), and the critical intensity at
 * the ridge point (paper Eq. 3).
 */

#ifndef MOELIGHT_HRM_ROOFLINE_HH
#define MOELIGHT_HRM_ROOFLINE_HH

#include "common/units.hh"

namespace moelight {

/** One compute device and the memory it directly accesses. */
struct Roofline
{
    Flops peakFlops = 0.0;       ///< P_peak
    Bandwidth peakBw = 0.0;      ///< B_peak

    /** Attainable performance at operational intensity @p i (Eq. 1-2). */
    Flops
    attainable(double i) const
    {
        double mem = peakBw * i;
        return mem < peakFlops ? mem : peakFlops;
    }

    /** Ridge-point intensity Ī = P_peak / B_peak (Eq. 3). */
    double ridgeIntensity() const { return peakFlops / peakBw; }

    /** True when intensity @p i puts the kernel in the memory-bound
     *  region. */
    bool memoryBound(double i) const { return i < ridgeIntensity(); }
};

} // namespace moelight

#endif // MOELIGHT_HRM_ROOFLINE_HH
