#include "hrm/multi_level.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "hw/hardware.hh"

namespace moelight {

MultiLevelHrm::MultiLevelHrm(std::vector<HrmLevel> levels,
                             std::vector<Bandwidth> links)
    : levels_(std::move(levels)), links_(std::move(links))
{
    fatalIf(levels_.empty(), "HRM needs at least one level");
    fatalIf(links_.size() + 1 != levels_.size(),
            "need exactly one link per adjacent level pair");
    for (std::size_t i = 0; i + 1 < levels_.size(); ++i) {
        fatalIf(levels_[i].peakFlops < levels_[i + 1].peakFlops,
                "level ordering: compute must be non-increasing");
        fatalIf(levels_[i].peakBw < levels_[i + 1].peakBw,
                "level ordering: bandwidth must be non-increasing");
        fatalIf(links_[i] > levels_[i + 1].peakBw,
                "link ", i, " faster than the upper level's memory");
        fatalIf(links_[i] <= 0.0, "link bandwidth must be positive");
    }
    for (const auto &l : levels_)
        fatalIf(l.peakBw <= 0.0, "level '", l.name,
                "' needs memory bandwidth");
}

const HrmLevel &
MultiLevelHrm::level(std::size_t i) const
{
    panicIf(i >= levels_.size(), "level index out of range");
    return levels_[i];
}

Bandwidth
MultiLevelHrm::pathBandwidth(std::size_t i, std::size_t j) const
{
    panicIf(i > j || j >= levels_.size(), "bad path endpoints");
    if (i == j)
        return levels_[i].peakBw;
    Bandwidth bw = std::numeric_limits<Bandwidth>::max();
    for (std::size_t k = i; k < j; ++k)
        bw = std::min(bw, links_[k]);
    return bw;
}

Flops
MultiLevelHrm::attainable(std::size_t exec, std::size_t data,
                          double iExec, double iData) const
{
    panicIf(exec > data, "data must live at or above the exec level");
    const HrmLevel &e = level(exec);
    fatalIf(e.peakFlops <= 0.0, "level '", e.name, "' cannot compute");
    double perf = std::min(e.peakFlops, e.peakBw * iExec);
    if (exec != data)
        perf = std::min(perf, pathBandwidth(exec, data) * iData);
    return perf;
}

double
MultiLevelHrm::turningPointP1(std::size_t exec, std::size_t data) const
{
    panicIf(exec >= data, "P1 needs a strictly lower exec level");
    const HrmLevel &d = level(data);
    if (d.peakFlops <= 0.0)
        return 0.0;  // storage-only level: always worth shipping
    // Solve B_path * I == min(P_data, B_data * I); since
    // B_data >= B_path, the crossing is on the compute roof.
    return d.peakFlops / pathBandwidth(exec, data);
}

double
MultiLevelHrm::turningPointP2(std::size_t exec, std::size_t data,
                              double iExec) const
{
    panicIf(exec >= data, "P2 needs a strictly lower exec level");
    const HrmLevel &e = level(exec);
    double kernel = std::min(e.peakFlops, e.peakBw * iExec);
    return kernel / pathBandwidth(exec, data);
}

std::size_t
MultiLevelHrm::bestExecLevel(std::size_t data, double iExec,
                             double iData) const
{
    panicIf(data >= levels_.size(), "level index out of range");
    std::size_t best = data;
    double best_perf = -1.0;
    for (std::size_t e = 0; e <= data; ++e) {
        if (levels_[e].peakFlops <= 0.0)
            continue;
        double perf = attainable(e, data, iExec, iData);
        // Ties favour staying closer to the data (>= with later e).
        if (perf >= best_perf) {
            best_perf = perf;
            best = e;
        }
    }
    panicIf(best_perf < 0.0, "no level can compute");
    return best;
}

MultiLevelHrm
withDiskTier(const HardwareConfig &hw, Bandwidth diskReadBw)
{
    fatalIf(diskReadBw <= 0.0, "disk bandwidth must be positive");
    fatalIf(diskReadBw > hw.effBc(),
            "disk faster than CPU DRAM violates the level ordering");
    std::vector<HrmLevel> levels{
        {"gpu", hw.effPg(), hw.effBg()},
        {"cpu", hw.effPc(), hw.effBc()},
        {"disk", 0.0, diskReadBw},
    };
    std::vector<Bandwidth> links{hw.effBcg(), diskReadBw};
    return MultiLevelHrm(std::move(levels), std::move(links));
}

} // namespace moelight
