#include "hrm/hrm.hh"

#include <cmath>

#include "common/logging.hh"

namespace moelight {

Hrm::Hrm(const HardwareConfig &hw)
    : gpu_{hw.effPg(), hw.effBg()},
      cpu_{hw.effPc(), hw.effBc()},
      link_(hw.effBcg())
{
    // The HRM assumes the level ordering of the paper's footnote:
    // level i (GPU) is at least as fast as level j (CPU), and the
    // cross-level link is the slowest path.
    fatalIf(link_ > cpu_.peakBw,
            "HRM requires link bandwidth <= CPU memory bandwidth");
}

Flops
Hrm::attainableOnGpuFromCpu(double iGpu, double iCpu) const
{
    double roof_link = link_ * iCpu;
    double roof_gpu = gpu_.attainable(iGpu);
    return roof_link < roof_gpu ? roof_link : roof_gpu;
}

Flops
Hrm::attainableOnCpu(double iCpu) const
{
    return cpu_.attainable(iCpu);
}

Flops
Hrm::attainableOnGpu(double iGpu) const
{
    return gpu_.attainable(iGpu);
}

double
Hrm::turningPointP1() const
{
    // Solve B_ji * I == min(P_j, B_j * I). Because B_j >= B_ji, the
    // memory-bound branch B_j*I > B_ji*I for all I > 0, so the
    // crossing sits on the CPU compute roof: I = P_j / B_ji.
    return cpu_.peakFlops / link_;
}

double
Hrm::turningPointP2(double iGpu) const
{
    return gpu_.attainable(iGpu) / link_;
}

double
Hrm::balancePointCpuIntensity(double iGpu) const
{
    return gpu_.peakBw * iGpu / link_;
}

bool
Hrm::betterOnCpu(double iCpu) const
{
    return attainableOnCpu(iCpu) >= link_ * iCpu;
}

std::vector<HrmSeries>
hrmRoofSeries(const Hrm &hrm, double iMin, double iMax, int points)
{
    fatalIf(iMin <= 0.0 || iMax <= iMin, "bad intensity range");
    fatalIf(points < 2, "need at least 2 sample points");

    std::vector<double> xs(points);
    double lmin = std::log10(iMin), lmax = std::log10(iMax);
    for (int p = 0; p < points; ++p) {
        double t = static_cast<double>(p) / (points - 1);
        xs[p] = std::pow(10.0, lmin + t * (lmax - lmin));
    }

    auto mk = [&](const std::string &label, auto f) {
        HrmSeries s;
        s.label = label;
        s.intensity = xs;
        s.gflops.reserve(xs.size());
        for (double x : xs)
            s.gflops.push_back(f(x) / GFLOP);
        return s;
    };

    std::vector<HrmSeries> out;
    out.push_back(mk("CPU Mem Bdw", [&](double i) {
        return hrm.cpu().peakBw * i;
    }));
    out.push_back(mk("GPU Mem Bdw", [&](double i) {
        return hrm.gpu().peakBw * i;
    }));
    out.push_back(mk("CPU-GPU Mem Bdw", [&](double i) {
        return hrm.linkBw() * i;
    }));
    out.push_back(mk("CPU Peak FLOPS", [&](double) {
        return hrm.cpu().peakFlops;
    }));
    out.push_back(mk("GPU Peak FLOPS", [&](double) {
        return hrm.gpu().peakFlops;
    }));
    return out;
}

} // namespace moelight
