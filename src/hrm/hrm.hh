/**
 * @file
 * Hierarchical Roofline Model (paper §3.2). Two memory levels are
 * enough for this project: level i = GPU (HBM + GPU cores) and level
 * j = CPU (DRAM + CPU cores), connected by the CPU->GPU link b_cg.
 * Implements Eq. 7 (attainable perf with cross-level fetch), the
 * turning points P1 (Eq. 9) and P2 (Eq. 10), and the balance point
 * (Eq. 11), plus series generation for reproducing Figs. 4 and 5.
 */

#ifndef MOELIGHT_HRM_HRM_HH
#define MOELIGHT_HRM_HRM_HH

#include <string>
#include <vector>

#include "hrm/roofline.hh"
#include "hw/hardware.hh"

namespace moelight {

/**
 * A two-level hierarchical roofline: GPU level (i), CPU level (j) and
 * the cross-level link. Uses *effective* rates from HardwareConfig so
 * the same numbers drive analysis and the perf model.
 */
class Hrm
{
  public:
    explicit Hrm(const HardwareConfig &hw);

    /** Roofline of the GPU level (HBM bandwidth, GPU peak). */
    const Roofline &gpu() const { return gpu_; }
    /** Roofline of the CPU level (DRAM bandwidth, CPU peak). */
    const Roofline &cpu() const { return cpu_; }
    /** CPU->GPU link bandwidth (B^{j,i}_peak). */
    Bandwidth linkBw() const { return link_; }

    /**
     * Attainable performance of a computation run on GPU whose data
     * lives on CPU (Eq. 7): min of GPU compute roof, GPU memory roof
     * at intensity @p iGpu, and link roof at intensity @p iCpu.
     */
    Flops attainableOnGpuFromCpu(double iGpu, double iCpu) const;

    /** Attainable performance executing at a level without cross
     *  traffic (Eq. 8). */
    Flops attainableOnCpu(double iCpu) const;
    Flops attainableOnGpu(double iGpu) const;

    /**
     * Turning point P1 (Eq. 9): the cross-level intensity Ī_j below
     * which moving the data to the GPU cannot beat computing on the
     * CPU. Solves B_ji * I = min(P_j, B_j * I).
     */
    double turningPointP1() const;

    /**
     * Turning point P2 (Eq. 10): cross-level intensity at which the
     * link roof meets the GPU-side attainable performance for a GPU
     * kernel running at intensity @p iGpu.
     */
    double turningPointP2(double iGpu) const;

    /**
     * Balance point (Eq. 11): the CPU-side intensity I_j at which
     * B_i * iGpu == B_ji * I_j, i.e. the GPU memory roof and the link
     * roof meet. Increasing I_j beyond this cannot help.
     */
    double balancePointCpuIntensity(double iGpu) const;

    /**
     * True when, at cross-level intensity @p iCpu, executing on the
     * CPU yields at least the perf of shipping data to the GPU —
     * the "attention belongs on the CPU" test from §3.3.
     */
    bool betterOnCpu(double iCpu) const;

  private:
    Roofline gpu_;
    Roofline cpu_;
    Bandwidth link_;
};

/** A single line/series for an HRM plot (log-log). */
struct HrmSeries
{
    std::string label;
    std::vector<double> intensity;   ///< x values (FLOPs/byte)
    std::vector<double> gflops;      ///< y values (GFLOP/s)
};

/**
 * Generate the five roof series of an HRM plot (CPU mem roof, GPU mem
 * roof, link roof, CPU peak, GPU peak) over [iMin, iMax], @p points
 * samples, log-spaced. Reproduces the line layout of Figs. 4-5.
 */
std::vector<HrmSeries> hrmRoofSeries(const Hrm &hrm, double iMin,
                                     double iMax, int points = 64);

} // namespace moelight

#endif // MOELIGHT_HRM_HRM_HH
