#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/logging.hh"

namespace moelight {

/** One dispatch invocation's shared state. */
struct ThreadPool::Batch
{
    std::size_t n = 0;       ///< total indices
    std::size_t grain = 1;   ///< indices per chunk
    std::size_t nChunks = 0;
    const ChunkBody *body = nullptr;
    std::atomic<std::size_t> nextChunk{0};
    std::atomic<std::size_t> doneChunks{0};
    /** Pool workers currently between entering and leaving run().
     *  Incremented under the pool mutex while the batch is still
     *  published; the dispatcher must not destroy the batch until
     *  this drains, or a straggler that claimed no chunk would
     *  touch freed stack memory. */
    std::atomic<std::size_t> workersIn{0};
    Mutex mu;
    CondVar cv;
    std::exception_ptr error GUARDED_BY(mu);

    /** Claim and run chunks until exhausted. */
    void
    run(std::size_t worker)
    {
        for (;;) {
            std::size_t c = nextChunk.fetch_add(1);
            if (c >= nChunks)
                break;
            std::size_t begin = c * grain;
            std::size_t end = std::min(n, begin + grain);
            try {
                (*body)(begin, end, worker);
            } catch (...) {
                MutexLock lk(mu);
                if (!error)
                    error = std::current_exception();
            }
            if (doneChunks.fetch_add(1) + 1 == nChunks) {
                MutexLock lk(mu);
                cv.notifyAll();
            }
        }
    }
};

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        unsigned hc = std::thread::hardware_concurrency();
        threads = hc > 0 ? hc : 1;
    }
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lk(mu_);
        stopping_ = true;
    }
    cv_.notifyAll();
    for (auto &w : workers_)
        if (w.joinable())
            w.join();
}

void
ThreadPool::workerLoop(std::size_t slot)
{
    for (;;) {
        Batch *batch = nullptr;
        std::uint64_t gen = 0;
        {
            MutexLock lk(mu_);
            while (!stopping_ && current_ == nullptr)
                cv_.wait(lk);
            if (stopping_)
                return;
            batch = current_;
            gen = generation_;
            batch->workersIn.fetch_add(1);
        }
        batch->run(slot);
        {
            MutexLock lk(batch->mu);
            batch->workersIn.fetch_sub(1);
            batch->cv.notifyAll();
        }
        {
            // Wait for this batch to be retired before re-arming, so
            // a worker doesn't re-enter a finished batch. Compare
            // generations, not (possibly reused) addresses.
            MutexLock lk(mu_);
            while (!stopping_ && generation_ == gen)
                cv_.wait(lk);
            if (stopping_)
                return;
        }
    }
}

void
ThreadPool::parallelForChunked(std::size_t n, std::size_t grain,
                               const ChunkBody &body)
{
    if (n == 0)
        return;
    Batch batch;
    batch.n = n;
    batch.grain = std::max<std::size_t>(1, grain);
    batch.nChunks = (n + batch.grain - 1) / batch.grain;
    batch.body = &body;
    {
        MutexLock lk(mu_);
        panicIf(current_ != nullptr,
                "nested/concurrent pool dispatch is not supported");
        current_ = &batch;
        ++generation_;
    }
    cv_.notifyAll();
    batch.run(0);  // caller participates as slot 0
    // batch.run returning means every chunk has been *claimed*, so
    // unpublishing now strands no work — and no further worker can
    // enter the batch. Then wait for the claimed chunks to finish
    // AND for every worker that entered run() to leave it; a
    // straggler that entered but claimed nothing must be out before
    // the stack-allocated batch is destroyed.
    {
        MutexLock lk(mu_);
        current_ = nullptr;
        ++generation_;
    }
    cv_.notifyAll();
    std::exception_ptr error;
    {
        MutexLock lk(batch.mu);
        while (batch.doneChunks.load() < batch.nChunks ||
               batch.workersIn.load() != 0)
            batch.cv.wait(lk);
        error = batch.error;
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    parallelForChunked(
        n, 1, [&body](std::size_t begin, std::size_t end, std::size_t) {
            for (std::size_t i = begin; i < end; ++i)
                body(i);
        });
}

} // namespace moelight
