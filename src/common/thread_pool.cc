#include "common/thread_pool.hh"

#include <atomic>
#include <exception>

#include "common/logging.hh"

namespace moelight {

/** One parallelFor invocation's shared state. */
struct ThreadPool::Batch
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *body = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;

    /** Claim and run indices until exhausted. */
    void
    run()
    {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= n)
                break;
            try {
                (*body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(mu);
                if (!error)
                    error = std::current_exception();
            }
            if (done.fetch_add(1) + 1 == n) {
                std::lock_guard<std::mutex> lk(mu);
                cv.notify_all();
            }
        }
    }
};

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        unsigned hc = std::thread::hardware_concurrency();
        threads = hc > 0 ? hc : 1;
    }
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        if (w.joinable())
            w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Batch *batch = nullptr;
        std::uint64_t gen = 0;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [&] { return stopping_ || current_; });
            if (stopping_)
                return;
            batch = current_;
            gen = generation_;
        }
        batch->run();
        {
            // Wait for this batch to be retired before re-arming, so
            // a worker doesn't re-enter a finished batch. Compare
            // generations, not (possibly reused) addresses.
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [&] {
                return stopping_ || generation_ != gen;
            });
            if (stopping_)
                return;
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    Batch batch;
    batch.n = n;
    batch.body = &body;
    {
        std::lock_guard<std::mutex> lk(mu_);
        panicIf(current_ != nullptr,
                "nested/concurrent parallelFor is not supported");
        current_ = &batch;
        ++generation_;
    }
    cv_.notify_all();
    batch.run();  // caller participates
    {
        std::unique_lock<std::mutex> lk(batch.mu);
        batch.cv.wait(lk, [&] { return batch.done.load() >= n; });
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        current_ = nullptr;
        ++generation_;
    }
    cv_.notify_all();
    if (batch.error)
        std::rethrow_exception(batch.error);
}

} // namespace moelight
