/**
 * @file
 * Deterministic pseudo-random number helpers. Everything in the project
 * that needs randomness (synthetic weights, workload generation) goes
 * through Rng so experiments are reproducible bit-for-bit.
 */

#ifndef MOELIGHT_COMMON_RNG_HH
#define MOELIGHT_COMMON_RNG_HH

#include <cstdint>
#include <random>

namespace moelight {

/**
 * A seeded Mersenne-Twister wrapper with convenience draws. Not
 * thread-safe; give each thread / generator site its own instance.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed) : gen_(seed) {}

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo = 0.0, double hi = 1.0)
    {
        std::uniform_real_distribution<double> d(lo, hi);
        return d(gen_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> d(lo, hi);
        return d(gen_);
    }

    /** Normal draw with the given mean and stddev. */
    double
    normal(double mean = 0.0, double stddev = 1.0)
    {
        std::normal_distribution<double> d(mean, stddev);
        return d(gen_);
    }

    /** Log-normal draw parameterized by the *target* mean and sigma. */
    double
    logNormal(double mean, double sigma)
    {
        // Choose mu so that the distribution mean equals @p mean.
        double mu = std::log(mean) - 0.5 * sigma * sigma;
        std::lognormal_distribution<double> d(mu, sigma);
        return d(gen_);
    }

    std::mt19937_64 &engine() { return gen_; }

  private:
    std::mt19937_64 gen_;
};

} // namespace moelight

#endif // MOELIGHT_COMMON_RNG_HH
