/**
 * @file
 * The repo's ONLY synchronization primitives: thin wrappers over
 * std::mutex / std::condition_variable carrying Clang thread-safety
 * annotations, so the locking discipline of the concurrent runtime
 * (thread pool, stream executor, engine front-end, fault injector)
 * is a compile-time contract instead of a comment. Under Clang the
 * default build promotes -Wthread-safety to an error; under GCC every
 * macro below expands to nothing and the wrappers are zero-cost
 * pass-throughs, so behaviour is identical across compilers.
 *
 * Usage pattern (see docs/concurrency.md for the repo-wide model):
 *
 *   class Worker {
 *       Mutex mu_;
 *       CondVar cv_;
 *       bool stopping_ GUARDED_BY(mu_) = false;
 *
 *       void drain() REQUIRES(mu_);   // caller must hold mu_
 *
 *       void loop() {
 *           MutexLock lk(mu_);        // SCOPED_CAPABILITY guard
 *           while (!stopping_)        // predicate inline, not a
 *               cv_.wait(lk);         // lambda: the analysis cannot
 *       }                             // see into lambdas
 *   };
 *
 * scripts/lint_invariants.py enforces that no other file in src/
 * names std::mutex / std::condition_variable directly — every lock in
 * the tree goes through these types and therefore through the
 * analysis.
 */

#ifndef MOELIGHT_COMMON_SYNC_HH
#define MOELIGHT_COMMON_SYNC_HH

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/logging.hh"

// ------------------------------------------------------------------
// Clang thread-safety attribute macros (no-ops elsewhere). Names
// follow the canonical mock header from the Clang documentation.
// ------------------------------------------------------------------
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MOELIGHT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MOELIGHT_THREAD_ANNOTATION
#define MOELIGHT_THREAD_ANNOTATION(x)  // GCC / MSVC: compiled away
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define CAPABILITY(x) MOELIGHT_THREAD_ANNOTATION(capability(x))
/** Marks an RAII type that acquires in its ctor, releases in dtor. */
#define SCOPED_CAPABILITY MOELIGHT_THREAD_ANNOTATION(scoped_lockable)
/** Field may only be touched while holding the named capability. */
#define GUARDED_BY(x) MOELIGHT_THREAD_ANNOTATION(guarded_by(x))
/** Pointee may only be touched while holding the named capability. */
#define PT_GUARDED_BY(x) MOELIGHT_THREAD_ANNOTATION(pt_guarded_by(x))
/** Function requires the capability to be held by the caller. */
#define REQUIRES(...) \
    MOELIGHT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/** Function acquires the capability (and did not hold it before). */
#define ACQUIRE(...) \
    MOELIGHT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/** Function releases the capability. */
#define RELEASE(...) \
    MOELIGHT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/** Function may be called only while NOT holding the capability. */
#define EXCLUDES(...) \
    MOELIGHT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/** Function returns a reference to the named capability. */
#define RETURN_CAPABILITY(x) \
    MOELIGHT_THREAD_ANNOTATION(lock_returned(x))
/** Escape hatch: disable analysis for one function (justify it). */
#define NO_THREAD_SAFETY_ANALYSIS \
    MOELIGHT_THREAD_ANNOTATION(no_thread_safety_analysis)
/** try_lock-style function: acquired only when returning @p b. */
#define TRY_ACQUIRE(...) \
    MOELIGHT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

namespace moelight {

/**
 * Annotated std::mutex. Lock it through MutexLock wherever possible;
 * the raw lock()/unlock() exist for the rare hand-over-hand or
 * split-scope pattern and are equally visible to the analysis.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class MutexLock;
    std::mutex mu_;
};

/**
 * SCOPED_CAPABILITY lock guard over a Mutex — the std::unique_lock
 * analogue the annotated CondVar waits on. Non-movable: a lock that
 * changes hands mid-scope is exactly what the analysis exists to
 * forbid.
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ACQUIRE(mu) : lk_(mu.mu_) {}
    ~MutexLock() RELEASE() {}  // the unique_lock member unlocks

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lk_;
};

/**
 * Condition variable bound to Mutex/MutexLock. Deliberately exposes
 * only the single-shot wait: predicate loops are written inline at
 * the call site (`while (!cond) cv.wait(lk);`) so the guarded reads
 * in the predicate sit in the annotated caller, where the analysis
 * can see the held capability — a predicate lambda would be analyzed
 * as a separate, lock-less function and rejected.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p lk, sleep, re-acquire. Spurious wakeups
     *  happen; always wait in a predicate loop. */
    void wait(MutexLock &lk) { cv_.wait(lk.lk_); }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

/**
 * Debug-build detector for unsynchronized concurrent entry into a
 * single-threaded-by-contract class (ContinuousBatcher, PrefixCache,
 * PageTable). Those classes ARE used from several threads — executor
 * queue workers and the driver thread take turns — but never
 * concurrently: every access is serialized by pipeline events or the
 * engine's front-end mutex. A plain thread-of-ownership assert would
 * reject that legal hand-off, so the gate checks the actual
 * invariant: at most one thread inside a mutating section at a time.
 * Same-thread reentry is allowed — PageTable::appendToken's reclaim
 * hook evicts (and unpins) from inside the append. A couple of
 * atomic ops per guarded call in debug builds, fully compiled away
 * in release (NDEBUG).
 */
class DebugSerialGate
{
  public:
#ifndef NDEBUG
    class Scope
    {
      public:
        explicit Scope(DebugSerialGate &g) : g_(g)
        {
            std::thread::id self = std::this_thread::get_id();
            std::thread::id open{};  // default id = gate unowned
            if (!g_.owner_.compare_exchange_strong(
                    open, self, std::memory_order_acquire))
                panicIf(open != self,
                        "concurrent entry into a single-threaded-by-"
                        "contract section: caller must serialize");
            ++g_.depth_;  // owner-only, no atomicity needed
        }
        ~Scope()
        {
            if (--g_.depth_ == 0)
                g_.owner_.store(std::thread::id{},
                                std::memory_order_release);
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        DebugSerialGate &g_;
    };

  private:
    std::atomic<std::thread::id> owner_{};
    int depth_ = 0;
#else
    class Scope
    {
      public:
        explicit Scope(DebugSerialGate &) {}
    };
#endif
};

/** Guard a mutating method body of a single-threaded-by-contract
 *  class: `MOELIGHT_ASSERT_SERIAL(gate_);` as its first statement. */
#ifndef NDEBUG
#define MOELIGHT_ASSERT_SERIAL(gate) \
    ::moelight::DebugSerialGate::Scope moelight_serial_scope_(gate)
#else
#define MOELIGHT_ASSERT_SERIAL(gate) \
    do {                             \
    } while (false)
#endif

} // namespace moelight

#endif // MOELIGHT_COMMON_SYNC_HH
