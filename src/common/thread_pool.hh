/**
 * @file
 * Minimal fixed-size thread pool with a blocking parallelFor. The
 * paper's CPU GQA kernel runs across the host's 24 cores; the
 * runtime uses this pool to parallelize attention across the tokens
 * of a micro-batch.
 */

#ifndef MOELIGHT_COMMON_THREAD_POOL_HH
#define MOELIGHT_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace moelight {

/**
 * Fixed worker pool. parallelFor blocks until every index has been
 * processed; exceptions from the body propagate to the caller (first
 * one wins).
 */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 = hardware concurrency. */
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t numThreads() const { return workers_.size(); }

    /**
     * Run @p body(i) for i in [0, n), distributing indices across
     * the pool (the calling thread participates). Blocks until all
     * complete.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

  private:
    struct Batch;
    void workerLoop();

    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
    Batch *current_ = nullptr;
    std::uint64_t generation_ = 0;  ///< bumps when current_ changes
    std::vector<std::thread> workers_;
};

} // namespace moelight

#endif // MOELIGHT_COMMON_THREAD_POOL_HH
