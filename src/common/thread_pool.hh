/**
 * @file
 * Minimal fixed-size thread pool with blocking parallel-for dispatch.
 * The paper's CPU GQA kernel runs across the host's 24 cores; the
 * runtime uses this pool to parallelize attention across the tokens
 * of a micro-batch and GEMMs across row blocks.
 *
 * Two dispatch shapes:
 *  - parallelFor(n, body): one index per claim. Fine when each index
 *    is heavy (a whole token's attention).
 *  - parallelForChunked(n, grain, body): workers claim contiguous
 *    [begin, end) ranges of up to `grain` indices with a single
 *    atomic RMW, and the body receives a stable worker slot index in
 *    [0, maxParallelism()) so callers can reuse per-worker scratch
 *    buffers instead of allocating per index (the chunked work-
 *    distribution idiom of rapidgzip's BlockMap).
 */

#ifndef MOELIGHT_COMMON_THREAD_POOL_HH
#define MOELIGHT_COMMON_THREAD_POOL_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <thread>
#include <vector>

#include "common/sync.hh"

namespace moelight {

/**
 * Fixed worker pool. Dispatch blocks until every index has been
 * processed; exceptions from the body propagate to the caller (first
 * one wins). Nested or concurrent dispatch is not supported.
 */
class ThreadPool
{
  public:
    /** Chunk body: [begin, end) plus the executing worker's slot. */
    using ChunkBody =
        std::function<void(std::size_t, std::size_t, std::size_t)>;

    /** @param threads Worker count; 0 = hardware concurrency. */
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t numThreads() const { return workers_.size(); }

    /** Distinct worker slots a dispatch can occupy: every pool
     *  worker plus the calling thread (slot 0). Size per-worker
     *  scratch arrays to this. */
    std::size_t maxParallelism() const { return workers_.size() + 1; }

    /**
     * Run @p body(i) for i in [0, n), distributing indices across
     * the pool (the calling thread participates). Blocks until all
     * complete.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Run @p body(begin, end, worker) over [0, n) split into chunks
     * of up to @p grain indices. Workers claim whole chunks (one
     * atomic RMW per chunk, not per index); `worker` is a stable
     * slot in [0, maxParallelism()) unique to the executing thread
     * for the duration of the call. grain == 0 is treated as 1.
     */
    void parallelForChunked(std::size_t n, std::size_t grain,
                            const ChunkBody &body);

    /**
     * Run @p body(begin, end, scratch) over [0, n) with a float
     * scratch buffer of @p perWorkerFloats per worker slot (the
     * shared shape of the batched attention and MoE FFN kernels).
     * A caller-owned @p scratch large enough for every slot
     * (maxParallelism() * perWorkerFloats, or perWorkerFloats when
     * running serially) is used directly — pass one on hot paths to
     * avoid a pool-width-sized allocation per dispatch; otherwise
     * one buffer is allocated for the whole call. Null pool or
     * n <= 1 runs the body serially with a single slot. Grain is
     * 1 — intended for heavy per-index work.
     */
    template <typename Body>
    static void
    forEachWithScratch(ThreadPool *pool, std::size_t n,
                       std::size_t perWorkerFloats, Body &&body,
                       std::span<float> scratch = {})
    {
        if (n == 0)
            return;
        bool pooled = pool && n > 1;
        std::size_t needed =
            (pooled ? pool->maxParallelism() : 1) * perWorkerFloats;
        std::vector<float> owned;
        float *buf = scratch.data();
        if (scratch.size() < needed) {
            owned.resize(needed);
            buf = owned.data();
        }
        if (pooled) {
            pool->parallelForChunked(
                n, 1,
                [&](std::size_t begin, std::size_t end,
                    std::size_t worker) {
                    body(begin, end, buf + worker * perWorkerFloats);
                });
        } else {
            body(0, n, buf);
        }
    }

  private:
    struct Batch;
    void workerLoop(std::size_t slot);

    Mutex mu_;
    CondVar cv_;
    bool stopping_ GUARDED_BY(mu_) = false;
    Batch *current_ GUARDED_BY(mu_) = nullptr;
    /** Bumps when current_ changes (publish and retire). */
    std::uint64_t generation_ GUARDED_BY(mu_) = 0;
    std::vector<std::thread> workers_;  ///< set once in the ctor
};

} // namespace moelight

#endif // MOELIGHT_COMMON_THREAD_POOL_HH
