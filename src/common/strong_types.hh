/**
 * @file
 * Strong index types: one phantom-tagged integer wrapper per index
 * domain, so the runtime's parallel index spaces — sequence slots,
 * layers, token positions, KV/Q heads, page-table blocks, arena
 * pages — stop being freely interchangeable `std::size_t`s. A
 * transposed (seq, layer) pair or a BlockId used as a PageId is a
 * compile error, not silent KV corruption at a distance.
 *
 * Zero-overhead by construction: every member is a constexpr inline
 * one-liner over the underlying integer, there is no .cc file, and
 * scripts/check_zero_overhead.py asserts (as a ctest entry) that a
 * StrongIndex loop compiles to the same instructions as the raw
 * integer loop it replaces.
 *
 * Conversion rules (enforced by tests/compile_fail/):
 *  - construction from a raw integer is explicit: `SeqId(3)` yes,
 *    `SeqId s = 3` no;
 *  - no implicit conversion back: `value()` is the only way out;
 *  - no cross-tag anything: comparing, assigning, adding or
 *    subtracting two different domains does not compile;
 *  - same-domain arithmetic is the pointer-like subset: index +/-
 *    raw offset = index, index - index = raw distance, ++/--.
 *
 * The checked narrowing helper `narrowIndex<>` covers the one place a
 * domain legitimately crosses width (a container size becoming a
 * uint32_t BlockId): it throws EngineError(IndexOverflow,
 * "index.narrow") instead of wrapping silently.
 *
 * Domain registry (owner, range, conversion points) lives in
 * docs/index_domains.md. Kernels are exempt by contract: they receive
 * raw pointers plus a validated ShapeContract, never strong indices
 * (see src/kernels/simd/README.md).
 */

#ifndef MOELIGHT_COMMON_STRONG_TYPES_HH
#define MOELIGHT_COMMON_STRONG_TYPES_HH

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <type_traits>
#include <utility>

#include "runtime/status.hh"

namespace moelight {

/**
 * A value of index domain @p Tag, stored as @p Rep. @p Tag is a
 * phantom type (never defined); two StrongIndex instantiations with
 * different tags share no conversions, so the type checker separates
 * the domains while codegen sees a bare integer.
 */
template <class Tag, class Rep = std::size_t>
class StrongIndex
{
    static_assert(std::is_integral_v<Rep>,
                  "StrongIndex storage must be an integer type");

  public:
    using rep_type = Rep;
    using tag_type = Tag;

    constexpr StrongIndex() = default;

    /** Explicit entry from a raw integer — the visible, greppable
     *  point where a value claims membership in this domain. Widths
     *  are cast silently here (construction is already explicit);
     *  use narrowIndex<>() where an overflow is a runtime
     *  possibility rather than a static impossibility. */
    template <std::integral T>
    constexpr explicit StrongIndex(T v) : v_(static_cast<Rep>(v))
    {
    }

    /** The only exit back to a raw integer. */
    constexpr Rep value() const { return v_; }

    /** Same-domain ordering and equality (cross-domain comparison
     *  does not compile: no implicit conversion feeds this). */
    constexpr auto operator<=>(const StrongIndex &) const = default;

    // Pointer-like same-domain arithmetic: index +/- raw offset.
    constexpr StrongIndex &operator++()
    {
        ++v_;
        return *this;
    }
    constexpr StrongIndex operator++(int)
    {
        StrongIndex old = *this;
        ++v_;
        return old;
    }
    constexpr StrongIndex &operator--()
    {
        --v_;
        return *this;
    }
    constexpr StrongIndex operator--(int)
    {
        StrongIndex old = *this;
        --v_;
        return old;
    }
    template <std::integral T>
    constexpr StrongIndex &operator+=(T d)
    {
        v_ = static_cast<Rep>(v_ + static_cast<Rep>(d));
        return *this;
    }
    template <std::integral T>
    constexpr StrongIndex &operator-=(T d)
    {
        v_ = static_cast<Rep>(v_ - static_cast<Rep>(d));
        return *this;
    }
    template <std::integral T>
    constexpr StrongIndex operator+(T d) const
    {
        return StrongIndex(static_cast<Rep>(v_ + static_cast<Rep>(d)));
    }
    template <std::integral T>
    constexpr StrongIndex operator-(T d) const
    {
        return StrongIndex(static_cast<Rep>(v_ - static_cast<Rep>(d)));
    }
    /** Distance between two indices of the same domain. */
    constexpr Rep operator-(StrongIndex o) const { return v_ - o.v_; }

    /** Formats as the bare number, so error messages and logs read
     *  exactly as they did with raw integers. */
    friend std::ostream &operator<<(std::ostream &os, StrongIndex i)
    {
        return os << +i.v_;  // promote: int8-width reps print numerically
    }

  private:
    Rep v_ = 0;
};

/**
 * Half-open range [first, last) of one index domain, so loops over a
 * domain bind the strong type directly:
 *
 *     for (LayerIdx l : IndexRange(LayerIdx(layers)))  // 0 .. layers-1
 *
 * Iterating one domain's range as another domain's index does not
 * compile (the iterator yields @p Index, nothing else).
 */
template <class Index>
class IndexRange
{
  public:
    class iterator
    {
      public:
        using value_type = Index;
        using difference_type = std::ptrdiff_t;

        constexpr iterator() = default;
        constexpr explicit iterator(Index i) : i_(i) {}
        constexpr Index operator*() const { return i_; }
        constexpr iterator &operator++()
        {
            ++i_;
            return *this;
        }
        constexpr iterator operator++(int)
        {
            iterator old = *this;
            ++i_;
            return old;
        }
        constexpr bool operator==(const iterator &) const = default;

      private:
        Index i_{};
    };

    constexpr IndexRange(Index first, Index last)
        : first_(first), last_(last)
    {
    }
    /** [Index(0), last). */
    constexpr explicit IndexRange(Index last) : first_(Index(0)), last_(last)
    {
    }

    constexpr iterator begin() const { return iterator(first_); }
    constexpr iterator end() const { return iterator(last_); }
    constexpr std::size_t size() const
    {
        return static_cast<std::size_t>(last_.value() - first_.value());
    }
    constexpr bool empty() const { return first_ == last_; }

  private:
    Index first_;
    Index last_;
};

/**
 * Checked narrowing into a strong index whose storage is narrower
 * than the source (the uint32_t BlockId fed from a container size):
 * throws EngineError(IndexOverflow, "index.narrow") when @p v does
 * not fit @p Index's representation, instead of wrapping silently
 * the way static_cast did.
 */
template <class Index, std::integral From>
constexpr Index
narrowIndex(From v)
{
    using Rep = typename Index::rep_type;
    if (!std::in_range<Rep>(v))
        throw EngineError(
            ErrorCode::IndexOverflow, "index.narrow",
            "index value " + std::to_string(v) +
                " does not fit the domain's " +
                std::to_string(sizeof(Rep) * 8) + "-bit storage");
    return Index(static_cast<Rep>(v));
}

// ------------------------------------------------------------------
// Concrete domains. BlockId (page-table block, uint32_t) and PageId
// (arena page, int32_t with a -1 sentinel) live with their owners in
// runtime/page_table.hh and runtime/arena.hh; the registry of all
// domains is docs/index_domains.md.

/** A sequence slot in the KV caches / page table (== the engine's
 *  SlotIdx by the identity mapping, converted at the cache boundary). */
using SeqId = StrongIndex<struct SeqIdTag>;
/** A transformer layer. */
using LayerIdx = StrongIndex<struct LayerIdxTag>;
/** A token position within one sequence's context. */
using TokenPos = StrongIndex<struct TokenPosTag>;
/** A KV (grouped) attention head. */
using KvHeadIdx = StrongIndex<struct KvHeadIdxTag>;
/** A query attention head. */
using QHeadIdx = StrongIndex<struct QHeadIdxTag>;
/** A serving-engine sequence slot (scheduling domain). */
using SlotIdx = StrongIndex<struct SlotIdxTag>;

} // namespace moelight

/** Hashing delegates to the raw representation, so strong indices
 *  drop into unordered containers as map keys unchanged. */
template <class Tag, class Rep>
struct std::hash<moelight::StrongIndex<Tag, Rep>>
{
    std::size_t operator()(moelight::StrongIndex<Tag, Rep> i) const
        noexcept
    {
        return std::hash<Rep>{}(i.value());
    }
};

#endif // MOELIGHT_COMMON_STRONG_TYPES_HH
