/**
 * @file
 * Minimal logging / fatal-error helpers in the spirit of gem5's
 * base/logging.hh: fatal() for user errors, panic() for internal bugs.
 */

#ifndef MOELIGHT_COMMON_LOGGING_HH
#define MOELIGHT_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace moelight {

/** Exception thrown for unrecoverable user-facing configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown for internal invariant violations (bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    appendAll(os, rest...);
}

} // namespace detail

/**
 * Raise a FatalError: the situation is the caller's fault (bad
 * configuration, infeasible policy request, ...), not a library bug.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    throw FatalError(os.str());
}

/**
 * Raise a PanicError: an internal invariant was violated. Should never
 * happen regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    throw PanicError(os.str());
}

/** Print a warning to stderr without stopping execution. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    std::fprintf(stderr, "warn: %s\n", os.str().c_str());
}

/** Fatal-if helper: condition is the *error* condition. */
template <typename... Args>
void
fatalIf(bool cond, const Args &...args)
{
    if (cond)
        fatal(args...);
}

/** Panic-if helper: condition is the *bug* condition. */
template <typename... Args>
void
panicIf(bool cond, const Args &...args)
{
    if (cond)
        panic(args...);
}

} // namespace moelight

#endif // MOELIGHT_COMMON_LOGGING_HH
