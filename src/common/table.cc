#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace moelight {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    fatalIf(headers_.empty(), "Table needs at least one column");
}

Table &
Table::newRow()
{
    if (!rows_.empty()) {
        panicIf(rows_.back().size() != headers_.size(),
                "previous table row has ", rows_.back().size(),
                " cells, expected ", headers_.size());
    }
    rows_.emplace_back();
    return *this;
}

Table &
Table::add(const std::string &cell)
{
    panicIf(rows_.empty(), "Table::add before newRow");
    panicIf(rows_.back().size() >= headers_.size(),
            "too many cells in table row");
    rows_.back().push_back(cell);
    return *this;
}

Table &
Table::add(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return add(os.str());
}

Table &
Table::add(long long v)
{
    return add(std::to_string(v));
}

std::string
Table::toText() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << cell;
        }
        os << '\n';
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
Table::print(std::ostream &os, const std::string &title) const
{
    if (!title.empty())
        os << "== " << title << " ==\n";
    os << toText();
}

} // namespace moelight
