/**
 * @file
 * Unit helpers and strongly-suggestive aliases used across the project.
 *
 * All byte quantities are plain doubles in *bytes*; all rates are in
 * *bytes per second* or *FLOP/s*; all virtual times are in *seconds*
 * (double) on the analytical side and integer nanoseconds inside the
 * discrete-event simulator.
 */

#ifndef MOELIGHT_COMMON_UNITS_HH
#define MOELIGHT_COMMON_UNITS_HH

#include <cstdint>

namespace moelight {

/** Bytes per second. */
using Bandwidth = double;
/** Floating point operations per second. */
using Flops = double;
/** Seconds (analytical model time). */
using Seconds = double;
/** Integer nanoseconds (simulator virtual time). */
using SimTime = std::int64_t;

constexpr double KiB = 1024.0;
constexpr double MiB = 1024.0 * KiB;
constexpr double GiB = 1024.0 * MiB;

constexpr double KB = 1e3;
constexpr double MB = 1e6;
constexpr double GB = 1e9;

constexpr double GFLOP = 1e9;
constexpr double TFLOP = 1e12;

/** Convert seconds to simulator nanoseconds (round to nearest). */
constexpr SimTime
toSimTime(Seconds s)
{
    return static_cast<SimTime>(s * 1e9 + 0.5);
}

/** Convert simulator nanoseconds to seconds. */
constexpr Seconds
toSeconds(SimTime t)
{
    return static_cast<Seconds>(t) * 1e-9;
}

} // namespace moelight

#endif // MOELIGHT_COMMON_UNITS_HH
