/**
 * @file
 * Lightweight text table / CSV emitter used by the benchmark harnesses
 * to print paper-style tables and figure series.
 */

#ifndef MOELIGHT_COMMON_TABLE_HH
#define MOELIGHT_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace moelight {

/**
 * A simple column-aligned table. Cells are strings; numeric helpers
 * format with a fixed precision. Rendered either as an aligned text
 * table (for terminals) or CSV (for plotting).
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent add() calls fill it left to right. */
    Table &newRow();

    /** Append a string cell to the current row. */
    Table &add(const std::string &cell);
    /** Append a formatted double cell (fixed, @p precision digits). */
    Table &add(double v, int precision = 3);
    /** Append an integer cell. */
    Table &add(long long v);
    Table &add(int v) { return add(static_cast<long long>(v)); }
    Table &add(std::size_t v) { return add(static_cast<long long>(v)); }

    /** Number of data rows so far. */
    std::size_t numRows() const { return rows_.size(); }
    /** Number of columns (fixed at construction). */
    std::size_t numCols() const { return headers_.size(); }

    /** Render as an aligned ASCII table. */
    std::string toText() const;
    /** Render as CSV (no quoting of commas; cells must be comma-free). */
    std::string toCsv() const;

    /** Print the text rendering to @p os with an optional title. */
    void print(std::ostream &os, const std::string &title = "") const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace moelight

#endif // MOELIGHT_COMMON_TABLE_HH
