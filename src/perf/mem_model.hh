/**
 * @file
 * Memory footprint model: given (model, hardware, workload, policy),
 * compute peak GPU and CPU memory demand and test feasibility. This
 * is the constraint side of the §4.2 policy search.
 */

#ifndef MOELIGHT_PERF_MEM_MODEL_HH
#define MOELIGHT_PERF_MEM_MODEL_HH

#include "hw/hardware.hh"
#include "model/model_config.hh"
#include "policy/policy.hh"

namespace moelight {

/** Workload summary the analytical models need. */
struct WorkloadShape
{
    double avgPrompt = 0.0;  ///< s: average prompt length (tokens)
    double maxPrompt = 0.0;  ///< padded prompt length (tokens)
    double genLen = 0.0;     ///< n: generation length (tokens)

    /** Effective prompt length under padding or not. */
    double
    effPrompt(bool padded) const
    {
        return padded ? maxPrompt : avgPrompt;
    }
};

/** Byte-level breakdown of peak memory demand. */
struct MemoryFootprint
{
    double gpuStaticWeights = 0.0;  ///< r_w * model weights
    double gpuWeightBuffer = 0.0;   ///< double buffer for streamed part
    double gpuKv = 0.0;             ///< r_c * KV cache
    double gpuActDecode = 0.0;      ///< decode activations / scratch
    double gpuActPrefill = 0.0;     ///< prefill peak activations
    double cpuWeights = 0.0;        ///< (1-r_w) * model weights
    double cpuKv = 0.0;             ///< (1-r_c) * KV cache
    double cpuPinned = 0.0;         ///< pinned staging buffers
    double cpuAct = 0.0;            ///< host-side hidden/QKV buffers

    /** Peak GPU demand (decode and prefill phases both must fit). */
    double gpuPeak() const;
    /** Peak CPU demand. */
    double cpuPeak() const;
};

/**
 * Compute the footprint of @p pol for model @p m on hardware @p hw
 * running workload @p w (padded => prompts counted at maxPrompt).
 */
MemoryFootprint memoryFootprint(const ModelConfig &m,
                                const HardwareConfig &hw,
                                const WorkloadShape &w, const Policy &pol,
                                bool padded);

/** True when the footprint fits the hardware capacities. */
bool fits(const MemoryFootprint &f, const HardwareConfig &hw);

/**
 * Total KV cache bytes for @p n requests whose sequences reach
 * prompt+gen tokens.
 */
double kvCacheBytes(const ModelConfig &m, double prompt, double gen,
                    double n);

} // namespace moelight

#endif // MOELIGHT_PERF_MEM_MODEL_HH
