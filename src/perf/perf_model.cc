#include "perf/perf_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace moelight {

std::string
LayerTime::bottleneck() const
{
    double m = std::max({commHtoD, commDtoH, tCpu, tGpu});
    if (m == commHtoD)
        return "cpu-gpu-link";
    if (m == tCpu)
        return "cpu-compute";
    if (m == tGpu)
        return "gpu";
    return "gpu-cpu-link";
}

PerfModel::PerfModel(const ModelConfig &m, const HardwareConfig &hw,
                     const WorkloadShape &w, bool padded)
    : model_(m), hw_(hw), w_(w), padded_(padded)
{
    model_.validate();
    hw_.validate();
    fatalIf(w_.avgPrompt <= 0.0 || w_.genLen <= 0.0,
            "workload shape must have positive lengths");
    if (w_.maxPrompt <= 0.0)
        w_.maxPrompt = w_.avgPrompt;
}

double
PerfModel::decodeCtx() const
{
    return w_.effPrompt(padded_) + w_.genLen / 2.0;
}

Seconds
PerfModel::preAttnGpuTime(std::size_t mu) const
{
    OpCost c = preAttnDecodeCost(model_, mu);
    double hbm = c.weightBytes + c.actBytes;
    return std::max(c.flops / hw_.effPg(), hbm / hw_.effBg());
}

Seconds
PerfModel::postAttnGpuTime(std::size_t mu) const
{
    OpCost c = postAttnDecodeCost(model_, mu);
    double hbm = c.weightBytes + c.actBytes;
    return std::max(c.flops / hw_.effPg(), hbm / hw_.effBg());
}

Seconds
PerfModel::cpuAttnTime(std::size_t mu) const
{
    OpCost c = attnCoreDecodeCost(model_, mu, decodeCtx());
    return std::max(c.flops / hw_.effPc(),
                    (c.kvBytes + c.actBytes) / hw_.effBc());
}

Seconds
PerfModel::cpuAttnTimeNaive(std::size_t mu) const
{
    OpCost c = attnCoreDecodeCost(model_, mu, decodeCtx());
    double expand = static_cast<double>(model_.nq) /
                    static_cast<double>(model_.nkv) * 2.0;
    return std::max(c.flops / hw_.effPc(),
                    (c.kvBytes * expand + c.actBytes) / hw_.effBc());
}

Seconds
PerfModel::gpuAttnTime(std::size_t mu) const
{
    OpCost c = attnCoreDecodeCost(model_, mu, decodeCtx());
    return std::max(c.flops / hw_.effPg(),
                    (c.kvBytes + c.actBytes) / hw_.effBg());
}

Seconds
PerfModel::cpuFfnTime(std::size_t mu) const
{
    OpCost c = postAttnDecodeCost(model_, mu);
    return std::max(c.flops / hw_.effPc(),
                    (c.weightBytes + c.actBytes) / hw_.effBc());
}

Seconds
PerfModel::qkvOffloadTime(std::size_t mu) const
{
    return static_cast<double>(mu) * qkvBytesPerToken(model_) /
           hw_.effBcg();
}

Seconds
PerfModel::hiddenLoadTime(std::size_t mu) const
{
    return static_cast<double>(mu) * hiddenBytesPerToken(model_) /
           hw_.effBcg();
}

Seconds
PerfModel::weightStreamTime(const Policy &pol) const
{
    double streamed = pol.ffnOnGpu
        ? (1.0 - pol.weightsOnGpu) * model_.weightBytesPerLayer()
        : (1.0 - pol.weightsOnGpu) * model_.attnWeightBytesPerLayer();
    return streamed / hw_.effBcg();
}

Seconds
PerfModel::kvLoadTime(std::size_t mu, const Policy &pol) const
{
    if (!pol.attnOnGpu)
        return 0.0;
    double bytes = (1.0 - pol.kvOnGpu) * static_cast<double>(mu) *
                   decodeCtx() * model_.kvBytesPerTokenPerLayer();
    return bytes / hw_.effBcg();
}

LayerTime
PerfModel::layerDecode(const Policy &pol) const
{
    pol.validate();
    std::size_t mu = pol.microBatch;
    double n_ub = static_cast<double>(pol.numUbs());

    LayerTime t;
    t.commHtoD = weightStreamTime(pol) +
                 n_ub * kvLoadTime(mu, pol);
    if (!pol.attnOnGpu) {
        t.commHtoD += n_ub * hiddenLoadTime(mu);
        t.commDtoH += n_ub * qkvOffloadTime(mu);
    } else {
        // New KV token offload for the CPU-resident fraction.
        double bytes = (1.0 - pol.kvOnGpu) *
                       static_cast<double>(pol.batchSize) *
                       model_.kvBytesPerTokenPerLayer();
        t.commDtoH += bytes / hw_.effBcg();
    }

    t.tGpu = n_ub * (preAttnGpuTime(mu) +
                     (pol.ffnOnGpu ? postAttnGpuTime(mu) : 0.0) +
                     (pol.attnOnGpu ? gpuAttnTime(mu) : 0.0));
    t.tCpu = (pol.attnOnGpu ? 0.0 : n_ub * cpuAttnTime(mu)) +
             (pol.ffnOnGpu ? 0.0 : n_ub * cpuFfnTime(mu));

    t.bubble = 0.0;
    t.total = std::max({t.commHtoD, t.commDtoH, t.tCpu, t.tGpu});
    return t;
}

LayerTime
PerfModel::layerDecode(const Policy &pol, SystemKind sys) const
{
    LayerTime t = layerDecode(pol);
    std::size_t mu = pol.microBatch;
    double n_ub = static_cast<double>(pol.numUbs());

    switch (sys) {
      case SystemKind::MoeLightning:
      case SystemKind::MoeLightningPadded:
        // CGOPipe: near-perfect overlap, no extra bubble.
        break;
      case SystemKind::FastDecode: {
        // S2: CPU attention overlapped, but the *unpaged* weight block
        // delays the first hidden-HtoD of the next layer (Fig. 6 S2):
        // one micro-batch round of GPU work goes idle per layer.
        t.bubble = std::min(weightStreamTime(pol),
                            preAttnGpuTime(mu) + postAttnGpuTime(mu) +
                                cpuAttnTime(mu));
        t.total += t.bubble;
        break;
      }
      case SystemKind::FlexGenC: {
        // S3: CPU attention serialized with GPU compute per micro-
        // batch, and the unpaged weight block stalls the pipeline for
        // its full duration (Fig. 6 third row: GPU idles through the
        // weight transfer, then the per-micro-batch chain runs with
        // no CPU/GPU overlap).
        double serial =
            n_ub * (preAttnGpuTime(mu) + qkvOffloadTime(mu) +
                    cpuAttnTimeNaive(mu) + hiddenLoadTime(mu) +
                    (pol.ffnOnGpu ? postAttnGpuTime(mu)
                                  : cpuFfnTime(mu)));
        t.bubble = weightStreamTime(pol) + serial - t.total;
        t.total = weightStreamTime(pol) + serial;
        break;
      }
      case SystemKind::FlexGen: {
        // S4: GPU attention with prefetched KV; weights and KV share
        // the HtoD link, and the KV transfer for micro-batch j+1 must
        // finish before its attention: the link is the critical chain.
        // FlexGen overlaps compute and I/O well, so total is the max
        // of link time and GPU compute, with a one-micro-batch KV
        // fill bubble.
        t.bubble = kvLoadTime(mu, pol);
        t.total = std::max({t.commHtoD, t.commDtoH, t.tGpu}) + t.bubble;
        break;
      }
      case SystemKind::DeepSpeed: {
        // ZeRO-Inference: the full (unsharded) layer weights stream
        // for every layer with limited overlap with compute; KV lives
        // on GPU so mu == N. On multi-GPU the layer is replicated to
        // every device, so the aggregate link carries numGpus copies.
        double stream = model_.weightBytesPerLayer() *
                        static_cast<double>(hw_.numGpus) /
                        hw_.effBcg();
        t.commHtoD = stream;
        t.bubble = 0.5 * std::min(stream, t.tGpu);
        t.total = std::max(stream, t.tGpu) + t.bubble;
        break;
      }
    }
    return t;
}

Seconds
PerfModel::prefillTime(const Policy &pol) const
{
    double s = w_.effPrompt(padded_);
    double tokens = static_cast<double>(pol.batchSize) * s;
    OpCost c = layerPrefillCost(model_, tokens, s);
    Seconds compute =
        std::max(c.flops / hw_.effPg(),
                 (c.weightBytes + c.actBytes) / hw_.effBg());
    Seconds weights = weightStreamTime(pol);
    Seconds kv_off = c.kvBytes / hw_.effBcg();
    // Prefill is compute-bound and overlaps I/O (§4 footnote 7).
    Seconds per_layer = std::max({compute, weights, kv_off});
    return per_layer * static_cast<double>(model_.l);
}

double
PerfModel::generationThroughput(const Policy &pol, SystemKind sys) const
{
    LayerTime lt = layerDecode(pol, sys);
    Seconds step = lt.total * static_cast<double>(model_.l);
    Seconds decode = step * w_.genLen;
    Seconds total = prefillTime(pol) + decode;
    double tokens = static_cast<double>(pol.batchSize) * w_.genLen;
    return tokens / total;
}

bool
PerfModel::feasible(const Policy &pol) const
{
    return fits(footprint(pol), hw_);
}

MemoryFootprint
PerfModel::footprint(const Policy &pol) const
{
    return memoryFootprint(model_, hw_, w_, pol, padded_);
}

} // namespace moelight
