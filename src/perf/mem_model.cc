#include "perf/mem_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "model/op_cost.hh"

namespace moelight {

double
MemoryFootprint::gpuPeak() const
{
    double decode = gpuStaticWeights + gpuWeightBuffer + gpuKv +
                    gpuActDecode;
    double prefill = gpuStaticWeights + gpuWeightBuffer + gpuActPrefill;
    return std::max(decode, prefill);
}

double
MemoryFootprint::cpuPeak() const
{
    return cpuWeights + cpuKv + cpuPinned + cpuAct;
}

double
kvCacheBytes(const ModelConfig &m, double prompt, double gen, double n)
{
    return n * (prompt + gen) * m.kvBytesPerToken();
}

MemoryFootprint
memoryFootprint(const ModelConfig &m, const HardwareConfig &hw,
                const WorkloadShape &w, const Policy &pol, bool padded)
{
    pol.validate();
    (void)hw;
    MemoryFootprint f;
    double s = w.effPrompt(padded);
    double n = static_cast<double>(pol.batchSize);
    double mu = static_cast<double>(pol.microBatch);
    double wb = m.weightByte();
    double kv_total = kvCacheBytes(m, s, w.genLen, n);

    f.gpuStaticWeights = pol.weightsOnGpu * m.totalWeightBytes();
    // Double buffer sized for the streamed fraction of one layer
    // (Appendix A.1: 2 x sizeof(W_L)).
    f.gpuWeightBuffer =
        2.0 * (1.0 - pol.weightsOnGpu) * m.weightBytesPerLayer();
    f.gpuKv = pol.kvOnGpu * kv_total;

    // Decode working set: hidden + QKV for one micro-batch plus the
    // expert FFN intermediates (gate/up of width h2), with 20% slack
    // for fragmentation and kernel workspaces.
    double act_tok =
        (2.0 * m.h1 + 2.0 * m.h2) * wb + qkvBytesPerToken(m);
    f.gpuActDecode = 1.2 * mu * act_tok;
    if (pol.attnOnGpu) {
        // Working KV for the micro-batch being attended on GPU.
        double ctx = s + w.genLen;
        f.gpuActDecode += mu * ctx * m.kvBytesPerTokenPerLayer();
    }

    // Prefill peak: one micro-batch of requests, each s tokens, is
    // on-GPU at once; hidden + QKV + one layer of its KV before the
    // offload completes, plus FFN intermediates chunked at h2.
    double prefill_tokens = mu * s;
    f.gpuActPrefill =
        1.2 * prefill_tokens *
        ((2.0 * m.h1 + 2.0 * m.h2) * wb + qkvBytesPerToken(m) +
         m.kvBytesPerTokenPerLayer());

    f.cpuWeights = (1.0 - pol.weightsOnGpu) * m.totalWeightBytes();
    f.cpuKv = (1.0 - pol.kvOnGpu) * kv_total;
    // Pinned staging: double buffer of a layer's streamed weights plus
    // per-micro-batch activation staging.
    f.cpuPinned =
        2.0 * (1.0 - pol.weightsOnGpu) * m.weightBytesPerLayer() +
        2.0 * mu * (hiddenBytesPerToken(m) + qkvBytesPerToken(m));
    // Host buffers for all in-flight hidden states and QKV.
    f.cpuAct = n * (hiddenBytesPerToken(m) + qkvBytesPerToken(m));
    return f;
}

bool
fits(const MemoryFootprint &f, const HardwareConfig &hw)
{
    return f.gpuPeak() <= hw.gpuMem && f.cpuPeak() <= hw.cpuMem;
}

} // namespace moelight
