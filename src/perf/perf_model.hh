/**
 * @file
 * HRM-based performance model (paper §4.2). Estimates per-layer decode
 * latency T = max(comm_cpu_to_gpu, T_cpu, T_gpu) (Eq. 12), prefill
 * latency, end-to-end generation throughput, and the bottleneck
 * resource — for MoE-Lightning and for the baseline system families
 * (whose schedules overlap less, see sched/ for the event-level
 * versions).
 */

#ifndef MOELIGHT_PERF_PERF_MODEL_HH
#define MOELIGHT_PERF_PERF_MODEL_HH

#include <string>

#include "common/units.hh"
#include "hw/hardware.hh"
#include "model/model_config.hh"
#include "model/op_cost.hh"
#include "perf/mem_model.hh"
#include "policy/policy.hh"

namespace moelight {

/** Per-layer decode time, broken into the Eq. 12 components. */
struct LayerTime
{
    Seconds commHtoD = 0.0;  ///< CPU->GPU traffic (weights+hidden+KV)
    Seconds commDtoH = 0.0;  ///< GPU->CPU traffic (QKV / new KV)
    Seconds tCpu = 0.0;      ///< CPU compute (attention, opt. FFN)
    Seconds tGpu = 0.0;      ///< GPU compute (pre/post attn, opt. attn)
    Seconds bubble = 0.0;    ///< schedule-induced serialization
    Seconds total = 0.0;     ///< resulting per-layer latency

    /** Name of the component that set @c total. */
    std::string bottleneck() const;
};

/**
 * Analytical model for one (model, hardware, workload) triple.
 * All rates are the hardware's effective (profiled-peak) rates.
 */
class PerfModel
{
  public:
    PerfModel(const ModelConfig &m, const HardwareConfig &hw,
              const WorkloadShape &w, bool padded);

    /** Average decode context length s(+pad) + n/2. */
    double decodeCtx() const;

    /** Per-micro-batch primitive times (used by sched/ as durations). */
    Seconds preAttnGpuTime(std::size_t mu) const;
    Seconds postAttnGpuTime(std::size_t mu) const;
    Seconds cpuAttnTime(std::size_t mu) const;
    /**
     * CPU attention without a GQA-aware kernel (FlexGen(c)'s torch
     * path): K/V are materialized per *query* head at fp32, so the
     * memory traffic inflates by (nq/nkv) x 2 relative to the
     * paper's (and our) grouped kernel.
     */
    Seconds cpuAttnTimeNaive(std::size_t mu) const;
    Seconds gpuAttnTime(std::size_t mu) const;
    Seconds cpuFfnTime(std::size_t mu) const;
    /** Link transfer times. */
    Seconds qkvOffloadTime(std::size_t mu) const;
    Seconds hiddenLoadTime(std::size_t mu) const;
    Seconds weightStreamTime(const Policy &pol) const;
    Seconds kvLoadTime(std::size_t mu, const Policy &pol) const;

    /** Eq. 12 layer decode latency under a CGOPipe-quality overlap. */
    LayerTime layerDecode(const Policy &pol) const;
    /**
     * Layer decode latency for a baseline schedule: adds the bubbles
     * the Fig. 6 diagrams show (unpaged weight blocking, serialized
     * CPU attention, KV-prefetch link contention).
     */
    LayerTime layerDecode(const Policy &pol, SystemKind sys) const;

    /** Prefill latency for the whole batch (all layers). */
    Seconds prefillTime(const Policy &pol) const;

    /** End-to-end generation throughput in tokens/s (paper metric:
     *  generated tokens / (prefill + decode time)). */
    double generationThroughput(const Policy &pol, SystemKind sys) const;

    /** Memory feasibility of @p pol on this triple. */
    bool feasible(const Policy &pol) const;
    MemoryFootprint footprint(const Policy &pol) const;

    const ModelConfig &model() const { return model_; }
    const HardwareConfig &hardware() const { return hw_; }
    const WorkloadShape &workload() const { return w_; }
    bool padded() const { return padded_; }

  private:
    ModelConfig model_;
    HardwareConfig hw_;
    WorkloadShape w_;
    bool padded_;
};

} // namespace moelight

#endif // MOELIGHT_PERF_PERF_MODEL_HH
