#include "sched/schedules.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace moelight {

namespace {

/** Priorities on the HtoD link: activation traffic preempts queued
 *  weight pages (the §4.1 paging trick). */
constexpr int kPrioAct = 0;
constexpr int kPrioWeights = 1;

/** Common context shared by the per-system builders. */
struct Builder
{
    const PerfModel &pm;
    const Policy &pol;
    TaskGraph g;
    int steps;
    int layers;        ///< simulated layers per step
    int ubs;           ///< micro-batches
    int pages;         ///< weight pages per layer (paged schedules)
    double weightScale = 1.0;  ///< stream inflation (DS replication)

    // Per global-layer (step*layers + layer) task ids.
    std::vector<std::vector<TaskId>> pre, off, attn, loadh, post;
    std::vector<TaskId> wready;

    Builder(const PerfModel &pm_, const Policy &pol_,
            const ScheduleOptions &opt)
        : pm(pm_), pol(pol_)
    {
        pol.validate();
        steps = opt.decodeSteps;
        fatalIf(steps < 1, "need at least one decode step");
        layers = opt.layers > 0
            ? opt.layers
            : static_cast<int>(pm.model().l);
        ubs = static_cast<int>(pol.numUbs());
        pages = opt.pagesPerLayer > 0 ? opt.pagesPerLayer : ubs;
        int total = steps * layers;
        pre.assign(total, std::vector<TaskId>(ubs, -1));
        off = attn = loadh = post = pre;
        wready.assign(total, -1);
    }

    int totalLayers() const { return steps * layers; }

    std::string
    tag(const char *name, int k, int j) const
    {
        return std::string(name) + "(L" + std::to_string(k) + ",U" +
               std::to_string(j) + ")";
    }

    /**
     * Emit the weight stream for global layer @p k, split into
     * @p nchunks HtoD tasks. The first chunk waits for the double
     * buffer: the slot is reused from layer k-2, so all of layer
     * k-2's consumers must have retired.
     */
    void
    emitWeights(int k, int nchunks, int step)
    {
        Seconds wt = pm.weightStreamTime(pol) * weightScale;
        std::vector<TaskId> chunk_ids;
        std::vector<TaskId> first_deps;
        if (k >= 2 && post[k - 2][ubs - 1] >= 0)
            first_deps.push_back(post[k - 2][ubs - 1]);
        if (wt <= 0.0)
            nchunks = 1;
        for (int p = 0; p < nchunks; ++p) {
            std::vector<TaskId> deps =
                p == 0 ? first_deps
                       : std::vector<TaskId>{chunk_ids.back()};
            chunk_ids.push_back(g.add(
                ResourceKind::HtoD, wt / nchunks, std::move(deps),
                "W(L" + std::to_string(k) + ",p" + std::to_string(p) +
                    ")",
                kPrioWeights, step));
        }
        wready[k] = g.barrier(chunk_ids,
                              "Wready(L" + std::to_string(k) + ")",
                              step);
    }

    /** Dependencies of PreAttn(k, j): previous layer's output for
     *  this micro-batch plus this layer's weights. */
    std::vector<TaskId>
    preDeps(int k, int j) const
    {
        std::vector<TaskId> deps;
        if (k > 0 && post[k - 1][j] >= 0)
            deps.push_back(post[k - 1][j]);
        if (wready[k] >= 0)
            deps.push_back(wready[k]);
        return deps;
    }
};

/**
 * CGOPipe (Algorithm 1) and its unpaged variant S2: the dependency
 * structure is identical (CPU attention fully overlapped); they
 * differ only in weight paging. The lookahead is enforced naturally:
 * CPUAttn(k, j) has no dependency on GPU work of micro-batches > j,
 * so it runs as soon as its QKV offload lands — the DES interleaves
 * exactly like Fig. 6's first two rows.
 */
void
buildCpuAttnPipelined(Builder &b, bool paged)
{
    for (int k = 0; k < b.totalLayers(); ++k) {
        int step = k / b.layers;
        b.emitWeights(k, paged ? b.pages : 1, step);
        for (int j = 0; j < b.ubs; ++j) {
            std::size_t mu = b.pol.microBatch;
            b.pre[k][j] = b.g.add(ResourceKind::Gpu,
                                  b.pm.preAttnGpuTime(mu),
                                  b.preDeps(k, j), b.tag("A", k, j),
                                  0, step);
            b.off[k][j] = b.g.add(ResourceKind::DtoH,
                                  b.pm.qkvOffloadTime(mu),
                                  {b.pre[k][j]}, b.tag("Q", k, j),
                                  kPrioAct, step);
            b.attn[k][j] = b.g.add(ResourceKind::Cpu,
                                   b.pm.cpuAttnTime(mu),
                                   {b.off[k][j]}, b.tag("B", k, j),
                                   0, step);
            b.loadh[k][j] = b.g.add(ResourceKind::HtoD,
                                    b.pm.hiddenLoadTime(mu),
                                    {b.attn[k][j]}, b.tag("H", k, j),
                                    kPrioAct, step);
            std::vector<TaskId> post_deps{b.loadh[k][j]};
            if (b.wready[k] >= 0)
                post_deps.push_back(b.wready[k]);
            b.post[k][j] = b.g.add(ResourceKind::Gpu,
                                   b.pm.postAttnGpuTime(mu),
                                   std::move(post_deps),
                                   b.tag("C", k, j), 0, step);
        }
    }
}

/**
 * S3 / FlexGen(c): CPU attention with no pipelining — the GPU may run
 * at most the next micro-batch's pre-attention ahead, then stalls
 * until the CPU attention and the post-attention of the current
 * micro-batch complete (Fig. 6 third row).
 */
void
buildCpuAttnSerial(Builder &b)
{
    for (int k = 0; k < b.totalLayers(); ++k) {
        int step = k / b.layers;
        b.emitWeights(k, 1, step);
        for (int j = 0; j < b.ubs; ++j) {
            std::size_t mu = b.pol.microBatch;
            std::vector<TaskId> deps = b.preDeps(k, j);
            // No-lookahead constraint: PreAttn(k, j) may not start
            // before PostAttn(k, j-2) retired.
            if (j >= 2)
                deps.push_back(b.post[k][j - 2]);
            else if (j == 0 && k > 0)
                deps.push_back(b.post[k - 1][b.ubs - 1]);
            b.pre[k][j] = b.g.add(ResourceKind::Gpu,
                                  b.pm.preAttnGpuTime(mu),
                                  std::move(deps), b.tag("A", k, j),
                                  0, step);
            b.off[k][j] = b.g.add(ResourceKind::DtoH,
                                  b.pm.qkvOffloadTime(mu),
                                  {b.pre[k][j]}, b.tag("Q", k, j),
                                  kPrioAct, step);
            // FlexGen(c) lacks the GQA-aware CPU kernel, so its
            // attention reads inflate (see PerfModel docs).
            b.attn[k][j] = b.g.add(ResourceKind::Cpu,
                                   b.pm.cpuAttnTimeNaive(mu),
                                   {b.off[k][j]}, b.tag("B", k, j),
                                   0, step);
            b.loadh[k][j] = b.g.add(ResourceKind::HtoD,
                                    b.pm.hiddenLoadTime(mu),
                                    {b.attn[k][j]}, b.tag("H", k, j),
                                    kPrioAct, step);
            std::vector<TaskId> post_deps{b.loadh[k][j]};
            if (b.wready[k] >= 0)
                post_deps.push_back(b.wready[k]);
            b.post[k][j] = b.g.add(ResourceKind::Gpu,
                                   b.pm.postAttnGpuTime(mu),
                                   std::move(post_deps),
                                   b.tag("C", k, j), 0, step);
        }
    }
}

/**
 * S4 / FlexGen: attention on GPU; the KV cache for each micro-batch
 * streams over HtoD (prefetched one micro-batch ahead), contending
 * with the unpaged weight block. DeepSpeed reuses this builder with
 * KV resident on the GPU (no KV streaming).
 */
void
buildGpuAttn(Builder &b, bool streamKv)
{
    std::vector<std::vector<TaskId>> kvload(
        b.totalLayers(), std::vector<TaskId>(b.ubs, -1));
    for (int k = 0; k < b.totalLayers(); ++k) {
        int step = k / b.layers;
        b.emitWeights(k, 1, step);
        for (int j = 0; j < b.ubs; ++j) {
            std::size_t mu = b.pol.microBatch;
            if (streamKv) {
                // Prefetch: KV(k, j) needs the buffer freed by the
                // attention of micro-batch j-2 of the same layer.
                std::vector<TaskId> deps;
                if (j >= 2)
                    deps.push_back(b.attn[k][j - 2]);
                kvload[k][j] = b.g.add(ResourceKind::HtoD,
                                       b.pm.kvLoadTime(mu, b.pol),
                                       std::move(deps),
                                       b.tag("K", k, j), kPrioAct,
                                       step);
            }
            b.pre[k][j] = b.g.add(ResourceKind::Gpu,
                                  b.pm.preAttnGpuTime(mu),
                                  b.preDeps(k, j), b.tag("A", k, j),
                                  0, step);
            std::vector<TaskId> attn_deps{b.pre[k][j]};
            if (streamKv)
                attn_deps.push_back(kvload[k][j]);
            b.attn[k][j] = b.g.add(ResourceKind::Gpu,
                                   b.pm.gpuAttnTime(mu),
                                   std::move(attn_deps),
                                   b.tag("B", k, j), 0, step);
            // New token's KV goes back to host for the CPU-resident
            // fraction.
            double kv_off_bytes =
                (1.0 - b.pol.kvOnGpu) * static_cast<double>(mu) *
                b.pm.model().kvBytesPerTokenPerLayer();
            b.off[k][j] = b.g.add(
                ResourceKind::DtoH,
                kv_off_bytes / b.pm.hardware().effBcg(),
                {b.attn[k][j]}, b.tag("Q", k, j), kPrioAct, step);
            std::vector<TaskId> post_deps{b.attn[k][j]};
            if (b.wready[k] >= 0)
                post_deps.push_back(b.wready[k]);
            b.post[k][j] = b.g.add(ResourceKind::Gpu,
                                   b.pm.postAttnGpuTime(mu),
                                   std::move(post_deps),
                                   b.tag("C", k, j), 0, step);
        }
    }
}

} // namespace

TaskGraph
buildSchedule(SystemKind sys, const PerfModel &pm, const Policy &pol,
              const ScheduleOptions &opt)
{
    Builder b(pm, pol, opt);
    switch (sys) {
      case SystemKind::MoeLightning:
      case SystemKind::MoeLightningPadded:
        if (pol.attnOnGpu)
            buildGpuAttn(b, /*streamKv=*/pol.kvOnGpu < 1.0);
        else
            buildCpuAttnPipelined(b, /*paged=*/true);
        break;
      case SystemKind::FastDecode:
        buildCpuAttnPipelined(b, /*paged=*/false);
        break;
      case SystemKind::FlexGenC:
        buildCpuAttnSerial(b);
        break;
      case SystemKind::FlexGen:
        buildGpuAttn(b, /*streamKv=*/true);
        break;
      case SystemKind::DeepSpeed:
        // Layer replication to every GPU (see PerfModel::layerDecode).
        b.weightScale = static_cast<double>(pm.hardware().numGpus);
        buildGpuAttn(b, /*streamKv=*/false);
        break;
    }
    return std::move(b.g);
}

SimThroughput
simulateThroughput(SystemKind sys, const PerfModel &pm, const Policy &pol,
                   ScheduleOptions opt)
{
    if (opt.layers <= 0) {
        // Shrink the DAG: decode structure repeats per layer, so a
        // handful of layers captures the steady state.
        opt.layers = std::min<int>(static_cast<int>(pm.model().l), 6);
    }
    if (opt.decodeSteps < 3)
        opt.decodeSteps = 3;

    TaskGraph g = buildSchedule(sys, pm, pol, opt);
    SimThroughput out;
    out.sim = simulate(g);
    Seconds per_sim_step = out.sim.steadyStepTime();
    double scale = static_cast<double>(pm.model().l) /
                   static_cast<double>(opt.layers);
    out.decodeStep = per_sim_step * scale;
    out.prefill = pm.prefillTime(pol);
    double gen = pm.workload().genLen;
    double tokens = static_cast<double>(pol.batchSize) * gen;
    out.tokensPerSec =
        tokens / (out.prefill + gen * out.decodeStep);
    return out;
}

} // namespace moelight
