/**
 * @file
 * Schedule builders: translate (system, policy, perf model) into the
 * task DAGs of Fig. 6. Every builder emits the same logical work —
 * per (layer, micro-batch): pre-attention, attention, post-attention
 * plus the associated transfers — but with each system's ordering,
 * paging and overlap constraints:
 *
 *   CGOPipe      paged weights interleaved with activation loads,
 *                CPU attention launched two micro-batches ahead
 *                (Algorithm 1).
 *   S2           FastDecode*-style: CPU attention overlapped, weights
 *                transferred as one unpaged block.
 *   S3           FlexGen(c): CPU attention serializing the GPU,
 *                unpaged weights.
 *   S4           FlexGen: GPU attention with prefetched KV; KV and
 *                weight transfers contend on HtoD.
 *   DeepSpeed    layer-streamed weights, KV resident on GPU, single
 *                micro-batch.
 */

#ifndef MOELIGHT_SCHED_SCHEDULES_HH
#define MOELIGHT_SCHED_SCHEDULES_HH

#include "perf/perf_model.hh"
#include "policy/policy.hh"
#include "sim/simulator.hh"
#include "sim/task_graph.hh"

namespace moelight {

/** Options controlling DAG size (for fast simulation / Fig. 6). */
struct ScheduleOptions
{
    int decodeSteps = 4;   ///< decode iterations to simulate
    int layers = 0;        ///< 0 = model's full layer count
    /** Number of weight pages per layer; 0 = one page per micro-batch
     *  (the §4.1 rule "n pages where n equals the number of
     *  micro-batches"). Ignored by unpaged schedules. */
    int pagesPerLayer = 0;
    /** CPU-attention lookahead in micro-batches (Algorithm 1 uses 2). */
    int lookahead = 2;
};

/** Build the decode task DAG for @p sys. */
TaskGraph buildSchedule(SystemKind sys, const PerfModel &pm,
                        const Policy &pol,
                        const ScheduleOptions &opt = ScheduleOptions());

/** Throughput estimate produced by simulating a schedule. */
struct SimThroughput
{
    double tokensPerSec = 0.0;   ///< end-to-end generation throughput
    Seconds decodeStep = 0.0;    ///< steady-state time per decode step
    Seconds prefill = 0.0;       ///< modelled prefill time
    SimResult sim;               ///< raw simulation outputs
};

/**
 * Simulate @p sys under @p pol and combine with the modelled prefill
 * time into the paper's generation-throughput metric. When
 * @p opt.layers shrinks the DAG, the per-step time is scaled back to
 * the model's full depth (the per-layer structure is periodic).
 */
SimThroughput simulateThroughput(SystemKind sys, const PerfModel &pm,
                                 const Policy &pol,
                                 ScheduleOptions opt = ScheduleOptions());

} // namespace moelight

#endif // MOELIGHT_SCHED_SCHEDULES_HH
