/**
 * @file
 * Grouped-query decode attention over a *paged* KV cache. This is the
 * CPU attention kernel that MoE-Lightning runs host-side (the paper
 * implements the same kernel on top of Intel MKL); here it is a
 * portable C++ implementation with identical semantics.
 *
 * KV layout: the cache for one sequence is a list of pages; each page
 * stores up to pageTokens tokens, each token holding nKv heads of
 * headDim floats, i.e. page shape [pageTokens, nKv, headDim], row-major.
 */

#ifndef MOELIGHT_KERNELS_ATTENTION_HH
#define MOELIGHT_KERNELS_ATTENTION_HH

#include <cstddef>
#include <span>
#include <vector>

namespace moelight {

/** A read-only view over one sequence's paged K and V. */
struct KvView
{
    /** K pages, each pointing at [pageTokens, nKv, headDim] floats. */
    std::span<const float *const> kPages;
    /** V pages, same layout as kPages. */
    std::span<const float *const> vPages;
    /** Tokens per page (all pages, last may be partially filled). */
    std::size_t pageTokens = 0;
    /** Valid context length in tokens. */
    std::size_t contextLen = 0;
    /** Number of KV heads. */
    std::size_t nKv = 0;
    /** Per-head dimension. */
    std::size_t headDim = 0;

    /** Pointer to K for token @p t, head @p h. */
    const float *kAt(std::size_t t, std::size_t h) const;
    /** Pointer to V for token @p t, head @p h. */
    const float *vAt(std::size_t t, std::size_t h) const;
};

/**
 * Decode-stage GQA for one token of one sequence.
 *
 * @param q      Query vector, [nQ, headDim] row-major.
 * @param nQ     Number of query heads; must be a multiple of kv.nKv.
 * @param kv     Paged KV view with contextLen tokens.
 * @param out    Output, [nQ, headDim]; overwritten.
 * @param scale  Logit scale, normally 1/sqrt(headDim).
 * @param scratch Caller-provided scratch of at least kv.contextLen
 *                floats (score buffer), to avoid per-call allocation.
 */
void gqaDecodeAttention(const float *q, std::size_t nQ, const KvView &kv,
                        float *out, float scale, std::span<float> scratch);

/** Convenience overload that allocates its own scratch. */
void gqaDecodeAttention(const float *q, std::size_t nQ, const KvView &kv,
                        float *out, float scale);

class ThreadPool;

/**
 * Batched decode GQA across a micro-batch: token @p t uses query
 * qBatch + t*qStride, KV view kvs[t], and writes outBatch +
 * t*outStride. When @p pool is non-null, tokens are distributed
 * across the pool — the multi-core host attention of the paper's
 * MKL kernel. Results are identical with or without the pool.
 */
void gqaDecodeAttentionBatch(const float *qBatch, std::size_t qStride,
                             std::size_t nQ,
                             std::span<const KvView> kvs,
                             float *outBatch, std::size_t outStride,
                             float scale, ThreadPool *pool = nullptr);

/**
 * Full (non-paged) causal prefill attention for one sequence:
 * q,k,v are [seq, nHeads(*)*headDim]; q has nQ heads, k/v have nKv.
 * Output is [seq, nQ*headDim]. Used by the reference engine and the
 * prefill stage of the pipelined engine.
 */
void gqaPrefillAttention(const float *q, const float *k, const float *v,
                         std::size_t seq, std::size_t nQ, std::size_t nKv,
                         std::size_t headDim, float *out, float scale);

} // namespace moelight

#endif // MOELIGHT_KERNELS_ATTENTION_HH
