/**
 * @file
 * Grouped-query decode attention over a *paged* KV cache. This is the
 * CPU attention kernel that MoE-Lightning runs host-side (the paper
 * implements the same kernel on top of Intel MKL); here it is a
 * portable C++ implementation with identical semantics.
 *
 * KV layout: the cache for one sequence is a list of pages; each page
 * stores up to pageTokens tokens, each token holding nKv heads of
 * headDim floats, i.e. page shape [pageTokens, nKv, headDim], row-major.
 *
 * The kernel is organized per KV head: it walks each page run once,
 * hoisting the page base pointer, and scores all `group = nQ / nKv`
 * query heads of that KV head against each K row in a single pass, so
 * every K and V row is fetched once and reused group times. Bounds
 * checks run once per call, not per token.
 *
 * The score / softmax / V-fold arithmetic itself lives in the
 * row-provider-templated gqaAttentionHeadCore (attention_core.hh);
 * this kernel only supplies the float-page row provider. The
 * quantized kernels (quant.hh) supply dequantizing providers over the
 * same core, which is what makes their bit-identity to this kernel
 * structural.
 */

#ifndef MOELIGHT_KERNELS_ATTENTION_HH
#define MOELIGHT_KERNELS_ATTENTION_HH

#include <cstddef>
#include <span>
#include <vector>

namespace moelight {

/**
 * Kernel-boundary shape contract: the consistency conditions every
 * attention kernel needs, checked ONCE per call by validate() instead
 * of scattered ad-hoc asserts at each entry point. This is also where
 * the strong-index world ends — kernels receive raw pointers and raw
 * extents plus a validated contract, never strong indices (see
 * src/kernels/simd/README.md), so the hot loops stay plain integer
 * arithmetic.
 */
struct ShapeContract
{
    std::size_t nQ = 0;          ///< query heads
    std::size_t nKv = 0;         ///< KV heads; must divide nQ
    std::size_t headDim = 0;     ///< per-head dimension
    std::size_t contextLen = 0;  ///< tokens attended over
    /** True for kernels reading a paged KV view; enables the
     *  pageTokens / page-count checks below. */
    bool paged = false;
    std::size_t pageTokens = 0;  ///< tokens per page (paged only)
    /** Provided page counts (paged only). */
    std::size_t numKPages = 0;
    std::size_t numVPages = 0;
    /** Provided / required scratch floats (skipped when required
     *  is 0 — convenience overloads size their own). */
    std::size_t scratchFloats = 0;
    std::size_t scratchNeeded = 0;

    /** Query heads per KV head (valid after validate()). */
    std::size_t group() const { return nQ / nKv; }

    /** Panic (with @p kernel in the message) unless the shapes are
     *  consistent: nKv divides nQ, non-zero headDim and context, the
     *  pages cover the context, and the scratch suffices. */
    void validate(const char *kernel) const;
};

/** A read-only view over one sequence's paged K and V. */
struct KvView
{
    /** K pages, each pointing at [pageTokens, nKv, headDim] floats. */
    std::span<const float *const> kPages;
    /** V pages, same layout as kPages. */
    std::span<const float *const> vPages;
    /** Tokens per page (all pages, last may be partially filled). */
    std::size_t pageTokens = 0;
    /** Valid context length in tokens. */
    std::size_t contextLen = 0;
    /** Number of KV heads. */
    std::size_t nKv = 0;
    /** Per-head dimension. */
    std::size_t headDim = 0;

    /** Pointer to K for token @p t, head @p h. */
    const float *kAt(std::size_t t, std::size_t h) const;
    /** Pointer to V for token @p t, head @p h. */
    const float *vAt(std::size_t t, std::size_t h) const;
};

/**
 * Scratch floats gqaDecodeAttention needs: one score row per query
 * head of a KV-head group, i.e. (nQ / nKv) * contextLen.
 */
inline std::size_t
gqaAttnScratchFloats(std::size_t nQ, std::size_t nKv, std::size_t ctx)
{
    return nKv == 0 ? 0 : (nQ / nKv) * ctx;
}

/**
 * Decode-stage GQA for one token of one sequence.
 *
 * @param q      Query vector, [nQ, headDim] row-major.
 * @param nQ     Number of query heads; must be a multiple of kv.nKv.
 * @param kv     Paged KV view with contextLen tokens.
 * @param out    Output, [nQ, headDim]; overwritten.
 * @param scale  Logit scale, normally 1/sqrt(headDim).
 * @param scratch Caller-provided scratch of at least
 *                gqaAttnScratchFloats(nQ, kv.nKv, kv.contextLen)
 *                floats (score rows), to avoid per-call allocation.
 */
void gqaDecodeAttention(const float *q, std::size_t nQ, const KvView &kv,
                        float *out, float scale, std::span<float> scratch);

/** Convenience overload that allocates its own scratch. */
void gqaDecodeAttention(const float *q, std::size_t nQ, const KvView &kv,
                        float *out, float scale);

class ThreadPool;

/**
 * Batched decode GQA across a micro-batch: token @p t uses query
 * qBatch + t*qStride, KV view kvs[t], and writes outBatch +
 * t*outStride. When @p pool is non-null, tokens are distributed
 * across the pool — the multi-core host attention of the paper's
 * MKL kernel — with one scratch buffer per worker slot, sized to the
 * largest context in the batch. Results are identical with or
 * without the pool.
 *
 * @param scratch Optional caller-owned scratch covering every worker
 *        slot — gqaAttnScratchFloats(nQ, nKv, maxCtx) floats per
 *        slot, pool->maxParallelism() slots (1 without a pool). Hot
 *        paths should pass one; too-small or empty spans fall back
 *        to a per-call allocation.
 */
void gqaDecodeAttentionBatch(const float *qBatch, std::size_t qStride,
                             std::size_t nQ,
                             std::span<const KvView> kvs,
                             float *outBatch, std::size_t outStride,
                             float scale, ThreadPool *pool = nullptr,
                             std::span<float> scratch = {});

/**
 * Full (non-paged) causal prefill attention for one sequence:
 * q,k,v are [seqLen, nHeads(*)*headDim]; q has nQ heads, k/v have
 * nKv. Output is [seqLen, nQ*headDim]. Used by the reference engine
 * and the prefill stage of the pipelined engine. Each position runs
 * through the same group-fused core as the decode kernel, so position
 * i's output is bit-identical to a decode step over a context of i+1.
 */
void gqaPrefillAttention(const float *q, const float *k, const float *v,
                         std::size_t seqLen, std::size_t nQ,
                         std::size_t nKv, std::size_t headDim,
                         float *out, float scale);

} // namespace moelight

#endif // MOELIGHT_KERNELS_ATTENTION_HH
