#include "kernels/moe_ffn.hh"

#include <cstring>

#include "common/logging.hh"
#include "kernels/linalg.hh"
#include "kernels/ops.hh"

namespace moelight {

void
expertFfnForward(const float *x, const ExpertWeights &w, std::size_t h1,
                 std::size_t h2, float *out, std::span<float> scratch)
{
    panicIf(scratch.size() < expertFfnScratchSize(h2),
            "expert FFN scratch too small");
    float *gate = scratch.data();
    float *up = scratch.data() + h2;
    matmulTransposedB(x, w.w1, gate, 1, h1, h2);
    matmulTransposedB(x, w.w3, up, 1, h1, h2);
    swiglu(gate, up, gate, h2);
    matmulTransposedB(gate, w.w2, out, 1, h2, h1);
}

void
moeFfnForward(const float *x, std::span<const TokenRouting> routing,
              const ExpertResolver &resolve, std::size_t tokens,
              std::size_t h1, std::size_t h2, float *out)
{
    panicIf(routing.size() != tokens, "routing size != token count");
    std::vector<float> scratch(expertFfnScratchSize(h2));
    std::vector<float> expert_out(h1);
    std::memset(out, 0, tokens * h1 * sizeof(float));

    for (std::size_t t = 0; t < tokens; ++t) {
        const TokenRouting &r = routing[t];
        panicIf(r.experts.size() != r.weights.size(),
                "malformed routing entry");
        const float *xt = x + t * h1;
        float *ot = out + t * h1;
        for (std::size_t e = 0; e < r.experts.size(); ++e) {
            ExpertWeights w = resolve(r.experts[e]);
            panicIf(!w.w1 || !w.w2 || !w.w3,
                    "expert resolver returned null weights");
            expertFfnForward(xt, w, h1, h2, expert_out.data(), scratch);
            accumulateScaled(ot, expert_out.data(), r.weights[e], h1);
        }
    }
}

} // namespace moelight
