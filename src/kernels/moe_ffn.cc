#include "kernels/moe_ffn.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "kernels/linalg.hh"
#include "kernels/ops.hh"

namespace moelight {

void
expertFfnForward(const float *x, const ExpertWeights &w, std::size_t h1,
                 std::size_t h2, float *out, std::span<float> scratch)
{
    panicIf(scratch.size() < expertFfnScratchSize(h2),
            "expert FFN scratch too small");
    float *gate = scratch.data();
    float *up = scratch.data() + h2;
    matmulTransposedB(x, w.w1, gate, 1, h1, h2);
    matmulTransposedB(x, w.w3, up, 1, h1, h2);
    swiglu(gate, up, gate, h2);
    matmulTransposedB(gate, w.w2, out, 1, h2, h1);
}

void
moeFfnForward(const float *x, std::span<const TokenRouting> routing,
              const ExpertResolver &resolve, std::size_t tokens,
              std::size_t h1, std::size_t h2, float *out,
              ThreadPool *pool)
{
    panicIf(routing.size() != tokens, "routing size != token count");
    std::memset(out, 0, tokens * h1 * sizeof(float));

    // Per-worker scratch: FFN intermediate (2*h2) + expert output (h1).
    ThreadPool::forEachWithScratch(
        pool, tokens, expertFfnScratchSize(h2) + h1,
        [&](std::size_t begin, std::size_t end, float *buf) {
            std::span<float> scratch(buf, expertFfnScratchSize(h2));
            float *expert_out = buf + expertFfnScratchSize(h2);
            for (std::size_t t = begin; t < end; ++t) {
                const TokenRouting &r = routing[t];
                panicIf(r.experts.size() != r.weights.size(),
                        "malformed routing entry");
                const float *xt = x + t * h1;
                float *ot = out + t * h1;
                for (std::size_t e = 0; e < r.experts.size(); ++e) {
                    ExpertWeights w = resolve(r.experts[e]);
                    panicIf(!w.w1 || !w.w2 || !w.w3,
                            "expert resolver returned null weights");
                    expertFfnForward(xt, w, h1, h2, expert_out,
                                     scratch);
                    accumulateScaled(ot, expert_out, r.weights[e],
                                     h1);
                }
            }
        });
}

} // namespace moelight
