/**
 * @file
 * Group-wise symmetric quantization kernels (int8 and packed int4).
 * The paper's HRM case study (Fig. 4) analyzes int4 KV cache as the
 * lever that raises attention's operational intensity; this module
 * provides the actual kernels so the runtime can store KV quantized
 * and attend over it with on-the-fly dequantization.
 */

#ifndef MOELIGHT_KERNELS_QUANT_HH
#define MOELIGHT_KERNELS_QUANT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/attention.hh"

namespace moelight {

/** Quantization bit width. */
enum class QuantKind
{
    Int8,
    Int4,
};

/** Bytes needed to store @p n values at @p kind (excluding scales). */
std::size_t quantizedBytes(QuantKind kind, std::size_t n);

/**
 * A group-quantized buffer: values are split into groups of
 * @p groupSize, each group stored with one float scale such that
 * value = scale * q, q in [-127,127] (int8) or [-7,7] (int4,
 * packed two per byte, low nibble first).
 */
class QuantizedBuffer
{
  public:
    /** Quantize @p src (size must be a multiple of groupSize). */
    QuantizedBuffer(std::span<const float> src, QuantKind kind,
                    std::size_t groupSize = 32);

    /** Dequantize everything into @p dst (same size as the source). */
    void dequantize(std::span<float> dst) const;

    /** Dequantize elements [offset, offset+count) into @p dst.
     *  offset and count must be group-aligned. */
    void dequantizeRange(std::size_t offset, std::size_t count,
                         std::span<float> dst) const;

    std::size_t size() const { return n_; }
    QuantKind kind() const { return kind_; }
    std::size_t groupSize() const { return group_; }
    /** Stored bytes (payload + scales), for intensity accounting. */
    std::size_t storageBytes() const;

    /** Max absolute quantization error bound for inputs bounded by
     *  @p maxAbs: one quantization step. */
    static double errorBound(QuantKind kind, double maxAbs);

  private:
    QuantKind kind_;
    std::size_t n_;
    std::size_t group_;
    std::vector<std::uint8_t> data_;
    std::vector<float> scales_;
};

/**
 * Decode GQA attention over a *quantized* KV cache: K/V pages are
 * QuantizedBuffers (one per page, layout identical to KvView pages);
 * the kernel dequantizes page-by-page into @p scratch and reuses the
 * float path. Numerics: matches float attention within the
 * quantization error.
 *
 * @param q        [nQ, headDim] query.
 * @param nQ       query heads.
 * @param kPages   quantized K pages ([pageTokens, nKv, headDim] each).
 * @param vPages   quantized V pages.
 * @param pageTokens tokens per page.
 * @param contextLen valid tokens.
 * @param nKv      KV heads.
 * @param headDim  head dimension.
 * @param out      [nQ, headDim] output.
 * @param scale    logit scale.
 */
void gqaDecodeAttentionQuant(const float *q, std::size_t nQ,
                             std::span<const QuantizedBuffer> kPages,
                             std::span<const QuantizedBuffer> vPages,
                             std::size_t pageTokens,
                             std::size_t contextLen, std::size_t nKv,
                             std::size_t headDim, float *out,
                             float scale);

} // namespace moelight

#endif // MOELIGHT_KERNELS_QUANT_HH
