/**
 * @file
 * Group-wise symmetric quantization kernels (int8 and packed int4).
 * The paper's HRM case study (Fig. 4) analyzes int4 KV cache as the
 * lever that raises attention's operational intensity; this module
 * provides the actual kernels so the runtime can store KV quantized
 * and attend over it with on-the-fly dequantization.
 *
 * Three attention paths over quantized KV:
 *  - gqaDecodeAttentionQuantFused: dequantizes each K/V row into a
 *    headDim-sized stash inside the score / V-accumulation passes —
 *    memory traffic is the quantized footprint only, no per-call
 *    float page buffers. This is the production decode path.
 *  - gqaPrefillAttentionQuantFused: the causal prefill variant —
 *    dequantizes each closed page once per KV head into a persistent
 *    stash and scores/folds every causal position against it,
 *    instead of re-dequantizing the whole prefix at every position
 *    the way a per-token decode walk does.
 *  - gqaDecodeAttentionQuant: materializes every page into float and
 *    calls the float kernel. Retained as the golden cross-check (the
 *    role moelight::naive plays for the float kernels).
 *
 * All three are thin row providers over the shared
 * gqaAttentionHeadCore template (attention_core.hh) — the same
 * score / softmax / 4-blocked-V-fold code the float kernel runs — so
 * bit-identity between fused, materializing, per-token and prefill
 * paths is structural, not merely test-enforced.
 */

#ifndef MOELIGHT_KERNELS_QUANT_HH
#define MOELIGHT_KERNELS_QUANT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/attention.hh"

namespace moelight {

/** Quantization bit width. */
enum class QuantKind
{
    Int8,
    Int4,
};

/** Bytes needed to store @p n values at @p kind (excluding scales). */
std::size_t quantizedBytes(QuantKind kind, std::size_t n);

/**
 * A group-quantized buffer: values are split into groups of
 * @p groupSize, each group stored with one float scale such that
 * value = scale * q, q in [-127,127] (int8) or [-7,7] (int4,
 * packed two per byte, low nibble first).
 */
class QuantizedBuffer
{
  public:
    /** Quantize @p src (size must be a multiple of groupSize). */
    QuantizedBuffer(std::span<const float> src, QuantKind kind,
                    std::size_t groupSize = 32);

    /** Dequantize everything into @p dst (same size as the source). */
    void dequantize(std::span<float> dst) const;

    /** Dequantize elements [offset, offset+count) into @p dst.
     *  offset and count must be group-aligned. */
    void dequantizeRange(std::size_t offset, std::size_t count,
                         std::span<float> dst) const;

    /**
     * Strided row gather-dequantize: for r in [0, rows), dequantize
     * elements [rowOff + r*rowStride, +count) into dst + r*count —
     * one head's rows of a [tokens, nKv, headDim] page in a single
     * call. rowOff, rowStride and count must be group-aligned.
     * Element-wise identical to dequantizeRange over each row.
     */
    void dequantizeRows(std::size_t rowOff, std::size_t rowStride,
                        std::size_t rows, std::size_t count,
                        float *dst) const;

    std::size_t size() const { return n_; }
    QuantKind kind() const { return kind_; }
    std::size_t groupSize() const { return group_; }
    /** Stored bytes (payload + scales), for intensity accounting. */
    std::size_t storageBytes() const;

    /** Max absolute quantization error bound for inputs bounded by
     *  @p maxAbs: one quantization step. */
    static double errorBound(QuantKind kind, double maxAbs);

  private:
    QuantKind kind_;
    std::size_t n_;
    std::size_t group_;
    std::vector<std::uint8_t> data_;
    std::vector<float> scales_;
};

/**
 * A read-only view over one sequence's *quantized* paged K and V:
 * closed pages are QuantizedBuffers (layout [tokens, nKv, headDim],
 * one quant group never straddling a token-head row), every page full
 * except possibly the last, plus an optional trailing float "open"
 * page for tokens appended since the last page closed — exactly the
 * steady state QuantizedKvCache holds, referenced without copying.
 * Pages are referenced by pointer (like KvView's float pages) because
 * a sequence sharing a cached prefix holds scattered, not contiguous,
 * buffers.
 */
struct QuantKvView
{
    /** Closed quantized K pages; all hold pageTokens tokens except
     *  possibly the last (partial tail). */
    std::span<const QuantizedBuffer *const> kPages;
    /** Closed quantized V pages, same geometry as kPages. */
    std::span<const QuantizedBuffer *const> vPages;
    /** Optional float tail page, [openTokens, nKv, headDim]; null
     *  when openTokens == 0. */
    const float *openK = nullptr;
    const float *openV = nullptr;
    std::size_t openTokens = 0;
    /** Tokens per (full) page. */
    std::size_t pageTokens = 0;
    /** Valid context length: quantized tokens + openTokens. */
    std::size_t contextLen = 0;
    /** Number of KV heads. */
    std::size_t nKv = 0;
    /** Per-head dimension. */
    std::size_t headDim = 0;
};

/**
 * Scratch floats gqaDecodeAttentionQuantFused needs: the float
 * kernel's score rows plus two page-run dequant stashes (K and V,
 * one head's rows of one page each — L1-resident) and a 4-row carry
 * stash for V blocks straddling page boundaries.
 */
inline std::size_t
gqaQuantAttnScratchFloats(std::size_t nQ, std::size_t nKv,
                          std::size_t ctx, std::size_t headDim,
                          std::size_t pageTokens)
{
    if (nKv == 0)
        return 0;
    std::size_t stash_rows = pageTokens < ctx ? pageTokens : ctx;
    return (nQ / nKv) * ctx + (2 * stash_rows + 4) * headDim;
}

/**
 * Fused decode GQA over quantized KV: the current KV head's rows of
 * each page are gather-dequantized into an L1-resident page stash
 * inside the score and V-accumulation passes, so the only memory
 * traffic is the quantized payload (+ the float open page) — no
 * materialized float pages, no heap allocation when @p scratch is
 * provided. Requires every page's quant group size to divide headDim
 * (rows must be group-aligned; the KV cache quantizes with
 * group == headDim).
 *
 * Numerics: bit-identical to dequantizing all pages and running
 * gqaDecodeAttention (same dequantized values, same float core), and
 * therefore within QuantizedBuffer::errorBound of float attention.
 *
 * @param q       [nQ, headDim] query.
 * @param nQ      Query heads; must be a multiple of kv.nKv.
 * @param kv      Quantized paged KV view.
 * @param out     [nQ, headDim] output.
 * @param scale   Logit scale.
 * @param scratch >= gqaQuantAttnScratchFloats(nQ, kv.nKv,
 *                kv.contextLen, kv.headDim, kv.pageTokens) floats.
 */
void gqaDecodeAttentionQuantFused(const float *q, std::size_t nQ,
                                  const QuantKvView &kv, float *out,
                                  float scale,
                                  std::span<float> scratch);

/** Convenience overload that allocates its own scratch. */
void gqaDecodeAttentionQuantFused(const float *q, std::size_t nQ,
                                  const QuantKvView &kv, float *out,
                                  float scale);

/**
 * Batched fused quant decode GQA across a micro-batch: token @p t
 * uses query qBatch + t*qStride, view kvs[t], and writes outBatch +
 * t*outStride; tokens are distributed across @p pool with one
 * per-worker scratch slot (see gqaDecodeAttentionBatch). Results are
 * identical with or without the pool.
 */
void gqaDecodeAttentionQuantBatch(const float *qBatch,
                                  std::size_t qStride, std::size_t nQ,
                                  std::span<const QuantKvView> kvs,
                                  float *outBatch,
                                  std::size_t outStride, float scale,
                                  ThreadPool *pool = nullptr,
                                  std::span<float> scratch = {});

/**
 * Scratch floats gqaPrefillAttentionQuantFused needs: score rows for
 * the longest position (group * seqLen) plus whole-context K and V
 * dequant stashes covering every closed page — the pages a causal
 * append walk over seqLen tokens has closed, (seqLen / pageTokens) *
 * pageTokens rows each.
 */
inline std::size_t
gqaQuantPrefillAttnScratchFloats(std::size_t nQ, std::size_t nKv,
                                 std::size_t seqLen,
                                 std::size_t headDim,
                                 std::size_t pageTokens)
{
    if (nKv == 0 || pageTokens == 0)
        return 0;
    std::size_t quant_rows = (seqLen / pageTokens) * pageTokens;
    return (nQ / nKv) * seqLen + 2 * quant_rows * headDim;
}

/**
 * Fused causal prefill GQA over quantized KV: computes attention for
 * every position of a just-prefetched sequence in one call,
 * bit-identical to running gqaDecodeAttentionQuantFused once per
 * position over the growing cache (the per-token walk the pipelined
 * engine's prefill used to do) — but each closed page's rows are
 * gather-dequantized ONCE per KV head into a persistent stash
 * instead of once per later position, cutting the walk's
 * O(seqLen^2 / pageTokens) redundant dequant work to O(seqLen).
 *
 * Walk semantics: at position i the cache had closed exactly
 * floor((i+1)/pageTokens) pages; tokens from there to i were still
 * float in the open page. The kernel replays this: position i scores
 * the stash prefix of pageTokens*floor((i+1)/pageTokens) rows plus
 * rows [that, i] of the caller's float @p k / @p v — which hold the
 * same bits the cache's open page held at that time, since the cache
 * copied them from these very arrays.
 *
 * KV heads are independent (disjoint output columns, private
 * scratch), so with a non-null @p pool they fan across it — the
 * attention pool idles during prefill otherwise — with one scratch
 * slot per worker. Per-head arithmetic is untouched, so the pooled
 * kernel stays bit-identical to the serial one (and to the per-token
 * walk).
 *
 * @param q       [seqLen, nQ * headDim] queries, one row per position.
 * @param k,v     [seqLen, nKv * headDim] float K/V for the whole
 *                sequence (the projections the cache was fed).
 * @param seqLen  Sequence length; must equal kv.contextLen.
 * @param nQ      Query heads; must be a multiple of kv.nKv.
 * @param kv      Quantized view of the cache AFTER all seqLen
 *                appends: every closed page full (seqLen / pageTokens
 *                of them), the remaining seqLen % pageTokens tokens
 *                open. The open page is not read (the float tail
 *                comes from @p k / @p v).
 * @param out     [seqLen, nQ * headDim] output; overwritten.
 * @param scale   Logit scale.
 * @param scratch Optional caller-owned scratch:
 *                gqaQuantPrefillAttnScratchFloats(nQ, kv.nKv, seqLen,
 *                kv.headDim, kv.pageTokens) floats per worker slot
 *                (pool->maxParallelism() slots with a pool, 1
 *                without). Too-small spans fall back to a per-call
 *                allocation.
 * @param pool    Optional thread pool to fan KV heads across.
 */
void gqaPrefillAttentionQuantFused(const float *q, const float *k,
                                   const float *v, std::size_t seqLen,
                                   std::size_t nQ,
                                   const QuantKvView &kv, float *out,
                                   float scale,
                                   std::span<float> scratch,
                                   ThreadPool *pool = nullptr);

/** Convenience overload that allocates its own scratch. */
void gqaPrefillAttentionQuantFused(const float *q, const float *k,
                                   const float *v, std::size_t seqLen,
                                   std::size_t nQ,
                                   const QuantKvView &kv, float *out,
                                   float scale);

/**
 * The quantized view the cache held right after appending token
 * @p i of a causal walk whose final state is @p kv: the first
 * floor((i+1)/pageTokens) closed pages plus a float open tail of
 * rows [that, i] sliced from @p k / @p v (which hold the same bits
 * the cache's open page held at that time). This is the per-position
 * oracle gqaPrefillAttentionQuantFused replays; it is exposed so the
 * golden tests and the fig4 harness assert the walk against one
 * definition instead of each re-deriving it.
 */
QuantKvView quantPrefillWalkView(const QuantKvView &kv,
                                 const float *k, const float *v,
                                 std::size_t i);

/**
 * Materializing decode attention over quantized KV: dequantizes every
 * page into a temporary float buffer and calls the float kernel.
 * Golden cross-check for the fused path — bit-identical to it. Pages
 * must hold whole tokens and be full except possibly the last
 * (partial tail, the state a paged cache is in between page
 * boundaries).
 *
 * @param q        [nQ, headDim] query.
 * @param nQ       query heads.
 * @param kPages   quantized K pages ([tokens, nKv, headDim] each).
 * @param vPages   quantized V pages.
 * @param pageTokens tokens per full page.
 * @param contextLen valid tokens (<= tokens stored in the pages).
 * @param nKv      KV heads.
 * @param headDim  head dimension.
 * @param out      [nQ, headDim] output.
 * @param scale    logit scale.
 */
void gqaDecodeAttentionQuant(
    const float *q, std::size_t nQ,
    std::span<const QuantizedBuffer *const> kPages,
    std::span<const QuantizedBuffer *const> vPages,
    std::size_t pageTokens, std::size_t contextLen, std::size_t nKv,
    std::size_t headDim, float *out, float scale);

} // namespace moelight

#endif // MOELIGHT_KERNELS_QUANT_HH
