/**
 * @file
 * Row-provider-templated GQA attention core: the single
 * score / softmax / 4-blocked-V-fold implementation shared by every
 * attention kernel (float paged decode, fused quantized decode, and
 * fused quantized causal prefill). Before this header existed the
 * quantized kernel hand-mirrored the float kernel's ~60-line core and
 * the bit-identity between the two was only test-enforced
 * (test_quant_golden's EXPECT_EQ suite); with one core the guarantee
 * is structural — a provider can only change *where* K/V rows come
 * from, never the arithmetic or the summation order applied to them.
 *
 * ## Row-provider contract
 *
 * `gqaAttentionHeadCore` computes one KV head's attention for one
 * query position. K and V rows are supplied by two provider
 * callables, each invoked exactly once as `provider(emit)`. The
 * provider must call
 *
 *     emit(const float *rows, std::size_t rowStride, std::size_t run)
 *
 * for consecutive token runs that cover exactly tokens [0, ctx) in
 * order; row r of a run is the headDim floats at `rows + r *
 * rowStride` (one head's K or V for one token). Examples: a float
 * paged view emits one run per page (`rows` = page base + head
 * offset, stride = nKv * headDim); the quantized view
 * gather-dequantizes each page's current-head rows into an
 * L1-resident stash and emits the stash (stride = headDim); the
 * causal prefill kernel emits one run over its whole-context dequant
 * stash plus one over the float tail that is still unquantized at the
 * position being computed.
 *
 * Lifetime: K rows may be invalidated as soon as their emit returns
 * (the core finishes scoring a run inside the emit — this is what
 * lets the quant provider reuse one stash). For V the core folds
 * rows in blocks of four *global* token indices, so up to three rows
 * of a partial block can still be pending when a run ends. When
 * @p vcarry is non-null the core copies pending rows into it before
 * every emit returns, so a V provider may likewise invalidate its
 * rows the moment emit comes back. A provider whose rows stay valid
 * for the whole call (float pages, a persistent stash) may pass
 * vcarry = nullptr and skip the copies.
 *
 * ## Determinism
 *
 * Scores are computed with dot()/dot4() per K row, softmaxed with
 * softmaxInPlaceFast, and V rows are folded four-at-a-time grouped by
 * *global* token index with the remainder accumulated per row — the
 * FP summation order depends only on ctx, never on the run structure.
 * Two calls whose providers emit bitwise-equal rows therefore produce
 * bitwise-equal output regardless of page geometry, and the pending-
 * row copies into vcarry cannot change results (same bits, same fold
 * order). This is the property the fused quantized kernels' golden
 * suites pin down.
 */

#ifndef MOELIGHT_KERNELS_ATTENTION_CORE_HH
#define MOELIGHT_KERNELS_ATTENTION_CORE_HH

#include <cstddef>
#include <cstring>
#include <span>

#include "common/logging.hh"
#include "kernels/linalg.hh"
#include "kernels/ops.hh"
#include "kernels/simd/simd.hh"

namespace moelight {

/**
 * One KV head's GQA attention: score @p group query heads against
 * every K row, softmax each score row, and fold every V row into all
 * group output heads.
 *
 * @param qg     Queries of this head's group, [group, hd] row-major.
 * @param group  Query heads per KV head (nQ / nKv).
 * @param ctx    Context length in tokens.
 * @param hd     Head dimension.
 * @param og     Output, [group, hd]; overwritten.
 * @param scale  Logit scale.
 * @param scores Scratch for score rows, >= group * ctx floats;
 *               row g holds query head g's logits over [0, ctx).
 * @param vcarry Either null (V rows stay valid for the whole call) or
 *               >= 4 * hd floats used to preserve a straddling
 *               V block's pending rows across provider emits.
 * @param kRuns  K row provider (see file comment for the contract).
 * @param vRuns  V row provider.
 */
template <class KRuns, class VRuns>
void
gqaAttentionHeadCore(const float *qg, std::size_t group,
                     std::size_t ctx, std::size_t hd, float *og,
                     float scale, float *scores, float *vcarry,
                     KRuns &&kRuns, VRuns &&vRuns)
{
    // The per-row FMA loops (score dots, V fold, remainder axpy) run
    // through the dispatched SIMD backend; hoist the table once.
    const simd::VecOps &vo = simd::ops();

    // Score pass: every K row is scored against all group heads while
    // it is hot, four heads at a time through the shared-x dot4
    // microkernel.
    std::size_t kt = 0;
    kRuns([&](const float *rows, std::size_t rowStride,
              std::size_t run) {
        // Checked before scoring: an over-emitting provider must trip
        // here, not scribble past the score rows first.
        panicIf(kt + run > ctx, "K row provider emitted past ctx");
        for (std::size_t r = 0; r < run; ++r) {
            const float *krow = rows + r * rowStride;
            std::size_t t = kt + r;
            std::size_t g = 0;
            float s4[4];
            for (; g + 4 <= group; g += 4) {
                vo.dot4(krow, qg + g * hd, qg + (g + 1) * hd,
                        qg + (g + 2) * hd, qg + (g + 3) * hd, hd, s4);
                scores[g * ctx + t] = scale * s4[0];
                scores[(g + 1) * ctx + t] = scale * s4[1];
                scores[(g + 2) * ctx + t] = scale * s4[2];
                scores[(g + 3) * ctx + t] = scale * s4[3];
            }
            for (; g < group; ++g)
                scores[g * ctx + t] =
                    scale * vo.dot(qg + g * hd, krow, hd);
        }
        kt += run;
    });
    panicIf(kt != ctx, "K row provider covered ", kt, " of ", ctx,
            " tokens");

    for (std::size_t g = 0; g < group; ++g)
        softmaxInPlaceFast(std::span<float>(scores + g * ctx, ctx));

    // Fused weighted-V accumulation: each V row is fetched once and
    // folded into all group output heads. Rows fold in blocks of four
    // so each output head is read-modify-written once per block, not
    // once per row — the serial store-to-load chain on the
    // accumulator is what dominates otherwise. Blocks are grouped by
    // *global* token index and carried across run boundaries (a
    // block's four row pointers may come from two runs), so the FP
    // summation order — and thus the output bits — is independent of
    // the run structure.
    std::memset(og, 0, group * hd * sizeof(float));
    const float *vrows[4];
    std::size_t base = 0;     // global index of vrows[0]
    std::size_t pending = 0;  // rows buffered, < 4
    std::size_t vt = 0;
    vRuns([&](const float *rows, std::size_t rowStride,
              std::size_t run) {
        panicIf(vt + run > ctx, "V row provider emitted past ctx");
        for (std::size_t r = 0; r < run; ++r) {
            vrows[pending++] = rows + r * rowStride;
            if (pending < 4)
                continue;
            const float *v0 = vrows[0], *v1 = vrows[1],
                        *v2 = vrows[2], *v3 = vrows[3];
            for (std::size_t g = 0; g < group; ++g)
                vo.foldV4(og + g * hd, v0, v1, v2, v3,
                          scores + g * ctx + base, hd);
            base += 4;
            pending = 0;
        }
        vt += run;
        // Secure a straddling block's pending rows before returning
        // control to the provider, which may reuse the buffer behind
        // them (the quant provider refills its dequant stash per
        // page). Copying does not change any bits, so the fold stays
        // independent of the run structure.
        if (vcarry != nullptr)
            for (std::size_t i = 0; i < pending; ++i)
                if (vrows[i] != vcarry + i * hd) {
                    std::memcpy(vcarry + i * hd, vrows[i],
                                hd * sizeof(float));
                    vrows[i] = vcarry + i * hd;
                }
    });
    panicIf(vt != ctx, "V row provider covered ", vt, " of ", ctx,
            " tokens");
    for (std::size_t i = 0; i < pending; ++i)
        for (std::size_t g = 0; g < group; ++g)
            vo.axpy(og + g * hd, vrows[i],
                    scores[g * ctx + base + i], hd);
}

} // namespace moelight

#endif // MOELIGHT_KERNELS_ATTENTION_CORE_HH
