#include "kernels/ops.hh"

#include <cmath>

#include "common/logging.hh"

namespace moelight {

void
softmaxInPlace(std::span<float> x)
{
    panicIf(x.empty(), "softmax over empty span");
    float mx = x[0];
    for (float v : x)
        mx = std::max(mx, v);
    float sum = 0.0f;
    for (auto &v : x) {
        v = std::exp(v - mx);
        sum += v;
    }
    for (auto &v : x)
        v /= sum;
}

void
rmsNorm(const float *x, const float *weight, float *out, std::size_t n,
        float eps)
{
    double ss = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        ss += static_cast<double>(x[i]) * x[i];
    float inv = 1.0f / std::sqrt(static_cast<float>(ss / n) + eps);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = x[i] * inv * weight[i];
}

void
siluInPlace(std::span<float> x)
{
    for (auto &v : x)
        v = v / (1.0f + std::exp(-v));
}

void
swiglu(const float *gate, const float *up, float *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        float g = gate[i] / (1.0f + std::exp(-gate[i]));
        out[i] = g * up[i];
    }
}

std::size_t
argmax(std::span<const float> x)
{
    panicIf(x.empty(), "argmax over empty span");
    std::size_t best = 0;
    for (std::size_t i = 1; i < x.size(); ++i)
        if (x[i] > x[best])
            best = i;
    return best;
}

} // namespace moelight
