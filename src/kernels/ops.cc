#include "kernels/ops.hh"

#include <cmath>

#include "common/logging.hh"

namespace moelight {

void
softmaxInPlace(std::span<float> x)
{
    panicIf(x.empty(), "softmax over empty span");
    float mx = x[0];
    for (float v : x)
        mx = std::max(mx, v);
    float sum = 0.0f;
    for (auto &v : x) {
        v = std::exp(v - mx);
        sum += v;
    }
    // One division, then a vectorizable scale pass.
    float inv = 1.0f / sum;
    for (auto &v : x)
        v *= inv;
}

void
softmaxInPlaceFast(std::span<float> x)
{
    panicIf(x.empty(), "softmax over empty span");
    std::size_t n = x.size();
    float *d = x.data();

    float mx4[4] = {d[0], d[0], d[0], d[0]};
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        for (std::size_t u = 0; u < 4; ++u)
            mx4[u] = std::max(mx4[u], d[i + u]);
    float mx = std::max(std::max(mx4[0], mx4[1]),
                        std::max(mx4[2], mx4[3]));
    for (; i < n; ++i)
        mx = std::max(mx, d[i]);

    float sum4[4] = {};
    i = 0;
    for (; i + 4 <= n; i += 4) {
        for (std::size_t u = 0; u < 4; ++u) {
            float e = fastExpf(d[i + u] - mx);
            d[i + u] = e;
            sum4[u] += e;
        }
    }
    float sum = (sum4[0] + sum4[1]) + (sum4[2] + sum4[3]);
    for (; i < n; ++i) {
        float e = fastExpf(d[i] - mx);
        d[i] = e;
        sum += e;
    }

    float inv = 1.0f / sum;
    for (std::size_t j = 0; j < n; ++j)
        d[j] *= inv;
}

void
rmsNorm(const float *x, const float *weight, float *out, std::size_t n,
        float eps)
{
    double ss = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        ss += static_cast<double>(x[i]) * x[i];
    float inv = 1.0f / std::sqrt(static_cast<float>(ss / n) + eps);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = x[i] * inv * weight[i];
}

void
siluInPlace(std::span<float> x)
{
    for (auto &v : x)
        v *= sigmoid(v);
}

void
swiglu(const float *gate, const float *up, float *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = gate[i] * sigmoid(gate[i]) * up[i];
}

std::size_t
argmax(std::span<const float> x)
{
    panicIf(x.empty(), "argmax over empty span");
    std::size_t best = 0;
    for (std::size_t i = 1; i < x.size(); ++i)
        if (x[i] > x[best])
            best = i;
    return best;
}

} // namespace moelight
