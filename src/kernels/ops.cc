#include "kernels/ops.hh"

#include <cmath>

#include "common/logging.hh"
#include "kernels/simd/simd.hh"

namespace moelight {

void
softmaxInPlace(std::span<float> x)
{
    panicIf(x.empty(), "softmax over empty span");
    float mx = x[0];
    for (float v : x)
        mx = std::max(mx, v);
    float sum = 0.0f;
    for (auto &v : x) {
        v = std::exp(v - mx);
        sum += v;
    }
    // One division, then a vectorizable scale pass.
    float inv = 1.0f / sum;
    for (auto &v : x)
        v *= inv;
}

void
softmaxInPlaceFast(std::span<float> x)
{
    panicIf(x.empty(), "softmax over empty span");
    // Dispatched: the AVX backends run the fastExpf polynomial on
    // whole vectors; the portable backend is the original
    // multi-accumulator scalar pass.
    simd::ops().softmax(x.data(), x.size());
}

void
rmsNorm(const float *x, const float *weight, float *out, std::size_t n,
        float eps)
{
    double ss = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        ss += static_cast<double>(x[i]) * x[i];
    float inv = 1.0f / std::sqrt(static_cast<float>(ss / n) + eps);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = x[i] * inv * weight[i];
}

void
siluInPlace(std::span<float> x)
{
    for (auto &v : x)
        v *= sigmoid(v);
}

void
swiglu(const float *gate, const float *up, float *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = gate[i] * sigmoid(gate[i]) * up[i];
}

std::size_t
argmax(std::span<const float> x)
{
    panicIf(x.empty(), "argmax over empty span");
    std::size_t best = 0;
    for (std::size_t i = 1; i < x.size(); ++i)
        if (x[i] > x[best])
            best = i;
    return best;
}

} // namespace moelight
