/**
 * @file
 * Retained naive (pre-optimization) kernel implementations. These are
 * the seed repo's original scalar loops, kept as golden references:
 * the unit tests cross-check every optimized kernel against them, and
 * bench/fig9_kernel_latency measures the optimized kernels' speedup
 * over them. Never call these from the runtime hot paths.
 */

#ifndef MOELIGHT_KERNELS_NAIVE_KERNELS_HH
#define MOELIGHT_KERNELS_NAIVE_KERNELS_HH

#include <cstddef>
#include <span>

#include "kernels/attention.hh"

namespace moelight {
namespace naive {

/** Serial single-accumulator dot product. */
float dot(const float *x, const float *y, std::size_t n);

/** Cache-blocked but otherwise scalar C[m,n] = A[m,k] * B[k,n]. */
void matmul(const float *a, const float *b, float *c, std::size_t m,
            std::size_t k, std::size_t n);

/** Row-of-dots C[m,n] = A[m,k] * W[n,k]^T. */
void matmulTransposedB(const float *a, const float *w, float *c,
                       std::size_t m, std::size_t k, std::size_t n);

/**
 * Per-query-head decode GQA: re-derives the page pointer per token
 * per head via KvView::kAt/vAt. Scratch needs kv.contextLen floats.
 */
void gqaDecodeAttention(const float *q, std::size_t nQ, const KvView &kv,
                        float *out, float scale,
                        std::span<float> scratch);

/** Per-position, per-head causal prefill attention. */
void gqaPrefillAttention(const float *q, const float *k, const float *v,
                         std::size_t seqLen, std::size_t nQ, std::size_t nKv,
                         std::size_t headDim, float *out, float scale);

} // namespace naive
} // namespace moelight

#endif // MOELIGHT_KERNELS_NAIVE_KERNELS_HH
