/**
 * Portable scalar backend: the multi-accumulator C++ kernels the
 * project shipped before the intrinsics backends existed, compiled
 * with the project's *base* flags only (no -march), so the binary
 * runs on any x86-64 / aarch64 host. `-O2 -fvect-cost-model=dynamic`
 * still auto-vectorizes these loops to whatever the baseline target
 * offers (SSE2 on x86-64); the point of this TU is correctness
 * everywhere, with the AVX TUs supplying the width- and FMA-tuned
 * fast paths.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "kernels/ops.hh"  // fastExpf
#include "kernels/simd/simd_kernels.hh"

namespace moelight {
namespace simd {
namespace {

/** k-unroll width of dot()/dot4(); must stay in sync between them. */
constexpr std::size_t kUnroll = 8;

/** Fixed reduction order shared by dot() and dot4(). */
inline float
reduce8(const float acc[kUnroll])
{
    return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
           ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

struct KPortable
{
    static float
    dot(const float *x, const float *y, std::size_t n)
    {
        float acc[kUnroll] = {};
        std::size_t i = 0;
        for (; i + kUnroll <= n; i += kUnroll)
            for (std::size_t u = 0; u < kUnroll; ++u)
                acc[u] += x[i + u] * y[i + u];
        float sum = reduce8(acc);
        for (; i < n; ++i)
            sum += x[i] * y[i];
        return sum;
    }

    static void
    dot4(const float *x, const float *y0, const float *y1,
         const float *y2, const float *y3, std::size_t n, float out[4])
    {
        float a0[kUnroll] = {}, a1[kUnroll] = {}, a2[kUnroll] = {},
              a3[kUnroll] = {};
        std::size_t i = 0;
        for (; i + kUnroll <= n; i += kUnroll) {
            for (std::size_t u = 0; u < kUnroll; ++u) {
                float xv = x[i + u];
                a0[u] += xv * y0[i + u];
                a1[u] += xv * y1[i + u];
                a2[u] += xv * y2[i + u];
                a3[u] += xv * y3[i + u];
            }
        }
        float s0 = reduce8(a0), s1 = reduce8(a1), s2 = reduce8(a2),
              s3 = reduce8(a3);
        for (; i < n; ++i) {
            float xv = x[i];
            s0 += xv * y0[i];
            s1 += xv * y1[i];
            s2 += xv * y2[i];
            s3 += xv * y3[i];
        }
        out[0] = s0;
        out[1] = s1;
        out[2] = s2;
        out[3] = s3;
    }
};

void
axpy(float *y, const float *x, float s, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += s * x[i];
}

void
foldV4(float *o, const float *v0, const float *v1, const float *v2,
       const float *v3, const float w[4], std::size_t n)
{
    float w0 = w[0], w1 = w[1], w2 = w[2], w3 = w[3];
    for (std::size_t i = 0; i < n; ++i)
        o[i] += w0 * v0[i] + w1 * v1[i] + w2 * v2[i] + w3 * v3[i];
}

void
softmax(float *d, std::size_t n)
{
    float mx4[4] = {d[0], d[0], d[0], d[0]};
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        for (std::size_t u = 0; u < 4; ++u)
            mx4[u] = std::max(mx4[u], d[i + u]);
    float mx = std::max(std::max(mx4[0], mx4[1]),
                        std::max(mx4[2], mx4[3]));
    for (; i < n; ++i)
        mx = std::max(mx, d[i]);

    float sum4[4] = {};
    i = 0;
    for (; i + 4 <= n; i += 4) {
        for (std::size_t u = 0; u < 4; ++u) {
            float e = fastExpf(d[i + u] - mx);
            d[i + u] = e;
            sum4[u] += e;
        }
    }
    float sum = (sum4[0] + sum4[1]) + (sum4[2] + sum4[3]);
    for (; i < n; ++i) {
        float e = fastExpf(d[i] - mx);
        d[i] = e;
        sum += e;
    }

    float inv = 1.0f / sum;
    for (std::size_t j = 0; j < n; ++j)
        d[j] *= inv;
}

void
matmulTransposedB(const float *a, const float *w, float *c,
                  std::size_t m, std::size_t k, std::size_t n)
{
    detail::matmulTransposedBT<KPortable>(a, w, c, m, k, n);
}

void
dequantGroupI8(const std::uint8_t *src, float scale, float *dst,
               std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = scale * static_cast<float>(
                             static_cast<std::int8_t>(src[i]));
}

/** Sign-extend a 4-bit two's-complement nibble (branchless). */
inline int
nibbleToInt(std::uint8_t nib)
{
    return ((nib & 0xF) ^ 8) - 8;
}

void
dequantGroupI4(const std::uint8_t *src, float scale, float *dst,
               std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 2) {
        std::uint8_t byte = src[i / 2];
        dst[i] = scale * static_cast<float>(nibbleToInt(byte));
        dst[i + 1] = scale * static_cast<float>(nibbleToInt(
                                 static_cast<std::uint8_t>(byte >> 4)));
    }
}

} // namespace

namespace detail {

const VecOps kOpsPortable = {
    Isa::Portable,   "portable",        KPortable::dot,
    KPortable::dot4, axpy,              foldV4,
    softmax,         matmulTransposedB, dequantGroupI8,
    dequantGroupI4,
};

} // namespace detail
} // namespace simd
} // namespace moelight
