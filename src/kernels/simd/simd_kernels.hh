/**
 * @file
 * Internal helpers shared by the SIMD backend translation units. Each
 * ISA TU defines a primitives struct (static dot / dot4) and
 * instantiates the composite drivers here, so the primitive calls
 * inline into the driver loops *inside* that TU — the table exports
 * only top-level entry points (the llama.cpp per-TU pattern).
 *
 * Not part of the public surface; include kernels/simd/simd.hh
 * instead.
 */

#ifndef MOELIGHT_KERNELS_SIMD_SIMD_KERNELS_HH
#define MOELIGHT_KERNELS_SIMD_SIMD_KERNELS_HH

#include <algorithm>
#include <cstddef>

#include "kernels/simd/simd.hh"

namespace moelight {
namespace simd {
namespace detail {

/**
 * B-transposed GEMM driver over a primitives struct K (static dot and
 * dot4): 1x4 register tile over output columns through the shared-x
 * dot4 microkernel, 8-row A blocks so W strips stay hot across rows.
 * This is the exact loop structure the pre-backend linalg.cc kernel
 * used; every C element is one K::dot-shaped reduction, so the result
 * is independent of m and of any row partitioning (the pooled GEMM
 * splits rows and stays bit-identical).
 */
template <class K>
void
matmulTransposedBT(const float *a, const float *w, float *c,
                   std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t i0 = 0; i0 < m; i0 += kGemmRowBlock) {
        std::size_t i_max = std::min(i0 + kGemmRowBlock, m);
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const float *w0 = w + j * k;
            const float *w1 = w0 + k;
            const float *w2 = w1 + k;
            const float *w3 = w2 + k;
            for (std::size_t i = i0; i < i_max; ++i)
                K::dot4(a + i * k, w0, w1, w2, w3, k, c + i * n + j);
        }
        for (; j < n; ++j) {
            const float *wj = w + j * k;
            for (std::size_t i = i0; i < i_max; ++i)
                c[i * n + j] = K::dot(a + i * k, wj, k);
        }
    }
}

/** Backend tables, defined by their (conditionally compiled) TUs. */
extern const VecOps kOpsPortable;
#if defined(MOELIGHT_SIMD_ENABLE_AVX2)
extern const VecOps kOpsAvx2;
#endif
#if defined(MOELIGHT_SIMD_ENABLE_AVX512)
extern const VecOps kOpsAvx512;
#endif

} // namespace detail
} // namespace simd
} // namespace moelight

#endif // MOELIGHT_KERNELS_SIMD_SIMD_KERNELS_HH
