/**
 * Backend selection: CPUID detection, the MOELIGHT_SIMD override, and
 * the test-only force hook. This TU is compiled with the per-ISA
 * availability macros (MOELIGHT_SIMD_ENABLE_AVX2 / _AVX512) that
 * CMake sets exactly when the matching translation unit could be
 * built, so the extern table references below always link.
 */

#include "kernels/simd/simd.hh"

#include <atomic>
#include <cstdlib>

#include "common/logging.hh"
#include "kernels/simd/simd_kernels.hh"

namespace moelight {
namespace simd {

namespace {

/** Test-only override; null in production (see ScopedIsa).
 *  Concurrency contract: an atomic (not a mutex) because ops() reads
 *  it on every kernel call from any worker thread; ScopedIsa's
 *  set/restore pairs are expected to run while no kernels are in
 *  flight (tests are serial), so torn *usage* cannot occur — the
 *  atomic only guarantees the pointer load/store itself is clean. */
std::atomic<const VecOps *> g_forced{nullptr};

} // namespace

const char *
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Portable:
        return "portable";
      case Isa::Avx2:
        return "avx2";
      case Isa::Avx512:
        return "avx512";
    }
    return "unknown";
}

std::optional<Isa>
parseIsa(std::string_view name)
{
    if (name == "portable" || name == "scalar")
        return Isa::Portable;
    if (name == "avx2")
        return Isa::Avx2;
    if (name == "avx512")
        return Isa::Avx512;
    return std::nullopt;
}

bool
isaCompiled(Isa isa)
{
    switch (isa) {
      case Isa::Portable:
        return true;
      case Isa::Avx2:
#if defined(MOELIGHT_SIMD_ENABLE_AVX2)
        return true;
#else
        return false;
#endif
      case Isa::Avx512:
#if defined(MOELIGHT_SIMD_ENABLE_AVX512)
        return true;
#else
        return false;
#endif
    }
    return false;
}

bool
cpuSupports(Isa isa)
{
    if (isa == Isa::Portable)
        return true;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    switch (isa) {
      case Isa::Avx2:
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma");
      case Isa::Avx512:
        return __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("fma");
      default:
        return false;
    }
#else
    return false;
#endif
}

bool
isaRunnable(Isa isa)
{
    return isaCompiled(isa) && cpuSupports(isa);
}

std::vector<Isa>
runnableIsas()
{
    std::vector<Isa> out;
    for (Isa isa : {Isa::Portable, Isa::Avx2, Isa::Avx512})
        if (isaRunnable(isa))
            out.push_back(isa);
    return out;
}

const VecOps &
opsFor(Isa isa)
{
    panicIf(!isaRunnable(isa), "SIMD backend ", isaName(isa),
            isaCompiled(isa) ? " is not supported by this CPU"
                             : " was not compiled into this binary");
    switch (isa) {
#if defined(MOELIGHT_SIMD_ENABLE_AVX2)
      case Isa::Avx2:
        return detail::kOpsAvx2;
#endif
#if defined(MOELIGHT_SIMD_ENABLE_AVX512)
      case Isa::Avx512:
        return detail::kOpsAvx512;
#endif
      default:
        return detail::kOpsPortable;
    }
}

Isa
resolveIsa(const char *env, bool haveAvx2, bool haveAvx512,
           std::string *diag)
{
    auto best_at_or_below = [&](Isa cap) {
        if (cap >= Isa::Avx512 && haveAvx512)
            return Isa::Avx512;
        if (cap >= Isa::Avx2 && haveAvx2)
            return Isa::Avx2;
        return Isa::Portable;
    };
    if (env == nullptr || *env == '\0')
        return best_at_or_below(Isa::Avx512);
    std::optional<Isa> req = parseIsa(env);
    if (!req) {
        Isa pick = best_at_or_below(Isa::Avx512);
        if (diag)
            *diag = std::string("MOELIGHT_SIMD=\"") + env +
                    "\" not recognized (avx512|avx2|portable); "
                    "using " +
                    isaName(pick);
        return pick;
    }
    Isa pick = best_at_or_below(*req);
    if (pick != *req && diag)
        *diag = std::string("MOELIGHT_SIMD=") + isaName(*req) +
                " is not runnable on this host/binary; degrading to " +
                isaName(pick);
    return pick;
}

const VecOps &
ops()
{
    const VecOps *forced = g_forced.load(std::memory_order_acquire);
    if (forced != nullptr)
        return *forced;
    // Resolved once, thread-safely, on first use; the env override
    // exists so CI can exercise every backend from one binary.
    static const VecOps &chosen = []() -> const VecOps & {
        std::string diag;
        Isa isa = resolveIsa(std::getenv("MOELIGHT_SIMD"),
                             isaRunnable(Isa::Avx2),
                             isaRunnable(Isa::Avx512), &diag);
        if (!diag.empty())
            warn(diag);
        return opsFor(isa);
    }();
    return chosen;
}

Isa
activeIsa()
{
    return ops().isa;
}

const char *
activeIsaName()
{
    return ops().name;
}

ScopedIsa::ScopedIsa(Isa isa)
    : prev_(g_forced.load(std::memory_order_acquire))
{
    g_forced.store(&opsFor(isa), std::memory_order_release);
}

ScopedIsa::~ScopedIsa()
{
    g_forced.store(prev_, std::memory_order_release);
}

} // namespace simd
} // namespace moelight
