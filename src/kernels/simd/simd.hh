/**
 * @file
 * Runtime-dispatched SIMD vector-ops backend for the hot kernels.
 *
 * Before this module the kernels leaned on `-O2 -march=native`
 * auto-vectorization, which tied the binary to the build host's ISA
 * (an AVX-512 build faults on an AVX2 node) and left FMA-width tuning
 * to the compiler's mood. Now every per-row FMA loop — dot products,
 * the B-transposed GEMM microkernel, the attention score and
 * 4-blocked V-fold inner loops, the fast softmax, and the int8/int4
 * gather-dequant — routes through a small table of function pointers
 * (`VecOps`) with three implementations:
 *
 *   - avx512   AVX-512F + FMA intrinsics (simd_avx512.cc, compiled
 *              with -mavx512f -mfma only for that TU)
 *   - avx2     AVX2 + FMA intrinsics (simd_avx2.cc, -mavx2 -mfma)
 *   - portable multi-accumulator scalar C++ (simd_portable.cc, built
 *              with the project's base flags; auto-vectorizes to
 *              whatever the *baseline* target allows)
 *
 * The backend is selected ONCE, on first use, from CPUID (best
 * supported ISA wins) and can be overridden with the environment
 * variable `MOELIGHT_SIMD=avx512|avx2|portable` — requesting an ISA
 * the binary or CPU cannot run degrades to the next-best available
 * with a warning, so one CI matrix works on any host. Because the ISA
 * translation units carry their own -m flags instead of a blanket
 * -march=native, a single binary runs correctly everywhere and every
 * backend can be exercised on one machine.
 *
 * ## Determinism contract
 *
 * Within one backend, every op is a pure function with a fixed
 * floating-point evaluation order:
 *  - dot4(x, y0..y3) is bit-identical to four dot() calls (each lane
 *    performs exactly dot()'s operation sequence);
 *  - matmulTransposedB computes every output element with the same
 *    expression regardless of m or row partitioning (the pooled GEMM
 *    and any batching stay bit-identical to serial);
 *  - dequantGroupI8/I4 compute scale * float(q) per element — one
 *    exact int->float conversion and one multiply, which makes
 *    dequantization bit-identical across ALL backends.
 * Across backends the reassociation (FMA, vector width) legitimately
 * changes low-order bits of dot/softmax results; cross-backend
 * equivalence is tolerance-checked by the golden suites, while
 * within-backend bit-identity (engine-vs-reference, fused-vs-
 * materialized) remains structural.
 */

#ifndef MOELIGHT_KERNELS_SIMD_SIMD_HH
#define MOELIGHT_KERNELS_SIMD_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace moelight {
namespace simd {

/** Instruction-set levels, ordered worst to best. */
enum class Isa
{
    Portable = 0,
    Avx2 = 1,
    Avx512 = 2,
};

/** A-row block of the backend GEMM driver (W strips stay hot across
 *  rows). Exposed so the pool-parallel GEMM can size its row grain
 *  to whole blocks; correctness never depends on it (every C element
 *  is an m-independent reduction). */
inline constexpr std::size_t kGemmRowBlock = 8;

/** Lower-case name used by MOELIGHT_SIMD and the bench JSONs. */
const char *isaName(Isa isa);

/** Parse an MOELIGHT_SIMD value; nullopt when unrecognized. */
std::optional<Isa> parseIsa(std::string_view name);

/**
 * The vector-ops surface every backend implements. One global table
 * is active at a time (see ops()); hot loops hoist the reference
 * once and call through it.
 */
struct VecOps
{
    Isa isa;
    const char *name;

    /** Dot product of two length-n vectors. */
    float (*dot)(const float *x, const float *y, std::size_t n);

    /** Four dots sharing one x stream; each lane bit-identical to
     *  dot(). The attention score and GEMM microkernel. */
    void (*dot4)(const float *x, const float *y0, const float *y1,
                 const float *y2, const float *y3, std::size_t n,
                 float out[4]);

    /** y[i] += s * x[i]. */
    void (*axpy)(float *y, const float *x, float s, std::size_t n);

    /** o[i] += w[0]*v0[i] + w[1]*v1[i] + w[2]*v2[i] + w[3]*v3[i] —
     *  the attention core's 4-blocked V fold. */
    void (*foldV4)(float *o, const float *v0, const float *v1,
                   const float *v2, const float *v3, const float w[4],
                   std::size_t n);

    /** Numerically-stable in-place softmax over n >= 1 floats using
     *  the backend's vector exp (fastExpf polynomial, ~4e-6 rel
     *  error). */
    void (*softmax)(float *x, std::size_t n);

    /** C[m,n] = A[m,k] * W[n,k]^T, serial; every element's FP
     *  expression depends only on k (see determinism contract). */
    void (*matmulTransposedB)(const float *a, const float *w, float *c,
                              std::size_t m, std::size_t k,
                              std::size_t n);

    /** dst[i] = scale * int8(src[i]) for one quant group. */
    void (*dequantGroupI8)(const std::uint8_t *src, float scale,
                           float *dst, std::size_t n);

    /** dst[i] = scale * nibble(src[i/2]) for one packed-int4 quant
     *  group; n is even (low nibble first). */
    void (*dequantGroupI4)(const std::uint8_t *src, float scale,
                           float *dst, std::size_t n);
};

/**
 * The active backend. Resolved once on first call: CPUID picks the
 * best runnable ISA, MOELIGHT_SIMD overrides (degrading to the next-
 * best available, with a warning, when the request cannot run here).
 * Hot paths should hoist `const VecOps &vo = simd::ops();` outside
 * their loops.
 */
const VecOps &ops();

/** ISA of the active backend. */
Isa activeIsa();

/** isaName(activeIsa()). */
const char *activeIsaName();

/** Whether the backend for @p isa was compiled into this binary. */
bool isaCompiled(Isa isa);

/** Whether this CPU can execute @p isa. */
bool cpuSupports(Isa isa);

/** isaCompiled && cpuSupports: the backend can run here. */
bool isaRunnable(Isa isa);

/** Every runnable ISA, worst to best; always contains Portable. */
std::vector<Isa> runnableIsas();

/** Table for @p isa; panics unless isaRunnable(isa). */
const VecOps &opsFor(Isa isa);

/**
 * Pure resolution logic behind ops(), exposed for unit tests: pick
 * the ISA given the MOELIGHT_SIMD value (null/empty = unset) and the
 * availability of each accelerated backend. An unavailable or
 * unrecognized request degrades to the best available ISA at or
 * below the request (explains itself via @p diag when non-null).
 */
Isa resolveIsa(const char *env, bool haveAvx2, bool haveAvx512,
               std::string *diag = nullptr);

/**
 * Test hook: force the active backend for the lifetime of the guard
 * (restores the previous state on destruction). The golden suites
 * use this to run the kernel matrix under every runnable backend in
 * one process; production code must never call it.
 */
class ScopedIsa
{
  public:
    explicit ScopedIsa(Isa isa);
    ~ScopedIsa();
    ScopedIsa(const ScopedIsa &) = delete;
    ScopedIsa &operator=(const ScopedIsa &) = delete;

  private:
    const VecOps *prev_;
};

} // namespace simd
} // namespace moelight

#endif // MOELIGHT_KERNELS_SIMD_SIMD_HH
