/**
 * AVX2 + FMA backend. Compiled with -mavx2 -mfma for this TU only
 * (see CMakeLists.txt); structure mirrors simd_avx512.cc at 256-bit
 * width — two 8-lane accumulators (16 floats per iteration), explicit
 * fixed-order horizontal reductions, scalar tails. dot4 replays dot's
 * operation sequence per lane (bit-identical, the Dot4Golden
 * contract).
 */

#if defined(MOELIGHT_SIMD_ENABLE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "kernels/ops.hh"  // fastExpf (scalar tail of softmax)
#include "kernels/simd/simd_kernels.hh"

namespace moelight {
namespace simd {
namespace {

/** Fixed-order horizontal add of 8 lanes. */
inline float
hsum8(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_movehdup_ps(s));
    return _mm_cvtss_f32(s);
}

/** Horizontal max of 8 lanes (order-free: max is exact). */
inline float
hmax8(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_max_ps(lo, hi);
    s = _mm_max_ps(s, _mm_movehl_ps(s, s));
    s = _mm_max_ss(s, _mm_movehdup_ps(s));
    return _mm_cvtss_f32(s);
}

struct K256
{
    static float
    dot(const float *x, const float *y, std::size_t n)
    {
        __m256 a0 = _mm256_setzero_ps();
        __m256 a1 = _mm256_setzero_ps();
        std::size_t i = 0;
        for (; i + 16 <= n; i += 16) {
            a0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                                 _mm256_loadu_ps(y + i), a0);
            a1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8),
                                 _mm256_loadu_ps(y + i + 8), a1);
        }
        if (i + 8 <= n) {
            a0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                                 _mm256_loadu_ps(y + i), a0);
            i += 8;
        }
        float sum = hsum8(_mm256_add_ps(a0, a1));
        for (; i < n; ++i)
            sum += x[i] * y[i];
        return sum;
    }

    static void
    dot4(const float *x, const float *y0, const float *y1,
         const float *y2, const float *y3, std::size_t n, float out[4])
    {
        __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
        __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
        __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
        __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
        std::size_t i = 0;
        for (; i + 16 <= n; i += 16) {
            __m256 xv0 = _mm256_loadu_ps(x + i);
            __m256 xv1 = _mm256_loadu_ps(x + i + 8);
            a00 = _mm256_fmadd_ps(xv0, _mm256_loadu_ps(y0 + i), a00);
            a01 = _mm256_fmadd_ps(xv1, _mm256_loadu_ps(y0 + i + 8),
                                  a01);
            a10 = _mm256_fmadd_ps(xv0, _mm256_loadu_ps(y1 + i), a10);
            a11 = _mm256_fmadd_ps(xv1, _mm256_loadu_ps(y1 + i + 8),
                                  a11);
            a20 = _mm256_fmadd_ps(xv0, _mm256_loadu_ps(y2 + i), a20);
            a21 = _mm256_fmadd_ps(xv1, _mm256_loadu_ps(y2 + i + 8),
                                  a21);
            a30 = _mm256_fmadd_ps(xv0, _mm256_loadu_ps(y3 + i), a30);
            a31 = _mm256_fmadd_ps(xv1, _mm256_loadu_ps(y3 + i + 8),
                                  a31);
        }
        if (i + 8 <= n) {
            __m256 xv = _mm256_loadu_ps(x + i);
            a00 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(y0 + i), a00);
            a10 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(y1 + i), a10);
            a20 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(y2 + i), a20);
            a30 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(y3 + i), a30);
            i += 8;
        }
        float s0 = hsum8(_mm256_add_ps(a00, a01));
        float s1 = hsum8(_mm256_add_ps(a10, a11));
        float s2 = hsum8(_mm256_add_ps(a20, a21));
        float s3 = hsum8(_mm256_add_ps(a30, a31));
        for (; i < n; ++i) {
            float xv = x[i];
            s0 += xv * y0[i];
            s1 += xv * y1[i];
            s2 += xv * y2[i];
            s3 += xv * y3[i];
        }
        out[0] = s0;
        out[1] = s1;
        out[2] = s2;
        out[3] = s3;
    }
};

void
axpy(float *y, const float *x, float s, std::size_t n)
{
    __m256 vs = _mm256_set1_ps(s);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(
            y + i, _mm256_fmadd_ps(vs, _mm256_loadu_ps(x + i),
                                   _mm256_loadu_ps(y + i)));
    for (; i < n; ++i)
        y[i] += s * x[i];
}

void
foldV4(float *o, const float *v0, const float *v1, const float *v2,
       const float *v3, const float w[4], std::size_t n)
{
    __m256 w0 = _mm256_set1_ps(w[0]);
    __m256 w1 = _mm256_set1_ps(w[1]);
    __m256 w2 = _mm256_set1_ps(w[2]);
    __m256 w3 = _mm256_set1_ps(w[3]);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 acc = _mm256_loadu_ps(o + i);
        acc = _mm256_fmadd_ps(w0, _mm256_loadu_ps(v0 + i), acc);
        acc = _mm256_fmadd_ps(w1, _mm256_loadu_ps(v1 + i), acc);
        acc = _mm256_fmadd_ps(w2, _mm256_loadu_ps(v2 + i), acc);
        acc = _mm256_fmadd_ps(w3, _mm256_loadu_ps(v3 + i), acc);
        _mm256_storeu_ps(o + i, acc);
    }
    for (; i < n; ++i)
        o[i] += w[0] * v0[i] + w[1] * v1[i] + w[2] * v2[i] +
                w[3] * v3[i];
}

/** fastExpf's polynomial on 8 lanes (same coefficients; FMA form). */
inline __m256
vexp256(__m256 x)
{
    x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(-87.0f)),
                      _mm256_set1_ps(88.0f));
    __m256 z = _mm256_mul_ps(x, _mm256_set1_ps(1.44269504088896341f));
    __m256 fx = _mm256_round_ps(
        z, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    __m256 g = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
    g = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), g);
    __m256 p = _mm256_set1_ps(1.9875691500e-4f);
    p = _mm256_fmadd_ps(p, g, _mm256_set1_ps(1.3981999507e-3f));
    p = _mm256_fmadd_ps(p, g, _mm256_set1_ps(8.3334519073e-3f));
    p = _mm256_fmadd_ps(p, g, _mm256_set1_ps(4.1665795894e-2f));
    p = _mm256_fmadd_ps(p, g, _mm256_set1_ps(1.6666665459e-1f));
    p = _mm256_fmadd_ps(p, g, _mm256_set1_ps(5.0000001201e-1f));
    __m256 g2 = _mm256_mul_ps(g, g);
    p = _mm256_add_ps(_mm256_fmadd_ps(p, g2, g),
                      _mm256_set1_ps(1.0f));
    __m256i e = _mm256_cvtps_epi32(fx);
    __m256i bits = _mm256_slli_epi32(
        _mm256_add_epi32(e, _mm256_set1_epi32(127)), 23);
    return _mm256_mul_ps(p, _mm256_castsi256_ps(bits));
}

void
softmax(float *d, std::size_t n)
{
    std::size_t i;
    float mx;
    if (n >= 8) {
        __m256 vm = _mm256_loadu_ps(d);
        for (i = 8; i + 8 <= n; i += 8)
            vm = _mm256_max_ps(vm, _mm256_loadu_ps(d + i));
        mx = hmax8(vm);
    } else {
        mx = d[0];
        i = 1;
    }
    for (; i < n; ++i)
        mx = std::max(mx, d[i]);

    __m256 vmx = _mm256_set1_ps(mx);
    __m256 vsum = _mm256_setzero_ps();
    i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 e = vexp256(_mm256_sub_ps(_mm256_loadu_ps(d + i), vmx));
        _mm256_storeu_ps(d + i, e);
        vsum = _mm256_add_ps(vsum, e);
    }
    float sum = hsum8(vsum);
    for (; i < n; ++i) {
        float e = fastExpf(d[i] - mx);
        d[i] = e;
        sum += e;
    }

    float inv = 1.0f / sum;
    __m256 vinv = _mm256_set1_ps(inv);
    i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(d + i,
                         _mm256_mul_ps(_mm256_loadu_ps(d + i), vinv));
    for (; i < n; ++i)
        d[i] *= inv;
}

void
matmulTransposedB(const float *a, const float *w, float *c,
                  std::size_t m, std::size_t k, std::size_t n)
{
    detail::matmulTransposedBT<K256>(a, w, c, m, k, n);
}

void
dequantGroupI8(const std::uint8_t *src, float scale, float *dst,
               std::size_t n)
{
    __m256 vs = _mm256_set1_ps(scale);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m128i b = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(src + i));
        __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
        _mm256_storeu_ps(dst + i, _mm256_mul_ps(vs, f));
    }
    for (; i < n; ++i)
        dst[i] = scale * static_cast<float>(
                             static_cast<std::int8_t>(src[i]));
}

void
dequantGroupI4(const std::uint8_t *src, float scale, float *dst,
               std::size_t n)
{
    __m256 vs = _mm256_set1_ps(scale);
    const __m128i nib_mask = _mm_set1_epi8(0x0F);
    const __m128i sign8 = _mm_set1_epi8(8);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // 4 packed bytes -> 8 nibbles, interleaved low-nibble-first.
        std::uint32_t four;
        std::memcpy(&four, src + i / 2, sizeof(four));
        __m128i b = _mm_cvtsi32_si128(static_cast<int>(four));
        __m128i lo = _mm_and_si128(b, nib_mask);
        __m128i hi = _mm_and_si128(_mm_srli_epi16(b, 4), nib_mask);
        __m128i inter = _mm_unpacklo_epi8(lo, hi);
        __m128i sgn = _mm_sub_epi8(_mm_xor_si128(inter, sign8), sign8);
        __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(sgn));
        _mm256_storeu_ps(dst + i, _mm256_mul_ps(vs, f));
    }
    for (; i < n; i += 2) {
        std::uint8_t byte = src[i / 2];
        dst[i] = scale * static_cast<float>(((byte & 0xF) ^ 8) - 8);
        dst[i + 1] =
            scale * static_cast<float>((((byte >> 4) & 0xF) ^ 8) - 8);
    }
}

} // namespace

namespace detail {

const VecOps kOpsAvx2 = {
    Isa::Avx2, "avx2",            K256::dot,      K256::dot4,
    axpy,      foldV4,            softmax,        matmulTransposedB,
    dequantGroupI8, dequantGroupI4,
};

} // namespace detail
} // namespace simd
} // namespace moelight

#endif // MOELIGHT_SIMD_ENABLE_AVX2
