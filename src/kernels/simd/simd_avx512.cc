/**
 * AVX-512F + FMA backend. This translation unit — and only this one —
 * is compiled with -mavx512f -mfma (see CMakeLists.txt); the rest of
 * the binary stays on the baseline target, so the binary loads on any
 * host and this code runs only after CPUID dispatch selects it.
 *
 * Layout of every kernel: 512-bit main loop (two accumulators where a
 * dependence chain would otherwise serialize the FMAs), fixed-order
 * lane reduction, scalar tail. dot4 replays dot's operation sequence
 * per lane so the two stay bit-identical (the Dot4Golden contract);
 * the GEMM driver is the shared template over these primitives, so
 * its per-element arithmetic is m-independent.
 */

#if defined(MOELIGHT_SIMD_ENABLE_AVX512)

// GCC's AVX-512 intrinsic headers route unmasked ops through
// _mm512_undefined_*() merge sources (self-initialized `__Y = __Y`),
// which the -O2 uninitialized-use analysis flags on nearly every
// intrinsic in this file (GCC PR105593). Header noise, not bugs here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "kernels/ops.hh"  // fastExpf (scalar tail of softmax)
#include "kernels/simd/simd_kernels.hh"

namespace moelight {
namespace simd {
namespace {

/** Upper 256-bit half of a 512-bit float vector (AVX512F-only; the
 *  float extract needs DQ, the double one doesn't). */
inline __m256
upper256(__m512 v)
{
    return _mm256_castpd_ps(
        _mm512_extractf64x4_pd(_mm512_castps_pd(v), 1));
}

/** Fixed-order horizontal add of 16 lanes. GCC 12's
 *  _mm512_reduce_add_ps expands through a builtin that trips
 *  -Wmaybe-uninitialized; this explicit tree is warning-clean and
 *  pins the reduction order in our own code. */
inline float
hsum16(__m512 v)
{
    __m256 s8 = _mm256_add_ps(_mm512_castps512_ps256(v), upper256(v));
    __m128 s = _mm_add_ps(_mm256_castps256_ps128(s8),
                          _mm256_extractf128_ps(s8, 1));
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_movehdup_ps(s));
    return _mm_cvtss_f32(s);
}

/** Horizontal max of 16 lanes (order-free: max is exact). */
inline float
hmax16(__m512 v)
{
    __m256 s8 = _mm256_max_ps(_mm512_castps512_ps256(v), upper256(v));
    __m128 s = _mm_max_ps(_mm256_castps256_ps128(s8),
                          _mm256_extractf128_ps(s8, 1));
    s = _mm_max_ps(s, _mm_movehl_ps(s, s));
    s = _mm_max_ss(s, _mm_movehdup_ps(s));
    return _mm_cvtss_f32(s);
}

struct K512
{
    static float
    dot(const float *x, const float *y, std::size_t n)
    {
        __m512 a0 = _mm512_setzero_ps();
        __m512 a1 = _mm512_setzero_ps();
        std::size_t i = 0;
        for (; i + 32 <= n; i += 32) {
            a0 = _mm512_fmadd_ps(_mm512_loadu_ps(x + i),
                                 _mm512_loadu_ps(y + i), a0);
            a1 = _mm512_fmadd_ps(_mm512_loadu_ps(x + i + 16),
                                 _mm512_loadu_ps(y + i + 16), a1);
        }
        if (i + 16 <= n) {
            a0 = _mm512_fmadd_ps(_mm512_loadu_ps(x + i),
                                 _mm512_loadu_ps(y + i), a0);
            i += 16;
        }
        float sum = hsum16(_mm512_add_ps(a0, a1));
        for (; i < n; ++i)
            sum += x[i] * y[i];
        return sum;
    }

    static void
    dot4(const float *x, const float *y0, const float *y1,
         const float *y2, const float *y3, std::size_t n, float out[4])
    {
        __m512 a00 = _mm512_setzero_ps(), a01 = _mm512_setzero_ps();
        __m512 a10 = _mm512_setzero_ps(), a11 = _mm512_setzero_ps();
        __m512 a20 = _mm512_setzero_ps(), a21 = _mm512_setzero_ps();
        __m512 a30 = _mm512_setzero_ps(), a31 = _mm512_setzero_ps();
        std::size_t i = 0;
        for (; i + 32 <= n; i += 32) {
            __m512 xv0 = _mm512_loadu_ps(x + i);
            __m512 xv1 = _mm512_loadu_ps(x + i + 16);
            a00 = _mm512_fmadd_ps(xv0, _mm512_loadu_ps(y0 + i), a00);
            a01 = _mm512_fmadd_ps(xv1, _mm512_loadu_ps(y0 + i + 16),
                                  a01);
            a10 = _mm512_fmadd_ps(xv0, _mm512_loadu_ps(y1 + i), a10);
            a11 = _mm512_fmadd_ps(xv1, _mm512_loadu_ps(y1 + i + 16),
                                  a11);
            a20 = _mm512_fmadd_ps(xv0, _mm512_loadu_ps(y2 + i), a20);
            a21 = _mm512_fmadd_ps(xv1, _mm512_loadu_ps(y2 + i + 16),
                                  a21);
            a30 = _mm512_fmadd_ps(xv0, _mm512_loadu_ps(y3 + i), a30);
            a31 = _mm512_fmadd_ps(xv1, _mm512_loadu_ps(y3 + i + 16),
                                  a31);
        }
        if (i + 16 <= n) {
            __m512 xv = _mm512_loadu_ps(x + i);
            a00 = _mm512_fmadd_ps(xv, _mm512_loadu_ps(y0 + i), a00);
            a10 = _mm512_fmadd_ps(xv, _mm512_loadu_ps(y1 + i), a10);
            a20 = _mm512_fmadd_ps(xv, _mm512_loadu_ps(y2 + i), a20);
            a30 = _mm512_fmadd_ps(xv, _mm512_loadu_ps(y3 + i), a30);
            i += 16;
        }
        float s0 = hsum16(_mm512_add_ps(a00, a01));
        float s1 = hsum16(_mm512_add_ps(a10, a11));
        float s2 = hsum16(_mm512_add_ps(a20, a21));
        float s3 = hsum16(_mm512_add_ps(a30, a31));
        for (; i < n; ++i) {
            float xv = x[i];
            s0 += xv * y0[i];
            s1 += xv * y1[i];
            s2 += xv * y2[i];
            s3 += xv * y3[i];
        }
        out[0] = s0;
        out[1] = s1;
        out[2] = s2;
        out[3] = s3;
    }
};

void
axpy(float *y, const float *x, float s, std::size_t n)
{
    __m512 vs = _mm512_set1_ps(s);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(
            y + i, _mm512_fmadd_ps(vs, _mm512_loadu_ps(x + i),
                                   _mm512_loadu_ps(y + i)));
    for (; i < n; ++i)
        y[i] += s * x[i];
}

void
foldV4(float *o, const float *v0, const float *v1, const float *v2,
       const float *v3, const float w[4], std::size_t n)
{
    __m512 w0 = _mm512_set1_ps(w[0]);
    __m512 w1 = _mm512_set1_ps(w[1]);
    __m512 w2 = _mm512_set1_ps(w[2]);
    __m512 w3 = _mm512_set1_ps(w[3]);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m512 acc = _mm512_loadu_ps(o + i);
        acc = _mm512_fmadd_ps(w0, _mm512_loadu_ps(v0 + i), acc);
        acc = _mm512_fmadd_ps(w1, _mm512_loadu_ps(v1 + i), acc);
        acc = _mm512_fmadd_ps(w2, _mm512_loadu_ps(v2 + i), acc);
        acc = _mm512_fmadd_ps(w3, _mm512_loadu_ps(v3 + i), acc);
        _mm512_storeu_ps(o + i, acc);
    }
    for (; i < n; ++i)
        o[i] += w[0] * v0[i] + w[1] * v1[i] + w[2] * v2[i] +
                w[3] * v3[i];
}

/** fastExpf's polynomial on 16 lanes (same coefficients; FMA form). */
inline __m512
vexp512(__m512 x)
{
    x = _mm512_min_ps(_mm512_max_ps(x, _mm512_set1_ps(-87.0f)),
                      _mm512_set1_ps(88.0f));
    __m512 z = _mm512_mul_ps(x, _mm512_set1_ps(1.44269504088896341f));
    __m512 fx = _mm512_roundscale_ps(
        z, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    __m512 g = _mm512_fnmadd_ps(fx, _mm512_set1_ps(0.693359375f), x);
    g = _mm512_fnmadd_ps(fx, _mm512_set1_ps(-2.12194440e-4f), g);
    __m512 p = _mm512_set1_ps(1.9875691500e-4f);
    p = _mm512_fmadd_ps(p, g, _mm512_set1_ps(1.3981999507e-3f));
    p = _mm512_fmadd_ps(p, g, _mm512_set1_ps(8.3334519073e-3f));
    p = _mm512_fmadd_ps(p, g, _mm512_set1_ps(4.1665795894e-2f));
    p = _mm512_fmadd_ps(p, g, _mm512_set1_ps(1.6666665459e-1f));
    p = _mm512_fmadd_ps(p, g, _mm512_set1_ps(5.0000001201e-1f));
    __m512 g2 = _mm512_mul_ps(g, g);
    p = _mm512_add_ps(_mm512_fmadd_ps(p, g2, g),
                      _mm512_set1_ps(1.0f));
    __m512i e = _mm512_cvtps_epi32(fx);
    __m512i bits = _mm512_slli_epi32(
        _mm512_add_epi32(e, _mm512_set1_epi32(127)), 23);
    return _mm512_mul_ps(p, _mm512_castsi512_ps(bits));
}

void
softmax(float *d, std::size_t n)
{
    std::size_t i;
    float mx;
    if (n >= 16) {
        __m512 vm = _mm512_loadu_ps(d);
        for (i = 16; i + 16 <= n; i += 16)
            vm = _mm512_max_ps(vm, _mm512_loadu_ps(d + i));
        mx = hmax16(vm);
    } else {
        mx = d[0];
        i = 1;
    }
    for (; i < n; ++i)
        mx = std::max(mx, d[i]);

    __m512 vmx = _mm512_set1_ps(mx);
    __m512 vsum = _mm512_setzero_ps();
    i = 0;
    for (; i + 16 <= n; i += 16) {
        __m512 e = vexp512(_mm512_sub_ps(_mm512_loadu_ps(d + i), vmx));
        _mm512_storeu_ps(d + i, e);
        vsum = _mm512_add_ps(vsum, e);
    }
    float sum = hsum16(vsum);
    for (; i < n; ++i) {
        float e = fastExpf(d[i] - mx);
        d[i] = e;
        sum += e;
    }

    float inv = 1.0f / sum;
    __m512 vinv = _mm512_set1_ps(inv);
    i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(d + i,
                         _mm512_mul_ps(_mm512_loadu_ps(d + i), vinv));
    for (; i < n; ++i)
        d[i] *= inv;
}

void
matmulTransposedB(const float *a, const float *w, float *c,
                  std::size_t m, std::size_t k, std::size_t n)
{
    detail::matmulTransposedBT<K512>(a, w, c, m, k, n);
}

void
dequantGroupI8(const std::uint8_t *src, float scale, float *dst,
               std::size_t n)
{
    __m512 vs = _mm512_set1_ps(scale);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        __m512 f = _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(b));
        _mm512_storeu_ps(dst + i, _mm512_mul_ps(vs, f));
    }
    for (; i < n; ++i)
        dst[i] = scale * static_cast<float>(
                             static_cast<std::int8_t>(src[i]));
}

void
dequantGroupI4(const std::uint8_t *src, float scale, float *dst,
               std::size_t n)
{
    __m512 vs = _mm512_set1_ps(scale);
    const __m128i nib_mask = _mm_set1_epi8(0x0F);
    const __m128i sign8 = _mm_set1_epi8(8);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        // 8 packed bytes -> 16 nibbles, interleaved low-nibble-first.
        __m128i b = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(src + i / 2));
        __m128i lo = _mm_and_si128(b, nib_mask);
        __m128i hi = _mm_and_si128(_mm_srli_epi16(b, 4), nib_mask);
        __m128i inter = _mm_unpacklo_epi8(lo, hi);
        __m128i sgn = _mm_sub_epi8(_mm_xor_si128(inter, sign8), sign8);
        __m512 f = _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(sgn));
        _mm512_storeu_ps(dst + i, _mm512_mul_ps(vs, f));
    }
    for (; i < n; i += 2) {
        std::uint8_t byte = src[i / 2];
        dst[i] = scale * static_cast<float>(((byte & 0xF) ^ 8) - 8);
        dst[i + 1] =
            scale * static_cast<float>((((byte >> 4) & 0xF) ^ 8) - 8);
    }
}

} // namespace

namespace detail {

const VecOps kOpsAvx512 = {
    Isa::Avx512, "avx512",          K512::dot,      K512::dot4,
    axpy,        foldV4,            softmax,        matmulTransposedB,
    dequantGroupI8, dequantGroupI4,
};

} // namespace detail
} // namespace simd
} // namespace moelight

#endif // MOELIGHT_SIMD_ENABLE_AVX512
