/**
 * @file
 * Dense linear algebra kernels (float32). dot/dot4 and the 1x4
 * register-tiled B-transposed GEMM microkernel route through the
 * runtime-dispatched SIMD backend (kernels/simd/simd.hh — AVX-512,
 * AVX2 or portable scalar, selected once at startup), so the binary
 * is no longer tied to the build host's ISA the way the old
 * `-march=native` auto-vectorized kernels were.
 *
 * Determinism contract: within the active backend, every output
 * element of every variant (serial, row-blocked, pool-parallel, any
 * m) is computed by the exact same floating-point expression —
 * dot()'s fixed-width partial sums reduced in a fixed order.
 * Batching a GEMM or splitting it across threads therefore produces
 * bit-identical results, which is what lets the pipelined engine
 * batch its projections while staying token-exact with the per-token
 * reference engine.
 */

#ifndef MOELIGHT_KERNELS_LINALG_HH
#define MOELIGHT_KERNELS_LINALG_HH

#include <cstddef>

namespace moelight {

class Tensor;
class ThreadPool;

/**
 * C[m,n] = A[m,k] * B[k,n]. All row-major, no aliasing.
 */
void matmul(const float *a, const float *b, float *c, std::size_t m,
            std::size_t k, std::size_t n);

/**
 * C[m,n] = A[m,k] * W[n,k]^T. W stored row-major as [out, in], the
 * conventional layout for projection weights. No aliasing.
 */
void matmulTransposedB(const float *a, const float *w, float *c,
                       std::size_t m, std::size_t k, std::size_t n);

/**
 * Pool-parallel variant of matmulTransposedB: rows of A are dealt to
 * the pool in contiguous blocks. Bit-identical to the serial kernel
 * (row partitioning does not change any element's arithmetic). Falls
 * back to the serial kernel when @p pool is null or the shape is too
 * small to be worth distributing.
 */
void matmulTransposedB(const float *a, const float *w, float *c,
                       std::size_t m, std::size_t k, std::size_t n,
                       ThreadPool *pool);

/** Tensor convenience wrappers with shape checking. */
void matmul(const Tensor &a, const Tensor &b, Tensor &c);
void matmulTransposedB(const Tensor &a, const Tensor &w, Tensor &c);

/** y[i] += x[i] for n elements. */
void accumulate(float *y, const float *x, std::size_t n);

/** y[i] += s * x[i] for n elements. */
void accumulateScaled(float *y, const float *x, float s, std::size_t n);

/** Dot product of two length-n vectors (8-way multi-accumulator). */
float dot(const float *x, const float *y, std::size_t n);

/**
 * Four dot products sharing one x stream: out[i] = dot(x, y[i], n),
 * each bit-identical to dot(). The shared-x form is the attention
 * scoring microkernel (one K row against a group of query heads) and
 * the GEMM microkernel (one A row against four W rows).
 */
void dot4(const float *x, const float *y0, const float *y1,
          const float *y2, const float *y3, std::size_t n, float out[4]);

} // namespace moelight

#endif // MOELIGHT_KERNELS_LINALG_HH
