/**
 * @file
 * Basic dense linear algebra kernels (float32). These back the
 * functional runtime; they are written for clarity and cache-blocked
 * enough to be usable on the tiny synthetic models the runtime runs.
 */

#ifndef MOELIGHT_KERNELS_LINALG_HH
#define MOELIGHT_KERNELS_LINALG_HH

#include <cstddef>

namespace moelight {

class Tensor;

/**
 * C[m,n] = A[m,k] * B[k,n]. All row-major, no aliasing.
 */
void matmul(const float *a, const float *b, float *c, std::size_t m,
            std::size_t k, std::size_t n);

/**
 * C[m,n] = A[m,k] * W[n,k]^T. W stored row-major as [out, in], the
 * conventional layout for projection weights. No aliasing.
 */
void matmulTransposedB(const float *a, const float *w, float *c,
                       std::size_t m, std::size_t k, std::size_t n);

/** Tensor convenience wrappers with shape checking. */
void matmul(const Tensor &a, const Tensor &b, Tensor &c);
void matmulTransposedB(const Tensor &a, const Tensor &w, Tensor &c);

/** y[i] += x[i] for n elements. */
void accumulate(float *y, const float *x, std::size_t n);

/** y[i] += s * x[i] for n elements. */
void accumulateScaled(float *y, const float *x, float s, std::size_t n);

/** Dot product of two length-n vectors. */
float dot(const float *x, const float *y, std::size_t n);

} // namespace moelight

#endif // MOELIGHT_KERNELS_LINALG_HH
