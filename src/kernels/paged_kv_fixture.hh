/**
 * @file
 * Paged-KV scaffolding shared by the kernel tests and the fig9
 * benchmark: builds page arrays of a given geometry — random, or by
 * splitting caller-provided contiguous [ctx, nKv, headDim] K/V data —
 * and wires up the KvView. Keeping one copy means the benches always
 * measure exactly the layout the golden tests validate.
 */

#ifndef MOELIGHT_KERNELS_PAGED_KV_FIXTURE_HH
#define MOELIGHT_KERNELS_PAGED_KV_FIXTURE_HH

#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "kernels/attention.hh"

namespace moelight {

/** Owns the pages and page-pointer arrays behind `view`. */
struct PagedKvFixture
{
    std::vector<std::vector<float>> kp, vp;
    std::vector<const float *> kptr, vptr;
    KvView view;

    /** Random K/V, uniform in [-1, 1) drawn from @p rng. */
    PagedKvFixture(std::size_t ctx, std::size_t nKv, std::size_t headDim,
                   std::size_t pageTokens, Rng &rng)
        : PagedKvFixture(ctx, nKv, headDim, pageTokens)
    {
        for (auto &page : kp)
            for (auto &x : page)
                x = static_cast<float>(rng.uniform(-1, 1));
        for (auto &page : vp)
            for (auto &x : page)
                x = static_cast<float>(rng.uniform(-1, 1));
    }

    /** Split contiguous [ctx, nKv, headDim] @p k / @p v into pages. */
    PagedKvFixture(std::size_t ctx, std::size_t nKv, std::size_t headDim,
                   std::size_t pageTokens, const float *k, const float *v)
        : PagedKvFixture(ctx, nKv, headDim, pageTokens)
    {
        std::size_t row = nKv * headDim;
        for (std::size_t t = 0; t < ctx; ++t) {
            std::size_t p = t / pageTokens, off = t % pageTokens;
            std::memcpy(kp[p].data() + off * row, k + t * row,
                        row * sizeof(float));
            std::memcpy(vp[p].data() + off * row, v + t * row,
                        row * sizeof(float));
        }
    }

  private:
    /** Allocate zeroed pages and wire the view. */
    PagedKvFixture(std::size_t ctx, std::size_t nKv, std::size_t headDim,
                   std::size_t pageTokens)
    {
        std::size_t n_pages = (ctx + pageTokens - 1) / pageTokens;
        kp.resize(n_pages);
        vp.resize(n_pages);
        for (std::size_t p = 0; p < n_pages; ++p) {
            kp[p].assign(pageTokens * nKv * headDim, 0.0f);
            vp[p].assign(pageTokens * nKv * headDim, 0.0f);
            kptr.push_back(kp[p].data());
            vptr.push_back(vp[p].data());
        }
        view.kPages = kptr;
        view.vPages = vptr;
        view.pageTokens = pageTokens;
        view.contextLen = ctx;
        view.nKv = nKv;
        view.headDim = headDim;
    }
};

} // namespace moelight

#endif // MOELIGHT_KERNELS_PAGED_KV_FIXTURE_HH
