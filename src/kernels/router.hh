/**
 * @file
 * MoE gating: top-k expert selection with renormalized softmax weights,
 * matching the Mixtral / DBRX router semantics (softmax over the
 * selected top-k logits).
 */

#ifndef MOELIGHT_KERNELS_ROUTER_HH
#define MOELIGHT_KERNELS_ROUTER_HH

#include <cstddef>
#include <span>
#include <vector>

namespace moelight {

/** Routing decision for one token. */
struct TokenRouting
{
    /** Selected expert ids, highest logit first; size k. */
    std::vector<int> experts;
    /** Mixing weights, softmax over the selected logits; sums to 1. */
    std::vector<float> weights;
};

/**
 * Route one token: pick the @p k largest of @p logits (n_experts
 * entries) and softmax-renormalize their logits into mixing weights.
 * Ties broken toward the lower expert id, matching a stable sort.
 */
TokenRouting routeTopK(std::span<const float> logits, std::size_t k);

/**
 * Route a batch: @p logits is [tokens, n_experts] row-major; returns
 * one TokenRouting per token.
 */
std::vector<TokenRouting> routeBatchTopK(const float *logits,
                                         std::size_t tokens,
                                         std::size_t n_experts,
                                         std::size_t k);

} // namespace moelight

#endif // MOELIGHT_KERNELS_ROUTER_HH
