#include "kernels/attention.hh"

#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "kernels/linalg.hh"
#include "kernels/ops.hh"

namespace moelight {

const float *
KvView::kAt(std::size_t t, std::size_t h) const
{
    panicIf(t >= contextLen, "KV token index out of range");
    std::size_t page = t / pageTokens;
    std::size_t off = t % pageTokens;
    panicIf(page >= kPages.size(), "KV page index out of range");
    return kPages[page] + (off * nKv + h) * headDim;
}

const float *
KvView::vAt(std::size_t t, std::size_t h) const
{
    panicIf(t >= contextLen, "KV token index out of range");
    std::size_t page = t / pageTokens;
    std::size_t off = t % pageTokens;
    panicIf(page >= vPages.size(), "KV page index out of range");
    return vPages[page] + (off * nKv + h) * headDim;
}

void
gqaDecodeAttention(const float *q, std::size_t nQ, const KvView &kv,
                   float *out, float scale, std::span<float> scratch)
{
    panicIf(kv.nKv == 0 || nQ % kv.nKv != 0,
            "query heads must be a multiple of KV heads");
    panicIf(kv.contextLen == 0, "attention over empty context");
    panicIf(scratch.size() < kv.contextLen, "attention scratch too small");
    std::size_t group = nQ / kv.nKv;
    std::span<float> scores = scratch.subspan(0, kv.contextLen);

    for (std::size_t h = 0; h < nQ; ++h) {
        std::size_t kvh = h / group;
        const float *qh = q + h * kv.headDim;
        for (std::size_t t = 0; t < kv.contextLen; ++t)
            scores[t] = scale * dot(qh, kv.kAt(t, kvh), kv.headDim);
        softmaxInPlace(scores);
        float *oh = out + h * kv.headDim;
        std::memset(oh, 0, kv.headDim * sizeof(float));
        for (std::size_t t = 0; t < kv.contextLen; ++t)
            accumulateScaled(oh, kv.vAt(t, kvh), scores[t], kv.headDim);
    }
}

void
gqaDecodeAttention(const float *q, std::size_t nQ, const KvView &kv,
                   float *out, float scale)
{
    std::vector<float> scratch(kv.contextLen);
    gqaDecodeAttention(q, nQ, kv, out, scale, scratch);
}

void
gqaDecodeAttentionBatch(const float *qBatch, std::size_t qStride,
                        std::size_t nQ, std::span<const KvView> kvs,
                        float *outBatch, std::size_t outStride,
                        float scale, ThreadPool *pool)
{
    auto body = [&](std::size_t t) {
        // Per-token scratch so workers never share score buffers.
        std::vector<float> scratch(kvs[t].contextLen);
        gqaDecodeAttention(qBatch + t * qStride, nQ, kvs[t],
                           outBatch + t * outStride, scale, scratch);
    };
    if (pool) {
        pool->parallelFor(kvs.size(), body);
    } else {
        for (std::size_t t = 0; t < kvs.size(); ++t)
            body(t);
    }
}

void
gqaPrefillAttention(const float *q, const float *k, const float *v,
                    std::size_t seq, std::size_t nQ, std::size_t nKv,
                    std::size_t headDim, float *out, float scale)
{
    panicIf(nKv == 0 || nQ % nKv != 0,
            "query heads must be a multiple of KV heads");
    std::size_t group = nQ / nKv;
    std::vector<float> scores(seq);

    for (std::size_t i = 0; i < seq; ++i) {
        for (std::size_t h = 0; h < nQ; ++h) {
            std::size_t kvh = h / group;
            const float *qh = q + (i * nQ + h) * headDim;
            std::size_t ctx = i + 1;  // causal mask
            for (std::size_t t = 0; t < ctx; ++t) {
                const float *kt = k + (t * nKv + kvh) * headDim;
                scores[t] = scale * dot(qh, kt, headDim);
            }
            softmaxInPlace({scores.data(), ctx});
            float *oh = out + (i * nQ + h) * headDim;
            std::memset(oh, 0, headDim * sizeof(float));
            for (std::size_t t = 0; t < ctx; ++t) {
                const float *vt = v + (t * nKv + kvh) * headDim;
                accumulateScaled(oh, vt, scores[t], headDim);
            }
        }
    }
}

} // namespace moelight
