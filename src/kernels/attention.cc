#include "kernels/attention.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "kernels/attention_core.hh"
#include "kernels/linalg.hh"
#include "kernels/ops.hh"

namespace moelight {

void
ShapeContract::validate(const char *kernel) const
{
    panicIf(nKv == 0 || nQ % nKv != 0, kernel,
            ": query heads must be a multiple of KV heads");
    panicIf(headDim == 0, kernel, ": zero headDim");
    panicIf(contextLen == 0, kernel, ": attention over empty context");
    if (paged) {
        panicIf(pageTokens == 0, kernel, ": KV view has zero pageTokens");
        std::size_t need = (contextLen + pageTokens - 1) / pageTokens;
        panicIf(need > numKPages || need > numVPages, kernel,
                ": KV page index out of range");
    }
    if (scratchNeeded != 0)
        panicIf(scratchFloats < scratchNeeded, kernel,
                ": attention scratch too small");
}

const float *
KvView::kAt(std::size_t t, std::size_t h) const
{
    panicIf(t >= contextLen, "KV token index out of range");
    std::size_t page = t / pageTokens;
    std::size_t off = t % pageTokens;
    panicIf(page >= kPages.size(), "KV page index out of range");
    return kPages[page] + (off * nKv + h) * headDim;
}

const float *
KvView::vAt(std::size_t t, std::size_t h) const
{
    panicIf(t >= contextLen, "KV token index out of range");
    std::size_t page = t / pageTokens;
    std::size_t off = t % pageTokens;
    panicIf(page >= vPages.size(), "KV page index out of range");
    return vPages[page] + (off * nKv + h) * headDim;
}

void
gqaDecodeAttention(const float *q, std::size_t nQ, const KvView &kv,
                   float *out, float scale, std::span<float> scratch)
{
    // All bounds checked once here; the loops below touch pages
    // [0, nPages) and tokens [0, ctx) only.
    ShapeContract contract;
    contract.nQ = nQ;
    contract.nKv = kv.nKv;
    contract.headDim = kv.headDim;
    contract.contextLen = kv.contextLen;
    contract.paged = true;
    contract.pageTokens = kv.pageTokens;
    contract.numKPages = kv.kPages.size();
    contract.numVPages = kv.vPages.size();
    contract.scratchFloats = scratch.size();
    contract.scratchNeeded =
        gqaAttnScratchFloats(nQ, kv.nKv, kv.contextLen);
    contract.validate("gqaDecodeAttention");
    std::size_t group = contract.group();
    std::size_t ctx = kv.contextLen;
    std::size_t hd = kv.headDim;
    std::size_t row_stride = kv.nKv * hd;

    // One run per page, page base hoisted; rows live in the pages for
    // the whole call, so no V carry stash is needed.
    auto page_runs = [&](std::span<const float *const> pages,
                         std::size_t kvh) {
        return [&kv, pages, kvh, ctx, hd,
                row_stride](auto &&emit) {
            for (std::size_t p = 0, t = 0; t < ctx; ++p) {
                std::size_t run = std::min(kv.pageTokens, ctx - t);
                emit(pages[p] + kvh * hd, row_stride, run);
                t += run;
            }
        };
    };
    for (std::size_t kvh = 0; kvh < kv.nKv; ++kvh)
        gqaAttentionHeadCore(q + kvh * group * hd, group, ctx, hd,
                             out + kvh * group * hd, scale,
                             scratch.data(), nullptr,
                             page_runs(kv.kPages, kvh),
                             page_runs(kv.vPages, kvh));
}

void
gqaDecodeAttention(const float *q, std::size_t nQ, const KvView &kv,
                   float *out, float scale)
{
    std::vector<float> scratch(
        gqaAttnScratchFloats(nQ, kv.nKv, kv.contextLen));
    gqaDecodeAttention(q, nQ, kv, out, scale, scratch);
}

void
gqaDecodeAttentionBatch(const float *qBatch, std::size_t qStride,
                        std::size_t nQ, std::span<const KvView> kvs,
                        float *outBatch, std::size_t outStride,
                        float scale, ThreadPool *pool,
                        std::span<float> scratch)
{
    if (kvs.empty())
        return;
    // One scratch slot per worker, sized to the largest requirement
    // across the batch.
    std::size_t per_worker = 0;
    for (const KvView &kv : kvs)
        per_worker = std::max(
            per_worker,
            gqaAttnScratchFloats(nQ, kv.nKv, kv.contextLen));
    ThreadPool::forEachWithScratch(
        pool, kvs.size(), per_worker,
        [&](std::size_t begin, std::size_t end, float *buf) {
            for (std::size_t t = begin; t < end; ++t)
                gqaDecodeAttention(qBatch + t * qStride, nQ, kvs[t],
                                   outBatch + t * outStride, scale,
                                   {buf, per_worker});
        },
        scratch);
}

void
gqaPrefillAttention(const float *q, const float *k, const float *v,
                    std::size_t seqLen, std::size_t nQ, std::size_t nKv,
                    std::size_t headDim, float *out, float scale)
{
    // Non-paged kernel: validate head/dim consistency with contextLen
    // pinned to 1 so that a zero-length prompt stays a no-op (the
    // historical behavior) while malformed head counts still panic.
    ShapeContract contract;
    contract.nQ = nQ;
    contract.nKv = nKv;
    contract.headDim = headDim;
    contract.contextLen = seqLen == 0 ? 1 : seqLen;
    contract.validate("gqaPrefillAttention");
    if (seqLen == 0)
        return;
    // Causal attention position i == a decode step over context i+1.
    // Running every position through the decode core keeps the two
    // paths bit-identical and shares the group-fused optimization.
    std::vector<float> scratch(gqaAttnScratchFloats(nQ, nKv, seqLen));
    const float *kp = k;
    const float *vp = v;
    KvView view;
    view.kPages = {&kp, 1};
    view.vPages = {&vp, 1};
    view.pageTokens = seqLen;
    view.nKv = nKv;
    view.headDim = headDim;
    for (std::size_t i = 0; i < seqLen; ++i) {
        view.contextLen = i + 1;
        gqaDecodeAttention(q + i * nQ * headDim, nQ, view,
                           out + i * nQ * headDim, scale, scratch);
    }
}

} // namespace moelight
