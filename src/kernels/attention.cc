#include "kernels/attention.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "kernels/linalg.hh"
#include "kernels/ops.hh"

namespace moelight {

const float *
KvView::kAt(std::size_t t, std::size_t h) const
{
    panicIf(t >= contextLen, "KV token index out of range");
    std::size_t page = t / pageTokens;
    std::size_t off = t % pageTokens;
    panicIf(page >= kPages.size(), "KV page index out of range");
    return kPages[page] + (off * nKv + h) * headDim;
}

const float *
KvView::vAt(std::size_t t, std::size_t h) const
{
    panicIf(t >= contextLen, "KV token index out of range");
    std::size_t page = t / pageTokens;
    std::size_t off = t % pageTokens;
    panicIf(page >= vPages.size(), "KV page index out of range");
    return vPages[page] + (off * nKv + h) * headDim;
}

void
gqaDecodeAttention(const float *q, std::size_t nQ, const KvView &kv,
                   float *out, float scale, std::span<float> scratch)
{
    panicIf(kv.nKv == 0 || nQ % kv.nKv != 0,
            "query heads must be a multiple of KV heads");
    panicIf(kv.contextLen == 0, "attention over empty context");
    panicIf(kv.pageTokens == 0, "KV view has zero pageTokens");
    std::size_t group = nQ / kv.nKv;
    std::size_t ctx = kv.contextLen;
    std::size_t hd = kv.headDim;
    panicIf(scratch.size() < group * ctx, "attention scratch too small");
    // All bounds checked once here; the loops below touch pages
    // [0, nPages) and tokens [0, ctx) only.
    std::size_t n_pages = (ctx + kv.pageTokens - 1) / kv.pageTokens;
    panicIf(n_pages > kv.kPages.size() || n_pages > kv.vPages.size(),
            "KV page index out of range");
    std::size_t row_stride = kv.nKv * hd;

    for (std::size_t kvh = 0; kvh < kv.nKv; ++kvh) {
        const float *qg = q + kvh * group * hd;
        float *og = out + kvh * group * hd;
        // Scores: walk each K page run once, page base hoisted, and
        // score every query head of the group against the K row
        // while it is hot. scratch row g holds head g's logits.
        for (std::size_t p = 0, t = 0; t < ctx; ++p) {
            const float *kbase = kv.kPages[p] + kvh * hd;
            std::size_t run = std::min(kv.pageTokens, ctx - t);
            for (std::size_t r = 0; r < run; ++r) {
                const float *krow = kbase + r * row_stride;
                std::size_t g = 0;
                float s4[4];
                for (; g + 4 <= group; g += 4) {
                    dot4(krow, qg + g * hd, qg + (g + 1) * hd,
                         qg + (g + 2) * hd, qg + (g + 3) * hd, hd, s4);
                    scratch[g * ctx + t + r] = scale * s4[0];
                    scratch[(g + 1) * ctx + t + r] = scale * s4[1];
                    scratch[(g + 2) * ctx + t + r] = scale * s4[2];
                    scratch[(g + 3) * ctx + t + r] = scale * s4[3];
                }
                for (; g < group; ++g)
                    scratch[g * ctx + t + r] =
                        scale * dot(qg + g * hd, krow, hd);
            }
            t += run;
        }
        for (std::size_t g = 0; g < group; ++g)
            softmaxInPlaceFast(scratch.subspan(g * ctx, ctx));
        // Fused weighted-V accumulation: each V row is fetched once
        // and folded into all group output heads. Rows are folded in
        // blocks of four so each output head is read-modify-written
        // once per block, not once per row — the serial store-to-
        // load chain on the accumulator is what dominates otherwise.
        // Blocks are grouped by *global* token index and carried
        // across page boundaries (a block's four row pointers may
        // come from two pages), so the FP summation order — and thus
        // the output bits — is independent of the page layout.
        std::memset(og, 0, group * hd * sizeof(float));
        const float *vrows[4];
        std::size_t base = 0;     // global index of vrows[0]
        std::size_t pending = 0;  // rows buffered, < 4
        for (std::size_t p = 0, t = 0; t < ctx; ++p) {
            const float *vbase = kv.vPages[p] + kvh * hd;
            std::size_t run = std::min(kv.pageTokens, ctx - t);
            for (std::size_t r = 0; r < run; ++r) {
                vrows[pending++] = vbase + r * row_stride;
                if (pending < 4)
                    continue;
                const float *v0 = vrows[0], *v1 = vrows[1],
                            *v2 = vrows[2], *v3 = vrows[3];
                for (std::size_t g = 0; g < group; ++g) {
                    const float *wg = scratch.data() + g * ctx + base;
                    float w0 = wg[0], w1 = wg[1], w2 = wg[2],
                          w3 = wg[3];
                    float *o = og + g * hd;
                    for (std::size_t d = 0; d < hd; ++d)
                        o[d] += w0 * v0[d] + w1 * v1[d] +
                                w2 * v2[d] + w3 * v3[d];
                }
                base += 4;
                pending = 0;
            }
            t += run;
        }
        for (std::size_t i = 0; i < pending; ++i)
            for (std::size_t g = 0; g < group; ++g)
                accumulateScaled(og + g * hd, vrows[i],
                                 scratch[g * ctx + base + i], hd);
    }
}

void
gqaDecodeAttention(const float *q, std::size_t nQ, const KvView &kv,
                   float *out, float scale)
{
    std::vector<float> scratch(
        gqaAttnScratchFloats(nQ, kv.nKv, kv.contextLen));
    gqaDecodeAttention(q, nQ, kv, out, scale, scratch);
}

void
gqaDecodeAttentionBatch(const float *qBatch, std::size_t qStride,
                        std::size_t nQ, std::span<const KvView> kvs,
                        float *outBatch, std::size_t outStride,
                        float scale, ThreadPool *pool,
                        std::span<float> scratch)
{
    if (kvs.empty())
        return;
    // One scratch slot per worker, sized to the largest requirement
    // across the batch.
    std::size_t per_worker = 0;
    for (const KvView &kv : kvs)
        per_worker = std::max(
            per_worker,
            gqaAttnScratchFloats(nQ, kv.nKv, kv.contextLen));
    ThreadPool::forEachWithScratch(
        pool, kvs.size(), per_worker,
        [&](std::size_t begin, std::size_t end, float *buf) {
            for (std::size_t t = begin; t < end; ++t)
                gqaDecodeAttention(qBatch + t * qStride, nQ, kvs[t],
                                   outBatch + t * outStride, scale,
                                   {buf, per_worker});
        },
        scratch);
}

void
gqaPrefillAttention(const float *q, const float *k, const float *v,
                    std::size_t seq, std::size_t nQ, std::size_t nKv,
                    std::size_t headDim, float *out, float scale)
{
    panicIf(nKv == 0 || nQ % nKv != 0,
            "query heads must be a multiple of KV heads");
    // Causal attention position i == a decode step over context i+1.
    // Running every position through the decode core keeps the two
    // paths bit-identical and shares the group-fused optimization.
    std::vector<float> scratch(gqaAttnScratchFloats(nQ, nKv, seq));
    const float *kp = k;
    const float *vp = v;
    KvView view;
    view.kPages = {&kp, 1};
    view.vPages = {&vp, 1};
    view.pageTokens = seq;
    view.nKv = nKv;
    view.headDim = headDim;
    for (std::size_t i = 0; i < seq; ++i) {
        view.contextLen = i + 1;
        gqaDecodeAttention(q + i * nQ * headDim, nQ, view,
                           out + i * nQ * headDim, scale, scratch);
    }
}

} // namespace moelight
