#include "kernels/quant.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace moelight {

std::size_t
quantizedBytes(QuantKind kind, std::size_t n)
{
    return kind == QuantKind::Int8 ? n : (n + 1) / 2;
}

QuantizedBuffer::QuantizedBuffer(std::span<const float> src,
                                 QuantKind kind, std::size_t groupSize)
    : kind_(kind), n_(src.size()), group_(groupSize)
{
    fatalIf(group_ == 0, "quantization group size must be positive");
    fatalIf(n_ == 0, "cannot quantize an empty buffer");
    fatalIf(n_ % group_ != 0,
            "quantized size must be a multiple of the group size");
    if (kind_ == QuantKind::Int4)
        fatalIf(group_ % 2 != 0,
                "int4 group size must be even (packed nibbles)");

    std::size_t groups = n_ / group_;
    scales_.resize(groups);
    data_.resize(quantizedBytes(kind_, n_));

    double qmax = kind_ == QuantKind::Int8 ? 127.0 : 7.0;
    for (std::size_t g = 0; g < groups; ++g) {
        float mx = 0.0f;
        for (std::size_t i = 0; i < group_; ++i)
            mx = std::max(mx, std::abs(src[g * group_ + i]));
        float scale = mx > 0.0f
            ? mx / static_cast<float>(qmax)
            : 1.0f;
        scales_[g] = scale;
        for (std::size_t i = 0; i < group_; ++i) {
            std::size_t idx = g * group_ + i;
            int q = static_cast<int>(
                std::lround(src[idx] / scale));
            q = std::clamp(q, -static_cast<int>(qmax),
                           static_cast<int>(qmax));
            if (kind_ == QuantKind::Int8) {
                data_[idx] = static_cast<std::uint8_t>(
                    static_cast<std::int8_t>(q));
            } else {
                std::uint8_t nib =
                    static_cast<std::uint8_t>(q & 0xF);
                if (idx % 2 == 0)
                    data_[idx / 2] = nib;
                else
                    data_[idx / 2] |= static_cast<std::uint8_t>(
                        nib << 4);
            }
        }
    }
}

namespace {

/** Sign-extend a 4-bit two's-complement nibble. */
int
nibbleToInt(std::uint8_t nib)
{
    int v = nib & 0xF;
    return v >= 8 ? v - 16 : v;
}

} // namespace

void
QuantizedBuffer::dequantizeRange(std::size_t offset, std::size_t count,
                                 std::span<float> dst) const
{
    panicIf(offset % group_ != 0 || count % group_ != 0,
            "dequantizeRange must be group-aligned");
    panicIf(offset + count > n_, "dequantize range out of bounds");
    panicIf(dst.size() < count, "dequantize destination too small");
    for (std::size_t i = 0; i < count; ++i) {
        std::size_t idx = offset + i;
        float scale = scales_[idx / group_];
        int q;
        if (kind_ == QuantKind::Int8) {
            q = static_cast<std::int8_t>(data_[idx]);
        } else {
            std::uint8_t byte = data_[idx / 2];
            q = nibbleToInt(idx % 2 == 0
                                ? byte & 0xF
                                : static_cast<std::uint8_t>(byte >> 4));
        }
        dst[i] = scale * static_cast<float>(q);
    }
}

void
QuantizedBuffer::dequantize(std::span<float> dst) const
{
    dequantizeRange(0, n_, dst);
}

std::size_t
QuantizedBuffer::storageBytes() const
{
    return data_.size() + scales_.size() * sizeof(float);
}

double
QuantizedBuffer::errorBound(QuantKind kind, double maxAbs)
{
    double qmax = kind == QuantKind::Int8 ? 127.0 : 7.0;
    // Round-to-nearest: half a quantization step.
    return 0.5 * maxAbs / qmax + 1e-7;
}

void
gqaDecodeAttentionQuant(const float *q, std::size_t nQ,
                        std::span<const QuantizedBuffer> kPages,
                        std::span<const QuantizedBuffer> vPages,
                        std::size_t pageTokens, std::size_t contextLen,
                        std::size_t nKv, std::size_t headDim,
                        float *out, float scale)
{
    panicIf(kPages.size() != vPages.size(),
            "mismatched quantized K/V page counts");
    panicIf(contextLen == 0, "attention over empty context");
    std::size_t page_floats = pageTokens * nKv * headDim;
    std::vector<float> kbuf(kPages.size() * page_floats);
    std::vector<float> vbuf(vPages.size() * page_floats);
    std::vector<const float *> kp(kPages.size()), vp(vPages.size());
    for (std::size_t p = 0; p < kPages.size(); ++p) {
        panicIf(kPages[p].size() != page_floats ||
                    vPages[p].size() != page_floats,
                "quantized KV page has wrong geometry");
        kPages[p].dequantize(
            {kbuf.data() + p * page_floats, page_floats});
        vPages[p].dequantize(
            {vbuf.data() + p * page_floats, page_floats});
        kp[p] = kbuf.data() + p * page_floats;
        vp[p] = vbuf.data() + p * page_floats;
    }
    KvView view;
    view.kPages = kp;
    view.vPages = vp;
    view.pageTokens = pageTokens;
    view.contextLen = contextLen;
    view.nKv = nKv;
    view.headDim = headDim;
    gqaDecodeAttention(q, nQ, view, out, scale);
}

} // namespace moelight
