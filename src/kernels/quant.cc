#include "kernels/quant.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "kernels/attention_core.hh"
#include "kernels/linalg.hh"
#include "kernels/ops.hh"
#include "kernels/simd/simd.hh"

namespace moelight {

std::size_t
quantizedBytes(QuantKind kind, std::size_t n)
{
    return kind == QuantKind::Int8 ? n : (n + 1) / 2;
}

QuantizedBuffer::QuantizedBuffer(std::span<const float> src,
                                 QuantKind kind, std::size_t groupSize)
    : kind_(kind), n_(src.size()), group_(groupSize)
{
    fatalIf(group_ == 0, "quantization group size must be positive");
    fatalIf(n_ == 0, "cannot quantize an empty buffer");
    fatalIf(n_ % group_ != 0,
            "quantized size must be a multiple of the group size");
    if (kind_ == QuantKind::Int4)
        fatalIf(group_ % 2 != 0,
                "int4 group size must be even (packed nibbles)");

    std::size_t groups = n_ / group_;
    scales_.resize(groups);
    data_.resize(quantizedBytes(kind_, n_));

    double qmax = kind_ == QuantKind::Int8 ? 127.0 : 7.0;
    for (std::size_t g = 0; g < groups; ++g) {
        float mx = 0.0f;
        for (std::size_t i = 0; i < group_; ++i)
            mx = std::max(mx, std::abs(src[g * group_ + i]));
        float scale = mx > 0.0f
            ? mx / static_cast<float>(qmax)
            : 1.0f;
        scales_[g] = scale;
        for (std::size_t i = 0; i < group_; ++i) {
            std::size_t idx = g * group_ + i;
            int q = static_cast<int>(
                std::lround(src[idx] / scale));
            q = std::clamp(q, -static_cast<int>(qmax),
                           static_cast<int>(qmax));
            if (kind_ == QuantKind::Int8) {
                data_[idx] = static_cast<std::uint8_t>(
                    static_cast<std::int8_t>(q));
            } else {
                std::uint8_t nib =
                    static_cast<std::uint8_t>(q & 0xF);
                if (idx % 2 == 0)
                    data_[idx / 2] = nib;
                else
                    data_[idx / 2] |= static_cast<std::uint8_t>(
                        nib << 4);
            }
        }
    }
}

void
QuantizedBuffer::dequantizeRange(std::size_t offset, std::size_t count,
                                 std::span<float> dst) const
{
    panicIf(offset % group_ != 0 || count % group_ != 0,
            "dequantizeRange must be group-aligned");
    panicIf(offset + count > n_, "dequantize range out of bounds");
    panicIf(dst.size() < count, "dequantize destination too small");
    // Per-group gather-dequant through the dispatched SIMD backend.
    // Every backend computes scale * float(q) per element — one exact
    // conversion and one multiply — so the output is bit-identical
    // across backends (unlike the reassociating dot/softmax ops).
    const simd::VecOps &vo = simd::ops();
    if (kind_ == QuantKind::Int8) {
        const std::uint8_t *src = data_.data() + offset;
        for (std::size_t g = 0; g < count; g += group_)
            vo.dequantGroupI8(src + g, scales_[(offset + g) / group_],
                              dst.data() + g, group_);
    } else {
        // group_ is even, so a group-aligned offset is byte-aligned.
        const std::uint8_t *src = data_.data() + offset / 2;
        for (std::size_t g = 0; g < count; g += group_)
            vo.dequantGroupI4(src + g / 2,
                              scales_[(offset + g) / group_],
                              dst.data() + g, group_);
    }
}

void
QuantizedBuffer::dequantizeRows(std::size_t rowOff,
                                std::size_t rowStride,
                                std::size_t rows, std::size_t count,
                                float *dst) const
{
    if (rows == 0)
        return;
    panicIf(rowOff % group_ != 0 || count % group_ != 0 ||
                rowStride % group_ != 0,
            "dequantizeRows must be group-aligned");
    panicIf(rowOff + (rows - 1) * rowStride + count > n_,
            "dequantize rows out of bounds");
    std::size_t gpr = count / group_;        // groups per row
    std::size_t gstep = rowStride / group_;  // group index step
    std::size_t g0 = rowOff / group_;
    const simd::VecOps &vo = simd::ops();
    if (kind_ == QuantKind::Int8) {
        for (std::size_t r = 0; r < rows; ++r) {
            const std::uint8_t *src =
                data_.data() + rowOff + r * rowStride;
            const float *sc = scales_.data() + g0 + r * gstep;
            float *d = dst + r * count;
            for (std::size_t g = 0; g < gpr; ++g)
                vo.dequantGroupI8(src + g * group_, sc[g],
                                  d + g * group_, group_);
        }
    } else {
        // group_ is even, so group-aligned offsets are byte-aligned.
        for (std::size_t r = 0; r < rows; ++r) {
            const std::uint8_t *src =
                data_.data() + (rowOff + r * rowStride) / 2;
            const float *sc = scales_.data() + g0 + r * gstep;
            float *d = dst + r * count;
            std::size_t half = group_ / 2;
            for (std::size_t g = 0; g < gpr; ++g)
                vo.dequantGroupI4(src + g * half, sc[g],
                                  d + g * group_, group_);
        }
    }
}

void
QuantizedBuffer::dequantize(std::span<float> dst) const
{
    dequantizeRange(0, n_, dst);
}

std::size_t
QuantizedBuffer::storageBytes() const
{
    return data_.size() + scales_.size() * sizeof(float);
}

double
QuantizedBuffer::errorBound(QuantKind kind, double maxAbs)
{
    double qmax = kind == QuantKind::Int8 ? 127.0 : 7.0;
    // Round-to-nearest: half a quantization step.
    return 0.5 * maxAbs / qmax + 1e-7;
}

namespace {

/**
 * Check a quantized page list's geometry: whole tokens per page,
 * every page full except possibly the last, groups row-aligned.
 * Returns the total token count stored in the pages.
 */
std::size_t
checkQuantPages(std::span<const QuantizedBuffer *const> kPages,
                std::span<const QuantizedBuffer *const> vPages,
                std::size_t pageTokens, std::size_t nKv,
                std::size_t headDim)
{
    panicIf(kPages.size() != vPages.size(),
            "mismatched quantized K/V page counts");
    std::size_t row_floats = nKv * headDim;
    std::size_t tokens = 0;
    for (std::size_t p = 0; p < kPages.size(); ++p) {
        panicIf(kPages[p] == nullptr || vPages[p] == nullptr,
                "null quantized KV page");
        panicIf(kPages[p]->size() != vPages[p]->size(),
                "mismatched quantized K/V page sizes");
        panicIf(kPages[p]->size() % row_floats != 0,
                "quantized KV page must hold whole tokens");
        std::size_t page_tokens = kPages[p]->size() / row_floats;
        panicIf(page_tokens == 0 || page_tokens > pageTokens,
                "quantized KV page has wrong geometry");
        panicIf(p + 1 < kPages.size() && page_tokens != pageTokens,
                "only the tail quantized KV page may be partial");
        panicIf(headDim % kPages[p]->groupSize() != 0 ||
                    headDim % vPages[p]->groupSize() != 0,
                "quant group size must divide headDim");
        tokens += page_tokens;
    }
    return tokens;
}

} // namespace

void
gqaDecodeAttentionQuantFused(const float *q, std::size_t nQ,
                             const QuantKvView &kv, float *out,
                             float scale, std::span<float> scratch)
{
    // Shared shape contract once per call; the paged leg is off
    // because quant pages carry their own sizes — checkQuantPages
    // below is the quant-specific equivalent.
    ShapeContract contract;
    contract.nQ = nQ;
    contract.nKv = kv.nKv;
    contract.headDim = kv.headDim;
    contract.contextLen = kv.contextLen;
    contract.scratchFloats = scratch.size();
    contract.scratchNeeded = gqaQuantAttnScratchFloats(
        nQ, kv.nKv, kv.contextLen, kv.headDim, kv.pageTokens);
    contract.validate("gqaDecodeAttentionQuantFused");
    panicIf(kv.pageTokens == 0, "quant KV view has zero pageTokens");
    panicIf(kv.openTokens > 0 &&
                (kv.openK == nullptr || kv.openV == nullptr),
            "quant KV view has open tokens but no open page");
    std::size_t quant_tokens = checkQuantPages(
        kv.kPages, kv.vPages, kv.pageTokens, kv.nKv, kv.headDim);
    panicIf(quant_tokens + kv.openTokens != kv.contextLen,
            "quant KV view context length does not match its pages");

    std::size_t group = contract.group();
    std::size_t ctx = kv.contextLen;
    std::size_t hd = kv.headDim;
    std::size_t stash_rows = std::min(kv.pageTokens, ctx);
    float *scores = scratch.data();
    float *kstash = scores + group * ctx;       // [stash_rows, hd]
    float *vstash = kstash + stash_rows * hd;   // [stash_rows, hd]
    float *vcarry = vstash + stash_rows * hd;   // [4, hd]
    std::size_t row_floats = kv.nKv * hd;

    // Providers: gather-dequantize this KV head's rows of each closed
    // page into the L1-resident stash and emit it, then emit the
    // float open page in place. The stash is reused per page, so the
    // core's V carry stash preserves a straddling block's pending
    // rows across refills.
    auto quant_runs = [&](std::span<const QuantizedBuffer *const>
                              pages,
                          const float *open, float *stash,
                          std::size_t kvh) {
        return [&kv, pages, open, stash, kvh, hd,
                row_floats](auto &&emit) {
            for (const QuantizedBuffer *p : pages) {
                std::size_t run = p->size() / row_floats;
                p->dequantizeRows(kvh * hd, row_floats, run, hd,
                                  stash);
                emit(stash, hd, run);
            }
            if (kv.openTokens > 0)
                emit(open + kvh * hd, row_floats, kv.openTokens);
        };
    };
    for (std::size_t kvh = 0; kvh < kv.nKv; ++kvh)
        gqaAttentionHeadCore(
            q + kvh * group * hd, group, ctx, hd,
            out + kvh * group * hd, scale, scores, vcarry,
            quant_runs(kv.kPages, kv.openK, kstash, kvh),
            quant_runs(kv.vPages, kv.openV, vstash, kvh));
}

void
gqaDecodeAttentionQuantFused(const float *q, std::size_t nQ,
                             const QuantKvView &kv, float *out,
                             float scale)
{
    std::vector<float> scratch(gqaQuantAttnScratchFloats(
        nQ, kv.nKv, kv.contextLen, kv.headDim, kv.pageTokens));
    gqaDecodeAttentionQuantFused(q, nQ, kv, out, scale, scratch);
}

void
gqaDecodeAttentionQuantBatch(const float *qBatch, std::size_t qStride,
                             std::size_t nQ,
                             std::span<const QuantKvView> kvs,
                             float *outBatch, std::size_t outStride,
                             float scale, ThreadPool *pool,
                             std::span<float> scratch)
{
    if (kvs.empty())
        return;
    std::size_t per_worker = 0;
    for (const QuantKvView &kv : kvs)
        per_worker = std::max(
            per_worker,
            gqaQuantAttnScratchFloats(nQ, kv.nKv, kv.contextLen,
                                      kv.headDim, kv.pageTokens));
    ThreadPool::forEachWithScratch(
        pool, kvs.size(), per_worker,
        [&](std::size_t begin, std::size_t end, float *buf) {
            for (std::size_t t = begin; t < end; ++t)
                gqaDecodeAttentionQuantFused(
                    qBatch + t * qStride, nQ, kvs[t],
                    outBatch + t * outStride, scale,
                    {buf, per_worker});
        },
        scratch);
}

void
gqaPrefillAttentionQuantFused(const float *q, const float *k,
                              const float *v, std::size_t seqLen,
                              std::size_t nQ, const QuantKvView &kv,
                              float *out, float scale,
                              std::span<float> scratch,
                              ThreadPool *pool)
{
    // Shared shape contract once per call (contextLen == seqLen here,
    // enforced just below); scratch is not part of the contract since
    // forEachWithScratch falls back to allocating when the caller's
    // span is too small.
    ShapeContract contract;
    contract.nQ = nQ;
    contract.nKv = kv.nKv;
    contract.headDim = kv.headDim;
    contract.contextLen = seqLen;
    contract.validate("gqaPrefillAttentionQuantFused");
    panicIf(kv.pageTokens == 0, "quant KV view has zero pageTokens");
    panicIf(seqLen != kv.contextLen,
            "prefill view must cover exactly the sequence");
    std::size_t quant_tokens = checkQuantPages(
        kv.kPages, kv.vPages, kv.pageTokens, kv.nKv, kv.headDim);
    panicIf(quant_tokens + kv.openTokens != kv.contextLen,
            "quant KV view context length does not match its pages");
    // The kernel replays the causal append walk, so the view must be
    // in the exact state the cache reaches after appending seqLen
    // tokens: every closed page full, the remainder open (float).
    panicIf(quant_tokens != kv.pageTokens * (seqLen / kv.pageTokens),
            "prefill quant view must hold exactly the closed full "
            "pages of a causal append walk");

    std::size_t group = contract.group();
    std::size_t hd = kv.headDim;
    std::size_t row_floats = kv.nKv * hd;
    std::size_t per_worker = gqaQuantPrefillAttnScratchFloats(
        nQ, kv.nKv, seqLen, hd, kv.pageTokens);

    // One KV head's whole prefill — dequant stash fill plus every
    // causal position through the shared core — is independent of
    // the other heads' (disjoint out columns, private scratch), so
    // heads fan across the pool with one scratch slot per worker.
    // Per-head arithmetic is untouched, which keeps the pooled walk
    // bit-identical to the serial one.
    auto head_prefill = [&](std::size_t kvh, float *buf) {
        float *scores = buf;
        float *kstash = scores + group * seqLen;  // [quant_tokens, hd]
        float *vstash = kstash + quant_tokens * hd;

        // Dequantize this KV head's rows of every closed page ONCE —
        // the whole point of the prefill variant: the per-token
        // decode walk re-dequantizes each closed page at every later
        // position, O(seqLen) redundant passes over the same bytes.
        std::size_t t = 0;
        for (std::size_t p = 0; p < kv.kPages.size(); ++p) {
            std::size_t run = kv.kPages[p]->size() / row_floats;
            kv.kPages[p]->dequantizeRows(kvh * hd, row_floats, run,
                                         hd, kstash + t * hd);
            kv.vPages[p]->dequantizeRows(kvh * hd, row_floats, run,
                                         hd, vstash + t * hd);
            t += run;
        }

        // Every causal position runs through the shared core over the
        // persistent stash plus the float rows that were still
        // unquantized when the walk reached that position: at
        // position i the cache had closed floor((i+1)/pageTokens)
        // pages, the rest of tokens [0, i] sat in the float open
        // page — exactly rows [qt, i] of the caller's k/v. Rows
        // persist across emits, so no V carry stash is needed.
        for (std::size_t i = 0; i < seqLen; ++i) {
            std::size_t qt =
                kv.pageTokens * ((i + 1) / kv.pageTokens);
            auto runs = [&](const float *stash, const float *open) {
                // Form the tail pointer only when the tail is
                // non-empty: at qt == i + 1 it would point past the
                // end of the caller's arrays.
                const float *tail =
                    i + 1 > qt ? open + qt * row_floats + kvh * hd
                               : nullptr;
                return [stash, tail, qt, i, hd,
                        row_floats](auto &&emit) {
                    if (qt > 0)
                        emit(stash, hd, qt);
                    if (tail != nullptr)
                        emit(tail, row_floats, i + 1 - qt);
                };
            };
            gqaAttentionHeadCore(
                q + i * nQ * hd + kvh * group * hd, group, i + 1, hd,
                out + i * nQ * hd + kvh * group * hd, scale, scores,
                nullptr, runs(kstash, k), runs(vstash, v));
        }
    };
    ThreadPool::forEachWithScratch(
        pool, kv.nKv, per_worker,
        [&](std::size_t begin, std::size_t end, float *buf) {
            for (std::size_t kvh = begin; kvh < end; ++kvh)
                head_prefill(kvh, buf);
        },
        scratch);
}

QuantKvView
quantPrefillWalkView(const QuantKvView &kv, const float *k,
                     const float *v, std::size_t i)
{
    panicIf(i >= kv.contextLen, "walk position out of range");
    panicIf(kv.pageTokens == 0, "quant KV view has zero pageTokens");
    std::size_t row = kv.nKv * kv.headDim;
    std::size_t pages = (i + 1) / kv.pageTokens;
    std::size_t qt = kv.pageTokens * pages;
    panicIf(pages > kv.kPages.size() || pages > kv.vPages.size(),
            "walk view needs more closed pages than the final state "
            "holds (non-walk final view?)");
    QuantKvView vi;
    vi.kPages = kv.kPages.first(pages);
    vi.vPages = kv.vPages.first(pages);
    if (i + 1 > qt) {
        vi.openK = k + qt * row;
        vi.openV = v + qt * row;
        vi.openTokens = i + 1 - qt;
    }
    vi.pageTokens = kv.pageTokens;
    vi.contextLen = i + 1;
    vi.nKv = kv.nKv;
    vi.headDim = kv.headDim;
    return vi;
}

void
gqaPrefillAttentionQuantFused(const float *q, const float *k,
                              const float *v, std::size_t seqLen,
                              std::size_t nQ, const QuantKvView &kv,
                              float *out, float scale)
{
    std::vector<float> scratch(gqaQuantPrefillAttnScratchFloats(
        nQ, kv.nKv, seqLen, kv.headDim, kv.pageTokens));
    gqaPrefillAttentionQuantFused(q, k, v, seqLen, nQ, kv, out,
                                  scale, scratch);
}

void
gqaDecodeAttentionQuant(const float *q, std::size_t nQ,
                        std::span<const QuantizedBuffer *const> kPages,
                        std::span<const QuantizedBuffer *const> vPages,
                        std::size_t pageTokens, std::size_t contextLen,
                        std::size_t nKv, std::size_t headDim,
                        float *out, float scale)
{
    panicIf(contextLen == 0, "attention over empty context");
    std::size_t tokens =
        checkQuantPages(kPages, vPages, pageTokens, nKv, headDim);
    panicIf(contextLen > tokens,
            "context length exceeds quantized KV pages");
    std::size_t row_floats = nKv * headDim;
    std::size_t total_floats = tokens * row_floats;
    std::vector<float> kbuf(total_floats);
    std::vector<float> vbuf(total_floats);
    std::vector<const float *> kp(kPages.size()), vp(vPages.size());
    std::size_t off = 0;
    for (std::size_t p = 0; p < kPages.size(); ++p) {
        std::size_t page_floats = kPages[p]->size();
        kPages[p]->dequantize({kbuf.data() + off, page_floats});
        vPages[p]->dequantize({vbuf.data() + off, page_floats});
        kp[p] = kbuf.data() + off;
        vp[p] = vbuf.data() + off;
        off += page_floats;
    }
    KvView view;
    view.kPages = kp;
    view.vPages = vp;
    view.pageTokens = pageTokens;
    view.contextLen = contextLen;
    view.nKv = nKv;
    view.headDim = headDim;
    gqaDecodeAttention(q, nQ, view, out, scale);
}

} // namespace moelight
