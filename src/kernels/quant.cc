#include "kernels/quant.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "kernels/linalg.hh"
#include "kernels/ops.hh"

namespace moelight {

std::size_t
quantizedBytes(QuantKind kind, std::size_t n)
{
    return kind == QuantKind::Int8 ? n : (n + 1) / 2;
}

QuantizedBuffer::QuantizedBuffer(std::span<const float> src,
                                 QuantKind kind, std::size_t groupSize)
    : kind_(kind), n_(src.size()), group_(groupSize)
{
    fatalIf(group_ == 0, "quantization group size must be positive");
    fatalIf(n_ == 0, "cannot quantize an empty buffer");
    fatalIf(n_ % group_ != 0,
            "quantized size must be a multiple of the group size");
    if (kind_ == QuantKind::Int4)
        fatalIf(group_ % 2 != 0,
                "int4 group size must be even (packed nibbles)");

    std::size_t groups = n_ / group_;
    scales_.resize(groups);
    data_.resize(quantizedBytes(kind_, n_));

    double qmax = kind_ == QuantKind::Int8 ? 127.0 : 7.0;
    for (std::size_t g = 0; g < groups; ++g) {
        float mx = 0.0f;
        for (std::size_t i = 0; i < group_; ++i)
            mx = std::max(mx, std::abs(src[g * group_ + i]));
        float scale = mx > 0.0f
            ? mx / static_cast<float>(qmax)
            : 1.0f;
        scales_[g] = scale;
        for (std::size_t i = 0; i < group_; ++i) {
            std::size_t idx = g * group_ + i;
            int q = static_cast<int>(
                std::lround(src[idx] / scale));
            q = std::clamp(q, -static_cast<int>(qmax),
                           static_cast<int>(qmax));
            if (kind_ == QuantKind::Int8) {
                data_[idx] = static_cast<std::uint8_t>(
                    static_cast<std::int8_t>(q));
            } else {
                std::uint8_t nib =
                    static_cast<std::uint8_t>(q & 0xF);
                if (idx % 2 == 0)
                    data_[idx / 2] = nib;
                else
                    data_[idx / 2] |= static_cast<std::uint8_t>(
                        nib << 4);
            }
        }
    }
}

namespace {

/** Sign-extend a 4-bit two's-complement nibble (branchless). */
inline int
nibbleToInt(std::uint8_t nib)
{
    return ((nib & 0xF) ^ 8) - 8;
}

} // namespace

void
QuantizedBuffer::dequantizeRange(std::size_t offset, std::size_t count,
                                 std::span<float> dst) const
{
    panicIf(offset % group_ != 0 || count % group_ != 0,
            "dequantizeRange must be group-aligned");
    panicIf(offset + count > n_, "dequantize range out of bounds");
    panicIf(dst.size() < count, "dequantize destination too small");
    // Kind branch hoisted out of the loops so the per-group bodies
    // auto-vectorize; both bodies compute scale * float(q), the same
    // expression element-wise as the original per-element form.
    if (kind_ == QuantKind::Int8) {
        const std::uint8_t *src = data_.data() + offset;
        for (std::size_t g = 0; g < count; g += group_) {
            float s = scales_[(offset + g) / group_];
            for (std::size_t i = 0; i < group_; ++i)
                dst[g + i] = s * static_cast<float>(
                                     static_cast<std::int8_t>(
                                         src[g + i]));
        }
    } else {
        // group_ is even, so a group-aligned offset is byte-aligned.
        const std::uint8_t *src = data_.data() + offset / 2;
        for (std::size_t g = 0; g < count; g += group_) {
            float s = scales_[(offset + g) / group_];
            for (std::size_t i = 0; i < group_; i += 2) {
                std::uint8_t byte = src[(g + i) / 2];
                dst[g + i] =
                    s * static_cast<float>(nibbleToInt(byte));
                dst[g + i + 1] =
                    s * static_cast<float>(nibbleToInt(
                            static_cast<std::uint8_t>(byte >> 4)));
            }
        }
    }
}

void
QuantizedBuffer::dequantizeRows(std::size_t rowOff,
                                std::size_t rowStride,
                                std::size_t rows, std::size_t count,
                                float *dst) const
{
    if (rows == 0)
        return;
    panicIf(rowOff % group_ != 0 || count % group_ != 0 ||
                rowStride % group_ != 0,
            "dequantizeRows must be group-aligned");
    panicIf(rowOff + (rows - 1) * rowStride + count > n_,
            "dequantize rows out of bounds");
    std::size_t gpr = count / group_;        // groups per row
    std::size_t gstep = rowStride / group_;  // group index step
    std::size_t g0 = rowOff / group_;
    if (kind_ == QuantKind::Int8) {
        for (std::size_t r = 0; r < rows; ++r) {
            const std::uint8_t *src =
                data_.data() + rowOff + r * rowStride;
            const float *sc = scales_.data() + g0 + r * gstep;
            float *d = dst + r * count;
            for (std::size_t g = 0; g < gpr; ++g) {
                float s = sc[g];
                const std::uint8_t *sg = src + g * group_;
                float *dg = d + g * group_;
                for (std::size_t i = 0; i < group_; ++i)
                    dg[i] = s * static_cast<float>(
                                    static_cast<std::int8_t>(sg[i]));
            }
        }
    } else {
        // group_ is even, so group-aligned offsets are byte-aligned.
        for (std::size_t r = 0; r < rows; ++r) {
            const std::uint8_t *src =
                data_.data() + (rowOff + r * rowStride) / 2;
            const float *sc = scales_.data() + g0 + r * gstep;
            float *d = dst + r * count;
            std::size_t half = group_ / 2;
            for (std::size_t g = 0; g < gpr; ++g) {
                float s = sc[g];
                const std::uint8_t *sg = src + g * half;
                float *dg = d + g * group_;
                for (std::size_t b = 0; b < half; ++b) {
                    std::uint8_t byte = sg[b];
                    dg[2 * b] = s * static_cast<float>(
                                        nibbleToInt(byte));
                    dg[2 * b + 1] =
                        s * static_cast<float>(nibbleToInt(
                                static_cast<std::uint8_t>(
                                    byte >> 4)));
                }
            }
        }
    }
}

void
QuantizedBuffer::dequantize(std::span<float> dst) const
{
    dequantizeRange(0, n_, dst);
}

std::size_t
QuantizedBuffer::storageBytes() const
{
    return data_.size() + scales_.size() * sizeof(float);
}

double
QuantizedBuffer::errorBound(QuantKind kind, double maxAbs)
{
    double qmax = kind == QuantKind::Int8 ? 127.0 : 7.0;
    // Round-to-nearest: half a quantization step.
    return 0.5 * maxAbs / qmax + 1e-7;
}

namespace {

/**
 * Check a quantized page list's geometry: whole tokens per page,
 * every page full except possibly the last, groups row-aligned.
 * Returns the total token count stored in the pages.
 */
std::size_t
checkQuantPages(std::span<const QuantizedBuffer> kPages,
                std::span<const QuantizedBuffer> vPages,
                std::size_t pageTokens, std::size_t nKv,
                std::size_t headDim)
{
    panicIf(kPages.size() != vPages.size(),
            "mismatched quantized K/V page counts");
    std::size_t row_floats = nKv * headDim;
    std::size_t tokens = 0;
    for (std::size_t p = 0; p < kPages.size(); ++p) {
        panicIf(kPages[p].size() != vPages[p].size(),
                "mismatched quantized K/V page sizes");
        panicIf(kPages[p].size() % row_floats != 0,
                "quantized KV page must hold whole tokens");
        std::size_t page_tokens = kPages[p].size() / row_floats;
        panicIf(page_tokens == 0 || page_tokens > pageTokens,
                "quantized KV page has wrong geometry");
        panicIf(p + 1 < kPages.size() && page_tokens != pageTokens,
                "only the tail quantized KV page may be partial");
        panicIf(headDim % kPages[p].groupSize() != 0 ||
                    headDim % vPages[p].groupSize() != 0,
                "quant group size must divide headDim");
        tokens += page_tokens;
    }
    return tokens;
}

} // namespace

void
gqaDecodeAttentionQuantFused(const float *q, std::size_t nQ,
                             const QuantKvView &kv, float *out,
                             float scale, std::span<float> scratch)
{
    panicIf(kv.nKv == 0 || nQ % kv.nKv != 0,
            "query heads must be a multiple of KV heads");
    panicIf(kv.contextLen == 0, "attention over empty context");
    panicIf(kv.pageTokens == 0, "quant KV view has zero pageTokens");
    panicIf(kv.openTokens > 0 &&
                (kv.openK == nullptr || kv.openV == nullptr),
            "quant KV view has open tokens but no open page");
    std::size_t quant_tokens = checkQuantPages(
        kv.kPages, kv.vPages, kv.pageTokens, kv.nKv, kv.headDim);
    panicIf(quant_tokens + kv.openTokens != kv.contextLen,
            "quant KV view context length does not match its pages");

    std::size_t group = nQ / kv.nKv;
    std::size_t ctx = kv.contextLen;
    std::size_t hd = kv.headDim;
    panicIf(scratch.size() < gqaQuantAttnScratchFloats(
                                 nQ, kv.nKv, ctx, hd, kv.pageTokens),
            "quant attention scratch too small");
    std::size_t stash_rows = std::min(kv.pageTokens, ctx);
    float *scores = scratch.data();
    float *kstash = scores + group * ctx;       // [stash_rows, hd]
    float *vstash = kstash + stash_rows * hd;   // [stash_rows, hd]
    float *vcarry = vstash + stash_rows * hd;   // [4, hd]
    std::size_t row_floats = kv.nKv * hd;

    for (std::size_t kvh = 0; kvh < kv.nKv; ++kvh) {
        const float *qg = q + kvh * group * hd;
        float *og = out + kvh * group * hd;

        // Score pass: gather-dequantize this KV head's rows of each
        // page into the L1-resident stash, then score all group
        // heads against each row while it is hot — the same per-row
        // arithmetic and score layout as the float kernel, so the
        // output is bit-identical to attending over materialized
        // float pages.
        auto score_row = [&](const float *krow, std::size_t t) {
            std::size_t g = 0;
            float s4[4];
            for (; g + 4 <= group; g += 4) {
                dot4(krow, qg + g * hd, qg + (g + 1) * hd,
                     qg + (g + 2) * hd, qg + (g + 3) * hd, hd, s4);
                scores[g * ctx + t] = scale * s4[0];
                scores[(g + 1) * ctx + t] = scale * s4[1];
                scores[(g + 2) * ctx + t] = scale * s4[2];
                scores[(g + 3) * ctx + t] = scale * s4[3];
            }
            for (; g < group; ++g)
                scores[g * ctx + t] = scale * dot(qg + g * hd, krow, hd);
        };
        std::size_t t = 0;
        for (const QuantizedBuffer &kp : kv.kPages) {
            std::size_t run = kp.size() / row_floats;
            kp.dequantizeRows(kvh * hd, row_floats, run, hd, kstash);
            for (std::size_t r = 0; r < run; ++r)
                score_row(kstash + r * hd, t + r);
            t += run;
        }
        for (std::size_t r = 0; r < kv.openTokens; ++r)
            score_row(kv.openK + (r * kv.nKv + kvh) * hd, t + r);

        for (std::size_t g = 0; g < group; ++g)
            softmaxInPlaceFast(
                std::span<float>(scores + g * ctx, ctx));

        // V accumulation: rows fold four-at-a-time into all group
        // heads, blocks indexed by global token and carried across
        // page boundaries (matching the float kernel's summation
        // order). Quantized pages gather-dequantize into the stash;
        // open-page rows are used in place. Pending rows of a
        // straddling block are preserved in the carry stash before
        // the page stash is refilled.
        std::memset(og, 0, group * hd * sizeof(float));
        const float *vrows[4];
        std::size_t base = 0;     // global index of vrows[0]
        std::size_t pending = 0;  // rows buffered, < 4
        auto push_row = [&](const float *vrow) {
            vrows[pending++] = vrow;
            if (pending < 4)
                return;
            const float *v0 = vrows[0], *v1 = vrows[1],
                        *v2 = vrows[2], *v3 = vrows[3];
            for (std::size_t g = 0; g < group; ++g) {
                const float *wg = scores + g * ctx + base;
                float w0 = wg[0], w1 = wg[1], w2 = wg[2], w3 = wg[3];
                float *o = og + g * hd;
                for (std::size_t d = 0; d < hd; ++d)
                    o[d] += w0 * v0[d] + w1 * v1[d] + w2 * v2[d] +
                            w3 * v3[d];
            }
            base += 4;
            pending = 0;
        };
        for (const QuantizedBuffer &vp : kv.vPages) {
            std::size_t run = vp.size() / row_floats;
            for (std::size_t i = 0; i < pending; ++i)
                if (vrows[i] >= vstash &&
                    vrows[i] < vstash + stash_rows * hd) {
                    std::memcpy(vcarry + i * hd, vrows[i],
                                hd * sizeof(float));
                    vrows[i] = vcarry + i * hd;
                }
            vp.dequantizeRows(kvh * hd, row_floats, run, hd, vstash);
            for (std::size_t r = 0; r < run; ++r)
                push_row(vstash + r * hd);
        }
        for (std::size_t r = 0; r < kv.openTokens; ++r)
            push_row(kv.openV + (r * kv.nKv + kvh) * hd);
        for (std::size_t i = 0; i < pending; ++i)
            for (std::size_t g = 0; g < group; ++g)
                accumulateScaled(og + g * hd, vrows[i],
                                 scores[g * ctx + base + i], hd);
    }
}

void
gqaDecodeAttentionQuantFused(const float *q, std::size_t nQ,
                             const QuantKvView &kv, float *out,
                             float scale)
{
    std::vector<float> scratch(gqaQuantAttnScratchFloats(
        nQ, kv.nKv, kv.contextLen, kv.headDim, kv.pageTokens));
    gqaDecodeAttentionQuantFused(q, nQ, kv, out, scale, scratch);
}

void
gqaDecodeAttentionQuantBatch(const float *qBatch, std::size_t qStride,
                             std::size_t nQ,
                             std::span<const QuantKvView> kvs,
                             float *outBatch, std::size_t outStride,
                             float scale, ThreadPool *pool,
                             std::span<float> scratch)
{
    if (kvs.empty())
        return;
    std::size_t per_worker = 0;
    for (const QuantKvView &kv : kvs)
        per_worker = std::max(
            per_worker,
            gqaQuantAttnScratchFloats(nQ, kv.nKv, kv.contextLen,
                                      kv.headDim, kv.pageTokens));
    ThreadPool::forEachWithScratch(
        pool, kvs.size(), per_worker,
        [&](std::size_t begin, std::size_t end, float *buf) {
            for (std::size_t t = begin; t < end; ++t)
                gqaDecodeAttentionQuantFused(
                    qBatch + t * qStride, nQ, kvs[t],
                    outBatch + t * outStride, scale,
                    {buf, per_worker});
        },
        scratch);
}

void
gqaDecodeAttentionQuant(const float *q, std::size_t nQ,
                        std::span<const QuantizedBuffer> kPages,
                        std::span<const QuantizedBuffer> vPages,
                        std::size_t pageTokens, std::size_t contextLen,
                        std::size_t nKv, std::size_t headDim,
                        float *out, float scale)
{
    panicIf(contextLen == 0, "attention over empty context");
    std::size_t tokens =
        checkQuantPages(kPages, vPages, pageTokens, nKv, headDim);
    panicIf(contextLen > tokens,
            "context length exceeds quantized KV pages");
    std::size_t row_floats = nKv * headDim;
    std::size_t total_floats = tokens * row_floats;
    std::vector<float> kbuf(total_floats);
    std::vector<float> vbuf(total_floats);
    std::vector<const float *> kp(kPages.size()), vp(vPages.size());
    std::size_t off = 0;
    for (std::size_t p = 0; p < kPages.size(); ++p) {
        std::size_t page_floats = kPages[p].size();
        kPages[p].dequantize({kbuf.data() + off, page_floats});
        vPages[p].dequantize({vbuf.data() + off, page_floats});
        kp[p] = kbuf.data() + off;
        vp[p] = vbuf.data() + off;
        off += page_floats;
    }
    KvView view;
    view.kPages = kp;
    view.vPages = vp;
    view.pageTokens = pageTokens;
    view.contextLen = contextLen;
    view.nKv = nKv;
    view.headDim = headDim;
    gqaDecodeAttention(q, nQ, view, out, scale);
}

} // namespace moelight
