#include "kernels/naive_kernels.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "kernels/ops.hh"

namespace moelight {
namespace naive {

namespace {

constexpr std::size_t kBlock = 64;

} // namespace

float
dot(const float *x, const float *y, std::size_t n)
{
    float acc = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        acc += x[i] * y[i];
    return acc;
}

void
matmul(const float *a, const float *b, float *c, std::size_t m,
       std::size_t k, std::size_t n)
{
    std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
        std::size_t i_max = std::min(i0 + kBlock, m);
        for (std::size_t l0 = 0; l0 < k; l0 += kBlock) {
            std::size_t l_max = std::min(l0 + kBlock, k);
            for (std::size_t i = i0; i < i_max; ++i) {
                for (std::size_t l = l0; l < l_max; ++l) {
                    float av = a[i * k + l];
                    const float *brow = b + l * n;
                    float *crow = c + i * n;
                    for (std::size_t j = 0; j < n; ++j)
                        crow[j] += av * brow[j];
                }
            }
        }
    }
}

void
matmulTransposedB(const float *a, const float *w, float *c, std::size_t m,
                  std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a + i * k;
        float *crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j)
            crow[j] = dot(arow, w + j * k, k);
    }
}

void
gqaDecodeAttention(const float *q, std::size_t nQ, const KvView &kv,
                   float *out, float scale, std::span<float> scratch)
{
    panicIf(kv.nKv == 0 || nQ % kv.nKv != 0,
            "query heads must be a multiple of KV heads");
    panicIf(kv.contextLen == 0, "attention over empty context");
    panicIf(scratch.size() < kv.contextLen, "attention scratch too small");
    std::size_t group = nQ / kv.nKv;
    std::span<float> scores = scratch.subspan(0, kv.contextLen);

    for (std::size_t h = 0; h < nQ; ++h) {
        std::size_t kvh = h / group;
        const float *qh = q + h * kv.headDim;
        for (std::size_t t = 0; t < kv.contextLen; ++t)
            scores[t] = scale * dot(qh, kv.kAt(t, kvh), kv.headDim);
        softmaxInPlace(scores);
        float *oh = out + h * kv.headDim;
        std::memset(oh, 0, kv.headDim * sizeof(float));
        for (std::size_t t = 0; t < kv.contextLen; ++t) {
            const float *vt = kv.vAt(t, kvh);
            float s = scores[t];
            for (std::size_t d = 0; d < kv.headDim; ++d)
                oh[d] += s * vt[d];
        }
    }
}

void
gqaPrefillAttention(const float *q, const float *k, const float *v,
                    std::size_t seqLen, std::size_t nQ, std::size_t nKv,
                    std::size_t headDim, float *out, float scale)
{
    panicIf(nKv == 0 || nQ % nKv != 0,
            "query heads must be a multiple of KV heads");
    std::size_t group = nQ / nKv;
    std::vector<float> scores(seqLen);

    for (std::size_t i = 0; i < seqLen; ++i) {
        for (std::size_t h = 0; h < nQ; ++h) {
            std::size_t kvh = h / group;
            const float *qh = q + (i * nQ + h) * headDim;
            std::size_t ctx = i + 1;  // causal mask
            for (std::size_t t = 0; t < ctx; ++t) {
                const float *kt = k + (t * nKv + kvh) * headDim;
                scores[t] = scale * dot(qh, kt, headDim);
            }
            softmaxInPlace({scores.data(), ctx});
            float *oh = out + (i * nQ + h) * headDim;
            std::memset(oh, 0, headDim * sizeof(float));
            for (std::size_t t = 0; t < ctx; ++t) {
                const float *vt = v + (t * nKv + kvh) * headDim;
                float s = scores[t];
                for (std::size_t d = 0; d < headDim; ++d)
                    oh[d] += s * vt[d];
            }
        }
    }
}

} // namespace naive
} // namespace moelight
