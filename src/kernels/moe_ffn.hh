/**
 * @file
 * Mixture-of-Experts feed-forward kernel with page-table-indexed
 * expert weights, mirroring Fig. 11 of the paper: the kernel never
 * sees contiguous per-expert weight blobs; it resolves each expert's
 * w1/w3/w2 matrices through a resolver (backed by the paged weight
 * store in the runtime, or by plain tensors in tests).
 *
 * Expert FFN semantics (Mixtral-style SwiGLU):
 *   y = W2 * ( silu(W1 x) ⊙ (W3 x) )
 * with W1, W3 of shape [h2, h1] and W2 of shape [h1, h2].
 */

#ifndef MOELIGHT_KERNELS_MOE_FFN_HH
#define MOELIGHT_KERNELS_MOE_FFN_HH

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "kernels/router.hh"

namespace moelight {

class ThreadPool;

/** Pointers to one expert's three projection matrices. */
struct ExpertWeights
{
    const float *w1 = nullptr;  ///< gate proj, [h2, h1]
    const float *w3 = nullptr;  ///< up proj, [h2, h1]
    const float *w2 = nullptr;  ///< down proj, [h1, h2]
};

/** Resolves an expert id to its (possibly paged) weight pointers. */
using ExpertResolver = std::function<ExpertWeights(int expert)>;

/**
 * Apply the MoE FFN to a batch of tokens.
 *
 * @param x        Input activations, [tokens, h1] row-major.
 * @param routing  Per-token top-k routing decisions (size == tokens).
 * @param resolve  Expert weight resolver.
 * @param tokens   Number of tokens.
 * @param h1       Model hidden dim.
 * @param h2       Expert intermediate dim.
 * @param out      Output activations, [tokens, h1]; overwritten.
 * @param pool     Optional pool: tokens are distributed across it
 *                 with one scratch buffer per worker slot. Results
 *                 are identical with or without the pool (token
 *                 outputs are disjoint).
 */
void moeFfnForward(const float *x, std::span<const TokenRouting> routing,
                   const ExpertResolver &resolve, std::size_t tokens,
                   std::size_t h1, std::size_t h2, float *out,
                   ThreadPool *pool = nullptr);

/**
 * Single dense expert FFN applied to one token; building block of
 * moeFfnForward, exposed for unit testing.
 */
void expertFfnForward(const float *x, const ExpertWeights &w,
                      std::size_t h1, std::size_t h2, float *out,
                      std::span<float> scratch);

/** Scratch floats needed by expertFfnForward: 2 * h2. */
inline std::size_t
expertFfnScratchSize(std::size_t h2)
{
    return 2 * h2;
}

} // namespace moelight

#endif // MOELIGHT_KERNELS_MOE_FFN_HH
