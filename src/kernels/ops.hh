/**
 * @file
 * Elementwise / normalization kernels: softmax, RMSNorm, SiLU and the
 * SwiGLU combination used by Mixtral-style expert FFNs.
 */

#ifndef MOELIGHT_KERNELS_OPS_HH
#define MOELIGHT_KERNELS_OPS_HH

#include <cstddef>
#include <span>

namespace moelight {

/** Numerically stable in-place softmax over @p x. */
void softmaxInPlace(std::span<float> x);

/**
 * RMSNorm: out[i] = x[i] / rms(x) * weight[i], rms over the last dim.
 * @p x and @p out may alias.
 */
void rmsNorm(const float *x, const float *weight, float *out,
             std::size_t n, float eps = 1e-5f);

/** SiLU activation x * sigmoid(x), in place. */
void siluInPlace(std::span<float> x);

/**
 * SwiGLU gate combine: out[i] = silu(gate[i]) * up[i]. @p out may alias
 * @p gate or @p up.
 */
void swiglu(const float *gate, const float *up, float *out, std::size_t n);

/** Index of the maximum element (ties: lowest index). */
std::size_t argmax(std::span<const float> x);

} // namespace moelight

#endif // MOELIGHT_KERNELS_OPS_HH
