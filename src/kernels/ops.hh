/**
 * @file
 * Elementwise / normalization kernels: softmax, RMSNorm, SiLU and the
 * SwiGLU combination used by Mixtral-style expert FFNs.
 */

#ifndef MOELIGHT_KERNELS_OPS_HH
#define MOELIGHT_KERNELS_OPS_HH

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

namespace moelight {

/** Logistic sigmoid 1 / (1 + e^-x); shared by SiLU and SwiGLU. */
inline float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

/**
 * Branch-free polynomial e^x (Cephes expf scheme: split x into an
 * exact multiple of ln2 plus a small remainder, degree-5 minimax on
 * the remainder, exponent reassembled with a bit shift). Max relative
 * error ~4e-6 over the clamped domain [-87, 88]. Every operation is
 * plain float/int arithmetic, so -O2 auto-vectorizes loops over it —
 * unlike calls into libm's expf. Used by the attention softmax where
 * exp is the post-GEMM bottleneck.
 */
inline float
fastExpf(float x)
{
    x = std::clamp(x, -87.0f, 88.0f);
    // Round x/ln2 to nearest via the 1.5*2^23 magic-number trick:
    // std::floor compiles to a libm call GCC refuses to vectorize.
    float z = x * 1.44269504088896341f;
    float fx = (z + 12582912.0f) - 12582912.0f;
    // Two-constant Cody-Waite reduction keeps g exact.
    float g = x - fx * 0.693359375f;
    g -= fx * -2.12194440e-4f;
    float p = 1.9875691500e-4f;
    p = p * g + 1.3981999507e-3f;
    p = p * g + 8.3334519073e-3f;
    p = p * g + 4.1665795894e-2f;
    p = p * g + 1.6666665459e-1f;
    p = p * g + 5.0000001201e-1f;
    p = (p * g * g + g) + 1.0f;
    std::int32_t e = static_cast<std::int32_t>(fx);
    float scale = std::bit_cast<float>((e + 127) << 23);
    return p * scale;
}

/** Numerically stable in-place softmax over @p x (libm exp). */
void softmaxInPlace(std::span<float> x);

/**
 * Softmax built on fastExpf with multi-accumulator max/sum
 * reductions so the whole pass vectorizes; ~1e-6 absolute weight
 * error versus softmaxInPlace. The attention kernels use this for
 * their long score rows; keep softmaxInPlace for short or
 * routing-critical vectors.
 */
void softmaxInPlaceFast(std::span<float> x);

/**
 * RMSNorm: out[i] = x[i] / rms(x) * weight[i], rms over the last dim.
 * @p x and @p out may alias.
 */
void rmsNorm(const float *x, const float *weight, float *out,
             std::size_t n, float eps = 1e-5f);

/** SiLU activation x * sigmoid(x), in place. */
void siluInPlace(std::span<float> x);

/**
 * SwiGLU gate combine: out[i] = silu(gate[i]) * up[i]. @p out may alias
 * @p gate or @p up.
 */
void swiglu(const float *gate, const float *up, float *out, std::size_t n);

/** Index of the maximum element (ties: lowest index). */
std::size_t argmax(std::span<const float> x);

} // namespace moelight

#endif // MOELIGHT_KERNELS_OPS_HH
