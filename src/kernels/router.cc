#include "kernels/router.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "kernels/ops.hh"

namespace moelight {

TokenRouting
routeTopK(std::span<const float> logits, std::size_t k)
{
    fatalIf(k == 0 || k > logits.size(),
            "router top-k must satisfy 0 < k <= n_experts");
    std::vector<int> idx(logits.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
        return logits[a] > logits[b];
    });
    TokenRouting r;
    r.experts.assign(idx.begin(), idx.begin() + static_cast<long>(k));
    r.weights.resize(k);
    for (std::size_t i = 0; i < k; ++i)
        r.weights[i] = logits[static_cast<std::size_t>(r.experts[i])];
    softmaxInPlace(r.weights);
    return r;
}

std::vector<TokenRouting>
routeBatchTopK(const float *logits, std::size_t tokens,
               std::size_t n_experts, std::size_t k)
{
    std::vector<TokenRouting> out;
    out.reserve(tokens);
    for (std::size_t t = 0; t < tokens; ++t)
        out.push_back(routeTopK({logits + t * n_experts, n_experts}, k));
    return out;
}

} // namespace moelight
