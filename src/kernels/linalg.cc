#include "kernels/linalg.hh"

#include <algorithm>
#include <cstring>

#include "common/thread_pool.hh"
#include "kernels/simd/simd.hh"
#include "tensor/tensor.hh"

namespace moelight {

namespace {

/** l-blocking of the non-transposed matmul (C rows revisited). */
constexpr std::size_t kBlock = 64;

} // namespace

float
dot(const float *x, const float *y, std::size_t n)
{
    return simd::ops().dot(x, y, n);
}

void
dot4(const float *x, const float *y0, const float *y1, const float *y2,
     const float *y3, std::size_t n, float out[4])
{
    simd::ops().dot4(x, y0, y1, y2, y3, n, out);
}

void
matmul(const float *a, const float *b, float *c, std::size_t m,
       std::size_t k, std::size_t n)
{
    std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t l0 = 0; l0 < k; l0 += kBlock) {
        std::size_t l_max = std::min(l0 + kBlock, k);
        for (std::size_t i = 0; i < m; ++i) {
            const float *arow = a + i * k;
            float *crow = c + i * n;
            std::size_t l = l0;
            // Four B rows per pass: C row traffic drops 4x and the
            // j-loop is a pure elementwise FMA chain -O2 vectorizes.
            for (; l + 4 <= l_max; l += 4) {
                float av0 = arow[l], av1 = arow[l + 1];
                float av2 = arow[l + 2], av3 = arow[l + 3];
                const float *b0 = b + l * n;
                const float *b1 = b0 + n;
                const float *b2 = b1 + n;
                const float *b3 = b2 + n;
                for (std::size_t j = 0; j < n; ++j)
                    crow[j] += av0 * b0[j] + av1 * b1[j] + av2 * b2[j] +
                               av3 * b3[j];
            }
            for (; l < l_max; ++l) {
                float av = arow[l];
                const float *brow = b + l * n;
                for (std::size_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    }
}

void
matmulTransposedB(const float *a, const float *w, float *c, std::size_t m,
                  std::size_t k, std::size_t n)
{
    // The register-tiled microkernel lives in the dispatched backend
    // so the dot4 calls inline against that ISA's primitives; every
    // backend keeps the per-element expression m-independent, which
    // is what the pooled/batched variants' bit-identity relies on.
    simd::ops().matmulTransposedB(a, w, c, m, k, n);
}

void
matmulTransposedB(const float *a, const float *w, float *c, std::size_t m,
                  std::size_t k, std::size_t n, ThreadPool *pool)
{
    // Distributing rows only pays off when each worker gets a few
    // full row blocks; below that, pool wake-up dominates. The grain
    // floor keeps chunks at least a GEMM row block wide for W-strip
    // reuse — chunk boundaries may still split a block mid-way,
    // which is harmless: every C element is an m-independent
    // reduction, so any row partition is bit-identical to serial.
    if (!pool || m < 2 * simd::kGemmRowBlock ||
        pool->numThreads() == 0) {
        matmulTransposedB(a, w, c, m, k, n);
        return;
    }
    std::size_t chunks = pool->maxParallelism() * 2;
    std::size_t grain =
        std::max(simd::kGemmRowBlock, (m + chunks - 1) / chunks);
    pool->parallelForChunked(
        m, grain,
        [&](std::size_t begin, std::size_t end, std::size_t) {
            matmulTransposedB(a + begin * k, w, c + begin * n,
                              end - begin, k, n);
        });
}

void
matmul(const Tensor &a, const Tensor &b, Tensor &c)
{
    panicIf(a.rank() != 2 || b.rank() != 2 || c.rank() != 2,
            "matmul expects rank-2 tensors");
    std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    panicIf(b.dim(0) != k, "matmul inner dim mismatch");
    panicIf(c.dim(0) != m || c.dim(1) != n, "matmul output shape mismatch");
    matmul(a.data(), b.data(), c.data(), m, k, n);
}

void
matmulTransposedB(const Tensor &a, const Tensor &w, Tensor &c)
{
    panicIf(a.rank() != 2 || w.rank() != 2 || c.rank() != 2,
            "matmulTransposedB expects rank-2 tensors");
    std::size_t m = a.dim(0), k = a.dim(1), n = w.dim(0);
    panicIf(w.dim(1) != k, "matmulTransposedB inner dim mismatch");
    panicIf(c.dim(0) != m || c.dim(1) != n,
            "matmulTransposedB output shape mismatch");
    matmulTransposedB(a.data(), w.data(), c.data(), m, k, n);
}

void
accumulate(float *y, const float *x, std::size_t n)
{
    // s == 1.0f makes axpy an exact elementwise add (1.0f * x[i] and
    // fma(1.0f, x[i], y[i]) both round to x[i] resp. y[i] + x[i]),
    // so the residual adds share the backend's vector loop.
    simd::ops().axpy(y, x, 1.0f, n);
}

void
accumulateScaled(float *y, const float *x, float s, std::size_t n)
{
    simd::ops().axpy(y, x, s, n);
}

} // namespace moelight
