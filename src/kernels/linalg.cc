#include "kernels/linalg.hh"

#include <algorithm>
#include <cstring>

#include "common/thread_pool.hh"
#include "tensor/tensor.hh"

namespace moelight {

namespace {

/** k-unroll width of dot()/dot4(); must stay in sync between them. */
constexpr std::size_t kUnroll = 8;

/** A-row block for matmulTransposedB: W strips stay hot across rows. */
constexpr std::size_t kRowBlock = 8;

/** l-blocking of the non-transposed matmul (C rows revisited). */
constexpr std::size_t kBlock = 64;

/** Fixed reduction order shared by dot() and dot4(). */
inline float
reduce8(const float acc[kUnroll])
{
    return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
           ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

} // namespace

float
dot(const float *x, const float *y, std::size_t n)
{
    float acc[kUnroll] = {};
    std::size_t i = 0;
    for (; i + kUnroll <= n; i += kUnroll)
        for (std::size_t u = 0; u < kUnroll; ++u)
            acc[u] += x[i + u] * y[i + u];
    float sum = reduce8(acc);
    for (; i < n; ++i)
        sum += x[i] * y[i];
    return sum;
}

void
dot4(const float *x, const float *y0, const float *y1, const float *y2,
     const float *y3, std::size_t n, float out[4])
{
    float a0[kUnroll] = {}, a1[kUnroll] = {}, a2[kUnroll] = {},
          a3[kUnroll] = {};
    std::size_t i = 0;
    for (; i + kUnroll <= n; i += kUnroll) {
        for (std::size_t u = 0; u < kUnroll; ++u) {
            float xv = x[i + u];
            a0[u] += xv * y0[i + u];
            a1[u] += xv * y1[i + u];
            a2[u] += xv * y2[i + u];
            a3[u] += xv * y3[i + u];
        }
    }
    float s0 = reduce8(a0), s1 = reduce8(a1), s2 = reduce8(a2),
          s3 = reduce8(a3);
    for (; i < n; ++i) {
        float xv = x[i];
        s0 += xv * y0[i];
        s1 += xv * y1[i];
        s2 += xv * y2[i];
        s3 += xv * y3[i];
    }
    out[0] = s0;
    out[1] = s1;
    out[2] = s2;
    out[3] = s3;
}

void
matmul(const float *a, const float *b, float *c, std::size_t m,
       std::size_t k, std::size_t n)
{
    std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t l0 = 0; l0 < k; l0 += kBlock) {
        std::size_t l_max = std::min(l0 + kBlock, k);
        for (std::size_t i = 0; i < m; ++i) {
            const float *arow = a + i * k;
            float *crow = c + i * n;
            std::size_t l = l0;
            // Four B rows per pass: C row traffic drops 4x and the
            // j-loop is a pure elementwise FMA chain -O2 vectorizes.
            for (; l + 4 <= l_max; l += 4) {
                float av0 = arow[l], av1 = arow[l + 1];
                float av2 = arow[l + 2], av3 = arow[l + 3];
                const float *b0 = b + l * n;
                const float *b1 = b0 + n;
                const float *b2 = b1 + n;
                const float *b3 = b2 + n;
                for (std::size_t j = 0; j < n; ++j)
                    crow[j] += av0 * b0[j] + av1 * b1[j] + av2 * b2[j] +
                               av3 * b3[j];
            }
            for (; l < l_max; ++l) {
                float av = arow[l];
                const float *brow = b + l * n;
                for (std::size_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    }
}

void
matmulTransposedB(const float *a, const float *w, float *c, std::size_t m,
                  std::size_t k, std::size_t n)
{
    for (std::size_t i0 = 0; i0 < m; i0 += kRowBlock) {
        std::size_t i_max = std::min(i0 + kRowBlock, m);
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const float *w0 = w + j * k;
            const float *w1 = w0 + k;
            const float *w2 = w1 + k;
            const float *w3 = w2 + k;
            for (std::size_t i = i0; i < i_max; ++i)
                dot4(a + i * k, w0, w1, w2, w3, k, c + i * n + j);
        }
        for (; j < n; ++j) {
            const float *wj = w + j * k;
            for (std::size_t i = i0; i < i_max; ++i)
                c[i * n + j] = dot(a + i * k, wj, k);
        }
    }
}

void
matmulTransposedB(const float *a, const float *w, float *c, std::size_t m,
                  std::size_t k, std::size_t n, ThreadPool *pool)
{
    // Distributing rows only pays off when each worker gets a few
    // full row blocks; below that, pool wake-up dominates.
    if (!pool || m < 2 * kRowBlock || pool->numThreads() == 0) {
        matmulTransposedB(a, w, c, m, k, n);
        return;
    }
    std::size_t chunks = pool->maxParallelism() * 2;
    std::size_t grain =
        std::max(kRowBlock, (m + chunks - 1) / chunks);
    pool->parallelForChunked(
        m, grain,
        [&](std::size_t begin, std::size_t end, std::size_t) {
            matmulTransposedB(a + begin * k, w, c + begin * n,
                              end - begin, k, n);
        });
}

void
matmul(const Tensor &a, const Tensor &b, Tensor &c)
{
    panicIf(a.rank() != 2 || b.rank() != 2 || c.rank() != 2,
            "matmul expects rank-2 tensors");
    std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    panicIf(b.dim(0) != k, "matmul inner dim mismatch");
    panicIf(c.dim(0) != m || c.dim(1) != n, "matmul output shape mismatch");
    matmul(a.data(), b.data(), c.data(), m, k, n);
}

void
matmulTransposedB(const Tensor &a, const Tensor &w, Tensor &c)
{
    panicIf(a.rank() != 2 || w.rank() != 2 || c.rank() != 2,
            "matmulTransposedB expects rank-2 tensors");
    std::size_t m = a.dim(0), k = a.dim(1), n = w.dim(0);
    panicIf(w.dim(1) != k, "matmulTransposedB inner dim mismatch");
    panicIf(c.dim(0) != m || c.dim(1) != n,
            "matmulTransposedB output shape mismatch");
    matmulTransposedB(a.data(), w.data(), c.data(), m, k, n);
}

void
accumulate(float *y, const float *x, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += x[i];
}

void
accumulateScaled(float *y, const float *x, float s, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += s * x[i];
}

} // namespace moelight
