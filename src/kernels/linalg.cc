#include "kernels/linalg.hh"

#include <cstring>

#include "tensor/tensor.hh"

namespace moelight {

namespace {

constexpr std::size_t kBlock = 64;

} // namespace

void
matmul(const float *a, const float *b, float *c, std::size_t m,
       std::size_t k, std::size_t n)
{
    std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
        std::size_t i_max = std::min(i0 + kBlock, m);
        for (std::size_t l0 = 0; l0 < k; l0 += kBlock) {
            std::size_t l_max = std::min(l0 + kBlock, k);
            for (std::size_t i = i0; i < i_max; ++i) {
                for (std::size_t l = l0; l < l_max; ++l) {
                    float av = a[i * k + l];
                    const float *brow = b + l * n;
                    float *crow = c + i * n;
                    for (std::size_t j = 0; j < n; ++j)
                        crow[j] += av * brow[j];
                }
            }
        }
    }
}

void
matmulTransposedB(const float *a, const float *w, float *c, std::size_t m,
                  std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a + i * k;
        float *crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j)
            crow[j] = dot(arow, w + j * k, k);
    }
}

void
matmul(const Tensor &a, const Tensor &b, Tensor &c)
{
    panicIf(a.rank() != 2 || b.rank() != 2 || c.rank() != 2,
            "matmul expects rank-2 tensors");
    std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    panicIf(b.dim(0) != k, "matmul inner dim mismatch");
    panicIf(c.dim(0) != m || c.dim(1) != n, "matmul output shape mismatch");
    matmul(a.data(), b.data(), c.data(), m, k, n);
}

void
matmulTransposedB(const Tensor &a, const Tensor &w, Tensor &c)
{
    panicIf(a.rank() != 2 || w.rank() != 2 || c.rank() != 2,
            "matmulTransposedB expects rank-2 tensors");
    std::size_t m = a.dim(0), k = a.dim(1), n = w.dim(0);
    panicIf(w.dim(1) != k, "matmulTransposedB inner dim mismatch");
    panicIf(c.dim(0) != m || c.dim(1) != n,
            "matmulTransposedB output shape mismatch");
    matmulTransposedB(a.data(), w.data(), c.data(), m, k, n);
}

void
accumulate(float *y, const float *x, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += x[i];
}

void
accumulateScaled(float *y, const float *x, float s, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += s * x[i];
}

float
dot(const float *x, const float *y, std::size_t n)
{
    float acc = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        acc += x[i] * y[i];
    return acc;
}

} // namespace moelight
