/**
 * @file
 * Reproduces Fig. 4: the Hierarchical Roofline Model plot for Mixtral
 * 8x7B's grouped-query attention block in the decode stage on the L4
 * instance (context length 512). Emits the five roof lines as CSV
 * series plus the vertical intensity markers for f16 / int4 KV and
 * the P1 turning point.
 *
 * Paper claim: both f16 and int4 attention intensities sit left of
 * P1 => decode attention belongs on the CPU.
 */

#include <iostream>

#include "common/table.hh"
#include "hrm/hrm.hh"
#include "model/op_cost.hh"

using namespace moelight;

int
main()
{
    HardwareConfig hw = l4Host();
    Hrm hrm(hw);
    ModelConfig m = mixtral8x7b();

    std::cout << "Fig. 4 — HRM for Mixtral 8x7B GQA decode attention "
                 "@ L4 (ctx=512)\n\n";

    auto series = hrmRoofSeries(hrm, 0.1, 1e4, 33);
    Table roofs({"intensity_flops_per_byte", "CPU_Mem", "GPU_Mem",
                 "CPU_GPU_Link", "CPU_Peak", "GPU_Peak"});
    for (std::size_t i = 0; i < series[0].intensity.size(); ++i) {
        roofs.newRow().add(series[0].intensity[i], 3);
        for (const auto &s : series)
            roofs.add(s.gflops[i], 1);
    }
    std::cout << roofs.toCsv();

    ModelConfig m4 = m;
    m4.dtKv = DataType::INT4;
    double i_f16 = attnIntensityVsKv(m);
    double i_int4 = attnIntensityVsKv(m4);
    double p1 = hrm.turningPointP1();

    Table marks({"marker", "intensity", "attainable_on_cpu_GFLOPs",
                 "attainable_if_shipped_GFLOPs", "verdict"});
    auto add_mark = [&](const std::string &name, double i) {
        double on_cpu = hrm.attainableOnCpu(i) / GFLOP;
        double shipped = hrm.linkBw() * i / GFLOP;
        marks.newRow().add(name).add(i, 2).add(on_cpu, 1)
            .add(shipped, 1)
            .add(on_cpu >= shipped ? "CPU wins" : "GPU wins");
    };
    add_mark("attention_f16", i_f16);
    add_mark("attention_int4", i_int4);
    marks.newRow().add("P1").add(p1, 2).add("-").add("-").add(
        "turning point (Eq. 9)");
    std::cout << "\n";
    marks.print(std::cout, "intensity markers");

    std::cout << "\npaper check: f16 (" << i_f16 << ") and int4 ("
              << i_int4 << ") both < P1 (" << p1
              << ") => perform attention on CPU: "
              << ((i_f16 < p1 && i_int4 < p1) ? "REPRODUCED"
                                              : "MISMATCH")
              << "\n";
    return 0;
}
