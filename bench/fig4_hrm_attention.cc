/**
 * @file
 * Reproduces Fig. 4: the Hierarchical Roofline Model plot for Mixtral
 * 8x7B's grouped-query attention block in the decode stage on the L4
 * instance (context length 512). Emits the five roof lines as CSV
 * series plus the vertical intensity markers for f16 / int4 KV and
 * the P1 turning point.
 *
 * Paper claim: both f16 and int4 attention intensities sit left of
 * P1 => decode attention belongs on the CPU.
 *
 * Second part: *measured* fused quantized attention. The Fig. 4
 * analysis only holds if attending over quantized KV actually moves
 * the quantized bytes; a kernel that first materializes float pages
 * moves the quantized plus the float footprint and throws the
 * intensity advantage away. This harness times the fused kernel
 * against the retained materializing path at (mu=32, ctx=512) on
 * scaled-down Mixtral heads and emits latency plus bytes-moved to
 * BENCH_fig4_attention.json so CI can gate on the fused path staying
 * ahead.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "hrm/hrm.hh"
#include "kernels/quant.hh"
#include "model/op_cost.hh"
#include "runtime/quant_kv_cache.hh"

using namespace moelight;

namespace {

/**
 * Time fused vs materializing quantized decode attention over one
 * (mu, ctx) shape and record latency + traffic. Returns the fused
 * speedup.
 */
double
measureQuantAttention(bench::BenchJson &json, Table &t, QuantKind kind,
                      const char *tag, std::size_t mu, std::size_t ctx)
{
    // Scaled-down Mixtral-flavoured heads (group = 4), as in fig9.
    std::size_t nq = 8, nkv = 2, hd = 32, page_tokens = 16;
    ModelConfig mc;
    mc.l = 1;
    mc.nkv = nkv;
    mc.headDim = hd;

    QuantizedKvCache cache(mc, 1, page_tokens, kind);
    Rng rng(17);
    std::vector<float> tok(nkv * hd);
    for (std::size_t i = 0; i < ctx; ++i) {
        for (auto &x : tok)
            x = static_cast<float>(rng.uniform(-1, 1));
        cache.append(SeqId(0), LayerIdx(0), tok.data(), tok.data());
    }
    QuantKvView view = cache.makeQuantView(SeqId(0), LayerIdx(0));

    std::vector<float> q(mu * nq * hd), out_f(nq * hd), out_m(nq * hd);
    for (auto &x : q)
        x = static_cast<float>(rng.uniform(-1, 1));
    std::vector<float> scratch(
        gqaQuantAttnScratchFloats(nq, nkv, ctx, hd, page_tokens));
    float scale = 1.0f / std::sqrt(static_cast<float>(hd));

    // Best-of-9: the CI gate sits at fused_speedup >= 1.0 and int4's
    // margin is ~10-15%, so suppress shared-runner noise hard.
    double fused_ms = bench::bestOfMs(9, [&] {
        for (std::size_t i = 0; i < mu; ++i)
            gqaDecodeAttentionQuantFused(q.data() + i * nq * hd, nq,
                                         view, out_f.data(), scale,
                                         scratch);
    });
    double mat_ms = bench::bestOfMs(9, [&] {
        for (std::size_t i = 0; i < mu; ++i)
            gqaDecodeAttentionQuant(q.data() + i * nq * hd, nq,
                                    view.kPages, view.vPages,
                                    page_tokens, ctx, nkv, hd,
                                    out_m.data(), scale);
    });

    // The design promise under test: the fused kernel attends over
    // the exact dequantized values, bit-identical to materializing.
    for (std::size_t i = 0; i < out_f.size(); ++i)
        if (out_f[i] != out_m[i])
            fatal("fused/materialized outputs diverge at ", i);

    // Traffic per attention call: the fused kernel reads the
    // quantized payload (+ scales); the materializing path reads it,
    // writes float pages, and reads them back.
    double quant_bytes = static_cast<double>(cache.storedBytes());
    double float_bytes =
        static_cast<double>(cache.equivalentFloatBytes());
    double mat_traffic = quant_bytes + 2.0 * float_bytes;
    double speedup = mat_ms / fused_ms;

    t.newRow()
        .add(tag)
        .add(mat_ms, 3)
        .add(fused_ms, 3)
        .add(speedup, 2)
        .add(mat_traffic / quant_bytes, 2);
    json.record(std::string("quant_attn_") + tag)
        .field("mu", static_cast<double>(mu))
        .field("ctx", static_cast<double>(ctx))
        .field("materialized_ms", mat_ms)
        .field("fused_ms", fused_ms)
        .field("fused_speedup", speedup)
        .field("quant_kv_bytes", quant_bytes)
        .field("float_kv_bytes", float_bytes)
        .field("traffic_ratio", mat_traffic / quant_bytes);
    return speedup;
}

/**
 * Time the fused causal prefill kernel against the per-token fused
 * decode walk it replaced in the engine (position i attending over
 * the view the cache held after appending token i). Both paths see
 * the same final cache state; the walk re-dequantizes every closed
 * page at every later position, the prefill kernel once per KV head.
 * Returns the prefill speedup.
 */
double
measureQuantPrefill(bench::BenchJson &json, Table &t, QuantKind kind,
                    const char *tag, std::size_t len)
{
    std::size_t nq = 8, nkv = 2, hd = 32, page_tokens = 16;
    std::size_t row = nkv * hd;
    ModelConfig mc;
    mc.l = 1;
    mc.nkv = nkv;
    mc.headDim = hd;

    Rng rng(29);
    std::vector<float> k(len * row), v(len * row), q(len * nq * hd);
    for (auto *buf : {&k, &v, &q})
        for (auto &x : *buf)
            x = static_cast<float>(rng.uniform(-1, 1));
    QuantizedKvCache cache(mc, 1, page_tokens, kind);
    for (std::size_t i = 0; i < len; ++i)
        cache.append(SeqId(0), LayerIdx(0), k.data() + i * row, v.data() + i * row);
    QuantKvView view = cache.makeQuantView(SeqId(0), LayerIdx(0));

    std::vector<float> out_f(len * nq * hd), out_w(len * nq * hd);
    std::vector<float> prefill_scratch(gqaQuantPrefillAttnScratchFloats(
        nq, nkv, len, hd, page_tokens));
    std::vector<float> decode_scratch(gqaQuantAttnScratchFloats(
        nq, nkv, len, hd, page_tokens));
    float scale = 1.0f / std::sqrt(static_cast<float>(hd));

    double fused_ms = bench::bestOfMs(5, [&] {
        gqaPrefillAttentionQuantFused(q.data(), k.data(), v.data(),
                                      len, nq, view, out_f.data(),
                                      scale, prefill_scratch);
    });
    double walk_ms = bench::bestOfMs(5, [&] {
        for (std::size_t i = 0; i < len; ++i)
            gqaDecodeAttentionQuantFused(
                q.data() + i * nq * hd, nq,
                quantPrefillWalkView(view, k.data(), v.data(), i),
                out_w.data() + i * nq * hd, scale, decode_scratch);
    });

    // The design promise under test: one prefill call replays the
    // per-token walk bit-for-bit.
    for (std::size_t i = 0; i < out_f.size(); ++i)
        if (out_f[i] != out_w[i])
            fatal("prefill/per-token outputs diverge at ", i);

    double speedup = walk_ms / fused_ms;
    t.newRow()
        .add(tag)
        .add(walk_ms, 3)
        .add(fused_ms, 3)
        .add(speedup, 2);
    json.record(std::string("quant_prefill_") + tag)
        .field("len", static_cast<double>(len))
        .field("per_token_ms", walk_ms)
        .field("fused_ms", fused_ms)
        .field("fused_speedup", speedup);
    return speedup;
}

void
measureFusedVsMaterialized()
{
    bench::BenchJson json;
    bench::recordSimdBackend(json);
    Table t({"kind", "materialized_ms", "fused_ms", "fused_speedup",
             "traffic_ratio"});
    double s8 = measureQuantAttention(json, t, QuantKind::Int8, "int8",
                                      32, 512);
    double s4 = measureQuantAttention(json, t, QuantKind::Int4, "int4",
                                      32, 512);
    t.print(std::cout,
            "Fig. 4 — measured fused vs materializing quant "
            "attention (mu=32, ctx=512)");

    Table tp({"kind", "per_token_ms", "fused_ms", "fused_speedup"});
    double p8 = measureQuantPrefill(json, tp, QuantKind::Int8, "int8",
                                    512);
    double p4 = measureQuantPrefill(json, tp, QuantKind::Int4, "int4",
                                    512);
    tp.print(std::cout,
             "Fig. 4 — fused causal prefill vs per-token decode "
             "walk (len=512)");

    json.write("BENCH_fig4_attention.json");
    std::cout << "wrote BENCH_fig4_attention.json\n";
    std::cout << "fused >= materialized: "
              << ((s8 >= 1.0 && s4 >= 1.0) ? "yes" : "NO — REGRESSION")
              << "\n";
    std::cout << "prefill >= per-token walk: "
              << ((p8 >= 1.0 && p4 >= 1.0) ? "yes" : "NO — REGRESSION")
              << "\n\n";
}

} // namespace

int
main()
{
    HardwareConfig hw = l4Host();
    Hrm hrm(hw);
    ModelConfig m = mixtral8x7b();

    std::cout << "Fig. 4 — HRM for Mixtral 8x7B GQA decode attention "
                 "@ L4 (ctx=512)\n\n";

    auto series = hrmRoofSeries(hrm, 0.1, 1e4, 33);
    Table roofs({"intensity_flops_per_byte", "CPU_Mem", "GPU_Mem",
                 "CPU_GPU_Link", "CPU_Peak", "GPU_Peak"});
    for (std::size_t i = 0; i < series[0].intensity.size(); ++i) {
        roofs.newRow().add(series[0].intensity[i], 3);
        for (const auto &s : series)
            roofs.add(s.gflops[i], 1);
    }
    std::cout << roofs.toCsv();

    ModelConfig m4 = m;
    m4.dtKv = DataType::INT4;
    double i_f16 = attnIntensityVsKv(m);
    double i_int4 = attnIntensityVsKv(m4);
    double p1 = hrm.turningPointP1();

    Table marks({"marker", "intensity", "attainable_on_cpu_GFLOPs",
                 "attainable_if_shipped_GFLOPs", "verdict"});
    auto add_mark = [&](const std::string &name, double i) {
        double on_cpu = hrm.attainableOnCpu(i) / GFLOP;
        double shipped = hrm.linkBw() * i / GFLOP;
        marks.newRow().add(name).add(i, 2).add(on_cpu, 1)
            .add(shipped, 1)
            .add(on_cpu >= shipped ? "CPU wins" : "GPU wins");
    };
    add_mark("attention_f16", i_f16);
    add_mark("attention_int4", i_int4);
    marks.newRow().add("P1").add(p1, 2).add("-").add("-").add(
        "turning point (Eq. 9)");
    std::cout << "\n";
    marks.print(std::cout, "intensity markers");

    std::cout << "\npaper check: f16 (" << i_f16 << ") and int4 ("
              << i_int4 << ") both < P1 (" << p1
              << ") => perform attention on CPU: "
              << ((i_f16 < p1 && i_int4 < p1) ? "REPRODUCED"
                                              : "MISMATCH")
              << "\n\n";

    measureFusedVsMaterialized();
    return 0;
}
