/**
 * @file
 * Reproduces Fig. 6: the four scheduling strategies side by side —
 * CGOPipe, S2 (pipeline w/o paged weights, FastDecode*-style), S3
 * (FlexGen(c): no pipeline, no paging), S4 (FlexGen: GPU attention
 * with KV prefetch) — as ASCII Gantt charts over one decode step of
 * a few layers, plus per-resource utilization and the GPU idle
 * ("bubble") share each schedule produces.
 *
 * Paper claim: CGOPipe minimizes the red-zigzag GPU idle time; the
 * unpaged and unpipelined variants add bubbles in the order
 * CGOPipe < S2 < S3, and S4 saturates the link with KV traffic.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "model/workload.hh"

using namespace moelight;
using namespace moelight::bench;

int
main()
{
    // A configuration where all four resources matter: Mixtral 8x7B
    // on L4 with a long-ish context.
    PerfModel pm(mixtral8x7b(), l4Host(), {512.0, 512.0, 64.0}, true);
    Policy p;
    p.batchSize = 256;
    p.microBatch = 64;
    p.attnOnGpu = false;
    p.ffnOnGpu = true;
    Policy p_gpu = p;
    p_gpu.attnOnGpu = true;

    ScheduleOptions opt;
    opt.decodeSteps = 3;
    opt.layers = 3;

    struct Entry
    {
        SystemKind sys;
        const Policy *pol;
        const char *note;
    };
    std::vector<Entry> entries{
        {SystemKind::MoeLightning, &p,
         "CGOPipe: paged weights, CPU attention overlapped"},
        {SystemKind::FastDecode, &p,
         "S2: pipeline w/o paged weights (FastDecode*)"},
        {SystemKind::FlexGenC, &p,
         "S3: w/o pipeline, w/o paged weights (FlexGen(c))"},
        {SystemKind::FlexGen, &p_gpu,
         "S4: GPU attention + KV prefetch (FlexGen)"},
    };

    Table summary({"schedule", "step_time_s", "gpu_util", "cpu_util",
                   "htod_util", "dtoh_util", "gpu_idle_share"});
    for (const Entry &e : entries) {
        auto r = simulateThroughput(e.sys, pm, *e.pol, opt);
        std::cout << "== " << systemName(e.sys) << " — " << e.note
                  << " ==\n";
        std::cout << "legend: A=PreAttn B=Attention C=PostAttn "
                     "H=hidden-load Q=QKV/KV-offload W=weights "
                     "K=KV-load\n";
        std::cout << renderGantt(r.sim, 100) << "\n";
        summary.newRow()
            .add(systemName(e.sys))
            .add(r.decodeStep, 4)
            .add(r.sim.utilization[0], 2)
            .add(r.sim.utilization[1], 2)
            .add(r.sim.utilization[2], 2)
            .add(r.sim.utilization[3], 2)
            .add(1.0 - r.sim.utilization[0], 2);
    }
    summary.print(std::cout, "Fig. 6 summary (steady decode step)");

    std::cout << "\npaper check: CGOPipe has the fastest step and the "
                 "highest GPU busy share among CPU-attention "
                 "schedules\n";
    return 0;
}
