/**
 * @file
 * Shared helpers for the benchmark harnesses: common policy searches
 * per system family and a paper-vs-measured table convention. Each
 * bench binary prints the same rows/series its paper counterpart
 * reports; absolute values differ (simulated substrate) but the
 * shape — ordering, crossovers, scaling — is the claim under test
 * (see EXPERIMENTS.md).
 */

#ifndef MOELIGHT_BENCH_BENCH_UTIL_HH
#define MOELIGHT_BENCH_BENCH_UTIL_HH

#include <optional>
#include <string>

#include "policy/optimizer.hh"
#include "sched/schedules.hh"

namespace moelight {
namespace bench {

/** Fast-but-representative optimizer grid for the harnesses. */
inline SearchConfig
benchGrid()
{
    SearchConfig cfg;
    cfg.microBatches = {8, 16, 24, 32, 48, 64, 96, 128};
    cfg.numUbs = {1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128};
    cfg.weightRatioSteps = 10;
    cfg.kvRatioSteps = 2;
    return cfg;
}

/**
 * Pick the policy each system family would deploy on @p pm, mirroring
 * the paper's baselines: MoE-Lightning uses the HRM search; FlexGen
 * uses its conservative heuristic; DeepSpeed streams layers with KV
 * on GPU.
 */
inline std::optional<PolicyChoice>
systemPolicy(SystemKind sys, const PerfModel &pm)
{
    switch (sys) {
      case SystemKind::MoeLightning:
      case SystemKind::MoeLightningPadded:
      case SystemKind::FastDecode:
        return searchPolicy(pm, sys, benchGrid());
      case SystemKind::FlexGen:
        return flexGenPolicy(pm, /*cpuAttention=*/false);
      case SystemKind::FlexGenC:
        return flexGenPolicy(pm, /*cpuAttention=*/true);
      case SystemKind::DeepSpeed:
        return deepSpeedPolicy(pm);
    }
    return std::nullopt;
}

/**
 * End-to-end simulated generation throughput for @p sys on @p pm
 * using that system's own policy. Returns 0 when no feasible policy
 * exists.
 */
inline double
simulatedSystemThroughput(SystemKind sys, const PerfModel &pm,
                          std::optional<PolicyChoice> *chosen = nullptr)
{
    auto pc = systemPolicy(sys, pm);
    if (chosen)
        *chosen = pc;
    if (!pc)
        return 0.0;
    return simulateThroughput(sys, pm, pc->policy).tokensPerSec;
}

/** Relative-to-paper annotation, e.g. "x1.8-vs-FlexGen". */
inline std::string
speedup(double ours, double theirs)
{
    if (theirs <= 0.0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", ours / theirs);
    return buf;
}

} // namespace bench
} // namespace moelight

#endif // MOELIGHT_BENCH_BENCH_UTIL_HH
