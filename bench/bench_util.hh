/**
 * @file
 * Shared helpers for the benchmark harnesses: common policy searches
 * per system family and a paper-vs-measured table convention. Each
 * bench binary prints the same rows/series its paper counterpart
 * reports; absolute values differ (simulated substrate) but the
 * shape — ordering, crossovers, scaling — is the claim under test
 * (see EXPERIMENTS.md).
 */

#ifndef MOELIGHT_BENCH_BENCH_UTIL_HH
#define MOELIGHT_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "kernels/simd/simd.hh"
#include "policy/optimizer.hh"
#include "sched/schedules.hh"

namespace moelight {
namespace bench {

/**
 * Machine-readable benchmark log: collects named records of numeric
 * (and string) fields and writes them as a JSON document, so
 * successive PRs can track the kernel perf trajectory
 * (BENCH_kernels.json) without scraping stdout.
 */
class BenchJson
{
  public:
    /** Start a record; field() calls attach to the latest record. */
    BenchJson &
    record(std::string name)
    {
        records_.push_back({std::move(name), {}});
        return *this;
    }

    BenchJson &
    field(std::string key, double value)
    {
        panicIf(records_.empty(), "BenchJson::field before record()");
        records_.back().fields.push_back(
            {std::move(key), value, {}, false});
        return *this;
    }

    /** String-valued field (e.g. the dispatched SIMD ISA, which
     *  check_bench.py keys per-ISA speedup floors on). */
    BenchJson &
    field(std::string key, std::string value)
    {
        panicIf(records_.empty(), "BenchJson::field before record()");
        records_.back().fields.push_back(
            {std::move(key), 0.0, std::move(value), true});
        return *this;
    }

    /** Write all records to @p path (overwrites). */
    void
    write(const std::string &path) const
    {
        std::ofstream os(path);
        panicIf(!os, "cannot open ", path, " for writing");
        os << "{\n  \"records\": [\n";
        for (std::size_t i = 0; i < records_.size(); ++i) {
            const Record &r = records_[i];
            os << "    {\"name\": \"" << r.name << "\"";
            for (const Field &f : r.fields) {
                os << ", \"" << f.key << "\": ";
                if (f.isString) {
                    os << "\"" << f.str << "\"";
                } else {
                    char buf[64];
                    std::snprintf(buf, sizeof(buf), "%.6g", f.num);
                    os << buf;
                }
            }
            os << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
    }

  private:
    struct Field
    {
        std::string key;
        double num;
        std::string str;
        bool isString;
    };
    struct Record
    {
        std::string name;
        std::vector<Field> fields;
    };
    std::vector<Record> records_;
};

/**
 * Append the standard `simd` record — which runtime-dispatched
 * backend produced these numbers — so check_bench.py can key
 * speedup floors by ISA instead of assuming the dev host.
 */
inline BenchJson &
recordSimdBackend(BenchJson &json)
{
    return json.record("simd").field("isa",
                                     std::string(simd::activeIsaName()));
}

/**
 * Wall-clock milliseconds for the best of @p reps runs of @p fn —
 * best-of suppresses scheduler noise on shared hosts.
 */
template <typename Fn>
double
bestOfMs(int reps, Fn &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        best = std::min(best, ms);
    }
    return best;
}

/** Fast-but-representative optimizer grid for the harnesses. */
inline SearchConfig
benchGrid()
{
    SearchConfig cfg;
    cfg.microBatches = {8, 16, 24, 32, 48, 64, 96, 128};
    cfg.numUbs = {1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128};
    cfg.weightRatioSteps = 10;
    cfg.kvRatioSteps = 2;
    return cfg;
}

/**
 * Pick the policy each system family would deploy on @p pm, mirroring
 * the paper's baselines: MoE-Lightning uses the HRM search; FlexGen
 * uses its conservative heuristic; DeepSpeed streams layers with KV
 * on GPU.
 */
inline std::optional<PolicyChoice>
systemPolicy(SystemKind sys, const PerfModel &pm)
{
    switch (sys) {
      case SystemKind::MoeLightning:
      case SystemKind::MoeLightningPadded:
      case SystemKind::FastDecode:
        return searchPolicy(pm, sys, benchGrid());
      case SystemKind::FlexGen:
        return flexGenPolicy(pm, /*cpuAttention=*/false);
      case SystemKind::FlexGenC:
        return flexGenPolicy(pm, /*cpuAttention=*/true);
      case SystemKind::DeepSpeed:
        return deepSpeedPolicy(pm);
    }
    return std::nullopt;
}

/**
 * End-to-end simulated generation throughput for @p sys on @p pm
 * using that system's own policy. Returns 0 when no feasible policy
 * exists.
 */
inline double
simulatedSystemThroughput(SystemKind sys, const PerfModel &pm,
                          std::optional<PolicyChoice> *chosen = nullptr)
{
    auto pc = systemPolicy(sys, pm);
    if (chosen)
        *chosen = pc;
    if (!pc)
        return 0.0;
    return simulateThroughput(sys, pm, pc->policy).tokensPerSec;
}

/** Relative-to-paper annotation, e.g. "x1.8-vs-FlexGen". */
inline std::string
speedup(double ours, double theirs)
{
    if (theirs <= 0.0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", ours / theirs);
    return buf;
}

} // namespace bench
} // namespace moelight

#endif // MOELIGHT_BENCH_BENCH_UTIL_HH
