/**
 * @file
 * Reproduces Fig. 9 (§6.2): per-layer latency of (a) the CPU GQA
 * attention kernel, (b) the KV-cache transfer it replaces, and (c)
 * the MoE FFN kernel, across micro-batch sizes {32, 64, 128, 256}
 * and context lengths {128 .. 2048} for Mixtral 8x7B on the L4
 * setting.
 *
 * Two parts:
 *   1. The modelled Fig. 9 grid at paper scale (simulated GPU).
 *   2. google-benchmark measurements of the *real* CPU attention
 *      kernel at scaled-down shapes, validating that its latency
 *      grows linearly in mu x ctx as the model assumes.
 *
 * Paper claims: CPU attention is 3-4x faster than the KV transfer;
 * MoE FFN latency is nearly flat in mu (memory-bound); at large
 * mu x ctx CPU attention overtakes the FFN and becomes the
 * bottleneck.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/rng.hh"
#include "common/table.hh"
#include "kernels/attention.hh"
#include "perf/perf_model.hh"

using namespace moelight;

namespace {

void
printModelledGrid()
{
    ModelConfig m = mixtral8x7b();
    HardwareConfig hw = l4Host();
    double ratio_sum = 0.0;
    int ratio_n = 0;
    bool crossover = false;

    for (std::size_t mu : {32u, 64u, 128u, 256u}) {
        Table t({"context", "moe_ffn_ms", "kv_transfer_ms",
                 "cpu_attention_ms", "kv/attn"});
        for (double ctx : {128.0, 256.0, 512.0, 1024.0, 2048.0}) {
            WorkloadShape w{ctx, ctx, 1.0};
            PerfModel pm(m, hw, w, false);
            Policy gpu_attn;
            gpu_attn.batchSize = mu;
            gpu_attn.microBatch = mu;
            gpu_attn.attnOnGpu = true;
            double ffn = pm.postAttnGpuTime(mu) * 1e3;
            double kv = pm.kvLoadTime(mu, gpu_attn) * 1e3;
            double attn = pm.cpuAttnTime(mu) * 1e3;
            t.newRow().add(static_cast<long long>(ctx)).add(ffn, 3)
                .add(kv, 3).add(attn, 3).add(kv / attn, 2);
            ratio_sum += kv / attn;
            ++ratio_n;
            if (attn > ffn)
                crossover = true;
        }
        t.print(std::cout, "Fig. 9 — modelled, micro-batch size " +
                               std::to_string(mu));
        std::cout << "\n";
    }
    std::printf("mean KV-transfer / CPU-attention ratio: %.2f "
                "(paper: 3-4x, ~bc/bcg)\n",
                ratio_sum / ratio_n);
    std::printf("CPU attention overtakes MoE FFN at large mu*ctx: %s "
                "(paper: yes)\n\n",
                crossover ? "yes" : "no");
}

/** Real CPU GQA kernel at scaled-down shapes. */
void
BM_CpuGqaAttention(benchmark::State &state)
{
    std::size_t mu = static_cast<std::size_t>(state.range(0));
    std::size_t ctx = static_cast<std::size_t>(state.range(1));
    // Scaled-down Mixtral-flavoured heads (full 32/8x128 heads at
    // ctx 2048 would need GBs of KV per layer on this host).
    std::size_t nq = 8, nkv = 2, hd = 32;
    std::size_t page_tokens = 16;

    Rng rng(1);
    std::size_t n_pages = (ctx + page_tokens - 1) / page_tokens;
    std::vector<std::vector<float>> kp(n_pages), vp(n_pages);
    std::vector<const float *> kptr, vptr;
    for (std::size_t p = 0; p < n_pages; ++p) {
        kp[p].resize(page_tokens * nkv * hd);
        vp[p].resize(page_tokens * nkv * hd);
        for (auto &x : kp[p])
            x = static_cast<float>(rng.uniform(-1, 1));
        for (auto &x : vp[p])
            x = static_cast<float>(rng.uniform(-1, 1));
        kptr.push_back(kp[p].data());
        vptr.push_back(vp[p].data());
    }
    KvView view;
    view.kPages = kptr;
    view.vPages = vptr;
    view.pageTokens = page_tokens;
    view.contextLen = ctx;
    view.nKv = nkv;
    view.headDim = hd;

    std::vector<float> q(mu * nq * hd), out(nq * hd), scratch(ctx);
    for (auto &x : q)
        x = static_cast<float>(rng.uniform(-1, 1));

    for (auto _ : state) {
        for (std::size_t t = 0; t < mu; ++t)
            gqaDecodeAttention(q.data() + t * nq * hd, nq, view,
                               out.data(), 0.125f, scratch);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["tokens_x_ctx"] =
        static_cast<double>(mu) * static_cast<double>(ctx);
}

BENCHMARK(BM_CpuGqaAttention)
    ->ArgsProduct({{8, 16, 32}, {64, 128, 256, 512}})
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printModelledGrid();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
