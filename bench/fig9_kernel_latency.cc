/**
 * @file
 * Reproduces Fig. 9 (§6.2): per-layer latency of (a) the CPU GQA
 * attention kernel, (b) the KV-cache transfer it replaces, and (c)
 * the MoE FFN kernel, across micro-batch sizes {32, 64, 128, 256}
 * and context lengths {128 .. 2048} for Mixtral 8x7B on the L4
 * setting.
 *
 * Two parts:
 *   1. The modelled Fig. 9 grid at paper scale (simulated GPU).
 *   2. google-benchmark measurements of the *real* CPU attention
 *      kernel at scaled-down shapes, validating that its latency
 *      grows linearly in mu x ctx as the model assumes.
 *
 * Paper claims: CPU attention is 3-4x faster than the KV transfer;
 * MoE FFN latency is nearly flat in mu (memory-bound); at large
 * mu x ctx CPU attention overtakes the FFN and becomes the
 * bottleneck.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "kernels/attention.hh"
#include "kernels/linalg.hh"
#include "kernels/naive_kernels.hh"
#include "kernels/paged_kv_fixture.hh"
#include "kernels/simd/simd.hh"
#include "perf/perf_model.hh"

using namespace moelight;

namespace {

/**
 * Before/after comparison of the hot kernels against the retained
 * naive implementations, emitted to BENCH_kernels.json. The issue's
 * acceptance bar: >=3x on CPU GQA attention at (mu=32, ctx=512),
 * >=2x on matmulTransposedB at Mixtral-scaled-down shapes.
 */
void
measureKernelSpeedups()
{
    bench::BenchJson json;
    bench::recordSimdBackend(json);
    std::printf("SIMD backend: %s\n", simd::activeIsaName());
    Table t({"kernel", "naive_ms", "optimized_ms", "speedup"});

    // CPU GQA attention, scaled-down Mixtral heads (group = 4).
    {
        std::size_t mu = 32, ctx = 512;
        std::size_t nq = 8, nkv = 2, hd = 32, page_tokens = 16;
        Rng rng(1);
        PagedKvFixture kv(ctx, nkv, hd, page_tokens, rng);
        std::vector<float> q(mu * nq * hd), out(nq * hd);
        for (auto &x : q)
            x = static_cast<float>(rng.uniform(-1, 1));
        std::vector<float> naive_scratch(ctx);
        std::vector<float> opt_scratch(
            gqaAttnScratchFloats(nq, nkv, ctx));
        float scale = 0.125f;

        double naive_ms = bench::bestOfMs(5, [&] {
            for (std::size_t tok = 0; tok < mu; ++tok)
                naive::gqaDecodeAttention(q.data() + tok * nq * hd, nq,
                                          kv.view, out.data(), scale,
                                          naive_scratch);
            benchmark::DoNotOptimize(out.data());
        });
        double opt_ms = bench::bestOfMs(5, [&] {
            for (std::size_t tok = 0; tok < mu; ++tok)
                gqaDecodeAttention(q.data() + tok * nq * hd, nq,
                                   kv.view, out.data(), scale,
                                   opt_scratch);
            benchmark::DoNotOptimize(out.data());
        });
        t.newRow()
            .add("gqa_attention_mu32_ctx512")
            .add(naive_ms, 3)
            .add(opt_ms, 3)
            .add(naive_ms / opt_ms, 2);
        json.record("gqa_attention")
            .field("mu", static_cast<double>(mu))
            .field("ctx", static_cast<double>(ctx))
            .field("naive_ms", naive_ms)
            .field("optimized_ms", opt_ms)
            .field("speedup", naive_ms / opt_ms);
    }

    // matmulTransposedB at Mixtral-scaled-down projection shapes
    // (h1 4096 -> 256, h2 14336 -> 896; mu 32 rows).
    for (auto [m, k, n, tag] :
         {std::tuple<std::size_t, std::size_t, std::size_t,
                     const char *>{32, 256, 896, "w1_mu32"},
          {32, 896, 256, "w2_mu32"},
          {1, 256, 896, "w1_mu1"}}) {
        Rng rng(2);
        std::vector<float> a(m * k), w(n * k), c(m * n);
        for (auto &x : a)
            x = static_cast<float>(rng.uniform(-1, 1));
        for (auto &x : w)
            x = static_cast<float>(rng.uniform(-1, 1));
        double naive_ms = bench::bestOfMs(5, [&] {
            naive::matmulTransposedB(a.data(), w.data(), c.data(), m, k,
                                     n);
            benchmark::DoNotOptimize(c.data());
        });
        double opt_ms = bench::bestOfMs(5, [&] {
            matmulTransposedB(a.data(), w.data(), c.data(), m, k, n);
            benchmark::DoNotOptimize(c.data());
        });
        std::string name = std::string("matmul_transposed_b_") + tag;
        t.newRow()
            .add(name)
            .add(naive_ms, 3)
            .add(opt_ms, 3)
            .add(naive_ms / opt_ms, 2);
        json.record(name)
            .field("m", static_cast<double>(m))
            .field("k", static_cast<double>(k))
            .field("n", static_cast<double>(n))
            .field("naive_ms", naive_ms)
            .field("optimized_ms", opt_ms)
            .field("speedup", naive_ms / opt_ms);
    }

    t.print(std::cout,
            "Fig. 9 — measured kernel speedups vs retained naive");
    json.write("BENCH_kernels.json");
    std::cout << "wrote BENCH_kernels.json\n\n";
}

void
printModelledGrid()
{
    ModelConfig m = mixtral8x7b();
    HardwareConfig hw = l4Host();
    double ratio_sum = 0.0;
    int ratio_n = 0;
    bool crossover = false;

    for (std::size_t mu : {32u, 64u, 128u, 256u}) {
        Table t({"context", "moe_ffn_ms", "kv_transfer_ms",
                 "cpu_attention_ms", "kv/attn"});
        for (double ctx : {128.0, 256.0, 512.0, 1024.0, 2048.0}) {
            WorkloadShape w{ctx, ctx, 1.0};
            PerfModel pm(m, hw, w, false);
            Policy gpu_attn;
            gpu_attn.batchSize = mu;
            gpu_attn.microBatch = mu;
            gpu_attn.attnOnGpu = true;
            double ffn = pm.postAttnGpuTime(mu) * 1e3;
            double kv = pm.kvLoadTime(mu, gpu_attn) * 1e3;
            double attn = pm.cpuAttnTime(mu) * 1e3;
            t.newRow().add(static_cast<long long>(ctx)).add(ffn, 3)
                .add(kv, 3).add(attn, 3).add(kv / attn, 2);
            ratio_sum += kv / attn;
            ++ratio_n;
            if (attn > ffn)
                crossover = true;
        }
        t.print(std::cout, "Fig. 9 — modelled, micro-batch size " +
                               std::to_string(mu));
        std::cout << "\n";
    }
    std::printf("mean KV-transfer / CPU-attention ratio: %.2f "
                "(paper: 3-4x, ~bc/bcg)\n",
                ratio_sum / ratio_n);
    std::printf("CPU attention overtakes MoE FFN at large mu*ctx: %s "
                "(paper: yes)\n\n",
                crossover ? "yes" : "no");
}

/** Real CPU GQA kernel at scaled-down shapes. */
template <bool Naive>
void
BM_CpuGqaAttention(benchmark::State &state)
{
    std::size_t mu = static_cast<std::size_t>(state.range(0));
    std::size_t ctx = static_cast<std::size_t>(state.range(1));
    // Scaled-down Mixtral-flavoured heads (full 32/8x128 heads at
    // ctx 2048 would need GBs of KV per layer on this host).
    std::size_t nq = 8, nkv = 2, hd = 32;
    std::size_t page_tokens = 16;

    Rng rng(1);
    PagedKvFixture kv(ctx, nkv, hd, page_tokens, rng);
    std::vector<float> q(mu * nq * hd), out(nq * hd);
    std::vector<float> scratch(
        Naive ? ctx : gqaAttnScratchFloats(nq, nkv, ctx));
    for (auto &x : q)
        x = static_cast<float>(rng.uniform(-1, 1));

    for (auto _ : state) {
        for (std::size_t t = 0; t < mu; ++t) {
            if constexpr (Naive)
                naive::gqaDecodeAttention(q.data() + t * nq * hd, nq,
                                          kv.view, out.data(), 0.125f,
                                          scratch);
            else
                gqaDecodeAttention(q.data() + t * nq * hd, nq, kv.view,
                                   out.data(), 0.125f, scratch);
        }
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["tokens_x_ctx"] =
        static_cast<double>(mu) * static_cast<double>(ctx);
}

BENCHMARK(BM_CpuGqaAttention<false>)
    ->Name("BM_CpuGqaAttention")
    ->ArgsProduct({{8, 16, 32}, {64, 128, 256, 512}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_CpuGqaAttention<true>)
    ->Name("BM_CpuGqaAttentionNaive")
    ->ArgsProduct({{8, 16, 32}, {64, 128, 256, 512}})
    ->Unit(benchmark::kMillisecond);

/** B-transposed GEMM, optimized vs naive, Mixtral-scaled-down. */
template <bool Naive>
void
BM_MatmulTransposedB(benchmark::State &state)
{
    std::size_t m = static_cast<std::size_t>(state.range(0));
    std::size_t k = static_cast<std::size_t>(state.range(1));
    std::size_t n = static_cast<std::size_t>(state.range(2));
    Rng rng(2);
    std::vector<float> a(m * k), w(n * k), c(m * n);
    for (auto &x : a)
        x = static_cast<float>(rng.uniform(-1, 1));
    for (auto &x : w)
        x = static_cast<float>(rng.uniform(-1, 1));
    for (auto _ : state) {
        if constexpr (Naive)
            naive::matmulTransposedB(a.data(), w.data(), c.data(), m, k,
                                     n);
        else
            matmulTransposedB(a.data(), w.data(), c.data(), m, k, n);
        benchmark::DoNotOptimize(c.data());
    }
}

BENCHMARK(BM_MatmulTransposedB<false>)
    ->Name("BM_MatmulTransposedB")
    ->Args({32, 256, 896})
    ->Args({32, 896, 256})
    ->Args({1, 256, 896})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_MatmulTransposedB<true>)
    ->Name("BM_MatmulTransposedBNaive")
    ->Args({32, 256, 896})
    ->Args({32, 896, 256})
    ->Args({1, 256, 896})
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printModelledGrid();
    measureKernelSpeedups();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
