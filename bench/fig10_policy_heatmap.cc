/**
 * @file
 * Reproduces Fig. 10 (§6.3): how the optimal policy changes with CPU
 * capability and CPU-GPU bandwidth when the GPUs are big enough to
 * hold the whole model (Mixtral 8x7B on 2xA100-80G, prompt 512,
 * generation 32). Sweeps CPU scaling ratio 1..10 (scaling b_c, m_c,
 * p_c from the paper's base of 100 GB/s / 200 GB / 1.6 TFLOPS) and
 * CPU-GPU bandwidth 100..500 GB/s; prints the ratio of weights and
 * KV cache placed on the *CPU* plus whether attention runs on CPU.
 *
 * Paper claims: more link bandwidth => more weights offloaded to the
 * CPU; KV offloading (and CPU attention) only pays off at high CPU
 * scaling ratios; at low CPU memory bandwidth KV stays on GPU even
 * at the highest link bandwidth tested.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace moelight;
using namespace moelight::bench;

namespace {

HardwareConfig
caseStudyHw(double cpu_scale, double bcg_gbs)
{
    HardwareConfig h;
    h.name = "2xA100-80G-case";
    h.gpuMem = 160 * GiB;
    h.bg = 2 * 2039 * GB;
    h.pg = 2 * 312 * TFLOP;
    h.numGpus = 2;
    // Paper base CPU spec: m_c = 200 GB, b_c = 100 GB/s,
    // p_c = 1.6 TFLOPS, multiplied by the scaling ratio.
    h.cpuMem = 200.0 * cpu_scale * GB;
    h.bc = 100.0 * cpu_scale * GB;
    h.pc = 1.6 * cpu_scale * TFLOP;
    h.bcg = bcg_gbs * GB;
    // The HRM level ordering requires bcg <= bc.
    if (h.bcg > h.bc)
        h.bcg = h.bc;
    h.validate();
    return h;
}

} // namespace

int
main()
{
    ModelConfig model = mixtral8x7b();
    WorkloadShape w{512.0, 512.0, 32.0};

    SearchConfig grid = benchGrid();
    grid.weightRatioSteps = 10;
    grid.kvRatioSteps = 4;

    Table t({"cpu_scale", "bcg_GBs", "weights_on_cpu", "kv_on_cpu",
             "attn_device", "mu", "N", "tok_s"});
    bool more_bw_more_offload = true;
    double prev_offload = -1.0;

    for (double bcg : {100.0, 200.0, 300.0, 400.0, 500.0}) {
        double offload_at_max_scale = 0.0;
        for (double scale : {1.0, 2.0, 4.0, 6.0, 8.0, 10.0}) {
            HardwareConfig hw = caseStudyHw(scale, bcg);
            PerfModel pm(model, hw, w, /*padded=*/true);
            auto best =
                searchPolicy(pm, SystemKind::MoeLightning, grid);
            if (!best) {
                t.newRow().add(scale, 0).add(bcg, 0).add("-").add("-")
                    .add("-").add(0).add(0).add(0.0, 1);
                continue;
            }
            const Policy &p = best->policy;
            t.newRow()
                .add(scale, 0)
                .add(bcg, 0)
                .add(1.0 - p.weightsOnGpu, 2)
                .add(p.attnOnGpu ? 1.0 - p.kvOnGpu : 1.0, 2)
                .add(p.attnOnGpu ? "GPU" : "CPU")
                .add(p.microBatch)
                .add(p.batchSize)
                .add(best->throughput, 1);
            if (scale == 10.0)
                offload_at_max_scale = 1.0 - p.weightsOnGpu;
        }
        if (prev_offload >= 0.0 &&
            offload_at_max_scale + 1e-9 < prev_offload)
            more_bw_more_offload = false;
        prev_offload = offload_at_max_scale;
    }

    t.print(std::cout,
            "Fig. 10 — best policy vs CPU scaling x CPU-GPU "
            "bandwidth (Mixtral 8x7B @ 2xA100-80G, s=512, n=32)");
    std::cout << "\npaper check: weights-on-CPU fraction is "
                 "non-decreasing in link bandwidth: "
              << (more_bw_more_offload ? "REPRODUCED" : "MISMATCH")
              << "\n";
    return 0;
}
