/**
 * @file
 * Reproduces Fig. 1: generation throughput vs available CPU memory
 * for (a) MoE-Lightning, (b) an existing system (FlexGen) with its
 * own policy, and (c) the existing system with our policy. Fixed GPU
 * memory (T4) and link bandwidth; Mixtral 8x7B on MTBench.
 *
 * Paper claim: MoE-Lightning reaches the GPU-memory-bound throughput
 * ceiling with 2-3x less CPU memory than the baselines.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "hw/hardware.hh"
#include "model/workload.hh"

using namespace moelight;
using namespace moelight::bench;

int
main()
{
    ModelConfig model = mixtral8x7b();
    WorkloadShape w{77.0, 418.0, 128.0};

    Table t({"cpu_mem_gb", "MoE-Lightning", "FlexGen(their)",
             "FlexGen(our-policy)"});

    std::vector<double> mems{48,  64,  80,  96,  112, 128, 144,
                             160, 176, 192, 224, 256, 320, 384};
    struct Row
    {
        double mem, ml, fg_their, fg_ours;
    };
    std::vector<Row> rows;
    for (double gb : mems) {
        HardwareConfig hw = t4Host();
        hw.cpuMem = gb * GiB;
        if (hw.cpuMem < model.totalWeightBytes()) {
            rows.push_back({gb, 0.0, 0.0, 0.0});
            continue;  // weights don't even fit on the host
        }
        PerfModel pm(model, hw, w, /*padded=*/true);
        double ml = simulatedSystemThroughput(
            SystemKind::MoeLightningPadded, pm);
        double fg_their =
            simulatedSystemThroughput(SystemKind::FlexGen, pm);
        // "Existing system with our policy": FlexGen's schedule, the
        // HRM optimizer's policy.
        auto our_pol = searchPolicy(pm, SystemKind::FlexGen, benchGrid());
        double fg_ours =
            our_pol ? simulateThroughput(SystemKind::FlexGen, pm,
                                         our_pol->policy)
                          .tokensPerSec
                    : 0.0;
        rows.push_back({gb, ml, fg_their, fg_ours});
    }
    for (const Row &r : rows)
        t.newRow().add(r.mem, 0).add(r.ml, 2).add(r.fg_their, 2)
            .add(r.fg_ours, 2);

    t.print(std::cout,
            "Fig. 1 — throughput (tokens/s) vs CPU memory, Mixtral "
            "8x7B @ T4, MTBench gen=128");

    // The paper's claim: the same throughput with 2-3x less CPU
    // memory. Take each baseline's best value and find the smallest
    // host where MoE-Lightning matches it.
    double fg_best = 0.0, fg_best_mem = 0.0;
    for (const Row &r : rows)
        if (r.fg_their > fg_best) {
            fg_best = r.fg_their;
            fg_best_mem = r.mem;
        }
    double ml_match_mem = 0.0;
    for (const Row &r : rows)
        if (r.ml >= fg_best) {
            ml_match_mem = r.mem;
            break;
        }
    std::cout << "\nFlexGen(their policy) peaks at " << fg_best
              << " tok/s with " << fg_best_mem
              << " GB; MoE-Lightning matches that with "
              << ml_match_mem << " GB => "
              << fg_best_mem / ml_match_mem
              << "x less CPU memory (paper claim: 2-3x)\n";
    return 0;
}
