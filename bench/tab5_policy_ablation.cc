/**
 * @file
 * Reproduces Tab. 5 (§6.1, optimizer-policy ablation): MTBench @ S1,
 * generation length 128. Rows:
 *   1. FlexGen with its own policy          (paper:  9.5 tok/s)
 *   2. FlexGen with our (HRM) policy        (paper: 16.8, 1.77x)
 *   3. FlexGen with our policy + larger N   (paper: 20.7, 2.17x)
 *   4. MoE-Lightning(p), same policy as 2   (paper: 30.1, 3.17x)
 *
 * Claim: the HRM policy alone lifts FlexGen substantially, but the
 * CGOPipe schedule is needed to reach the top line — under the same
 * policy, KV/activation swapping becomes FlexGen's bottleneck.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "model/workload.hh"

using namespace moelight;
using namespace moelight::bench;

int
main()
{
    Setting s1 = settingS1();
    WorkloadShape w{77.0, 418.0, 128.0};
    PerfModel pm(s1.model, s1.hw, w, /*padded=*/true);

    Table t({"variant", "mu", "N", "ours_tok_s", "ours_speedup",
             "paper_tok_s", "paper_speedup"});

    // 1. FlexGen with its own conservative policy.
    auto fg_their = flexGenPolicy(pm, /*cpuAttention=*/false);
    double base = 0.0;
    if (fg_their) {
        base = simulateThroughput(SystemKind::FlexGen, pm,
                                  fg_their->policy)
                   .tokensPerSec;
        t.newRow()
            .add("FlexGen w/ their policy")
            .add(fg_their->policy.microBatch)
            .add(fg_their->policy.batchSize)
            .add(base, 2)
            .add("1.00x")
            .add(9.5, 1)
            .add("1.00x");
    }

    // 2. FlexGen with the HRM policy (searched under FlexGen's own
    //    schedule so the comparison is fair).
    auto ours = searchPolicy(pm, SystemKind::FlexGen, benchGrid());
    double fg_ours_tput = 0.0;
    if (ours) {
        fg_ours_tput = simulateThroughput(SystemKind::FlexGen, pm,
                                          ours->policy)
                           .tokensPerSec;
        t.newRow()
            .add("FlexGen w/ our policy")
            .add(ours->policy.microBatch)
            .add(ours->policy.batchSize)
            .add(fg_ours_tput, 2)
            .add(speedup(fg_ours_tput, base))
            .add(16.816, 1)
            .add("1.77x");
    }

    // 3. Same micro-batch, batch pushed to the CPU-memory limit.
    if (ours) {
        Policy big = ours->policy;
        while (true) {
            Policy next = big;
            next.batchSize += next.microBatch;
            if (!pm.feasible(next))
                break;
            big = next;
        }
        double tput = simulateThroughput(SystemKind::FlexGen, pm, big)
                          .tokensPerSec;
        t.newRow()
            .add("FlexGen w/ our policy + larger N")
            .add(big.microBatch)
            .add(big.batchSize)
            .add(tput, 2)
            .add(speedup(tput, base))
            .add(20.654, 1)
            .add("2.17x");
    }

    // 4. MoE-Lightning(p) with the policy from 2 run under CGOPipe.
    if (ours) {
        Policy ml = ours->policy;
        ml.attnOnGpu = false;  // CGOPipe's CPU-attention mode
        ml.kvOnGpu = 0.0;
        double tput = simulateThroughput(SystemKind::MoeLightningPadded,
                                         pm, ml)
                          .tokensPerSec;
        t.newRow()
            .add("MoE-Lightning(p)")
            .add(ml.microBatch)
            .add(ml.batchSize)
            .add(tput, 2)
            .add(speedup(tput, base))
            .add(30.12, 1)
            .add("3.17x");
    }

    t.print(std::cout,
            "Tab. 5 — policy ablation (MTBench @ S1, gen=128)");
    std::cout << "\npaper check: each row improves on the previous; "
                 "the schedule (row 4 vs 3) contributes beyond the "
                 "policy alone.\n";
    return 0;
}
